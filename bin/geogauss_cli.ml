(* Command-line driver: run paper experiments or ad-hoc GeoGauss cluster
   simulations with custom parameters. *)

open Cmdliner

let fast_arg =
  Arg.(value & flag & info [ "fast" ] ~doc:"Shrunk populations and windows.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Fan independent simulations out over $(docv) domains (0 = one per \
           core). Output is byte-identical at any value; 1 is the sequential \
           path.")

let merge_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "merge-jobs" ]
        ~doc:
          "Shard each node's intra-node epoch merge over $(docv) host domains \
           (0 = auto: min of host cores and the modeled merge-thread count; \
           widths round down to a power of two <= 16). Results are \
           byte-identical at any value — this is purely a wall-clock knob.")

let partitioning_conv =
  let parse s =
    match Geogauss.Params.partitioning_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf p ->
      Format.pp_print_string ppf (Geogauss.Params.partitioning_to_string p))

let partitioning_arg =
  Arg.(
    value
    & opt partitioning_conv Geogauss.Params.P_none
    & info [ "partitioning" ] ~docv:"MODE"
        ~doc:
          "Replica-group map for partial replication: none (full \
           replication), region (one group per topology region) or hash:$(i,K) \
           ($(i,K) groups, node i -> i mod K). Write-set batches are \
           disseminated to interested replicas only; cross-group \
           transactions commit once every touched group's epoch merge \
           validates them (DESIGN.md \xC2\xA712).")

let merge_level_conv =
  let parse s =
    match Geogauss.Params.merge_level_of_string s with
    | Ok l -> Ok l
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf l ->
      Format.pp_print_string ppf (Geogauss.Params.merge_level_to_string l))

let merge_level_arg =
  Arg.(
    value
    & opt merge_level_conv Geogauss.Params.Row
    & info [ "merge-level" ] ~docv:"LEVEL"
        ~doc:
          "Conflict granularity of the epoch merge: row (the paper's \
           whole-row first-committer-wins) or column (per-field LWW \
           lattice — concurrent updates to disjoint columns of the same \
           row all commit; DESIGN.md \xC2\xA713). Ignored under \
           partitioning or geog-a, which re-apply whole rows.")

(* Engine names resolve through the one canonical registry
   (Gg_engines.Registry): core names yield a Params transform onto the
   full cluster; baseline timing models are rejected here — they only
   run inside the bench figures. Unknown names fail at parse time with
   the full known list. *)
let core_engine_conv =
  let parse s =
    match Gg_engines.Registry.find s with
    | Gg_engines.Registry.Core f -> Ok (s, f)
    | Gg_engines.Registry.Baseline _ ->
      Error
        (`Msg
           (Printf.sprintf
              "engine %s is a baseline timing model; it runs via `geogauss \
               bench' figures, not ad-hoc runs"
              s))
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf (s, _) -> Format.pp_print_string ppf s)

let clock_skew_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "clock-skew" ] ~docv:"MS"
        ~doc:
          "Bounded clock-skew budget in milliseconds for the eocc fast \
           path (Params.clock_skew_us): each node's simulated clock \
           drifts within \xC2\xB1$(docv) of true time. Only meaningful \
           with --engine eocc; ignored by engines that never read the \
           clock.")

(* --- `bench` subcommand: run paper experiments --- *)

let bench_names =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiments to run (fig5 table2 fig6 fig7 table3 fig8 fig9 \
              fig10 fig11 fig12 fig13 ablations fig_scale fig_skew \
              fig_fastpath). Default: all.")

let bench_run_term =
  let run fast jobs names =
    let names =
      if names = [] then List.map fst Gg_harness.Experiments.all else names
    in
    Gg_par.Pool.with_pool ~jobs @@ fun pool ->
    let ok =
      List.for_all
        (fun name ->
          Printf.printf "=== %s ===\n%!" name;
          Gg_harness.Experiments.run ~fast ~pool name)
        names
    in
    if ok then `Ok () else `Error (false, "unknown experiment")
  in
  Term.(ret (const run $ fast_arg $ jobs_arg $ bench_names))

(* `bench diff`: compare two BENCH_*.json reports of the same suite and
   flag throughput drops beyond a noise threshold. Wired into `make ci`
   (committed baseline vs a fresh --fast run, --warn-only) so perf
   regressions surface on every CI pass without ever gating on a noisy
   fast run. *)
let bench_diff_cmd =
  let old_path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline bench report.")
  in
  let new_path =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Fresh bench report of the same suite.")
  in
  let threshold =
    Arg.(
      value & opt float 0.25
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:
            "Relative drop that counts as a regression (half of it flags a \
             warning). The tracing-overhead row always gates on the absolute \
             5% ceiling instead.")
  in
  let warn_only =
    Arg.(
      value & flag
      & info [ "warn-only" ]
          ~doc:"Report regressions but exit zero anyway (for noisy hosts).")
  in
  let run old_path new_path threshold warn_only =
    match Gg_harness.Bench_diff.diff_files ~threshold ~old_path ~new_path () with
    | Error msg -> `Error (false, msg)
    | Ok rows ->
      print_string (Gg_harness.Bench_diff.render rows);
      print_newline ();
      if Gg_harness.Bench_diff.has_regression rows then
        if warn_only then begin
          Printf.printf "regressions found (ignored: --warn-only)\n";
          `Ok ()
        end
        else `Error (false, "bench regression beyond threshold")
      else `Ok ()
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two bench JSON reports (wallclock, merge, parallel, \
          scale, skew or fastpath suite) and fail on throughput drops \
          beyond the noise threshold (the scale suite's WAN-per-txn, the \
          skew suite's abort-rate and the fastpath suite's p50/p95/\
          mispredict-rate columns gate lower-is-better).")
    Term.(ret (const run $ old_path $ new_path $ threshold $ warn_only))

let bench_cmd =
  Cmd.group ~default:bench_run_term
    (Cmd.info "bench"
       ~doc:
         "Regenerate the paper's tables and figures, or diff two bench \
          reports.")
    [ bench_diff_cmd ]

(* --- `run` subcommand: ad-hoc simulation --- *)

let run_cmd =
  let workload =
    Arg.(
      value
      & opt
          (enum
             [ ("ycsb-ro", `Ro); ("ycsb-mc", `Mc); ("ycsb-hc", `Hc);
               ("tpcc", `Tpcc); ("tpcc-full", `Tpcc_full);
               ("hotkey", `Hotkey); ("social", `Social); ("scan", `Scan);
               ("secidx", `Secidx) ])
          `Mc
      & info [ "w"; "workload" ]
          ~doc:"Workload: ycsb-ro, ycsb-mc, ycsb-hc, tpcc (50/50 NO+Payment), \
                tpcc-full (standard five-transaction mix), hotkey (rotating \
                hot-key counter bursts), social (power-law fanout \
                read-modify-write), scan (SQL long scans + aggregates) or \
                secidx (SQL secondary-index reads with region flips).")
  in
  let nodes =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~doc:"Number of replicas.")
  in
  let world =
    Arg.(value & flag & info [ "worldwide" ] ~doc:"Worldwide 5-DC topology instead of China.")
  in
  let epoch_ms =
    Arg.(value & opt int 10 & info [ "epoch-ms" ] ~doc:"Epoch length (ms).")
  in
  let isolation =
    Arg.(
      value
      & opt
          (enum
             [ ("rc", Geogauss.Params.RC); ("rr", Geogauss.Params.RR);
               ("si", Geogauss.Params.SI); ("ssi", Geogauss.Params.SSI) ])
          Geogauss.Params.RC
      & info [ "isolation" ] ~doc:"Isolation level: rc, rr, si or ssi (extension).")
  in
  let variant =
    (* derived from the registry, not a second name table: the core
       entries whose transform is a pure variant change (the fast path
       has its own --engine spelling) *)
    let alts =
      List.filter_map
        (fun name ->
          match Gg_engines.Registry.find name with
          | Gg_engines.Registry.Core f ->
            let p = f Geogauss.Params.default in
            if p.Geogauss.Params.fastpath then None
            else Some (name, p.Geogauss.Params.variant)
          | Gg_engines.Registry.Baseline _ -> None)
        Gg_engines.Registry.names
    in
    Arg.(
      value
      & opt (enum alts) Geogauss.Params.Optimistic
      & info [ "variant" ] ~doc:"Execution variant: geogauss, geog-s or geog-a.")
  in
  let engine =
    Arg.(
      value
      & opt (some core_engine_conv) None
      & info [ "engine" ]
          ~doc:
            "Engine by registry name (geogauss, geog-s, geog-a, eocc). \
             Overrides --variant; eocc enables the clock-assisted \
             speculative fast path (pair with --clock-skew).")
  in
  let ft =
    Arg.(
      value
      & opt
          (enum
             [ ("none", Geogauss.Params.Ft_none);
               ("lb", Geogauss.Params.Ft_local_backup);
               ("rb", Geogauss.Params.Ft_remote_backup);
               ("raft", Geogauss.Params.Ft_raft) ])
          Geogauss.Params.Ft_local_backup
      & info [ "ft" ] ~doc:"Fault tolerance: none, lb, rb or raft.")
  in
  let seconds =
    Arg.(value & opt int 4 & info [ "t"; "seconds" ] ~doc:"Measured simulated seconds.")
  in
  let connections =
    Arg.(value & opt int 64 & info [ "c"; "connections" ] ~doc:"Client connections per node.")
  in
  let theta =
    Arg.(value & opt float 0.8 & info [ "theta" ] ~doc:"YCSB Zipf skew (0 <= theta < 1).")
  in
  let records =
    Arg.(value & opt int 50_000 & info [ "records" ] ~doc:"YCSB table size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL event trace + counter snapshots of the \
                measurement window to $(docv) (replay with `geogauss trace').")
  in
  let arrival_conv =
    let parse s =
      match Gg_workload.Arrival.of_string s with
      | Ok a -> Ok a
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv (parse, fun ppf a ->
        Format.pp_print_string ppf (Gg_workload.Arrival.to_string a))
  in
  let arrival =
    Arg.(
      value
      & opt (some arrival_conv) None
      & info [ "arrival" ] ~docv:"CURVE"
          ~doc:
            "Open-loop arrival curve (per region): constant@$(i,TPS), \
             diurnal:$(i,PERIOD_MS):$(i,TROUGH)@$(i,TPS) or \
             flash:$(i,AT_MS):$(i,DUR_MS):$(i,MULT)@$(i,TPS). Transactions \
             arrive on the curve regardless of completions; --connections \
             caps the in-flight pool and a 4x FIFO absorbs bursts (beyond \
             that, arrivals shed). Without it, the paper's closed loop.")
  in
  let run workload nodes world epoch_ms isolation variant engine clock_skew ft
      seconds connections theta records seed trace arrival merge_jobs
      partitioning merge_level =
    let topology =
      if world then Gg_sim.Topology.worldwide nodes else Gg_sim.Topology.china nodes
    in
    let params =
      {
        Geogauss.Params.default with
        Geogauss.Params.epoch_us = epoch_ms * 1_000;
        isolation;
        variant;
        ft;
        seed;
        merge_jobs;
        partitioning;
        merge_level;
      }
    in
    (* --engine applies the registry transform last, so it wins over
       --variant; --clock-skew then sets the skew budget (the clock is
       only instantiated with a nonzero bound under the fast path). *)
    let params =
      match engine with None -> params | Some (_, f) -> f params
    in
    let params =
      match clock_skew with
      | None -> params
      | Some ms -> Geogauss.Params.with_clock_skew_us params (ms * 1_000)
    in
    let variant = params.Geogauss.Params.variant in
    let label =
      match engine with
      | Some (name, _) -> name
      | None -> Geogauss.Params.variant_to_string variant
    in
    let gens, load =
      match workload with
      | (`Tpcc | `Tpcc_full) as w ->
        let cfg = Gg_workload.Tpcc.default in
        let full_mix = w = `Tpcc_full in
        let gen node =
          let g =
            Gg_workload.Tpcc.create ~full_mix cfg ~seed:(seed + (1_000 * node))
              ~node
          in
          fun () -> Gg_workload.Tpcc.next_txn g
        in
        (`Op gen, Gg_workload.Tpcc.load cfg)
      | (`Ro | `Mc | `Hc) as w ->
        let base =
          match w with
          | `Ro -> Gg_workload.Ycsb.read_only
          | `Mc -> Gg_workload.Ycsb.medium_contention
          | `Hc -> Gg_workload.Ycsb.high_contention
        in
        let p =
          Gg_workload.Ycsb.with_theta
            (Gg_workload.Ycsb.with_records base records)
            (if base.Gg_workload.Ycsb.theta = 0.0 then 0.0 else theta)
        in
        (`Op (Gg_harness.Driver.ycsb_gens p ~seed), Gg_workload.Ycsb.load p)
      | `Hotkey ->
        let p = Gg_workload.Hotkey.with_records Gg_workload.Hotkey.base records in
        (`Op (Gg_harness.Driver.hotkey_gens p ~seed), Gg_workload.Hotkey.load p)
      | `Social ->
        let p = Gg_workload.Social.with_users Gg_workload.Social.base records in
        (`Op (Gg_harness.Driver.social_gens p ~seed), Gg_workload.Social.load p)
      | `Scan ->
        let p =
          Gg_workload.Sqlgen.Scan.with_records Gg_workload.Sqlgen.Scan.base
            records
        in
        ( `Req (Gg_harness.Driver.scan_req_gens p ~seed),
          Gg_workload.Sqlgen.Scan.load p )
      | `Secidx ->
        let p =
          Gg_workload.Sqlgen.Secidx.with_records Gg_workload.Sqlgen.Secidx.base
            records
        in
        ( `Req (Gg_harness.Driver.secidx_req_gens p ~seed),
          Gg_workload.Sqlgen.Secidx.load p )
    in
    (* [~gen] is only consulted when no request-level generator is given,
       so the [`Req] arm's placeholder can never run. *)
    let gen, req_gen =
      match gens with
      | `Op gen -> (gen, None)
      | `Req rg -> ((fun _ () -> assert false), Some rg)
    in
    let r, extra =
      Gg_harness.Driver.run_geogauss ~params ~connections ?arrival ?req_gen
        ?trace_file:trace ~topology ~load ~gen ~warmup_ms:1_000
        ~measure_ms:(seconds * 1_000)
        ~label ()
    in
    let table =
      Gg_util.Tablefmt.create
        ~title:
          (Printf.sprintf "%s on %s (%d replicas, epoch %d ms, %s, ft=%s%s)"
             label topology.Gg_sim.Topology.name nodes epoch_ms
             (Geogauss.Params.isolation_to_string isolation)
             (Geogauss.Params.ft_to_string ft)
             (match partitioning with
             | Geogauss.Params.P_none -> ""
             | m ->
               ", partitioning="
               ^ Geogauss.Params.partitioning_to_string m))
        ~headers:Gg_harness.Result.headers
    in
    Gg_util.Tablefmt.add_row table (Gg_harness.Result.row r);
    Gg_util.Tablefmt.print table;
    (match extra.Gg_harness.Driver.phase_means with
    | (_, (p, e, w, m, l)) :: _ ->
      Printf.printf
        "node0 phase means (ms): parse %.2f  exec %.2f  wait %.2f  merge %.2f  log %.2f\n"
        (p /. 1000.) (e /. 1000.) (w /. 1000.) (m /. 1000.) (l /. 1000.)
    | [] -> ());
    if arrival <> None then
      Printf.printf "open loop: %d offered, %d shed (queue full)\n"
        extra.Gg_harness.Driver.offered extra.Gg_harness.Driver.shed;
    (match trace with
    | Some path -> Printf.printf "trace written to %s\n" path
    | None -> ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an ad-hoc GeoGauss cluster simulation.")
    Term.(
      const run $ workload $ nodes $ world $ epoch_ms $ isolation $ variant
      $ engine $ clock_skew_arg $ ft $ seconds $ connections $ theta $ records
      $ seed $ trace $ arrival $ merge_jobs_arg $ partitioning_arg
      $ merge_level_arg)

(* --- `check` subcommand: seeded chaos checking --- *)

let check_cmd =
  let seeds =
    Arg.(
      value & opt int 25
      & info [ "seeds" ] ~doc:"Number of seeded scenarios to run.")
  in
  let base =
    Arg.(
      value & opt int 0
      & info [ "base" ] ~doc:"First seed (scenarios are base..base+seeds-1).")
  in
  let engine =
    Arg.(
      value
      & opt (some core_engine_conv) None
      & info [ "engine" ]
          ~doc:"Pin the engine by registry name (geogauss, geog-s, geog-a, \
                eocc); default draws the variant per seed. eocc pins the \
                clock-assisted fast path with the --clock-skew budget and \
                skew-burst fault schedules.")
  in
  let ft =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("none", Geogauss.Params.Ft_none);
                  ("lb", Geogauss.Params.Ft_local_backup);
                  ("rb", Geogauss.Params.Ft_remote_backup);
                  ("raft", Geogauss.Params.Ft_raft) ]))
          None
      & info [ "ft" ] ~doc:"Pin the fault-tolerance mode (none, lb, rb, raft).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"On failure, re-run the minimized scenario with tracing on \
                and write a JSONL trace to $(docv).")
  in
  let canary =
    Arg.(
      value & flag
      & info [ "canary" ]
          ~doc:"Self-test: inject a deliberate replica corruption and verify \
                the oracles detect it (exits non-zero if they do not).")
  in
  let corrupt =
    Arg.(
      value & opt float 0.0
      & info [ "corrupt" ] ~docv:"FRAC"
          ~doc:
            "Pin a binary-frame corruption probability on every scenario: \
             each batch frame is truncated in flight with probability \
             $(docv); decode failures must be recovered by the stall-repair \
             path under the same oracles.")
  in
  let run seeds base engine clock_skew ft fast jobs trace canary merge_jobs
      partitioning corrupt merge_level =
    let log = print_endline in
    (* Resolve the registry name through its own transform: the pinned
       variant and the fastpath flag both come from what the transform
       does to default params, so check stays in lockstep with the
       registry's one canonical list. *)
    let pinned =
      Option.map (fun (_, f) -> f Geogauss.Params.default) engine
    in
    let variant = Option.map (fun p -> p.Geogauss.Params.variant) pinned in
    let fastpath =
      match pinned with Some p -> p.Geogauss.Params.fastpath | None -> false
    in
    let clock_skew_ms = Option.value ~default:5 clock_skew in
    if canary then begin
      let s =
        {
          (Gg_check.Scenario.generate ~variant:Geogauss.Params.Optimistic
             ~fast:true base)
          with
          Gg_check.Scenario.faults = [];
          corruption = Some (1, 400);
        }
      in
      log (Printf.sprintf "canary: %s" (Gg_check.Scenario.to_string s));
      match (Gg_check.Checker.run s).Gg_check.Checker.violation with
      | None -> `Error (false, "canary corruption went undetected")
      | Some v ->
        let f = Gg_check.Checker.shrink_and_report ~log s v in
        log
          (Printf.sprintf "canary detected: %s"
             (Gg_check.Checker.reproducer f.Gg_check.Checker.minimized
                f.Gg_check.Checker.min_violation));
        `Ok ()
    end
    else begin
      let report =
        Gg_par.Pool.with_pool ~jobs @@ fun pool ->
        Gg_check.Checker.check ~log ?variant ?ft ~fast ~base ~pool ~merge_jobs
          ~partitioning ~corrupt_frac:corrupt ~merge_level ~fastpath
          ~clock_skew_ms ~seeds ()
      in
      Printf.printf "%d seeds, %d commits, %d violation(s)\n"
        report.Gg_check.Checker.seeds_run
        report.Gg_check.Checker.total_commits
        (List.length report.Gg_check.Checker.failures);
      match report.Gg_check.Checker.failures with
      | [] -> `Ok ()
      | f :: _ ->
        (match trace with
        | Some path ->
          ignore
            (Gg_check.Checker.run ~trace:path f.Gg_check.Checker.minimized);
          Printf.printf "trace of minimized scenario written to %s\n" path
        | None -> ());
        `Error (false, "invariant violations found")
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Deterministic chaos checking: run seeded fault scenarios (crashes, \
          recoveries, loss/dup/reorder/jitter bursts) against full cluster \
          simulations with per-epoch invariant oracles — convergence, \
          monotonicity, durability, ACI merge laws, isolation — and shrink \
          any failure to a one-line reproducer.")
    Term.(
      ret
        (const run $ seeds $ base $ engine $ clock_skew_arg $ ft $ fast_arg
       $ jobs_arg $ trace $ canary $ merge_jobs_arg $ partitioning_arg
       $ corrupt $ merge_level_arg))

(* --- `trace` subcommand: analyze an exported JSONL trace --- *)

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE.jsonl"
        ~doc:"Trace file written by `geogauss run --trace'.")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the machine-readable JSON report to $(docv).")

(* Load a trace, print a rendered report, optionally dump the JSON form.
   Both outputs are byte-deterministic functions of the trace file. *)
let trace_report ~render ~json file json_out =
  match Gg_obs.Trace_view.load_file file with
  | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
  | Ok t ->
    print_string (render t);
    print_newline ();
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Gg_obs.Jsonl.write_line oc (json t);
      close_out oc;
      Printf.printf "json report written to %s\n" path);
    `Ok ()

let trace_summary_term =
  let epochs =
    Arg.(
      value & opt int 40
      & info [ "epochs" ] ~doc:"Max epoch-timeline rows to print.")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~doc:"Slowest epochs to drill into.")
  in
  let run file epochs top =
    match Gg_obs.Trace_view.load_file file with
    | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
    | Ok t ->
      print_string (Gg_obs.Trace_view.render_report ~epoch_limit:epochs ~top t);
      print_newline ();
      `Ok ()
  in
  Term.(ret (const run $ trace_file_arg $ epochs $ top))

let trace_critical_path_cmd =
  let run file json_out =
    trace_report ~render:Gg_obs.Trace_view.render_critical_path
      ~json:Gg_obs.Trace_view.critical_path_json file json_out
  in
  Cmd.v
    (Cmd.info "critical-path"
       ~doc:
         "Reconstruct each committed transaction's cross-node causal chain \
          and attribute its end-to-end latency to Algorithm 1 phases \
          (execute, seal wait, WAN hop, merge wait, spec wait, confirm \
          wait, validate, commit — the spec/confirm pair replaces \
          wan/merge-wait on confirmed fast-path epochs). The eight phases \
          sum exactly to the commit latency.")
    Term.(ret (const run $ trace_file_arg $ trace_json_arg))

let trace_wan_cmd =
  let run file json_out =
    trace_report ~render:Gg_obs.Trace_view.render_wan
      ~json:Gg_obs.Trace_view.wan_json file json_out
  in
  Cmd.v
    (Cmd.info "wan"
       ~doc:
         "Per-region-pair WAN traffic for the measurement window: bytes per \
          directed region pair and bytes per committed transaction.")
    Term.(ret (const run $ trace_file_arg $ trace_json_arg))

let trace_cmd =
  Cmd.group ~default:trace_summary_term
    (Cmd.info "trace"
       ~doc:
         "Analyze a JSONL trace: epoch timelines, per-phase latency \
          breakdowns, slowest-epoch drill-downs, cross-node skew, causal \
          critical paths and WAN accounting.")
    [ trace_critical_path_cmd; trace_wan_cmd ]

let main =
  Cmd.group
    (Cmd.info "geogauss" ~version:"1.0.0"
       ~doc:"GeoGauss: strongly consistent, light-coordinated geo-replicated \
             OLTP (simulated reproduction of SIGMOD'23).")
    [ bench_cmd; run_cmd; check_cmd; trace_cmd ]

let () = exit (Cmd.eval main)
