.PHONY: all build test fmt ci bench wallclock parallel merge check trace-demo clean

# Domain fan-out for the harness (check sweeps, experiment grids, bench
# scenarios). 0 = one worker per core; output is byte-identical at any
# value. Override per invocation: `make check JOBS=4`.
JOBS ?= 0

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is not part of the pinned dependency set everywhere this
# repo builds; format only when the tool is actually present.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune fmt; \
	else \
		echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Seeded chaos checking (DESIGN.md §8). `make check` is the standing
# smoke sweep; crank --seeds up for a longer hunt.
check:
	dune exec bin/geogauss_cli.exe -- check --seeds 25 --fast --jobs $(JOBS)
	dune exec bin/geogauss_cli.exe -- check --canary

ci: fmt
	dune build
	dune runtest
	@t1=$$(date +%s.%N); \
	dune exec bin/geogauss_cli.exe -- check --seeds 5 --fast --jobs 1 > /tmp/gg_ci_j1.out; \
	t2=$$(date +%s.%N); \
	dune exec bin/geogauss_cli.exe -- check --seeds 5 --fast --jobs $(JOBS) > /tmp/gg_ci_jn.out; \
	t3=$$(date +%s.%N); \
	cmp /tmp/gg_ci_j1.out /tmp/gg_ci_jn.out || { echo "ci: -j1 vs -j$(JOBS) output differs"; exit 1; }; \
	cat /tmp/gg_ci_jn.out; \
	cores=$$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1); \
	if [ "$$cores" -gt 1 ]; then \
		awk -v a="$$t1" -v b="$$t2" -v c="$$t3" \
			'BEGIN { printf "ci: check sweep %.2fs at -j1, %.2fs at JOBS=$(JOBS) (%.2fx)\n", b-a, c-b, (b-a)/(c-b) }'; \
	else \
		echo "ci: single-core host, speedup not meaningful (outputs compared equal)"; \
	fi
	dune exec bin/geogauss_cli.exe -- check --seeds 3 --fast --merge-jobs 4 > /tmp/gg_ci_mj.out; \
	tail -1 /tmp/gg_ci_mj.out; \
	echo "ci: merge-jobs=4 sweep ran clean (results are byte-identical to -j1 by construction; dune runtest asserts it)"
# Partial replication (DESIGN.md §12): a short partitioned sweep per
# partition map, plus a corrupted-frame sweep exercising the
# decode-failure -> stall-repair path.
	dune exec bin/geogauss_cli.exe -- check --seeds 5 --fast --partitioning hash:2 --jobs $(JOBS) > /tmp/gg_ci_ph.out; \
	tail -1 /tmp/gg_ci_ph.out
	dune exec bin/geogauss_cli.exe -- check --seeds 5 --fast --partitioning region --jobs $(JOBS) > /tmp/gg_ci_pr.out; \
	tail -1 /tmp/gg_ci_pr.out
	dune exec bin/geogauss_cli.exe -- check --seeds 3 --fast --corrupt 0.05 --jobs $(JOBS) > /tmp/gg_ci_cf.out; \
	tail -1 /tmp/gg_ci_cf.out
# Column-level merge (DESIGN.md §13): the same drawn seeds with the
# per-field lattice pinned on, through all five oracles.
	dune exec bin/geogauss_cli.exe -- check --seeds 5 --fast --merge-level column --jobs $(JOBS) > /tmp/gg_ci_ml.out; \
	tail -1 /tmp/gg_ci_ml.out
# Clock-assisted fast path (DESIGN.md §14): the same drawn seeds with
# speculative sealing and skew bursts pinned on — externalization still
# gates on the confirm point, so all five oracles apply unchanged.
	dune exec bin/geogauss_cli.exe -- check --seeds 5 --fast --engine eocc --clock-skew 10 --jobs $(JOBS) > /tmp/gg_ci_fp.out; \
	tail -1 /tmp/gg_ci_fp.out
	dune exec bin/geogauss_cli.exe -- check --canary
# Perf-regression accounting: fresh fast wallclock run vs the committed
# baseline. Fast mode uses shrunk populations, so rates differ
# legitimately; the wide threshold + warn-only keeps this a tripwire for
# order-of-magnitude regressions (and the absolute 5% tracing-overhead
# gate), not a flaky blocker.
	dune exec bench/main.exe -- wallclock --fast --out /tmp/gg_wc_fast.json --jobs $(JOBS)
	dune exec bin/geogauss_cli.exe -- bench diff BENCH_wallclock.json /tmp/gg_wc_fast.json --warn-only --threshold 0.5
# Same tripwire for the partial-replication sweep: fresh fast fig_scale
# vs the committed 25-200 replica baseline (fast mode only runs the
# 25/50 widths; the 100/200 rows report as missing, which warn-only
# tolerates). The fresh JSON lands in cwd, so park the baseline first.
	cp BENCH_scale.json /tmp/gg_scale_base.json; \
	dune exec bench/main.exe -- fig_scale --fast --jobs $(JOBS) > /dev/null; \
	mv BENCH_scale.json /tmp/gg_scale_fast.json; \
	cp /tmp/gg_scale_base.json BENCH_scale.json; \
	dune exec bin/geogauss_cli.exe -- bench diff /tmp/gg_scale_base.json /tmp/gg_scale_fast.json --warn-only --threshold 0.5
# And for the merge-granularity sweep: fresh fast fig_skew vs the
# committed baseline (abort-rate and WAN columns gate lower-is-better).
	cp BENCH_skew.json /tmp/gg_skew_base.json; \
	dune exec bench/main.exe -- fig_skew --fast --jobs $(JOBS) > /dev/null; \
	mv BENCH_skew.json /tmp/gg_skew_fast.json; \
	cp /tmp/gg_skew_base.json BENCH_skew.json; \
	dune exec bin/geogauss_cli.exe -- bench diff /tmp/gg_skew_base.json /tmp/gg_skew_fast.json --warn-only --threshold 0.5
# And for the fast-path sweep: fresh fast fig_fastpath vs the committed
# baseline (p50/p95 and mispredict-rate columns gate lower-is-better;
# fast mode only runs the 0/10/50 ms bounds, the rest report missing,
# which warn-only tolerates).
	cp BENCH_fastpath.json /tmp/gg_fp_base.json; \
	dune exec bench/main.exe -- fig_fastpath --fast --jobs $(JOBS) > /dev/null; \
	mv BENCH_fastpath.json /tmp/gg_fp_fast.json; \
	cp /tmp/gg_fp_base.json BENCH_fastpath.json; \
	dune exec bin/geogauss_cli.exe -- bench diff /tmp/gg_fp_base.json /tmp/gg_fp_fast.json --warn-only --threshold 0.5

bench:
	dune exec bench/main.exe -- --jobs $(JOBS)

wallclock:
	dune exec bench/main.exe -- wallclock --jobs $(JOBS)

parallel:
	dune exec bench/main.exe -- parallel

merge:
	dune exec bench/main.exe -- merge

# End-to-end tracing walkthrough: a seeded fig5-style run with tracing
# on, then the causal critical-path attribution and per-region-pair WAN
# report over the written trace. All three outputs are deterministic
# functions of the seed.
trace-demo:
	dune exec bin/geogauss_cli.exe -- run -w ycsb-mc -n 3 -t 2 --seed 7 --trace /tmp/gg_demo_trace.jsonl
	dune exec bin/geogauss_cli.exe -- trace critical-path /tmp/gg_demo_trace.jsonl --json /tmp/gg_demo_cp.json
	dune exec bin/geogauss_cli.exe -- trace wan /tmp/gg_demo_trace.jsonl --json /tmp/gg_demo_wan.json

clean:
	dune clean
