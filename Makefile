.PHONY: all build test fmt ci bench wallclock clean

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is not part of the pinned dependency set everywhere this
# repo builds; format only when the tool is actually present.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune fmt; \
	else \
		echo "fmt: ocamlformat not installed, skipping"; \
	fi

ci: fmt
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

wallclock:
	dune exec bench/main.exe -- wallclock

clean:
	dune clean
