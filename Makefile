.PHONY: all build test fmt ci bench wallclock check clean

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is not part of the pinned dependency set everywhere this
# repo builds; format only when the tool is actually present.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune fmt; \
	else \
		echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Seeded chaos checking (DESIGN.md §8). `make check` is the standing
# smoke sweep; crank --seeds up for a longer hunt.
check:
	dune exec bin/geogauss_cli.exe -- check --seeds 25 --fast
	dune exec bin/geogauss_cli.exe -- check --canary

ci: fmt
	dune build
	dune runtest
	dune exec bin/geogauss_cli.exe -- check --seeds 5 --fast
	dune exec bin/geogauss_cli.exe -- check --canary

bench:
	dune exec bench/main.exe

wallclock:
	dune exec bench/main.exe -- wallclock

clean:
	dune clean
