(* Tests for the CRDT layer: the Algorithm 2 merge rule and its ACI
   properties (the heart of the paper's correctness argument, Lemma 2),
   write-set serialization, and the Anna lattices. *)

open Gg_crdt
module Csn = Gg_storage.Csn
module Row_header = Gg_storage.Row_header
module Value = Gg_storage.Value

let meta ~sen ~cen ~ts ~node = Meta.make ~sen ~cen ~csn:(Csn.make ~ts ~node)

(* --- Meta ordering (Lemma 2) --- *)

let test_meta_shorter_wins () =
  let a = meta ~sen:3 ~cen:5 ~ts:10 ~node:0 in
  let b = meta ~sen:2 ~cen:5 ~ts:1 ~node:1 in
  (* a has larger sen: it started later, so it is shorter and wins. *)
  Alcotest.(check bool) "larger sen wins" true (Meta.wins_over a b);
  Alcotest.(check bool) "antisymmetric" false (Meta.wins_over b a)

let test_meta_first_write_wins () =
  let a = meta ~sen:4 ~cen:5 ~ts:10 ~node:0 in
  let b = meta ~sen:4 ~cen:5 ~ts:11 ~node:1 in
  Alcotest.(check bool) "smaller csn wins" true (Meta.wins_over a b);
  Alcotest.(check bool) "antisymmetric" false (Meta.wins_over b a)

let test_meta_node_tiebreak () =
  let a = meta ~sen:4 ~cen:5 ~ts:10 ~node:0 in
  let b = meta ~sen:4 ~cen:5 ~ts:10 ~node:1 in
  Alcotest.(check bool) "node id breaks ties" true (Meta.wins_over a b)

let test_meta_cross_epoch_rejected () =
  let a = meta ~sen:1 ~cen:5 ~ts:1 ~node:0 in
  let b = meta ~sen:1 ~cen:6 ~ts:2 ~node:1 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Meta.wins_over a b);
       false
     with Invalid_argument _ -> true)

let test_meta_strict_total_order () =
  (* Any two distinct metas of an epoch are strictly ordered. *)
  let metas =
    List.concat_map
      (fun sen ->
        List.concat_map
          (fun ts -> List.map (fun node -> meta ~sen ~cen:9 ~ts ~node) [ 0; 1; 2 ])
          [ 1; 2 ])
      [ 7; 8; 9 ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Meta.equal a b) then
            Alcotest.(check bool)
              (Printf.sprintf "total: %s vs %s" (Meta.to_string a) (Meta.to_string b))
              true
              (Meta.wins_over a b <> Meta.wins_over b a))
        metas)
    metas

(* --- Merge rule (Algorithm 2) --- *)

let fresh_header () = Row_header.create ()

let test_merge_empty_epoch_wins () =
  let h = fresh_header () in
  let m = meta ~sen:3 ~cen:4 ~ts:10 ~node:1 in
  (match Merge.merge_header h ~meta:m with
  | Merge.Win -> ()
  | _ -> Alcotest.fail "first pre-write must win");
  Alcotest.(check int) "sen stamped" 3 h.Row_header.sen;
  Alcotest.(check int) "cen stamped" 4 h.Row_header.cen;
  Alcotest.(check bool) "csn stamped" true (Csn.equal h.Row_header.csn (Csn.make ~ts:10 ~node:1))

let test_merge_shorter_txn_wins () =
  let h = fresh_header () in
  let long_txn = meta ~sen:1 ~cen:5 ~ts:3 ~node:0 in
  let short_txn = meta ~sen:5 ~cen:5 ~ts:9 ~node:1 in
  ignore (Merge.merge_header h ~meta:long_txn);
  (match Merge.merge_header h ~meta:short_txn with
  | Merge.Win -> ()
  | _ -> Alcotest.fail "shorter transaction must win");
  (* And the loser, replayed, stays a loser. *)
  match Merge.merge_header h ~meta:long_txn with
  | Merge.Lose -> ()
  | _ -> Alcotest.fail "longer transaction must lose"

let test_merge_first_write_wins_same_sen () =
  let h = fresh_header () in
  let first = meta ~sen:5 ~cen:5 ~ts:5 ~node:0 in
  let second = meta ~sen:5 ~cen:5 ~ts:8 ~node:1 in
  ignore (Merge.merge_header h ~meta:second);
  (match Merge.merge_header h ~meta:first with
  | Merge.Win -> ()
  | _ -> Alcotest.fail "earlier csn must win");
  match Merge.merge_header h ~meta:second with
  | Merge.Lose -> ()
  | _ -> Alcotest.fail "later csn must lose"

let test_merge_idempotent_same_txn () =
  let h = fresh_header () in
  let m = meta ~sen:5 ~cen:5 ~ts:5 ~node:0 in
  ignore (Merge.merge_header h ~meta:m);
  match Merge.merge_header h ~meta:m with
  | Merge.Already -> ()
  | Merge.Win -> Alcotest.fail "should be Already, not Win"
  | Merge.Lose -> Alcotest.fail "retransmission must not abort its own txn"

let test_merge_cross_epoch_precondition () =
  let h = fresh_header () in
  ignore (Merge.merge_header h ~meta:(meta ~sen:5 ~cen:5 ~ts:5 ~node:0));
  Alcotest.(check bool) "row.cen > T.cen rejected" true
    (try
       ignore (Merge.merge_header h ~meta:(meta ~sen:4 ~cen:4 ~ts:4 ~node:1));
       false
     with Invalid_argument _ -> true)

let test_merge_next_epoch_overwrites () =
  let h = fresh_header () in
  ignore (Merge.merge_header h ~meta:(meta ~sen:5 ~cen:5 ~ts:5 ~node:0));
  match Merge.merge_header h ~meta:(meta ~sen:2 ~cen:6 ~ts:6 ~node:1) with
  | Merge.Win -> Alcotest.(check int) "cen advanced" 6 h.Row_header.cen
  | _ -> Alcotest.fail "new epoch always overwrites"

(* Property: the final header state after merging any permutation (with
   duplicates) of an epoch's updates equals the Lemma 2 winner. *)

let gen_metas =
  QCheck.Gen.(
    let cen = 10 in
    list_size (int_range 1 8)
      (map3
         (fun sen ts node -> meta ~sen:(1 + sen) ~cen ~ts:(1 + ts) ~node)
         (int_range 0 9) (int_range 0 99) (int_range 0 4)))

(* csns must be globally unique: dedup by csn. *)
let dedup_by_csn metas =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (m : Meta.t) ->
      let k = (m.csn.Csn.ts, m.csn.Csn.node) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    metas

let lemma2_winner metas =
  List.fold_left
    (fun best m ->
      match best with
      | None -> Some m
      | Some b -> if Meta.wins_over m b then Some m else Some b)
    None metas

let apply_all metas =
  let h = fresh_header () in
  List.iter (fun m -> ignore (Merge.merge_header h ~meta:m)) metas;
  h

let prop_merge_order_independent =
  QCheck.Test.make ~name:"merge is order independent (commutative)" ~count:500
    (QCheck.make gen_metas) (fun metas ->
      let metas = dedup_by_csn metas in
      QCheck.assume (metas <> []);
      let shuffled =
        let a = Array.of_list metas in
        let rng = Gg_util.Rng.create (List.length metas) in
        Gg_util.Rng.shuffle rng a;
        Array.to_list a
      in
      let h1 = apply_all metas and h2 = apply_all shuffled in
      Csn.equal h1.Row_header.csn h2.Row_header.csn
      && h1.Row_header.sen = h2.Row_header.sen)

let prop_merge_idempotent =
  QCheck.Test.make ~name:"merge is idempotent (duplicates harmless)" ~count:500
    (QCheck.make gen_metas) (fun metas ->
      let metas = dedup_by_csn metas in
      QCheck.assume (metas <> []);
      let h1 = apply_all metas in
      let h2 = apply_all (metas @ metas @ List.rev metas) in
      Csn.equal h1.Row_header.csn h2.Row_header.csn)

let prop_merge_matches_lemma2 =
  QCheck.Test.make ~name:"merge winner matches Lemma 2 total order" ~count:500
    (QCheck.make gen_metas) (fun metas ->
      let metas = dedup_by_csn metas in
      QCheck.assume (metas <> []);
      let h = apply_all metas in
      match lemma2_winner metas with
      | None -> false
      | Some w -> Csn.equal h.Row_header.csn w.Meta.csn)

let prop_merge_associative_partial =
  (* Associativity: merging updates in two chunks equals merging all at
     once (partial merges allowed). *)
  QCheck.Test.make ~name:"merge is associative (partial batches)" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_metas gen_metas))
    (fun (ma, mb) ->
      let all = dedup_by_csn (ma @ mb) in
      QCheck.assume (all <> []);
      let h1 = apply_all all in
      let h2 = fresh_header () in
      let n = List.length all / 2 in
      let chunk1 = List.filteri (fun i _ -> i < n) all in
      let chunk2 = List.filteri (fun i _ -> i >= n) all in
      List.iter (fun m -> ignore (Merge.merge_header h2 ~meta:m)) chunk1;
      List.iter (fun m -> ignore (Merge.merge_header h2 ~meta:m)) chunk2;
      Csn.equal h1.Row_header.csn h2.Row_header.csn)

(* --- Full write-set ACI under a hand-rolled seeded generator ---

   The QCheck properties above exercise single-row header merges. These
   drive whole write sets — several rows per transaction, inserts,
   updates and deletes — through a replay harness that mirrors the
   node's apply step (header merge decides the winner; the winning
   record's op decides the tombstone). The chaos checker's ACI oracle
   uses the same construction on live traffic; here we pin it down on
   adversarial synthetic epochs, seeded so failures reproduce. *)

module Rng = Gg_util.Rng

let gen_epoch_writesets rng ~cen ~n =
  List.init n (fun i ->
      let sen = 1 + Rng.int rng cen in
      (* ts unique per write set => globally unique csns. *)
      let m = meta ~sen ~cen ~ts:(100 + i) ~node:(Rng.int rng 5) in
      let n_rows = 1 + Rng.int rng 3 in
      let keys =
        List.sort_uniq compare (List.init n_rows (fun _ -> Rng.int rng 8))
      in
      let records =
        List.map
          (fun k ->
            let op =
              match Rng.int rng 4 with
              | 0 -> Writeset.Insert
              | 1 -> Writeset.Delete
              | _ -> Writeset.Update
            in
            let data =
              if op = Writeset.Delete then [||]
              else [| Value.Int k; Value.Int (Rng.int rng 1000) |]
            in
            Writeset.make_record ~table:"t" ~key:[| Value.Int k |] ~op ~data ())
          keys
      in
      Writeset.make ~meta:m ~records ())

let replay_state wss =
  let rows = Hashtbl.create 32 in
  List.iter
    (fun (ws : Writeset.t) ->
      List.iter
        (fun (r : Writeset.record) ->
          let id = (r.Writeset.table, Writeset.key_str r) in
          let header, winner_op =
            match Hashtbl.find_opt rows id with
            | Some hs -> hs
            | None ->
              let hs = (Row_header.create (), ref Writeset.Update) in
              Hashtbl.add rows id hs;
              hs
          in
          match Merge.merge_header header ~meta:ws.Writeset.meta with
          | Merge.Win -> winner_op := r.Writeset.op
          | Merge.Lose | Merge.Already -> ())
        ws.Writeset.records)
    wss;
  Hashtbl.fold
    (fun (tbl, key) ((h : Row_header.t), winner_op) acc ->
      ( tbl,
        key,
        h.Row_header.sen,
        h.Row_header.csn.Csn.ts,
        h.Row_header.csn.Csn.node,
        !winner_op = Writeset.Delete )
      :: acc)
    rows []
  |> List.sort compare

let shuffled rng l =
  let a = Array.of_list l in
  Rng.shuffle rng a;
  Array.to_list a

let test_ws_replay_commutative () =
  let rng = Rng.create 0xC0FFEE in
  for _ = 1 to 200 do
    let wss = gen_epoch_writesets rng ~cen:10 ~n:(1 + Rng.int rng 8) in
    let reference = replay_state wss in
    Alcotest.(check bool) "any delivery order, same state" true
      (replay_state (shuffled rng wss) = reference)
  done

let test_ws_replay_idempotent () =
  let rng = Rng.create 0xD0D0 in
  for _ = 1 to 200 do
    let wss = gen_epoch_writesets rng ~cen:10 ~n:(1 + Rng.int rng 8) in
    let reference = replay_state wss in
    (* Every write set retransmitted, in a different order. *)
    Alcotest.(check bool) "duplicates absorbed" true
      (replay_state (wss @ shuffled rng wss) = reference)
  done

let test_ws_replay_grouping_independent () =
  (* Associativity in state-based form: delivering the epoch in any two
     mini-batches (each internally shuffled, boundary arbitrary) ends in
     the same state as one batch. *)
  let rng = Rng.create 0xABBA in
  for _ = 1 to 200 do
    let wss = gen_epoch_writesets rng ~cen:10 ~n:(2 + Rng.int rng 8) in
    let reference = replay_state wss in
    let cut = 1 + Rng.int rng (List.length wss - 1) in
    let chunk1 = shuffled rng (List.filteri (fun i _ -> i < cut) wss) in
    let chunk2 = shuffled rng (List.filteri (fun i _ -> i >= cut) wss) in
    Alcotest.(check bool) "chunked = whole" true
      (replay_state (chunk1 @ chunk2) = reference)
  done

let test_ws_tombstone_race_deterministic () =
  (* A delete and an update race on one row in one epoch: the Lemma 2
     winner decides the tombstone, independent of order, and replaying
     the loser afterwards changes nothing. *)
  let row k op data =
    Writeset.make_record ~table:"t" ~key:[| Value.Int k |] ~op ~data ()
  in
  let del =
    Writeset.make
      ~meta:(meta ~sen:5 ~cen:7 ~ts:10 ~node:0)
      ~records:[ row 1 Writeset.Delete [||] ]
      ()
  in
  let upd =
    Writeset.make
      ~meta:(meta ~sen:5 ~cen:7 ~ts:11 ~node:1)
      ~records:[ row 1 Writeset.Update [| Value.Int 1; Value.Int 9 |] ]
      ()
  in
  let s1 = replay_state [ del; upd ] in
  let s2 = replay_state [ upd; del ] in
  Alcotest.(check bool) "order-independent" true (s1 = s2);
  (match s1 with
  | [ (_, _, _, ts, _, deleted) ] ->
    Alcotest.(check int) "delete (smaller csn) wins" 10 ts;
    Alcotest.(check bool) "row tombstoned" true deleted
  | _ -> Alcotest.fail "one row expected");
  Alcotest.(check bool) "losing update re-delivered is a no-op" true
    (replay_state [ del; upd; upd ] = s1)

let test_lww_map_aci_seeded () =
  (* Seeded whole-map ACI: merge of random Lww_maps is commutative,
     associative and idempotent. Values derive from (ts, node) so the
     stamp uniquely identifies the write. *)
  let open Lattice in
  let rng = Rng.create 0xFACADE in
  let gen_map () =
    let n = 1 + Rng.int rng 6 in
    let m = ref Lww_map.empty in
    for _ = 1 to n do
      let ts = Rng.int rng 50 and node = Rng.int rng 4 in
      let key = Printf.sprintf "k%d" (Rng.int rng 4) in
      m :=
        Lww_map.set !m ~key
          (Lww.make ~ts ~node ~value:(Printf.sprintf "%d-%d" ts node))
    done;
    !m
  in
  for _ = 1 to 200 do
    let a = gen_map () and b = gen_map () and c = gen_map () in
    Alcotest.(check bool) "commutative" true
      (Lww_map.equal (Lww_map.merge a b) (Lww_map.merge b a));
    Alcotest.(check bool) "associative" true
      (Lww_map.equal
         (Lww_map.merge (Lww_map.merge a b) c)
         (Lww_map.merge a (Lww_map.merge b c)));
    Alcotest.(check bool) "idempotent" true
      (Lww_map.equal (Lww_map.merge a a) a)
  done

(* --- Writeset serialization --- *)

let sample_ws () =
  let records =
    [
      Writeset.make_record ~table:"accounts" ~key:[| Value.Int 7 |]
        ~op:Writeset.Update
        ~data:[| Value.Int 7; Value.Str "bob"; Value.Int 250 |]
        ();
      Writeset.make_record ~table:"orders"
        ~key:[| Value.Int 1; Value.Int 2 |]
        ~op:Writeset.Insert
        ~data:[| Value.Int 1; Value.Int 2; Value.Str "widget" |]
        ();
      Writeset.make_record ~table:"orders"
        ~key:[| Value.Int 9; Value.Int 9 |]
        ~op:Writeset.Delete ~data:[||] ();
    ]
  in
  Writeset.make ~meta:(meta ~sen:3 ~cen:4 ~ts:100 ~node:2) ~records ()

let test_writeset_roundtrip () =
  let ws = sample_ws () in
  let enc = Gg_util.Codec.Enc.create () in
  Writeset.encode enc ws;
  let dec = Gg_util.Codec.Dec.of_bytes (Gg_util.Codec.Enc.to_bytes enc) in
  let ws' = Writeset.decode dec in
  Alcotest.(check bool) "meta" true (Meta.equal ws.Writeset.meta ws'.Writeset.meta);
  Alcotest.(check int) "records" 3 (List.length ws'.Writeset.records);
  List.iter2
    (fun (a : Writeset.record) (b : Writeset.record) ->
      Alcotest.(check string) "table" a.table b.table;
      Alcotest.(check bool) "op" true (a.op = b.op);
      Alcotest.(check string) "key" (Writeset.key_str a) (Writeset.key_str b);
      Alcotest.(check int) "data arity" (Array.length a.data) (Array.length b.data))
    ws.Writeset.records ws'.Writeset.records

let test_batch_wire_roundtrip () =
  let batch =
    Writeset.Batch.make ~node:1 ~cen:4 ~txns:[ sample_ws (); sample_ws () ]
      ~eof:true ()
  in
  let wire = Writeset.Batch.to_wire batch in
  let batch' = Writeset.Batch.of_wire wire in
  Alcotest.(check int) "node" 1 batch'.Writeset.Batch.node;
  Alcotest.(check int) "cen" 4 batch'.Writeset.Batch.cen;
  Alcotest.(check bool) "eof" true batch'.Writeset.Batch.eof;
  Alcotest.(check int) "txns" 2 (List.length batch'.Writeset.Batch.txns)

let test_batch_empty_message () =
  (* The empty-epoch EOF message of §4.2.3. *)
  let batch = Writeset.Batch.make ~node:2 ~cen:9 ~txns:[] ~eof:true () in
  let batch' = Writeset.Batch.of_wire (Writeset.Batch.to_wire batch) in
  Alcotest.(check int) "no txns" 0 (List.length batch'.Writeset.Batch.txns);
  Alcotest.(check bool) "small on wire" true (Writeset.Batch.wire_size batch < 64)

let test_batch_compression_effective () =
  (* Many similar rows should compress well below the raw encoding. *)
  let records =
    List.init 200 (fun i ->
        Writeset.make_record ~table:"ycsb_main" ~key:[| Value.Int i |]
          ~op:Writeset.Update
          ~data:(Array.init 10 (fun c -> Value.Str (Printf.sprintf "field%d" c)))
          ())
  in
  let ws = Writeset.make ~meta:(meta ~sen:1 ~cen:1 ~ts:1 ~node:0) ~records () in
  let raw = Writeset.encoded_size ws in
  let batch = Writeset.Batch.make ~node:0 ~cen:1 ~txns:[ ws ] ~eof:true () in
  let wire = Writeset.Batch.wire_size batch in
  Alcotest.(check bool)
    (Printf.sprintf "compressed %d < raw %d / 3" wire raw)
    true
    (wire < raw / 3)

let test_decoded_key_cache_matches () =
  (* A decoded record arrives with its key encoding pre-cached from the
     wire span; it must equal a from-scratch [Value.encode_key]. *)
  let ws = sample_ws () in
  let enc = Gg_util.Codec.Enc.create () in
  Writeset.encode enc ws;
  let dec = Gg_util.Codec.Dec.of_bytes (Gg_util.Codec.Enc.to_bytes enc) in
  let ws' = Writeset.decode dec in
  List.iter
    (fun (r : Writeset.record) ->
      Alcotest.(check bool) "cache populated at decode" true (r.key_enc <> "");
      Alcotest.(check string) "cached = fresh encode" (Value.encode_key r.key)
        (Writeset.key_str r))
    ws'.Writeset.records

let test_key_cache_lazy_and_seeded () =
  (* Lazily built on first use... *)
  let r =
    Writeset.make_record ~table:"t" ~key:[| Value.Int 3 |] ~op:Writeset.Update
      ~data:[| Value.Int 3 |] ()
  in
  Alcotest.(check string) "starts empty" "" r.Writeset.key_enc;
  Alcotest.(check string) "computed" (Value.encode_key r.key) (Writeset.key_str r);
  Alcotest.(check bool) "cached after use" true (r.Writeset.key_enc <> "");
  (* ...and trusted when the constructor seeds it. *)
  let pre = Value.encode_key [| Value.Int 3 |] in
  let r' =
    Writeset.make_record ~key_str:pre ~table:"t" ~key:[| Value.Int 3 |]
      ~op:Writeset.Update ~data:[| Value.Int 3 |] ()
  in
  Alcotest.(check string) "seed used as-is" pre (Writeset.key_str r')

let test_wire_size_matches_wire () =
  let full =
    Writeset.Batch.make ~node:1 ~cen:4 ~txns:[ sample_ws (); sample_ws () ]
      ~eof:true ()
  in
  Alcotest.(check int) "full batch"
    (Bytes.length (Writeset.Batch.to_wire full))
    (Writeset.Batch.wire_size full);
  (* Count-only EOF marker, as sent after pipelined mini-batches. *)
  let eof_only = Writeset.Batch.make ~node:0 ~cen:7 ~txns:[] ~eof:true ~count:5 () in
  Alcotest.(check int) "count-only EOF batch"
    (Bytes.length (Writeset.Batch.to_wire eof_only))
    (Writeset.Batch.wire_size eof_only);
  let eof' = Writeset.Batch.of_wire (Writeset.Batch.to_wire eof_only) in
  Alcotest.(check int) "count survives" 5 eof'.Writeset.Batch.count

let test_wire_cache_single_encode () =
  let batch = Writeset.Batch.make ~node:0 ~cen:1 ~txns:[ sample_ws () ] ~eof:true () in
  Writeset.Batch.reset_encode_count ();
  let w1 = Writeset.Batch.to_wire batch in
  ignore (Writeset.Batch.wire_size batch);
  let w2 = Writeset.Batch.to_wire batch in
  Alcotest.(check bool) "same bytes object" true (w1 == w2);
  Alcotest.(check int) "one encode pass" 1 (Writeset.Batch.encode_count ());
  (* of_wire keeps the input as the decoded batch's cached wire form. *)
  let batch' = Writeset.Batch.of_wire w1 in
  ignore (Writeset.Batch.wire_size batch');
  Alcotest.(check int) "decode side re-encodes nothing" 1
    (Writeset.Batch.encode_count ())

let test_batch_corrupt_rejected () =
  Alcotest.(check bool) "corrupt" true
    (try
       ignore (Writeset.Batch.of_wire (Bytes.of_string "nonsense"));
       false
     with Invalid_argument _ -> true)

(* --- Column-level lattice (DESIGN.md §13) --- *)

(* Value derived from the full meta, so equal metas carry equal values
   and the join stays a function of the stamp alone. *)
let col_cell ~sen ~ts ~node =
  Column.cell ~meta:(meta ~sen ~cen:10 ~ts ~node) (Value.Int ((sen * 10_000) + (ts * 10) + node))

let gen_cells =
  QCheck.Gen.(
    map3
      (fun sen ts node -> col_cell ~sen:(1 + sen) ~ts:(1 + ts) ~node)
      (int_range 0 9) (int_range 0 99) (int_range 0 4))

let prop_column_join_aci =
  QCheck.Test.make ~name:"column cell join is ACI" ~count:500
    (QCheck.make QCheck.Gen.(triple gen_cells gen_cells gen_cells))
    (fun (a, b, c) ->
      let open Column in
      join a b = join b a
      && join (join a b) c = join a (join b c)
      && join a a = a)

let prop_column_claim_aci_matches_row_order =
  (* The claim join must be ACI and pick exactly the row header's
     Lemma 2 winner — claim winner = header winner is what makes the
     column kernel's phase B agree with phase A's stamping. *)
  let gen_claim =
    QCheck.Gen.(
      map
        (fun ((sen, ts), (node, del)) ->
          Column.claim ~meta:(meta ~sen:(1 + sen) ~cen:10 ~ts:(1 + ts) ~node) ~delete:del)
        (pair (pair (int_range 0 9) (int_range 0 99)) (pair (int_range 0 4) bool)))
  in
  QCheck.Test.make ~name:"claim join is ACI and matches Lemma 2" ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_range 1 8) gen_claim))
    (fun claims ->
      (* csns must be unique for the order to be total: dedup. *)
      let claims =
        let seen = Hashtbl.create 16 in
        List.filter
          (fun (c : Column.claim) ->
            let k = (c.c_meta.Meta.csn.Csn.ts, c.c_meta.Meta.csn.Csn.node) in
            if Hashtbl.mem seen k then false
            else (Hashtbl.add seen k (); true))
          claims
      in
      QCheck.assume (claims <> []);
      let joined =
        List.fold_left
          (fun acc c -> Some (Column.claim_join_opt acc c))
          None claims
      in
      let winner = lemma2_winner (List.map (fun (c : Column.claim) -> c.Column.c_meta) claims) in
      let ok_winner =
        match (joined, winner) with
        | Some j, Some w -> Meta.equal j.Column.c_meta w
        | _ -> false
      in
      let ok_aci =
        match claims with
        | a :: b :: _ ->
          Column.claim_join a b = Column.claim_join b a
          && Column.claim_join a a = a
        | _ -> true
      in
      ok_winner && ok_aci)

let test_column_tombstone_vs_update_race () =
  (* Same race as the row-level tombstone test, at claim granularity:
     whichever side wins the epoch order decides the whole row's fate. *)
  let del = Column.claim ~meta:(meta ~sen:5 ~cen:7 ~ts:10 ~node:0) ~delete:true in
  let upd = Column.claim ~meta:(meta ~sen:5 ~cen:7 ~ts:11 ~node:1) ~delete:false in
  let j1 = Column.claim_join del upd and j2 = Column.claim_join upd del in
  Alcotest.(check bool) "order-independent" true (j1 = j2);
  Alcotest.(check bool) "delete (smaller csn) wins" true j1.Column.c_delete;
  (* Flip the order: a shorter update beats the delete. *)
  let upd' = Column.claim ~meta:(meta ~sen:6 ~cen:7 ~ts:12 ~node:1) ~delete:false in
  Alcotest.(check bool) "shorter update survives" false
    (Column.claim_join del upd').Column.c_delete

let test_column_mask_ops () =
  Alcotest.(check bool) "full covers all" true (Column.covers ~cols:Column.full 61);
  let m = Column.union (Column.of_index 1) (Column.of_index 3) in
  Alcotest.(check bool) "covers 1" true (Column.covers ~cols:m 1);
  Alcotest.(check bool) "not 2" false (Column.covers ~cols:m 2);
  Alcotest.(check bool) "full absorbs" true
    (Column.union m Column.full = Column.full);
  Alcotest.(check bool) "out of range is full" true
    (Column.of_index Column.max_mask_cols = Column.full)

let masked_ws () =
  let r =
    Writeset.make_record ~table:"t" ~key:[| Value.Int 1 |] ~op:Writeset.Update
      ~cols:(Column.union (Column.of_index 1) (Column.of_index 3))
      ~data:[| Value.Int 1; Value.Str "b"; Value.Int 99; Value.Int 7; Value.Null |]
      ()
  in
  Writeset.make ~meta:(meta ~sen:2 ~cen:3 ~ts:50 ~node:1) ~records:[ r ] ()

let encode_bytes ws =
  let enc = Gg_util.Codec.Enc.create () in
  Writeset.encode enc ws;
  Gg_util.Codec.Enc.to_bytes enc

let test_masked_record_roundtrip () =
  let ws = masked_ws () in
  let b1 = encode_bytes ws in
  let ws' = Writeset.decode (Gg_util.Codec.Dec.of_bytes b1) in
  (match ws'.Writeset.records with
  | [ r ] ->
    Alcotest.(check bool) "mask survives" true
      (r.Writeset.cols = Column.union (Column.of_index 1) (Column.of_index 3));
    Alcotest.(check int) "arity survives" 5 (Array.length r.Writeset.data);
    Alcotest.(check bool) "covered col 1" true (r.Writeset.data.(1) = Value.Str "b");
    Alcotest.(check bool) "covered col 3" true (r.Writeset.data.(3) = Value.Int 7);
    Alcotest.(check bool) "uncovered are Null placeholders" true
      (r.Writeset.data.(0) = Value.Null && r.Writeset.data.(2) = Value.Null)
  | _ -> Alcotest.fail "one record expected");
  (* Byte stability: re-encoding the decoded form reproduces the wire
     bytes exactly (replicas re-disseminate what they decoded). *)
  Alcotest.(check bool) "re-encode is byte-identical" true
    (Bytes.equal b1 (encode_bytes ws'))

let test_full_mask_stream_unchanged () =
  (* A row-level record (cols = full) must encode exactly as it did
     before masks existed: the default-cols constructor and an explicit
     full mask produce byte-identical streams, with no masked tag. *)
  let mk ?cols () =
    let r =
      Writeset.make_record ?cols ~table:"t" ~key:[| Value.Int 1 |]
        ~op:Writeset.Update
        ~data:[| Value.Int 1; Value.Str "x" |]
        ()
    in
    Writeset.make ~meta:(meta ~sen:1 ~cen:2 ~ts:9 ~node:0) ~records:[ r ] ()
  in
  let b_default = encode_bytes (mk ()) in
  let b_full = encode_bytes (mk ~cols:Column.full ()) in
  Alcotest.(check bool) "default = explicit full" true (Bytes.equal b_default b_full);
  let ws' = Writeset.decode (Gg_util.Codec.Dec.of_bytes b_default) in
  match ws'.Writeset.records with
  | [ r ] -> Alcotest.(check bool) "decodes to full" true (r.Writeset.cols = Column.full)
  | _ -> Alcotest.fail "one record expected"

(* --- Lattices --- *)

let test_lww_merge () =
  let open Lattice in
  let a = Lww.make ~ts:5 ~node:0 ~value:"a" in
  let b = Lww.make ~ts:7 ~node:1 ~value:"b" in
  Alcotest.(check bool) "later wins" true (Lww.equal (Lww.merge a b) b);
  Alcotest.(check bool) "commutative" true (Lww.equal (Lww.merge a b) (Lww.merge b a));
  let c = Lww.make ~ts:5 ~node:1 ~value:"c" in
  Alcotest.(check bool) "node tiebreak" true (Lww.equal (Lww.merge a c) c)

let test_lww_map_merge () =
  let open Lattice in
  let m1 = Lww_map.set Lww_map.empty ~key:"x" (Lww.make ~ts:1 ~node:0 ~value:"1") in
  let m1 = Lww_map.set m1 ~key:"y" (Lww.make ~ts:2 ~node:0 ~value:"2") in
  let m2 = Lww_map.set Lww_map.empty ~key:"x" (Lww.make ~ts:3 ~node:1 ~value:"3") in
  let m = Lww_map.merge m1 m2 in
  Alcotest.(check int) "two keys" 2 (Lww_map.cardinal m);
  (match Lww_map.get m ~key:"x" with
  | Some v -> Alcotest.(check string) "newest x" "3" v.Lattice.Lww.value
  | None -> Alcotest.fail "x missing");
  Alcotest.(check bool) "commutative" true
    (Lww_map.equal m (Lww_map.merge m2 m1))

let test_lww_map_delta () =
  let open Lattice in
  let m = Lww_map.set Lww_map.empty ~key:"old" (Lww.make ~ts:1 ~node:0 ~value:"o") in
  let m = Lww_map.set m ~key:"new" (Lww.make ~ts:10 ~node:0 ~value:"n") in
  let d = Lww_map.delta m ~since:5 in
  Alcotest.(check int) "delta has only new" 1 (Lww_map.cardinal d)

let test_gset () =
  let open Lattice in
  let a = Gset.add "x" (Gset.singleton "y") in
  let b = Gset.singleton "z" in
  let m = Gset.merge a b in
  Alcotest.(check int) "union" 3 (Gset.cardinal m);
  Alcotest.(check bool) "mem" true (Gset.mem "x" m)

let prop_lww_aci =
  (* (ts, node) must uniquely identify a write for LWW to be a lattice,
     so derive the value from the stamp. *)
  let gen =
    QCheck.Gen.(
      map2
        (fun ts node ->
          Lattice.Lww.make ~ts ~node ~value:(Printf.sprintf "%d-%d" ts node))
        (int_range 0 100) (int_range 0 5))
  in
  QCheck.Test.make ~name:"lww merge is ACI" ~count:500
    (QCheck.make QCheck.Gen.(triple gen gen gen))
    (fun (a, b, c) ->
      let open Lattice.Lww in
      equal (merge a b) (merge b a)
      && equal (merge (merge a b) c) (merge a (merge b c))
      && equal (merge a a) a)

let () =
  Alcotest.run "gg_crdt"
    [
      ( "meta",
        [
          Alcotest.test_case "shorter wins" `Quick test_meta_shorter_wins;
          Alcotest.test_case "first write wins" `Quick test_meta_first_write_wins;
          Alcotest.test_case "node tiebreak" `Quick test_meta_node_tiebreak;
          Alcotest.test_case "cross-epoch rejected" `Quick test_meta_cross_epoch_rejected;
          Alcotest.test_case "strict total order" `Quick test_meta_strict_total_order;
        ] );
      ( "merge",
        [
          Alcotest.test_case "fresh row wins" `Quick test_merge_empty_epoch_wins;
          Alcotest.test_case "shorter txn wins" `Quick test_merge_shorter_txn_wins;
          Alcotest.test_case "first write wins" `Quick test_merge_first_write_wins_same_sen;
          Alcotest.test_case "idempotent retransmit" `Quick test_merge_idempotent_same_txn;
          Alcotest.test_case "epoch precondition" `Quick test_merge_cross_epoch_precondition;
          Alcotest.test_case "next epoch overwrites" `Quick test_merge_next_epoch_overwrites;
          QCheck_alcotest.to_alcotest prop_merge_order_independent;
          QCheck_alcotest.to_alcotest prop_merge_idempotent;
          QCheck_alcotest.to_alcotest prop_merge_matches_lemma2;
          QCheck_alcotest.to_alcotest prop_merge_associative_partial;
        ] );
      ( "writeset merge (seeded)",
        [
          Alcotest.test_case "commutative" `Quick test_ws_replay_commutative;
          Alcotest.test_case "idempotent" `Quick test_ws_replay_idempotent;
          Alcotest.test_case "grouping independent" `Quick test_ws_replay_grouping_independent;
          Alcotest.test_case "tombstone race deterministic" `Quick test_ws_tombstone_race_deterministic;
          Alcotest.test_case "lww map ACI (seeded)" `Quick test_lww_map_aci_seeded;
        ] );
      ( "writeset",
        [
          Alcotest.test_case "roundtrip" `Quick test_writeset_roundtrip;
          Alcotest.test_case "batch wire roundtrip" `Quick test_batch_wire_roundtrip;
          Alcotest.test_case "empty epoch message" `Quick test_batch_empty_message;
          Alcotest.test_case "compression effective" `Quick test_batch_compression_effective;
          Alcotest.test_case "decoded key cache" `Quick test_decoded_key_cache_matches;
          Alcotest.test_case "key cache lazy + seeded" `Quick test_key_cache_lazy_and_seeded;
          Alcotest.test_case "wire_size = |to_wire|" `Quick test_wire_size_matches_wire;
          Alcotest.test_case "wire cache single encode" `Quick test_wire_cache_single_encode;
          Alcotest.test_case "corrupt rejected" `Quick test_batch_corrupt_rejected;
        ] );
      ( "column",
        [
          QCheck_alcotest.to_alcotest prop_column_join_aci;
          QCheck_alcotest.to_alcotest prop_column_claim_aci_matches_row_order;
          Alcotest.test_case "tombstone vs update race" `Quick
            test_column_tombstone_vs_update_race;
          Alcotest.test_case "mask operations" `Quick test_column_mask_ops;
          Alcotest.test_case "masked record roundtrip bytes" `Quick
            test_masked_record_roundtrip;
          Alcotest.test_case "full-mask stream unchanged" `Quick
            test_full_mask_stream_unchanged;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "lww merge" `Quick test_lww_merge;
          Alcotest.test_case "lww map merge" `Quick test_lww_map_merge;
          Alcotest.test_case "lww map delta" `Quick test_lww_map_delta;
          Alcotest.test_case "gset" `Quick test_gset;
          QCheck_alcotest.to_alcotest prop_lww_aci;
        ] );
    ]
