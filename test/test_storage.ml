(* Tests for the storage engine: values, schemas, tables, tombstones,
   temp insert table, scans, digests, WAL model. *)

open Gg_storage

let v_int i = Value.Int i
let v_str s = Value.Str s

let schema_kv () =
  Schema.create ~name:"kv"
    ~columns:[ { Schema.name = "k"; ty = Schema.TInt }; { name = "v"; ty = TStr } ]
    ~key:[ "k" ]

(* --- Value --- *)

let test_value_compare () =
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (v_int 0) < 0);
  Alcotest.(check bool) "int float cross" true (Value.compare (v_int 1) (Value.Float 1.5) < 0);
  Alcotest.(check bool) "int float equal" true (Value.compare (v_int 2) (Value.Float 2.0) = 0);
  Alcotest.(check bool) "str after num" true (Value.compare (v_int 999) (v_str "a") < 0);
  Alcotest.(check bool) "str order" true (Value.compare (v_str "a") (v_str "b") < 0)

let test_value_roundtrip () =
  let vals = [ Value.Null; v_int (-42); Value.Float 3.5; v_str "hello" ] in
  let enc = Gg_util.Codec.Enc.create () in
  List.iter (Value.encode enc) vals;
  let dec = Gg_util.Codec.Dec.of_bytes (Gg_util.Codec.Enc.to_bytes enc) in
  List.iter
    (fun v -> Alcotest.(check bool) "value roundtrip" true (Value.equal v (Value.decode dec)))
    vals

let test_value_row_roundtrip () =
  let row = [| v_int 1; v_str "x"; Value.Null; Value.Float 2.5 |] in
  let row' = Value.decode_row (Value.encode_row row) in
  Alcotest.(check int) "arity" 4 (Array.length row');
  Array.iteri
    (fun i v -> Alcotest.(check bool) "cell" true (Value.equal v row'.(i)))
    row

let test_value_key_unique () =
  let k1 = Value.encode_key [| v_int 1; v_str "a" |] in
  let k2 = Value.encode_key [| v_int 1; v_str "b" |] in
  let k3 = Value.encode_key [| v_int 1; v_str "a" |] in
  Alcotest.(check bool) "differ" true (k1 <> k2);
  Alcotest.(check string) "stable" k1 k3

let prop_value_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          return Value.Null;
          map (fun i -> Value.Int i) int;
          map (fun f -> Value.Float f) (float_bound_exclusive 1e9);
          map (fun s -> Value.Str s) string_small;
        ])
  in
  QCheck.Test.make ~name:"value codec roundtrip" ~count:500 (QCheck.make gen)
    (fun v ->
      let enc = Gg_util.Codec.Enc.create () in
      Value.encode enc v;
      let dec = Gg_util.Codec.Dec.of_bytes (Gg_util.Codec.Enc.to_bytes enc) in
      Value.equal v (Value.decode dec))

(* --- Csn --- *)

let test_csn_order () =
  let a = Csn.make ~ts:1 ~node:5 and b = Csn.make ~ts:2 ~node:0 in
  Alcotest.(check bool) "ts dominates" true (Csn.compare a b < 0);
  let c = Csn.make ~ts:1 ~node:6 in
  Alcotest.(check bool) "node breaks ties" true (Csn.compare a c < 0);
  Alcotest.(check bool) "equal" true (Csn.equal a (Csn.make ~ts:1 ~node:5))

(* --- Schema --- *)

let test_schema_create () =
  let s = schema_kv () in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check bool) "col_index k" true (Schema.col_index s "k" = Some 0);
  Alcotest.(check bool) "col_index missing" true (Schema.col_index s "zz" = None);
  Alcotest.(check bool) "key col" true (Schema.is_key_col s 0);
  Alcotest.(check bool) "non-key col" false (Schema.is_key_col s 1)

let test_schema_invalid () =
  Alcotest.(check bool) "dup column" true
    (try
       ignore
         (Schema.create ~name:"t"
            ~columns:[ { Schema.name = "a"; ty = TInt }; { name = "a"; ty = TInt } ]
            ~key:[ "a" ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown key" true
    (try
       ignore
         (Schema.create ~name:"t"
            ~columns:[ { Schema.name = "a"; ty = TInt } ]
            ~key:[ "b" ]);
       false
     with Invalid_argument _ -> true)

let test_schema_validate_row () =
  let s = schema_kv () in
  Alcotest.(check bool) "ok" true (Schema.validate_row s [| v_int 1; v_str "a" |] = Ok ());
  Alcotest.(check bool) "null non-key ok" true
    (Schema.validate_row s [| v_int 1; Value.Null |] = Ok ());
  Alcotest.(check bool) "null key rejected" true
    (Result.is_error (Schema.validate_row s [| Value.Null; v_str "a" |]));
  Alcotest.(check bool) "wrong type" true
    (Result.is_error (Schema.validate_row s [| v_str "x"; v_str "a" |]));
  Alcotest.(check bool) "wrong arity" true
    (Result.is_error (Schema.validate_row s [| v_int 1 |]))

(* --- Table --- *)

let make_table n =
  let t = Table.create (schema_kv ()) in
  for i = 0 to n - 1 do
    Table.load t [| v_int i; v_str (Printf.sprintf "v%d" i) |]
  done;
  t

let key i = Value.encode_key [| v_int i |]

let test_table_load_find () =
  let t = make_table 10 in
  Alcotest.(check int) "live" 10 (Table.live_count t);
  (match Table.find_live t (key 5) with
  | Some e -> Alcotest.(check bool) "data" true (Value.equal e.Table.data.(1) (v_str "v5"))
  | None -> Alcotest.fail "missing row");
  Alcotest.(check bool) "absent" true (Table.find t (key 99) = None)

let test_table_duplicate_load () =
  let t = make_table 3 in
  Alcotest.check_raises "duplicate" (Invalid_argument "Table.load: duplicate key")
    (fun () -> Table.load t [| v_int 1; v_str "dup" |])

let test_table_delete_tombstone () =
  let t = make_table 5 in
  let e = Option.get (Table.find t (key 2)) in
  Table.delete t e;
  Alcotest.(check int) "live shrank" 4 (Table.live_count t);
  Alcotest.(check int) "total keeps tombstone" 5 (Table.total_count t);
  Alcotest.(check bool) "find sees tombstone" true (Table.find t (key 2) <> None);
  Alcotest.(check bool) "find_live misses" true (Table.find_live t (key 2) = None);
  (* Scan skips tombstones. *)
  let seen = ref 0 in
  Table.scan t ~f:(fun _ -> incr seen);
  Alcotest.(check int) "scan skips" 4 !seen

let test_table_revive () =
  let t = make_table 3 in
  let e = Option.get (Table.find t (key 1)) in
  Table.delete t e;
  Table.revive t e [| v_int 1; v_str "back" |];
  Alcotest.(check int) "live restored" 3 (Table.live_count t);
  match Table.find_live t (key 1) with
  | Some e -> Alcotest.(check bool) "new data" true (Value.equal e.Table.data.(1) (v_str "back"))
  | None -> Alcotest.fail "revive failed"

let test_table_insert_committed () =
  let t = make_table 2 in
  let hdr = Row_header.create () in
  Row_header.stamp hdr ~sen:1 ~csn:(Csn.make ~ts:9 ~node:1) ~cen:1;
  Table.insert_committed t ~key:[| v_int 50 |]
    ~data:[| v_int 50; v_str "new" |]
    ~header:hdr;
  Alcotest.(check int) "live" 3 (Table.live_count t);
  Alcotest.(check bool) "dup insert rejected" true
    (try
       Table.insert_committed t ~key:[| v_int 50 |]
         ~data:[| v_int 50; v_str "x" |]
         ~header:(Row_header.create ());
       false
     with Invalid_argument _ -> true)

let test_table_temp () =
  let t = make_table 2 in
  let e1 = Table.temp_add t ~key:[| v_int 100 |] ~key_str:(key 100) in
  let e2 = Table.temp_add t ~key:[| v_int 100 |] ~key_str:(key 100) in
  Alcotest.(check bool) "same temp entry" true (e1 == e2);
  Alcotest.(check bool) "temp_find hits" true (Table.temp_find t (key 100) <> None);
  Alcotest.(check bool) "temp invisible to find" true (Table.find t (key 100) = None);
  Table.temp_clear t;
  Alcotest.(check bool) "cleared" true (Table.temp_find t (key 100) = None)

let test_table_scan_order () =
  let t = Table.create (schema_kv ()) in
  List.iter
    (fun i -> Table.load t [| v_int i; v_str "x" |])
    [ 5; 1; 9; 3; 7 ];
  let keys = ref [] in
  Table.scan t ~f:(fun e ->
      match e.Table.key.(0) with
      | Value.Int i -> keys := i :: !keys
      | _ -> ());
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5; 7; 9 ] (List.rev !keys)

let test_table_scan_range () =
  let t = make_table 10 in
  let got = ref [] in
  Table.scan_range t ~lo:[| v_int 3 |] ~hi:[| v_int 6 |] (fun e ->
      match e.Table.key.(0) with Value.Int i -> got := i :: !got | _ -> ());
  Alcotest.(check (list int)) "range" [ 3; 4; 5; 6 ] (List.rev !got)

let test_table_scan_prefix () =
  let s =
    Schema.create ~name:"two"
      ~columns:
        [
          { Schema.name = "a"; ty = TInt };
          { name = "b"; ty = TInt };
          { name = "v"; ty = TStr };
        ]
      ~key:[ "a"; "b" ]
  in
  let t = Table.create s in
  for a = 0 to 2 do
    for b = 0 to 3 do
      Table.load t [| v_int a; v_int b; v_str "x" |]
    done
  done;
  let got = ref 0 in
  Table.scan_prefix t ~prefix:[| v_int 1 |] (fun _ -> incr got);
  Alcotest.(check int) "prefix matches" 4 !got

let test_table_digest_sensitivity () =
  let t1 = make_table 5 and t2 = make_table 5 in
  let d t =
    let enc = Gg_util.Codec.Enc.create () in
    Table.digest_into t enc;
    Bytes.to_string (Gg_util.Codec.Enc.to_bytes enc)
  in
  Alcotest.(check string) "identical tables" (d t1) (d t2);
  let e = Option.get (Table.find t2 (key 0)) in
  Table.write t2 e [| v_int 0; v_str "changed" |];
  Alcotest.(check bool) "data change detected" true (d t1 <> d t2)

(* --- Db --- *)

let test_db_catalog () =
  let db = Db.create () in
  let _ =
    Db.create_table db ~name:"a"
      ~columns:[ { Schema.name = "k"; ty = TInt } ]
      ~key:[ "k" ]
  in
  let _ =
    Db.create_table db ~name:"b"
      ~columns:[ { Schema.name = "k"; ty = TInt } ]
      ~key:[ "k" ]
  in
  Alcotest.(check (list string)) "names sorted" [ "a"; "b" ] (Db.table_names db);
  Alcotest.(check bool) "get" true (Db.get_table db "a" <> None);
  Alcotest.(check bool) "missing" true (Db.get_table db "zz" = None);
  Alcotest.(check bool) "dup rejected" true
    (try
       ignore
         (Db.create_table db ~name:"a"
            ~columns:[ { Schema.name = "k"; ty = TInt } ]
            ~key:[ "k" ]);
       false
     with Invalid_argument _ -> true)

let test_db_digest_replicas () =
  let build () =
    let db = Db.create () in
    let t =
      Db.create_table db ~name:"kv"
        ~columns:[ { Schema.name = "k"; ty = TInt }; { name = "v"; ty = TStr } ]
        ~key:[ "k" ]
    in
    for i = 0 to 20 do
      Table.load t [| v_int i; v_str (string_of_int (i * i)) |]
    done;
    db
  in
  let a = build () and b = build () in
  Alcotest.(check string) "replica digests equal" (Db.digest a) (Db.digest b);
  let t = Db.get_table_exn b "kv" in
  let e = Option.get (Table.find t (Value.encode_key [| v_int 3 |])) in
  e.Table.header.Row_header.cen <- 7;
  (* digests are cached behind the table's mutation counter: an
     in-place header stamp is invisible until the mutator announces it
     with [Table.touch] (as the merge path does) *)
  Alcotest.(check string) "stale until touched" (Db.digest a) (Db.digest b);
  Table.touch t;
  Alcotest.(check bool) "header divergence detected" true (Db.digest a <> Db.digest b)

(* --- Secondary indexes --- *)

let people_table () =
  let s =
    Schema.create ~name:"people"
      ~columns:
        [ { Schema.name = "id"; ty = TInt }; { name = "city"; ty = TStr };
          { name = "age"; ty = TInt } ]
      ~key:[ "id" ]
  in
  let t = Table.create s in
  List.iteri
    (fun i (city, age) -> Table.load t [| v_int i; v_str city; v_int age |])
    [ ("oslo", 30); ("oslo", 40); ("kyoto", 30); ("kyoto", 50); ("lima", 30) ];
  t

let test_index_lookup () =
  let t = people_table () in
  Table.create_index t ~name:"by_city" ~cols:[ "city" ];
  Alcotest.(check int) "oslo" 2
    (List.length (Table.index_lookup t ~name:"by_city" ~key:[| v_str "oslo" |]));
  Alcotest.(check int) "lima" 1
    (List.length (Table.index_lookup t ~name:"by_city" ~key:[| v_str "lima" |]));
  Alcotest.(check int) "missing" 0
    (List.length (Table.index_lookup t ~name:"by_city" ~key:[| v_str "mars" |]))

let test_index_composite () =
  let t = people_table () in
  Table.create_index t ~name:"by_city_age" ~cols:[ "city"; "age" ];
  Alcotest.(check int) "kyoto/30" 1
    (List.length (Table.index_lookup t ~name:"by_city_age" ~key:[| v_str "kyoto"; v_int 30 |]))

let test_index_tracks_writes () =
  let t = people_table () in
  Table.create_index t ~name:"by_city" ~cols:[ "city" ];
  let e = Option.get (Table.find t (Value.encode_key [| v_int 0 |])) in
  Table.write t e [| v_int 0; v_str "kyoto"; v_int 30 |];
  Alcotest.(check int) "moved out of oslo" 1
    (List.length (Table.index_lookup t ~name:"by_city" ~key:[| v_str "oslo" |]));
  Alcotest.(check int) "into kyoto" 3
    (List.length (Table.index_lookup t ~name:"by_city" ~key:[| v_str "kyoto" |]));
  Table.delete t e;
  Alcotest.(check int) "delete unindexes" 2
    (List.length (Table.index_lookup t ~name:"by_city" ~key:[| v_str "kyoto" |]));
  Table.revive t e [| v_int 0; v_str "lima"; v_int 31 |];
  Alcotest.(check int) "revive reindexes" 2
    (List.length (Table.index_lookup t ~name:"by_city" ~key:[| v_str "lima" |]))

let test_index_copy_preserved () =
  let t = people_table () in
  Table.create_index t ~name:"by_city" ~cols:[ "city" ];
  let t2 = Table.copy t in
  Alcotest.(check int) "copied index works" 2
    (List.length (Table.index_lookup t2 ~name:"by_city" ~key:[| v_str "oslo" |]))

let test_index_invalid () =
  let t = people_table () in
  Alcotest.(check bool) "unknown column" true
    (try Table.create_index t ~name:"x" ~cols:[ "nope" ]; false
     with Invalid_argument _ -> true);
  Table.create_index t ~name:"dup" ~cols:[ "city" ];
  Alcotest.(check bool) "duplicate name" true
    (try Table.create_index t ~name:"dup" ~cols:[ "age" ]; false
     with Invalid_argument _ -> true)

let test_purge_tombstones () =
  let t = make_table 10 in
  List.iter
    (fun i ->
      let e = Option.get (Table.find t (key i)) in
      Row_header.stamp e.Table.header ~sen:0 ~csn:(Csn.make ~ts:i ~node:0) ~cen:i;
      Table.delete t e)
    [ 1; 2; 3 ];
  Alcotest.(check int) "3 tombstones" 10 (Table.total_count t);
  let purged = Table.purge_tombstones t ~before_cen:3 in
  Alcotest.(check int) "purged two (cen 1,2)" 2 purged;
  Alcotest.(check int) "one tombstone left" 8 (Table.total_count t);
  Alcotest.(check bool) "cen-3 tombstone kept" true (Table.find t (key 3) <> None);
  Alcotest.(check bool) "purged key gone entirely" true (Table.find t (key 1) = None)

(* --- Checkpoint --- *)

let churned_db () =
  let db = Db.create () in
  let t =
    Db.create_table db ~name:"kv"
      ~columns:[ { Schema.name = "k"; ty = TInt }; { name = "v"; ty = TStr } ]
      ~key:[ "k" ]
  in
  for i = 0 to 30 do
    Table.load t [| v_int i; v_str (string_of_int (i * 7)) |]
  done;
  (* stamp some headers and tombstone a few rows *)
  for i = 0 to 30 do
    let e = Option.get (Table.find t (Value.encode_key [| v_int i |])) in
    Row_header.stamp e.Table.header ~sen:i ~csn:(Csn.make ~ts:(100 + i) ~node:(i mod 3)) ~cen:(i / 3);
    if i mod 5 = 0 then Table.delete t e
  done;
  db

let test_checkpoint_roundtrip () =
  let db = churned_db () in
  let restored = Checkpoint.decode (Checkpoint.encode db) in
  Alcotest.(check string) "digest preserved" (Db.digest db) (Db.digest restored);
  let t = Db.get_table_exn restored "kv" in
  Alcotest.(check int) "live rows" 24 (Table.live_count t);
  Alcotest.(check int) "tombstones kept" 31 (Table.total_count t)

let test_checkpoint_deterministic () =
  let a = Checkpoint.encode (churned_db ()) in
  let b = Checkpoint.encode (churned_db ()) in
  Alcotest.(check bytes) "equal states serialize identically" a b

let test_checkpoint_preserves_indexes () =
  let db = Db.create () in
  let t =
    Db.create_table db ~name:"p"
      ~columns:[ { Schema.name = "id"; ty = TInt }; { name = "grp"; ty = TInt } ]
      ~key:[ "id" ]
  in
  for i = 0 to 9 do
    Table.load t [| v_int i; v_int (i mod 3) |]
  done;
  Table.create_index t ~name:"by_grp" ~cols:[ "grp" ];
  let restored = Checkpoint.decode (Checkpoint.encode db) in
  let t' = Db.get_table_exn restored "p" in
  Alcotest.(check (list string)) "index survives" [ "by_grp" ] (Table.index_names t');
  Alcotest.(check int) "lookup works" 4
    (List.length (Table.index_lookup t' ~name:"by_grp" ~key:[| v_int 0 |]))

let test_checkpoint_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Checkpoint.decode (Bytes.of_string "\x07NOTCKPT123456"));
       false
     with Invalid_argument _ -> true)

(* --- Wal --- *)

let test_wal_latency_model () =
  let wal = Wal.create ~fsync_us:1000 ~throughput_mbps:100 () in
  let lat = Wal.append wal ~bytes:100_000 in
  Alcotest.(check int) "fsync + transfer" 2000 lat;
  Alcotest.(check int) "records" 1 (Wal.records wal);
  Alcotest.(check int) "bytes" 100_000 (Wal.bytes wal)

let () =
  Alcotest.run "gg_storage"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "codec roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "row roundtrip" `Quick test_value_row_roundtrip;
          Alcotest.test_case "key encoding" `Quick test_value_key_unique;
          QCheck_alcotest.to_alcotest prop_value_roundtrip;
        ] );
      ("csn", [ Alcotest.test_case "ordering" `Quick test_csn_order ]);
      ( "schema",
        [
          Alcotest.test_case "create" `Quick test_schema_create;
          Alcotest.test_case "invalid" `Quick test_schema_invalid;
          Alcotest.test_case "validate_row" `Quick test_schema_validate_row;
        ] );
      ( "table",
        [
          Alcotest.test_case "load/find" `Quick test_table_load_find;
          Alcotest.test_case "duplicate load" `Quick test_table_duplicate_load;
          Alcotest.test_case "delete tombstone" `Quick test_table_delete_tombstone;
          Alcotest.test_case "revive" `Quick test_table_revive;
          Alcotest.test_case "insert_committed" `Quick test_table_insert_committed;
          Alcotest.test_case "temp table" `Quick test_table_temp;
          Alcotest.test_case "scan order" `Quick test_table_scan_order;
          Alcotest.test_case "scan range" `Quick test_table_scan_range;
          Alcotest.test_case "scan prefix" `Quick test_table_scan_prefix;
          Alcotest.test_case "digest sensitivity" `Quick test_table_digest_sensitivity;
          Alcotest.test_case "purge tombstones" `Quick test_purge_tombstones;
        ] );
      ( "db",
        [
          Alcotest.test_case "catalog" `Quick test_db_catalog;
          Alcotest.test_case "replica digest" `Quick test_db_digest_replicas;
        ] );
      ( "secondary index",
        [
          Alcotest.test_case "lookup" `Quick test_index_lookup;
          Alcotest.test_case "composite" `Quick test_index_composite;
          Alcotest.test_case "tracks writes" `Quick test_index_tracks_writes;
          Alcotest.test_case "copy preserved" `Quick test_index_copy_preserved;
          Alcotest.test_case "invalid" `Quick test_index_invalid;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_checkpoint_deterministic;
          Alcotest.test_case "preserves indexes" `Quick test_checkpoint_preserves_indexes;
          Alcotest.test_case "rejects garbage" `Quick test_checkpoint_rejects_garbage;
        ] );
      ("wal", [ Alcotest.test_case "latency model" `Quick test_wal_latency_model ]);
    ]
