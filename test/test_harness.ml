(* Smoke tests of the benchmark harness: drivers measure, experiments
   execute in fast mode, and key cross-system shapes hold. *)

module Topology = Gg_sim.Topology
module Ycsb = Gg_workload.Ycsb

let small_profile = Ycsb.with_records Ycsb.medium_contention 2_000

let contains_sub hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_run_engine_measures () =
  let r =
    Gg_harness.Driver.run_engine
      (module Gg_engines.Calvin)
      ~topology:(Topology.china3 ())
      ~gen:(Gg_harness.Driver.ycsb_gens small_profile ~seed:1)
      ~connections:8 ~warmup_ms:200 ~measure_ms:600 ~label:"calvin" ()
  in
  Alcotest.(check bool) "committed > 0" true (r.Gg_harness.Result.committed > 0);
  Alcotest.(check bool) "tput > 0" true (r.Gg_harness.Result.tput > 0.0);
  Alcotest.(check bool) "latency sane" true
    (r.Gg_harness.Result.mean_ms > 10.0 && r.Gg_harness.Result.mean_ms < 500.0)

let test_run_geogauss_measures () =
  let r, extra =
    Gg_harness.Driver.run_geogauss ~connections:8
      ~topology:(Topology.china3 ())
      ~load:(Ycsb.load small_profile)
      ~gen:(Gg_harness.Driver.ycsb_gens small_profile ~seed:2)
      ~warmup_ms:300 ~measure_ms:800 ~label:"geogauss" ()
  in
  Alcotest.(check bool) "committed > 0" true (r.Gg_harness.Result.committed > 0);
  Alcotest.(check int) "phase means per node" 3
    (List.length extra.Gg_harness.Driver.phase_means);
  Alcotest.(check bool) "epoch cells recorded" true
    (List.length extra.Gg_harness.Driver.epoch_cells > 10)

let test_geogauss_beats_crdb_ycsb_mc () =
  (* The headline Fig 5 shape. *)
  let gen = Gg_harness.Driver.ycsb_gens small_profile ~seed:3 in
  let geo, _ =
    Gg_harness.Driver.run_geogauss ~connections:16
      ~topology:(Topology.china3 ())
      ~load:(Ycsb.load small_profile) ~gen ~warmup_ms:300 ~measure_ms:1_000
      ~label:"geogauss" ()
  in
  let crdb =
    Gg_harness.Driver.run_engine
      (module Gg_engines.Crdb)
      ~topology:(Topology.china3 ()) ~gen ~connections:16 ~warmup_ms:300
      ~measure_ms:1_000 ~label:"crdb" ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "geogauss tput %.0f > crdb %.0f" geo.Gg_harness.Result.tput
       crdb.Gg_harness.Result.tput)
    true
    (geo.Gg_harness.Result.tput > crdb.Gg_harness.Result.tput);
  Alcotest.(check bool)
    (Printf.sprintf "geogauss lat %.1f < crdb %.1f" geo.Gg_harness.Result.mean_ms
       crdb.Gg_harness.Result.mean_ms)
    true
    (geo.Gg_harness.Result.mean_ms < crdb.Gg_harness.Result.mean_ms)

let test_experiment_registry () =
  Alcotest.(check int) "15 experiments" 15 (List.length Gg_harness.Experiments.all);
  Alcotest.(check (list string))
    "registry derives from the canonical name list"
    Gg_harness.Experiments.names
    (List.map fst Gg_harness.Experiments.all);
  Alcotest.(check bool) "fig_scale registered" true
    (List.mem "fig_scale" Gg_harness.Experiments.names);
  Alcotest.(check bool) "fig_skew registered" true
    (List.mem "fig_skew" Gg_harness.Experiments.names);
  Alcotest.(check bool) "fig_fastpath registered" true
    (List.mem "fig_fastpath" Gg_harness.Experiments.names);
  Alcotest.(check bool) "unknown rejected" false
    (Gg_harness.Experiments.run ~fast:true "nonsense")

let test_experiment_unknown_name_error () =
  (* A free-form name given to a runner must be a real error naming the
     known experiments — historically this was an [assert false]. *)
  match Gg_harness.Experiments.make_runner "fig99" ~fast:true () with
  | () -> Alcotest.fail "unknown experiment must be rejected"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message names the experiment" true
      (contains_sub msg "fig99");
    Alcotest.(check bool) "message lists known names" true
      (contains_sub msg "fig5" && contains_sub msg "fig_scale")

let test_experiment_table3_fast () =
  (* Runs a real (fast) experiment end to end. *)
  Alcotest.(check bool) "table3 runs" true
    (Gg_harness.Experiments.run ~fast:true "table3")

(* --- open-loop clients --- *)

module Arrival = Gg_workload.Arrival

let run_open ~arrival ~connections ~measure_ms () =
  Gg_harness.Driver.run_geogauss ~arrival ~connections
    ~topology:(Topology.china3 ())
    ~load:(Ycsb.load small_profile)
    ~gen:(Gg_harness.Driver.ycsb_gens small_profile ~seed:17)
    ~warmup_ms:400 ~measure_ms ~label:"open" ()

let test_open_loop_measures () =
  (* A modest offered load the cluster can absorb: nothing sheds, and
     latency stays in the closed-loop ballpark (no standing queue). *)
  let arrival = Arrival.make ~shape:Arrival.Constant ~peak_tps:120.0 in
  let r, extra = run_open ~arrival ~connections:32 ~measure_ms:1_000 () in
  Alcotest.(check bool) "committed > 0" true (r.Gg_harness.Result.committed > 0);
  Alcotest.(check bool) "offered > 0" true (extra.Gg_harness.Driver.offered > 0);
  Alcotest.(check int) "nothing shed" 0 extra.Gg_harness.Driver.shed;
  (* the curve is per region: 3 x 120 tps offered for 1 s *)
  Alcotest.(check bool)
    (Printf.sprintf "offered %d near the curve" extra.Gg_harness.Driver.offered)
    true
    (extra.Gg_harness.Driver.offered > 240 && extra.Gg_harness.Driver.offered < 480);
  Alcotest.(check bool) "latency sane" true
    (r.Gg_harness.Result.mean_ms > 10.0 && r.Gg_harness.Result.mean_ms < 500.0)

let test_open_loop_overload_regression () =
  (* Offered load far beyond service rate: the bounded queue must shed
     rather than grow without bound, commits must keep flowing at the
     service rate, and measured latency — which starts at ARRIVAL, so
     queue wait counts — must stay bounded by the queue depth, not climb
     with the length of the run. *)
  let arrival = Arrival.make ~shape:Arrival.Constant ~peak_tps:4_000.0 in
  let r, extra = run_open ~arrival ~connections:4 ~measure_ms:1_200 () in
  Alcotest.(check bool) "commits keep flowing" true
    (r.Gg_harness.Result.committed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "overload sheds (%d)" extra.Gg_harness.Driver.shed)
    true
    (extra.Gg_harness.Driver.shed > 0);
  Alcotest.(check bool) "offered >> committed" true
    (extra.Gg_harness.Driver.offered > 4 * r.Gg_harness.Result.committed);
  (* 4 in flight + 16 queued, ~200 ms China RTT per txn: worst-case
     sojourn is a few seconds. Unbounded-queue accounting would blow
     past this. *)
  Alcotest.(check bool)
    (Printf.sprintf "p95 %.0f ms bounded by queue depth" r.Gg_harness.Result.p95_ms)
    true
    (r.Gg_harness.Result.p95_ms > 0.0 && r.Gg_harness.Result.p95_ms < 5_000.0)

let test_open_loop_deterministic () =
  let arrival =
    Arrival.make
      ~shape:(Arrival.Flash { at_ms = 300; dur_ms = 300; mult = 5.0 })
      ~peak_tps:1_500.0
  in
  let once () =
    let r, extra = run_open ~arrival ~connections:8 ~measure_ms:900 () in
    ( r.Gg_harness.Result.committed,
      r.Gg_harness.Result.aborted,
      extra.Gg_harness.Driver.offered,
      extra.Gg_harness.Driver.shed,
      Gg_harness.Result.row r )
  in
  let a = once () and b = once () in
  Alcotest.(check bool) "two identical runs, identical numbers" true (a = b)

(* --- bench diff: perf-regression accounting --- *)

module Bd = Gg_harness.Bench_diff

(* A minimal wallclock report; [scale] multiplies every throughput
   metric, so 1.0 is the baseline and 0.5 is a synthetic 2x regression. *)
let wallclock_report ?(overhead = 0.03) ~scale () =
  Printf.sprintf
    {|{"suite": "wallclock", "reps": 3,
       "scenarios": [
         {"label": "ycsb/china3", "events_per_s": %.1f,
          "merged_records_per_s": %.1f, "batches_encoded_per_s": %.1f}
       ],
       "tracing_overhead": {"scenario": "ycsb/china3",
         "wall_s_tracing_off": 1.0, "wall_s_tracing_on": %.4f,
         "overhead_frac": %.4f}}|}
    (30_000.0 *. scale) (25_000.0 *. scale) (4_000.0 *. scale)
    (1.0 +. overhead) overhead

let diff_ok ?threshold old_json new_json =
  match Bd.diff ?threshold ~old_json ~new_json () with
  | Ok rows -> rows
  | Error m -> Alcotest.failf "diff failed: %s" m

let test_bench_diff_identical () =
  let r = wallclock_report ~scale:1.0 () in
  let rows = diff_ok r r in
  Alcotest.(check bool) "rows produced" true (List.length rows >= 4);
  Alcotest.(check bool) "no regression" false (Bd.has_regression rows);
  Alcotest.(check bool) "no warning" false (Bd.has_warning rows)

let test_bench_diff_detects_regression () =
  let rows =
    diff_ok (wallclock_report ~scale:1.0 ()) (wallclock_report ~scale:0.5 ())
  in
  Alcotest.(check bool) "2x slowdown flagged" true (Bd.has_regression rows);
  (* the renderer marks the offending rows *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "REGRESS visible in table" true
    (contains (Bd.render rows) "REGRESS")

let test_bench_diff_noise_tolerated () =
  (* 5% wobble is well inside the default 25% threshold *)
  let rows =
    diff_ok (wallclock_report ~scale:1.0 ()) (wallclock_report ~scale:0.95 ())
  in
  Alcotest.(check bool) "no regression" false (Bd.has_regression rows);
  Alcotest.(check bool) "no warning" false (Bd.has_warning rows)

let test_bench_diff_overhead_gate () =
  (* tracing overhead gates on the absolute 5% ceiling even when the
     throughputs are untouched and the old report was also over *)
  let rows =
    diff_ok
      (wallclock_report ~overhead:0.06 ~scale:1.0 ())
      (wallclock_report ~overhead:0.08 ~scale:1.0 ())
  in
  Alcotest.(check bool) "overhead > 5% is a regression" true (Bd.has_regression rows);
  let rows =
    diff_ok
      (wallclock_report ~overhead:0.06 ~scale:1.0 ())
      (wallclock_report ~overhead:0.04 ~scale:1.0 ())
  in
  Alcotest.(check bool) "back under the ceiling passes" false (Bd.has_regression rows)

let test_bench_diff_suite_mismatch () =
  match
    Bd.diff
      ~old_json:{|{"suite": "merge", "kernels": []}|}
      ~new_json:(wallclock_report ~scale:1.0 ())
      ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "suite mismatch accepted"

let () =
  Alcotest.run "gg_harness"
    [
      ( "driver",
        [
          Alcotest.test_case "engine driver measures" `Slow test_run_engine_measures;
          Alcotest.test_case "geogauss driver measures" `Slow test_run_geogauss_measures;
          Alcotest.test_case "geogauss > crdb on YCSB-MC" `Slow test_geogauss_beats_crdb_ycsb_mc;
          Alcotest.test_case "open loop measures" `Slow test_open_loop_measures;
          Alcotest.test_case "open loop overload regression" `Slow
            test_open_loop_overload_regression;
          Alcotest.test_case "open loop deterministic" `Slow
            test_open_loop_deterministic;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_experiment_registry;
          Alcotest.test_case "unknown name is a real error" `Quick
            test_experiment_unknown_name_error;
          Alcotest.test_case "table3 fast" `Slow test_experiment_table3_fast;
        ] );
      ( "bench_diff",
        [
          Alcotest.test_case "identical reports pass" `Quick test_bench_diff_identical;
          Alcotest.test_case "synthetic regression flagged" `Quick
            test_bench_diff_detects_regression;
          Alcotest.test_case "small wobble tolerated" `Quick test_bench_diff_noise_tolerated;
          Alcotest.test_case "overhead ceiling absolute" `Quick test_bench_diff_overhead_gate;
          Alcotest.test_case "suite mismatch rejected" `Quick test_bench_diff_suite_mismatch;
        ] );
    ]
