(* Parallel intra-node merge: the byte-identity contract.

   DESIGN.md §10: sharding the ACI merge and the batch encode across
   domains must be invisible in every output — database digests, the
   per-transaction commit/abort decisions and abort reasons, wire bytes,
   chaos-checker verdicts. These tests pin that contract at every layer:
   pool shard helpers, wire encoding, the extracted merge kernel, full
   cluster workloads (YCSB-style churn and TPC-C), and a checker sweep. *)

open Geogauss
module Value = Gg_storage.Value
module Table = Gg_storage.Table
module Db = Gg_storage.Db
module Pool = Gg_par.Pool
module Writeset = Gg_crdt.Writeset
module Meta = Gg_crdt.Meta
module Topology = Gg_sim.Topology
module Checker = Gg_check.Checker

(* --- Pool shard helpers --- *)

let test_map_shards_partition () =
  let xs = List.init 100 (fun i -> i) in
  let shards = Pool.map_shards ~jobs:4 ~key:(fun x -> x) xs ~f:(fun s -> s) in
  Alcotest.(check int) "one result per shard" 4 (List.length shards);
  List.iteri
    (fun shard items ->
      List.iter
        (fun x ->
          Alcotest.(check int)
            (Printf.sprintf "%d lands in its key shard" x)
            shard (x mod 4))
        items;
      (* items keep their submission order within the shard *)
      Alcotest.(check (list int))
        (Printf.sprintf "shard %d order preserved" shard)
        (List.filter (fun x -> x mod 4 = shard) xs)
        items)
    shards;
  Alcotest.(check (list int)) "no item lost" xs
    (List.sort compare (List.concat shards))

let test_map_shards_jobs1_single_call () =
  let calls = ref 0 in
  let r =
    Pool.map_shards ~jobs:1 ~key:(fun _ -> failwith "key unused at jobs=1")
      [ 1; 2; 3 ]
      ~f:(fun s ->
        incr calls;
        s)
  in
  Alcotest.(check int) "one call" 1 !calls;
  Alcotest.(check (list (list int))) "identity" [ [ 1; 2; 3 ] ] r

let test_map_shards_exception () =
  (* the lowest-index raising shard's exception surfaces, after all
     domains joined *)
  match
    Pool.map_shards ~jobs:4 ~key:(fun x -> x) [ 0; 1; 2; 3 ] ~f:(fun s ->
        match s with
        | [ x ] when x >= 2 -> failwith (string_of_int x)
        | _ -> ())
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "lowest shard wins" "2" m

let test_map_chunks_concat_order () =
  let xs = List.init 37 (fun i -> i * 3) in
  let seq = Pool.map_chunks ~jobs:1 xs ~f:(fun c -> c) in
  let par = Pool.map_chunks ~jobs:4 xs ~f:(fun c -> c) in
  Alcotest.(check (list int)) "chunks concatenate to the input" xs
    (List.concat par);
  Alcotest.(check (list int)) "jobs=1 and jobs=4 concat equal"
    (List.concat seq) (List.concat par)

(* --- Table key sharding --- *)

let test_key_shard_refines_temp_shards () =
  (* merge widths are powers of two dividing temp_shard_count, so a
     merge shard is a union of temp shards: h mod j = (h mod 16) mod j.
     This is what makes concurrent temp_add race-free. *)
  let keys = List.init 200 (fun i -> Value.encode_key [| Value.Int i |]) in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "%d divides temp_shard_count" j)
        true
        (Table.temp_shard_count mod j = 0);
      List.iter
        (fun k ->
          Alcotest.(check int)
            (Printf.sprintf "refinement at j=%d" j)
            (Table.key_shard ~shards:Table.temp_shard_count k mod j)
            (Table.key_shard ~shards:j k))
        keys)
    [ 1; 2; 4; 8; 16 ]

let kv_db n_rows =
  let db = Db.create () in
  let t =
    Db.create_table db ~name:"kv"
      ~columns:
        [
          { Gg_storage.Schema.name = "k"; ty = Gg_storage.Schema.TInt };
          { name = "v"; ty = TInt };
        ]
      ~key:[ "k" ]
  in
  for i = 0 to n_rows - 1 do
    Table.load t [| Value.Int i; Value.Int 0 |]
  done;
  (db, t)

let test_digest_shard_localises_changes () =
  let _, t1 = kv_db 64 in
  let _, t2 = kv_db 64 in
  let shards = 4 in
  let d table = List.init shards (fun s -> Table.digest_shard table ~shards ~shard:s) in
  Alcotest.(check (list string)) "identical tables, identical shard digests"
    (d t1) (d t2);
  (* mutate one key: only its shard's digest may move *)
  let key = Value.encode_key [| Value.Int 17 |] in
  let hit = Table.key_shard ~shards key in
  (match Table.find_live t2 key with
  | Some e -> e.Table.data.(1) <- Value.Int 999
  | None -> Alcotest.fail "row 17 missing");
  List.iteri
    (fun s (before, after) ->
      if s = hit then
        Alcotest.(check bool) "mutated shard digest changed" false
          (String.equal before after)
      else
        Alcotest.(check string)
          (Printf.sprintf "shard %d untouched" s)
          before after)
    (List.combine (d t1) (d t2))

(* --- Wire encoding --- *)

let test_to_wire_par_bytes_identical () =
  let txns =
    List.init 40 (fun i ->
        let meta =
          Meta.make ~sen:2 ~cen:2
            ~csn:(Gg_storage.Csn.make ~ts:(500 + i) ~node:(i mod 3))
        in
        let records =
          List.init 5 (fun r ->
              Writeset.make_record ~table:"kv"
                ~key:[| Value.Int ((i * 5) + r) |]
                ~op:(if r = 4 then Writeset.Insert else Writeset.Update)
                ~data:[| Value.Int ((i * 5) + r); Value.Int i |]
                ())
        in
        Writeset.make ~meta ~records ())
  in
  let seq =
    Writeset.Batch.to_wire
      (Writeset.Batch.make ~node:1 ~cen:2 ~txns ~eof:true ())
  in
  let par =
    Writeset.Batch.to_wire_par ~jobs:4
      (Writeset.Batch.make ~node:1 ~cen:2 ~txns ~eof:true ())
  in
  Alcotest.(check bytes) "parallel encode is byte-identical" seq par;
  (* both decode back to the same batch shape *)
  let b = Writeset.Batch.of_wire par in
  Alcotest.(check int) "txn count survives" 40 (List.length b.Writeset.Batch.txns)

(* --- The merge kernel --- *)

(* A contentious epoch: updates colliding across csn order, duplicate-key
   inserts, deletes, and a same-key insert/update race — everything the
   abort-reason bookkeeping has to order deterministically. *)
let contentious_epoch ~seed ~n_rows ~n_txns =
  let db, _ = kv_db n_rows in
  let rng = Gg_util.Rng.create seed in
  let txns =
    List.init n_txns (fun i ->
        let meta =
          Meta.make ~sen:1 ~cen:1
            ~csn:(Gg_storage.Csn.make ~ts:(1_000 + i) ~node:(i mod 3))
        in
        let records =
          List.init 6 (fun r ->
              let roll = Gg_util.Rng.int rng 100 in
              if roll < 70 then
                let k = Gg_util.Rng.int rng n_rows in
                Writeset.make_record ~table:"kv" ~key:[| Value.Int k |]
                  ~op:Writeset.Update
                  ~data:[| Value.Int k; Value.Int ((i * 10) + r) |]
                  ()
              else if roll < 90 then
                (* narrow insert range: duplicate-key marks are likely *)
                let k = n_rows + Gg_util.Rng.int rng (n_rows / 4) in
                Writeset.make_record ~table:"kv" ~key:[| Value.Int k |]
                  ~op:Writeset.Insert
                  ~data:[| Value.Int k; Value.Int r |]
                  ()
              else
                let k = Gg_util.Rng.int rng n_rows in
                Writeset.make_record ~table:"kv" ~key:[| Value.Int k |]
                  ~op:Writeset.Delete ~data:[||] ())
        in
        Writeset.make ~meta ~records ())
  in
  (db, txns)

let merge_outcome ~jobs ~ssi (db, txns) =
  let m = Epoch_merge.run ~threshold:0 ~db ~jobs ~ssi txns in
  let decisions =
    List.map
      (fun ws ->
        if Epoch_merge.committed m ws then "C"
        else Txn.abort_reason_to_string (Epoch_merge.abort_reason m ws))
      txns
  in
  ( Epoch_merge.n_committed m,
    Epoch_merge.n_dead m,
    decisions,
    Db.digest db )

let check_kernel_equal ~ssi ~seed =
  let c1, d1, dec1, dig1 =
    merge_outcome ~jobs:1 ~ssi (contentious_epoch ~seed ~n_rows:80 ~n_txns:120)
  in
  List.iter
    (fun jobs ->
      let c, d, dec, dig =
        merge_outcome ~jobs ~ssi
          (contentious_epoch ~seed ~n_rows:80 ~n_txns:120)
      in
      let tag s = Printf.sprintf "%s (jobs=%d, ssi=%b)" s jobs ssi in
      Alcotest.(check int) (tag "committed") c1 c;
      Alcotest.(check int) (tag "dead") d1 d;
      Alcotest.(check (list string)) (tag "per-txn decisions") dec1 dec;
      Alcotest.(check string) (tag "db digest") dig1 dig)
    [ 2; 4; 8 ]

let test_kernel_j1_vs_jn () =
  List.iter (fun seed -> check_kernel_equal ~ssi:false ~seed) [ 7; 42; 1_234 ]

let test_kernel_j1_vs_jn_ssi () = check_kernel_equal ~ssi:true ~seed:42

let test_kernel_threshold_gates_sharding () =
  (* below the record threshold the kernel must fall back to jobs=1 *)
  let inputs = contentious_epoch ~seed:9 ~n_rows:40 ~n_txns:10 in
  let db, txns = inputs in
  let m = Epoch_merge.run ~threshold:1_000_000 ~db ~jobs:8 ~ssi:false txns in
  Alcotest.(check int) "gated to sequential" 1 (Epoch_merge.jobs_used m)

let test_clamp_jobs () =
  List.iter
    (fun (req, want) ->
      Alcotest.(check int) (Printf.sprintf "clamp %d" req) want
        (Epoch_merge.clamp_jobs req))
    [ (-3, 1); (0, 1); (1, 1); (2, 2); (3, 2); (4, 4); (7, 4); (8, 8);
      (15, 8); (16, 16); (64, 16) ]

(* --- The column-level kernel (DESIGN.md §13) --- *)

(* Like [contentious_epoch], but Updates carry narrow column masks so
   the per-field claim/apply machinery is actually exercised: disjoint
   and overlapping masks on the same hot rows, plus deletes racing the
   masked updates. *)
let contentious_column_epoch ~seed ~n_rows ~n_txns =
  let db, _ = kv_db n_rows in
  let rng = Gg_util.Rng.create seed in
  let txns =
    List.init n_txns (fun i ->
        let meta =
          Meta.make ~sen:1 ~cen:1
            ~csn:(Gg_storage.Csn.make ~ts:(1_000 + i) ~node:(i mod 3))
        in
        let records =
          List.init 6 (fun r ->
              let roll = Gg_util.Rng.int rng 100 in
              if roll < 80 then
                let k = Gg_util.Rng.int rng n_rows in
                (* bias towards the value column; sometimes whole-row *)
                let cols =
                  if roll < 50 then Gg_crdt.Column.of_index 1
                  else Gg_crdt.Column.full
                in
                Writeset.make_record ~cols ~table:"kv" ~key:[| Value.Int k |]
                  ~op:Writeset.Update
                  ~data:[| Value.Int k; Value.Int ((i * 10) + r) |]
                  ()
              else if roll < 92 then
                let k = n_rows + Gg_util.Rng.int rng (n_rows / 4) in
                Writeset.make_record ~table:"kv" ~key:[| Value.Int k |]
                  ~op:Writeset.Insert
                  ~data:[| Value.Int k; Value.Int r |]
                  ()
              else
                let k = Gg_util.Rng.int rng n_rows in
                Writeset.make_record ~table:"kv" ~key:[| Value.Int k |]
                  ~op:Writeset.Delete ~data:[||] ())
        in
        Writeset.make ~meta ~records ())
  in
  (db, txns)

let column_merge_outcome ~jobs ~ssi (db, txns) =
  let m =
    Epoch_merge.run ~threshold:0 ~level:Params.Column ~db ~jobs ~ssi txns
  in
  let decisions =
    List.map
      (fun ws ->
        if Epoch_merge.committed m ws then "C"
        else Txn.abort_reason_to_string (Epoch_merge.abort_reason m ws))
      txns
  in
  (Epoch_merge.n_committed m, Epoch_merge.n_dead m, decisions, Db.digest db)

let test_column_kernel_j1_vs_jn () =
  List.iter
    (fun seed ->
      let c1, d1, dec1, dig1 =
        column_merge_outcome ~jobs:1 ~ssi:false
          (contentious_column_epoch ~seed ~n_rows:80 ~n_txns:120)
      in
      List.iter
        (fun jobs ->
          let c, d, dec, dig =
            column_merge_outcome ~jobs ~ssi:false
              (contentious_column_epoch ~seed ~n_rows:80 ~n_txns:120)
          in
          let tag s = Printf.sprintf "column %s (jobs=%d)" s jobs in
          Alcotest.(check int) (tag "committed") c1 c;
          Alcotest.(check int) (tag "dead") d1 d;
          Alcotest.(check (list string)) (tag "per-txn decisions") dec1 dec;
          Alcotest.(check string) (tag "db digest") dig1 dig)
        [ 2; 4; 8 ])
    [ 7; 42; 1_234 ]

let test_column_kernel_commits_more () =
  (* The whole point of the per-field lattice: masked same-row updates
     that collide under row-level first-writer-wins merge cleanly at
     column level. Same epoch, strictly fewer conflict aborts. *)
  let outcome level =
    let db, txns = contentious_column_epoch ~seed:42 ~n_rows:40 ~n_txns:150 in
    let m = Epoch_merge.run ~threshold:0 ~level ~db ~jobs:1 ~ssi:false txns in
    Epoch_merge.n_committed m
  in
  let row = outcome Params.Row and col = outcome Params.Column in
  Alcotest.(check bool)
    (Printf.sprintf "column commits (%d) > row commits (%d)" col row)
    true (col > row)

(* --- Full cluster: workload-level byte equality --- *)

let converged_digests c =
  Cluster.quiesce c;
  Cluster.digests c

let cluster_outcome ?(merge_level = Params.Row) ~merge_jobs ~load ~gen_for () =
  let params =
    {
      Params.default with
      Params.seed = 6_060;
      merge_jobs;
      merge_level;
      (* force the sharded path on: epoch record counts in a short test
         run sit below the production threshold *)
      merge_par_threshold = (if merge_jobs > 1 then 0 else Params.default.Params.merge_par_threshold);
    }
  in
  let c =
    Cluster.create ~params ~topology:(Topology.china3 ()) ~load ()
  in
  let clients =
    List.init 3 (fun region ->
        let gen = gen_for region in
        let cl = Client.create c ~home:region ~connections:4 ~gen in
        Client.start cl;
        cl)
  in
  Cluster.run_for_ms c 1_000;
  List.iter Client.stop clients;
  let digests = converged_digests c in
  (Cluster.total_committed c, Cluster.total_aborted c, digests)

let check_cluster_equal ?merge_level ~name ~load ~gen_for () =
  let c1, a1, d1 = cluster_outcome ?merge_level ~merge_jobs:1 ~load ~gen_for () in
  let c4, a4, d4 = cluster_outcome ?merge_level ~merge_jobs:4 ~load ~gen_for () in
  Alcotest.(check int) (name ^ ": committed equal") c1 c4;
  Alcotest.(check int) (name ^ ": aborted equal") a1 a4;
  Alcotest.(check (list string)) (name ^ ": replica digests equal") d1 d4;
  match d1 with
  | d :: rest ->
    Alcotest.(check bool) (name ^ ": replicas converged") true
      (List.for_all (String.equal d) rest)
  | [] -> Alcotest.fail "no digests"

let test_cluster_ycsb_j1_vs_j4 () =
  let profile = Gg_workload.Ycsb.(with_records high_contention 400) in
  check_cluster_equal ~name:"ycsb"
    ~load:(Gg_workload.Ycsb.load profile)
    ~gen_for:(fun region ->
      let w = Gg_workload.Ycsb.create profile ~seed:(2_000 + region) in
      fun () -> Txn.Op_txn (Gg_workload.Ycsb.next_txn w))
    ()

let test_cluster_tpcc_j1_vs_j4 () =
  let cfg = Gg_workload.Tpcc.small in
  check_cluster_equal ~name:"tpcc"
    ~load:(Gg_workload.Tpcc.load cfg)
    ~gen_for:(fun region ->
      let w =
        Gg_workload.Tpcc.create cfg ~seed:(3_000 + region) ~node:region
      in
      fun () -> Txn.Op_txn (Gg_workload.Tpcc.next_txn w))
    ()

let test_cluster_hotkey_column_j1_vs_j4 () =
  (* The column kernel's sharded path under the nastiest workload we
     have: a rotating hot-key storm with narrow column masks. *)
  let profile = Gg_workload.Hotkey.(with_records base 300) in
  check_cluster_equal ~merge_level:Params.Column ~name:"hotkey/column"
    ~load:(Gg_workload.Hotkey.load profile)
    ~gen_for:(fun region ->
      let w = Gg_workload.Hotkey.create profile ~seed:(4_000 + region) in
      fun () -> Txn.Op_txn (Gg_workload.Hotkey.next_txn w))
    ()

(* --- Chaos checker sweep parity --- *)

let test_checker_sweep_merge_jobs_parity () =
  let quiet _ = () in
  let r1 = Checker.check ~log:quiet ~fast:true ~seeds:4 () in
  let r2 = Checker.check ~log:quiet ~fast:true ~merge_jobs:2 ~seeds:4 () in
  Alcotest.(check int) "no violations at merge_jobs=1" 0
    (List.length r1.Checker.failures);
  Alcotest.(check int) "no violations at merge_jobs=2" 0
    (List.length r2.Checker.failures);
  Alcotest.(check int) "commit totals equal" r1.Checker.total_commits
    r2.Checker.total_commits;
  Alcotest.(check int) "seeds equal" r1.Checker.seeds_run r2.Checker.seeds_run

let () =
  Alcotest.run "merge_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map_shards partitions by key" `Quick
            test_map_shards_partition;
          Alcotest.test_case "map_shards jobs=1 is a single call" `Quick
            test_map_shards_jobs1_single_call;
          Alcotest.test_case "map_shards lowest-shard exception" `Quick
            test_map_shards_exception;
          Alcotest.test_case "map_chunks concat order" `Quick
            test_map_chunks_concat_order;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "merge shards refine temp shards" `Quick
            test_key_shard_refines_temp_shards;
          Alcotest.test_case "digest_shard localises changes" `Quick
            test_digest_shard_localises_changes;
        ] );
      ( "wire",
        [
          Alcotest.test_case "to_wire_par bytes identical" `Quick
            test_to_wire_par_bytes_identical;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "j1 vs j{2,4,8} identical" `Quick
            test_kernel_j1_vs_jn;
          Alcotest.test_case "j1 vs jN identical under SSI" `Quick
            test_kernel_j1_vs_jn_ssi;
          Alcotest.test_case "threshold gates sharding" `Quick
            test_kernel_threshold_gates_sharding;
          Alcotest.test_case "clamp_jobs powers of two" `Quick
            test_clamp_jobs;
        ] );
      ( "column kernel",
        [
          Alcotest.test_case "column j1 vs j{2,4,8} identical" `Quick
            test_column_kernel_j1_vs_jn;
          Alcotest.test_case "column commits more than row" `Quick
            test_column_kernel_commits_more;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "YCSB j1 vs j4 byte-equal" `Slow
            test_cluster_ycsb_j1_vs_j4;
          Alcotest.test_case "TPC-C j1 vs j4 byte-equal" `Slow
            test_cluster_tpcc_j1_vs_j4;
          Alcotest.test_case "hotkey column-level j1 vs j4 byte-equal" `Slow
            test_cluster_hotkey_column_j1_vs_j4;
        ] );
      ( "checker",
        [
          Alcotest.test_case "mj=2 sweep matches mj=1" `Slow
            test_checker_sweep_merge_jobs_parity;
        ] );
    ]
