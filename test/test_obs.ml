(* Observability substrate tests: instrument registry, trace ring
   buffer, JSONL codec, trace analysis and the end-to-end guarantee that
   a seeded traced run is byte-reproducible. *)

module Obs = Gg_obs.Obs
module Jsonl = Gg_obs.Jsonl
module Trace_view = Gg_obs.Trace_view

(* --- registry --- *)

let test_counter_get_or_create () =
  let obs = Obs.create () in
  let a = Obs.counter obs "x.count" in
  Obs.Counter.add a 3;
  let b = Obs.counter obs "x.count" in
  Alcotest.(check int) "same instrument" 3 (Obs.Counter.value b);
  Obs.Counter.incr b;
  Alcotest.(check int) "shared state" 4 (Obs.Counter.value a)

let test_kind_mismatch_rejected () =
  let obs = Obs.create () in
  ignore (Obs.counter obs "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs: instrument kind mismatch for x") (fun () ->
      ignore (Obs.gauge obs "x"))

let test_counter_values_registration_order () =
  let obs = Obs.create () in
  Obs.Counter.incr (Obs.counter obs "b");
  ignore (Obs.histogram obs "h");
  Obs.Counter.add (Obs.counter obs "a") 2;
  ignore (Obs.counter obs "b");
  (* histograms are not counters; re-lookup must not re-register *)
  Alcotest.(check (list (pair string int)))
    "insertion order, counters only"
    [ ("b", 1); ("a", 2) ]
    (Obs.counter_values obs)

let test_reset_all () =
  let obs = Obs.create () in
  let c = Obs.counter obs "c" in
  let g = Obs.gauge obs "g" in
  let h = Obs.histogram obs "h" in
  Obs.Counter.add c 5;
  Obs.Gauge.set g 2.5;
  Obs.Histogram.observe h 10.0;
  let hook_runs = ref 0 in
  Obs.on_reset obs (fun () -> incr hook_runs);
  Obs.set_tracing obs true;
  Obs.emit obs ~cat:"t" "e";
  Obs.reset_all obs;
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (Obs.Gauge.value g);
  Alcotest.(check int) "histogram emptied" 0 (Obs.Histogram.count h);
  Alcotest.(check int) "hook ran once" 1 !hook_runs;
  Alcotest.(check int) "trace cleared" 0 (List.length (Obs.events obs))

(* --- tracer --- *)

let test_emit_disabled_is_noop () =
  let obs = Obs.create () in
  Obs.emit obs ~cat:"txn" "commit";
  Alcotest.(check int) "no events buffered" 0 (Obs.events_total obs);
  Alcotest.(check (list unit)) "empty" []
    (List.map (fun _ -> ()) (Obs.events obs))

let test_ring_buffer_wraps () =
  let obs = Obs.create ~trace_capacity:4 () in
  Obs.set_tracing obs true;
  for i = 1 to 6 do
    Obs.emit obs ~at:i ~cat:"t" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "total counts overwritten" 6 (Obs.events_total obs);
  Alcotest.(check int) "dropped = total - capacity" 2 (Obs.dropped_events obs);
  Alcotest.(check (list string))
    "survivors oldest first"
    [ "e3"; "e4"; "e5"; "e6" ]
    (List.map (fun (e : Obs.Trace.event) -> e.Obs.Trace.name) (Obs.events obs))

let test_clock_and_defaults () =
  let obs = Obs.create () in
  let now = ref 42 in
  Obs.set_clock obs (fun () -> !now);
  Obs.set_tracing obs true;
  Obs.emit obs ~cat:"t" "tick";
  now := 99;
  Obs.emit obs ~at:7 ~cat:"t" "backdated";
  match Obs.events obs with
  | [ a; b ] ->
    Alcotest.(check int) "clock time" 42 a.Obs.Trace.at;
    Alcotest.(check int) "explicit at wins" 7 b.Obs.Trace.at;
    Alcotest.(check int) "node default" (-1) a.Obs.Trace.node;
    Alcotest.(check int) "dur default" (-1) a.Obs.Trace.dur
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

(* --- JSONL codec --- *)

let test_jsonl_roundtrip () =
  let v =
    Jsonl.Obj
      [
        ("type", Jsonl.Str "event");
        ("at", Jsonl.Int 123456);
        ("neg", Jsonl.Int (-1));
        ("f", Jsonl.Float 2.5);
        ("s", Jsonl.Str "quote\" slash\\ nl\n tab\t");
        ("l", Jsonl.List [ Jsonl.Bool true; Jsonl.Null ]);
        ("o", Jsonl.Obj [ ("k", Jsonl.Str "v") ]);
      ]
  in
  let s = Jsonl.to_string v in
  (match Jsonl.parse s with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error m -> Alcotest.failf "parse failed: %s" m);
  Alcotest.(check string) "deterministic bytes" s
    (Jsonl.to_string
       (match Jsonl.parse s with Ok v -> v | Error _ -> Jsonl.Null))

let test_jsonl_rejects_garbage () =
  (match Jsonl.parse "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Jsonl.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad value accepted"

(* --- trace analysis --- *)

let ev ?(node = 0) ?(epoch = -1) ?(span = -1) ?(dur = -1) ?(detail = "") ~at cat
    name =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("type", Jsonl.Str "event");
         ("at", Jsonl.Int at);
         ("node", Jsonl.Int node);
         ("cat", Jsonl.Str cat);
         ("name", Jsonl.Str name);
         ("epoch", Jsonl.Int epoch);
         ("span", Jsonl.Int span);
         ("dur", Jsonl.Int dur);
         ("detail", Jsonl.Str detail);
       ])

let test_trace_view_analyses () =
  let lines =
    [
      "{\"type\":\"meta\",\"label\":\"t\",\"nodes\":2,\"epoch_us\":10000,\
       \"seed\":1,\"events\":10,\"dropped\":0}";
      (* epoch 5: sealed on both nodes, merges 1 ms apart *)
      ev ~at:50_000 ~node:0 ~epoch:5 "epoch" "seal";
      ev ~at:50_010 ~node:1 ~epoch:5 "epoch" "seal";
      ev ~at:60_000 ~node:0 ~epoch:5 ~dur:200 "epoch" "merge.commit";
      ev ~at:61_000 ~node:1 ~epoch:5 ~dur:300 "epoch" "merge.commit";
      (* one committed txn in epoch 5 on node 0 *)
      ev ~at:52_000 ~node:0 ~epoch:5 ~span:9 ~dur:100 "txn" "phase.parse";
      ev ~at:52_100 ~node:0 ~epoch:5 ~span:9 ~dur:400 "txn" "phase.exec";
      ev ~at:52_500 ~node:0 ~epoch:5 ~span:9 ~dur:7_000 "txn" "phase.wait";
      ev ~at:59_500 ~node:0 ~epoch:5 ~span:9 ~dur:200 "txn" "phase.merge";
      ev ~at:59_700 ~node:0 ~epoch:5 ~span:9 ~dur:300 "txn" "phase.log";
      ev ~at:62_000 ~node:0 ~epoch:5 ~span:9 ~dur:12_000 "txn" "commit";
      (* epoch 6: single-node merge, an abort *)
      ev ~at:70_000 ~node:0 ~epoch:6 "epoch" "seal";
      ev ~at:80_000 ~node:0 ~epoch:6 ~dur:500 "epoch" "merge.commit";
      ev ~at:81_000 ~node:1 ~epoch:6 ~span:3 ~dur:9_000 "txn" "abort";
      "{\"type\":\"snapshot\",\"at\":100000,\"counters\":{\"sim.events\":42}}";
    ]
  in
  match Trace_view.of_lines lines with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok t ->
    Alcotest.(check int) "events parsed" 13 (List.length t.Trace_view.events);
    Alcotest.(check int) "snapshot parsed" 1 (List.length t.Trace_view.snapshots);
    let rows = Trace_view.epoch_rows t in
    Alcotest.(check (list int)) "epochs sorted" [ 5; 6 ]
      (List.map (fun r -> r.Trace_view.er_epoch) rows);
    let r5 = List.hd rows in
    Alcotest.(check int) "earliest seal" 50_000 r5.Trace_view.er_seal_at;
    Alcotest.(check int) "merge nodes" 2 r5.Trace_view.er_merge_nodes;
    Alcotest.(check int) "max merge dur" 300 r5.Trace_view.er_merge_max_us;
    Alcotest.(check int) "skew = spread of merge.commit" 1_000
      r5.Trace_view.er_skew_us;
    Alcotest.(check int) "commits" 1 r5.Trace_view.er_commits;
    let r6 = List.nth rows 1 in
    Alcotest.(check int) "single-node merge has no skew" 0
      r6.Trace_view.er_skew_us;
    Alcotest.(check int) "aborts" 1 r6.Trace_view.er_aborts;
    (match Trace_view.phase_breakdown t with
    | [ p0 ] ->
      Alcotest.(check int) "node" 0 p0.Trace_view.pr_node;
      Alcotest.(check int) "txns" 1 p0.Trace_view.pr_txns;
      Alcotest.(check (float 1e-6)) "wait mean ms" 7.0 p0.Trace_view.pr_wait_ms
    | l -> Alcotest.failf "expected 1 phase row, got %d" (List.length l));
    let mean_skew, max_skew = Trace_view.skew_stats t in
    Alcotest.(check int) "max skew" 1_000 max_skew;
    Alcotest.(check (float 1e-6)) "mean skew over multi-node epochs" 1_000.0
      mean_skew;
    (match Trace_view.slowest_epochs t ~top:1 with
    | [ worst ] ->
      Alcotest.(check int) "slowest epoch by merge" 6 worst.Trace_view.er_epoch
    | l -> Alcotest.failf "expected 1, got %d" (List.length l));
    (* report renders without raising and mentions both epochs *)
    let report = Trace_view.render_report t in
    Alcotest.(check bool) "report nonempty" true (String.length report > 200)

(* --- end-to-end: traced harness runs are byte-identical --- *)

let traced_run path =
  let profile =
    Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 2_000
  in
  let r, _ =
    Gg_harness.Driver.run_geogauss ~connections:8 ~trace_file:path
      ~snapshot_every_ms:100
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(Gg_workload.Ycsb.load profile)
      ~gen:(Gg_harness.Driver.ycsb_gens profile ~seed:11)
      ~warmup_ms:200 ~measure_ms:400 ~label:"trace-test" ()
  in
  r

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_traced_run_deterministic () =
  let p1 = Filename.temp_file "ggtrace1" ".jsonl" in
  let p2 = Filename.temp_file "ggtrace2" ".jsonl" in
  let r1 = traced_run p1 in
  let r2 = traced_run p2 in
  Alcotest.(check int) "same committed" r1.Gg_harness.Result.committed
    r2.Gg_harness.Result.committed;
  let s1 = read_file p1 and s2 = read_file p2 in
  Sys.remove p1;
  Sys.remove p2;
  Alcotest.(check bool) "trace nonempty" true (String.length s1 > 1_000);
  Alcotest.(check bool) "byte-identical traces" true (String.equal s1 s2)

let test_traced_run_loads_and_analyzes () =
  let path = Filename.temp_file "ggtrace" ".jsonl" in
  let r = traced_run path in
  (match Trace_view.load_file path with
  | Error m -> Alcotest.failf "trace unreadable: %s" m
  | Ok t ->
    Alcotest.(check bool) "has events" true (List.length t.Trace_view.events > 0);
    Alcotest.(check bool) "has snapshots" true
      (List.length t.Trace_view.snapshots > 0);
    (* every committed txn in the window produced a commit event *)
    let commits =
      List.length
        (List.filter
           (fun (e : Obs.Trace.event) ->
             e.Obs.Trace.cat = "txn" && e.Obs.Trace.name = "commit")
           t.Trace_view.events)
    in
    Alcotest.(check int) "commit events match result" r.Gg_harness.Result.committed
      commits;
    Alcotest.(check bool) "epoch rows present" true
      (List.length (Trace_view.epoch_rows t) > 0));
  Sys.remove path

let test_untraced_run_buffers_nothing () =
  let profile =
    Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 1_000
  in
  let cluster =
    Geogauss.Cluster.create
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(Gg_workload.Ycsb.load profile)
      ()
  in
  Geogauss.Cluster.run_for_ms cluster 100;
  Alcotest.(check int) "zero events without tracing" 0
    (Obs.events_total (Geogauss.Cluster.obs cluster))

let () =
  Alcotest.run "gg_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter get-or-create" `Quick test_counter_get_or_create;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "counter_values order" `Quick test_counter_values_registration_order;
          Alcotest.test_case "reset_all" `Quick test_reset_all;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled emit is noop" `Quick test_emit_disabled_is_noop;
          Alcotest.test_case "ring buffer wraps" `Quick test_ring_buffer_wraps;
          Alcotest.test_case "clock + defaults" `Quick test_clock_and_defaults;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
        ] );
      ( "trace_view",
        [ Alcotest.test_case "analyses" `Quick test_trace_view_analyses ] );
      ( "end_to_end",
        [
          Alcotest.test_case "byte-identical traces" `Slow test_traced_run_deterministic;
          Alcotest.test_case "trace loads + analyzes" `Slow test_traced_run_loads_and_analyzes;
          Alcotest.test_case "untraced buffers nothing" `Quick test_untraced_run_buffers_nothing;
        ] );
    ]
