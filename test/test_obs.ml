(* Observability substrate tests: instrument registry, trace ring
   buffer, JSONL codec, trace analysis and the end-to-end guarantee that
   a seeded traced run is byte-reproducible. *)

module Obs = Gg_obs.Obs
module Jsonl = Gg_obs.Jsonl
module Trace_view = Gg_obs.Trace_view

(* --- registry --- *)

let test_counter_get_or_create () =
  let obs = Obs.create () in
  let a = Obs.counter obs "x.count" in
  Obs.Counter.add a 3;
  let b = Obs.counter obs "x.count" in
  Alcotest.(check int) "same instrument" 3 (Obs.Counter.value b);
  Obs.Counter.incr b;
  Alcotest.(check int) "shared state" 4 (Obs.Counter.value a)

let test_kind_mismatch_rejected () =
  let obs = Obs.create () in
  ignore (Obs.counter obs "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs: instrument kind mismatch for x") (fun () ->
      ignore (Obs.gauge obs "x"))

let test_counter_values_registration_order () =
  let obs = Obs.create () in
  Obs.Counter.incr (Obs.counter obs "b");
  ignore (Obs.histogram obs "h");
  Obs.Counter.add (Obs.counter obs "a") 2;
  ignore (Obs.counter obs "b");
  (* histograms are not counters; re-lookup must not re-register *)
  Alcotest.(check (list (pair string int)))
    "insertion order, counters only"
    [ ("b", 1); ("a", 2) ]
    (Obs.counter_values obs)

let test_reset_all () =
  let obs = Obs.create () in
  let c = Obs.counter obs "c" in
  let g = Obs.gauge obs "g" in
  let h = Obs.histogram obs "h" in
  Obs.Counter.add c 5;
  Obs.Gauge.set g 2.5;
  Obs.Histogram.observe h 10.0;
  let hook_runs = ref 0 in
  Obs.on_reset obs (fun () -> incr hook_runs);
  Obs.set_tracing obs true;
  Obs.emit obs ~cat:"t" "e";
  Obs.reset_all obs;
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (Obs.Gauge.value g);
  Alcotest.(check int) "histogram emptied" 0 (Obs.Histogram.count h);
  Alcotest.(check int) "hook ran once" 1 !hook_runs;
  Alcotest.(check int) "trace cleared" 0 (List.length (Obs.events obs))

(* --- tracer --- *)

let test_emit_disabled_is_noop () =
  let obs = Obs.create () in
  Obs.emit obs ~cat:"txn" "commit";
  Alcotest.(check int) "no events buffered" 0 (Obs.events_total obs);
  Alcotest.(check (list unit)) "empty" []
    (List.map (fun _ -> ()) (Obs.events obs))

let test_ring_buffer_wraps () =
  let obs = Obs.create ~trace_capacity:4 () in
  Obs.set_tracing obs true;
  for i = 1 to 6 do
    Obs.emit obs ~at:i ~cat:"t" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "total counts overwritten" 6 (Obs.events_total obs);
  Alcotest.(check int) "dropped = total - capacity" 2 (Obs.dropped_events obs);
  Alcotest.(check (list string))
    "survivors oldest first"
    [ "e3"; "e4"; "e5"; "e6" ]
    (List.map (fun (e : Obs.Trace.event) -> e.Obs.Trace.name) (Obs.events obs))

let test_clock_and_defaults () =
  let obs = Obs.create () in
  let now = ref 42 in
  Obs.set_clock obs (fun () -> !now);
  Obs.set_tracing obs true;
  Obs.emit obs ~cat:"t" "tick";
  now := 99;
  Obs.emit obs ~at:7 ~cat:"t" "backdated";
  match Obs.events obs with
  | [ a; b ] ->
    Alcotest.(check int) "clock time" 42 a.Obs.Trace.at;
    Alcotest.(check int) "explicit at wins" 7 b.Obs.Trace.at;
    Alcotest.(check int) "node default" (-1) a.Obs.Trace.node;
    Alcotest.(check int) "dur default" (-1) a.Obs.Trace.dur
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

(* --- JSONL codec --- *)

let test_jsonl_roundtrip () =
  let v =
    Jsonl.Obj
      [
        ("type", Jsonl.Str "event");
        ("at", Jsonl.Int 123456);
        ("neg", Jsonl.Int (-1));
        ("f", Jsonl.Float 2.5);
        ("s", Jsonl.Str "quote\" slash\\ nl\n tab\t");
        ("l", Jsonl.List [ Jsonl.Bool true; Jsonl.Null ]);
        ("o", Jsonl.Obj [ ("k", Jsonl.Str "v") ]);
      ]
  in
  let s = Jsonl.to_string v in
  (match Jsonl.parse s with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error m -> Alcotest.failf "parse failed: %s" m);
  Alcotest.(check string) "deterministic bytes" s
    (Jsonl.to_string
       (match Jsonl.parse s with Ok v -> v | Error _ -> Jsonl.Null))

let test_jsonl_rejects_garbage () =
  (match Jsonl.parse "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Jsonl.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad value accepted"

let test_jsonl_control_chars () =
  let s = Jsonl.to_string (Jsonl.Str "a\x01b\x1fc\x00") in
  Alcotest.(check string) "control chars \\u-escaped"
    "\"a\\u0001b\\u001fc\\u0000\"" s;
  (* a trace line must never contain a raw newline or control byte *)
  String.iter
    (fun c -> Alcotest.(check bool) "no raw control byte" true (Char.code c >= 0x20))
    s;
  match Jsonl.parse s with
  | Ok (Jsonl.Str s') -> Alcotest.(check string) "parses back" "a\x01b\x1fc\x00" s'
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_jsonl_non_finite_floats () =
  Alcotest.(check string) "nan renders null" "null"
    (Jsonl.to_string (Jsonl.Float Float.nan));
  Alcotest.(check string) "+inf renders 1e999" "1e999"
    (Jsonl.to_string (Jsonl.Float Float.infinity));
  Alcotest.(check string) "-inf renders -1e999" "-1e999"
    (Jsonl.to_string (Jsonl.Float Float.neg_infinity));
  (match Jsonl.parse "1e999" with
  | Ok (Jsonl.Float f) ->
    Alcotest.(check bool) "1e999 parses to +inf" true (f = Float.infinity)
  | _ -> Alcotest.fail "1e999 did not parse as a float");
  match Jsonl.parse "-1e999" with
  | Ok (Jsonl.Float f) ->
    Alcotest.(check bool) "-1e999 parses to -inf" true (f = Float.neg_infinity)
  | _ -> Alcotest.fail "-1e999 did not parse as a float"

(* Round-trip property over arbitrary values, including non-finite
   floats and control-character strings. NaN renders as [null], so
   value-level equality cannot hold in general; what the exporter needs
   is byte-level idempotence: once rendered, re-parsing and re-rendering
   reproduces the exact bytes. *)
let jsonl_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Jsonl.Null;
        map (fun b -> Jsonl.Bool b) bool;
        map (fun i -> Jsonl.Int i) int;
        map (fun f -> Jsonl.Float f)
          (oneof
             [
               float;
               oneofl [ Float.nan; Float.infinity; Float.neg_infinity; 0.0; -0.0 ];
             ]);
        map (fun s -> Jsonl.Str s) (string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 20));
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Jsonl.List l) (list_size (0 -- 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> Jsonl.Obj kvs)
                (list_size (0 -- 4)
                   (pair (string_size ~gen:printable (0 -- 8)) (self (depth - 1)))) );
          ])
    2

let prop_jsonl_roundtrip =
  QCheck.Test.make ~count:500 ~name:"jsonl render/parse/render is byte-stable"
    (QCheck.make jsonl_gen) (fun v ->
      let s = Jsonl.to_string v in
      (* every rendered line is newline- and control-free *)
      String.iter
        (fun c -> if Char.code c < 0x20 then QCheck.Test.fail_report "raw control byte")
        s;
      match Jsonl.parse s with
      | Error m -> QCheck.Test.fail_reportf "did not parse back: %s (%s)" m s
      | Ok v' -> String.equal s (Jsonl.to_string v'))

(* --- trace analysis --- *)

let ev ?(node = 0) ?(epoch = -1) ?(span = -1) ?(dur = -1) ?(detail = "") ~at cat
    name =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("type", Jsonl.Str "event");
         ("at", Jsonl.Int at);
         ("node", Jsonl.Int node);
         ("cat", Jsonl.Str cat);
         ("name", Jsonl.Str name);
         ("epoch", Jsonl.Int epoch);
         ("span", Jsonl.Int span);
         ("dur", Jsonl.Int dur);
         ("detail", Jsonl.Str detail);
       ])

let test_trace_view_analyses () =
  let lines =
    [
      "{\"type\":\"meta\",\"label\":\"t\",\"nodes\":2,\"epoch_us\":10000,\
       \"seed\":1,\"events\":10,\"dropped\":0}";
      (* epoch 5: sealed on both nodes, merges 1 ms apart *)
      ev ~at:50_000 ~node:0 ~epoch:5 "epoch" "seal";
      ev ~at:50_010 ~node:1 ~epoch:5 "epoch" "seal";
      ev ~at:60_000 ~node:0 ~epoch:5 ~dur:200 "epoch" "merge.commit";
      ev ~at:61_000 ~node:1 ~epoch:5 ~dur:300 "epoch" "merge.commit";
      (* one committed txn in epoch 5 on node 0 *)
      ev ~at:52_000 ~node:0 ~epoch:5 ~span:9 ~dur:100 "txn" "phase.parse";
      ev ~at:52_100 ~node:0 ~epoch:5 ~span:9 ~dur:400 "txn" "phase.exec";
      ev ~at:52_500 ~node:0 ~epoch:5 ~span:9 ~dur:7_000 "txn" "phase.wait";
      ev ~at:59_500 ~node:0 ~epoch:5 ~span:9 ~dur:200 "txn" "phase.merge";
      ev ~at:59_700 ~node:0 ~epoch:5 ~span:9 ~dur:300 "txn" "phase.log";
      ev ~at:62_000 ~node:0 ~epoch:5 ~span:9 ~dur:12_000 "txn" "commit";
      (* epoch 6: single-node merge, an abort *)
      ev ~at:70_000 ~node:0 ~epoch:6 "epoch" "seal";
      ev ~at:80_000 ~node:0 ~epoch:6 ~dur:500 "epoch" "merge.commit";
      ev ~at:81_000 ~node:1 ~epoch:6 ~span:3 ~dur:9_000 "txn" "abort";
      "{\"type\":\"snapshot\",\"at\":100000,\"counters\":{\"sim.events\":42}}";
    ]
  in
  match Trace_view.of_lines lines with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok t ->
    Alcotest.(check int) "events parsed" 13 (List.length t.Trace_view.events);
    Alcotest.(check int) "snapshot parsed" 1 (List.length t.Trace_view.snapshots);
    let rows = Trace_view.epoch_rows t in
    Alcotest.(check (list int)) "epochs sorted" [ 5; 6 ]
      (List.map (fun r -> r.Trace_view.er_epoch) rows);
    let r5 = List.hd rows in
    Alcotest.(check int) "earliest seal" 50_000 r5.Trace_view.er_seal_at;
    Alcotest.(check int) "merge nodes" 2 r5.Trace_view.er_merge_nodes;
    Alcotest.(check int) "max merge dur" 300 r5.Trace_view.er_merge_max_us;
    Alcotest.(check int) "skew = spread of merge.commit" 1_000
      r5.Trace_view.er_skew_us;
    Alcotest.(check int) "commits" 1 r5.Trace_view.er_commits;
    let r6 = List.nth rows 1 in
    Alcotest.(check int) "single-node merge has no skew" 0
      r6.Trace_view.er_skew_us;
    Alcotest.(check int) "aborts" 1 r6.Trace_view.er_aborts;
    (match Trace_view.phase_breakdown t with
    | [ p0 ] ->
      Alcotest.(check int) "node" 0 p0.Trace_view.pr_node;
      Alcotest.(check int) "txns" 1 p0.Trace_view.pr_txns;
      Alcotest.(check (float 1e-6)) "wait mean ms" 7.0 p0.Trace_view.pr_wait_ms
    | l -> Alcotest.failf "expected 1 phase row, got %d" (List.length l));
    let mean_skew, max_skew = Trace_view.skew_stats t in
    Alcotest.(check int) "max skew" 1_000 max_skew;
    Alcotest.(check (float 1e-6)) "mean skew over multi-node epochs" 1_000.0
      mean_skew;
    (match Trace_view.slowest_epochs t ~top:1 with
    | [ worst ] ->
      Alcotest.(check int) "slowest epoch by merge" 6 worst.Trace_view.er_epoch
    | l -> Alcotest.failf "expected 1, got %d" (List.length l));
    (* report renders without raising and mentions both epochs *)
    let report = Trace_view.render_report t in
    Alcotest.(check bool) "report nonempty" true (String.length report > 200)

(* --- end-to-end: traced harness runs are byte-identical --- *)

let traced_run path =
  let profile =
    Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 2_000
  in
  let r, _ =
    Gg_harness.Driver.run_geogauss ~connections:8 ~trace_file:path
      ~snapshot_every_ms:100
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(Gg_workload.Ycsb.load profile)
      ~gen:(Gg_harness.Driver.ycsb_gens profile ~seed:11)
      ~warmup_ms:200 ~measure_ms:400 ~label:"trace-test" ()
  in
  r

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_traced_run_deterministic () =
  let p1 = Filename.temp_file "ggtrace1" ".jsonl" in
  let p2 = Filename.temp_file "ggtrace2" ".jsonl" in
  let r1 = traced_run p1 in
  let r2 = traced_run p2 in
  Alcotest.(check int) "same committed" r1.Gg_harness.Result.committed
    r2.Gg_harness.Result.committed;
  let s1 = read_file p1 and s2 = read_file p2 in
  Sys.remove p1;
  Sys.remove p2;
  Alcotest.(check bool) "trace nonempty" true (String.length s1 > 1_000);
  Alcotest.(check bool) "byte-identical traces" true (String.equal s1 s2)

let test_traced_run_loads_and_analyzes () =
  let path = Filename.temp_file "ggtrace" ".jsonl" in
  let r = traced_run path in
  (match Trace_view.load_file path with
  | Error m -> Alcotest.failf "trace unreadable: %s" m
  | Ok t ->
    Alcotest.(check bool) "has events" true (List.length t.Trace_view.events > 0);
    Alcotest.(check bool) "has snapshots" true
      (List.length t.Trace_view.snapshots > 0);
    (* every committed txn in the window produced a commit event *)
    let commits =
      List.length
        (List.filter
           (fun (e : Obs.Trace.event) ->
             e.Obs.Trace.cat = "txn" && e.Obs.Trace.name = "commit")
           t.Trace_view.events)
    in
    Alcotest.(check int) "commit events match result" r.Gg_harness.Result.committed
      commits;
    Alcotest.(check bool) "epoch rows present" true
      (List.length (Trace_view.epoch_rows t) > 0));
  Sys.remove path

(* --- causal propagation + critical-path attribution --- *)

let traced_run_custom ?(merge_jobs = 1) ?(warmup_ms = 200) ?(fastpath = false)
    path =
  let profile =
    Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 2_000
  in
  let params = { Geogauss.Params.default with Geogauss.Params.merge_jobs } in
  let params =
    if fastpath then Geogauss.Params.with_fastpath params true else params
  in
  let r, _ =
    Gg_harness.Driver.run_geogauss ~params ~connections:8 ~trace_file:path
      ~snapshot_every_ms:100
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(Gg_workload.Ycsb.load profile)
      ~gen:(Gg_harness.Driver.ycsb_gens profile ~seed:11)
      ~warmup_ms ~measure_ms:400 ~label:"trace-test" ()
  in
  r

let load_trace path =
  match Trace_view.load_file path with
  | Ok t -> t
  | Error m -> Alcotest.failf "trace unreadable: %s" m

(* With no warm-up the buffer covers the whole run, so every
   receive-side span's parent (batch EOFs, ft acks/commits, txn commit
   merges) must resolve to an emitted event — zero orphans. (With a
   warm-up, sends predating the reset legitimately dangle near the
   window start; that case is covered by the sampling counters in the
   critical-path report instead.) *)
let test_no_orphan_parents () =
  let path = Filename.temp_file "ggorphan" ".jsonl" in
  ignore (traced_run_custom ~warmup_ms:0 path);
  let t = load_trace path in
  Sys.remove path;
  let with_parent, unresolved = Trace_view.unresolved_parents t in
  Alcotest.(check bool) "receive-side events present" true (with_parent > 100);
  Alcotest.(check int) "every parent span resolves" 0 unresolved

(* Shared by the classic and eocc phase-sum tests: all eight phases of
   every sampled transaction are non-negative and telescope to exactly
   the commit latency. *)
let check_phase_sums (rep : Trace_view.cp_report) =
  List.iter
    (fun (c : Trace_view.cp_txn) ->
      let sum =
        c.Trace_view.cp_execute + c.Trace_view.cp_seal_wait + c.Trace_view.cp_wan
        + c.Trace_view.cp_merge_wait + c.Trace_view.cp_spec_wait
        + c.Trace_view.cp_confirm_wait + c.Trace_view.cp_validate
        + c.Trace_view.cp_commit
      in
      if sum <> c.Trace_view.cp_latency_us then
        Alcotest.failf
          "node %d span %d: phases sum to %d but latency is %d"
          c.Trace_view.cp_node c.Trace_view.cp_span sum c.Trace_view.cp_latency_us;
      List.iter
        (fun (label, v) -> if v < 0 then Alcotest.failf "%s negative: %d" label v)
        [
          ("execute", c.Trace_view.cp_execute);
          ("seal_wait", c.Trace_view.cp_seal_wait);
          ("wan", c.Trace_view.cp_wan);
          ("merge_wait", c.Trace_view.cp_merge_wait);
          ("spec_wait", c.Trace_view.cp_spec_wait);
          ("confirm_wait", c.Trace_view.cp_confirm_wait);
          ("validate", c.Trace_view.cp_validate);
          ("commit", c.Trace_view.cp_commit);
        ])
    rep.Trace_view.cpr_txns

let test_critical_path_sums_to_latency () =
  let path = Filename.temp_file "ggcp" ".jsonl" in
  let r = traced_run_custom path in
  let t = load_trace path in
  Sys.remove path;
  let rep = Trace_view.critical_path t in
  Alcotest.(check int) "commit count matches result"
    r.Gg_harness.Result.committed rep.Trace_view.cpr_committed;
  Alcotest.(check bool) "sampled a meaningful fraction" true
    (List.length rep.Trace_view.cpr_txns > rep.Trace_view.cpr_committed / 2);
  check_phase_sums rep;
  (* the classic engine never speculates, so the fast-path phases are 0 *)
  List.iter
    (fun (c : Trace_view.cp_txn) ->
      Alcotest.(check int) "classic spec_wait" 0 c.Trace_view.cp_spec_wait;
      Alcotest.(check int) "classic confirm_wait" 0 c.Trace_view.cp_confirm_wait)
    rep.Trace_view.cpr_txns;
  (* cross-region traffic flowed and was attributed to region pairs *)
  let wan = Trace_view.wan_report t in
  Alcotest.(check bool) "wan bytes flowed" true (wan.Trace_view.wr_total_bytes > 0);
  Alcotest.(check bool) "region pairs attributed" true
    (List.exists (fun (_, b) -> b > 0) wan.Trace_view.wr_pairs);
  (* rendering and the JSON reports are pure functions of the trace *)
  Alcotest.(check string) "render deterministic"
    (Trace_view.render_critical_path t)
    (Trace_view.render_critical_path t);
  Alcotest.(check string) "json deterministic"
    (Jsonl.to_string (Trace_view.critical_path_json t))
    (Jsonl.to_string (Trace_view.critical_path_json t));
  Alcotest.(check string) "wan json deterministic"
    (Jsonl.to_string (Trace_view.wan_json t))
    (Jsonl.to_string (Trace_view.wan_json t))

(* Same telescoping invariant under the clock-assisted fast path
   (DESIGN.md §14): confirmed speculative epochs take the
   spec_wait/confirm_wait cut (with wan = merge_wait = 0), classic and
   mispredicted epochs fall back to the six-phase cut — either way the
   eight phases must still sum to the commit latency exactly. *)
let test_critical_path_sums_eocc () =
  let path = Filename.temp_file "ggcpfp" ".jsonl" in
  let r = traced_run_custom ~fastpath:true path in
  let t = load_trace path in
  Sys.remove path;
  let rep = Trace_view.critical_path t in
  Alcotest.(check int) "commit count matches result"
    r.Gg_harness.Result.committed rep.Trace_view.cpr_committed;
  check_phase_sums rep;
  (* the speculative cut was actually taken for some sampled txns *)
  let spec_cut =
    List.filter
      (fun (c : Trace_view.cp_txn) ->
        c.Trace_view.cp_spec_wait + c.Trace_view.cp_confirm_wait > 0)
      rep.Trace_view.cpr_txns
  in
  Alcotest.(check bool) "some txns took the spec cut" true (spec_cut <> []);
  List.iter
    (fun (c : Trace_view.cp_txn) ->
      Alcotest.(check int) "spec cut: wan folded into confirm_wait" 0
        c.Trace_view.cp_wan;
      Alcotest.(check int) "spec cut: merge_wait folded into spec_wait" 0
        c.Trace_view.cp_merge_wait)
    spec_cut

let test_trace_bytes_identical_across_merge_jobs () =
  let p1 = Filename.temp_file "ggmj1" ".jsonl" in
  let p4 = Filename.temp_file "ggmj4" ".jsonl" in
  ignore (traced_run_custom ~merge_jobs:1 p1);
  ignore (traced_run_custom ~merge_jobs:4 p4);
  let s1 = read_file p1 and s4 = read_file p4 in
  Sys.remove p1;
  Sys.remove p4;
  Alcotest.(check bool) "trace nonempty" true (String.length s1 > 1_000);
  Alcotest.(check bool) "--merge-jobs 1 vs 4: byte-identical traces" true
    (String.equal s1 s4)

(* The harness pool fans whole simulations out over domains; a traced
   run must produce the same bytes whether it runs on the calling domain
   or inside a worker at any -j width. *)
let test_trace_bytes_identical_across_pool_jobs () =
  let run_in_pool jobs =
    let paths =
      List.init 2 (fun i -> Filename.temp_file (Printf.sprintf "ggpool%d_%d" jobs i) ".jsonl")
    in
    Gg_par.Pool.with_pool ~jobs (fun pool ->
        ignore
          (Gg_par.Pool.run pool
             (List.map (fun p () -> traced_run_custom p) paths)));
    let contents = List.map read_file paths in
    List.iter Sys.remove paths;
    contents
  in
  let seq = run_in_pool 1 and par = run_in_pool 4 in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "task %d: -j1 vs -j4 byte-identical" i)
        true (String.equal a b))
    (List.combine seq par)

let test_untraced_run_buffers_nothing () =
  let profile =
    Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 1_000
  in
  let cluster =
    Geogauss.Cluster.create
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(Gg_workload.Ycsb.load profile)
      ()
  in
  Geogauss.Cluster.run_for_ms cluster 100;
  Alcotest.(check int) "zero events without tracing" 0
    (Obs.events_total (Geogauss.Cluster.obs cluster))

let () =
  Alcotest.run "gg_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter get-or-create" `Quick test_counter_get_or_create;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "counter_values order" `Quick test_counter_values_registration_order;
          Alcotest.test_case "reset_all" `Quick test_reset_all;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled emit is noop" `Quick test_emit_disabled_is_noop;
          Alcotest.test_case "ring buffer wraps" `Quick test_ring_buffer_wraps;
          Alcotest.test_case "clock + defaults" `Quick test_clock_and_defaults;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
          Alcotest.test_case "control chars" `Quick test_jsonl_control_chars;
          Alcotest.test_case "non-finite floats" `Quick test_jsonl_non_finite_floats;
          QCheck_alcotest.to_alcotest prop_jsonl_roundtrip;
        ] );
      ( "trace_view",
        [ Alcotest.test_case "analyses" `Quick test_trace_view_analyses ] );
      ( "causal",
        [
          Alcotest.test_case "no orphan parents (warmup 0)" `Slow test_no_orphan_parents;
          Alcotest.test_case "critical path sums to latency" `Slow
            test_critical_path_sums_to_latency;
          Alcotest.test_case "critical path sums to latency (eocc)" `Slow
            test_critical_path_sums_eocc;
          Alcotest.test_case "byte-identical across --merge-jobs" `Slow
            test_trace_bytes_identical_across_merge_jobs;
          Alcotest.test_case "byte-identical across pool -j" `Slow
            test_trace_bytes_identical_across_pool_jobs;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "byte-identical traces" `Slow test_traced_run_deterministic;
          Alcotest.test_case "trace loads + analyzes" `Slow test_traced_run_loads_and_analyzes;
          Alcotest.test_case "untraced buffers nothing" `Quick test_untraced_run_buffers_nothing;
        ] );
    ]
