(* Unit and property tests for the gg_util library. *)

open Gg_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr equal
  done;
  Alcotest.(check bool) "streams differ" true (!equal < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 3 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independent () =
  let base = Rng.create 11 in
  let a = Rng.split base and b = Rng.split base in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_chance_extremes () =
  let rng = Rng.create 5 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_rng_chance_frequency () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.chance rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "about 30%" true (freq > 0.27 && freq < 0.33)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 21 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_exponential_mean () =
  let rng = Rng.create 17 in
  let acc = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng 10.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean about 10" true (mean > 9.0 && mean < 11.0)

(* --- Zipf --- *)

let test_zipf_uniform_theta0 () =
  let z = Zipf.create ~theta:0.0 ~n:10 in
  let rng = Rng.create 1 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let k = Zipf.next z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 4_000 && c < 6_000))
    counts

let test_zipf_skew () =
  let z = Zipf.create ~theta:0.9 ~n:1000 in
  let rng = Rng.create 2 in
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Zipf.next z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* Item 0 must dominate: with theta=0.9 it takes >5% of the mass. *)
  Alcotest.(check bool) "head is hot" true (counts.(0) > n / 20);
  Alcotest.(check bool) "head hotter than tail" true (counts.(0) > 100 * (counts.(900) + 1))

let test_zipf_mc_hotspot () =
  (* Paper YCSB-MC: theta=0.8 gives ~60% of accesses on 10% of tuples. *)
  let n = 1000 in
  let z = Zipf.create ~theta:0.8 ~n in
  let rng = Rng.create 3 in
  let hot = ref 0 in
  let total = 100_000 in
  for _ = 1 to total do
    if Zipf.next z rng < n / 10 then incr hot
  done;
  let frac = float_of_int !hot /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "hotspot fraction %.2f in [0.5, 0.75]" frac)
    true
    (frac > 0.5 && frac < 0.75)

let test_zipf_invalid () =
  Alcotest.check_raises "bad theta"
    (Invalid_argument "Zipf.create: theta must be in [0, 1)") (fun () ->
      ignore (Zipf.create ~theta:1.0 ~n:10))

let test_zipf_scrambled_range () =
  let z = Zipf.create ~theta:0.9 ~n:777 in
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let k = Zipf.scrambled z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 777)
  done

(* --- Stats --- *)

let test_acc_basic () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Acc.count acc);
  check_float "mean" 2.5 (Stats.Acc.mean acc);
  check_float "min" 1.0 (Stats.Acc.min acc);
  check_float "max" 4.0 (Stats.Acc.max acc);
  check_float "total" 10.0 (Stats.Acc.total acc);
  check_float "variance" (5.0 /. 3.0) (Stats.Acc.variance acc)

let test_acc_empty () =
  let acc = Stats.Acc.create () in
  check_float "mean of empty" 0.0 (Stats.Acc.mean acc);
  Alcotest.(check int) "count" 0 (Stats.Acc.count acc)

let test_acc_merge () =
  let a = Stats.Acc.create () and b = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) [ 1.0; 2.0 ];
  List.iter (Stats.Acc.add b) [ 3.0; 4.0; 5.0 ];
  let m = Stats.Acc.merge a b in
  Alcotest.(check int) "count" 5 (Stats.Acc.count m);
  check_float "mean" 3.0 (Stats.Acc.mean m);
  check_float "min" 1.0 (Stats.Acc.min m);
  check_float "max" 5.0 (Stats.Acc.max m)

let test_hist_percentiles () =
  let h = Stats.Hist.create () in
  for i = 1 to 1000 do
    Stats.Hist.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Stats.Hist.count h);
  let p50 = Stats.Hist.p50 h in
  Alcotest.(check bool)
    (Printf.sprintf "p50=%.1f near 500" p50)
    true
    (p50 > 450.0 && p50 < 550.0);
  let p99 = Stats.Hist.p99 h in
  Alcotest.(check bool)
    (Printf.sprintf "p99=%.1f near 990" p99)
    true
    (p99 > 930.0 && p99 <= 1000.0);
  check_float "max" 1000.0 (Stats.Hist.max h)

(* Pin the linear interpolation inside the crossing bucket on known
   distributions. Values <= 1.0 all land in bucket 0, whose bounds are
   [0, 1], so the interpolated percentile is exactly rank/count there. *)
let test_hist_percentile_interpolation () =
  let h = Stats.Hist.create () in
  List.iter (Stats.Hist.add h) [ 0.2; 0.4; 0.6; 0.8 ];
  check_float "p25 interpolates to 0.25" 0.25 (Stats.Hist.percentile h 25.0);
  check_float "p50 interpolates to 0.5" 0.5 (Stats.Hist.percentile h 50.0);
  check_float "p75 interpolates to 0.75" 0.75 (Stats.Hist.percentile h 75.0);
  (* the bucket's upper bound (1.0) exceeds the observed max: clamp *)
  check_float "p100 clamped to observed max" 0.8
    (Stats.Hist.percentile h 100.0);
  let one = Stats.Hist.create () in
  Stats.Hist.add one 50.0;
  check_float "single value, p100 = the value" 50.0
    (Stats.Hist.percentile one 100.0);
  Alcotest.(check bool) "single value, p50 <= the value" true
    (Stats.Hist.percentile one 50.0 <= 50.0);
  check_float "empty hist = 0" 0.0 (Stats.Hist.percentile (Stats.Hist.create ()) 99.0);
  (* percentiles are monotone in p *)
  let u = Stats.Hist.create () in
  for i = 1 to 1000 do
    Stats.Hist.add u (float_of_int i)
  done;
  let prev = ref 0.0 in
  List.iter
    (fun p ->
      let v = Stats.Hist.percentile u p in
      Alcotest.(check bool) (Printf.sprintf "monotone at p%.0f" p) true (v >= !prev);
      prev := v)
    [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 ]

let test_hist_mean () =
  let h = Stats.Hist.create () in
  List.iter (Stats.Hist.add h) [ 10.0; 20.0; 30.0 ];
  check_float "mean exact" 20.0 (Stats.Hist.mean h)

let test_hist_merge () =
  let a = Stats.Hist.create () and b = Stats.Hist.create () in
  Stats.Hist.add a 5.0;
  Stats.Hist.add b 500.0;
  let m = Stats.Hist.merge a b in
  Alcotest.(check int) "count" 2 (Stats.Hist.count m);
  check_float "max" 500.0 (Stats.Hist.max m)

let test_series () =
  let s = Stats.Series.create () in
  Stats.Series.add s ~x:1.0 ~y:10.0;
  Stats.Series.add s ~x:2.0 ~y:20.0;
  Alcotest.(check int) "length" 2 (Stats.Series.length s);
  let pts = Stats.Series.points s in
  Alcotest.(check bool) "order preserved" true (pts.(0) = (1.0, 10.0) && pts.(1) = (2.0, 20.0))

(* --- Codec --- *)

let test_codec_varint_roundtrip () =
  let enc = Codec.Enc.create () in
  let values = [ 0; 1; 127; 128; 300; 65535; 1_000_000; max_int ] in
  List.iter (Codec.Enc.varint enc) values;
  let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
  List.iter
    (fun v -> Alcotest.(check int) "varint" v (Codec.Dec.varint dec))
    values;
  Alcotest.(check bool) "consumed all" true (Codec.Dec.at_end dec)

let test_codec_zigzag_roundtrip () =
  let enc = Codec.Enc.create () in
  let values = [ 0; -1; 1; -64; 64; -1_000_000; 1_000_000 ] in
  List.iter (Codec.Enc.zigzag enc) values;
  let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
  List.iter (fun v -> Alcotest.(check int) "zigzag" v (Codec.Dec.zigzag dec)) values

let test_codec_mixed_roundtrip () =
  let enc = Codec.Enc.create () in
  Codec.Enc.string enc "hello";
  Codec.Enc.float enc 3.14159;
  Codec.Enc.bool enc true;
  Codec.Enc.string enc "";
  let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
  Alcotest.(check string) "string" "hello" (Codec.Dec.string dec);
  check_float "float" 3.14159 (Codec.Dec.float dec);
  Alcotest.(check bool) "bool" true (Codec.Dec.bool dec);
  Alcotest.(check string) "empty string" "" (Codec.Dec.string dec)

let test_codec_truncated () =
  let enc = Codec.Enc.create () in
  Codec.Enc.string enc "abcdef";
  let b = Codec.Enc.to_bytes enc in
  let dec = Codec.Dec.of_bytes (Bytes.sub b 0 3) in
  Alcotest.check_raises "truncated" Codec.Dec.Truncated (fun () ->
      ignore (Codec.Dec.string dec))

let test_codec_negative_varint () =
  let enc = Codec.Enc.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Codec.Enc.varint: negative")
    (fun () -> Codec.Enc.varint enc (-1))

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:1000
    QCheck.(map abs int)
    (fun v ->
      let enc = Codec.Enc.create () in
      Codec.Enc.varint enc v;
      let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
      Codec.Dec.varint dec = v)

let prop_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag roundtrip" ~count:1000
    QCheck.(int_range (-1_000_000_000) 1_000_000_000)
    (fun v ->
      let enc = Codec.Enc.create () in
      Codec.Enc.zigzag enc v;
      let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
      Codec.Dec.zigzag dec = v)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:500 QCheck.string (fun s ->
      let enc = Codec.Enc.create () in
      Codec.Enc.string enc s;
      let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
      Codec.Dec.string dec = s)

(* --- Compress --- *)

let test_compress_roundtrip_simple () =
  let data = Bytes.of_string "hello hello hello hello world world world" in
  let c = Compress.compress data in
  Alcotest.(check bytes) "roundtrip" data (Compress.decompress c)

let test_compress_empty () =
  let data = Bytes.empty in
  Alcotest.(check bytes) "empty roundtrip" data
    (Compress.decompress (Compress.compress data))

let test_compress_shrinks_repetitive () =
  let data = Bytes.of_string (String.concat "" (List.init 100 (fun _ -> "abcdefgh"))) in
  let r = Compress.ratio data in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f < 0.2" r)
    true (r < 0.2)

let test_compress_long_runs () =
  let data = Bytes.make 10_000 'x' in
  let c = Compress.compress data in
  Alcotest.(check bool) "run compresses hard" true (Bytes.length c < 200);
  Alcotest.(check bytes) "roundtrip" data (Compress.decompress c)

let test_compress_rejects_garbage () =
  Alcotest.(check bool) "garbage raises" true
    (try
       ignore (Compress.decompress (Bytes.of_string "\x05\x07\x07\x07"));
       false
     with Invalid_argument _ -> true)

let prop_compress_roundtrip =
  QCheck.Test.make ~name:"compress roundtrip" ~count:300 QCheck.string (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Compress.decompress (Compress.compress b)))

let prop_compress_roundtrip_repetitive =
  QCheck.Test.make ~name:"compress roundtrip (repetitive)" ~count:200
    QCheck.(pair small_string (int_range 1 50))
    (fun (s, k) ->
      let b = Bytes.of_string (String.concat "" (List.init k (fun _ -> s))) in
      Bytes.equal b (Compress.decompress (Compress.compress b)))

(* --- Tablefmt --- *)

let test_tablefmt_renders () =
  let t = Tablefmt.create ~title:"T" ~headers:[ "a"; "bb" ] in
  Tablefmt.add_row t [ "1"; "2" ];
  Tablefmt.add_row t [ "333" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* Every rendered line must share the same width (box alignment). *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "" && l <> "T") in
  let widths = List.map String.length lines in
  match widths with
  | [] -> Alcotest.fail "no lines"
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest

let test_fmt_si () =
  Alcotest.(check string) "k" "12.3k" (Tablefmt.fmt_si 12_345.0);
  Alcotest.(check string) "M" "4.57M" (Tablefmt.fmt_si 4_567_000.0);
  Alcotest.(check string) "plain" "42.0" (Tablefmt.fmt_si 42.0)

let () =
  Alcotest.run "gg_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "chance frequency" `Quick test_rng_chance_frequency;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "theta0 uniform" `Quick test_zipf_uniform_theta0;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "paper MC hotspot" `Quick test_zipf_mc_hotspot;
          Alcotest.test_case "invalid theta" `Quick test_zipf_invalid;
          Alcotest.test_case "scrambled range" `Quick test_zipf_scrambled_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "acc basic" `Quick test_acc_basic;
          Alcotest.test_case "acc empty" `Quick test_acc_empty;
          Alcotest.test_case "acc merge" `Quick test_acc_merge;
          Alcotest.test_case "hist percentiles" `Quick test_hist_percentiles;
          Alcotest.test_case "hist percentile interpolation" `Quick
            test_hist_percentile_interpolation;
          Alcotest.test_case "hist mean" `Quick test_hist_mean;
          Alcotest.test_case "hist merge" `Quick test_hist_merge;
          Alcotest.test_case "series" `Quick test_series;
        ] );
      ( "codec",
        [
          Alcotest.test_case "varint roundtrip" `Quick test_codec_varint_roundtrip;
          Alcotest.test_case "zigzag roundtrip" `Quick test_codec_zigzag_roundtrip;
          Alcotest.test_case "mixed roundtrip" `Quick test_codec_mixed_roundtrip;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "negative varint" `Quick test_codec_negative_varint;
          QCheck_alcotest.to_alcotest prop_varint_roundtrip;
          QCheck_alcotest.to_alcotest prop_zigzag_roundtrip;
          QCheck_alcotest.to_alcotest prop_string_roundtrip;
        ] );
      ( "compress",
        [
          Alcotest.test_case "roundtrip simple" `Quick test_compress_roundtrip_simple;
          Alcotest.test_case "empty" `Quick test_compress_empty;
          Alcotest.test_case "shrinks repetitive" `Quick test_compress_shrinks_repetitive;
          Alcotest.test_case "long runs" `Quick test_compress_long_runs;
          Alcotest.test_case "rejects garbage" `Quick test_compress_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_compress_roundtrip;
          QCheck_alcotest.to_alcotest prop_compress_roundtrip_repetitive;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "renders aligned" `Quick test_tablefmt_renders;
          Alcotest.test_case "fmt_si" `Quick test_fmt_si;
        ] );
    ]
