(* Tests for the YCSB and TPC-C workload generators. *)

open Gg_workload
module Value = Gg_storage.Value

(* --- Op --- *)

let test_op_classification () =
  let t =
    Op.make
      [
        Op.Read { table = "t"; key = [| Value.Int 1 |] };
        Op.Add { table = "t"; key = [| Value.Int 2 |]; col = 1; delta = 5 };
      ]
  in
  Alcotest.(check bool) "not read only" false (Op.is_read_only t);
  Alcotest.(check int) "ops" 2 (Op.n_ops t);
  Alcotest.(check int) "writes" 1 (Op.n_writes t);
  let ro = Op.make [ Op.Read { table = "t"; key = [| Value.Int 1 |] } ] in
  Alcotest.(check bool) "read only" true (Op.is_read_only ro)

let test_op_write_size () =
  let t =
    Op.make
      [
        Op.Write
          {
            table = "t";
            key = [| Value.Int 1 |];
            data = [| Value.Int 1; Value.Str (String.make 100 'x') |];
          };
      ]
  in
  Alcotest.(check bool) "size reflects payload" true (Op.write_data_size t > 100)

(* --- YCSB --- *)

let test_ycsb_profiles () =
  Alcotest.(check (float 1e-9)) "RO reads" 1.0 Ycsb.read_only.Ycsb.read_pct;
  Alcotest.(check (float 1e-9)) "MC theta" 0.8 Ycsb.medium_contention.Ycsb.theta;
  Alcotest.(check (float 1e-9)) "HC writes" 0.5 Ycsb.high_contention.Ycsb.read_pct

let test_ycsb_load () =
  let p = Ycsb.with_records Ycsb.medium_contention 500 in
  let db = Gg_storage.Db.create () in
  Ycsb.load p db;
  let t = Gg_storage.Db.get_table_exn db Ycsb.table_name in
  Alcotest.(check int) "rows loaded" 500 (Gg_storage.Table.live_count t)

let test_ycsb_txn_shape () =
  let p = Ycsb.with_records Ycsb.medium_contention 1000 in
  let g = Ycsb.create p ~seed:1 in
  for _ = 1 to 100 do
    let t = Ycsb.next_txn g in
    Alcotest.(check int) "ops per txn" 10 (Op.n_ops t);
    Array.iter
      (fun o ->
        Alcotest.(check string) "table" Ycsb.table_name (Op.op_table o);
        match (Op.op_key o).(0) with
        | Value.Int k -> Alcotest.(check bool) "key range" true (k >= 0 && k < 1000)
        | _ -> Alcotest.fail "bad key type")
      t.Op.ops
  done

let test_ycsb_mix () =
  let p = Ycsb.with_records Ycsb.medium_contention 1000 in
  let g = Ycsb.create p ~seed:2 in
  let reads = ref 0 and total = ref 0 in
  for _ = 1 to 500 do
    let t = Ycsb.next_txn g in
    Array.iter
      (fun o ->
        incr total;
        match o with Op.Read _ -> incr reads | _ -> ())
      t.Op.ops
  done;
  let frac = float_of_int !reads /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "read fraction %.2f near 0.8" frac)
    true
    (frac > 0.75 && frac < 0.85)

let test_ycsb_read_only_profile () =
  let g = Ycsb.create (Ycsb.with_records Ycsb.read_only 100) ~seed:3 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "all reads" true (Op.is_read_only (Ycsb.next_txn g))
  done

let test_ycsb_determinism () =
  let p = Ycsb.with_records Ycsb.medium_contention 1000 in
  let a = Ycsb.create p ~seed:9 and b = Ycsb.create p ~seed:9 in
  for _ = 1 to 20 do
    let ta = Ycsb.next_txn a and tb = Ycsb.next_txn b in
    Alcotest.(check bool) "same stream" true
      (Array.for_all2 (fun x y -> Op.op_key_str x = Op.op_key_str y) ta.Op.ops tb.Op.ops)
  done

let test_ycsb_long_txns () =
  let p =
    Ycsb.with_long_txns (Ycsb.with_records Ycsb.medium_contention 1000)
      ~frac:0.5 ~delay_us:20_000
  in
  let g = Ycsb.create p ~seed:4 in
  let long = ref 0 in
  for _ = 1 to 400 do
    if (Ycsb.next_txn g).Op.exec_extra_us = 20_000 then incr long
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/400 long" !long)
    true
    (!long > 150 && !long < 250)

(* --- TPC-C --- *)

let test_tpcc_load () =
  let db = Gg_storage.Db.create () in
  Tpcc.load Tpcc.small db;
  let count name = Gg_storage.Table.live_count (Gg_storage.Db.get_table_exn db name) in
  Alcotest.(check int) "warehouses" 2 (count "warehouse");
  Alcotest.(check int) "districts" 4 (count "district");
  Alcotest.(check int) "customers" 20 (count "customer");
  Alcotest.(check int) "items" 20 (count "item");
  Alcotest.(check int) "stock" 40 (count "stock");
  Alcotest.(check int) "orders empty" 0 (count "orders")

let test_tpcc_new_order_shape () =
  let g = Tpcc.create Tpcc.small ~seed:1 ~node:0 in
  let t = Tpcc.new_order g in
  Alcotest.(check string) "label" "new_order" t.Op.label;
  (* warehouse read + district add + customer read + per-item (read+add)
     + order insert + per-item line insert *)
  let n_items = (Op.n_ops t - 4) / 3 in
  Alcotest.(check bool)
    (Printf.sprintf "items %d in 5..15" n_items)
    true
    (n_items >= 5 && n_items <= 15);
  let inserts =
    Array.fold_left
      (fun n o -> match o with Op.Insert _ -> n + 1 | _ -> n)
      0 t.Op.ops
  in
  Alcotest.(check int) "order + lines inserted" (n_items + 1) inserts

let test_tpcc_payment_shape () =
  let g = Tpcc.create Tpcc.small ~seed:2 ~node:0 in
  let t = Tpcc.payment g in
  Alcotest.(check string) "label" "payment" t.Op.label;
  Alcotest.(check int) "ops" 4 (Op.n_ops t);
  Alcotest.(check int) "writes" 3 (Op.n_writes t)

let test_tpcc_order_ids_unique_across_nodes () =
  let g0 = Tpcc.create Tpcc.small ~seed:1 ~node:0 in
  let g1 = Tpcc.create Tpcc.small ~seed:1 ~node:1 in
  let order_keys g =
    List.concat_map
      (fun _ ->
        Array.to_list (Tpcc.new_order g).Op.ops
        |> List.filter_map (function
             | Op.Insert { table = "orders"; key; _ } -> Some (Value.encode_key key)
             | _ -> None))
      (List.init 50 (fun i -> i))
  in
  let k0 = order_keys g0 and k1 = order_keys g1 in
  List.iter
    (fun k -> Alcotest.(check bool) "no cross-node collision" false (List.mem k k1))
    k0

let test_tpcc_mix () =
  let g = Tpcc.create Tpcc.small ~seed:5 ~node:0 in
  let no = ref 0 in
  let n = 1000 in
  for _ = 1 to n do
    if (Tpcc.next_txn g).Op.label = "new_order" then incr no
  done;
  let frac = float_of_int !no /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "new-order fraction %.2f" frac)
    true
    (frac > 0.45 && frac < 0.55)

let test_tpcc_full_mix_labels () =
  let g = Tpcc.create ~full_mix:true Tpcc.small ~seed:9 ~node:0 in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 2_000 do
    Hashtbl.replace seen (Tpcc.next_txn g).Op.label ()
  done;
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " generated") true (Hashtbl.mem seen l))
    [ "new_order"; "payment"; "order_status"; "delivery"; "stock_level" ]

let test_tpcc_order_status_read_only () =
  let g = Tpcc.create Tpcc.small ~seed:10 ~node:0 in
  for _ = 1 to 30 do
    ignore (Tpcc.new_order g)
  done;
  (* order_status picks a random district; with orders spread over all
     four districts, some draw must hit a known order. *)
  let deepest = ref 0 in
  for _ = 1 to 20 do
    let t = Tpcc.order_status g in
    Alcotest.(check bool) "read only" true (Op.is_read_only t);
    deepest := max !deepest (Op.n_ops t)
  done;
  Alcotest.(check bool) "reads order + lines" true (!deepest >= 3)

let test_tpcc_delivery_consumes_orders () =
  let g = Tpcc.create Tpcc.small ~seed:11 ~node:0 in
  (* generate orders across both warehouses/districts *)
  for _ = 1 to 20 do
    ignore (Tpcc.new_order g)
  done;
  let d = Tpcc.delivery g in
  Alcotest.(check string) "label" "delivery" d.Op.label;
  Alcotest.(check bool) "writes carrier + balance" true (Op.n_writes d >= 2);
  (* with no orders at all, falls back to payment *)
  let g2 = Tpcc.create Tpcc.small ~seed:12 ~node:1 in
  Alcotest.(check string) "fallback" "payment" (Tpcc.delivery g2).Op.label

let test_tpcc_stock_level_read_only () =
  let g = Tpcc.create Tpcc.small ~seed:13 ~node:0 in
  let t = Tpcc.stock_level g in
  Alcotest.(check bool) "read only" true (Op.is_read_only t);
  Alcotest.(check int) "district + 10 stock reads" 11 (Op.n_ops t)

let test_tpcc_parse_cost_from_config () =
  let g = Tpcc.create Tpcc.default ~seed:1 ~node:0 in
  Alcotest.(check int) "parse cost (Table 2)" 4_600 (Tpcc.payment g).Op.parse_cost_us

(* --- Hotkey --- *)

let test_hotkey_load_and_shape () =
  let p = Hotkey.with_records Hotkey.base 500 in
  let db = Gg_storage.Db.create () in
  Hotkey.load p db;
  let t = Gg_storage.Db.get_table_exn db Hotkey.table_name in
  Alcotest.(check int) "rows loaded" 500 (Gg_storage.Table.live_count t);
  let g = Hotkey.create p ~seed:1 in
  for _ = 1 to 50 do
    let txn = Hotkey.next_txn g in
    Alcotest.(check int) "ops per txn" p.Hotkey.ops_per_txn (Op.n_ops txn);
    Array.iter
      (fun o ->
        Alcotest.(check string) "table" Hotkey.table_name (Op.op_table o);
        match o with
        | Op.Add { col; _ } ->
          Alcotest.(check bool) "counter column" true
            (col >= 1 && col <= p.Hotkey.counters)
        | _ -> ())
      txn.Op.ops
  done

let test_hotkey_concentration () =
  (* [hot_pct] of operations must land on the current hot window. *)
  let p = Hotkey.with_hot (Hotkey.with_records Hotkey.base 10_000) ~keys:16 ~pct:0.6 in
  let g = Hotkey.create p ~seed:7 in
  let counts = Hashtbl.create 64 in
  let total = ref 0 in
  (* Stay inside one rotation window so the hot set is fixed. *)
  for _ = 1 to p.Hotkey.rotate_every - 1 do
    Array.iter
      (fun o ->
        incr total;
        let k = Op.op_key_str o in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
      (Hotkey.next_txn g).Op.ops
  done;
  let top16 =
    Hashtbl.fold (fun _ n acc -> n :: acc) counts []
    |> List.sort (fun a b -> compare b a)
    |> List.filteri (fun i _ -> i < 16)
    |> List.fold_left ( + ) 0
  in
  let frac = float_of_int top16 /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "top-16 keys absorb %.2f" frac)
    true (frac > 0.5)

let test_hotkey_rotation_and_determinism () =
  let p = Hotkey.with_records Hotkey.base 10_000 in
  let keys_of g n =
    List.concat_map
      (fun _ -> Array.to_list (Hotkey.next_txn g).Op.ops |> List.map Op.op_key_str)
      (List.init n (fun i -> i))
  in
  let a = Hotkey.create p ~seed:3 and b = Hotkey.create p ~seed:3 in
  let ka = keys_of a 50 and kb = keys_of b 50 in
  Alcotest.(check bool) "same stream, same seed" true (ka = kb);
  (* Across a rotation boundary the hot window must actually move. *)
  let g = Hotkey.create p ~seed:4 in
  let w1 = keys_of g p.Hotkey.rotate_every in
  let w2 = keys_of g p.Hotkey.rotate_every in
  Alcotest.(check bool) "hot window rotates" true
    (List.exists (fun k -> not (List.mem k w1)) w2)

(* --- Social --- *)

let test_social_post_shape () =
  let p = Social.with_users Social.base 5_000 in
  let db = Gg_storage.Db.create () in
  Social.load p db;
  Alcotest.(check int) "rows loaded" 5_000
    (Gg_storage.Table.live_count (Gg_storage.Db.get_table_exn db Social.table_name));
  let g = Social.create p ~seed:1 in
  let saw_post = ref false in
  for _ = 1 to 200 do
    let t = Social.next_txn g in
    if t.Op.label = "SOCIAL-post" then begin
      saw_post := true;
      (* author read + post bump + >= 1 follower feed bump *)
      Alcotest.(check bool) "post fans out" true (Op.n_writes t >= 2);
      Array.iter
        (fun o ->
          match o with
          | Op.Add { col; _ } ->
            Alcotest.(check bool) "bump col" true
              (col = Social.feed_col || col = Social.post_col)
          | _ -> ())
        t.Op.ops
    end
  done;
  Alcotest.(check bool) "posts generated" true !saw_post

let test_social_follower_graph_deterministic () =
  (* The implicit graph is a pure hash: two generators on different
     seeds still fan a given author out to the same follower rows. *)
  let p = Social.with_users Social.base 5_000 in
  let followers_of g =
    let tbl = Hashtbl.create 64 in
    for _ = 1 to 400 do
      let t = Social.next_txn g in
      if t.Op.label = "SOCIAL-post" then begin
        (* first op reads the author *)
        let author = Op.op_key_str t.Op.ops.(0) in
        (* Slot order: follower j of an author is a pure hash, so two
           posts by the same author agree on every shared slot. *)
        let feeds =
          Array.to_list t.Op.ops
          |> List.filter_map (function
               | Op.Add { col; key; _ } when col = Social.feed_col ->
                 Some (Value.encode_key key)
               | _ -> None)
        in
        match Hashtbl.find_opt tbl author with
        | Some prev ->
          (* same author, same fanout draw => same follower prefix *)
          let common = min (List.length prev) (List.length feeds) in
          if common > 0 then
            Alcotest.(check bool) "follower slots stable" true
              (List.filteri (fun i _ -> i < common) prev
              = List.filteri (fun i _ -> i < common) feeds)
        | None -> Hashtbl.replace tbl author feeds
      end
    done;
    tbl
  in
  ignore (followers_of (Social.create p ~seed:21));
  ignore (followers_of (Social.create p ~seed:22))

let test_social_determinism () =
  let p = Social.with_users Social.base 5_000 in
  let a = Social.create p ~seed:9 and b = Social.create p ~seed:9 in
  for _ = 1 to 50 do
    let ta = Social.next_txn a and tb = Social.next_txn b in
    Alcotest.(check string) "label" ta.Op.label tb.Op.label;
    Alcotest.(check bool) "same keys" true
      (Array.for_all2
         (fun x y -> Op.op_key_str x = Op.op_key_str y)
         ta.Op.ops tb.Op.ops)
  done

(* --- SQL generators --- *)

let test_scan_stmt_shapes () =
  let p = Sqlgen.Scan.with_records Sqlgen.Scan.base 1_000 in
  let db = Gg_storage.Db.create () in
  Sqlgen.Scan.load p db;
  Alcotest.(check int) "rows loaded" 1_000
    (Gg_storage.Table.live_count
       (Gg_storage.Db.get_table_exn db Sqlgen.Scan.table_name));
  let g = Sqlgen.Scan.create p ~seed:1 in
  let labels = Hashtbl.create 4 in
  for _ = 1 to 200 do
    let label, stmts = Sqlgen.Scan.next_stmts g in
    Hashtbl.replace labels label ();
    Alcotest.(check bool) "has statements" true (stmts <> []);
    List.iter
      (fun (sql, params) ->
        Alcotest.(check bool) "targets events" true
          (let open String in
           length sql > 0 && Array.length params > 0);
        ignore sql)
      stmts
  done;
  List.iter
    (fun l -> Alcotest.(check bool) (l ^ " generated") true (Hashtbl.mem labels l))
    [ "SCAN-range"; "SCAN-agg"; "SCAN-upd" ]

let test_secidx_stmt_shapes () =
  let p = Sqlgen.Secidx.with_records Sqlgen.Secidx.base 1_000 in
  let db = Gg_storage.Db.create () in
  Sqlgen.Secidx.load p db;
  let t = Gg_storage.Db.get_table_exn db Sqlgen.Secidx.table_name in
  Alcotest.(check int) "rows loaded" 1_000 (Gg_storage.Table.live_count t);
  let g = Sqlgen.Secidx.create p ~seed:1 in
  let labels = Hashtbl.create 4 in
  for _ = 1 to 200 do
    let label, stmts = Sqlgen.Secidx.next_stmts g in
    Hashtbl.replace labels label ();
    Alcotest.(check bool) "has statements" true (stmts <> [])
  done;
  List.iter
    (fun l -> Alcotest.(check bool) (l ^ " generated") true (Hashtbl.mem labels l))
    [ "SECIDX-read"; "SECIDX-flip"; "SECIDX-upd" ]

let test_sqlgen_determinism () =
  let p = Sqlgen.Scan.with_records Sqlgen.Scan.base 1_000 in
  let a = Sqlgen.Scan.create p ~seed:5 and b = Sqlgen.Scan.create p ~seed:5 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "same stream" true
      (Sqlgen.Scan.next_stmts a = Sqlgen.Scan.next_stmts b)
  done

(* --- Arrival curves --- *)

let test_arrival_shapes () =
  let c = Arrival.make ~shape:Arrival.Constant ~peak_tps:100.0 in
  Alcotest.(check (float 1e-9)) "constant" 100.0 (Arrival.rate_at c ~at_us:123_456);
  let d =
    Arrival.make
      ~shape:(Arrival.Diurnal { period_ms = 1_000; trough = 0.2 })
      ~peak_tps:100.0
  in
  Alcotest.(check (float 1e-6)) "diurnal trough at t=0" 20.0
    (Arrival.rate_at d ~at_us:0);
  Alcotest.(check (float 1e-6)) "diurnal peak mid-period" 100.0
    (Arrival.rate_at d ~at_us:500_000);
  let f =
    Arrival.make
      ~shape:(Arrival.Flash { at_ms = 100; dur_ms = 50; mult = 4.0 })
      ~peak_tps:100.0
  in
  Alcotest.(check (float 1e-6)) "flash baseline" 25.0 (Arrival.rate_at f ~at_us:0);
  Alcotest.(check (float 1e-6)) "flash spike" 100.0
    (Arrival.rate_at f ~at_us:120_000);
  Alcotest.(check (float 1e-6)) "flash over" 25.0
    (Arrival.rate_at f ~at_us:200_000)

let test_arrival_string_roundtrip () =
  List.iter
    (fun a ->
      match Arrival.of_string (Arrival.to_string a) with
      | Error e -> Alcotest.fail e
      | Ok a' ->
        Alcotest.(check string) "roundtrip" (Arrival.to_string a)
          (Arrival.to_string a');
        Alcotest.(check (float 1e-6)) "same rate" (Arrival.rate_at a ~at_us:777_000)
          (Arrival.rate_at a' ~at_us:777_000))
    [
      Arrival.make ~shape:Arrival.Constant ~peak_tps:250.0;
      Arrival.make
        ~shape:(Arrival.Diurnal { period_ms = 60_000; trough = 0.25 })
        ~peak_tps:400.0;
      Arrival.make
        ~shape:(Arrival.Flash { at_ms = 500; dur_ms = 200; mult = 5.0 })
        ~peak_tps:1_000.0;
    ];
  (match Arrival.of_string "nonsense" with
  | Ok _ -> Alcotest.fail "nonsense accepted"
  | Error _ -> ());
  match Arrival.of_string "diurnal:0:0.5@100" with
  | Ok _ -> Alcotest.fail "zero period accepted"
  | Error _ -> ()

let test_arrival_implied_users () =
  (* Little's law: 500 tps with 10 s think time stands for 5000 users. *)
  let a = Arrival.make ~shape:Arrival.Constant ~peak_tps:500.0 in
  Alcotest.(check int) "5000 users" 5_000 (Arrival.implied_users a ~think_ms:10_000);
  let big = Arrival.make ~shape:Arrival.Constant ~peak_tps:200_000.0 in
  Alcotest.(check int) "12M users" 12_000_000
    (Arrival.implied_users big ~think_ms:60_000)

let () =
  Alcotest.run "gg_workload"
    [
      ( "op",
        [
          Alcotest.test_case "classification" `Quick test_op_classification;
          Alcotest.test_case "write size" `Quick test_op_write_size;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "profiles" `Quick test_ycsb_profiles;
          Alcotest.test_case "load" `Quick test_ycsb_load;
          Alcotest.test_case "txn shape" `Quick test_ycsb_txn_shape;
          Alcotest.test_case "read/write mix" `Quick test_ycsb_mix;
          Alcotest.test_case "read-only profile" `Quick test_ycsb_read_only_profile;
          Alcotest.test_case "determinism" `Quick test_ycsb_determinism;
          Alcotest.test_case "long txns" `Quick test_ycsb_long_txns;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "load" `Quick test_tpcc_load;
          Alcotest.test_case "new-order shape" `Quick test_tpcc_new_order_shape;
          Alcotest.test_case "payment shape" `Quick test_tpcc_payment_shape;
          Alcotest.test_case "order id uniqueness" `Quick test_tpcc_order_ids_unique_across_nodes;
          Alcotest.test_case "mix" `Quick test_tpcc_mix;
          Alcotest.test_case "parse cost" `Quick test_tpcc_parse_cost_from_config;
          Alcotest.test_case "full mix labels" `Quick test_tpcc_full_mix_labels;
          Alcotest.test_case "order-status read-only" `Quick test_tpcc_order_status_read_only;
          Alcotest.test_case "delivery consumes orders" `Quick test_tpcc_delivery_consumes_orders;
          Alcotest.test_case "stock-level read-only" `Quick test_tpcc_stock_level_read_only;
        ] );
      ( "hotkey",
        [
          Alcotest.test_case "load + shape" `Quick test_hotkey_load_and_shape;
          Alcotest.test_case "hot concentration" `Quick test_hotkey_concentration;
          Alcotest.test_case "rotation + determinism" `Quick
            test_hotkey_rotation_and_determinism;
        ] );
      ( "social",
        [
          Alcotest.test_case "post shape" `Quick test_social_post_shape;
          Alcotest.test_case "follower graph deterministic" `Quick
            test_social_follower_graph_deterministic;
          Alcotest.test_case "determinism" `Quick test_social_determinism;
        ] );
      ( "sqlgen",
        [
          Alcotest.test_case "scan statements" `Quick test_scan_stmt_shapes;
          Alcotest.test_case "secidx statements" `Quick test_secidx_stmt_shapes;
          Alcotest.test_case "determinism" `Quick test_sqlgen_determinism;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "shapes" `Quick test_arrival_shapes;
          Alcotest.test_case "string roundtrip" `Quick test_arrival_string_roundtrip;
          Alcotest.test_case "implied users" `Quick test_arrival_implied_users;
        ] );
    ]
