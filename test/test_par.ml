(* The Domain-pool runner: ordering, error propagation, and the
   end-to-end determinism contract — check sweeps, experiment tables and
   bench counts must be byte-identical at every pool width. *)

module Pool = Gg_par.Pool

(* Compute-bound busy work so parallel tasks genuinely overlap and
   finish out of submission order (task 0 is the slowest). *)
let busy n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 31) + i
  done;
  !acc

let test_run_ordering () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let n = 32 in
  let tasks =
    List.init n (fun i ->
        fun () ->
         ignore (busy ((n - i) * 50_000));
         i)
  in
  Alcotest.(check (list int)) "submission order" (List.init n Fun.id)
    (Pool.run pool tasks)

let test_iter_ordered () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let n = 24 in
  let order = ref [] in
  let tasks =
    List.init n (fun i ->
        fun () ->
         ignore (busy ((if i mod 3 = 0 then 40 else 1) * 20_000));
         i * i)
  in
  Pool.iter_ordered pool tasks ~f:(fun i v ->
      Alcotest.(check int) "value matches index" (i * i) v;
      order := i :: !order);
  Alcotest.(check (list int)) "callback order" (List.init n Fun.id)
    (List.rev !order)

let test_seq_is_interleaved () =
  (* jobs=1 must interleave task and callback exactly like the legacy
     sequential loop: t0 f0 t1 f1 ... *)
  let log = ref [] in
  let tasks =
    List.init 4 (fun i ->
        fun () ->
         log := `T i :: !log;
         i)
  in
  Pool.iter_ordered Pool.seq tasks ~f:(fun i _ -> log := `F i :: !log);
  let expected =
    List.concat_map (fun i -> [ `T i; `F i ]) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "t/f interleaving" true (List.rev !log = expected)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let tasks =
        List.init 8 (fun i ->
            fun () -> if i = 3 || i = 5 then raise (Boom i) else i)
      in
      match Pool.run pool tasks with
      | _ -> Alcotest.fail "expected exception"
      | exception Boom i ->
        (* lowest-index failure wins at any width *)
        Alcotest.(check int) "first raising task" 3 i)
    [ 1; 4 ]

let test_map_and_auto_jobs () =
  Alcotest.(check bool) "auto jobs >= 1" true (Pool.default_jobs () >= 1);
  Pool.with_pool ~jobs:0 @@ fun pool ->
  Alcotest.(check bool) "auto pool width" true (Pool.jobs pool >= 1);
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_more_tasks_than_jobs () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let n = 100 in
  Alcotest.(check int) "all tasks ran" (n * (n - 1) / 2)
    (List.fold_left ( + ) 0 (Pool.run pool (List.init n (fun i () -> i))))

(* --- determinism contracts: parallel output == sequential output --- *)

let check_log ~pool seeds =
  let buf = Buffer.create 4096 in
  let report =
    Gg_check.Checker.check
      ~log:(fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      ~fast:true ~pool ~seeds ()
  in
  Buffer.add_string buf
    (Printf.sprintf "%d/%d/%d" report.Gg_check.Checker.seeds_run
       report.Gg_check.Checker.total_commits
       (List.length report.Gg_check.Checker.failures));
  Buffer.contents buf

let test_check_byte_identical () =
  let seeds = 4 in
  let sequential = check_log ~pool:Pool.seq seeds in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool -> check_log ~pool seeds)
  in
  Alcotest.(check string) "check sweep log" sequential parallel

let tiny_setting =
  {
    Gg_harness.Experiments.ycsb_records = 500;
    ycsb_connections = 8;
    tpcc_cfg = { Gg_workload.Tpcc.small with Gg_workload.Tpcc.warehouses = 2 };
    tpcc_connections = 4;
    warmup_ms = 100;
    measure_ms = 200;
  }

let experiment_tables ~pool name =
  match
    Gg_harness.Experiments.tables ~pool ~setting:tiny_setting ~fast:true name
  with
  | Some ts -> String.concat "\n" ts
  | None -> Alcotest.fail ("unknown experiment " ^ name)

let test_experiments_byte_identical () =
  (* fig8 (epoch grid) and fig9 (isolation grid) cover the two fan-out
     shapes: per-workload sweeps and fixed-point grids. *)
  List.iter
    (fun name ->
      let sequential = experiment_tables ~pool:Pool.seq name in
      let parallel =
        Pool.with_pool ~jobs:4 (fun pool -> experiment_tables ~pool name)
      in
      Alcotest.(check string) (name ^ " tables") sequential parallel)
    [ "fig8"; "fig9" ]

let test_fig_skew_byte_identical () =
  (* The merge-granularity grid fans its workload x level cells across
     the pool; tables (and the BENCH_skew.json it rewrites, twice with
     identical content) must not depend on the width. *)
  let sequential = experiment_tables ~pool:Pool.seq "fig_skew" in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool -> experiment_tables ~pool "fig_skew")
  in
  Alcotest.(check string) "fig_skew tables" sequential parallel

let test_wallclock_counts_identical () =
  let module W = Gg_harness.Wallclock in
  let s = List.hd (W.scenarios ~fast:true) in
  let seq_counts = s.W.run ~tracing:false () in
  let par_counts =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.run pool
          (List.init 2 (fun _ () -> s.W.run ~tracing:false ())))
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) "bench counts identical across domains" true
        (c = seq_counts))
    par_counts;
  Alcotest.(check bool) "scenario did real work" true
    (seq_counts.W.events > 0 && seq_counts.W.committed > 0)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "run preserves submission order" `Quick
            test_run_ordering;
          Alcotest.test_case "iter_ordered streams in order" `Quick
            test_iter_ordered;
          Alcotest.test_case "jobs=1 interleaves like the legacy loop" `Quick
            test_seq_is_interleaved;
          Alcotest.test_case "first exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "map / auto jobs" `Quick test_map_and_auto_jobs;
          Alcotest.test_case "more tasks than workers" `Quick
            test_more_tasks_than_jobs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "check sweep byte-identical -j1 vs -j4" `Slow
            test_check_byte_identical;
          Alcotest.test_case "experiment tables byte-identical -j1 vs -j4"
            `Slow test_experiments_byte_identical;
          Alcotest.test_case "fig_skew tables byte-identical -j1 vs -j4"
            `Slow test_fig_skew_byte_identical;
          Alcotest.test_case "bench counts identical across domains" `Slow
            test_wallclock_counts_identical;
        ] );
    ]
