(* Determinism-hazard lint over lib/ sources.

   Everything under lib/ runs inside seeded simulations whose outputs
   must be bit-reproducible (chaos reproducers, figure tables, bench
   counts) — and, since the Domain pool, possibly on several domains at
   once. Two classes of hazard are banned at the source level:

   - ambient nondeterminism: the stdlib [Random] (shared global state;
     use the per-instance [Gg_util.Rng]), and wall clocks
     ([Unix.gettimeofday], [Unix.time], [Sys.time] — sim time comes
     from [Gg_sim.Sim]; wall timing belongs to bench/ and bin/);
   - module-level mutable state ([ref]/[Hashtbl.create]/... at
     structure level): shared across concurrent pool tasks, it breaks
     run-to-run isolation. Per-domain state must go through
     [Gg_par.Pool.Local_counter] ([Writeset.Batch]'s encode counter);
   - raw [Domain.spawn]/[Domain.DLS] (any [Domain.] use) outside
     lib/par: all parallelism must flow through the deterministic pool
     and shard helpers, whose submission/shard-order reduction is what
     keeps every output byte-identical at any width. *)

let src_root () =
  (* dune runs tests from _build/default/test with sources copied in *)
  List.find_opt Sys.file_exists [ "../lib"; "lib"; "../../lib" ]

let rec ml_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun name ->
         let path = Filename.concat dir name in
         if Sys.is_directory path then ml_files path
         else if Filename.check_suffix name ".ml" then [ path ]
         else [])
  |> List.sort compare

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn > 0 && at 0

let ambient_banned =
  [ "Random."; "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

(* A structure-level mutable binding: `let x = ref ...` (any
   indentation — nested modules indent) with no ` in ` on the line.
   Local bindings carry their ` in` on the same line throughout this
   codebase; a fresh violation that wraps can be caught at review, the
   lint is a tripwire, not a proof. *)
let mutable_makers =
  [ "ref "; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Atomic.make";
    "Array.make" ]

let is_module_level_mutable line =
  let t = String.trim line in
  match String.index_opt t '=' with
  | Some eq when String.length t > 4 && String.sub t 0 4 = "let " ->
    let lhs = String.trim (String.sub t 4 (eq - 4)) in
    let rhs = String.trim (String.sub t (eq + 1) (String.length t - eq - 1)) in
    (* value bindings only: `let x =` or `let x : ty =` — a lhs with
       parameters or patterns defines a function, which allocates fresh
       state per call and is fine *)
    let is_value_binding =
      match String.split_on_char ' ' lhs with
      | [ _name ] -> true
      | _name :: ":" :: _ -> true
      | _ -> false
    in
    is_value_binding
    && List.exists
         (fun m ->
           String.length rhs >= String.length m
           && String.sub rhs 0 (String.length m) = m)
         mutable_makers
    && not (contains (" " ^ t ^ " ") " in ")
  | _ -> false

(* lib/par is the one place allowed to talk to [Domain] directly; its
   path is detected from the source tree layout. *)
let in_par_lib path = contains path "/par/"

let lint_file path =
  let allow_domain = in_par_lib path in
  List.concat
    (List.mapi
       (fun i line ->
         let where what =
           Printf.sprintf "%s:%d: %s: %s" path (i + 1) what (String.trim line)
         in
         let ambient =
           List.filter_map
             (fun b ->
               if contains line b then Some (where ("ambient `" ^ b ^ "`"))
               else None)
             ambient_banned
         in
         let domain =
           if (not allow_domain) && contains line "Domain." then
             [ where "raw `Domain.` outside lib/par" ]
           else []
         in
         let mutable_ =
           if is_module_level_mutable line then
             [ where "module-level mutable state" ]
           else []
         in
         ambient @ domain @ mutable_)
       (read_lines path))

let test_no_hazards () =
  match src_root () with
  | None -> Alcotest.fail "cannot locate lib/ sources from test cwd"
  | Some root ->
    let files = ml_files root in
    Alcotest.(check bool) "found lib sources" true (List.length files > 10);
    let findings = List.concat_map lint_file files in
    if findings <> [] then
      Alcotest.fail
        ("determinism hazards in lib/:\n" ^ String.concat "\n" findings)

let test_dls_is_sanctioned () =
  (* The one piece of cross-call state lib/ keeps — the bench encode
     counter — must stay domain-local, and reach Domain.DLS only
     through the pool's Local_counter (the `Domain.` ban above already
     guarantees the "only through" half for all of lib/). *)
  match src_root () with
  | None -> Alcotest.fail "cannot locate lib/ sources from test cwd"
  | Some root ->
    let ws = read_lines (Filename.concat root "crdt/writeset.ml") in
    Alcotest.(check bool) "encode counter uses Pool.Local_counter" true
      (List.exists (fun l -> contains l "Local_counter") ws);
    let pool = read_lines (Filename.concat root "par/pool.ml") in
    Alcotest.(check bool) "Local_counter is DLS-backed" true
      (List.exists (fun l -> contains l "Domain.DLS.new_key") pool)

let test_engine_registry_is_canonical () =
  (* Engine names resolve through exactly one table —
     lib/engines/registry.ml — whose lookup fails loudly
     ([invalid_arg]) with the full known list. A second name table
     silently drifting out of sync is the hazard; `"geog-s"` /
     `"geog-a"` string literals only make sense as entries of such a
     table, so their appearance anywhere else in lib/ or bin/ is a
     duplicate (doc strings spell the names unquoted). *)
  match src_root () with
  | None -> Alcotest.fail "cannot locate lib/ sources from test cwd"
  | Some root ->
    let registry = Filename.concat root "engines/registry.ml" in
    let reg = read_lines registry in
    Alcotest.(check bool) "registry declares the entries list" true
      (List.exists (fun l -> contains l "let entries") reg);
    Alcotest.(check bool) "unknown names fail with the known list" true
      (List.exists (fun l -> contains l "invalid_arg") reg);
    let bin_root =
      List.find_opt Sys.file_exists [ "../bin"; "bin"; "../../bin" ]
    in
    let files =
      ml_files root
      @ (match bin_root with Some b -> ml_files b | None -> [])
    in
    Alcotest.(check bool) "found bin sources too" true (bin_root <> None);
    let dupes =
      List.concat_map
        (fun path ->
          if contains path "engines/registry.ml" then []
          else
            List.concat
              (List.mapi
                 (fun i line ->
                   if contains line "\"geog-s\"" || contains line "\"geog-a\""
                   then
                     [ Printf.sprintf "%s:%d: %s" path (i + 1)
                         (String.trim line) ]
                   else [])
                 (read_lines path)))
        files
    in
    if dupes <> [] then
      Alcotest.fail
        ("engine-name tables outside the registry:\n"
        ^ String.concat "\n" dupes)

let () =
  Alcotest.run "lint"
    [
      ( "determinism",
        [
          Alcotest.test_case "no ambient nondeterminism or module globals"
            `Quick test_no_hazards;
          Alcotest.test_case "encode counter is domain-local" `Quick
            test_dls_is_sanctioned;
          Alcotest.test_case "engine registry is the one name table" `Quick
            test_engine_registry_is_canonical;
        ] );
    ]
