(* Tests for the chaos checker itself: scenario generation is a pure
   function of the seed, clean seeded runs pass every invariant oracle,
   and a deliberately corrupted replica is caught and shrunk to a
   one-line reproducer (the canary proving the oracles have teeth). *)

module Scenario = Gg_check.Scenario
module Oracle = Gg_check.Oracle
module Checker = Gg_check.Checker
module Params = Geogauss.Params

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- scenario generation --- *)

let test_generate_deterministic () =
  for seed = 0 to 20 do
    let a = Scenario.generate ~fast:true seed in
    let b = Scenario.generate ~fast:true seed in
    Alcotest.(check string) "same seed, same scenario" (Scenario.to_string a)
      (Scenario.to_string b)
  done

let test_generate_explores_space () =
  let lines =
    List.init 25 (fun s -> Scenario.to_string (Scenario.generate ~fast:true s))
  in
  Alcotest.(check int) "all distinct" 25
    (List.length (List.sort_uniq compare lines))

let test_generate_pins_respected () =
  for seed = 0 to 10 do
    let s =
      Scenario.generate ~variant:Params.Sync_exec ~isolation:Params.SI
        ~ft:Params.Ft_raft ~fast:true seed
    in
    Alcotest.(check bool) "variant pinned" true
      (s.Scenario.variant = Params.Sync_exec);
    Alcotest.(check bool) "isolation pinned" true
      (s.Scenario.isolation = Params.SI);
    Alcotest.(check bool) "ft pinned" true (s.Scenario.ft = Params.Ft_raft)
  done

let test_async_scenarios_restricted () =
  (* GeoG-A offers eventual consistency only; the generator must not
     hand it faults it makes no guarantees about. *)
  for seed = 0 to 30 do
    let s = Scenario.generate ~variant:Params.Async_merge ~fast:true seed in
    Alcotest.(check (float 0.0)) "no loss" 0.0 s.Scenario.loss;
    Alcotest.(check bool) "no scheduled faults" true (s.Scenario.faults = []);
    Alcotest.(check bool) "no ft machinery" true (s.Scenario.ft = Params.Ft_none)
  done

(* --- clean runs --- *)

let test_smoke_seeds_pass () =
  let report = Checker.check ~fast:true ~base:0 ~seeds:2 () in
  Alcotest.(check int) "seeds run" 2 report.Checker.seeds_run;
  Alcotest.(check int) "no violations" 0 (List.length report.Checker.failures);
  Alcotest.(check bool) "commits happened" true (report.Checker.total_commits > 0)

let test_run_deterministic () =
  let s = Scenario.generate ~fast:true 3 in
  let o1 = Checker.run s and o2 = Checker.run s in
  Alcotest.(check int) "commits equal" o1.Checker.commits o2.Checker.commits;
  Alcotest.(check int) "aborts equal" o1.Checker.aborts o2.Checker.aborts;
  Alcotest.(check (list int)) "final lsns equal" o1.Checker.lsns o2.Checker.lsns;
  Alcotest.(check int) "oracle commit logs equal" o1.Checker.oracle_commits
    o2.Checker.oracle_commits

(* --- partial replication (DESIGN.md §12) --- *)

let test_partitioned_seeds_pass () =
  (* The group-scoped oracles must hold under both partition maps. *)
  List.iter
    (fun mode ->
      let report =
        Checker.check ~fast:true ~partitioning:mode ~base:0 ~seeds:3 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "no violations under %s"
           (Params.partitioning_to_string mode))
        0
        (List.length report.Checker.failures);
      Alcotest.(check bool) "commits happened" true
        (report.Checker.total_commits > 0))
    [ Params.P_region; Params.P_hash 2 ]

let test_with_partitioning_scrubs () =
  (* Crash/recover faults and GeoG-A are incompatible with partial
     replication; the pin must scrub them without touching the rest. *)
  for seed = 0 to 20 do
    let s = Scenario.generate ~fast:true seed in
    let s' = Scenario.with_partitioning s (Params.P_hash 2) in
    Alcotest.(check bool) "mode pinned" true
      (s'.Scenario.partitioning = Params.P_hash 2);
    Alcotest.(check bool) "engine is epoch-based" true
      (s'.Scenario.variant <> Params.Async_merge);
    Alcotest.(check bool) "no crash/recover faults" true
      (List.for_all
         (fun e ->
           match e.Gg_sim.Fault.action with
           | Gg_sim.Fault.Crash _ | Gg_sim.Fault.Recover _ -> false
           | _ -> true)
         s'.Scenario.faults);
    (* The pin must be the identity when partitioning stays off. *)
    Alcotest.(check string) "P_none is the identity" (Scenario.to_string s)
      (Scenario.to_string (Scenario.with_partitioning s Params.P_none))
  done

let test_partitioned_sweep_pool_parity () =
  (* The partitioned check sweep streams results in seed order, so the
     log is byte-identical at any pool width. *)
  let capture pool =
    let buf = Buffer.create 256 in
    let r =
      Checker.check
        ~log:(fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        ~fast:true ~partitioning:(Params.P_hash 2) ~pool ~base:0 ~seeds:3 ()
    in
    (Buffer.contents buf, r)
  in
  let log1, r1 = capture Gg_par.Pool.seq in
  let log4, r4 = Gg_par.Pool.with_pool ~jobs:4 (fun pool -> capture pool) in
  Alcotest.(check string) "logs byte-equal at -j1 vs -j4" log1 log4;
  Alcotest.(check int) "commit totals equal" r1.Checker.total_commits
    r4.Checker.total_commits;
  Alcotest.(check int) "failure counts equal"
    (List.length r1.Checker.failures)
    (List.length r4.Checker.failures)

(* --- column-level merge (DESIGN.md §13) --- *)

let test_workload_space_covers_new_generators () =
  (* The seeded generator must actually draw the new workload shapes
     (and the open-loop arrival curves) somewhere in a modest seed
     range, or the chaos sweep never exercises them. *)
  let seen = Hashtbl.create 8 in
  let arrivals = ref 0 in
  for seed = 0 to 99 do
    let s = Scenario.generate ~fast:true seed in
    Hashtbl.replace seen s.Scenario.workload ();
    if s.Scenario.arrival <> None then incr arrivals
  done;
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Scenario.workload_to_string w ^ " drawn")
        true (Hashtbl.mem seen w))
    [
      Scenario.Ycsb_mc; Scenario.Ycsb_hc; Scenario.Tpcc; Scenario.Hotkey;
      Scenario.Social; Scenario.Scan; Scenario.Secidx;
    ];
  Alcotest.(check bool)
    (Printf.sprintf "open-loop scenarios drawn (%d/100)" !arrivals)
    true (!arrivals > 10)

let test_with_merge_level_pin () =
  for seed = 0 to 20 do
    let s = Scenario.generate ~fast:true seed in
    let s' = Scenario.with_merge_level s Params.Column in
    Alcotest.(check bool) "level pinned" true
      (s'.Scenario.merge_level = Params.Column);
    Alcotest.(check bool) "engine is epoch-based" true
      (s'.Scenario.variant <> Params.Async_merge);
    (* The pin must be the identity at the default level. *)
    Alcotest.(check string) "Row is the identity" (Scenario.to_string s)
      (Scenario.to_string (Scenario.with_merge_level s Params.Row))
  done

let test_column_seeds_pass () =
  (* The same drawn seeds, re-run with the column lattice active, must
     hold all five oracles. *)
  let report =
    Checker.check ~fast:true ~merge_level:Params.Column ~base:0 ~seeds:3 ()
  in
  Alcotest.(check int) "no violations at column level" 0
    (List.length report.Checker.failures);
  Alcotest.(check bool) "commits happened" true
    (report.Checker.total_commits > 0)

(* --- corrupted batch frames --- *)

let test_corrupt_batches_recovered () =
  (* Truncated batch frames must be dropped at decode and recovered by
     the stall-repair path: same oracles, no violations, and the run
     still commits. *)
  let report =
    Checker.check ~fast:true ~corrupt_frac:0.05 ~base:0 ~seeds:3 ()
  in
  Alcotest.(check int) "no violations with corrupt frames" 0
    (List.length report.Checker.failures);
  Alcotest.(check bool) "commits happened" true
    (report.Checker.total_commits > 0)

(* --- the corruption canary --- *)

let canary_scenario () =
  {
    (Scenario.generate ~variant:Params.Optimistic ~fast:true 0) with
    Scenario.faults = [];
    corruption = Some (1, 400);
  }

let test_canary_detected_and_shrunk () =
  let s = canary_scenario () in
  let o = Checker.run s in
  match o.Checker.violation with
  | None -> Alcotest.fail "silent replica corruption must be detected"
  | Some v ->
    Alcotest.(check bool) "caught by the convergence oracle" true
      (v.Oracle.invariant = Oracle.Convergence);
    let f = Checker.shrink_and_report s v in
    Alcotest.(check bool) "shrinker made progress" true
      (f.Checker.shrink_runs > 0);
    Alcotest.(check bool) "minimized run no longer than original" true
      (f.Checker.minimized.Scenario.duration_ms <= s.Scenario.duration_ms);
    let line = Checker.reproducer f.Checker.minimized f.Checker.min_violation in
    Alcotest.(check bool) "reproducer names the corruption" true
      (contains ~sub:"corrupt=1@400ms" line);
    Alcotest.(check bool) "reproducer names the invariant" true
      (contains ~sub:"invariant=convergence" line);
    (* The reproducer line must actually reproduce. *)
    (match (Checker.run f.Checker.minimized).Checker.violation with
    | Some v' ->
      Alcotest.(check bool) "minimized scenario still fails" true
        (v'.Oracle.invariant = Oracle.Convergence)
    | None -> Alcotest.fail "minimized scenario must still fail")

let () =
  Alcotest.run "gg_check"
    [
      ( "scenario",
        [
          Alcotest.test_case "generation deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "seeds explore the space" `Quick test_generate_explores_space;
          Alcotest.test_case "dimension pins respected" `Quick test_generate_pins_respected;
          Alcotest.test_case "GeoG-A restricted" `Quick test_async_scenarios_restricted;
        ] );
      ( "runs",
        [
          Alcotest.test_case "smoke seeds pass" `Slow test_smoke_seeds_pass;
          Alcotest.test_case "run deterministic" `Slow test_run_deterministic;
        ] );
      ( "partitioning",
        [
          Alcotest.test_case "pin scrubs incompatible draws" `Quick
            test_with_partitioning_scrubs;
          Alcotest.test_case "partitioned seeds pass" `Slow
            test_partitioned_seeds_pass;
          Alcotest.test_case "partitioned sweep -j1 vs -j4 byte-equal" `Slow
            test_partitioned_sweep_pool_parity;
        ] );
      ( "column merge",
        [
          Alcotest.test_case "generator draws new workloads and arrivals" `Quick
            test_workload_space_covers_new_generators;
          Alcotest.test_case "merge-level pin respected" `Quick
            test_with_merge_level_pin;
          Alcotest.test_case "column-level seeds pass" `Slow
            test_column_seeds_pass;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "corrupt frames recovered" `Slow
            test_corrupt_batches_recovered;
        ] );
      ( "canary",
        [
          Alcotest.test_case "corruption detected and shrunk" `Slow test_canary_detected_and_shrunk;
        ] );
    ]
