(* Tests for the discrete-event simulator: event queue ordering, engine
   semantics, CPU queueing, network delivery/loss/dup, topologies. *)

open Gg_sim

(* --- Event_queue --- *)

let test_eq_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5 "e5";
  Event_queue.push q ~time:1 "e1";
  Event_queue.push q ~time:3 "e3";
  let order = List.init 3 (fun _ -> Option.get (Event_queue.pop q)) in
  Alcotest.(check (list (pair int string)))
    "sorted" [ (1, "e1"); (3, "e3"); (5, "e5") ] order

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:7 i
  done;
  for i = 0 to 9 do
    match Event_queue.pop q with
    | Some (7, v) -> Alcotest.(check int) "fifo among equal times" i v
    | _ -> Alcotest.fail "bad pop"
  done

let test_eq_interleaved () =
  let q = Event_queue.create () in
  let rng = Gg_util.Rng.create 5 in
  let n = 2000 in
  for _ = 1 to n do
    Event_queue.push q ~time:(Gg_util.Rng.int rng 100) ()
  done;
  let last = ref (-1) in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.pop q with
    | None -> continue := false
    | Some (t, ()) ->
      Alcotest.(check bool) "monotone" true (t >= !last);
      last := t;
      incr count
  done;
  Alcotest.(check int) "all popped" n !count

let test_eq_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check bool) "pop none" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek none" true (Event_queue.peek_time q = None)

(* --- Sim --- *)

let test_sim_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~after:10 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~after:5 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~after:20 (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "final time" 20 (Sim.now sim)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let hits = ref [] in
  Sim.schedule sim ~after:10 (fun () ->
      hits := Sim.now sim :: !hits;
      Sim.schedule sim ~after:5 (fun () -> hits := Sim.now sim :: !hits));
  Sim.run sim;
  Alcotest.(check (list int)) "nested times" [ 10; 15 ] (List.rev !hits)

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~after:(i * 10) (fun () -> incr fired)
  done;
  Sim.run_until sim 50;
  Alcotest.(check int) "five fired" 5 !fired;
  Alcotest.(check int) "clock at limit" 50 (Sim.now sim);
  Sim.run_until sim 100;
  Alcotest.(check int) "all fired" 10 !fired

let test_sim_run_until_past_queue () =
  let sim = Sim.create () in
  Sim.schedule sim ~after:5 (fun () -> ());
  Sim.run_until sim 1_000;
  Alcotest.(check int) "clock advanced to limit" 1_000 (Sim.now sim)

let test_sim_negative_after () =
  let sim = Sim.create () in
  let t = ref (-1) in
  Sim.schedule sim ~after:(-5) (fun () -> t := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "clamped to now" 0 !t

let test_time_helpers () =
  Alcotest.(check int) "ms" 3_000 (Sim.ms 3);
  Alcotest.(check int) "sec" 2_000_000 (Sim.sec 2);
  Alcotest.(check (float 1e-9)) "to_ms" 1.5 (Sim.to_ms 1_500)

(* --- Cpu --- *)

let test_cpu_parallel_cores () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:2 in
  let finish = ref [] in
  for _ = 1 to 2 do
    Cpu.run cpu ~cost:100 (fun () -> finish := Sim.now sim :: !finish)
  done;
  Sim.run sim;
  (* Both ran in parallel on separate cores. *)
  Alcotest.(check (list int)) "both at t=100" [ 100; 100 ] !finish

let test_cpu_queueing () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  let finish = ref [] in
  for _ = 1 to 3 do
    Cpu.run cpu ~cost:100 (fun () -> finish := Sim.now sim :: !finish)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "serialized" [ 100; 200; 300 ] (List.rev !finish)

let test_cpu_zero_cost () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:1 in
  let ran = ref false in
  Cpu.run cpu ~cost:0 (fun () -> ran := true);
  Sim.run sim;
  Alcotest.(check bool) "ran without core" true !ran

let test_cpu_utilization () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~cores:2 in
  Cpu.run cpu ~cost:100 (fun () -> ());
  Sim.run_until sim 100;
  let u = Cpu.utilization cpu ~since:0 in
  Alcotest.(check (float 1e-9)) "half busy" 0.5 u

(* --- Net --- *)

let make_net ?(jitter_frac = 0.0) ?loss ?dup ?reorder ?bandwidth_bps topo =
  let sim = Sim.create () in
  let rng = Gg_util.Rng.create 99 in
  let net =
    Net.create sim ~rng ~topology:topo ~jitter_frac ?loss ?dup ?reorder
      ?bandwidth_bps ()
  in
  (sim, net)

let test_net_latency () =
  let topo = Topology.china3 () in
  let sim, net = make_net topo in
  let arrival = ref 0 in
  Net.send net ~src:0 ~dst:1 ~bytes:0 (fun () -> arrival := Sim.now sim);
  Sim.run sim;
  (* Zhangjiakou -> Chengdu one-way is 30 ms. *)
  Alcotest.(check int) "one-way delay" (Sim.ms 30) !arrival

let test_net_bandwidth_serialization () =
  let topo = Topology.china3 () in
  let sim, net = make_net ~bandwidth_bps:1_000_000 topo in
  (* 1 Mbps: 125_000 bytes take 1 s to serialize. *)
  let arrival = ref 0 in
  Net.send net ~src:0 ~dst:1 ~bytes:125_000 (fun () -> arrival := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "tx + latency" (Sim.sec 1 + Sim.ms 30) !arrival

let test_net_egress_queueing () =
  let topo = Topology.china3 () in
  let sim, net = make_net ~bandwidth_bps:1_000_000 topo in
  let arrivals = ref [] in
  for _ = 1 to 2 do
    Net.send net ~src:0 ~dst:1 ~bytes:125_000 (fun () ->
        arrivals := Sim.now sim :: !arrivals)
  done;
  Sim.run sim;
  (* Second message waits for the pipe: arrives 1 s after the first. *)
  Alcotest.(check (list int))
    "pipe serializes"
    [ Sim.sec 1 + Sim.ms 30; Sim.sec 2 + Sim.ms 30 ]
    (List.rev !arrivals)

let test_net_loss () =
  let topo = Topology.china3 () in
  let sim, net = make_net ~loss:1.0 topo in
  let got = ref false in
  Net.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> got := true);
  Sim.run sim;
  Alcotest.(check bool) "lost" false !got

let test_net_dup () =
  let topo = Topology.china3 () in
  let sim, net = make_net ~dup:1.0 topo in
  let got = ref 0 in
  Net.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr got);
  Sim.run sim;
  Alcotest.(check int) "delivered twice" 2 !got

let test_net_down_node () =
  let topo = Topology.china3 () in
  let sim, net = make_net topo in
  Net.set_down net 1 true;
  let got = ref false in
  Net.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> got := true);
  Sim.run sim;
  Alcotest.(check bool) "down node receives nothing" false !got;
  (* Down at delivery time also drops. *)
  Net.set_down net 1 false;
  Net.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> got := true);
  Sim.schedule sim ~after:1 (fun () -> Net.set_down net 1 true);
  Sim.run sim;
  Alcotest.(check bool) "crashed before delivery" false !got

let test_net_dup_down_interaction () =
  (* Regression: a message duplicated in flight must not leak into a
     node that crashes before delivery. Both copies re-check the down
     state at delivery time, so neither arrives. *)
  let topo = Topology.china3 () in
  let sim, net = make_net ~dup:1.0 topo in
  let got = ref 0 in
  Net.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr got);
  Sim.schedule sim ~after:1 (fun () -> Net.set_down net 1 true);
  Sim.run sim;
  Alcotest.(check int) "no copy reaches the downed node" 0 !got;
  (* And after recovery, fresh traffic (still dup=1.0) flows again. *)
  Net.set_down net 1 false;
  Net.send net ~src:0 ~dst:1 ~bytes:10 (fun () -> incr got);
  Sim.run sim;
  Alcotest.(check int) "recovered node gets both copies" 2 !got

let test_net_knob_mutation () =
  (* The chaos checker flips fault rates mid-run; setters must take
     effect immediately and clamp out-of-range values. *)
  let topo = Topology.china3 () in
  let sim, net = make_net topo in
  Net.set_loss net 1.0;
  Alcotest.(check (float 0.0)) "loss readable" 1.0 (Net.loss net);
  let got = ref 0 in
  Net.send net ~src:0 ~dst:1 ~bytes:1 (fun () -> incr got);
  Sim.run sim;
  Alcotest.(check int) "full loss drops" 0 !got;
  Net.set_loss net 0.0;
  Net.send net ~src:0 ~dst:1 ~bytes:1 (fun () -> incr got);
  Sim.run sim;
  Alcotest.(check int) "restored rate delivers" 1 !got;
  Net.set_dup net 2.0;
  Alcotest.(check (float 0.0)) "dup clamped to 1" 1.0 (Net.dup net);
  Net.set_reorder net (-0.5);
  Alcotest.(check (float 0.0)) "reorder clamped to 0" 0.0 (Net.reorder net);
  Net.set_jitter_frac net (-1.0);
  Alcotest.(check (float 0.0)) "jitter clamped to 0" 0.0 (Net.jitter_frac net)

let test_fault_schedule_install_and_format () =
  let topo = Topology.china3 () in
  let sim, net = make_net topo in
  let crashed = ref [] and recovered = ref [] in
  let sched =
    [
      { Fault.at_ms = 5; action = Fault.Loss 0.5 };
      { Fault.at_ms = 10; action = Fault.Crash 2 };
      { Fault.at_ms = 20; action = Fault.Recover 2 };
    ]
  in
  Fault.install net
    ~on_crash:(fun n -> crashed := n :: !crashed)
    ~on_recover:(fun n -> recovered := n :: !recovered)
    sched;
  Sim.run sim;
  Alcotest.(check (float 0.0)) "loss knob applied" 0.5 (Net.loss net);
  Alcotest.(check (list int)) "crash hook fired" [ 2 ] !crashed;
  Alcotest.(check (list int)) "recover hook fired" [ 2 ] !recovered;
  Alcotest.(check string) "reproducer format"
    "loss:0.500@5ms,crash:2@10ms,recover:2@20ms"
    (Fault.schedule_to_string sched);
  Alcotest.(check string) "empty schedule" "-" (Fault.schedule_to_string [])

let test_net_wan_accounting () =
  let topo = Topology.china3 () in
  let sim, net = make_net topo in
  Net.send net ~src:0 ~dst:1 ~bytes:100 (fun () -> ());
  Net.send net ~src:0 ~dst:0 ~bytes:100 (fun () -> ());
  Sim.run sim;
  Alcotest.(check int) "wan counts cross-region only" 100 (Net.wan_bytes net);
  Alcotest.(check int) "total counts all" 200 (Net.sent_bytes net);
  Alcotest.(check int) "per-src" 100 (Net.wan_bytes_from net 0);
  Net.reset_accounting net;
  Alcotest.(check int) "reset" 0 (Net.sent_bytes net)

let test_net_broadcast () =
  let topo = Topology.china3 () in
  let sim, net = make_net topo in
  let got = Array.make 3 false in
  Net.broadcast net ~src:0 ~bytes:10 (fun dst () -> got.(dst) <- true);
  Sim.run sim;
  Alcotest.(check (array bool)) "everyone but src" [| false; true; true |] got

(* --- Topology --- *)

let test_topology_china3 () =
  let t = Topology.china3 () in
  Alcotest.(check int) "3 nodes" 3 (Topology.n_nodes t);
  Alcotest.(check int) "symmetric" (Topology.latency t 0 1) (Topology.latency t 1 0);
  Alcotest.(check bool) "cross-region ~30ms" true (Topology.latency t 0 1 >= Sim.ms 20)

let test_topology_scaling () =
  let t = Topology.china 15 in
  Alcotest.(check int) "15 nodes" 15 (Topology.n_nodes t);
  (* Nodes 0 and 5 share region 0 (round robin over 5 regions). *)
  Alcotest.(check int) "same region cheap" 500 (Topology.latency t 0 5)

let test_topology_worldwide () =
  let t = Topology.worldwide 25 in
  Alcotest.(check int) "25 nodes" 25 (Topology.n_nodes t);
  Alcotest.(check bool) "long haul" true (Topology.latency t 0 2 >= Sim.ms 100)

let test_topology_invalid () =
  Alcotest.(check bool) "asymmetric rejected" true
    (try
       ignore
         (Topology.custom ~name:"bad" ~regions:[| "a"; "b" |]
            ~node_region:[| 0; 1 |]
            ~region_latency_us:[| [| 0; 1 |]; [| 2; 0 |] |]);
       false
     with Invalid_argument _ -> true)

let test_topology_nodes_in_region () =
  let t = Topology.china 7 in
  Alcotest.(check (list int)) "region 0 nodes" [ 0; 5 ] (Topology.nodes_in_region t 0);
  Alcotest.(check (list int)) "region 1 nodes" [ 1; 6 ] (Topology.nodes_in_region t 1)

let () =
  Alcotest.run "gg_sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_eq_interleaved;
          Alcotest.test_case "empty" `Quick test_eq_empty;
        ] );
      ( "sim",
        [
          Alcotest.test_case "schedule order" `Quick test_sim_schedule_order;
          Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "run_until past queue" `Quick test_sim_run_until_past_queue;
          Alcotest.test_case "negative after" `Quick test_sim_negative_after;
          Alcotest.test_case "time helpers" `Quick test_time_helpers;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "parallel cores" `Quick test_cpu_parallel_cores;
          Alcotest.test_case "queueing" `Quick test_cpu_queueing;
          Alcotest.test_case "zero cost" `Quick test_cpu_zero_cost;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
        ] );
      ( "net",
        [
          Alcotest.test_case "latency" `Quick test_net_latency;
          Alcotest.test_case "bandwidth" `Quick test_net_bandwidth_serialization;
          Alcotest.test_case "egress queueing" `Quick test_net_egress_queueing;
          Alcotest.test_case "loss" `Quick test_net_loss;
          Alcotest.test_case "duplication" `Quick test_net_dup;
          Alcotest.test_case "down node" `Quick test_net_down_node;
          Alcotest.test_case "dup x down" `Quick test_net_dup_down_interaction;
          Alcotest.test_case "runtime knob mutation" `Quick test_net_knob_mutation;
          Alcotest.test_case "fault schedule" `Quick test_fault_schedule_install_and_format;
          Alcotest.test_case "wan accounting" `Quick test_net_wan_accounting;
          Alcotest.test_case "broadcast" `Quick test_net_broadcast;
        ] );
      ( "topology",
        [
          Alcotest.test_case "china3" `Quick test_topology_china3;
          Alcotest.test_case "china scaling" `Quick test_topology_scaling;
          Alcotest.test_case "worldwide" `Quick test_topology_worldwide;
          Alcotest.test_case "invalid rejected" `Quick test_topology_invalid;
          Alcotest.test_case "nodes_in_region" `Quick test_topology_nodes_in_region;
        ] );
    ]
