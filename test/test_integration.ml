(* Cross-library integration tests: SQL traffic over multi-region
   clusters, randomized convergence properties (Theorem 3 under many
   seeds), insert/delete churn, worldwide topologies, and backup-store
   bookkeeping. *)

open Geogauss
module Value = Gg_storage.Value
module Topology = Gg_sim.Topology
module Op = Gg_workload.Op

let converged c =
  Cluster.quiesce c;
  match Cluster.digests c with
  | [] -> false
  | d :: rest -> List.for_all (String.equal d) rest

(* --- SQL transactions across regions --- *)

let bank_load n db =
  let t =
    Gg_storage.Db.create_table db ~name:"bank"
      ~columns:
        [
          { Gg_storage.Schema.name = "id"; ty = Gg_storage.Schema.TInt };
          { name = "balance"; ty = TInt };
        ]
      ~key:[ "id" ]
  in
  for i = 0 to n - 1 do
    Gg_storage.Table.load t [| Value.Int i; Value.Int 1_000 |]
  done

let test_sql_transfers_conserve_money () =
  let n = 50 in
  let c =
    Cluster.create ~topology:(Topology.china3 ()) ~load:(bank_load n) ()
  in
  let clients =
    List.init 3 (fun region ->
        let rng = Gg_util.Rng.create (3_000 + region) in
        let gen () =
          let a = Gg_util.Rng.int rng n in
          let b = (a + 1 + Gg_util.Rng.int rng (n - 1)) mod n in
          let amount = 1 + Gg_util.Rng.int rng 50 in
          Txn.Sql_txn
            {
              label = "transfer";
              stmts =
                [
                  ( "UPDATE bank SET balance = balance - ? WHERE id = ?",
                    [| Value.Int amount; Value.Int a |] );
                  ( "UPDATE bank SET balance = balance + ? WHERE id = ?",
                    [| Value.Int amount; Value.Int b |] );
                ];
            }
        in
        let cl = Client.create c ~home:region ~connections:6 ~gen in
        Client.start cl;
        cl)
  in
  Cluster.run_for_ms c 2_000;
  List.iter Client.stop clients;
  Alcotest.(check bool) "replicas converged" true (converged c);
  (* GeoGauss provides replica consistency, not serializability: under
     its weak isolation levels, read-modify-writes racing across epochs
     can lose updates, so the global total may drift — but every replica
     must hold the *same* total (the deterministic merge). *)
  let total_of node =
    let db = Node.db (Cluster.node c node) in
    let t = Gg_storage.Db.get_table_exn db "bank" in
    let total = ref 0 in
    Gg_storage.Table.scan t ~f:(fun e ->
        match e.Gg_storage.Table.data.(1) with
        | Value.Int b -> total := !total + b
        | _ -> ());
    !total
  in
  let t0 = total_of 0 in
  Alcotest.(check int) "node1 total equals node0" t0 (total_of 1);
  Alcotest.(check int) "node2 total equals node0" t0 (total_of 2);
  (* Each transfer is atomic (all-or-nothing validation), so totals can
     only move by whole transfer amounts; sanity-check the drift is a
     small fraction of the balance sheet. *)
  Alcotest.(check bool)
    (Printf.sprintf "drift %d stays bounded" (abs (t0 - (n * 1_000))))
    true
    (abs (t0 - (n * 1_000)) < n * 1_000 / 10)

let test_lost_update_anomaly_documented () =
  (* The weak-isolation anomaly the paper accepts by design: two
     read-modify-writes of the same row that land in *different* epochs
     both commit, and the later one overwrites — a lost update. The
     write-write merge only arbitrates within an epoch; RR/SI read
     validation runs before the remote epoch merges, so it cannot see
     the conflict either. This test pins that semantics down. *)
  let c = Cluster.create ~topology:(Topology.china3 ()) ~load:(bank_load 4) () in
  Cluster.run_for_ms c 50;
  let r1 = ref None and r2 = ref None in
  Cluster.submit c ~node:0
    (Txn.Op_txn
       (Op.make [ Op.Add { table = "bank"; key = [| Value.Int 1 |]; col = 1; delta = 100 } ]))
    (fun o -> r1 := Some o);
  (* Far enough apart to land in different epochs, close enough that the
     second reads the pre-merge balance. *)
  Cluster.run_for_ms c 12;
  Cluster.submit c ~node:1
    (Txn.Op_txn
       (Op.make [ Op.Add { table = "bank"; key = [| Value.Int 1 |]; col = 1; delta = 100 } ]))
    (fun o -> r2 := Some o);
  Cluster.run_for_ms c 1_000;
  (match (!r1, !r2) with
  | Some (Txn.Committed _), Some (Txn.Committed _) -> ()
  | _ -> Alcotest.fail "both cross-epoch writers commit under RC");
  Alcotest.(check bool) "converged" true (converged c);
  let db = Node.db (Cluster.node c 0) in
  let t = Gg_storage.Db.get_table_exn db "bank" in
  let e = Option.get (Gg_storage.Table.find_live t (Value.encode_key [| Value.Int 1 |])) in
  match e.Gg_storage.Table.data.(1) with
  | Value.Int b ->
    Alcotest.(check int) "second increment based on stale read wins" 1_100 b
  | _ -> Alcotest.fail "bad balance"

let test_sql_rmw_interleaved_with_ops () =
  (* SQL and op-level transactions share the same OCC path. *)
  let c = Cluster.create ~topology:(Topology.china3 ()) ~load:(bank_load 20) () in
  let done_sql = ref None and done_op = ref None in
  Cluster.run_for_ms c 50;
  Cluster.submit c ~node:0
    (Txn.Sql_txn
       {
         label = "sql";
         stmts = [ ("UPDATE bank SET balance = balance + 5 WHERE id = 3", [||]) ];
       })
    (fun o -> done_sql := Some o);
  Cluster.submit c ~node:1
    (Txn.Op_txn
       (Op.make [ Op.Add { table = "bank"; key = [| Value.Int 3 |]; col = 1; delta = 7 } ]))
    (fun o -> done_op := Some o);
  Cluster.run_for_ms c 1_000;
  let committed =
    List.length
      (List.filter
         (fun r -> match !r with Some (Txn.Committed _) -> true | _ -> false)
         [ done_sql; done_op ])
  in
  Alcotest.(check bool) "at least one committed" true (committed >= 1);
  Alcotest.(check bool) "replicas agree" true (converged c)

(* --- randomized convergence (Theorem 3 as a property) --- *)

let random_churn_workload ~rng ~n_rows () =
  let k () = [| Value.Int (Gg_util.Rng.int rng n_rows) |] in
  let fresh_key =
    (* churn keys live above the preloaded range *)
    [| Value.Int (n_rows + Gg_util.Rng.int rng (4 * n_rows)) |]
  in
  match Gg_util.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 ->
    Txn.Op_txn (Op.make [ Op.Read { table = "kv"; key = k () } ])
  | 4 | 5 ->
    Txn.Op_txn
      (Op.make
         [ Op.Write { table = "kv"; key = k (); data = [| Value.Int 0; Value.Int (Gg_util.Rng.int rng 100) |] } ])
  | 6 ->
    Txn.Op_txn
      (Op.make [ Op.Add { table = "kv"; key = k (); col = 1; delta = 1 } ])
  | 7 ->
    Txn.Op_txn
      (Op.make
         [ Op.Insert { table = "kv"; key = fresh_key; data = [| fresh_key.(0); Value.Int 1 |] } ])
  | 8 ->
    Txn.Op_txn (Op.make [ Op.Delete { table = "kv"; key = k () } ])
  | _ ->
    Txn.Op_txn
      (Op.make
         [
           Op.Read { table = "kv"; key = k () };
           Op.Add { table = "kv"; key = k (); col = 1; delta = 2 };
           Op.Write { table = "kv"; key = k (); data = [| Value.Int 0; Value.Int 9 |] };
         ])

(* Write ops need data matching the key column; patch key into data. *)
let fix_write_data req =
  match req with
  | Txn.Op_txn t ->
    let ops =
      Array.map
        (fun op ->
          match op with
          | Op.Write { table; key; data } ->
            let data = Array.copy data in
            data.(0) <- key.(0);
            Op.Write { table; key; data }
          | Op.Insert { table; key; data } ->
            let data = Array.copy data in
            data.(0) <- key.(0);
            Op.Insert { table; key; data }
          | o -> o)
        t.Op.ops
    in
    Txn.Op_txn { t with Op.ops }
  | r -> r

let kv2_load n db =
  let t =
    Gg_storage.Db.create_table db ~name:"kv"
      ~columns:
        [
          { Gg_storage.Schema.name = "k"; ty = Gg_storage.Schema.TInt };
          { name = "v"; ty = TInt };
        ]
      ~key:[ "k" ]
  in
  for i = 0 to n - 1 do
    Gg_storage.Table.load t [| Value.Int i; Value.Int 0 |]
  done

let churn_run ~seed ~iso ~dup ~reorder =
  let params =
    { Params.default with Params.seed; isolation = iso }
  in
  let c =
    Cluster.create ~params ~dup ~reorder ~topology:(Topology.china3 ())
      ~load:(kv2_load 60) ()
  in
  let clients =
    List.init 3 (fun region ->
        let rng = Gg_util.Rng.create (seed + (31 * region)) in
        let gen () = fix_write_data (random_churn_workload ~rng ~n_rows:60 ()) in
        let cl = Client.create c ~home:region ~connections:5 ~gen in
        Client.start cl;
        cl)
  in
  Cluster.run_for_ms c 1_500;
  List.iter Client.stop clients;
  converged c

let prop_churn_converges =
  QCheck.Test.make ~name:"random churn converges (RC)" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed -> churn_run ~seed ~iso:Params.RC ~dup:0.0 ~reorder:0.0)

let prop_churn_converges_rr_faulty_net =
  QCheck.Test.make ~name:"random churn converges (RR, dup+reorder)" ~count:4
    QCheck.(int_range 1 10_000)
    (fun seed -> churn_run ~seed ~iso:Params.RR ~dup:0.15 ~reorder:0.15)

let test_long_churn_with_gc_converges () =
  (* Run past the tombstone-GC horizon (epoch 200+) with deletes in the
     mix: the GC is part of the deterministic snapshot pipeline, so
     replicas must still agree byte-for-byte. *)
  let params = { Params.default with Params.seed = 4242 } in
  let c =
    Cluster.create ~params ~topology:(Topology.china3 ()) ~load:(kv2_load 40) ()
  in
  let clients =
    List.init 3 (fun region ->
        let rng = Gg_util.Rng.create (800 + region) in
        let gen () = fix_write_data (random_churn_workload ~rng ~n_rows:40 ()) in
        let cl = Client.create c ~home:region ~connections:4 ~gen in
        Client.start cl;
        cl)
  in
  Cluster.run_for_ms c 3_500;
  List.iter Client.stop clients;
  Alcotest.(check bool) "converged across GC" true (converged c)

(* --- determinism regression ---

   The whole stack (clients, network, nodes, merge) runs on one seeded
   event loop, so a scenario must reproduce run-to-run exactly: same
   commit/abort totals, same per-replica digests. This guards the
   hot-path work (cached key encodings, packed-int epoch tables, wire
   caching) against accidentally making outcomes depend on hash order
   or cache state. *)

let determinism_scenario ~merge_threads =
  let params =
    {
      Params.default with
      Params.seed = 4711;
      cost = { Params.default.Params.cost with merge_threads };
    }
  in
  let c =
    Cluster.create ~params ~dup:0.1 ~reorder:0.1
      ~topology:(Topology.china3 ()) ~load:(kv2_load 50) ()
  in
  let clients =
    List.init 3 (fun region ->
        let rng = Gg_util.Rng.create (9_000 + (17 * region)) in
        let gen () = fix_write_data (random_churn_workload ~rng ~n_rows:50 ()) in
        let cl = Client.create c ~home:region ~connections:5 ~gen in
        Client.start cl;
        cl)
  in
  Cluster.run_for_ms c 1_200;
  List.iter Client.stop clients;
  Cluster.quiesce c;
  ( Cluster.total_committed c,
    Cluster.total_aborted c,
    Cluster.digests c )

let test_seeded_run_is_repeatable () =
  let c1, a1, d1 = determinism_scenario ~merge_threads:8 in
  let c2, a2, d2 = determinism_scenario ~merge_threads:8 in
  Alcotest.(check int) "committed repeatable" c1 c2;
  Alcotest.(check int) "aborted repeatable" a1 a2;
  Alcotest.(check (list string)) "digests repeatable" d1 d2;
  (match d1 with
  | d :: rest -> Alcotest.(check bool) "replicas agree" true (List.for_all (String.equal d) rest)
  | [] -> Alcotest.fail "no digests")

let test_merge_threads_only_shift_timing () =
  (* merge_threads changes simulated merge duration (hence timing and
     possibly outcomes) but each configuration must stay internally
     deterministic and convergent. *)
  List.iter
    (fun merge_threads ->
      let c1, a1, d1 = determinism_scenario ~merge_threads in
      let c2, a2, d2 = determinism_scenario ~merge_threads in
      Alcotest.(check int)
        (Printf.sprintf "committed repeatable (threads=%d)" merge_threads)
        c1 c2;
      Alcotest.(check int)
        (Printf.sprintf "aborted repeatable (threads=%d)" merge_threads)
        a1 a2;
      Alcotest.(check (list string))
        (Printf.sprintf "digests repeatable (threads=%d)" merge_threads)
        d1 d2;
      match d1 with
      | d :: rest ->
        Alcotest.(check bool)
          (Printf.sprintf "replicas agree (threads=%d)" merge_threads)
          true
          (List.for_all (String.equal d) rest)
      | [] -> Alcotest.fail "no digests")
    [ 1; 4 ]

(* --- worldwide cluster --- *)

let test_worldwide_5dc_converges () =
  let params = { Params.default with Params.seed = 77 } in
  let c =
    Cluster.create ~params ~topology:(Topology.worldwide 5)
      ~load:(kv2_load 100) ()
  in
  let clients =
    List.init 5 (fun region ->
        let rng = Gg_util.Rng.create (500 + region) in
        let gen () =
          let k = [| Value.Int (Gg_util.Rng.int rng 100) |] in
          Txn.Op_txn (Op.make [ Op.Add { table = "kv"; key = k; col = 1; delta = 1 } ])
        in
        let cl = Client.create c ~home:region ~connections:4 ~gen in
        Client.start cl;
        cl)
  in
  Cluster.run_for_ms c 2_000;
  List.iter Client.stop clients;
  Alcotest.(check bool) "5-DC worldwide cluster converges" true (converged c);
  (* Write latency must span the worldwide RTTs (~110 ms one-way max). *)
  let lat =
    List.fold_left
      (fun acc cl -> Gg_util.Stats.Hist.merge acc (Client.latency cl))
      (Gg_util.Stats.Hist.create ()) clients
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.0f us >= 100 ms" (Gg_util.Stats.Hist.mean lat))
    true
    (Gg_util.Stats.Hist.mean lat >= 100_000.0)

(* --- backup store --- *)

let test_backup_records_every_epoch () =
  let c = Cluster.create ~topology:(Topology.china3 ()) ~load:(kv2_load 10) () in
  Cluster.run_for_ms c 500;
  let b = Cluster.backup c in
  List.iter
    (fun node ->
      let last = Backup.last_sealed b ~node in
      Alcotest.(check bool)
        (Printf.sprintf "node %d sealed through epoch %d" node last)
        true (last >= 40);
      (* contiguous coverage *)
      for e = 0 to last do
        Alcotest.(check bool) "batch present" true (Backup.get b ~node ~cen:e <> None)
      done)
    [ 0; 1; 2 ]

(* --- epoch-boundary edge --- *)

let test_commit_exactly_at_boundary () =
  (* A transaction whose commit point lands exactly on an epoch boundary
     must still commit exactly once. *)
  let c = Cluster.create ~topology:(Topology.china3 ()) ~load:(kv2_load 10) () in
  let results = ref [] in
  (* parse 0 + exec 150us * 1 op: submit at 9_850us; commit at 10_000. *)
  Cluster.run_until c 9_850;
  Cluster.submit c ~node:0
    (Txn.Op_txn
       (Op.make [ Op.Add { table = "kv"; key = [| Value.Int 1 |]; col = 1; delta = 1 } ]))
    (fun o -> results := o :: !results);
  Cluster.run_for_ms c 1_000;
  (match !results with
  | [ Txn.Committed _ ] -> ()
  | [ Txn.Aborted { reason; _ } ] ->
    Alcotest.failf "aborted: %s" (Txn.abort_reason_to_string reason)
  | [] -> Alcotest.fail "no callback"
  | _ -> Alcotest.fail "callback fired more than once");
  Alcotest.(check bool) "converged" true (converged c)

let () =
  Alcotest.run "integration"
    [
      ( "sql",
        [
          Alcotest.test_case "transfers: replicas agree" `Slow test_sql_transfers_conserve_money;
          Alcotest.test_case "lost-update anomaly (by design)" `Quick test_lost_update_anomaly_documented;
          Alcotest.test_case "sql + op interleaving" `Quick test_sql_rmw_interleaved_with_ops;
        ] );
      ( "convergence",
        [
          QCheck_alcotest.to_alcotest prop_churn_converges;
          QCheck_alcotest.to_alcotest prop_churn_converges_rr_faulty_net;
        ] );
      ( "gc",
        [ Alcotest.test_case "long churn + tombstone GC" `Slow test_long_churn_with_gc_converges ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded run repeatable" `Slow test_seeded_run_is_repeatable;
          Alcotest.test_case "merge_threads variants repeatable" `Slow test_merge_threads_only_shift_timing;
        ] );
      ( "worldwide",
        [ Alcotest.test_case "5-DC convergence" `Slow test_worldwide_5dc_converges ] );
      ( "backup",
        [ Alcotest.test_case "records every epoch" `Quick test_backup_records_every_epoch ] );
      ( "edges",
        [ Alcotest.test_case "commit at epoch boundary" `Quick test_commit_exactly_at_boundary ] );
    ]
