(* End-to-end tests of the GeoGauss core: epoch-based multi-master OCC
   over the simulated geo-distributed cluster. These validate the
   paper's Theorem 3 (replica consistency at epoch granularity), the
   isolation levels, the execution variants, CRDT robustness to
   duplication/reordering, and failure handling. *)

open Geogauss
module Value = Gg_storage.Value
module Topology = Gg_sim.Topology
module Op = Gg_workload.Op

let kv_load n db =
  let table =
    Gg_storage.Db.create_table db ~name:"kv"
      ~columns:
        [
          { Gg_storage.Schema.name = "k"; ty = Gg_storage.Schema.TInt };
          { name = "v"; ty = TInt };
          { name = "pad"; ty = TStr };
        ]
      ~key:[ "k" ]
  in
  for i = 0 to n - 1 do
    Gg_storage.Table.load table [| Value.Int i; Value.Int 0; Value.Str "x" |]
  done

let make_cluster ?params ?(n_rows = 200) ?(topo = Topology.china3 ()) ?dup
    ?reorder () =
  Cluster.create ?params ?dup ?reorder ~topology:topo ~load:(kv_load n_rows) ()

let write_txn ?(sen_pad = 0) k v =
  ignore sen_pad;
  Txn.Op_txn
    (Op.make ~label:"w"
       [ Op.Write { table = "kv"; key = [| Value.Int k |]; data = [| Value.Int k; Value.Int v; Value.Str "x" |] } ])

let read_txn k =
  Txn.Op_txn (Op.make ~label:"r" [ Op.Read { table = "kv"; key = [| Value.Int k |] } ])

let add_txn k delta =
  Txn.Op_txn
    (Op.make ~label:"add" [ Op.Add { table = "kv"; key = [| Value.Int k |]; col = 1; delta } ])

let run_ms c ms = Cluster.run_for_ms c ms

let submit_wait c ~node req =
  let result = ref None in
  Cluster.submit c ~node req (fun o -> result := Some o);
  result

let check_converged ?(msg = "replicas converged") c =
  Cluster.quiesce c;
  match Cluster.digests c with
  | [] -> Alcotest.fail "no nodes"
  | d :: rest -> List.iter (fun d' -> Alcotest.(check string) msg d d') rest

(* --- op-level executor unit tests --- *)

let fresh_db () =
  let db = Gg_storage.Db.create () in
  kv_load 10 db;
  db

let test_op_exec_read_records_version () =
  let db = fresh_db () in
  let t = Op.make [ Op.Read { table = "kv"; key = [| Value.Int 3 |] } ] in
  match Op_exec.exec db t with
  | Ok { Op_exec.reads; writes } ->
    Alcotest.(check int) "one read" 1 (List.length reads);
    Alcotest.(check int) "no writes" 0 (List.length writes)
  | Error m -> Alcotest.failf "unexpected: %s" m

let test_op_exec_add_reads_then_writes () =
  let db = fresh_db () in
  let t = Op.make [ Op.Add { table = "kv"; key = [| Value.Int 3 |]; col = 1; delta = 5 } ] in
  match Op_exec.exec db t with
  | Ok { Op_exec.reads; writes } ->
    Alcotest.(check int) "read recorded" 1 (List.length reads);
    (match writes with
    | [ { Gg_crdt.Writeset.op = Gg_crdt.Writeset.Update; data; _ } ] ->
      Alcotest.(check bool) "incremented" true (Value.equal data.(1) (Value.Int 5))
    | _ -> Alcotest.fail "expected one update")
  | Error m -> Alcotest.failf "unexpected: %s" m

let test_op_exec_rmw_chains_within_txn () =
  (* Two Adds to the same row see each other (read-your-writes) and
     coalesce to one record. *)
  let db = fresh_db () in
  let t =
    Op.make
      [
        Op.Add { table = "kv"; key = [| Value.Int 4 |]; col = 1; delta = 3 };
        Op.Add { table = "kv"; key = [| Value.Int 4 |]; col = 1; delta = 4 };
      ]
  in
  match Op_exec.exec db t with
  | Ok { Op_exec.writes = [ { Gg_crdt.Writeset.data; _ } ]; _ } ->
    Alcotest.(check bool) "chained to 7" true (Value.equal data.(1) (Value.Int 7))
  | Ok _ -> Alcotest.fail "expected one coalesced record"
  | Error m -> Alcotest.failf "unexpected: %s" m

let test_op_exec_insert_then_delete_cancels () =
  let db = fresh_db () in
  let t =
    Op.make
      [
        Op.Insert { table = "kv"; key = [| Value.Int 99 |]; data = [| Value.Int 99; Value.Int 1; Value.Str "n" |] };
        Op.Delete { table = "kv"; key = [| Value.Int 99 |] };
      ]
  in
  match Op_exec.exec db t with
  | Ok { Op_exec.writes; _ } -> Alcotest.(check int) "no net writes" 0 (List.length writes)
  | Error m -> Alcotest.failf "unexpected: %s" m

let test_op_exec_errors () =
  let db = fresh_db () in
  let check_err label t =
    match Op_exec.exec db t with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should fail" label
  in
  check_err "add missing row"
    (Op.make [ Op.Add { table = "kv"; key = [| Value.Int 999 |]; col = 1; delta = 1 } ]);
  check_err "delete missing row"
    (Op.make [ Op.Delete { table = "kv"; key = [| Value.Int 999 |] } ]);
  check_err "duplicate insert"
    (Op.make [ Op.Insert { table = "kv"; key = [| Value.Int 1 |]; data = [| Value.Int 1; Value.Int 0; Value.Str "d" |] } ]);
  check_err "unknown table"
    (Op.make [ Op.Read { table = "zz"; key = [| Value.Int 1 |] } ]);
  check_err "add non-integer column"
    (Op.make [ Op.Add { table = "kv"; key = [| Value.Int 1 |]; col = 2; delta = 1 } ])

let test_op_exec_read_missing_is_noop () =
  let db = fresh_db () in
  let t = Op.make [ Op.Read { table = "kv"; key = [| Value.Int 999 |] } ] in
  match Op_exec.exec db t with
  | Ok { Op_exec.reads; writes } ->
    Alcotest.(check int) "no read recorded" 0 (List.length reads);
    Alcotest.(check int) "no writes" 0 (List.length writes)
  | Error m -> Alcotest.failf "unexpected: %s" m

let prop_op_exec_unique_keys =
  (* Whatever the op sequence, the produced write set holds at most one
     record per (table, key) — the invariant the merge relies on. *)
  let gen_ops =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (map2
           (fun kind k ->
             let key = [| Value.Int (k mod 12) |] in
             let data = [| Value.Int (k mod 12); Value.Int k; Value.Str "q" |] in
             match kind mod 5 with
             | 0 -> Op.Read { table = "kv"; key }
             | 1 -> Op.Write { table = "kv"; key; data }
             | 2 -> Op.Add { table = "kv"; key; col = 1; delta = 1 }
             | 3 -> Op.Insert { table = "kv"; key = [| Value.Int (100 + (k mod 7)) |]; data = [| Value.Int (100 + (k mod 7)); Value.Int 0; Value.Str "i" |] }
             | _ -> Op.Delete { table = "kv"; key })
           (int_range 0 99) (int_range 0 999)))
  in
  QCheck.Test.make ~name:"op_exec write sets have unique keys" ~count:300
    (QCheck.make gen_ops) (fun ops ->
      let db = Gg_storage.Db.create () in
      kv_load 12 db;
      match Op_exec.exec db (Op.make ops) with
      | Error _ -> true (* rejected op sequences are fine *)
      | Ok { Op_exec.writes; _ } ->
        let keys = List.map (fun r -> (r.Gg_crdt.Writeset.table, Gg_crdt.Writeset.key_str r)) writes in
        List.length keys = List.length (List.sort_uniq compare keys))

(* --- basic commit flow --- *)

let test_single_write_commits () =
  let c = make_cluster () in
  let r = submit_wait c ~node:0 (write_txn 1 42) in
  run_ms c 500;
  (match !r with
  | Some (Txn.Committed _) -> ()
  | Some (Txn.Aborted { reason; _ }) ->
    Alcotest.failf "aborted: %s" (Txn.abort_reason_to_string reason)
  | None -> Alcotest.fail "no response");
  check_converged c;
  (* The write is visible on every replica. *)
  List.init 3 Fun.id
  |> List.iter (fun i ->
         let db = Node.db (Cluster.node c i) in
         let t = Gg_storage.Db.get_table_exn db "kv" in
         match Gg_storage.Table.find_live t (Value.encode_key [| Value.Int 1 |]) with
         | Some e -> Alcotest.(check bool) "value" true (Value.equal e.Gg_storage.Table.data.(1) (Value.Int 42))
         | None -> Alcotest.fail "row missing")

let test_write_latency_spans_wan () =
  (* A write cannot be confirmed before the remote epoch updates arrive:
     latency >= one-way WAN delay (~30 ms with 10 ms epochs). *)
  let c = make_cluster () in
  let r = submit_wait c ~node:0 (write_txn 1 1) in
  run_ms c 1_000;
  match !r with
  | Some (Txn.Committed { latency_us; _ }) ->
    Alcotest.(check bool)
      (Printf.sprintf "latency %d us >= 30 ms" latency_us)
      true (latency_us >= 30_000)
  | _ -> Alcotest.fail "expected commit"

let test_read_only_fast_path () =
  (* Read-only transactions return from the local snapshot without epoch
     coordination: latency well under the WAN delay. *)
  let c = make_cluster () in
  run_ms c 100;
  let r = submit_wait c ~node:0 (read_txn 5) in
  run_ms c 100;
  match !r with
  | Some (Txn.Committed { latency_us; _ }) ->
    Alcotest.(check bool)
      (Printf.sprintf "latency %d us < 10 ms" latency_us)
      true (latency_us < 10_000)
  | _ -> Alcotest.fail "expected commit"

let test_empty_epochs_progress () =
  (* With no transactions at all, empty EOF messages keep snapshots
     advancing (§4.2.3 case 1). *)
  let c = make_cluster () in
  run_ms c 500;
  List.iter
    (fun l -> Alcotest.(check bool) (Printf.sprintf "lsn %d advanced" l) true (l > 10))
    (Cluster.lsns c)

(* --- write-write conflicts (the heart of multi-master OCC) --- *)

let test_cross_node_conflict_single_winner () =
  let c = make_cluster () in
  run_ms c 50;
  (* Two nodes write the same key in the same epoch. *)
  let r0 = submit_wait c ~node:0 (write_txn 7 100) in
  let r1 = submit_wait c ~node:1 (write_txn 7 200) in
  run_ms c 1_000;
  let committed, aborted =
    List.fold_left
      (fun (c, a) r ->
        match !r with
        | Some (Txn.Committed _) -> (c + 1, a)
        | Some (Txn.Aborted { reason = Txn.Write_conflict; _ }) -> (c, a + 1)
        | Some (Txn.Aborted { reason; _ }) ->
          Alcotest.failf "unexpected reason %s" (Txn.abort_reason_to_string reason)
        | None -> Alcotest.fail "no response")
      (0, 0) [ r0; r1 ]
  in
  Alcotest.(check int) "one winner" 1 committed;
  Alcotest.(check int) "one loser" 1 aborted;
  check_converged c

let test_conflict_deterministic_value () =
  (* All replicas must agree on the winning value. *)
  let c = make_cluster () in
  run_ms c 50;
  ignore (submit_wait c ~node:0 (write_txn 9 111));
  ignore (submit_wait c ~node:1 (write_txn 9 222));
  ignore (submit_wait c ~node:2 (write_txn 9 333));
  run_ms c 1_000;
  check_converged c;
  let values =
    List.init 3 (fun i ->
        let db = Node.db (Cluster.node c i) in
        let t = Gg_storage.Db.get_table_exn db "kv" in
        let e = Option.get (Gg_storage.Table.find_live t (Value.encode_key [| Value.Int 9 |])) in
        e.Gg_storage.Table.data.(1))
  in
  match values with
  | [ a; b; c' ] ->
    Alcotest.(check bool) "same winner everywhere" true
      (Value.equal a b && Value.equal b c');
    Alcotest.(check bool) "winner is one of the writes" true
      (List.exists (Value.equal a) [ Value.Int 111; Value.Int 222; Value.Int 333 ])
  | _ -> Alcotest.fail "bad"

let test_disjoint_writes_all_commit () =
  let c = make_cluster () in
  run_ms c 50;
  let rs =
    List.init 3 (fun i -> submit_wait c ~node:i (write_txn (50 + i) i))
  in
  run_ms c 1_000;
  List.iter
    (fun r ->
      match !r with
      | Some (Txn.Committed _) -> ()
      | _ -> Alcotest.fail "disjoint writes must all commit")
    rs;
  check_converged c

(* --- sustained mixed workload: Theorem 3 at scale --- *)

let mixed_workload_clients ?(connections = 8) ?(n_rows = 200) c seed =
  List.init (Cluster.n_nodes c) (fun i ->
      let rng = Gg_util.Rng.create (seed + i) in
      let gen () =
        let k = Gg_util.Rng.int rng n_rows in
        match Gg_util.Rng.int rng 4 with
        | 0 -> read_txn k
        | 1 -> write_txn k (Gg_util.Rng.int rng 1000)
        | 2 -> add_txn k 1
        | _ ->
          Txn.Op_txn
            (Op.make ~label:"multi"
               [
                 Op.Read { table = "kv"; key = [| Value.Int k |] };
                 Op.Add { table = "kv"; key = [| Value.Int ((k + 1) mod n_rows) |]; col = 1; delta = 2 };
                 Op.Write
                   {
                     table = "kv";
                     key = [| Value.Int ((k + 2) mod n_rows) |];
                     data = [| Value.Int ((k + 2) mod n_rows); Value.Int k; Value.Str "m" |];
                   };
               ])
      in
      let cl = Client.create c ~home:i ~connections ~gen in
      Client.start cl;
      cl)

let test_sustained_workload_converges () =
  let c = make_cluster () in
  let clients = mixed_workload_clients c 1000 in
  run_ms c 3_000;
  List.iter Client.stop clients;
  check_converged c;
  let committed = List.fold_left (fun a cl -> a + Client.committed cl) 0 clients in
  Alcotest.(check bool)
    (Printf.sprintf "committed %d > 100" committed)
    true (committed > 100)

let test_convergence_under_duplication_and_reorder () =
  (* The CRDT merge must absorb duplicated and reordered batches. *)
  let c = make_cluster ~dup:0.2 ~reorder:0.2 () in
  let clients = mixed_workload_clients c 2000 in
  run_ms c 3_000;
  List.iter Client.stop clients;
  check_converged ~msg:"converged despite dup+reorder" c

let test_sequential_consistency_of_snapshots () =
  (* lsns advance together and digests agree after quiesce at several
     points in time. *)
  let c = make_cluster () in
  let clients = mixed_workload_clients c 3000 in
  run_ms c 1_000;
  List.iter Client.stop clients;
  check_converged c;
  List.iter Client.start clients;
  run_ms c 1_000;
  List.iter Client.stop clients;
  check_converged c

(* --- inserts and deletes --- *)

let test_concurrent_insert_conflict () =
  let c = make_cluster () in
  run_ms c 50;
  let ins node v =
    Txn.Op_txn
      (Op.make ~label:"ins"
         [
           Op.Insert
             {
               table = "kv";
               key = [| Value.Int 9999 |];
               data = [| Value.Int 9999; Value.Int v; Value.Str "i" |];
             };
         ])
    |> fun req -> submit_wait c ~node req
  in
  let r0 = ins 0 100 and r1 = ins 1 200 in
  run_ms c 1_000;
  let committed =
    List.length
      (List.filter (fun r -> match !r with Some (Txn.Committed _) -> true | _ -> false) [ r0; r1 ])
  in
  Alcotest.(check int) "exactly one insert wins" 1 committed;
  check_converged c

let test_delete_then_update_aborts () =
  let c = make_cluster () in
  run_ms c 50;
  let del =
    submit_wait c ~node:0
      (Txn.Op_txn (Op.make ~label:"del" [ Op.Delete { table = "kv"; key = [| Value.Int 3 |] } ]))
  in
  run_ms c 1_000;
  (match !del with
  | Some (Txn.Committed _) -> ()
  | _ -> Alcotest.fail "delete should commit");
  (* Later update of the deleted row aborts with Row_deleted (merge rule
     line 3-4) or fails execution. *)
  let up = submit_wait c ~node:1 (add_txn 3 1) in
  run_ms c 1_000;
  (match !up with
  | Some (Txn.Aborted _) -> ()
  | Some (Txn.Committed _) -> Alcotest.fail "update of deleted row must abort"
  | None -> Alcotest.fail "no response");
  check_converged c

let test_insert_then_visible_everywhere () =
  let c = make_cluster () in
  run_ms c 50;
  let r =
    submit_wait c ~node:2
      (Txn.Op_txn
         (Op.make ~label:"ins"
            [
              Op.Insert
                {
                  table = "kv";
                  key = [| Value.Int 5000 |];
                  data = [| Value.Int 5000; Value.Int 77; Value.Str "n" |];
                };
            ]))
  in
  run_ms c 1_000;
  (match !r with Some (Txn.Committed _) -> () | _ -> Alcotest.fail "insert commit");
  check_converged c;
  List.init 3 Fun.id
  |> List.iter (fun i ->
         let db = Node.db (Cluster.node c i) in
         let t = Gg_storage.Db.get_table_exn db "kv" in
         Alcotest.(check bool) "visible" true
           (Gg_storage.Table.mem_live t (Value.encode_key [| Value.Int 5000 |])))

(* --- isolation levels --- *)

let long_add k delta delay_us =
  Txn.Op_txn
    (Op.make ~label:"long" ~exec_extra_us:delay_us
       [ Op.Add { table = "kv"; key = [| Value.Int k |]; col = 1; delta } ])

let test_rr_aborts_on_changed_read () =
  let params = Params.with_isolation Params.default Params.RR in
  let c = make_cluster ~params () in
  run_ms c 50;
  (* A long transaction reads key 11 then sleeps 80 ms; meanwhile another
     node updates key 11 — RR read validation must abort the long one. *)
  let lr = submit_wait c ~node:0 (long_add 11 1 80_000) in
  run_ms c 5;
  ignore (submit_wait c ~node:1 (write_txn 11 500));
  run_ms c 2_000;
  (match !lr with
  | Some (Txn.Aborted { reason = Txn.Read_validation; _ }) -> ()
  | Some (Txn.Aborted { reason; _ }) ->
    Alcotest.failf "wrong reason %s" (Txn.abort_reason_to_string reason)
  | Some (Txn.Committed _) -> Alcotest.fail "RR must abort stale read"
  | None -> Alcotest.fail "no response");
  check_converged c

let test_rc_allows_changed_read () =
  let c = make_cluster () (* RC default *) in
  run_ms c 50;
  let lr = submit_wait c ~node:0 (long_add 11 1 80_000) in
  run_ms c 5;
  ignore (submit_wait c ~node:1 (write_txn 11 500));
  run_ms c 2_000;
  (match !lr with
  | Some (Txn.Committed _) | Some (Txn.Aborted { reason = Txn.Write_conflict; _ }) -> ()
  | Some (Txn.Aborted { reason; _ }) ->
    Alcotest.failf "RC should not read-abort (%s)" (Txn.abort_reason_to_string reason)
  | None -> Alcotest.fail "no response");
  check_converged c

let test_si_aborts_on_new_snapshot_of_read_row () =
  let params = Params.with_isolation Params.default Params.SI in
  let c = make_cluster ~params () in
  run_ms c 50;
  let lr = submit_wait c ~node:0 (long_add 13 1 100_000) in
  run_ms c 5;
  ignore (submit_wait c ~node:1 (write_txn 13 7));
  run_ms c 2_000;
  (match !lr with
  | Some (Txn.Aborted { reason = Txn.Read_validation; _ }) -> ()
  | Some (Txn.Committed _) -> Alcotest.fail "SI must abort on refreshed snapshot"
  | Some (Txn.Aborted { reason; _ }) ->
    Alcotest.failf "wrong reason %s" (Txn.abort_reason_to_string reason)
  | None -> Alcotest.fail "no response");
  check_converged c

let test_ssi_aborts_pivot () =
  (* SSI extension: T reads x and writes y; U reads y and writes x, in
     the same epoch from different nodes. Both have an incoming and an
     outgoing rw-antidependency — at least one must abort with
     Ssi_conflict (plain SI would commit both). *)
  let params = Params.with_isolation Params.default Params.SSI in
  let c = make_cluster ~params () in
  run_ms c 50;
  let t_req =
    Txn.Op_txn
      (Op.make ~label:"T"
         [
           Op.Read { table = "kv"; key = [| Value.Int 1 |] };
           Op.Write { table = "kv"; key = [| Value.Int 2 |]; data = [| Value.Int 2; Value.Int 10; Value.Str "T" |] };
         ])
  in
  let u_req =
    Txn.Op_txn
      (Op.make ~label:"U"
         [
           Op.Read { table = "kv"; key = [| Value.Int 2 |] };
           Op.Write { table = "kv"; key = [| Value.Int 1 |]; data = [| Value.Int 1; Value.Int 20; Value.Str "U" |] };
         ])
  in
  let rt = submit_wait c ~node:0 t_req in
  let ru = submit_wait c ~node:1 u_req in
  run_ms c 1_000;
  let ssi_aborts =
    List.length
      (List.filter
         (fun r ->
           match !r with
           | Some (Txn.Aborted { reason = Txn.Ssi_conflict; _ }) -> true
           | _ -> false)
         [ rt; ru ])
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d pivot abort(s)" ssi_aborts)
    true (ssi_aborts >= 1);
  check_converged c

let test_ssi_disjoint_txns_commit () =
  let params = Params.with_isolation Params.default Params.SSI in
  let c = make_cluster ~params () in
  run_ms c 50;
  let r0 = submit_wait c ~node:0 (write_txn 30 1) in
  let r1 = submit_wait c ~node:1 (write_txn 31 2) in
  run_ms c 1_000;
  List.iter
    (fun r ->
      match !r with
      | Some (Txn.Committed _) -> ()
      | _ -> Alcotest.fail "disjoint txns commit under SSI")
    [ r0; r1 ];
  check_converged c

let test_ssi_ships_read_keys () =
  (* Read keys inflate the WAN traffic — the cost §4.3 cites. *)
  let run iso =
    let params = Params.with_isolation Params.default iso in
    let c = make_cluster ~params () in
    let clients = mixed_workload_clients ~connections:6 c 12_000 in
    run_ms c 2_000;
    List.iter Client.stop clients;
    Gg_sim.Net.wan_bytes (Cluster.net c)
  in
  let si = run Params.SI and ssi = run Params.SSI in
  Alcotest.(check bool)
    (Printf.sprintf "SSI wan %d > SI wan %d" ssi si)
    true (ssi > si)

let test_isolation_abort_rates_ordered () =
  (* Higher isolation => more aborts on a contended workload (Fig 9). *)
  let run iso =
    let params = Params.with_isolation Params.default iso in
    let c = make_cluster ~params ~n_rows:20 () in
    let clients =
      List.init 3 (fun i ->
          let rng = Gg_util.Rng.create (7_000 + i) in
          let gen () =
            let k = Gg_util.Rng.int rng 20 in
            long_add k 1 (5_000 + Gg_util.Rng.int rng 10_000)
          in
          let cl = Client.create c ~home:i ~connections:8 ~gen in
          Client.start cl;
          cl)
    in
    run_ms c 3_000;
    List.iter Client.stop clients;
    Cluster.quiesce c;
    let committed = List.fold_left (fun a cl -> a + Client.committed cl) 0 clients in
    let aborted = List.fold_left (fun a cl -> a + Client.aborted cl) 0 clients in
    float_of_int aborted /. float_of_int (max 1 (committed + aborted))
  in
  let rc = run Params.RC and rr = run Params.RR in
  Alcotest.(check bool)
    (Printf.sprintf "abort rate RC %.3f <= RR %.3f" rc rr)
    true (rc <= rr +. 0.01)

(* --- variants --- *)

let test_geog_s_commits_and_converges () =
  let params = Params.with_variant Params.default Params.Sync_exec in
  let c = make_cluster ~params () in
  let clients = mixed_workload_clients ~connections:4 c 4000 in
  run_ms c 3_000;
  List.iter Client.stop clients;
  check_converged c;
  let committed = List.fold_left (fun a cl -> a + Client.committed cl) 0 clients in
  Alcotest.(check bool) (Printf.sprintf "GeoG-S committed %d > 0" committed) true (committed > 0)

let test_geog_s_slower_than_geogauss () =
  let run variant =
    let params = Params.with_variant Params.default variant in
    let c = make_cluster ~params () in
    let clients = mixed_workload_clients ~connections:8 c 5000 in
    run_ms c 3_000;
    List.iter Client.stop clients;
    List.fold_left (fun a cl -> a + Client.committed cl) 0 clients
  in
  let opt = run Params.Optimistic and sync = run Params.Sync_exec in
  Alcotest.(check bool)
    (Printf.sprintf "GeoGauss %d > GeoG-S %d" opt sync)
    true
    (opt > sync)

let test_geog_a_low_latency_and_convergence () =
  let params = Params.with_variant Params.default Params.Async_merge in
  let c = make_cluster ~params () in
  run_ms c 50;
  let r = submit_wait c ~node:0 (write_txn 2 5) in
  run_ms c 500;
  (match !r with
  | Some (Txn.Committed { latency_us; _ }) ->
    (* No epoch wait: well under the WAN one-way delay. *)
    Alcotest.(check bool)
      (Printf.sprintf "GeoG-A latency %d < 20 ms" latency_us)
      true (latency_us < 20_000)
  | _ -> Alcotest.fail "GeoG-A commit");
  (* Eventual convergence without epochs. *)
  let clients = mixed_workload_clients ~connections:4 c 6000 in
  run_ms c 2_000;
  List.iter Client.stop clients;
  Cluster.run_for_ms c 1_000;
  match Cluster.digests c with
  | d :: rest -> List.iter (fun d' -> Alcotest.(check string) "eventual convergence" d d') rest
  | [] -> Alcotest.fail "no nodes"

let test_geog_a_never_aborts () =
  let params = Params.with_variant Params.default Params.Async_merge in
  let c = make_cluster ~params ~n_rows:10 () in
  let clients = mixed_workload_clients ~connections:8 ~n_rows:10 c 6500 in
  run_ms c 2_000;
  List.iter Client.stop clients;
  let aborted = List.fold_left (fun a cl -> a + Client.aborted cl) 0 clients in
  Alcotest.(check int) "no aborts under eventual consistency" 0 aborted

(* --- fault tolerance modes --- *)

let test_ft_raft_converges () =
  let params = Params.with_ft Params.default Params.Ft_raft in
  let c = make_cluster ~params () in
  let clients = mixed_workload_clients ~connections:4 c 7000 in
  run_ms c 3_000;
  List.iter Client.stop clients;
  check_converged c;
  let committed = List.fold_left (fun a cl -> a + Client.committed cl) 0 clients in
  Alcotest.(check bool) "raft-ft commits" true (committed > 0)

let test_ft_latency_ordering () =
  (* LB < RB <= Raft in mean commit latency (Fig 12). *)
  let run ft =
    let params = Params.with_ft Params.default ft in
    let c = make_cluster ~params () in
    let clients = mixed_workload_clients ~connections:4 c 8000 in
    run_ms c 3_000;
    List.iter Client.stop clients;
    let h =
      List.fold_left
        (fun acc cl -> Gg_util.Stats.Hist.merge acc (Client.latency cl))
        (Gg_util.Stats.Hist.create ()) clients
    in
    Gg_util.Stats.Hist.mean h
  in
  let lb = run Params.Ft_local_backup in
  let rb = run Params.Ft_remote_backup in
  let raft = run Params.Ft_raft in
  Alcotest.(check bool)
    (Printf.sprintf "LB %.0f <= RB %.0f" lb rb)
    true (lb <= rb +. 1_000.0);
  Alcotest.(check bool)
    (Printf.sprintf "RB %.0f <= Raft %.0f" rb raft)
    true (rb <= raft +. 2_000.0)

(* --- failures --- *)

let test_node_crash_blocks_then_view_change_unblocks () =
  let c = make_cluster () in
  let clients = mixed_workload_clients ~connections:4 c 9000 in
  run_ms c 1_000;
  Cluster.crash c 2;
  (* Within ~500 ms + raft commit the survivors drop node 2 and resume. *)
  run_ms c 3_000;
  let lsn0 = Node.lsn (Cluster.node c 0) in
  Alcotest.(check bool)
    (Printf.sprintf "survivors advanced past crash (lsn %d > 150)" lsn0)
    true (lsn0 > 150);
  Alcotest.(check (list int)) "view excludes crashed node" [ 0; 1 ] (Cluster.members c);
  List.iter Client.stop clients;
  Cluster.quiesce c;
  let d0 = Gg_storage.Db.digest (Node.db (Cluster.node c 0)) in
  let d1 = Gg_storage.Db.digest (Node.db (Cluster.node c 1)) in
  Alcotest.(check string) "survivors consistent" d0 d1

let test_client_rerouted_after_crash () =
  let c = make_cluster () in
  run_ms c 200;
  Cluster.crash c 1;
  run_ms c 1_500;
  let target = Cluster.route c ~preferred:1 in
  Alcotest.(check bool) "routed away from crashed node" true (target <> 1)

let test_node_recovery_rejoins () =
  let c = make_cluster () in
  let clients = mixed_workload_clients ~connections:4 c 9500 in
  run_ms c 1_000;
  Cluster.crash c 2;
  run_ms c 2_000;
  Alcotest.(check (list int)) "removed" [ 0; 1 ] (Cluster.members c);
  Cluster.recover c 2;
  run_ms c 3_000;
  Alcotest.(check (list int)) "re-added" [ 0; 1; 2 ] (Cluster.members c);
  run_ms c 2_000;
  List.iter Client.stop clients;
  check_converged ~msg:"recovered node caught up" c

(* --- write-set backup store crash paths (§5.2) --- *)

let sealed_batch ~node ~cen =
  Gg_crdt.Writeset.Batch.make ~node ~cen ~txns:[] ~eof:true ()

let test_backup_put_requires_eof () =
  let b = Backup.create ~n:3 in
  Alcotest.(check bool) "mini-batch rejected" true
    (try
       Backup.put b (Gg_crdt.Writeset.Batch.make ~node:0 ~cen:1 ~txns:[] ~eof:false ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "nothing stored" 0 (Backup.count b)

let test_backup_duplicate_put_idempotent () =
  (* Retransmitted sealed batches (the network duplicates, the repair
     path re-pushes) must not multiply backup state. *)
  let b = Backup.create ~n:3 in
  let batch = sealed_batch ~node:1 ~cen:4 in
  Backup.put b batch;
  Backup.put b batch;
  Backup.put b (sealed_batch ~node:1 ~cen:4);
  Alcotest.(check int) "one copy" 1 (Backup.count b);
  Alcotest.(check int) "last_sealed" 4 (Backup.last_sealed b ~node:1);
  (* Out-of-order arrival of an older epoch never regresses the seal
     high-water mark survivors read during view change. *)
  Backup.put b (sealed_batch ~node:1 ~cen:2);
  Alcotest.(check int) "monotone last_sealed" 4 (Backup.last_sealed b ~node:1);
  Alcotest.(check bool) "old epoch fetchable" true
    (Backup.get b ~node:1 ~cen:2 <> None);
  Alcotest.(check int) "other node untouched" (-1) (Backup.last_sealed b ~node:0)

let test_backup_after_mid_epoch_crash () =
  (* Crash a node mid-run: its backup must expose a consistent prefix —
     last_sealed is the true high-water mark and every epoch up to it is
     fetchable, which is what survivors rely on to finish merging before
     the view change drops the node. *)
  let c = make_cluster () in
  let clients = mixed_workload_clients ~connections:4 c 11_000 in
  run_ms c 1_000;
  Cluster.crash c 2;
  let b = Cluster.backup c in
  let last = Backup.last_sealed b ~node:2 in
  Alcotest.(check bool)
    (Printf.sprintf "crashed node sealed epochs (last %d)" last)
    true (last > 10);
  for e = 1 to last do
    Alcotest.(check bool)
      (Printf.sprintf "epoch %d fetchable" e)
      true
      (Backup.get b ~node:2 ~cen:e <> None)
  done;
  (* Survivors fetch what they miss, merge through [last], and move on. *)
  run_ms c 3_000;
  List.iter Client.stop clients;
  Alcotest.(check (list int)) "view excludes crashed node" [ 0; 1 ] (Cluster.members c);
  Alcotest.(check bool) "survivors merged past the seal mark" true
    (Node.lsn (Cluster.node c 0) > last);
  Cluster.quiesce c;
  let d0 = Gg_storage.Db.digest (Node.db (Cluster.node c 0)) in
  let d1 = Gg_storage.Db.digest (Node.db (Cluster.node c 1)) in
  Alcotest.(check string) "survivors consistent" d0 d1

(* --- per-node metrics bookkeeping --- *)

let ph ~parse ~exec ~wait ~merge ~log =
  { Txn.parse_us = parse; exec_us = exec; wait_us = wait; merge_us = merge;
    log_us = log }

let test_metrics_phase_means () =
  let m = Metrics.create () in
  Metrics.record_phases m (ph ~parse:100 ~exec:200 ~wait:300 ~merge:400 ~log:500);
  Metrics.record_phases m (ph ~parse:300 ~exec:400 ~wait:500 ~merge:600 ~log:700);
  let p, e, w, g, l = Metrics.phase_means_us m in
  let chk name expect got = Alcotest.(check (float 1e-6)) name expect got in
  chk "parse" 200.0 p;
  chk "exec" 300.0 e;
  chk "wait" 400.0 w;
  chk "merge" 500.0 g;
  chk "log" 600.0 l

let test_metrics_epoch_cells_sorted () =
  let m = Metrics.create () in
  Metrics.record_epoch_commit m ~cen:7 ~latency_us:10;
  Metrics.record_epoch_commit m ~cen:3 ~latency_us:20;
  Metrics.record_epoch_commit m ~cen:7 ~latency_us:30;
  Metrics.record_epoch_commit m ~cen:5 ~latency_us:40;
  let cells = Metrics.epoch_cells m in
  Alcotest.(check (list int)) "ascending epochs" [ 3; 5; 7 ] (List.map fst cells);
  let c7 = List.assoc 7 cells in
  Alcotest.(check int) "per-epoch count accumulates" 2 c7.Metrics.committed;
  Alcotest.(check (float 1e-6))
    "per-epoch latency mean" 20.0
    (Gg_util.Stats.Acc.mean c7.Metrics.latency)

let test_metrics_abort_reason_pooling () =
  let m = Metrics.create () in
  let ab reason =
    Metrics.record_outcome m (Txn.Aborted { latency_us = 5; reason })
  in
  ab (Txn.Constraint_violation "duplicate key");
  ab (Txn.Constraint_violation "unknown table");
  ab Txn.Write_conflict;
  Metrics.record_outcome m (Txn.Committed { latency_us = 9; results = [] });
  (* Constraint_violation pools by constructor, not message. *)
  Alcotest.(check int)
    "constraint violations pooled" 2
    (Metrics.aborted_by m (Txn.Constraint_violation "anything"));
  Alcotest.(check int) "write conflicts" 1 (Metrics.aborted_by m Txn.Write_conflict);
  Alcotest.(check int) "no ssi aborts" 0 (Metrics.aborted_by m Txn.Ssi_conflict);
  Alcotest.(check int) "aborted total" 3 (Metrics.aborted m);
  Alcotest.(check int) "committed total" 1 (Metrics.committed m)

let test_metrics_reset () =
  let m = Metrics.create () in
  Metrics.record_start m;
  Metrics.record_outcome m (Txn.Committed { latency_us = 1_000; results = [] });
  Metrics.record_phases m (ph ~parse:10 ~exec:20 ~wait:30 ~merge:40 ~log:50);
  Metrics.record_epoch_commit m ~cen:1 ~latency_us:10;
  Metrics.record_merged_records m 5;
  Metrics.reset m;
  Alcotest.(check int) "started" 0 (Metrics.started m);
  Alcotest.(check int) "committed" 0 (Metrics.committed m);
  Alcotest.(check int) "merged records" 0 (Metrics.merged_records m);
  Alcotest.(check int)
    "latency histogram emptied" 0
    (Gg_util.Stats.Hist.count (Metrics.latency m));
  Alcotest.(check (list int)) "epoch cells dropped" []
    (List.map fst (Metrics.epoch_cells m));
  let p, _, _, _, l = Metrics.phase_means_us m in
  Alcotest.(check (float 1e-6)) "phase means cleared" 0.0 (p +. l)

let test_metrics_registry_reset_all () =
  let obs = Gg_obs.Obs.create () in
  let m = Metrics.create ~obs ~id:0 () in
  Metrics.record_outcome m (Txn.Committed { latency_us = 7; results = [] });
  Metrics.record_epoch_commit m ~cen:2 ~latency_us:5;
  Gg_obs.Obs.reset_all obs;
  Alcotest.(check int) "committed zeroed via registry" 0 (Metrics.committed m);
  Alcotest.(check (list int)) "epoch table cleared via hook" []
    (List.map fst (Metrics.epoch_cells m));
  Metrics.record_outcome m (Txn.Committed { latency_us = 7; results = [] });
  Alcotest.(check int)
    "counts surface under registry name" 1
    (List.assoc "node0.txn.committed" (Gg_obs.Obs.counter_values obs))

let () =
  Alcotest.run "geogauss_core"
    [
      ( "op_exec",
        [
          Alcotest.test_case "read records version" `Quick test_op_exec_read_records_version;
          Alcotest.test_case "add reads then writes" `Quick test_op_exec_add_reads_then_writes;
          Alcotest.test_case "rmw chains in txn" `Quick test_op_exec_rmw_chains_within_txn;
          Alcotest.test_case "insert+delete cancels" `Quick test_op_exec_insert_then_delete_cancels;
          Alcotest.test_case "errors" `Quick test_op_exec_errors;
          Alcotest.test_case "read missing is noop" `Quick test_op_exec_read_missing_is_noop;
          QCheck_alcotest.to_alcotest prop_op_exec_unique_keys;
        ] );
      ( "basic",
        [
          Alcotest.test_case "single write commits everywhere" `Quick test_single_write_commits;
          Alcotest.test_case "write latency spans WAN" `Quick test_write_latency_spans_wan;
          Alcotest.test_case "read-only fast path" `Quick test_read_only_fast_path;
          Alcotest.test_case "empty epochs progress" `Quick test_empty_epochs_progress;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "cross-node conflict: single winner" `Quick test_cross_node_conflict_single_winner;
          Alcotest.test_case "deterministic winner" `Quick test_conflict_deterministic_value;
          Alcotest.test_case "disjoint writes all commit" `Quick test_disjoint_writes_all_commit;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "sustained workload converges" `Slow test_sustained_workload_converges;
          Alcotest.test_case "dup+reorder robustness" `Slow test_convergence_under_duplication_and_reorder;
          Alcotest.test_case "snapshots sequentially consistent" `Slow test_sequential_consistency_of_snapshots;
        ] );
      ( "insert/delete",
        [
          Alcotest.test_case "concurrent insert conflict" `Quick test_concurrent_insert_conflict;
          Alcotest.test_case "update after delete aborts" `Quick test_delete_then_update_aborts;
          Alcotest.test_case "insert visible everywhere" `Quick test_insert_then_visible_everywhere;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "RR aborts changed read" `Quick test_rr_aborts_on_changed_read;
          Alcotest.test_case "RC tolerates changed read" `Quick test_rc_allows_changed_read;
          Alcotest.test_case "SI aborts refreshed snapshot" `Quick test_si_aborts_on_new_snapshot_of_read_row;
          Alcotest.test_case "abort rates ordered by isolation" `Slow test_isolation_abort_rates_ordered;
          Alcotest.test_case "SSI aborts pivot" `Quick test_ssi_aborts_pivot;
          Alcotest.test_case "SSI disjoint commits" `Quick test_ssi_disjoint_txns_commit;
          Alcotest.test_case "SSI ships read keys" `Slow test_ssi_ships_read_keys;
        ] );
      ( "variants",
        [
          Alcotest.test_case "GeoG-S commits and converges" `Slow test_geog_s_commits_and_converges;
          Alcotest.test_case "GeoG-S slower than GeoGauss" `Slow test_geog_s_slower_than_geogauss;
          Alcotest.test_case "GeoG-A low latency + convergence" `Slow test_geog_a_low_latency_and_convergence;
          Alcotest.test_case "GeoG-A never aborts" `Slow test_geog_a_never_aborts;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "raft-ft converges" `Slow test_ft_raft_converges;
          Alcotest.test_case "ft latency ordering" `Slow test_ft_latency_ordering;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash then view change" `Slow test_node_crash_blocks_then_view_change_unblocks;
          Alcotest.test_case "client rerouted" `Quick test_client_rerouted_after_crash;
          Alcotest.test_case "recovery rejoins" `Slow test_node_recovery_rejoins;
        ] );
      ( "backup",
        [
          Alcotest.test_case "put requires eof" `Quick test_backup_put_requires_eof;
          Alcotest.test_case "duplicate put idempotent" `Quick test_backup_duplicate_put_idempotent;
          Alcotest.test_case "mid-epoch crash leaves consistent prefix" `Slow test_backup_after_mid_epoch_crash;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "phase means" `Quick test_metrics_phase_means;
          Alcotest.test_case "epoch cells sorted" `Quick test_metrics_epoch_cells_sorted;
          Alcotest.test_case "abort reason pooling" `Quick test_metrics_abort_reason_pooling;
          Alcotest.test_case "reset clears everything" `Quick test_metrics_reset;
          Alcotest.test_case "registry reset_all" `Quick test_metrics_registry_reset_all;
        ] );
    ]
