(* Tests for the bounded-skew clock model and the clock-assisted epoch
   fast path built on it (DESIGN.md §14): seeded offsets are
   deterministic and never exceed the configured bound (the invariant
   the speculative sealer's fallback correctness argument rests on),
   the per-sender watermark is monotone, the eocc chaos sweep holds all
   five oracles, and a deliberately broken watermark margin is caught
   by the misprediction counter — not by a consistency violation. *)

module Clock = Gg_sim.Clock
module Topology = Gg_sim.Topology
module Scenario = Gg_check.Scenario
module Checker = Gg_check.Checker
module Params = Geogauss.Params

let topo = Topology.china3 ()
let n_nodes = Topology.n_nodes topo

(* --- seeded offsets: determinism + bound --- *)

let sample_times = [ 0; 1; 999; 50_000; 1_000_000; 7_777_777; 60_000_000 ]

let prop_offsets_deterministic =
  QCheck.Test.make ~name:"same seed, same offsets" ~count:50
    QCheck.(pair (int_bound 10_000) (int_bound 50_000))
    (fun (seed, bound_us) ->
      let a = Clock.create ~seed ~topology:topo ~bound_us () in
      let b = Clock.create ~seed ~topology:topo ~bound_us () in
      List.for_all
        (fun at ->
          List.for_all
            (fun node ->
              Clock.offset_us a ~node ~at = Clock.offset_us b ~node ~at)
            (List.init n_nodes Fun.id))
        sample_times)

let prop_offsets_within_bound =
  QCheck.Test.make ~name:"offsets clamped to the skew bound" ~count:100
    QCheck.(pair (int_bound 10_000) (int_bound 50_000))
    (fun (seed, bound_us) ->
      let c = Clock.create ~seed ~topology:topo ~bound_us () in
      List.for_all
        (fun at ->
          List.for_all
            (fun node ->
              let o = Clock.offset_us c ~node ~at in
              abs o <= bound_us
              && Clock.read c ~node ~at = at + o)
            (List.init n_nodes Fun.id))
        sample_times)

let prop_bound_survives_skew_steps =
  (* Injected skew bursts shift the offset but the clamp is an
     invariant: whatever steps a fault schedule lands, no read ever
     strays past the bound. *)
  QCheck.Test.make ~name:"bound survives injected skew steps" ~count:100
    QCheck.(
      triple (int_bound 10_000) (int_bound 50_000)
        (list_of_size (QCheck.Gen.int_range 1 6)
           (pair (int_bound 1_000) (int_range (-200_000) 200_000))))
    (fun (seed, bound_us, steps) ->
      let c = Clock.create ~seed ~topology:topo ~bound_us () in
      List.for_all
        (fun (node_raw, delta_us) ->
          let node = node_raw mod n_nodes in
          Clock.inject_step c ~node ~delta_us;
          List.for_all
            (fun at -> abs (Clock.offset_us c ~node ~at) <= bound_us)
            sample_times)
        steps)

(* --- per-sender watermark --- *)

let prop_watermark_monotone =
  (* Whatever order stamps arrive in — including stale re-deliveries —
     the high-water mark only moves forward. *)
  QCheck.Test.make ~name:"watermark monotone per sender" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 5_000_000))
    (fun stamps ->
      let c = Clock.create ~seed:7 ~topology:topo ~bound_us:5_000 () in
      let running_max = ref min_int in
      List.for_all
        (fun stamp ->
          running_max := max !running_max stamp;
          Clock.note_stamp c ~src:1 ~dst:0 ~stamp ~at:(stamp + 30_000);
          match Clock.hwm c ~src:1 ~dst:0 with
          | None -> false
          | Some (s, _) -> s = !running_max)
        stamps)

let test_deadline_monotone_in_margin () =
  let c = Clock.create ~seed:3 ~topology:topo ~bound_us:5_000 () in
  (* no hwm yet: worst-case prediction *)
  let d0 = Clock.deadline c ~src:1 ~dst:0 ~boundary_us:100_000 ~margin_us:0 in
  let d1 =
    Clock.deadline c ~src:1 ~dst:0 ~boundary_us:100_000 ~margin_us:2_000
  in
  Alcotest.(check bool) "margin pushes the deadline out" true (d1 = d0 + 2_000);
  (* with a hwm the sender-clock terms cancel: feeding a later stamp
     from the same sender never moves the prediction backwards *)
  Clock.note_stamp c ~src:1 ~dst:0 ~stamp:40_000 ~at:70_000;
  let da = Clock.deadline c ~src:1 ~dst:0 ~boundary_us:100_000 ~margin_us:0 in
  Clock.note_stamp c ~src:1 ~dst:0 ~stamp:60_000 ~at:90_000;
  let db = Clock.deadline c ~src:1 ~dst:0 ~boundary_us:100_000 ~margin_us:0 in
  Alcotest.(check bool) "hwm deadline well-formed" true (da > 0 && db > 0);
  Alcotest.(check bool) "deadline deterministic" true
    (db = Clock.deadline c ~src:1 ~dst:0 ~boundary_us:100_000 ~margin_us:0)

(* --- eocc chaos sweep: the five oracles at full strength --- *)

let test_eocc_seeds_pass () =
  (* 50 fast seeds with speculative sealing pinned on and a 10 ms skew
     budget (plus each scenario's deterministic skew-burst schedule):
     externalization gates on the confirm point, so every oracle must
     hold exactly as it does for the classic engine. *)
  Gg_par.Pool.with_pool ~jobs:0 (fun pool ->
      let report =
        Checker.check ~fast:true ~fastpath:true ~clock_skew_ms:10 ~pool
          ~base:0 ~seeds:50 ()
      in
      Alcotest.(check int) "seeds run" 50 report.Checker.seeds_run;
      Alcotest.(check int) "no violations" 0
        (List.length report.Checker.failures);
      Alcotest.(check bool) "commits happened" true
        (report.Checker.total_commits > 0))

let test_eocc_sweep_pool_parity () =
  (* The eocc sweep streams results in seed order, so the log is
     byte-identical at any pool width. *)
  let capture pool =
    let buf = Buffer.create 256 in
    let r =
      Checker.check
        ~log:(fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        ~fast:true ~fastpath:true ~clock_skew_ms:10 ~pool ~base:0 ~seeds:3 ()
    in
    (Buffer.contents buf, r)
  in
  let log1, r1 = capture Gg_par.Pool.seq in
  let log4, r4 =
    Gg_par.Pool.with_pool ~jobs:4 (fun pool -> capture pool)
  in
  Alcotest.(check string) "logs byte-identical at -j1 vs -j4" log1 log4;
  Alcotest.(check int) "same commits" r1.Checker.total_commits
    r4.Checker.total_commits;
  Alcotest.(check int) "same failures" (List.length r1.Checker.failures)
    (List.length r4.Checker.failures)

let test_fastpath_scenarios_pinned () =
  (* with_fastpath pins the knobs without redrawing the seed stream:
     the underlying scenario fields are untouched, only the pins and
     the appended skew-burst faults differ. *)
  for seed = 0 to 10 do
    let base = Scenario.generate ~fast:true seed in
    let s = Scenario.with_fastpath base ~clock_skew_ms:10 in
    Alcotest.(check bool) "fastpath pinned" true s.Scenario.fastpath;
    Alcotest.(check int) "skew budget pinned" 10 s.Scenario.clock_skew_ms;
    Alcotest.(check bool) "variant coerced to full engine" true
      (s.Scenario.variant = Params.Optimistic);
    Alcotest.(check int) "same workload draw" base.Scenario.seed s.Scenario.seed;
    Alcotest.(check int) "same node draw" base.Scenario.nodes s.Scenario.nodes;
    (* pinning twice is stable — the skew schedule is salted by seed,
       not drawn from ambient state *)
    let s' = Scenario.with_fastpath base ~clock_skew_ms:10 in
    Alcotest.(check string) "pin is a pure function of the seed"
      (Scenario.to_string s) (Scenario.to_string s')
  done

(* --- broken-watermark canary --- *)

let fastpath_run params =
  let profile =
    Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 2_000
  in
  Gg_harness.Driver.run_geogauss ~params ~connections:8
    ~topology:(Topology.china3 ())
    ~load:(Gg_workload.Ycsb.load profile)
    ~gen:(Gg_harness.Driver.ycsb_gens profile ~seed:11)
    ~warmup_ms:200 ~measure_ms:600 ~label:"clock-test" ()

let test_broken_watermark_canary () =
  (* A deliberately broken margin (speculate a full second early, long
     before remote write sets can have arrived) must be caught by the
     misprediction fallback: the counter fires, yet the run still
     commits — proving mispredicts cost wasted simulated work, never
     correctness. A healthy margin on the same workload confirms. *)
  let healthy = Params.with_fastpath Params.default true in
  let broken = { healthy with Params.fastpath_margin_us = -1_000_000 } in
  let r_h, x_h = fastpath_run healthy in
  let spec_h, confirms_h, _ = x_h.Gg_harness.Driver.fastpath in
  Alcotest.(check bool) "healthy run commits" true
    (r_h.Gg_harness.Result.committed > 0);
  Alcotest.(check bool) "healthy run speculates" true (spec_h > 0);
  Alcotest.(check bool) "healthy run confirms" true (confirms_h > 0);
  let r_b, x_b = fastpath_run broken in
  let spec_b, _, mispredicts_b = x_b.Gg_harness.Driver.fastpath in
  Alcotest.(check bool) "broken run still commits" true
    (r_b.Gg_harness.Result.committed > 0);
  Alcotest.(check bool) "broken run speculates" true (spec_b > 0);
  Alcotest.(check bool) "broken watermark detected as mispredictions" true
    (mispredicts_b > 0)

let () =
  Alcotest.run "gg_clock"
    [
      ( "offsets",
        [
          QCheck_alcotest.to_alcotest prop_offsets_deterministic;
          QCheck_alcotest.to_alcotest prop_offsets_within_bound;
          QCheck_alcotest.to_alcotest prop_bound_survives_skew_steps;
        ] );
      ( "watermark",
        [
          QCheck_alcotest.to_alcotest prop_watermark_monotone;
          Alcotest.test_case "deadline margin + determinism" `Quick
            test_deadline_monotone_in_margin;
        ] );
      ( "eocc",
        [
          Alcotest.test_case "50 fast seeds, five oracles" `Slow
            test_eocc_seeds_pass;
          Alcotest.test_case "byte-identical log across pool -j" `Slow
            test_eocc_sweep_pool_parity;
          Alcotest.test_case "with_fastpath pins, no redraw" `Quick
            test_fastpath_scenarios_pinned;
          Alcotest.test_case "broken watermark canary" `Slow
            test_broken_watermark_canary;
        ] );
    ]
