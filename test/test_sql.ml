(* Tests for the SQL engine: lexer, parser, planner, executor semantics,
   read/write set accumulation, read-your-writes. *)

open Gg_storage
open Gg_sql

let v_int i = Value.Int i
let v_str s = Value.Str s

let fixture () =
  let db = Db.create () in
  let accounts =
    Db.create_table db ~name:"accounts"
      ~columns:
        [
          { Schema.name = "id"; ty = Schema.TInt };
          { name = "owner"; ty = TStr };
          { name = "balance"; ty = TInt };
          { name = "region"; ty = TStr };
        ]
      ~key:[ "id" ]
  in
  List.iter (Table.load accounts)
    [
      [| v_int 1; v_str "alice"; v_int 100; v_str "north" |];
      [| v_int 2; v_str "bob"; v_int 200; v_str "south" |];
      [| v_int 3; v_str "carol"; v_int 300; v_str "north" |];
      [| v_int 4; v_str "dave"; v_int 400; v_str "east" |];
    ];
  let regions =
    Db.create_table db ~name:"regions"
      ~columns:
        [ { Schema.name = "rname"; ty = Schema.TStr }; { name = "tz"; ty = TInt } ]
      ~key:[ "rname" ]
  in
  List.iter (Table.load regions)
    [
      [| v_str "north"; v_int 8 |];
      [| v_str "south"; v_int 7 |];
      [| v_str "east"; v_int 9 |];
    ];
  db

let exec_ok ctx sql ?(params = [||]) () =
  match Executor.exec_sql ctx sql ~params with
  | Ok r -> r
  | Error m -> Alcotest.failf "unexpected SQL error on %S: %s" sql m

let contains_sub hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let exec_err ctx sql ?(params = [||]) () =
  match Executor.exec_sql ctx sql ~params with
  | Ok _ -> Alcotest.failf "expected error on %S" sql
  | Error m -> m

(* --- Lexer --- *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "SELECT a, b FROM t WHERE x <= 'it''s' AND y <> 3.5" in
  Alcotest.(check int) "count" 15 (List.length toks);
  Alcotest.(check bool) "keywords lowercased" true
    (List.exists (fun t -> t = Lexer.Ident "select") toks);
  Alcotest.(check bool) "string escape" true
    (List.exists (fun t -> t = Lexer.Str_lit "it's") toks);
  Alcotest.(check bool) "float" true
    (List.exists (fun t -> t = Lexer.Float_lit 3.5) toks)

let test_lexer_params () =
  let toks = Lexer.tokenize "? ?" in
  Alcotest.(check int) "two params + eof" 3 (List.length toks)

let test_lexer_error () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "select @");
       false
     with Lexer.Lex_error _ -> true)

(* --- Parser --- *)

let test_parse_select () =
  match Parser.parse "SELECT id, balance FROM accounts WHERE id = 1" with
  | Ast.Select s ->
    Alcotest.(check int) "projs" 2 (List.length s.projs);
    Alcotest.(check string) "table" "accounts" s.from.table;
    Alcotest.(check bool) "where" true (s.where <> None)
  | _ -> Alcotest.fail "not a select"

let test_parse_order_limit () =
  match Parser.parse "SELECT * FROM t ORDER BY a DESC, b LIMIT 5" with
  | Ast.Select s ->
    Alcotest.(check int) "order items" 2 (List.length s.order_by);
    Alcotest.(check bool) "limit" true (s.limit = Some 5);
    (match s.order_by with
    | (_, Ast.Desc) :: (_, Ast.Asc) :: _ -> ()
    | _ -> Alcotest.fail "directions")
  | _ -> Alcotest.fail "not a select"

let test_parse_join () =
  match
    Parser.parse
      "SELECT a.id FROM accounts a JOIN regions r ON a.region = r.rname"
  with
  | Ast.Select s ->
    Alcotest.(check bool) "join present" true (s.join <> None);
    Alcotest.(check bool) "alias" true (s.from.alias = Some "a")
  | _ -> Alcotest.fail "not a select"

let test_parse_insert () =
  match Parser.parse "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Ast.Insert { rows; cols; _ } ->
    Alcotest.(check int) "rows" 2 (List.length rows);
    Alcotest.(check bool) "cols" true (cols = Some [ "a"; "b" ])
  | _ -> Alcotest.fail "not an insert"

let test_parse_update_delete () =
  (match Parser.parse "UPDATE t SET a = a + 1, b = ? WHERE k = 3" with
  | Ast.Update { sets; where; _ } ->
    Alcotest.(check int) "sets" 2 (List.length sets);
    Alcotest.(check bool) "where" true (where <> None)
  | _ -> Alcotest.fail "not an update");
  match Parser.parse "DELETE FROM t WHERE k = 1 OR k = 2" with
  | Ast.Delete _ -> ()
  | _ -> Alcotest.fail "not a delete"

let test_parse_create () =
  match
    Parser.parse
      "CREATE TABLE users (id INT, name VARCHAR(20), score FLOAT, PRIMARY KEY (id))"
  with
  | Ast.Create_table { name; cols; key } ->
    Alcotest.(check string) "name" "users" name;
    Alcotest.(check int) "cols" 3 (List.length cols);
    Alcotest.(check (list string)) "key" [ "id" ] key
  | _ -> Alcotest.fail "not a create"

let test_parse_params_numbering () =
  match Parser.parse "SELECT * FROM t WHERE a = ? AND b = ?" with
  | Ast.Select { where = Some w; _ } ->
    let rec params acc = function
      | Ast.Param i -> i :: acc
      | Ast.Binop (_, a, b) -> params (params acc a) b
      | Ast.Unop (_, e) -> params acc e
      | Ast.In_list (e, items) -> List.fold_left params (params acc e) items
      | Ast.Between (e, lo, hi) -> params (params (params acc e) lo) hi
      | Ast.Like (e, p) -> params (params acc e) p
      | Ast.Const _ | Ast.Col _ -> acc
    in
    Alcotest.(check (list int)) "0-based in order" [ 0; 1 ]
      (List.sort compare (params [] w))
  | _ -> Alcotest.fail "bad parse"

let test_parse_errors () =
  Alcotest.(check bool) "garbage" true (Result.is_error (Parser.parse_result "FOO BAR"));
  Alcotest.(check bool) "trailing" true
    (Result.is_error (Parser.parse_result "SELECT * FROM t WHERE"));
  Alcotest.(check bool) "unbalanced" true
    (Result.is_error (Parser.parse_result "SELECT (a FROM t"))

(* --- Plan --- *)

let access_of sql =
  let db = fixture () in
  let tbl = Db.get_table_exn db "accounts" in
  match Parser.parse sql with
  | Ast.Select s -> Plan.access_path (Table.schema tbl) ~names:[ "accounts" ] s.where
  | _ -> Alcotest.fail "expected select"

let test_plan_point () =
  match access_of "SELECT * FROM accounts WHERE id = 3" with
  | Plan.Point _ -> ()
  | a -> Alcotest.failf "expected point, got %s" (Plan.describe a)

let test_plan_point_param () =
  match access_of "SELECT * FROM accounts WHERE id = ? AND balance > 10" with
  | Plan.Point _ -> ()
  | a -> Alcotest.failf "expected point, got %s" (Plan.describe a)

let test_plan_full () =
  (match access_of "SELECT * FROM accounts WHERE balance = 100" with
  | Plan.Full -> ()
  | a -> Alcotest.failf "expected full, got %s" (Plan.describe a));
  match access_of "SELECT * FROM accounts WHERE id > 2" with
  | Plan.Full -> ()
  | a -> Alcotest.failf "expected full, got %s" (Plan.describe a)

let test_plan_no_col_equality () =
  (* id = id is not an index condition. *)
  match access_of "SELECT * FROM accounts WHERE id = id" with
  | Plan.Full -> ()
  | a -> Alcotest.failf "expected full, got %s" (Plan.describe a)

(* --- Executor: SELECT --- *)

let test_select_point () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT owner, balance FROM accounts WHERE id = 2" () in
  Alcotest.(check int) "one row" 1 (List.length r.rows);
  match r.rows with
  | [ [| Value.Str "bob"; Value.Int 200 |] ] -> ()
  | _ -> Alcotest.fail "wrong row"

let test_select_filter () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT id FROM accounts WHERE balance >= 200 AND region = 'north'" () in
  Alcotest.(check int) "one row" 1 (List.length r.rows);
  match r.rows with
  | [ [| Value.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "wrong row"

let test_select_order_by_limit () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT id FROM accounts ORDER BY balance DESC LIMIT 2" () in
  match r.rows with
  | [ [| Value.Int 4 |]; [| Value.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "wrong order/limit"

let test_select_star_columns () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT * FROM accounts WHERE id = 1" () in
  Alcotest.(check (list string)) "columns" [ "id"; "owner"; "balance"; "region" ] r.columns

let test_select_aggregates () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r =
    exec_ok ctx
      "SELECT COUNT(*), SUM(balance), MIN(balance), MAX(balance), AVG(balance) FROM accounts"
      ()
  in
  match r.rows with
  | [ [| Value.Int 4; Value.Int 1000; Value.Int 100; Value.Int 400; Value.Float avg |] ] ->
    Alcotest.(check (float 1e-9)) "avg" 250.0 avg
  | _ -> Alcotest.fail "wrong aggregates"

let test_select_agg_with_filter () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT COUNT(*) FROM accounts WHERE region = 'north'" () in
  match r.rows with
  | [ [| Value.Int 2 |] ] -> ()
  | _ -> Alcotest.fail "wrong count"

let test_select_join () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r =
    exec_ok ctx
      "SELECT a.owner, r.tz FROM accounts a JOIN regions r ON a.region = r.rname WHERE a.id = 1"
      ()
  in
  match r.rows with
  | [ [| Value.Str "alice"; Value.Int 8 |] ] -> ()
  | _ -> Alcotest.fail "wrong join result"

let test_select_join_cardinality () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r =
    exec_ok ctx
      "SELECT a.id FROM accounts a JOIN regions r ON a.region = r.rname" ()
  in
  Alcotest.(check int) "all accounts matched" 4 (List.length r.rows)

let test_select_params () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r =
    exec_ok ctx "SELECT owner FROM accounts WHERE id = ?" ~params:[| v_int 3 |] ()
  in
  match r.rows with
  | [ [| Value.Str "carol" |] ] -> ()
  | _ -> Alcotest.fail "param binding"

let test_select_missing_param () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let m = exec_err ctx "SELECT * FROM accounts WHERE id = ?" () in
  Alcotest.(check bool) "mentions parameter" true
    (String.length m > 0)

let test_select_group_by () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r =
    exec_ok ctx
      "SELECT region, COUNT(*), SUM(balance) FROM accounts GROUP BY region ORDER BY region"
      ()
  in
  Alcotest.(check int) "three groups" 3 (List.length r.rows);
  (match r.rows with
  | [| Value.Str "east"; Value.Int 1; Value.Int 400 |]
    :: [| Value.Str "north"; Value.Int 2; Value.Int 400 |]
    :: [| Value.Str "south"; Value.Int 1; Value.Int 200 |] :: [] -> ()
  | _ -> Alcotest.fail "wrong groups")

let test_select_group_by_no_agg () =
  (* GROUP BY without aggregates deduplicates. *)
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT region FROM accounts GROUP BY region" () in
  Alcotest.(check int) "distinct regions" 3 (List.length r.rows)

let test_select_agg_empty_table () =
  (* No GROUP BY, no matches: SQL still returns a single row. *)
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT COUNT(*), SUM(balance) FROM accounts WHERE id = 999" () in
  match r.rows with
  | [ [| Value.Int 0; Value.Null |] ] -> ()
  | _ -> Alcotest.fail "expected one zero row"

let test_agg_misuse_is_error_not_crash () =
  (* Malformed aggregate queries must surface as [Error _] from
     [exec_sql] — these paths were historically [assert false]. *)
  let ctx = Executor.Ctx.create (fixture ()) in
  let m = exec_err ctx "SELECT *, COUNT(*) FROM accounts" () in
  Alcotest.(check bool) "star+agg names aggregates" true
    (contains_sub m "aggregate");
  let m = exec_err ctx "SELECT owner, COUNT(*) FROM accounts" () in
  Alcotest.(check bool) "plain+agg without GROUP BY rejected" true
    (contains_sub m "GROUP BY" || contains_sub m "aggregate");
  (* The expression evaluator's misuse paths are proper errors too. *)
  let m = exec_err ctx "SELECT id + owner FROM accounts" () in
  Alcotest.(check bool) "non-numeric arithmetic rejected" true
    (contains_sub m "arithmetic");
  let m = exec_err ctx "SELECT balance / 0 FROM accounts" () in
  Alcotest.(check bool) "division by zero rejected" true
    (contains_sub m "division")

let test_select_in_list () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT id FROM accounts WHERE id IN (1, 3, 99) ORDER BY id" () in
  (match r.rows with
  | [ [| Value.Int 1 |]; [| Value.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "IN list");
  let r = exec_ok ctx "SELECT id FROM accounts WHERE region NOT IN ('north') ORDER BY id" () in
  Alcotest.(check int) "not in" 2 (List.length r.rows)

let test_select_between () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r =
    exec_ok ctx "SELECT id FROM accounts WHERE balance BETWEEN 150 AND 350 ORDER BY id" ()
  in
  match r.rows with
  | [ [| Value.Int 2 |]; [| Value.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "BETWEEN"

let test_select_like () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT owner FROM accounts WHERE owner LIKE 'a%'" () in
  (match r.rows with
  | [ [| Value.Str "alice" |] ] -> ()
  | _ -> Alcotest.fail "LIKE prefix");
  let r = exec_ok ctx "SELECT owner FROM accounts WHERE owner LIKE '%a%' ORDER BY owner" () in
  Alcotest.(check int) "contains a" 3 (List.length r.rows);
  let r = exec_ok ctx "SELECT owner FROM accounts WHERE owner LIKE '_ob'" () in
  (match r.rows with
  | [ [| Value.Str "bob" |] ] -> ()
  | _ -> Alcotest.fail "LIKE underscore");
  let m = exec_err ctx "SELECT owner FROM accounts WHERE balance LIKE 'x'" () in
  Alcotest.(check bool) "type error" true (contains_sub m "LIKE")

let test_select_expression_projs () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "SELECT balance * 2 + 1 AS x FROM accounts WHERE id = 1" () in
  Alcotest.(check (list string)) "alias" [ "x" ] r.columns;
  match r.rows with
  | [ [| Value.Int 201 |] ] -> ()
  | _ -> Alcotest.fail "arithmetic"

(* --- Executor: reads --- *)

let test_read_set_recorded () =
  let ctx = Executor.Ctx.create (fixture ()) in
  ignore (exec_ok ctx "SELECT * FROM accounts WHERE id = 1" ());
  ignore (exec_ok ctx "SELECT * FROM accounts WHERE id = 2" ());
  let rs = Executor.Ctx.read_set ctx in
  Alcotest.(check int) "two reads" 2 (List.length rs);
  Alcotest.(check bool) "tables" true
    (List.for_all (fun r -> r.Executor.r_table = "accounts") rs)

let test_read_set_first_observation () =
  let ctx = Executor.Ctx.create (fixture ()) in
  ignore (exec_ok ctx "SELECT * FROM accounts WHERE id = 1" ());
  ignore (exec_ok ctx "SELECT * FROM accounts WHERE id = 1" ());
  Alcotest.(check int) "dedup" 1 (List.length (Executor.Ctx.read_set ctx))

let test_scan_records_matching_only () =
  let ctx = Executor.Ctx.create (fixture ()) in
  ignore (exec_ok ctx "SELECT * FROM accounts WHERE balance > 250" ());
  Alcotest.(check int) "only matching rows" 2
    (List.length (Executor.Ctx.read_set ctx))

(* --- Executor: writes --- *)

let test_update_buffered () =
  let db = fixture () in
  let ctx = Executor.Ctx.create db in
  let r = exec_ok ctx "UPDATE accounts SET balance = balance + 50 WHERE id = 1" () in
  Alcotest.(check int) "one affected" 1 r.affected;
  (* The base table is untouched until write-back. *)
  let tbl = Db.get_table_exn db "accounts" in
  let e = Option.get (Table.find_live tbl (Value.encode_key [| v_int 1 |])) in
  Alcotest.(check bool) "base unchanged" true (Value.equal e.Table.data.(2) (v_int 100));
  (* But the txn sees its own write. *)
  let r = exec_ok ctx "SELECT balance FROM accounts WHERE id = 1" () in
  (match r.rows with
  | [ [| Value.Int 150 |] ] -> ()
  | _ -> Alcotest.fail "read-your-writes");
  let ws = Executor.Ctx.writeset_records ctx in
  Alcotest.(check int) "one record" 1 (List.length ws);
  match ws with
  | [ { Gg_crdt.Writeset.op = Gg_crdt.Writeset.Update; data; _ } ] ->
    Alcotest.(check bool) "new balance" true (Value.equal data.(2) (v_int 150))
  | _ -> Alcotest.fail "bad writeset"

let test_update_twice_coalesces () =
  let ctx = Executor.Ctx.create (fixture ()) in
  ignore (exec_ok ctx "UPDATE accounts SET balance = 1 WHERE id = 1" ());
  ignore (exec_ok ctx "UPDATE accounts SET balance = 2 WHERE id = 1" ());
  let ws = Executor.Ctx.writeset_records ctx in
  Alcotest.(check int) "coalesced" 1 (List.length ws);
  match ws with
  | [ { Gg_crdt.Writeset.data; _ } ] ->
    Alcotest.(check bool) "last value" true (Value.equal data.(2) (v_int 2))
  | _ -> Alcotest.fail "bad writeset"

let test_update_key_col_rejected () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let m = exec_err ctx "UPDATE accounts SET id = 9 WHERE id = 1" () in
  Alcotest.(check bool) "mentions key" true (contains_sub m "key")

let test_insert_visible_to_self () =
  let ctx = Executor.Ctx.create (fixture ()) in
  ignore
    (exec_ok ctx "INSERT INTO accounts VALUES (10, 'eve', 500, 'west')" ());
  let r = exec_ok ctx "SELECT owner FROM accounts WHERE id = 10" () in
  (match r.rows with
  | [ [| Value.Str "eve" |] ] -> ()
  | _ -> Alcotest.fail "insert not visible");
  (* Visible in scans too. *)
  let r = exec_ok ctx "SELECT COUNT(*) FROM accounts" () in
  match r.rows with
  | [ [| Value.Int 5 |] ] -> ()
  | _ -> Alcotest.fail "scan misses insert"

let test_insert_duplicate () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let m = exec_err ctx "INSERT INTO accounts VALUES (1, 'dup', 0, 'x')" () in
  Alcotest.(check bool) "duplicate error" true (contains_sub m "duplicate")

let test_insert_with_columns () =
  let ctx = Executor.Ctx.create (fixture ()) in
  ignore
    (exec_ok ctx "INSERT INTO accounts (id, owner, balance, region) VALUES (?, ?, ?, ?)"
       ~params:[| v_int 11; v_str "frank"; v_int 5; v_str "west" |]
       ());
  let ws = Executor.Ctx.writeset_records ctx in
  Alcotest.(check int) "record" 1 (List.length ws)

let test_delete_then_scan () =
  let ctx = Executor.Ctx.create (fixture ()) in
  let r = exec_ok ctx "DELETE FROM accounts WHERE region = 'north'" () in
  Alcotest.(check int) "two deleted" 2 r.affected;
  let r = exec_ok ctx "SELECT COUNT(*) FROM accounts" () in
  (match r.rows with
  | [ [| Value.Int 2 |] ] -> ()
  | _ -> Alcotest.fail "delete not visible");
  let ws = Executor.Ctx.writeset_records ctx in
  Alcotest.(check int) "two delete records" 2 (List.length ws);
  Alcotest.(check bool) "ops are delete" true
    (List.for_all (fun r -> r.Gg_crdt.Writeset.op = Gg_crdt.Writeset.Delete) ws)

let test_insert_then_delete_cancels () =
  let ctx = Executor.Ctx.create (fixture ()) in
  ignore (exec_ok ctx "INSERT INTO accounts VALUES (20, 'tmp', 0, 'x')" ());
  ignore (exec_ok ctx "DELETE FROM accounts WHERE id = 20" ());
  Alcotest.(check int) "no net writes" 0
    (List.length (Executor.Ctx.writeset_records ctx));
  Alcotest.(check bool) "has_writes false" false (Executor.Ctx.has_writes ctx)

let test_update_then_delete () =
  let ctx = Executor.Ctx.create (fixture ()) in
  ignore (exec_ok ctx "UPDATE accounts SET balance = 5 WHERE id = 1" ());
  ignore (exec_ok ctx "DELETE FROM accounts WHERE id = 1" ());
  match Executor.Ctx.writeset_records ctx with
  | [ { Gg_crdt.Writeset.op = Gg_crdt.Writeset.Delete; _ } ] -> ()
  | _ -> Alcotest.fail "should collapse to one delete"

let test_create_index_and_probe () =
  let db = fixture () in
  let ctx = Executor.Ctx.create db in
  ignore (exec_ok ctx "CREATE INDEX accounts_by_region ON accounts (region)" ());
  (* planner picks the index *)
  let tbl = Db.get_table_exn db "accounts" in
  (match
     Parser.parse "SELECT id FROM accounts WHERE region = 'north'"
   with
  | Ast.Select s -> (
    match Plan.access_path_table tbl ~names:[ "accounts" ] s.where with
    | Plan.Sec_index ("accounts_by_region", _) -> ()
    | a -> Alcotest.failf "expected index probe, got %s" (Plan.describe a))
  | _ -> Alcotest.fail "parse");
  let r = exec_ok ctx "SELECT id FROM accounts WHERE region = 'north' ORDER BY id" () in
  (match r.rows with
  | [ [| Value.Int 1 |]; [| Value.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "index probe results");
  (* updates keep the index fresh through the OCC write path: here just
     check read-your-writes via the probe *)
  ignore (exec_ok ctx "INSERT INTO accounts VALUES (7, 'gus', 70, 'north')" ());
  let r = exec_ok ctx "SELECT COUNT(*) FROM accounts WHERE region = 'north'" () in
  match r.rows with
  | [ [| Value.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "own insert visible through index path"

let test_create_table_dml () =
  let db = Db.create () in
  let ctx = Executor.Ctx.create db in
  ignore (exec_ok ctx "CREATE TABLE t (k INT, v STRING, PRIMARY KEY (k))" ());
  ignore (exec_ok ctx "INSERT INTO t VALUES (1, 'one')" ());
  let r = exec_ok ctx "SELECT v FROM t WHERE k = 1" () in
  match r.rows with
  | [ [| Value.Str "one" |] ] -> ()
  | _ -> Alcotest.fail "create+insert+select"

let test_type_errors () =
  let ctx = Executor.Ctx.create (fixture ()) in
  Alcotest.(check bool) "insert type error" true
    (String.length (exec_err ctx "INSERT INTO accounts VALUES ('x', 'y', 1, 'z')" ()) > 0);
  Alcotest.(check bool) "unknown table" true
    (String.length (exec_err ctx "SELECT * FROM nope" ()) > 0);
  Alcotest.(check bool) "unknown column" true
    (String.length (exec_err ctx "SELECT nope FROM accounts" ()) > 0);
  Alcotest.(check bool) "arith on string" true
    (String.length (exec_err ctx "SELECT owner + 1 FROM accounts WHERE id = 1" ()) > 0)

let () =
  Alcotest.run "gg_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "params" `Quick test_lexer_params;
          Alcotest.test_case "error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "select" `Quick test_parse_select;
          Alcotest.test_case "order/limit" `Quick test_parse_order_limit;
          Alcotest.test_case "join" `Quick test_parse_join;
          Alcotest.test_case "insert" `Quick test_parse_insert;
          Alcotest.test_case "update/delete" `Quick test_parse_update_delete;
          Alcotest.test_case "create" `Quick test_parse_create;
          Alcotest.test_case "param numbering" `Quick test_parse_params_numbering;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "plan",
        [
          Alcotest.test_case "point" `Quick test_plan_point;
          Alcotest.test_case "point with param" `Quick test_plan_point_param;
          Alcotest.test_case "full" `Quick test_plan_full;
          Alcotest.test_case "col=col not indexable" `Quick test_plan_no_col_equality;
        ] );
      ( "select",
        [
          Alcotest.test_case "point lookup" `Quick test_select_point;
          Alcotest.test_case "filter" `Quick test_select_filter;
          Alcotest.test_case "order by / limit" `Quick test_select_order_by_limit;
          Alcotest.test_case "star columns" `Quick test_select_star_columns;
          Alcotest.test_case "aggregates" `Quick test_select_aggregates;
          Alcotest.test_case "aggregate misuse is an error" `Quick
            test_agg_misuse_is_error_not_crash;
          Alcotest.test_case "agg with filter" `Quick test_select_agg_with_filter;
          Alcotest.test_case "join" `Quick test_select_join;
          Alcotest.test_case "join cardinality" `Quick test_select_join_cardinality;
          Alcotest.test_case "params" `Quick test_select_params;
          Alcotest.test_case "missing param" `Quick test_select_missing_param;
          Alcotest.test_case "expression projections" `Quick test_select_expression_projs;
          Alcotest.test_case "group by" `Quick test_select_group_by;
          Alcotest.test_case "group by without agg" `Quick test_select_group_by_no_agg;
          Alcotest.test_case "agg over empty match" `Quick test_select_agg_empty_table;
          Alcotest.test_case "IN list" `Quick test_select_in_list;
          Alcotest.test_case "BETWEEN" `Quick test_select_between;
          Alcotest.test_case "LIKE" `Quick test_select_like;
        ] );
      ( "read set",
        [
          Alcotest.test_case "recorded" `Quick test_read_set_recorded;
          Alcotest.test_case "first observation kept" `Quick test_read_set_first_observation;
          Alcotest.test_case "scan records matches" `Quick test_scan_records_matching_only;
        ] );
      ( "writes",
        [
          Alcotest.test_case "update buffered" `Quick test_update_buffered;
          Alcotest.test_case "update coalesces" `Quick test_update_twice_coalesces;
          Alcotest.test_case "key update rejected" `Quick test_update_key_col_rejected;
          Alcotest.test_case "insert visible to self" `Quick test_insert_visible_to_self;
          Alcotest.test_case "insert duplicate" `Quick test_insert_duplicate;
          Alcotest.test_case "insert with columns" `Quick test_insert_with_columns;
          Alcotest.test_case "delete then scan" `Quick test_delete_then_scan;
          Alcotest.test_case "insert+delete cancels" `Quick test_insert_then_delete_cancels;
          Alcotest.test_case "update+delete collapses" `Quick test_update_then_delete;
          Alcotest.test_case "create table + dml" `Quick test_create_table_dml;
          Alcotest.test_case "create index + probe" `Quick test_create_index_and_probe;
          Alcotest.test_case "type errors" `Quick test_type_errors;
        ] );
    ]
