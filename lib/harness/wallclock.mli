(** Deterministic scenario bodies for the wall-clock benchmark suite.

    The wall-clock suite measures how fast the simulator chews through a
    fixed seeded scenario. The scenario itself is fully deterministic —
    same events, merged records, encode passes, commits at any pool
    width or repetition count — so it lives here, Unix-free; the
    benchmark binary wraps {!scenario.run} with a monotonic/wall timer
    and owns all timing-derived output. *)

type counts = {
  events : int;  (** simulator events processed *)
  merged : int;  (** records through DeltaCRDTMerge phase A, all nodes *)
  encodes : int;  (** actual encode+gzip passes (wire-cache misses) *)
  committed : int;
  aborted : int;
}

type scenario = {
  name : string;
  sim_ms : int;
  run : tracing:bool -> unit -> counts;
      (** Build a fresh cluster and drive it [sim_ms] simulated ms.
          Self-contained (own Sim/Db/RNGs; the encode counter is
          domain-local, reset and read inside the call), so concurrent
          calls from pool tasks don't interfere and every call returns
          identical counts. *)
}

val scenarios : fast:bool -> scenario list
(** The suite: YCSB-MC/china3 and TPC-C-small/china3. *)

val traced_scenario : fast:bool -> scenario
(** The YCSB-MC scenario again — run it with [~tracing:true] against
    the plain run to measure tracing overhead. *)
