module Topology = Gg_sim.Topology
module Ycsb = Gg_workload.Ycsb
module Tpcc = Gg_workload.Tpcc
module Params = Geogauss.Params
module Tablefmt = Gg_util.Tablefmt
module Stats = Gg_util.Stats
module Engine = Gg_engines.Engine
module Pool = Gg_par.Pool

let f = Tablefmt.fmt_f

(* --- shared settings --- *)

type setting = {
  ycsb_records : int;
  ycsb_connections : int;
  tpcc_cfg : Tpcc.config;
  tpcc_connections : int;
  warmup_ms : int;
  measure_ms : int;
}

let setting ~fast =
  if fast then
    {
      ycsb_records = 5_000;
      ycsb_connections = 32;
      tpcc_cfg = { Tpcc.default with Tpcc.warehouses = 8 };
      tpcc_connections = 16;
      warmup_ms = 400;
      measure_ms = 1_000;
    }
  else
    {
      ycsb_records = 100_000;
      ycsb_connections = 256;
      tpcc_cfg = Tpcc.default;
      tpcc_connections = 40;
      (* 120 total over 3 nodes, as in the paper *)
      warmup_ms = 1_000;
      measure_ms = 4_000;
    }

let ycsb_profile s base = Ycsb.with_records base s.ycsb_records

let engine_cfg = Engine.default_config

(* GeoGauss variants run through the full cluster. *)
let geo_variant s ?(params = Params.default) ~variant ~label ~load ~gen
    ~connections () =
  let params = Params.with_variant params variant in
  let r, _ =
    Driver.run_geogauss ~params ~connections ~topology:(Topology.china3 ())
      ~load ~gen ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms ~label ()
  in
  r

let engine_run s (module E : Engine.S) ~gen ~connections ~label =
  Driver.run_engine
    (module E)
    ~config:engine_cfg ~topology:(Topology.china3 ()) ~gen ~connections
    ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms ~label ()

(* Every figure below is phrased the same way: build the full list of
   grid-point thunks (one thunk = one self-contained cluster simulation,
   nothing printed inside), fan them out through the Domain pool in one
   wave, then assemble tables from the results in submission order. The
   rendered output is byte-identical at every pool width; [Pool.seq]
   reproduces the old sequential loops exactly. *)

(* --- Fig 5: cross-system comparison --- *)

let fig5_workloads s =
  [
    ("YCSB-RO", `Ycsb (ycsb_profile s Ycsb.read_only));
    ("YCSB-MC", `Ycsb (ycsb_profile s Ycsb.medium_contention));
    ("YCSB-HC", `Ycsb (ycsb_profile s Ycsb.high_contention));
    ("TPC-C", `Tpcc s.tpcc_cfg);
  ]

let fig5_tables pool s =
  let groups =
    List.map
      (fun (wname, workload) ->
        let gen, load, connections =
          match workload with
          | `Ycsb p -> (Driver.ycsb_gens p ~seed:11, Ycsb.load p, s.ycsb_connections)
          | `Tpcc cfg -> (Driver.tpcc_gens cfg ~seed:11, Tpcc.load cfg, s.tpcc_connections)
        in
        let is_tpcc = match workload with `Tpcc _ -> true | `Ycsb _ -> false in
        let geo variant label () =
          geo_variant s ~variant ~label ~load ~gen ~connections ()
        in
        let eng (module E : Engine.S) label () =
          engine_run s (module E) ~gen ~connections ~label
        in
        (* EOCC = the full cluster with the clock-assisted fast path on,
           at the default 5 ms skew bound (DESIGN.md §14). *)
        let eocc label () =
          geo_variant s
            ~params:(Params.with_fastpath Params.default true)
            ~variant:Params.Optimistic ~label ~load ~gen ~connections ()
        in
        let runs =
          [
            geo Params.Optimistic "GeoGauss"; geo Params.Sync_exec "GeoG-S";
            geo Params.Async_merge "GeoG-A"; eocc "EOCC";
            eng (module Gg_engines.Crdb) "CRDB";
            eng (module Gg_engines.Calvin) "Calvin";
            eng (module Gg_engines.Aria) "Aria";
          ]
          @
          if is_tpcc then []
          else
            [
              eng (module Gg_engines.Calvinfs) "CalvinFS";
              eng (module Gg_engines.Qstore) "Q-Store";
              eng (module Gg_engines.Slog) "SLOG";
              eng (module Gg_engines.Anna) "Anna";
            ]
        in
        (wname, runs))
      (fig5_workloads s)
  in
  let results = Pool.run pool (List.concat_map snd groups) in
  let remaining = ref results in
  let take n =
    let taken = List.filteri (fun i _ -> i < n) !remaining in
    remaining := List.filteri (fun i _ -> i >= n) !remaining;
    taken
  in
  List.map
    (fun (wname, runs) ->
      let table =
        Tablefmt.create
          ~title:(Printf.sprintf "Fig 5 — %s (3 regions, China)" wname)
          ~headers:Result.headers
      in
      List.iter (fun r -> Tablefmt.add_row table (Result.row r))
        (take (List.length runs));
      Tablefmt.render table)
    groups

(* --- Table 2: phase breakdown (TPC-C) --- *)

let table2_tables pool s =
  let gen = Driver.tpcc_gens s.tpcc_cfg ~seed:21 in
  let load = Tpcc.load s.tpcc_cfg in
  let table =
    Tablefmt.create
      ~title:"Table 2 — Runtime breakdown of a committed TPC-C transaction (ms)"
      ~headers:[ "phase"; "GeoG-S"; "GeoG-A"; "GeoGauss" ]
  in
  let phases variant () =
    let params = Params.with_variant Params.default variant in
    let _, extra =
      Driver.run_geogauss ~params ~connections:s.tpcc_connections
        ~topology:(Topology.china3 ()) ~load ~gen ~warmup_ms:s.warmup_ms
        ~measure_ms:s.measure_ms
        ~label:(Params.variant_to_string variant)
        ()
    in
    (* average across the three nodes *)
    let n = List.length extra.Driver.phase_means in
    List.fold_left
      (fun (p, e, w, m, l) (_, (p', e', w', m', l')) ->
        (p +. p', e +. e', w +. w', m +. m', l +. l'))
      (0., 0., 0., 0., 0.) extra.Driver.phase_means
    |> fun (p, e, w, m, l) ->
    let d x = x /. float_of_int n /. 1000.0 in
    (d p, d e, d w, d m, d l)
  in
  match
    Pool.run pool
      [ phases Params.Sync_exec; phases Params.Async_merge;
        phases Params.Optimistic ]
  with
  | [ ps; pa; pg ] ->
    let row name get =
      Tablefmt.add_row table [ name; f (get ps); f (get pa); f (get pg) ]
    in
    row "SQL Parse" (fun (p, _, _, _, _) -> p);
    row "Execute" (fun (_, e, _, _, _) -> e);
    row "Wait" (fun (_, _, w, _, _) -> w);
    row "Merge" (fun (_, _, _, m, _) -> m);
    row "Log" (fun (_, _, _, _, l) -> l);
    [ Tablefmt.render table ]
  | _ -> assert false

(* --- Fig 6: per-epoch behaviour --- *)

let fig6_tables pool s ~fast =
  let gen = Driver.tpcc_gens s.tpcc_cfg ~seed:31 in
  let load = Tpcc.load s.tpcc_cfg in
  let cells variant () =
    let params = Params.with_variant Params.default variant in
    let _, extra =
      Driver.run_geogauss ~params ~connections:s.tpcc_connections
        ~topology:(Topology.china3 ()) ~load ~gen ~warmup_ms:s.warmup_ms
        ~measure_ms:s.measure_ms
        ~label:(Params.variant_to_string variant)
        ()
    in
    extra.Driver.epoch_cells
  in
  let gg, gs =
    match Pool.run pool [ cells Params.Optimistic; cells Params.Sync_exec ] with
    | [ gg; gs ] -> (gg, gs)
    | _ -> assert false
  in
  let table =
    Tablefmt.create
      ~title:
        "Fig 6 — Committed txns and mean latency per epoch (TPC-C, node 0, \
         10 ms epochs)"
      ~headers:
        [ "epoch"; "GeoGauss commits"; "GeoGauss lat (ms)"; "GeoG-S commits";
          "GeoG-S lat (ms)" ]
  in
  let lookup cells e =
    match List.assoc_opt e cells with
    | Some (c : Geogauss.Metrics.epoch_cell) ->
      (c.Geogauss.Metrics.committed, Stats.Acc.mean c.Geogauss.Metrics.latency /. 1000.0)
    | None -> (0, 0.0)
  in
  let first =
    match gg with (e, _) :: _ -> e | [] -> 0
  in
  let n_epochs = if fast then 15 else 30 in
  for e = first to first + n_epochs - 1 do
    let c1, l1 = lookup gg e and c2, l2 = lookup gs e in
    Tablefmt.add_row table
      [ string_of_int e; string_of_int c1; f l1; string_of_int c2; f l2 ]
  done;
  [ Tablefmt.render table ]

(* --- Fig 7: long transactions --- *)

let fig7_tables pool s ~fast =
  let delays = if fast then [ 20 ] else [ 20; 100 ] in
  let fractions = [ 0.0; 0.02; 0.05; 0.1 ] in
  let profile delay_ms frac =
    Ycsb.with_long_txns
      (ycsb_profile s Ycsb.medium_contention)
      ~frac ~delay_us:(delay_ms * 1000)
  in
  let systems delay_ms =
    let geo frac () =
      let p = profile delay_ms frac in
      (geo_variant s ~variant:Params.Optimistic ~label:"GeoGauss"
         ~load:(Ycsb.load p)
         ~gen:(Driver.ycsb_gens p ~seed:41)
         ~connections:s.ycsb_connections ())
        .Result.tput
    in
    let eng (module E : Engine.S) frac () =
      let p = profile delay_ms frac in
      (engine_run s
         (module E)
         ~gen:(Driver.ycsb_gens p ~seed:41)
         ~connections:s.ycsb_connections ~label:E.name)
        .Result.tput
    in
    [
      ("GeoGauss", geo); ("Calvin", eng (module Gg_engines.Calvin));
      ("Aria", eng (module Gg_engines.Aria));
      ("CRDB", eng (module Gg_engines.Crdb));
    ]
  in
  (* One thunk per (delay, system, fraction) grid point; the slowdown
     ratios against the 0% baseline are computed after collection. *)
  let thunks =
    List.concat_map
      (fun delay_ms ->
        List.concat_map
          (fun (_, run_for) -> List.map run_for fractions)
          (systems delay_ms))
      delays
  in
  let tputs = ref (Pool.run pool thunks) in
  let take () =
    match !tputs with
    | t :: rest ->
      tputs := rest;
      t
    | [] -> assert false
  in
  List.map
    (fun delay_ms ->
      let table =
        Tablefmt.create
          ~title:
            (Printf.sprintf
               "Fig 7 — Throughput slowdown vs fraction of %d ms long txns \
                (YCSB-MC)"
               delay_ms)
          ~headers:
            ("system"
            :: List.map (fun fr -> Printf.sprintf "%.0f%%" (fr *. 100.)) fractions)
      in
      List.iter
        (fun (name, _) ->
          let row = List.map (fun _ -> take ()) fractions in
          let base = match row with b :: _ -> b | [] -> 1.0 in
          Tablefmt.add_row table
            (name
            :: List.map
                 (fun tput ->
                   Printf.sprintf "%.2fx" (tput /. Float.max 1.0 base))
                 row))
        (systems delay_ms);
      Tablefmt.render table)
    delays

(* --- Table 3: WAN traffic --- *)

let table3_tables pool s =
  let table =
    Tablefmt.create
      ~title:"Table 3 — Average WAN traffic per transaction (KB/txn, gzip'd)"
      ~headers:[ "system"; "YCSB-RO"; "YCSB-MC"; "YCSB-HC"; "TPC-C" ]
  in
  let per_workload run =
    List.map
      (fun (_, workload) ->
        let gen, load, connections =
          match workload with
          | `Ycsb p ->
            (Driver.ycsb_gens p ~seed:51, Ycsb.load p, s.ycsb_connections)
          | `Tpcc cfg ->
            (Driver.tpcc_gens cfg ~seed:51, Tpcc.load cfg, s.tpcc_connections)
        in
        fun () -> f (run ~gen ~load ~connections))
      (fig5_workloads s)
  in
  let geo_cells =
    per_workload (fun ~gen ~load ~connections ->
        (geo_variant s ~variant:Params.Optimistic ~label:"GeoGauss" ~load ~gen
           ~connections ())
          .Result.wan_kb_per_txn)
  in
  let calvin_cells =
    per_workload (fun ~gen ~load:_ ~connections ->
        (engine_run s (module Gg_engines.Calvin) ~gen ~connections
           ~label:"Calvin")
          .Result.wan_kb_per_txn)
  in
  let cells = Pool.run pool (geo_cells @ calvin_cells) in
  let geo_row = List.filteri (fun i _ -> i < 4) cells in
  let calvin_row = List.filteri (fun i _ -> i >= 4) cells in
  Tablefmt.add_row table ("GeoGauss" :: geo_row);
  Tablefmt.add_row table ("Calvin" :: calvin_row);
  [ Tablefmt.render table ]

(* --- Fig 8: epoch length --- *)

let fig8_tables pool s ~fast =
  let lengths = if fast then [ 1; 10; 50 ] else [ 1; 5; 10; 20; 50; 100; 200 ] in
  let workloads =
    [
      (let p = ycsb_profile s Ycsb.medium_contention in
       ( "YCSB-MC", Ycsb.load p, Driver.ycsb_gens p ~seed:61,
         s.ycsb_connections ));
      ( "TPC-C", Tpcc.load s.tpcc_cfg, Driver.tpcc_gens s.tpcc_cfg ~seed:61,
        s.tpcc_connections );
    ]
  in
  (* Each epoch length runs twice: plain GeoGauss and the eocc fast
     path (default 5 ms skew bound) — the speculative seal's win should
     persist across epoch lengths. *)
  let thunks =
    List.concat_map
      (fun (_, load, gen, connections) ->
        List.concat_map
          (fun ms ->
            let run params () =
              let r, _ =
                Driver.run_geogauss ~params ~connections
                  ~topology:(Topology.china3 ()) ~load ~gen
                  ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms
                  ~label:(string_of_int ms)
                  ()
              in
              r
            in
            [
              run (Params.with_epoch_ms Params.default ms);
              run
                (Params.with_epoch_ms
                   (Params.with_fastpath Params.default true)
                   ms);
            ])
          lengths)
      workloads
  in
  let results = ref (Pool.run pool thunks) in
  List.map
    (fun (wname, _, _, _) ->
      let table =
        Tablefmt.create
          ~title:(Printf.sprintf "Fig 8 — Effect of epoch length (%s)" wname)
          ~headers:
            [
              "epoch (ms)"; "tput (txn/s)"; "mean lat (ms)"; "p99 (ms)";
              "eocc tput"; "eocc mean lat"; "eocc p99";
            ]
      in
      List.iter
        (fun ms ->
          let r, e =
            match !results with
            | r :: e :: rest ->
              results := rest;
              (r, e)
            | _ -> assert false
          in
          Tablefmt.add_row table
            [
              string_of_int ms; f ~dec:0 r.Result.tput; f r.Result.mean_ms;
              f r.Result.p99_ms; f ~dec:0 e.Result.tput; f e.Result.mean_ms;
              f e.Result.p99_ms;
            ])
        lengths;
      Tablefmt.render table)
    workloads

(* --- Fig 9: isolation levels --- *)

let fig9_tables pool s =
  let isolations = [ Params.RC; Params.RR; Params.SI ] in
  let workloads =
    [
      (let p = ycsb_profile s Ycsb.medium_contention in
       ( "YCSB-MC", Ycsb.load p, Driver.ycsb_gens p ~seed:71,
         s.ycsb_connections ));
      ( "TPC-C", Tpcc.load s.tpcc_cfg, Driver.tpcc_gens s.tpcc_cfg ~seed:71,
        s.tpcc_connections );
    ]
  in
  let thunks =
    List.concat_map
      (fun (_, load, gen, connections) ->
        List.map
          (fun iso () ->
            let params = Params.with_isolation Params.default iso in
            let r, _ =
              Driver.run_geogauss ~params ~connections
                ~topology:(Topology.china3 ()) ~load ~gen ~warmup_ms:s.warmup_ms
                ~measure_ms:s.measure_ms
                ~label:(Params.isolation_to_string iso)
                ()
            in
            r)
          isolations)
      workloads
  in
  let results = ref (Pool.run pool thunks) in
  List.map
    (fun (wname, _, _, _) ->
      let table =
        Tablefmt.create
          ~title:(Printf.sprintf "Fig 9 — Isolation levels (%s)" wname)
          ~headers:
            [ "isolation"; "tput (txn/s)"; "mean lat (ms)"; "abort rate" ]
      in
      List.iter
        (fun iso ->
          let r = List.hd !results in
          results := List.tl !results;
          Tablefmt.add_row table
            [
              Params.isolation_to_string iso; f ~dec:0 r.Result.tput;
              f r.Result.mean_ms; f ~dec:3 r.Result.abort_rate;
            ])
        isolations;
      Tablefmt.render table)
    workloads

(* --- Fig 10: contention --- *)

let fig10_tables pool s ~fast =
  let thetas = if fast then [ 0.0; 0.8; 0.99 ] else [ 0.0; 0.2; 0.4; 0.6; 0.8; 0.9; 0.99 ] in
  let mixes = [ ("80/20", Ycsb.medium_contention); ("50/50", Ycsb.high_contention) ] in
  let thunks =
    List.concat_map
      (fun (_, base) ->
        List.map
          (fun theta () ->
            let p = Ycsb.with_theta (ycsb_profile s base) theta in
            geo_variant s ~variant:Params.Optimistic
              ~label:(f theta)
              ~load:(Ycsb.load p)
              ~gen:(Driver.ycsb_gens p ~seed:81)
              ~connections:s.ycsb_connections ())
          thetas)
      mixes
  in
  let results = ref (Pool.run pool thunks) in
  List.map
    (fun (mix_name, _) ->
      let table =
        Tablefmt.create
          ~title:(Printf.sprintf "Fig 10 — Contention sweep (%s mix)" mix_name)
          ~headers:[ "theta"; "tput (txn/s)"; "mean lat (ms)"; "abort rate" ]
      in
      List.iter
        (fun theta ->
          let r = List.hd !results in
          results := List.tl !results;
          Tablefmt.add_row table
            [
              f theta; f ~dec:0 r.Result.tput; f r.Result.mean_ms;
              f ~dec:3 r.Result.abort_rate;
            ])
        thetas;
      Tablefmt.render table)
    mixes

(* --- Fig 11: scalability --- *)

let fig11_tables pool s ~fast =
  (* Smaller per-node population: up to 25 replicas live in one process. *)
  let p = Ycsb.with_records Ycsb.medium_contention (if fast then 2_000 else 20_000) in
  let connections = if fast then 16 else 128 in
  let run topo () =
    let r, _ =
      Driver.run_geogauss ~connections ~topology:topo ~load:(Ycsb.load p)
        ~gen:(Driver.ycsb_gens p ~seed:91) ~warmup_ms:s.warmup_ms
        ~measure_ms:s.measure_ms ~label:topo.Topology.name ()
    in
    r
  in
  let china_sizes = if fast then [ 3; 9 ] else [ 3; 6; 9; 12; 15 ] in
  let world_sizes = if fast then [ 5; 15 ] else [ 3; 5; 10; 15; 20; 25 ] in
  let sets =
    [
      ( "Fig 11a — Scalability, China regions (YCSB-MC)",
        List.map Topology.china china_sizes );
      ( "Fig 11b — Scalability, worldwide DCs (YCSB-MC)",
        List.map Topology.worldwide world_sizes );
    ]
  in
  let results =
    ref (Pool.run pool (List.concat_map (fun (_, topos) -> List.map run topos) sets))
  in
  List.map
    (fun (title, topos) ->
      let table =
        Tablefmt.create ~title
          ~headers:[ "replicas"; "tput (txn/s)"; "mean lat (ms)"; "p99 (ms)" ]
      in
      List.iter
        (fun topo ->
          let r = List.hd !results in
          results := List.tl !results;
          Tablefmt.add_row table
            [
              string_of_int (Topology.n_nodes topo); f ~dec:0 r.Result.tput;
              f r.Result.mean_ms; f r.Result.p99_ms;
            ])
        topos;
      Tablefmt.render table)
    sets

(* --- Fig 12: fault-tolerance modes --- *)

let fig12_tables pool s =
  let p = ycsb_profile s Ycsb.medium_contention in
  let gen = Driver.ycsb_gens p ~seed:101 in
  let geo label ft () =
    let params = Params.with_ft Params.default ft in
    let r, _ =
      Driver.run_geogauss ~params ~connections:s.ycsb_connections
        ~topology:(Topology.china3 ()) ~load:(Ycsb.load p) ~gen
        ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms ~label ()
    in
    (label, r)
  in
  let det label make () =
    let r =
      Driver.run_engine_with ~make ~topology:(Topology.china3 ()) ~gen
        ~connections:s.ycsb_connections ~warmup_ms:s.warmup_ms
        ~measure_ms:s.measure_ms ~label ()
    in
    (label, r)
  in
  let rows =
    Pool.run pool
      [
        geo "GeoG-LB" Params.Ft_local_backup;
        geo "GeoG-RB" Params.Ft_remote_backup; geo "GeoG-Raft" Params.Ft_raft;
        det "Calvin-Raft" (fun net ->
            let e = Gg_engines.Calvin.create_ft net engine_cfg in
            fun ~node txn cb -> Gg_engines.Calvin.submit e ~node txn cb);
        det "Aria-Raft" (fun net ->
            let e = Gg_engines.Aria.create_ft net engine_cfg in
            fun ~node txn cb -> Gg_engines.Aria.submit e ~node txn cb);
      ]
  in
  let table =
    Tablefmt.create
      ~title:"Fig 12 — Fault-tolerance mechanisms (YCSB-MC)"
      ~headers:[ "system"; "tput (txn/s)"; "mean lat (ms)"; "p99 (ms)" ]
  in
  List.iter
    (fun (label, r) ->
      Tablefmt.add_row table
        [ label; f ~dec:0 r.Result.tput; f r.Result.mean_ms; f r.Result.p99_ms ])
    rows;
  [ Tablefmt.render table ]

(* --- Fig 13: failure timeline --- *)

(* A single crash/recover timeline: one simulation, inherently
   sequential — there is no grid to fan out. *)
let fig13_tables _pool ~fast =
  let records = if fast then 2_000 else 20_000 in
  let connections = if fast then 16 else 64 in
  let p = Ycsb.with_records Ycsb.medium_contention records in
  let cluster =
    Geogauss.Cluster.create ~topology:(Topology.china3 ())
      ~load:(Ycsb.load p) ()
  in
  let clients =
    List.init 3 (fun i ->
        let g = Ycsb.create p ~seed:(111 + i) in
        let cl =
          Geogauss.Client.create cluster ~home:i ~connections ~gen:(fun () ->
              Geogauss.Txn.Op_txn (Ycsb.next_txn g))
        in
        Geogauss.Client.start cl;
        cl)
  in
  let crash_at = if fast then 3_000 else 10_000 in
  let recover_at = if fast then 8_000 else 20_000 in
  let horizon = if fast then 12_000 else 30_000 in
  Geogauss.Cluster.run_for_ms cluster crash_at;
  Geogauss.Cluster.crash cluster 2;
  Geogauss.Cluster.run_for_ms cluster (recover_at - crash_at);
  Geogauss.Cluster.recover cluster 2;
  Geogauss.Cluster.run_for_ms cluster (horizon - recover_at);
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "Fig 13 — Per-client throughput/latency under failure (crash node \
            2 @ %ds, recover @ %ds)"
           (crash_at / 1000) (recover_at / 1000))
      ~headers:
        [
          "t (s)"; "client1 tput"; "client1 lat"; "client2 tput"; "client2 lat";
          "client3 tput"; "client3 lat";
        ]
  in
  let bucket_us = 1_000_000 in
  let tls = List.map (fun cl -> Geogauss.Client.timeline cl ~bucket_us) clients in
  let len = List.fold_left (fun a tl -> max a (List.length tl)) 0 tls in
  for b = 0 to len - 1 do
    let cell tl =
      match List.nth_opt tl b with
      | Some (_, tput, lat) -> [ f ~dec:0 tput; f ~dec:0 lat ]
      | None -> [ "0"; "0" ]
    in
    Tablefmt.add_row table
      ((string_of_int b :: cell (List.nth tls 0))
      @ cell (List.nth tls 1)
      @ cell (List.nth tls 2))
  done;
  [ Tablefmt.render table ]

(* --- Ablations of the §5.1 design choices (not a paper figure) --- *)

let ablations_tables pool s =
  let p = ycsb_profile s Ycsb.medium_contention in
  let gen = Driver.ycsb_gens p ~seed:121 in
  let run label params () =
    let r, _ =
      Driver.run_geogauss ~params ~connections:s.ycsb_connections
        ~topology:(Topology.china3 ()) ~load:(Ycsb.load p) ~gen
        ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms ~label ()
    in
    (label, r)
  in
  let iso_run iso () =
    let params = Params.with_isolation Params.default iso in
    let r, _ =
      Driver.run_geogauss ~params ~connections:s.ycsb_connections
        ~topology:(Topology.china3 ()) ~load:(Ycsb.load p) ~gen
        ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms
        ~label:(Params.isolation_to_string iso)
        ()
    in
    (iso, r)
  in
  let ablation_thunks =
    [
      run "baseline (pipeline, 8 merge threads)" Params.default;
      run "no pipelining (batch at epoch end)"
        { Params.default with Params.pipeline = false };
      run "single merge thread"
        {
          Params.default with
          Params.cost =
            { Params.default.Params.cost with Params.merge_threads = 1 };
        };
      run "no write-set compression proxy (4x records)"
        {
          Params.default with
          Params.cost =
            { Params.default.Params.cost with Params.merge_record_us = 24 };
        };
    ]
  in
  (* The SSI extension the paper sketches in §4.3: read keys travel with
     the write sets, so WAN traffic grows — the cost the paper cites for
     not shipping it. *)
  let iso_thunks = List.map iso_run [ Params.SI; Params.SSI ] in
  let n_abl = List.length ablation_thunks in
  let all_rows =
    Pool.run pool
      (List.map (fun t () -> `Abl (t ())) ablation_thunks
      @ List.map (fun t () -> `Iso (t ())) iso_thunks)
  in
  let table =
    Tablefmt.create
      ~title:"Ablations — pipelining and merge parallelism (YCSB-MC)"
      ~headers:[ "configuration"; "tput (txn/s)"; "mean lat (ms)"; "p99 (ms)" ]
  in
  List.iteri
    (fun i row ->
      match row with
      | `Abl (label, r) when i < n_abl ->
        Tablefmt.add_row table
          [
            label; f ~dec:0 r.Result.tput; f r.Result.mean_ms; f r.Result.p99_ms;
          ]
      | _ -> ())
    all_rows;
  let table_ssi =
    Tablefmt.create
      ~title:"Extension — SSI vs the paper's isolation levels (YCSB-MC)"
      ~headers:
        [ "isolation"; "tput (txn/s)"; "mean lat (ms)"; "abort rate"; "WAN KB/txn" ]
  in
  List.iter
    (fun row ->
      match row with
      | `Iso (iso, r) ->
        Tablefmt.add_row table_ssi
          [
            Params.isolation_to_string iso; f ~dec:0 r.Result.tput;
            f r.Result.mean_ms; f ~dec:3 r.Result.abort_rate;
            f r.Result.wan_kb_per_txn;
          ]
      | `Abl _ -> ())
    all_rows;
  [ Tablefmt.render table; Tablefmt.render table_ssi ]

(* --- Fig "scale": partial replication at 25-200 replicas ---

   Not a paper figure: GeoGauss evaluates full replication only (Fig 11
   stops at 25 worldwide replicas). This sweep shows why partial
   replication matters at larger widths — under full replication every
   committed transaction is shipped to all n-1 peers, so WAN bytes/txn
   grows linearly with n, while interest-scoped dissemination
   (--partitioning region / hash:k) keeps it proportional to the average
   number of *interested* replicas. Same deterministic engine, same
   workload and epoch length in every mode; only the replica-group map
   changes. Writes BENCH_scale.json next to the other bench artifacts
   (`geogauss bench diff` understands the "scale" suite; its
   wan_kb_per_txn column gates lower-is-better). *)

let scale_json_path = "BENCH_scale.json"

let scale_modes =
  [
    ("full", Params.P_none); ("region", Params.P_region);
    ("hash:4", Params.P_hash 4);
  ]

let fig_scale_tables pool ~fast =
  let widths = if fast then [ 25; 50 ] else [ 25; 50; 100; 200 ] in
  (* Low ops/txn, or the zipfian key draw touches nearly every group and
     there is no interest left to scope; 2 ops on 3 000 rows keeps most
     transactions inside one or two groups while still crossing groups
     often enough to exercise the vote path. *)
  let p =
    { (Ycsb.with_records Ycsb.medium_contention 3_000) with
      Ycsb.ops_per_txn = 2; name = "ycsb-mc-2op" }
  in
  let warmup_ms = if fast then 300 else 500 in
  let measure_ms = if fast then 800 else 1_500 in
  let run mode n () =
    (* 25 ms epochs: at worldwide latencies the cross-group vote pipeline
       depth stays small, and all three modes share the value so the
       comparison isolates dissemination. *)
    let params =
      { (Params.with_epoch_ms Params.default 25) with Params.partitioning = mode }
    in
    let r, _ =
      Driver.run_geogauss ~params ~connections:2
        ~topology:(Topology.worldwide n) ~load:(Ycsb.load p)
        ~gen:(Driver.ycsb_gens p ~seed:131) ~warmup_ms ~measure_ms
        ~label:(Params.partitioning_to_string mode)
        ()
    in
    r
  in
  let thunks =
    List.concat_map
      (fun (_, mode) -> List.map (run mode) widths)
      scale_modes
  in
  let results = Pool.run pool thunks in
  let rows =
    (* (mode_label, width, result) in submission order *)
    List.concat_map
      (fun (label, _) -> List.map (fun n -> (label, n)) widths)
      scale_modes
    |> List.map2 (fun r (label, n) -> (label, n, r)) results
  in
  let table =
    Tablefmt.create
      ~title:
        "Fig scale — Partial replication, worldwide DCs (YCSB-MC, 2 ops/txn, \
         25 ms epochs)"
      ~headers:
        [ "mode"; "replicas"; "tput (txn/s)"; "mean lat (ms)"; "WAN KB/txn" ]
  in
  List.iter
    (fun (label, n, r) ->
      Tablefmt.add_row table
        [
          label; string_of_int n; f ~dec:0 r.Result.tput; f r.Result.mean_ms;
          f ~dec:2 r.Result.wan_kb_per_txn;
        ])
    rows;
  let oc = open_out scale_json_path in
  let point_json (label, n, r) =
    Printf.sprintf
      "    {\"mode\": \"%s\", \"replicas\": %d, \"tput\": %.1f, \
       \"mean_lat_ms\": %.3f, \"wan_kb_per_txn\": %.4f, \"committed\": %d, \
       \"aborted\": %d}"
      label n r.Result.tput r.Result.mean_ms r.Result.wan_kb_per_txn
      r.Result.committed r.Result.aborted
  in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"scale\",\n\
    \  \"fast\": %b,\n\
    \  \"points\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    fast
    (String.concat ",\n" (List.map point_json rows));
  close_out oc;
  (* The claim the sweep exists to check: interest-scoped dissemination
     must beat full replication on the wire at every width. *)
  let wan label n =
    List.find_map
      (fun (l, w, r) ->
        if l = label && w = n then Some r.Result.wan_kb_per_txn else None)
      rows
  in
  List.iter
    (fun n ->
      match wan "full" n with
      | None -> ()
      | Some full ->
        List.iter
          (fun (label, _) ->
            if label <> "full" then
              match wan label n with
              | Some w when w >= full ->
                Printf.eprintf
                  "  WARNING: %s at %d replicas ships %.2f KB/txn >= full \
                   replication's %.2f — partial replication saved nothing\n\
                   %!"
                  label n w full
              | _ -> ())
          scale_modes)
    widths;
  [ Tablefmt.render table ]

(* --- Fig "skew": merge granularity under skewed writes ---

   Not a paper figure: GeoGauss merges at whole-row granularity (first
   committer wins per row per epoch). This sweep runs the two write-
   skewed workloads — hotkey (rotating hot rows, single-counter
   increments) and social (power-law fanout feed bumps) — at both merge
   levels. Under column-level merge (DESIGN.md §13) concurrent updates
   to disjoint columns of one row all commit, so the abort rate must
   drop strictly below row-level's on both workloads; the WAN column
   reports whatever the masked encoding actually costs, either way.
   Writes BENCH_skew.json (`geogauss bench diff` understands the "skew"
   suite; abort-rate and WAN columns gate lower-is-better). *)

let skew_json_path = "BENCH_skew.json"

let skew_levels = [ ("row", Params.Row); ("column", Params.Column) ]

let fig_skew_tables pool ~fast =
  let warmup_ms = if fast then 300 else 800 in
  let measure_ms = if fast then 1_000 else 3_000 in
  let hot =
    Gg_workload.Hotkey.with_records Gg_workload.Hotkey.base
      (if fast then 4_000 else 20_000)
  in
  let soc =
    Gg_workload.Social.with_users Gg_workload.Social.base
      (if fast then 10_000 else 50_000)
  in
  let workloads =
    [
      ("hotkey", Gg_workload.Hotkey.load hot, Driver.hotkey_gens hot ~seed:141);
      ("social", Gg_workload.Social.load soc, Driver.social_gens soc ~seed:151);
    ]
  in
  let run (wname, load, gen) (lname, level) () =
    let params = { Params.default with Params.merge_level = level } in
    let r, _ =
      Driver.run_geogauss ~params ~connections:64
        ~topology:(Topology.china3 ()) ~load ~gen ~warmup_ms ~measure_ms
        ~label:(Printf.sprintf "%s/%s" wname lname)
        ()
    in
    r
  in
  let cells =
    List.concat_map
      (fun w -> List.map (fun l -> (w, l)) skew_levels)
      workloads
  in
  let results = Pool.run pool (List.map (fun (w, l) -> run w l) cells) in
  let rows =
    List.map2
      (fun ((wname, _, _), (lname, _)) r -> (wname, lname, r))
      cells results
  in
  let table =
    Tablefmt.create
      ~title:
        "Fig skew — Merge granularity under write skew (china3, 64 conns/node)"
      ~headers:
        [
          "workload"; "merge level"; "tput (txn/s)"; "abort rate"; "WAN KB/txn";
        ]
  in
  List.iter
    (fun (wname, lname, r) ->
      Tablefmt.add_row table
        [
          wname; lname; f ~dec:0 r.Result.tput; f ~dec:4 r.Result.abort_rate;
          f ~dec:2 r.Result.wan_kb_per_txn;
        ])
    rows;
  let oc = open_out skew_json_path in
  let point_json (wname, lname, r) =
    Printf.sprintf
      "    {\"workload\": \"%s\", \"merge_level\": \"%s\", \"tput\": %.1f, \
       \"abort_rate\": %.5f, \"wan_kb_per_txn\": %.4f, \"committed\": %d, \
       \"aborted\": %d}"
      wname lname r.Result.tput r.Result.abort_rate r.Result.wan_kb_per_txn
      r.Result.committed r.Result.aborted
  in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"skew\",\n\
    \  \"fast\": %b,\n\
    \  \"points\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    fast
    (String.concat ",\n" (List.map point_json rows));
  close_out oc;
  (* The claim the sweep exists to check: per-column merge must abort
     strictly less than per-row merge on every skewed workload. *)
  let abort_of wname lname =
    List.find_map
      (fun (w, l, r) ->
        if w = wname && l = lname then Some r.Result.abort_rate else None)
      rows
  in
  List.iter
    (fun (wname, _, _) ->
      match (abort_of wname "row", abort_of wname "column") with
      | Some row, Some col when col >= row ->
        Printf.eprintf
          "  WARNING: %s aborts %.5f at column-level merge >= %.5f at \
           row-level — the finer lattice saved nothing\n\
           %!"
          wname col row
      | _ -> ())
    workloads;
  [ Tablefmt.render table ]

(* --- Fig fastpath: clock-assisted speculative sealing --- *)

(* The clock-assisted fast path (DESIGN.md §14) claims: at realistic
   clock-skew bounds (<= 10 ms) the eocc engine's p50 commit latency
   beats plain GeoGauss on the fig5 topology — the speculative merge +
   WAL prelog overlap the last EOF's flight — and it degrades honestly
   as the bound grows (the spec/confirm machinery never changes what
   clients observe, only when work is charged). The sweep runs YCSB-MC
   on china3: one skew-independent GeoGauss baseline, eocc at each skew
   bound, and the Det_base EOCC timing model as a reference row.
   Misprediction counts are reported verbatim — a high mispredict rate
   with a latency win is an honest result (mispredicted epochs re-merge
   at the classic instant; only the speculated work is wasted). Writes
   BENCH_fastpath.json (`geogauss bench diff` understands the
   "fastpath" suite; p50/p95/mispredict-rate gate lower-is-better). *)

let fastpath_json_path = "BENCH_fastpath.json"

let fig_fastpath_tables pool ~fast =
  let warmup_ms = if fast then 300 else 800 in
  let measure_ms = if fast then 1_000 else 3_000 in
  let skews = if fast then [ 0; 10; 50 ] else [ 0; 5; 10; 20; 50 ] in
  let p =
    Ycsb.with_records Ycsb.medium_contention (if fast then 4_000 else 50_000)
  in
  let load = Ycsb.load p in
  let gen = Driver.ycsb_gens p ~seed:171 in
  let connections = if fast then 32 else 64 in
  let geo label params () =
    let r, extra =
      Driver.run_geogauss ~params ~connections ~topology:(Topology.china3 ())
        ~load ~gen ~warmup_ms ~measure_ms ~label ()
    in
    (r, extra.Driver.fastpath)
  in
  let cells =
    (("geogauss", -1), geo "geogauss" Params.default)
    :: List.map
         (fun skew ->
           let params =
             Params.with_clock_skew_us
               (Params.with_fastpath Params.default true)
               (skew * 1_000)
           in
           ( ("eocc", skew),
             geo (Printf.sprintf "eocc/skew%d" skew) params ))
         skews
    @ [
        ( ("eocc-model", -1),
          fun () ->
            ( Driver.run_engine
                (module Gg_engines.Eocc)
                ~config:engine_cfg ~topology:(Topology.china3 ()) ~gen
                ~connections ~warmup_ms ~measure_ms ~label:"eocc-model" (),
              (0, 0, 0) ) );
      ]
  in
  let results = Pool.run pool (List.map snd cells) in
  let rows =
    List.map2
      (fun ((engine, skew), _) (r, (spec, confirms, mispredicts)) ->
        (engine, skew, r, spec, confirms, mispredicts))
      cells results
  in
  let misp_rate spec mispredicts =
    if spec = 0 then 0.0 else float_of_int mispredicts /. float_of_int spec
  in
  let table =
    Tablefmt.create
      ~title:
        "Fig fastpath — Clock-assisted speculative sealing vs clock skew \
         (YCSB-MC, china3)"
      ~headers:
        [
          "engine"; "skew (ms)"; "tput (txn/s)"; "p50 (ms)"; "p95 (ms)";
          "mean (ms)"; "mispredict rate";
        ]
  in
  List.iter
    (fun (engine, skew, r, spec, _, mispredicts) ->
      Tablefmt.add_row table
        [
          engine;
          (if skew < 0 then "-" else string_of_int skew);
          f ~dec:0 r.Result.tput;
          f r.Result.p50_ms;
          f r.Result.p95_ms;
          f r.Result.mean_ms;
          (if spec = 0 then "-" else f ~dec:3 (misp_rate spec mispredicts));
        ])
    rows;
  let oc = open_out fastpath_json_path in
  let point_json (engine, skew, r, spec, confirms, mispredicts) =
    Printf.sprintf
      "    {\"engine\": \"%s\", \"clock_skew_ms\": %d, \"tput\": %.1f, \
       \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"mean_ms\": %.3f, \"spec\": %d, \
       \"confirms\": %d, \"mispredicts\": %d, \"mispredict_rate\": %.5f}"
      engine skew r.Result.tput r.Result.p50_ms r.Result.p95_ms
      r.Result.mean_ms spec confirms mispredicts (misp_rate spec mispredicts)
  in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"fastpath\",\n\
    \  \"fast\": %b,\n\
    \  \"points\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    fast
    (String.concat ",\n" (List.map point_json rows));
  close_out oc;
  (* The claim the sweep exists to check: at skew bounds <= 10 ms, the
     fast path's p50 must beat the skew-independent baseline. *)
  let geo_p50 =
    List.find_map
      (fun (e, _, r, _, _, _) ->
        if e = "geogauss" then Some r.Result.p50_ms else None)
      rows
  in
  List.iter
    (fun (engine, skew, r, _, _, _) ->
      match geo_p50 with
      | Some base
        when engine = "eocc" && skew >= 0 && skew <= 10
             && r.Result.p50_ms >= base ->
        Printf.eprintf
          "  WARNING: eocc p50 %.2f ms at %d ms skew >= geogauss %.2f ms — \
           the speculative seal saved nothing\n\
           %!"
          r.Result.p50_ms skew base
      | _ -> ())
    rows;
  [ Tablefmt.render table ]

(* --- registry --- *)

(* The one canonical name list: the [tables] dispatch, [all] and the
   unknown-name error below all derive from it, so a figure added to one
   cannot silently go missing from the others. *)
let names =
  [
    "fig5"; "table2"; "fig6"; "fig7"; "table3"; "fig8"; "fig9"; "fig10";
    "fig11"; "fig12"; "fig13"; "ablations"; "fig_scale"; "fig_skew";
    "fig_fastpath";
  ]

let tables ?(pool = Pool.seq) ~setting:s ~fast name =
  match name with
  | "fig5" -> Some (fig5_tables pool s)
  | "table2" -> Some (table2_tables pool s)
  | "fig6" -> Some (fig6_tables pool s ~fast)
  | "fig7" -> Some (fig7_tables pool s ~fast)
  | "table3" -> Some (table3_tables pool s)
  | "fig8" -> Some (fig8_tables pool s ~fast)
  | "fig9" -> Some (fig9_tables pool s)
  | "fig10" -> Some (fig10_tables pool s ~fast)
  | "fig11" -> Some (fig11_tables pool s ~fast)
  | "fig12" -> Some (fig12_tables pool s)
  | "fig13" -> Some (fig13_tables pool ~fast)
  | "ablations" -> Some (ablations_tables pool s)
  | "fig_scale" -> Some (fig_scale_tables pool ~fast)
  | "fig_skew" -> Some (fig_skew_tables pool ~fast)
  | "fig_fastpath" -> Some (fig_fastpath_tables pool ~fast)
  | _ -> None

let print_tables ts =
  List.iter
    (fun t ->
      print_string t;
      print_newline ())
    ts

let make_runner name ?(fast = false) ?pool () =
  match tables ?pool ~setting:(setting ~fast) ~fast name with
  | Some ts -> print_tables ts
  | None ->
    (* unreachable through [all] (built from [names]); reachable when a
       caller passes a free-form name, so it must be a real error, not an
       assert *)
    invalid_arg
      (Printf.sprintf "unknown experiment %S (known: %s)" name
         (String.concat ", " names))

let all = List.map (fun name -> (name, make_runner name)) names

let fig5 = make_runner "fig5"
let table2 = make_runner "table2"
let fig6 = make_runner "fig6"
let fig7 = make_runner "fig7"
let table3 = make_runner "table3"
let fig8 = make_runner "fig8"
let fig9 = make_runner "fig9"
let fig10 = make_runner "fig10"
let fig11 = make_runner "fig11"
let fig12 = make_runner "fig12"
let fig13 = make_runner "fig13"
let ablations = make_runner "ablations"
let fig_scale = make_runner "fig_scale"
let fig_skew = make_runner "fig_skew"
let fig_fastpath = make_runner "fig_fastpath"

let run ?fast ?pool name =
  match List.assoc_opt name all with
  | Some fn ->
    fn ?fast ?pool ();
    true
  | None -> false
