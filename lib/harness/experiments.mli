(** One function per table/figure of the paper's evaluation (§7). Each
    runs the relevant simulated-cluster experiments and prints
    paper-style tables to stdout.

    [fast] shrinks populations and measurement windows (used by tests
    and smoke runs); shapes remain, absolute numbers get noisier.

    [pool] fans the independent grid points of a figure (one cluster
    simulation each) out over a {!Gg_par.Pool} of domains. Results are
    collected in submission order and each simulation is fully
    self-contained, so the printed tables are byte-identical at every
    pool width; the default is sequential. *)

type setting = {
  ycsb_records : int;
  ycsb_connections : int;
  tpcc_cfg : Gg_workload.Tpcc.config;
  tpcc_connections : int;
  warmup_ms : int;
  measure_ms : int;
}
(** Knobs shared by all experiments. Exposed (with {!tables}) so tests
    can run tiny grids and byte-compare the rendered figure data across
    pool widths. *)

val setting : fast:bool -> setting
(** The standard settings used by the [figN] runners. *)

val tables :
  ?pool:Gg_par.Pool.t -> setting:setting -> fast:bool -> string -> string list option
(** [tables ?pool ~setting ~fast name] runs experiment [name] and
    returns its rendered tables instead of printing them; [None] if the
    name is unknown. [fast] here only picks grid sizes (sweep points,
    epoch rows) — population/window knobs come from [setting]. *)

val fig5 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Cross-system throughput/latency comparison on YCSB-RO/MC/HC and
    TPC-C. *)

val table2 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Per-phase runtime breakdown of a committed TPC-C transaction for
    GeoG-S / GeoG-A / GeoGauss. *)

val fig6 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Per-epoch committed transactions and latency, GeoGauss vs GeoG-S
    (TPC-C). *)

val fig7 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Throughput slowdown vs fraction of long transactions (20 ms and
    100 ms injected delays). *)

val table3 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Average compressed WAN traffic per transaction, GeoGauss vs
    Calvin. *)

val fig8 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Effect of epoch length (1–200 ms). *)

val fig9 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Effect of isolation level (RC / RR / SI). *)

val fig10 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Effect of contention (Zipf theta sweep). *)

val fig11 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Scalability: 3–15 replicas (China) and 3–25 replicas (worldwide). *)

val fig12 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Fault-tolerance modes: GeoG-LB / GeoG-RB / GeoG-Raft vs Calvin-Raft
    / Aria-Raft. *)

val fig13 : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Throughput/latency timeline across a node crash and recovery. A
    single timeline simulation: runs sequentially at any pool width. *)

val ablations : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Not a paper figure: ablations of the §5.1 design choices
    (pipelining, merge parallelism, write-set size). *)

val fig_scale : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Not a paper figure: partial-replication scalability sweep, 25–200
    worldwide replicas under [--partitioning none|region|hash:4]
    (DESIGN.md §12). Also writes [BENCH_scale.json] for
    [geogauss bench diff]. *)

val fig_skew : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Not a paper figure: the write-skewed workloads (hotkey, social) at
    both merge granularities ([--merge-level row|column], DESIGN.md
    §13). Column-level merge must abort strictly less on both; warns on
    stderr otherwise. Also writes [BENCH_skew.json] for
    [geogauss bench diff]. *)

val fig_fastpath : ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Not a paper figure: the clock-assisted speculative-sealing sweep
    ([--engine eocc], DESIGN.md §14) — p50/p95 and misprediction rate
    across clock-skew bounds 0–50 ms on the fig5 topology, against the
    skew-independent GeoGauss baseline and the Det_base EOCC timing
    model. eocc p50 must beat GeoGauss at bounds <= 10 ms; warns on
    stderr otherwise. Also writes [BENCH_fastpath.json] for
    [geogauss bench diff] (p50/p95/mispredict rate gate
    lower-is-better). *)

val names : string list
(** Canonical experiment names, in paper order (plus the ablations and
    the partial-replication sweep). [tables], [all] and the
    unknown-name error all derive from this one list. *)

val make_runner : string -> ?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit
(** Runner for one experiment name. An unknown name raises
    [Invalid_argument] listing {!names} — callers passing free-form
    names (the CLI, tests) get a real error, never an assert. *)

val all : (string * (?fast:bool -> ?pool:Gg_par.Pool.t -> unit -> unit)) list
(** Experiment registry: [(name, runner)] for every entry of {!names}. *)

val run : ?fast:bool -> ?pool:Gg_par.Pool.t -> string -> bool
(** Run one experiment by name ("fig5", "table2", …); false if
    unknown. (The runners in {!all} raise [Invalid_argument] — listing
    the known names — if applied to a name outside the registry;
    [run] itself reports unknown names via its return value.) *)
