(** Closed-loop measurement drivers.

    {!run_engine} drives any baseline implementing
    {!Gg_engines.Engine.S}; {!run_engine_with} accepts a custom
    constructor (e.g. the Raft-replicated Calvin/Aria variants);
    {!run_geogauss} builds a full GeoGauss cluster with per-region
    clients. All warm up, reset every instrument through one
    {!Gg_obs.Obs.reset_all} call, then measure over a fixed window of
    simulated time.

    Passing [?trace_file] to {!run_geogauss} enables tracing for the
    whole run (the warm-up reset clears the buffer, so the file covers
    the measurement window only) and writes a JSONL file next to the
    other results: one [meta] record, one [event] record per trace
    event, and a [snapshot] record of all counters every
    [?snapshot_every_ms] (default 100, [0] disables). Identical seeded
    runs produce byte-identical files. *)

type workload_gen = int -> unit -> Gg_workload.Op.txn
(** [gen node] returns that node's transaction generator. *)

val ycsb_gens : Gg_workload.Ycsb.profile -> seed:int -> workload_gen
val tpcc_gens : Gg_workload.Tpcc.config -> seed:int -> workload_gen

val run_engine_with :
  make:
    (Gg_sim.Net.t ->
    node:int ->
    Gg_workload.Op.txn ->
    (Gg_engines.Engine.outcome -> unit) ->
    unit) ->
  topology:Gg_sim.Topology.t ->
  gen:workload_gen ->
  connections:int ->
  warmup_ms:int ->
  measure_ms:int ->
  label:string ->
  unit ->
  Result.t

val run_engine :
  (module Gg_engines.Engine.S) ->
  ?config:Gg_engines.Engine.config ->
  topology:Gg_sim.Topology.t ->
  gen:workload_gen ->
  connections:int ->
  warmup_ms:int ->
  measure_ms:int ->
  label:string ->
  unit ->
  Result.t

type geo_extra = {
  phase_means : (string * (float * float * float * float * float)) list;
      (** per-node (parse, exec, wait, merge, log) means in µs over
          committed transactions *)
  epoch_cells : (int * Geogauss.Metrics.epoch_cell) list;
      (** node 0's per-epoch commit counts and latencies (Fig 6) *)
}

val write_trace :
  path:string ->
  label:string ->
  params:Geogauss.Params.t ->
  topology:Gg_sim.Topology.t ->
  nodes:int ->
  warmup_ms:int ->
  measure_ms:int ->
  window_start_us:int ->
  Gg_obs.Obs.t ->
  (int * (string * int) list) list ->
  unit
(** Dump the observability buffer as a JSONL trace file (one [meta]
    record — including the node→region name list and the measurement
    window's start instant — the buffered events, then the given
    [(at, counters)] snapshots — pass [[]] for none). Also used by the
    chaos checker to export a trace of a failing scenario. *)

val run_geogauss :
  ?params:Geogauss.Params.t ->
  ?connections:int ->
  ?trace_file:string ->
  ?snapshot_every_ms:int ->
  topology:Gg_sim.Topology.t ->
  load:(Gg_storage.Db.t -> unit) ->
  gen:workload_gen ->
  warmup_ms:int ->
  measure_ms:int ->
  label:string ->
  unit ->
  Result.t * geo_extra
