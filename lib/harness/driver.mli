(** Closed-loop measurement drivers.

    {!run_engine} drives any baseline implementing
    {!Gg_engines.Engine.S}; {!run_engine_with} accepts a custom
    constructor (e.g. the Raft-replicated Calvin/Aria variants);
    {!run_geogauss} builds a full GeoGauss cluster with per-region
    clients. All warm up, reset every instrument through one
    {!Gg_obs.Obs.reset_all} call, then measure over a fixed window of
    simulated time.

    Passing [?trace_file] to {!run_geogauss} enables tracing for the
    whole run (the warm-up reset clears the buffer, so the file covers
    the measurement window only) and writes a JSONL file next to the
    other results: one [meta] record, one [event] record per trace
    event, and a [snapshot] record of all counters every
    [?snapshot_every_ms] (default 100, [0] disables). Identical seeded
    runs produce byte-identical files. *)

type workload_gen = int -> unit -> Gg_workload.Op.txn
(** [gen node] returns that node's transaction generator. *)

type request_gen = int -> unit -> Geogauss.Txn.request
(** Request-level generator — what SQL-shaped workloads produce. *)

val ycsb_gens : Gg_workload.Ycsb.profile -> seed:int -> workload_gen
val tpcc_gens : Gg_workload.Tpcc.config -> seed:int -> workload_gen
val hotkey_gens : Gg_workload.Hotkey.profile -> seed:int -> workload_gen
val social_gens : Gg_workload.Social.profile -> seed:int -> workload_gen

val scan_req_gens : Gg_workload.Sqlgen.Scan.profile -> seed:int -> request_gen
val secidx_req_gens :
  Gg_workload.Sqlgen.Secidx.profile -> seed:int -> request_gen

val run_engine_with :
  make:
    (Gg_sim.Net.t ->
    node:int ->
    Gg_workload.Op.txn ->
    (Gg_engines.Engine.outcome -> unit) ->
    unit) ->
  topology:Gg_sim.Topology.t ->
  gen:workload_gen ->
  connections:int ->
  warmup_ms:int ->
  measure_ms:int ->
  label:string ->
  unit ->
  Result.t

val run_engine :
  (module Gg_engines.Engine.S) ->
  ?config:Gg_engines.Engine.config ->
  topology:Gg_sim.Topology.t ->
  gen:workload_gen ->
  connections:int ->
  warmup_ms:int ->
  measure_ms:int ->
  label:string ->
  unit ->
  Result.t

type geo_extra = {
  phase_means : (string * (float * float * float * float * float)) list;
      (** per-node (parse, exec, wait, merge, log) means in µs over
          committed transactions *)
  epoch_cells : (int * Geogauss.Metrics.epoch_cell) list;
      (** node 0's per-epoch commit counts and latencies (Fig 6) *)
  offered : int;
      (** open loop only: arrivals admitted during the measurement
          window across all regions (0 closed-loop) *)
  shed : int;  (** open loop only: arrivals dropped because the queue
          was full *)
  fastpath : int * int * int;
      (** [(speculations, confirms, mispredicts)] of the clock-assisted
          fast path, summed over nodes; all zero unless
          [Params.fastpath] is on *)
}

val write_trace :
  path:string ->
  label:string ->
  params:Geogauss.Params.t ->
  topology:Gg_sim.Topology.t ->
  nodes:int ->
  warmup_ms:int ->
  measure_ms:int ->
  window_start_us:int ->
  Gg_obs.Obs.t ->
  (int * (string * int) list) list ->
  unit
(** Dump the observability buffer as a JSONL trace file (one [meta]
    record — including the node→region name list and the measurement
    window's start instant — the buffered events, then the given
    [(at, counters)] snapshots — pass [[]] for none). Also used by the
    chaos checker to export a trace of a failing scenario. *)

val run_geogauss :
  ?params:Geogauss.Params.t ->
  ?connections:int ->
  ?arrival:Gg_workload.Arrival.t ->
  ?req_gen:request_gen ->
  ?trace_file:string ->
  ?snapshot_every_ms:int ->
  topology:Gg_sim.Topology.t ->
  load:(Gg_storage.Db.t -> unit) ->
  gen:workload_gen ->
  warmup_ms:int ->
  measure_ms:int ->
  label:string ->
  unit ->
  Result.t * geo_extra
(** [arrival] switches the clients to the open-loop model
    ({!Geogauss.Client.Open}): transactions arrive on the given curve,
    [connections] caps each region's pool, and a FIFO of 4x the pool
    absorbs bursts (beyond that, arrivals shed — see
    [geo_extra.offered]/[shed]). Without it, the paper's closed loop.
    [req_gen] overrides [gen] with a request-level generator for
    SQL-shaped workloads ([gen] is then unused). *)
