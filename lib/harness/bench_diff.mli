(** Perf-regression accounting between two bench reports.

    Compares two [BENCH_*.json] documents of the same suite
    ([wallclock], [merge], [parallel], [scale], [skew] or [fastpath])
    metric by metric. All compared metrics are higher-is-better
    throughputs, except: the wallclock suite's
    [tracing_overhead.overhead_frac], which is gated on an absolute 5%
    ceiling (the ISSUE acceptance bound) rather than a relative delta;
    the scale suite's [wan_kb_per_txn] and the skew suite's
    [abort_rate] / [wan_kb_per_txn], which are lower-is-better and
    judged on the inverted delta; and the fastpath suite's [p50_ms] /
    [p95_ms] / [mispredict_rate], likewise lower-is-better. Wall-clock
    numbers are noisy, so a drop only counts as a regression beyond
    [threshold] (fraction of the old value); half the threshold flags a
    warning. Parallel-scaling speedups are never gated — their
    regressions are downgraded to warnings. *)

type verdict = Same | Improve | Warn | Regress

type row = {
  key : string;  (** scenario label / [jobs=N] / [workload/jobs=N] *)
  metric : string;  (** [missing] when the new report lacks the key *)
  old_v : float;
  new_v : float;
  delta_frac : float;  (** (new - old) / old; positive = better *)
  verdict : verdict;
}

val verdict_to_string : verdict -> string

val diff :
  ?threshold:float ->
  old_json:string ->
  new_json:string ->
  unit ->
  (row list, string) result
(** Default [threshold] is [0.25]. [Error] on unparsable input, a suite
    mismatch, or an unknown suite. *)

val diff_files :
  ?threshold:float ->
  old_path:string ->
  new_path:string ->
  unit ->
  (row list, string) result

val has_regression : row list -> bool
val has_warning : row list -> bool

val render : row list -> string
(** Deterministic comparison table (old-report row order). *)
