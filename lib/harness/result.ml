module Stats = Gg_util.Stats

type t = {
  label : string;
  window_s : float;
  committed : int;
  aborted : int;
  tput : float;
  abort_tput : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  abort_rate : float;
  wan_kb_per_txn : float;
}

let make ~label ~window_s ~committed ~aborted ~latency ~wan_bytes =
  let finished = committed + aborted in
  {
    label;
    window_s;
    committed;
    aborted;
    tput = float_of_int committed /. window_s;
    abort_tput = float_of_int aborted /. window_s;
    mean_ms = Stats.Hist.mean latency /. 1000.0;
    p50_ms = Stats.Hist.p50 latency /. 1000.0;
    p95_ms = Stats.Hist.p95 latency /. 1000.0;
    p99_ms = Stats.Hist.p99 latency /. 1000.0;
    max_ms = Stats.Hist.max latency /. 1000.0;
    abort_rate =
      (if finished = 0 then 0.0
       else float_of_int aborted /. float_of_int finished);
    wan_kb_per_txn =
      (if finished = 0 then 0.0
       else float_of_int wan_bytes /. 1024.0 /. float_of_int finished);
  }

let headers =
  [
    "system"; "tput (txn/s)"; "abort/s"; "mean lat (ms)"; "p50 (ms)";
    "p95 (ms)"; "p99 (ms)"; "max (ms)"; "abort rate"; "WAN KB/txn";
  ]

let f = Gg_util.Tablefmt.fmt_f

let row t =
  [
    t.label;
    f ~dec:0 t.tput;
    f ~dec:0 t.abort_tput;
    f ~dec:1 t.mean_ms;
    f ~dec:1 t.p50_ms;
    f ~dec:1 t.p95_ms;
    f ~dec:1 t.p99_ms;
    f ~dec:1 t.max_ms;
    f ~dec:3 t.abort_rate;
    f ~dec:2 t.wan_kb_per_txn;
  ]
