module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Obs = Gg_obs.Obs
module Jsonl = Gg_obs.Jsonl
module Topology = Gg_sim.Topology
module Op = Gg_workload.Op
module Engine = Gg_engines.Engine
module Stats = Gg_util.Stats

type workload_gen = int -> unit -> Op.txn
type request_gen = int -> unit -> Geogauss.Txn.request

let ycsb_gens profile ~seed node =
  let g = Gg_workload.Ycsb.create profile ~seed:(seed + (1_000 * node)) in
  fun () -> Gg_workload.Ycsb.next_txn g

let tpcc_gens cfg ~seed node =
  let g = Gg_workload.Tpcc.create cfg ~seed:(seed + (1_000 * node)) ~node in
  fun () -> Gg_workload.Tpcc.next_txn g

let hotkey_gens profile ~seed node =
  let g = Gg_workload.Hotkey.create profile ~seed:(seed + (1_000 * node)) in
  fun () -> Gg_workload.Hotkey.next_txn g

let social_gens profile ~seed node =
  let g = Gg_workload.Social.create profile ~seed:(seed + (1_000 * node)) in
  fun () -> Gg_workload.Social.next_txn g

let scan_req_gens profile ~seed node =
  let g = Gg_workload.Sqlgen.Scan.create profile ~seed:(seed + (1_000 * node)) in
  fun () ->
    let label, stmts = Gg_workload.Sqlgen.Scan.next_stmts g in
    Geogauss.Txn.Sql_txn { label; stmts }

let secidx_req_gens profile ~seed node =
  let g =
    Gg_workload.Sqlgen.Secidx.create profile ~seed:(seed + (1_000 * node))
  in
  fun () ->
    let label, stmts = Gg_workload.Sqlgen.Secidx.next_stmts g in
    Geogauss.Txn.Sql_txn { label; stmts }

(* Shared closed-loop measurement over an abstract submit function. *)
let drive ~sim ~net ~submit ~gen ~connections ~warmup_ms ~measure_ms =
  let n = Net.n_nodes net in
  let committed = ref 0 and aborted = ref 0 in
  let latency = Stats.Hist.create () in
  let warmup_end = Sim.now sim + Sim.ms warmup_ms in
  let measure_end = warmup_end + Sim.ms measure_ms in
  let in_window () =
    let now = Sim.now sim in
    now > warmup_end && now <= measure_end
  in
  for node = 0 to n - 1 do
    let next = gen node in
    for _ = 1 to connections do
      let rec loop () =
        let txn = next () in
        submit ~node txn (fun (o : Engine.outcome) ->
            if in_window () then
              if o.Engine.committed then begin
                incr committed;
                Stats.Hist.add latency (float_of_int o.Engine.latency_us)
              end
              else incr aborted;
            loop ())
      in
      loop ()
    done
  done;
  Sim.run_until sim warmup_end;
  Obs.reset_all (Sim.obs sim);
  Sim.run_until sim measure_end;
  (!committed, !aborted, latency, Net.wan_bytes net)

let run_engine_with ~make ~topology ~gen ~connections ~warmup_ms ~measure_ms
    ~label () =
  let sim = Sim.create () in
  let rng = Gg_util.Rng.create 4242 in
  let net = Net.create sim ~rng ~topology () in
  let submit = make net in
  let committed, aborted, latency, wan =
    drive ~sim ~net ~submit ~gen ~connections ~warmup_ms ~measure_ms
  in
  Result.make ~label
    ~window_s:(float_of_int measure_ms /. 1000.0)
    ~committed ~aborted ~latency ~wan_bytes:wan

let run_engine (module E : Gg_engines.Engine.S) ?(config = Engine.default_config)
    ~topology ~gen ~connections ~warmup_ms ~measure_ms ~label () =
  run_engine_with
    ~make:(fun net ->
      let e = E.create net config in
      fun ~node txn cb -> E.submit e ~node txn cb)
    ~topology ~gen ~connections ~warmup_ms ~measure_ms ~label ()

type geo_extra = {
  phase_means : (string * (float * float * float * float * float)) list;
  epoch_cells : (int * Geogauss.Metrics.epoch_cell) list;
  offered : int;  (* open loop: arrivals admitted in the window *)
  shed : int;  (* open loop: arrivals dropped, queue full *)
  fastpath : int * int * int;
      (* (speculations, confirms, mispredicts) summed over nodes; all
         zero unless Params.fastpath is on *)
}

(* JSONL trace export: one meta record, the buffered events (oldest
   first), then the periodic counter snapshots. Field order is fixed and
   every timestamp is simulated time, so identical seeded runs produce
   byte-identical files. *)
let write_trace ~path ~label ~params ~topology ~nodes ~warmup_ms ~measure_ms
    ~window_start_us obs snapshots =
  let events = Obs.events obs in
  let oc = open_out path in
  Jsonl.write_line oc
    (Jsonl.Obj
       [
         ("type", Jsonl.Str "meta");
         ("label", Jsonl.Str label);
         ("nodes", Jsonl.Int nodes);
         ( "regions",
           (* node -> region name, for cross-node WAN-hop attribution *)
           Jsonl.List
             (List.init nodes (fun i ->
                  Jsonl.Str (Topology.region_name topology i)))
         );
         ("epoch_us", Jsonl.Int params.Geogauss.Params.epoch_us);
         ("seed", Jsonl.Int params.Geogauss.Params.seed);
         ("warmup_ms", Jsonl.Int warmup_ms);
         ("measure_ms", Jsonl.Int measure_ms);
         ("window_start_us", Jsonl.Int window_start_us);
         ("events", Jsonl.Int (List.length events));
         ("dropped", Jsonl.Int (Obs.dropped_events obs));
       ]);
  List.iter
    (fun (e : Obs.Trace.event) ->
      Jsonl.write_line oc
        (Jsonl.Obj
           [
             ("type", Jsonl.Str "event");
             ("at", Jsonl.Int e.Obs.Trace.at);
             ("node", Jsonl.Int e.Obs.Trace.node);
             ("cat", Jsonl.Str e.Obs.Trace.cat);
             ("name", Jsonl.Str e.Obs.Trace.name);
             ("epoch", Jsonl.Int e.Obs.Trace.epoch);
             ("span", Jsonl.Int e.Obs.Trace.span);
             ("parent", Jsonl.Int e.Obs.Trace.parent);
             ("dur", Jsonl.Int e.Obs.Trace.dur);
             ("detail", Jsonl.Str e.Obs.Trace.detail);
           ]))
    events;
  List.iter
    (fun (at, counters) ->
      Jsonl.write_line oc
        (Jsonl.Obj
           [
             ("type", Jsonl.Str "snapshot");
             ("at", Jsonl.Int at);
             ( "counters",
               Jsonl.Obj (List.map (fun (k, v) -> (k, Jsonl.Int v)) counters) );
           ]))
    snapshots;
  close_out oc

let run_geogauss ?(params = Geogauss.Params.default) ?(connections = 256)
    ?arrival ?req_gen ?trace_file ?(snapshot_every_ms = 100) ~topology ~load
    ~gen ~warmup_ms ~measure_ms ~label () =
  let cluster = Geogauss.Cluster.create ~params ~topology ~load () in
  let n = Topology.n_nodes topology in
  let obs = Geogauss.Cluster.obs cluster in
  if trace_file <> None then Obs.set_tracing obs true;
  (* Open loop when an arrival curve is given: [connections] becomes the
     per-region connection-pool cap and a bounded FIFO absorbs bursts.
     4x the pool is a conventional listen-backlog ratio — deep enough to
     ride out a flash crowd's rise, shallow enough that sustained
     overload sheds instead of growing latency without bound. *)
  let mode =
    match arrival with
    | None -> Geogauss.Client.Closed
    | Some arrival ->
      Geogauss.Client.Open { arrival; queue_cap = 4 * connections }
  in
  let clients =
    List.init n (fun i ->
        let next =
          match req_gen with
          | Some rg -> rg i
          | None ->
            let next = gen i in
            fun () -> Geogauss.Txn.Op_txn (next ())
        in
        let cl =
          Geogauss.Client.create ~mode cluster ~home:i ~connections ~gen:next
        in
        Geogauss.Client.start cl;
        cl)
  in
  Geogauss.Cluster.run_for_ms cluster warmup_ms;
  (* One call clears every instrument, per-epoch table, client-side stat
     and the trace buffer — warm-up never leaks into the window. *)
  Obs.reset_all obs;
  let window_start_us = Sim.now (Geogauss.Cluster.sim cluster) in
  let snapshots = ref [] in
  (match trace_file with
  | Some _ when snapshot_every_ms > 0 ->
    let sim = Geogauss.Cluster.sim cluster in
    let measure_end = Sim.now sim + Sim.ms measure_ms in
    let rec snap () =
      snapshots := (Sim.now sim, Obs.counter_values obs) :: !snapshots;
      if Sim.now sim + Sim.ms snapshot_every_ms <= measure_end then
        Sim.schedule sim ~after:(Sim.ms snapshot_every_ms) snap
    in
    Sim.schedule sim ~after:(Sim.ms snapshot_every_ms) snap
  | _ -> ());
  Geogauss.Cluster.run_for_ms cluster measure_ms;
  (* Final snapshot at the window end: the WAN report reads the closing
     counter values from here. *)
  (match trace_file with
  | Some _ ->
    let sim = Geogauss.Cluster.sim cluster in
    snapshots := (Sim.now sim, Obs.counter_values obs) :: !snapshots
  | None -> ());
  let committed = List.fold_left (fun a c -> a + Geogauss.Client.committed c) 0 clients in
  let aborted = List.fold_left (fun a c -> a + Geogauss.Client.aborted c) 0 clients in
  let latency =
    List.fold_left
      (fun acc c -> Stats.Hist.merge acc (Geogauss.Client.latency c))
      (Stats.Hist.create ()) clients
  in
  let wan = Net.wan_bytes (Geogauss.Cluster.net cluster) in
  let result =
    Result.make ~label
      ~window_s:(float_of_int measure_ms /. 1000.0)
      ~committed ~aborted ~latency ~wan_bytes:wan
  in
  let extra =
    {
      phase_means =
        List.init n (fun i ->
            ( Printf.sprintf "node%d" i,
              Geogauss.Metrics.phase_means_us (Geogauss.Cluster.metrics cluster i) ));
      epoch_cells =
        Geogauss.Metrics.epoch_cells (Geogauss.Cluster.metrics cluster 0);
      offered =
        List.fold_left (fun a c -> a + Geogauss.Client.offered c) 0 clients;
      shed = List.fold_left (fun a c -> a + Geogauss.Client.shed c) 0 clients;
      fastpath =
        List.fold_left
          (fun (s, c, m) i ->
            let mt = Geogauss.Cluster.metrics cluster i in
            ( s + Geogauss.Metrics.spec_count mt,
              c + Geogauss.Metrics.spec_confirms mt,
              m + Geogauss.Metrics.spec_mispredicts mt ))
          (0, 0, 0)
          (List.init n Fun.id);
    }
  in
  (match trace_file with
  | Some path ->
    write_trace ~path ~label ~params ~topology ~nodes:n ~warmup_ms ~measure_ms
      ~window_start_us obs (List.rev !snapshots)
  | None -> ());
  (result, extra)
