module Jsonl = Gg_obs.Jsonl

(* Perf-regression accounting over the committed BENCH_*.json baselines:
   parse two bench reports of the same suite and compare the meaningful
   throughput metrics scenario by scenario. Wall-clock numbers are
   noisy, so deltas only count beyond a caller-chosen noise threshold
   (fraction of the old value); half the threshold flags a warning. *)

type verdict = Same | Improve | Warn | Regress

type row = {
  key : string;  (* scenario / kernel / workload identifier *)
  metric : string;
  old_v : float;
  new_v : float;
  delta_frac : float;  (* (new - old) / old; positive = better here *)
  verdict : verdict;
}

let verdict_to_string = function
  | Same -> "ok"
  | Improve -> "improve"
  | Warn -> "WARN"
  | Regress -> "REGRESS"

let to_float = function
  | Some (Jsonl.Float f) -> f
  | Some (Jsonl.Int i) -> float_of_int i
  | _ -> Float.nan

let judge ~threshold delta =
  (* delta is the fractional change of a higher-is-better metric *)
  if Float.is_nan delta then Warn
  else if delta < -.threshold then Regress
  else if delta < -.(threshold /. 2.0) then Warn
  else if delta > threshold /. 2.0 then Improve
  else Same

(* Compare one higher-is-better metric of matching objects. *)
let metric_row ~threshold ~key ~metric old_j new_j =
  let o = to_float (Jsonl.member metric old_j) in
  let n = to_float (Jsonl.member metric new_j) in
  (* 0 -> 0 is no change (an abort rate staying at zero is fine);
     0 -> nonzero has no meaningful fraction and stays a WARN. *)
  let delta =
    if o = 0.0 then (if n = 0.0 then 0.0 else Float.nan)
    else (n -. o) /. o
  in
  { key; metric; old_v = o; new_v = n; delta_frac = delta;
    verdict = judge ~threshold delta }

let obj_list j key =
  match Jsonl.member key j with
  | Some (Jsonl.List l) -> l
  | _ -> []

let find_by field value l =
  List.find_opt (fun j -> Jsonl.to_str (Jsonl.member field j) = value) l

let find_by_int field value l =
  List.find_opt (fun j -> Jsonl.to_int ~default:min_int (Jsonl.member field j) = value) l

let missing_row ~key =
  {
    key;
    metric = "missing";
    old_v = Float.nan;
    new_v = Float.nan;
    delta_frac = Float.nan;
    verdict = Warn;
  }

(* ISSUE acceptance gate: tracing must stay within 5% of the untraced
   wall clock. Applied as an absolute ceiling on the new report, not a
   relative delta — a baseline that already crept up must not grandfather
   further creep. *)
let overhead_ceiling = 0.05

let diff_wallclock ~threshold old_j new_j =
  let olds = obj_list old_j "scenarios" and news = obj_list new_j "scenarios" in
  let metrics =
    [ "events_per_s"; "merged_records_per_s"; "batches_encoded_per_s" ]
  in
  let rows =
    List.concat_map
      (fun o ->
        let label = Jsonl.to_str (Jsonl.member "label" o) in
        match find_by "label" label news with
        | None -> [ missing_row ~key:label ]
        | Some n ->
          List.map (fun m -> metric_row ~threshold ~key:label ~metric:m o n) metrics)
      olds
  in
  let overhead =
    match (Jsonl.member "tracing_overhead" old_j, Jsonl.member "tracing_overhead" new_j) with
    | Some o, Some n ->
      let ov = to_float (Jsonl.member "overhead_frac" o) in
      let nv = to_float (Jsonl.member "overhead_frac" n) in
      [
        {
          key = "tracing";
          metric = "overhead_frac";
          old_v = ov;
          new_v = nv;
          delta_frac = nv -. ov;
          verdict =
            (if Float.is_nan nv || nv > overhead_ceiling then Regress else Same);
        };
      ]
    | _ -> []
  in
  rows @ overhead

let diff_merge ~threshold old_j new_j =
  let olds = obj_list old_j "kernels" and news = obj_list new_j "kernels" in
  List.map
    (fun o ->
      let jobs = Jsonl.to_int ~default:(-1) (Jsonl.member "jobs" o) in
      let key = Printf.sprintf "jobs=%d" jobs in
      match find_by_int "jobs" jobs news with
      | None -> missing_row ~key
      | Some n -> metric_row ~threshold ~key ~metric:"cold_records_per_s" o n)
    olds

(* Scale suite (BENCH_scale.json): per-(mode, replicas) points. tput is
   higher-is-better as usual; wan_kb_per_txn is the partial-replication
   acceptance metric and LOWER is better, so its delta is inverted
   before judging (the rendered delta still shows the raw change). *)
let diff_scale ~threshold old_j new_j =
  let olds = obj_list old_j "points" and news = obj_list new_j "points" in
  let find_point mode replicas l =
    List.find_opt
      (fun j ->
        Jsonl.to_str (Jsonl.member "mode" j) = mode
        && Jsonl.to_int ~default:min_int (Jsonl.member "replicas" j) = replicas)
      l
  in
  List.concat_map
    (fun o ->
      let mode = Jsonl.to_str (Jsonl.member "mode" o) in
      let replicas = Jsonl.to_int ~default:(-1) (Jsonl.member "replicas" o) in
      let key = Printf.sprintf "%s/n=%d" mode replicas in
      match find_point mode replicas news with
      | None -> [ missing_row ~key ]
      | Some n ->
        let tput = metric_row ~threshold ~key ~metric:"tput" o n in
        let wan = metric_row ~threshold ~key ~metric:"wan_kb_per_txn" o n in
        [ tput; { wan with verdict = judge ~threshold (-.wan.delta_frac) } ])
    olds

(* Skew suite (BENCH_skew.json): per-(workload, merge_level) points.
   tput is higher-is-better; abort_rate and wan_kb_per_txn are
   lower-is-better, so their deltas are inverted before judging (the
   rendered delta still shows the raw change). *)
let diff_skew ~threshold old_j new_j =
  let olds = obj_list old_j "points" and news = obj_list new_j "points" in
  let find_point workload level l =
    List.find_opt
      (fun j ->
        Jsonl.to_str (Jsonl.member "workload" j) = workload
        && Jsonl.to_str (Jsonl.member "merge_level" j) = level)
      l
  in
  List.concat_map
    (fun o ->
      let workload = Jsonl.to_str (Jsonl.member "workload" o) in
      let level = Jsonl.to_str (Jsonl.member "merge_level" o) in
      let key = Printf.sprintf "%s/%s" workload level in
      match find_point workload level news with
      | None -> [ missing_row ~key ]
      | Some n ->
        let tput = metric_row ~threshold ~key ~metric:"tput" o n in
        let abort = metric_row ~threshold ~key ~metric:"abort_rate" o n in
        let wan = metric_row ~threshold ~key ~metric:"wan_kb_per_txn" o n in
        [
          tput;
          { abort with verdict = judge ~threshold (-.abort.delta_frac) };
          { wan with verdict = judge ~threshold (-.wan.delta_frac) };
        ])
    olds

(* Fastpath suite (BENCH_fastpath.json): per-(engine, clock_skew_ms)
   points of the clock-assisted speculative-sealing sweep. Latency
   percentiles (p50_ms, p95_ms) and the misprediction rate are all
   LOWER-is-better, so their deltas are inverted before judging; tput
   stays higher-is-better. *)
let diff_fastpath ~threshold old_j new_j =
  let olds = obj_list old_j "points" and news = obj_list new_j "points" in
  let find_point engine skew l =
    List.find_opt
      (fun j ->
        Jsonl.to_str (Jsonl.member "engine" j) = engine
        && Jsonl.to_int ~default:min_int (Jsonl.member "clock_skew_ms" j)
           = skew)
      l
  in
  List.concat_map
    (fun o ->
      let engine = Jsonl.to_str (Jsonl.member "engine" o) in
      let skew = Jsonl.to_int ~default:(-1) (Jsonl.member "clock_skew_ms" o) in
      let key =
        if skew < 0 then engine else Printf.sprintf "%s/skew=%d" engine skew
      in
      match find_point engine skew news with
      | None -> [ missing_row ~key ]
      | Some n ->
        let lower metric =
          let r = metric_row ~threshold ~key ~metric o n in
          { r with verdict = judge ~threshold (-.r.delta_frac) }
        in
        [
          metric_row ~threshold ~key ~metric:"tput" o n;
          lower "p50_ms";
          lower "p95_ms";
          lower "mispredict_rate";
        ])
    olds

(* Parallel-scaling numbers swing hard with host load; never gate on
   them, only surface the comparison. *)
let diff_parallel ~threshold old_j new_j =
  let olds = obj_list old_j "workloads" and news = obj_list new_j "workloads" in
  List.concat_map
    (fun o ->
      let wl = Jsonl.to_str (Jsonl.member "workload" o) in
      match find_by "workload" wl news with
      | None -> [ missing_row ~key:wl ]
      | Some n ->
        List.map
          (fun op ->
            let jobs = Jsonl.to_int ~default:(-1) (Jsonl.member "jobs" op) in
            let key = Printf.sprintf "%s/jobs=%d" wl jobs in
            match find_by_int "jobs" jobs (obj_list n "points") with
            | None -> missing_row ~key
            | Some np ->
              let r = metric_row ~threshold ~key ~metric:"speedup" op np in
              { r with verdict = (match r.verdict with Regress -> Warn | v -> v) })
          (obj_list o "points"))
    olds

let diff ?(threshold = 0.25) ~old_json ~new_json () =
  match (Jsonl.parse old_json, Jsonl.parse new_json) with
  | Error e, _ -> Error (Printf.sprintf "old report: %s" e)
  | _, Error e -> Error (Printf.sprintf "new report: %s" e)
  | Ok old_j, Ok new_j -> (
    let suite j = Jsonl.to_str (Jsonl.member "suite" j) in
    let os = suite old_j and ns = suite new_j in
    if os <> ns then
      Error (Printf.sprintf "suite mismatch: old=%S new=%S" os ns)
    else
      match os with
      | "wallclock" -> Ok (diff_wallclock ~threshold old_j new_j)
      | "merge" -> Ok (diff_merge ~threshold old_j new_j)
      | "parallel" -> Ok (diff_parallel ~threshold old_j new_j)
      | "scale" -> Ok (diff_scale ~threshold old_j new_j)
      | "skew" -> Ok (diff_skew ~threshold old_j new_j)
      | "fastpath" -> Ok (diff_fastpath ~threshold old_j new_j)
      | other -> Error (Printf.sprintf "unknown suite %S" other))

let diff_files ?threshold ~old_path ~new_path () =
  let read path =
    match open_in_bin path with
    | exception Sys_error msg -> Error msg
    | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
  in
  match (read old_path, read new_path) with
  | Error e, _ -> Error (Printf.sprintf "%s: %s" old_path e)
  | _, Error e -> Error (Printf.sprintf "%s: %s" new_path e)
  | Ok o, Ok n -> diff ?threshold ~old_json:o ~new_json:n ()

let has_regression rows = List.exists (fun r -> r.verdict = Regress) rows
let has_warning rows = List.exists (fun r -> r.verdict = Warn) rows

let render rows =
  let table =
    Gg_util.Tablefmt.create ~title:"Bench comparison (old -> new)"
      ~headers:[ "scenario"; "metric"; "old"; "new"; "delta"; "verdict" ]
  in
  List.iter
    (fun r ->
      let fmt v =
        if Float.is_nan v then "-"
        else if Float.abs v >= 1000.0 then Gg_util.Tablefmt.fmt_si v
        else Gg_util.Tablefmt.fmt_f ~dec:3 v
      in
      Gg_util.Tablefmt.add_row table
        [
          r.key;
          r.metric;
          fmt r.old_v;
          fmt r.new_v;
          (if Float.is_nan r.delta_frac then "-"
           else Printf.sprintf "%+.1f%%" (100.0 *. r.delta_frac));
          verdict_to_string r.verdict;
        ])
    rows;
  Gg_util.Tablefmt.render table
