type counts = {
  events : int;
  merged : int;
  encodes : int;
  committed : int;
  aborted : int;
}

type scenario = {
  name : string;
  sim_ms : int;
  run : tracing:bool -> unit -> counts;
}

let run_cluster ~tracing ~topology ~load ~gen ~connections ~sim_ms () =
  let cluster = Geogauss.Cluster.create ~topology ~load () in
  if tracing then Gg_obs.Obs.set_tracing (Geogauss.Cluster.obs cluster) true;
  let n = Gg_sim.Topology.n_nodes topology in
  let clients =
    List.init n (fun i ->
        let next = gen i in
        let cl =
          Geogauss.Client.create cluster ~home:i ~connections ~gen:(fun () ->
              Geogauss.Txn.Op_txn (next ()))
        in
        Geogauss.Client.start cl;
        cl)
  in
  let sim = Geogauss.Cluster.sim cluster in
  Gg_crdt.Writeset.Batch.reset_encode_count ();
  let ev0 = Gg_sim.Sim.events sim in
  Geogauss.Cluster.run_for_ms cluster sim_ms;
  List.iter Geogauss.Client.stop clients;
  let merged = ref 0 in
  for i = 0 to n - 1 do
    merged :=
      !merged
      + Geogauss.Metrics.merged_records (Geogauss.Cluster.metrics cluster i)
  done;
  {
    events = Gg_sim.Sim.events sim - ev0;
    merged = !merged;
    encodes = Gg_crdt.Writeset.Batch.encode_count ();
    committed = Geogauss.Cluster.total_committed cluster;
    aborted = Geogauss.Cluster.total_aborted cluster;
  }

let ycsb ~fast =
  let sim_ms = if fast then 500 else 2_000 in
  let records = if fast then 5_000 else 20_000 in
  {
    name = "ycsb-medium/china3";
    sim_ms;
    run =
      (fun ~tracing () ->
        let profile =
          Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention
            records
        in
        run_cluster ~tracing
          ~topology:(Gg_sim.Topology.china3 ())
          ~load:(Gg_workload.Ycsb.load profile)
          ~gen:(Driver.ycsb_gens profile ~seed:42)
          ~connections:64 ~sim_ms ());
  }

let tpcc ~fast =
  let sim_ms = if fast then 500 else 2_000 in
  {
    name = "tpcc-small/china3";
    sim_ms;
    run =
      (fun ~tracing () ->
        let cfg = Gg_workload.Tpcc.small in
        run_cluster ~tracing
          ~topology:(Gg_sim.Topology.china3 ())
          ~load:(Gg_workload.Tpcc.load cfg)
          ~gen:(Driver.tpcc_gens cfg ~seed:42)
          ~connections:32 ~sim_ms ());
  }

let scenarios ~fast = [ ycsb ~fast; tpcc ~fast ]

let traced_scenario ~fast =
  let s = ycsb ~fast in
  { s with name = s.name ^ "+trace" }
