(** Measurement results shared by every experiment. *)

type t = {
  label : string;
  window_s : float;  (** measurement window (simulated seconds) *)
  committed : int;
  aborted : int;
  tput : float;  (** committed transactions per second *)
  abort_tput : float;
  mean_ms : float;  (** mean committed latency *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  abort_rate : float;  (** aborted / (committed + aborted) *)
  wan_kb_per_txn : float;  (** compressed cross-region bytes per finished txn *)
}

val make :
  label:string ->
  window_s:float ->
  committed:int ->
  aborted:int ->
  latency:Gg_util.Stats.Hist.t ->
  wan_bytes:int ->
  t

val row : t -> string list
(** [label; tput; abort-tput; mean; p50; p95; p99; max; abort rate; wan]
    cells. *)

val headers : string list
