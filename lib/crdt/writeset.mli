(** Write sets — the delta states GeoGauss replicates (paper §3).

    A transaction's write set is the list of rows it wrote, each a full
    row image plus operation kind. Write sets are the only thing
    exchanged between masters: together with {!Meta.t} they form the
    delta-state CRDT update merged by {!Merge}.

    Hot-path note: records memoize their encoded primary key and batches
    memoize their wire form, so key encoding and encode+compress each
    happen at most once per object lifetime. Records and write sets are
    treated as immutable after construction — build them with
    {!make_record} / {!make} / {!with_commit} rather than mutating
    fields, or the caches go stale. *)

type op = Insert | Update | Delete

type record = {
  table : string;
  key : Gg_storage.Value.t array;
  op : op;
  data : Gg_storage.Value.t array;  (** empty for [Delete] *)
  cols : int;
      (** column mask of an [Update] ({!Column.full} = whole row image).
          Column-level merge resolves only the covered columns; masked
          records travel in a compact wire form carrying just those
          values (uncovered slots decode as [Null] and are never read).
          Always {!Column.full} under row-level merge, which keeps its
          wire stream byte-identical to the pre-column codec. *)
  mutable key_enc : string;
      (** memoized [Value.encode_key key]; [""] until first use. Use
          {!key_str}, never read this field directly. *)
}

type t = {
  meta : Meta.t;
  records : record list;
  read_keys : (string * string) list;
      (** (table, encoded key) read-set keys, shipped only under the SSI
          extension (§4.3 sketches this and rejects it for WAN cost; we
          make the cost measurable) *)
  mutable enc_size : int;
      (** memoized {!encoded_size}; [-1] until first use *)
}

val make :
  ?read_keys:(string * string) list ->
  meta:Meta.t ->
  records:record list ->
  unit ->
  t

val make_record :
  ?key_str:string ->
  ?cols:int ->
  table:string ->
  key:Gg_storage.Value.t array ->
  op:op ->
  data:Gg_storage.Value.t array ->
  unit ->
  record
(** Pass [key_str] when the caller already holds [Value.encode_key key]
    (the executors do) to seed the cache and skip the encode entirely.
    [cols] (default {!Column.full}) is only meaningful on [Update]s. *)

val with_commit : t -> meta:Meta.t -> read_keys:(string * string) list -> t
(** Fresh write set with commit-time [meta]/[read_keys] substituted and
    size cache invalidated; the records (and their key caches) are
    shared. *)

val key_str : record -> string
(** Encoded primary key (hash-index key). Memoized: encodes on first
    call, returns the cache afterwards. *)

val op_to_string : op -> string

val encode : Gg_util.Codec.Enc.t -> t -> unit
val decode : Gg_util.Codec.Dec.t -> t

val encoded_size : t -> int
(** Size of the uncompressed binary encoding in bytes (memoized). *)

(** {1 Epoch batches}

    At the end of each epoch a node packages all write sets with that
    commit epoch number and ships them to every peer. An [eof] batch may
    carry zero transactions — the "empty message" of §4.2.3 that prevents
    remote peers from waiting forever. Mini-batches ([eof = false])
    support the pipelining optimisation of §5.1. *)

module Batch : sig
  type ws = t

  type t = {
    node : int;  (** originating replica *)
    cen : int;  (** commit epoch of every transaction inside *)
    txns : ws list;
    eof : bool;  (** final batch of this node's epoch [cen] *)
    count : int;
        (** on [eof] batches: total transactions the node committed into
            this epoch, across all mini-batches. Receivers use it to
            verify completeness even when the network reorders
            mini-batches after the EOF marker. *)
    span : int;
        (** origin causal span id ({!Gg_obs.Obs.new_span} of the sender);
            [0] when tracing was off. Carried in a fixed 8-byte header
            outside the compressed payload, so the wire size never
            depends on whether tracing is enabled. *)
    mutable wire : bytes option;
        (** memoized {!to_wire} result; use the functions, not the
            field *)
  }

  val make :
    node:int ->
    cen:int ->
    txns:ws list ->
    eof:bool ->
    ?count:int ->
    ?span:int ->
    unit ->
    t
  (** [count] defaults to [List.length txns]; [span] to [0]. *)

  val to_wire : t -> bytes
  (** Encode then compress (the paper pipes write sets through protobuf +
      gzip). Memoized: the first call pays encode+compress, later calls
      (and {!wire_size}) return the cached bytes. *)

  val to_wire_par : jobs:int -> t -> bytes
  (** Like {!to_wire} but encodes the transactions in [jobs] contiguous
      chunks on as many domains ({!Gg_par.Pool.map_chunks}); the chunk
      buffers are concatenated in order and compressed single-stream, so
      the result is byte-identical to {!to_wire} at any [jobs]. Same
      cache; the encode counter bumps once either way. *)

  val of_wire : bytes -> t
  (** Raises [Invalid_argument] on corrupt input. The decoded batch
      retains [bytes] as its cached wire form. *)

  val of_wire_opt : bytes -> t option
  (** [None] on truncated or corrupt input instead of raising — the form
      receivers use on frames that crossed the (faulty) network, so a
      mangled payload degrades to a lost message handled by the
      batch-loss repair path rather than a crash. *)

  val wire_size : t -> int
  (** [Bytes.length (to_wire t)], via the cache. *)

  val encode_count : unit -> int
  (** Number of actual encode+compress passes performed on the calling
      domain (cache hits excluded) — instrumentation for the wallclock
      bench. Domain-local so concurrent pool tasks count independently;
      reset and read it from within the same task. *)

  val reset_encode_count : unit -> unit
end
