module Value = Gg_storage.Value
module Enc = Gg_util.Codec.Enc
module Dec = Gg_util.Codec.Dec

type op = Insert | Update | Delete

type record = {
  table : string;
  key : Value.t array;
  op : op;
  data : Value.t array;
  cols : int;
      (* column mask of an Update (Column.full = whole row); always
         Column.full outside column-level merge *)
  mutable key_enc : string;
      (* memoized Value.encode_key of [key]; "" = not yet computed *)
}

type t = {
  meta : Meta.t;
  records : record list;
  read_keys : (string * string) list;
      (* (table, encoded key); shipped only under the SSI extension *)
  mutable enc_size : int;  (* memoized encoded_size; -1 = not yet computed *)
}

let make ?(read_keys = []) ~meta ~records () =
  { meta; records; read_keys; enc_size = -1 }

let make_record ?(key_str = "") ?(cols = Column.full) ~table ~key ~op ~data () =
  { table; key; op; data; cols; key_enc = key_str }

let with_commit t ~meta ~read_keys = { t with meta; read_keys; enc_size = -1 }

(* Each record's key is encoded at most once: construction sites that
   already hold the encoding pass it in, everyone else pays one
   [Value.encode_key] on first use and hits the cache afterwards. *)
let key_str r =
  if r.key_enc <> "" then r.key_enc
  else begin
    let s = Value.encode_key r.key in
    r.key_enc <- s;
    s
  end

let op_to_string = function
  | Insert -> "insert"
  | Update -> "update"
  | Delete -> "delete"

let op_tag = function Insert -> 0 | Update -> 1 | Delete -> 2

let op_of_tag = function
  | 0 -> Insert
  | 1 -> Update
  | 2 -> Delete
  | n -> invalid_arg (Printf.sprintf "Writeset: bad op tag %d" n)

(* Wire op tag 3: a masked Update — only the columns in the mask travel.
   It is emitted exactly when [cols <> Column.full], which only column-
   level merge produces, so row-level streams carry tags 0-2 only and
   stay byte-identical to the pre-column codec. *)
let masked_update_tag = 3

let encode_record enc r =
  Enc.string enc r.table;
  Enc.varint enc (Array.length r.key);
  (* [Value.encode_key] is exactly the concatenation of the per-value
     encodings, so the cached key doubles as the wire form. *)
  Enc.raw enc (key_str r);
  if r.op = Update && r.cols <> Column.full then begin
    Enc.byte enc masked_update_tag;
    Enc.varint enc (Array.length r.data);
    Enc.varint enc r.cols;
    Array.iteri
      (fun i v -> if Column.covers ~cols:r.cols i then Value.encode enc v)
      r.data
  end
  else begin
    Enc.byte enc (op_tag r.op);
    Enc.varint enc (Array.length r.data);
    Array.iter (Value.encode enc) r.data
  end

let decode_record dec =
  let table = Dec.string dec in
  let klen = Dec.varint dec in
  let kpos = Dec.pos dec in
  let key = Array.init klen (fun _ -> Value.decode dec) in
  (* Capture the key's wire span: the decoded record arrives with its
     key encoding already cached, no re-encode needed. *)
  let key_enc = Dec.sub_string dec ~pos:kpos ~len:(Dec.pos dec - kpos) in
  let tag = Dec.byte dec in
  if tag = masked_update_tag then begin
    let dlen = Dec.varint dec in
    let cols = Dec.varint dec in
    if cols = Column.full then
      invalid_arg "Writeset: masked update with a full mask";
    (* Unmasked slots are Null placeholders: the merge only ever reads
       covered columns of a masked record. *)
    let data = Array.make dlen Value.Null in
    for i = 0 to dlen - 1 do
      if Column.covers ~cols i then data.(i) <- Value.decode dec
    done;
    { table; key; op = Update; data; cols; key_enc }
  end
  else
    let op = op_of_tag tag in
    let dlen = Dec.varint dec in
    let data = Array.init dlen (fun _ -> Value.decode dec) in
    { table; key; op; data; cols = Column.full; key_enc }

let encode enc t =
  Meta.encode enc t.meta;
  Enc.varint enc (List.length t.records);
  List.iter (encode_record enc) t.records;
  Enc.varint enc (List.length t.read_keys);
  List.iter
    (fun (table, key_str) ->
      Enc.string enc table;
      Enc.string enc key_str)
    t.read_keys

let decode dec =
  let meta = Meta.decode dec in
  let n = Dec.varint dec in
  let records = List.init n (fun _ -> decode_record dec) in
  let nr = Dec.varint dec in
  let read_keys =
    List.init nr (fun _ ->
        let table = Dec.string dec in
        let key_str = Dec.string dec in
        (table, key_str))
  in
  { meta; records; read_keys; enc_size = -1 }

let encoded_size t =
  if t.enc_size >= 0 then t.enc_size
  else begin
    let enc = Enc.create () in
    encode enc t;
    let n = Enc.length enc in
    t.enc_size <- n;
    n
  end

module Batch = struct
  type ws = t

  type t = {
    node : int;
    cen : int;
    txns : ws list;
    eof : bool;
    count : int;
    span : int;  (* origin causal span; 0 = untraced *)
    mutable wire : bytes option;  (* memoized [to_wire] result *)
  }

  (* Domain-local, not a plain global: bench scenarios run one-per-task
     on a Domain pool, and each task resets then reads the counter for
     the whole simulation it owns. A shared ref would mix concurrent
     scenarios' counts (and race). *)
  let encodes = Gg_par.Pool.Local_counter.create ()
  let encode_count () = Gg_par.Pool.Local_counter.get encodes
  let reset_encode_count () = Gg_par.Pool.Local_counter.reset encodes
  let count_encode () = Gg_par.Pool.Local_counter.incr encodes

  let make ~node ~cen ~txns ~eof ?count ?(span = 0) () =
    {
      node;
      cen;
      txns;
      eof;
      count = Option.value count ~default:(List.length txns);
      span;
      wire = None;
    }

  (* The trace context travels as a fixed-width header OUTSIDE the
     compressed payload: compression output length depends on content,
     so an in-payload span would make the wire size (and thus every
     simulated byte count) vary with the span value — tracing could then
     perturb the simulation it observes. Eight header bytes are always
     present, span 0 meaning "untraced". *)
  let span_header_bytes = 8

  (* Parallel encode produces the exact sequential byte stream: the
     transaction list is split into contiguous chunks, each chunk is
     encoded into its own buffer on its own domain, and the buffers are
     concatenated in chunk order — the same bytes a left-to-right pass
     writes. Compression stays single-stream over the concatenation, so
     the compressed wire form (and thus every simulated byte count
     derived from it) is unchanged at any [jobs]. *)
  let encode_wire ~jobs t =
    count_encode ();
    let enc = Enc.create () in
    Enc.varint enc t.node;
    Enc.varint enc t.cen;
    Enc.bool enc t.eof;
    Enc.varint enc t.count;
    Enc.varint enc (List.length t.txns);
    if jobs <= 1 then List.iter (encode enc) t.txns
    else
      Gg_par.Pool.map_chunks ~jobs t.txns ~f:(fun chunk ->
          let e = Enc.create () in
          List.iter (encode e) chunk;
          Enc.to_bytes e)
      |> List.iter (fun b -> Enc.raw enc (Bytes.unsafe_to_string b));
    let payload = Gg_util.Compress.compress (Enc.to_bytes enc) in
    let out = Bytes.create (span_header_bytes + Bytes.length payload) in
    Bytes.set_int64_le out 0 (Int64.of_int t.span);
    Bytes.blit payload 0 out span_header_bytes (Bytes.length payload);
    out

  let to_wire_jobs ~jobs t =
    match t.wire with
    | Some bytes -> bytes
    | None ->
      let bytes = encode_wire ~jobs t in
      t.wire <- Some bytes;
      bytes

  let to_wire t = to_wire_jobs ~jobs:1 t
  let to_wire_par ~jobs t = to_wire_jobs ~jobs t

  let of_wire bytes =
    if Bytes.length bytes < span_header_bytes then
      invalid_arg "Writeset.Batch.of_wire: truncated";
    let span = Int64.to_int (Bytes.get_int64_le bytes 0) in
    let raw =
      Gg_util.Compress.decompress
        (Bytes.sub bytes span_header_bytes
           (Bytes.length bytes - span_header_bytes))
    in
    let dec = Dec.of_bytes raw in
    try
      let node = Dec.varint dec in
      let cen = Dec.varint dec in
      let eof = Dec.bool dec in
      let count = Dec.varint dec in
      let n = Dec.varint dec in
      let txns = List.init n (fun _ -> decode dec) in
      (* The input is this batch's wire form: keep it so re-forwarding or
         sizing the batch never re-encodes. *)
      { node; cen; txns; eof; count; span; wire = Some bytes }
    with Dec.Truncated -> invalid_arg "Writeset.Batch.of_wire: truncated"

  let wire_size t = Bytes.length (to_wire t)

  (* Total decode surface for frames off the (possibly corrupted) wire:
     the compressor and the codec both signal damage with
     [Invalid_argument], which must never escape into the simulation —
     a corrupt frame is a dropped frame (the repair path re-fetches). *)
  let of_wire_opt bytes =
    match of_wire bytes with
    | b -> Some b
    | exception Invalid_argument _ -> None
end
