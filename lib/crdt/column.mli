(** Column-level LWW lattice (DESIGN.md §13) — the per-field counterpart
    of {!Merge}'s row lattice, in the style of crdt-sqlite's per-column
    versions + row tombstones.

    Everything here is epoch-scoped: cells and claims compare
    {!Meta.t}s of one commit epoch ({!Meta.wins_over} raises across
    epochs, on purpose — cross-epoch precedence is already decided by
    the row header's [cen]). The order is identical to the row order of
    {!Merge.decide} restricted to one epoch — larger [sen] wins, ties
    broken by the smaller [csn] — so the row header's winner and the
    cell winners agree whenever only one candidate exists. *)

(** {1 Column masks}

    A mask is a bitmask over data-array indices; [full] (0) means
    "whole row". Masks ride on {!Writeset.record.cols}. *)

val max_mask_cols : int
(** Widest maskable row (62 columns); wider writes fall back to
    {!full}. *)

val full : int
(** The whole-row mask, [0] — the only mask row-level merge ever
    produces, which keeps its wire stream byte-identical. *)

val of_index : int -> int
(** Mask covering one column; {!full} when out of mask range. *)

val union : int -> int -> int
(** Mask covering both operands; {!full} absorbs. *)

val covers : cols:int -> int -> bool
(** Does [cols] cover data index [i]? [full] covers everything. *)

(** {1 Cells} *)

type cell = { meta : Meta.t; v : Gg_storage.Value.t }
(** One written value of one column, tagged with its writer. *)

val cell : meta:Meta.t -> Gg_storage.Value.t -> cell

val join : cell -> cell -> cell
(** Semilattice join: the cell of the winning writer. Commutative,
    associative, idempotent (csns of an epoch are unique, so distinct
    metas are totally ordered). *)

val join_opt : cell option -> cell -> cell

(** {1 Row claims} *)

type claim = { c_meta : Meta.t; c_delete : bool }
(** A row-granularity claim by an update or delete candidate. The join
    over a row's claims is the record its header gets stamped with;
    [c_delete] of the join decides whether the row survives the epoch
    (tombstone-vs-update races resolve here, at row granularity). *)

val claim : meta:Meta.t -> delete:bool -> claim
val claim_join : claim -> claim -> claim
val claim_join_opt : claim option -> claim -> claim
