module Value = Gg_storage.Value

(* Column masks are bitmask-over-data-index; rows wider than an OCaml
   int's usable bits fall back to the whole-row form (mask 0). *)
let max_mask_cols = 62

let full = 0

let of_index i = if i < 0 || i >= max_mask_cols then full else 1 lsl i

let union a b = if a = full || b = full then full else a lor b

let covers ~cols i = cols = full || (i < max_mask_cols && cols land (1 lsl i) <> 0)

(* The cell order is exactly the row order of {!Merge.decide} restricted
   to one epoch: larger sen (shorter transaction) wins, ties broken by
   the smaller csn (first writer). Distinct metas of one epoch are
   totally ordered — csns are unique — so [join] is a semilattice join:
   commutative, associative, idempotent. *)
type cell = { meta : Meta.t; v : Value.t }

let cell ~meta v = { meta; v }

let join a b = if Meta.wins_over b.meta a.meta then b else a

let join_opt prev c = match prev with None -> c | Some p -> join p c

(* Row-granularity claim by an update or delete candidate: the join of
   all claims on a row names the record the row header ends up stamped
   with, and its [delete] flag decides whether updates may commit at
   all under column-level merge. *)
type claim = { c_meta : Meta.t; c_delete : bool }

let claim ~meta ~delete = { c_meta = meta; c_delete = delete }

let claim_join a b = if Meta.wins_over b.c_meta a.c_meta then b else a

let claim_join_opt prev c =
  match prev with None -> c | Some p -> claim_join p c
