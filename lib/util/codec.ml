module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let length = Buffer.length
  let to_bytes t = Buffer.to_bytes t
  let byte t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let varint t v =
    if v < 0 then invalid_arg "Codec.Enc.varint: negative";
    let rec go v =
      if v < 0x80 then byte t v
      else begin
        byte t (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  let zigzag t v =
    (* Zigzag over the full 63-bit pattern; [u] may print as negative but
       the [lsr]-based loop treats it as unsigned. *)
    let u = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
    let rec go u =
      if u land lnot 0x7F = 0 then byte t u
      else begin
        byte t (0x80 lor (u land 0x7F));
        go (u lsr 7)
      end
    in
    go u

  let float t f =
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF)
    done

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let raw t s = Buffer.add_string t s

  let bool t b = byte t (if b then 1 else 0)
end

module Dec = struct
  type t = { data : bytes; mutable pos : int }

  exception Truncated

  let of_bytes data = { data; pos = 0 }
  let pos t = t.pos
  let at_end t = t.pos >= Bytes.length t.data

  let byte t =
    if t.pos >= Bytes.length t.data then raise Truncated;
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let varint t =
    let rec go shift acc =
      if shift > 63 then raise Truncated;
      let b = byte t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let zigzag t =
    let v = varint t in
    (v lsr 1) lxor (-(v land 1))

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string t =
    let len = varint t in
    if t.pos + len > Bytes.length t.data then raise Truncated;
    let s = Bytes.sub_string t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let sub_string t ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length t.data then raise Truncated;
    Bytes.sub_string t.data pos len

  let bool t = byte t <> 0
end
