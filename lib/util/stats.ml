module Acc = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; total = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.count = 1 then begin
      t.min <- x;
      t.max <- x
    end else begin
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let count = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean =
        a.mean +. (delta *. float_of_int b.count /. float_of_int count)
      in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta
            *. float_of_int a.count *. float_of_int b.count
            /. float_of_int count)
      in
      {
        count;
        mean;
        m2;
        min = Stdlib.min a.min b.min;
        max = Stdlib.max a.max b.max;
        total = a.total +. b.total;
      }
    end
end

module Hist = struct
  (* Buckets grow by [growth] per step starting from [first]; values below
     [first] all land in bucket 0. *)
  let first = 1.0
  let growth = 1.04
  let log_growth = log growth
  let n_buckets = 1024

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable max : float;
  }

  let create () =
    { buckets = Array.make n_buckets 0; count = 0; sum = 0.0; max = 0.0 }

  let bucket_of x =
    if x <= first then 0
    else
      let b = 1 + int_of_float (log (x /. first) /. log_growth) in
      if b >= n_buckets then n_buckets - 1 else b

  (* Representative (upper bound) value for a bucket. *)
  let value_of b = if b = 0 then first else first *. Float.pow growth (float_of_int b)

  let add t x =
    let x = Stdlib.max 0.0 x in
    t.buckets.(bucket_of x) <- t.buckets.(bucket_of x) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  (* Linear interpolation between the crossing bucket's bounds: returning
     the bucket's upper bound alone overstates tails by up to one growth
     step (4%), which is visible on p95/p99 of tight distributions. The
     target rank is placed proportionally between the bucket's lower and
     upper bound by how far into the bucket's population it falls, then
     clamped to the observed maximum. *)
  let percentile t p =
    if t.count = 0 then 0.0
    else begin
      let target = p /. 100.0 *. float_of_int t.count in
      let rec loop b seen =
        if b >= n_buckets then t.max
        else
          let in_bucket = t.buckets.(b) in
          let seen' = seen + in_bucket in
          if float_of_int seen' >= target && in_bucket > 0 then begin
            let lo = if b = 0 then 0.0 else value_of (b - 1) in
            let hi = value_of b in
            let frac =
              (target -. float_of_int seen) /. float_of_int in_bucket
            in
            let frac = Stdlib.max 0.0 (Stdlib.min 1.0 frac) in
            Stdlib.min (lo +. ((hi -. lo) *. frac)) t.max
          end
          else loop (b + 1) seen'
      in
      loop 0 0
    end

  let p50 t = percentile t 50.0
  let p95 t = percentile t 95.0
  let p99 t = percentile t 99.0
  let max t = t.max

  let merge a b =
    let r = create () in
    for i = 0 to n_buckets - 1 do
      r.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
    done;
    r.count <- a.count + b.count;
    r.sum <- a.sum +. b.sum;
    r.max <- Stdlib.max a.max b.max;
    r
end

module Series = struct
  type t = { mutable xs : float list; mutable ys : float list; mutable n : int }

  let create () = { xs = []; ys = []; n = 0 }

  let add t ~x ~y =
    t.xs <- x :: t.xs;
    t.ys <- y :: t.ys;
    t.n <- t.n + 1

  let length t = t.n

  let points t =
    let xs = Array.of_list (List.rev t.xs) in
    let ys = Array.of_list (List.rev t.ys) in
    Array.map2 (fun x y -> (x, y)) xs ys
end
