(** Compact binary encoding used to serialize write sets and protocol
    messages. Sizes measured on these encodings feed the WAN-traffic
    accounting (paper Table 3). *)

(** {1 Encoding} *)

module Enc : sig
  type t

  val create : unit -> t
  val length : t -> int
  val to_bytes : t -> bytes
  val byte : t -> int -> unit
  (** Low 8 bits. *)

  val varint : t -> int -> unit
  (** LEB128, non-negative integers only; raises [Invalid_argument] on a
      negative argument. *)

  val zigzag : t -> int -> unit
  (** Signed integers via zigzag + LEB128. *)

  val float : t -> float -> unit
  (** 8-byte IEEE754 little endian. *)

  val string : t -> string -> unit
  (** Length-prefixed. *)

  val raw : t -> string -> unit
  (** Append bytes verbatim, no length prefix — for splicing an
      already-encoded fragment into a stream. *)

  val bool : t -> bool -> unit
end

(** {1 Decoding} *)

module Dec : sig
  type t

  exception Truncated
  (** Raised when reading past the end of input or on malformed data. *)

  val of_bytes : bytes -> t
  val pos : t -> int
  val at_end : t -> bool
  val byte : t -> int
  val varint : t -> int
  val zigzag : t -> int
  val float : t -> float
  val string : t -> string
  val bool : t -> bool

  val sub_string : t -> pos:int -> len:int -> string
  (** Copy out a slice of the underlying input without advancing the
      cursor — for capturing the exact wire form of a decoded span. *)
end
