(* Partition map for partial replication (DESIGN.md §12): nodes are
   assigned to replica groups, keys hash onto groups, and write-set
   dissemination/merging is scoped to the groups a transaction touches.
   The map is a pure function of the topology and the [Params.
   partitioning] mode, so every node computes the identical map. *)

module Topology = Gg_sim.Topology
module Writeset = Gg_crdt.Writeset
module Table = Gg_storage.Table

type t = {
  mode : Params.partitioning;
  n_groups : int;
  group_of_node : int array;
  members : int list array;  (* ascending node ids per group *)
  depth : int;
}

(* Vote pipeline depth: cross-group transactions of epoch [k] resolve at
   merge [k + depth]. Votes for epoch k are emitted after the voter's
   merge of k (itself ~one max inter-group latency after the seal) and
   travel one more hop, so the resolver must lag by at least two
   inter-group latencies' worth of epochs; +2 epochs of slack covers
   seal/merge skew. With latency >> epoch this keeps steady-state
   merging non-blocking instead of letting merges fall behind seals
   without bound. *)
let compute_depth ~topology ~epoch_us group_of_node n_groups =
  if n_groups <= 1 then 0
  else begin
    let n = Topology.n_nodes topology in
    let maxlat = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if group_of_node.(i) <> group_of_node.(j) then
          maxlat := max !maxlat (Topology.latency topology i j)
      done
    done;
    2 + (((2 * !maxlat) + epoch_us - 1) / epoch_us)
  end

let make ~topology ~epoch_us (mode : Params.partitioning) =
  let n = Topology.n_nodes topology in
  let group_of_node =
    match mode with
    | Params.P_none -> Array.make n 0
    | Params.P_region ->
      (* Rank each node's region among the regions that actually have
         nodes, so group ids are dense even when the topology declares
         more regions than a small cluster populates. *)
      let nr = Topology.n_regions topology in
      let populated = Array.make nr false in
      for i = 0 to n - 1 do
        populated.(Topology.region_of topology i) <- true
      done;
      let rank = Array.make nr (-1) in
      let next = ref 0 in
      for r = 0 to nr - 1 do
        if populated.(r) then begin
          rank.(r) <- !next;
          incr next
        end
      done;
      Array.init n (fun i -> rank.(Topology.region_of topology i))
    | Params.P_hash k ->
      let g = max 1 (min k n) in
      Array.init n (fun i -> i mod g)
  in
  let n_groups = 1 + Array.fold_left max 0 group_of_node in
  let members = Array.make n_groups [] in
  for i = n - 1 downto 0 do
    members.(group_of_node.(i)) <- i :: members.(group_of_node.(i))
  done;
  let depth = compute_depth ~topology ~epoch_us group_of_node n_groups in
  { mode; n_groups; group_of_node; members; depth }

let mode t = t.mode
let n_groups t = t.n_groups
let enabled t = t.n_groups > 1
let vote_depth t = t.depth
let group_of_node t node = t.group_of_node.(node)
let members t group = t.members.(group)

(* Key placement reuses the storage layer's deterministic key hash (the
   same one that shards the parallel merge). *)
let group_of_key t key_str = Table.key_hash key_str mod t.n_groups
let group_of_record t r = group_of_key t (Writeset.key_str r)

let touched_groups t (ws : Writeset.t) =
  let seen = Array.make t.n_groups false in
  List.iter (fun r -> seen.(group_of_record t r) <- true) ws.Writeset.records;
  List.iter
    (fun (_, k) -> seen.(group_of_key t k) <- true)
    ws.Writeset.read_keys;
  let acc = ref [] in
  for g = t.n_groups - 1 downto 0 do
    if seen.(g) then acc := g :: !acc
  done;
  !acc

let touches t ~group (ws : Writeset.t) =
  List.exists (fun r -> group_of_record t r = group) ws.Writeset.records
  || List.exists (fun (_, k) -> group_of_key t k = group) ws.Writeset.read_keys

(* Restriction of a write set to one group's keys. Returns the original
   write set unchanged (preserving its memoized caches) when nothing is
   filtered out, which is the common case for single-group
   transactions. *)
let fragment t ~group (ws : Writeset.t) =
  if not (enabled t) then ws
  else begin
    let records =
      List.filter (fun r -> group_of_record t r = group) ws.Writeset.records
    in
    let read_keys =
      List.filter (fun (_, k) -> group_of_key t k = group) ws.Writeset.read_keys
    in
    if
      List.length records = List.length ws.Writeset.records
      && List.length read_keys = List.length ws.Writeset.read_keys
    then ws
    else Writeset.make ~read_keys ~meta:ws.Writeset.meta ~records ()
  end
