(** GeoGauss cluster configuration. *)

(** Isolation levels supported by the multi-master OCC (§4.3). [SSI] is
    the serializable-snapshot extension the paper sketches but does not
    ship (it requires exchanging each transaction's read keys, §4.3):
    write sets carry read-key sets and the per-epoch merge aborts pivot
    transactions (an incoming and an outgoing rw-antidependency within
    the epoch). *)
type isolation = RC | RR | SI | SSI

(** Execution variants benchmarked in the paper:
    - [Optimistic]: GeoGauss proper — asynchronous execution,
      synchronous per-epoch validation.
    - [Sync_exec]: GeoG-S — epoch i's transactions wait for snapshot
      (i-1) before executing.
    - [Async_merge]: GeoG-A — no epochs; CRDT merge on arrival, eventual
      consistency, no abort/commit semantics. *)
type variant = Optimistic | Sync_exec | Async_merge

(** Fault-tolerance options of §5.2, cheapest to most expensive. *)
type ft_mode =
  | Ft_none
  | Ft_local_backup  (** ~0.5 cross-region RTT before client notify *)
  | Ft_remote_backup  (** ~1 RTT *)
  | Ft_raft  (** write sets applied remotely only after majority ack, ~1.5 RTT *)

(** Partial-replication mode (DESIGN.md §12). [P_none] is classic
    GeoGauss full replication. [P_region] assigns one replica group per
    populated topology region; [P_hash k] hashes nodes into [k] groups
    (clamped to the node count). Keys hash onto groups; write-set
    dissemination is scoped to the groups a transaction touches, and
    cross-group transactions commit only when every touched group's
    merge validates them. *)
type partitioning = P_none | P_region | P_hash of int

(** Conflict-resolution granularity of the epoch merge (DESIGN.md §13).
    [Row] is the paper's last-write-wins over whole row images: one
    committed writer per row per epoch. [Column] resolves each written
    column independently (per-field LWW in the style of crdt-sqlite):
    concurrent updates of one live row all commit, each cell keeping the
    value of its winning writer; inserts and deletes still resolve at
    row granularity. *)
type merge_level = Row | Column

(** CPU / phase cost model, calibrated against the paper's Table 2
    per-phase breakdown. *)
type cost = {
  exec_op_us : int;  (** execution cost per key-level operation *)
  sql_stmt_us : int;  (** execution cost per SQL statement *)
  merge_record_us : int;  (** merge cost per write-set record *)
  merge_threads : int;
      (** merge-thread parallelism of the {e modeled} node: divides the
          simulated per-record merge cost. The host-side counterpart is
          {!t.merge_jobs} — [merge_jobs = 0] links the two by running
          [min host_cores merge_threads] real domains *)
  merge_base_us : int;  (** fixed per-epoch merge overhead *)
  notify_us : int;
      (** per blocked transaction thread, per epoch: the cost of the
          thread-blocking/notification machinery of §5.1 — the reason
          very short epochs hurt (Fig 8) *)
  log_fsync_us : int;  (** group-commit log flush *)
}

type t = {
  epoch_us : int;  (** epoch length, default 10 ms *)
  isolation : isolation;  (** default RC (the paper's default) *)
  variant : variant;
  ft : ft_mode;
  cores : int;  (** vCPUs per node, default 32 *)
  pipeline : bool;  (** ship write sets in mini-batches (§5.1) *)
  seed : int;
  cost : cost;
  membership_timeout_us : int;  (** failure-detection timeout, 500 ms *)
  client_retry_us : int;  (** client resubmission timeout after node failure *)
  repair_after_us : int;
      (** how long a node lets the next merge stall before re-fetching
          missing peer batches from their backup servers (§5.2 repair —
          what makes epochs survive message loss), 250 ms *)
  merge_jobs : int;
      (** {e host} domains the intra-node merge shards across
          (DESIGN.md §10). Purely a wall-clock knob: the merged state,
          commit/abort decisions, wire bytes and simulated timings are
          byte-identical at any value. [1] (default) is the sequential
          path; [0] = auto, [min (host cores) cost.merge_threads] — the
          modeled node runs [cost.merge_threads] merge threads
          ({!cost}), and auto gives it as many real domains as this
          host can back. Widths round down to a power of two dividing
          {!Gg_storage.Table.temp_shard_count}. *)
  merge_par_threshold : int;
      (** minimum records in an epoch before the merge fans out
          (domain spawn costs ~tens of µs; tiny epochs stay
          sequential). Default 4096; [0] forces sharding on (tests). *)
  partitioning : partitioning;
      (** partial-replication mode, default [P_none] (full replication;
          byte-identical to the pre-partitioning engine) *)
  merge_level : merge_level;
      (** conflict-resolution granularity, default [Row] (byte-identical
          to the pre-column engine: no column masks are captured and the
          wire stream never carries the masked-update record form) *)
  fastpath : bool;
      (** the eocc clock-assisted fast path (DESIGN.md §14): timestamp
          transactions with bounded-skew local clocks, speculatively
          start the epoch merge once every peer's predicted-arrival
          watermark passes the boundary, and confirm (or fall back) when
          the synchronous all-arrived signal lands. Only latency is
          speculative — commits are externalized strictly after
          confirmation. Default [false] (byte-identical to the classic
          engine: no {!Gg_sim.Clock} reads happen at all) *)
  clock_skew_us : int;
      (** bound on per-node clock error when [fastpath] is on (offset +
          drift + injected steps are clamped to ±this), default 5 ms.
          [0] = perfectly synchronized clocks *)
  clock_sync_period_us : int;
      (** NTP-style sync pulse period: drift accumulation resets every
          period. [0] (default) = no discipline, drift accumulates for
          the whole run *)
  fastpath_margin_us : int;
      (** safety margin added to predicted-arrival deadlines. [-1]
          (default) = auto (scales with the delay estimate). Tests pin
          large negative values to build a deliberately broken watermark
          (speculation always fires early) and check the fallback keeps
          the oracles clean *)
}

val default_cost : cost
val default : t

val with_epoch_ms : t -> int -> t
val with_isolation : t -> isolation -> t
val with_variant : t -> variant -> t
val with_ft : t -> ft_mode -> t

val with_fastpath : t -> bool -> t
(** Enabling the fast path coerces [variant] to [Optimistic] —
    speculative sealing only refines the classic epoch merge pipeline.
    Disabling leaves the variant alone. *)

val with_clock_skew_us : t -> int -> t
(** Clamped to >= 0. *)

val isolation_to_string : isolation -> string
val variant_to_string : variant -> string
val ft_to_string : ft_mode -> string

val partitioning_to_string : partitioning -> string
(** ["none"], ["region"] or ["hash:<k>"]. *)

val partitioning_of_string : string -> (partitioning, string) result
(** Inverse of {!partitioning_to_string}; [Error] carries a usage hint. *)

val merge_level_to_string : merge_level -> string
(** ["row"] or ["column"]. *)

val merge_level_of_string : string -> (merge_level, string) result
(** Inverse of {!merge_level_to_string}; [Error] carries a usage hint. *)

val effective_merge_level : t -> merge_level
(** The level the engine actually runs: [Column] only under the
    epoch-based variants with full replication. GeoG-A applies whole
    rows on gossip arrival and the partial-replication write-back
    re-applies row fragments, so both coerce to [Row]. *)
