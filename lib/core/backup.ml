module Batch = Gg_crdt.Writeset.Batch

type t = {
  batches : (int * int, Batch.t) Hashtbl.t;  (* (node, cen) *)
  last_sealed : int array;
  votes : (int * int, (int * bool) list) Hashtbl.t;  (* (group, cen) *)
}

let create ~n =
  {
    batches = Hashtbl.create 1024;
    last_sealed = Array.make n (-1);
    votes = Hashtbl.create 256;
  }

let put t (b : Batch.t) =
  if not b.eof then invalid_arg "Backup.put: only sealed (eof) batches";
  Hashtbl.replace t.batches (b.node, b.cen) b;
  if b.cen > t.last_sealed.(b.node) then t.last_sealed.(b.node) <- b.cen

let last_sealed t ~node = t.last_sealed.(node)
let get t ~node ~cen = Hashtbl.find_opt t.batches (node, cen)
let count t = Hashtbl.length t.batches

(* Cross-group vote durability (DESIGN.md §12): every member of a group
   computes the identical verdict list for an epoch, so the first write
   wins and the entry is immutable afterwards — presence is monotone,
   which is what makes backup-assisted vote repair deterministic. *)
let put_votes t ~group ~cen verdicts =
  if not (Hashtbl.mem t.votes (group, cen)) then
    Hashtbl.replace t.votes (group, cen) verdicts

let get_votes t ~group ~cen = Hashtbl.find_opt t.votes (group, cen)
