(** Partition map for partial replication (DESIGN.md §12).

    Nodes are assigned to replica {e groups} as a pure function of the
    topology and the {!Params.partitioning} mode — every node computes
    the identical map, so interest-scoped dissemination and per-group
    merging stay deterministic. Keys hash onto groups with the storage
    layer's {!Gg_storage.Table.key_hash}. *)

type t

val make : topology:Gg_sim.Topology.t -> epoch_us:int -> Params.partitioning -> t
(** [P_region] ranks the regions that actually contain nodes; [P_hash k]
    clamps to [max 1 (min k n)] groups ([node i -> i mod groups]);
    [P_none] is a single group covering everyone. *)

val mode : t -> Params.partitioning
val n_groups : t -> int

val enabled : t -> bool
(** [n_groups > 1]. When false, every partition-aware code path must
    reduce to the full-replication engine byte-for-byte. *)

val vote_depth : t -> int
(** Cross-group commit pipeline depth [D]: a cross-group transaction of
    epoch [k] resolves at merge [k + D]. [D = 2 + ceil(2·maxlat/epoch)]
    where [maxlat] is the largest one-way latency between nodes of
    different groups — deep enough that steady-state merging never
    blocks on vote propagation. [0] when partitioning is off. *)

val group_of_node : t -> int -> int
val members : t -> int -> int list
(** Node ids of a group, ascending. Every group is non-empty by
    construction. *)

val group_of_key : t -> string -> int
(** Owning group of an encoded primary key. *)

val group_of_record : t -> Gg_crdt.Writeset.record -> int

val touched_groups : t -> Gg_crdt.Writeset.t -> int list
(** Sorted, deduplicated groups owning any written record or (SSI)
    read key of the transaction. Empty for read-only transactions
    outside SSI. *)

val touches : t -> group:int -> Gg_crdt.Writeset.t -> bool

val fragment : t -> group:int -> Gg_crdt.Writeset.t -> Gg_crdt.Writeset.t
(** Restriction of a write set to the records/read keys one group owns.
    Returns the write set itself (caches intact) when nothing filters
    out, and always when {!enabled} is false. *)
