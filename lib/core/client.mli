(** Benchmark clients: the paper's closed loop, plus an open loop.

    {b Closed} matches the paper's serving model: each connection has at
    most one outstanding transaction and submits the next one as soon as
    the previous commits or aborts. Offered load can therefore never
    exceed service capacity — overload is structurally unobservable.

    {b Open} decouples offered load from service capacity: transactions
    arrive on a nonhomogeneous Poisson process shaped by an
    {!Gg_workload.Arrival.t} curve, [connections] caps concurrent
    submissions (connection-pool occupancy), excess arrivals wait in a
    bounded FIFO, and arrivals beyond the queue are shed. Latency is
    measured from {e arrival} (queueing delay included), and nothing
    retries — an abort or timeout frees the connection. This is the
    model that scales to millions of simulated users: the arrival curve
    stands for the user population (see
    {!Gg_workload.Arrival.implied_users}) while the pool stays bounded.

    Clients are pinned to a home region; when the home node fails they
    time out and re-route to the nearest live node (Fig 13), returning
    home after recovery. *)

type t

type mode =
  | Closed
  | Open of { arrival : Gg_workload.Arrival.t; queue_cap : int }

val create :
  ?mode:mode ->
  Cluster.t ->
  home:int ->
  connections:int ->
  gen:(unit -> Txn.request) ->
  t
(** [gen] is called once per submission (deterministic workload
    generators make whole runs reproducible). [mode] defaults to
    [Closed]. Open-loop arrival draws come from a private rng seeded
    from [(params.seed, home)], so the arrival process is deterministic
    and independent of cluster behaviour. *)

val start : t -> unit
val stop : t -> unit
(** Stop issuing new transactions (in-flight and already-queued ones
    still finish). *)

val committed : t -> int
val aborted : t -> int
val timeouts : t -> int

val offered : t -> int
(** Open loop: arrivals admitted by the thinning process since the last
    {!reset_stats} (dispatched + queued + shed). Always 0 closed. *)

val shed : t -> int
(** Open loop: arrivals dropped because the queue was full. *)

val in_flight : t -> int
(** Currently outstanding submissions (0 or [connections]-bounded). *)

val queued : t -> int
(** Arrivals waiting for a connection right now. *)

val latency : t -> Gg_util.Stats.Hist.t
(** Committed-transaction latency. Closed loop: from submission. Open
    loop: from arrival, so queueing delay under overload shows up
    here. *)

val reset_stats : t -> unit
(** Clear counters/histograms (end of warm-up). Open loop: the queue
    and in-flight count are simulation state, not statistics, and
    survive the reset — a transaction that arrived during warm-up but
    commits inside the measured window counts with its full
    queue-inclusive latency. *)

val timeline : t -> bucket_us:int -> (float * float * float) list
(** Per-time-bucket [(t_seconds, committed_per_s, mean_latency_ms)] —
    the Fig 13 view. Buckets with no commits report zero throughput and
    latency. *)
