(** A full GeoGauss deployment: N replica nodes over a simulated
    geo-distributed network, plus Raft-based membership (§5.2), write-set
    backup servers, failure detection and recovery orchestration. *)

type t

val create :
  ?params:Params.t ->
  ?jitter_frac:float ->
  ?loss:float ->
  ?dup:float ->
  ?reorder:float ->
  topology:Gg_sim.Topology.t ->
  load:(Gg_storage.Db.t -> unit) ->
  unit ->
  t
(** [load] populates each replica's database identically (the initial
    consistent snapshot). *)

val sim : t -> Gg_sim.Sim.t

val obs : t -> Gg_obs.Obs.t
(** The observability registry/tracer shared by every component of this
    deployment (same as [Gg_sim.Sim.obs (sim t)]). *)

val net : t -> Gg_sim.Net.t
val params : t -> Params.t

val clock : t -> Gg_sim.Clock.t
(** The deployment's bounded-skew clock model (DESIGN.md §14). Created
    with [bound_us = 0] (perfect clocks) unless the fast path is on;
    fault schedules inject skew bursts through it. *)

val partitioning : t -> Partitioning.t
(** The deployment's replica-group map (from
    [params.Params.partitioning]); partition-aware oracles use it to
    scope convergence and durability to each key's replica group. *)

val n_nodes : t -> int
val node : t -> int -> Node.t
val metrics : t -> int -> Metrics.t
val backup : t -> Backup.t

val submit : t -> node:int -> Txn.request -> (Txn.outcome -> unit) -> unit

(** {1 Observer hooks}

    Registration points for protocol observers (the chaos checker's
    invariant oracles). Hooks run synchronously inside the simulation and
    must not mutate cluster state. *)

val on_snapshot : t -> (node:int -> lsn:int -> unit) -> unit
(** [f ~node ~lsn] fires every time [node] finishes merging epoch [lsn],
    at the instant its database equals consistent snapshot [lsn] (and
    before any state-transfer bookkeeping). Hooks run in registration
    order. *)

val on_commit : t -> (Txn.t -> unit) -> unit
(** Commit-log hook: [f txn] fires whenever a transaction's commit is
    reported to its client; [txn] carries the commit epoch / csn / write
    set. Hooks run in registration order. *)

val route : t -> preferred:int -> int
(** The node a client in [preferred]'s region should talk to: the
    preferred node when it is alive and in the view, otherwise the
    nearest live member. *)

val members : t -> int list
(** Current membership view. *)

val run_for_ms : t -> int -> unit
val run_until : t -> int -> unit

val crash : t -> int -> unit
(** Take a node down (network + service). *)

val recover : t -> int -> unit
(** Bring a crashed node back: re-join via Raft membership and a state
    snapshot from the nearest live donor. *)

val total_committed : t -> int
val total_aborted : t -> int

val lsns : t -> int list
val digests : t -> string list
(** Per-replica state digests; equal on replicas holding the same
    snapshot. *)

val quiesce : t -> unit
(** Let in-flight epochs settle: advances the simulation until all live
    members reach a common snapshot that covers every sealed epoch (give
    clients a chance to stop submitting first). *)
