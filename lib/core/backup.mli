(** Write-set backup store (paper §5.2).

    Each replica pushes a copy of every sealed epoch batch to its
    region's backup server. On a node failure, survivors consult the
    failed node's backup to (a) learn the last epoch it sealed and (b)
    fetch any batches they are missing, so every replica merges the same
    set of updates before the failed node is dropped from the view. *)

type t

val create : n:int -> t

val put : t -> Gg_crdt.Writeset.Batch.t -> unit
(** Store a node's sealed batch (must have [eof = true]). *)

val last_sealed : t -> node:int -> int
(** Highest epoch sealed by [node]; -1 if none. *)

val get : t -> node:int -> cen:int -> Gg_crdt.Writeset.Batch.t option

val count : t -> int
(** Total batches stored. *)

val put_votes : t -> group:int -> cen:int -> (int * bool) list -> unit
(** Durably record one group's cross-group commit verdicts for an epoch
    — [(packed csn, validated)] pairs (DESIGN.md §12). Every member of a
    group computes the identical list, so the first write wins and the
    entry never changes afterwards. *)

val get_votes : t -> group:int -> cen:int -> (int * bool) list option
