type request =
  | Op_txn of Gg_workload.Op.txn
  | Sql_txn of {
      label : string;
      stmts : (string * Gg_storage.Value.t array) list;
    }

type abort_reason =
  | Constraint_violation of string
  | Read_validation
  | Write_conflict
  | Ssi_conflict
  | Row_deleted
  | Node_failure
  | Cross_abort

type outcome =
  | Committed of { latency_us : int; results : Gg_sql.Executor.result list }
  | Aborted of { latency_us : int; reason : abort_reason }

type phases = {
  mutable parse_us : int;
  mutable exec_us : int;
  mutable wait_us : int;
  mutable merge_us : int;
  mutable log_us : int;
}

type t = {
  id : int;
  node : int;
  request : request;
  submit_time : int;
  callback : outcome -> unit;
  phases : phases;
  mutable sen : int;
  mutable lsn : int;
  mutable cen : int;
  mutable csn : Gg_storage.Csn.t;
  mutable read_set : Gg_sql.Executor.read_record list;
  mutable writeset : Gg_crdt.Writeset.t option;
  mutable sql_results : Gg_sql.Executor.result list;
  mutable commit_point : int;
  mutable finished : bool;
  mutable span : int;  (* causal span id (Obs.new_span); 0 when untraced *)
  mutable merge_span : int;  (* span of the merge that decided this txn *)
}

let create ~id ~node ~request ~submit_time ~callback =
  {
    id;
    node;
    request;
    submit_time;
    callback;
    phases = { parse_us = 0; exec_us = 0; wait_us = 0; merge_us = 0; log_us = 0 };
    sen = 0;
    lsn = 0;
    cen = 0;
    csn = Gg_storage.Csn.zero;
    read_set = [];
    writeset = None;
    sql_results = [];
    commit_point = 0;
    finished = false;
    span = 0;
    merge_span = 0;
  }

let label t =
  match t.request with
  | Op_txn o -> o.Gg_workload.Op.label
  | Sql_txn { label; _ } -> label

let abort_reason_to_string = function
  | Constraint_violation m -> "constraint: " ^ m
  | Read_validation -> "read-validation"
  | Write_conflict -> "write-conflict"
  | Ssi_conflict -> "ssi-rw-antidependency"
  | Row_deleted -> "row-deleted"
  | Node_failure -> "node-failure"
  | Cross_abort -> "cross-partition-validation"

let outcome_latency = function
  | Committed { latency_us; _ } | Aborted { latency_us; _ } -> latency_us

let is_committed = function Committed _ -> true | Aborted _ -> false
