module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Obs = Gg_obs.Obs
module Topology = Gg_sim.Topology
module Db = Gg_storage.Db
module Raft = Gg_raft.Raft

type view = { from_epoch : int; members : int list }

type pending_transfer = { donor : int; target : int; rejoin_epoch : int }

type t = {
  sim : Sim.t;
  net : Net.t;
  params : Params.t;
  topology : Topology.t;
  backup : Backup.t;
  env : Node.env;
  nodes : Node.t array;
  raft : Raft.t;
  mutable views : view list;  (* newest first *)
  applied_proposals : (string, unit) Hashtbl.t;
  proposed : (string, unit) Hashtbl.t;
  mutable pending_transfers : pending_transfer list;
  mutable last_view_change : int;
  mutable snapshot_hooks : (node:int -> lsn:int -> unit) list;
      (* newest first; run before transfer bookkeeping *)
  mutable commit_hooks : (Txn.t -> unit) list;  (* newest first *)
}

let members_at_views views e =
  let rec go = function
    | [] -> []
    | v :: rest -> if e >= v.from_epoch then v.members else go rest
  in
  go views

let epoch_us t = t.params.Params.epoch_us
let current_epoch t = Sim.now t.sim / epoch_us t

(* Nearest live, active member that could donate a state snapshot to
   [target]. An up-but-inactive node (e.g. one whose own re-join is
   still pending) must not donate: its snapshot is stale. *)
let pick_donor t ~target =
  List.fold_left
    (fun best m ->
      if
        m = target
        || Net.is_down t.net m
        || not (Node.active t.nodes.(m))
      then best
      else
        match best with
        | None -> Some m
        | Some b ->
          if Topology.latency t.topology target m < Topology.latency t.topology target b
          then Some m
          else best)
    None
    (List.hd t.views).members

(* --- membership view changes, committed through Raft --- *)

let rec apply_view_change t data =
  if not (Hashtbl.mem t.applied_proposals data) then begin
    Hashtbl.replace t.applied_proposals data ();
    t.last_view_change <- Sim.now t.sim;
    Obs.emit (Sim.obs t.sim) ~cat:"cluster" "view.change" ~detail:data;
    match String.split_on_char ':' data with
    (* The optional trailing field is a proposal nonce (the epoch at
       proposal time): it keeps repeated removals of the same node
       distinct when the node made no progress in between (e.g. a
       re-join whose state transfer never completed). *)
    | [ "remove"; p; e ] | [ "remove"; p; e; _ ] ->
      let p = int_of_string p and e = int_of_string e in
      let current = (List.hd t.views).members in
      if List.mem p current then begin
        t.views <-
          { from_epoch = e + 1; members = List.filter (fun m -> m <> p) current }
          :: t.views;
        (* Survivors recover any of the failed node's sealed batches they
           are missing from its backup server (one regional round trip),
           then re-evaluate merges. *)
        Array.iter
          (fun node ->
            let id = Node.id node in
            if id <> p && not (Net.is_down t.net id) then begin
              let missing = Node.missing_sealed_epochs node ~peer:p ~upto:e in
              List.iter
                (fun cen ->
                  match Backup.get t.backup ~node:p ~cen with
                  | None -> ()
                  | Some batch ->
                    let delay = 2 * Topology.latency t.topology id p in
                    Sim.schedule t.sim ~after:delay (fun () ->
                        Node.receive node (Node.Batch_msg batch)))
                missing;
              Node.try_advance node
            end)
          t.nodes
      end
    | [ "add"; p; e ] ->
      let p = int_of_string p and er = int_of_string e in
      let current = (List.hd t.views).members in
      if not (List.mem p current) then begin
        t.views <-
          { from_epoch = er; members = List.sort compare (p :: current) } :: t.views;
        (* Find a donor and queue the state transfer: it fires when the
           donor generates snapshot (er - 1). *)
        match pick_donor t ~target:p with
        | None -> ()
        | Some donor ->
          t.pending_transfers <-
            { donor; target = p; rejoin_epoch = er } :: t.pending_transfers;
          (* The donor may already be past er - 1. *)
          check_transfers t ~node:donor ~lsn:(Node.lsn t.nodes.(donor))
      end
    | _ -> ()
  end

and check_transfers t ~node ~lsn =
  let ready, still =
    List.partition
      (fun p -> p.donor = node && lsn >= p.rejoin_epoch - 1)
      t.pending_transfers
  in
  t.pending_transfers <- still;
  List.iter (fun tr -> send_transfer t tr) ready

and send_transfer t { donor; target; rejoin_epoch } =
  let donor_node = t.nodes.(donor) in
  let obs = Sim.obs t.sim in
  (* The transfer's span travels in the snapshot message; the receive
     side's state.install event names it as parent. *)
  let sspan = Obs.new_span obs ~node:donor in
  let snapshot = Node.make_state_snapshot ~span:sspan donor_node in
  let bytes =
    match snapshot with
    | Node.State_snapshot { ckpt; _ } ->
      (* +8 models the trace-context header of the snapshot message. *)
      Bytes.length ckpt + 8
    | _ -> 0
  in
  (if Obs.tracing obs then
     Obs.emit obs ~node:donor ~span:sspan ~cat:"cluster" "state.transfer"
       ~detail:
         (Printf.sprintf "target=%d rejoin_epoch=%d bytes=%d" target
            rejoin_epoch bytes));
  Net.send t.net ~src:donor ~dst:target ~bytes (fun () ->
      match snapshot with
      | Node.State_snapshot { lsn; ckpt; span } ->
        if Obs.tracing obs then
          Obs.emit obs ~node:target ~cat:"cluster" "state.install"
            ~parent:(if span > 0 then span else -1)
            ~detail:(Printf.sprintf "from=%d lsn=%d" donor lsn);
        Node.install_state t.nodes.(target) ~rejoin:rejoin_epoch ~lsn
          ~db:(Gg_storage.Checkpoint.decode ckpt);
        (* Reset failure detection clocks for the re-joined node. *)
        Array.iter
          (fun n -> Node.touch_eof n ~peer:target)
          t.nodes
      | _ -> ());
  (* The snapshot itself travels over the faulty network. If the target
     has still not resumed after a generous delay (snapshot lost, or the
     donor failed meanwhile), run the transfer again from a — possibly
     different — live donor. [install_state] ignores duplicates, so a
     retry racing a slow original is harmless. *)
  Sim.schedule t.sim ~after:500_000 (fun () ->
      if
        (not (Node.active t.nodes.(target)))
        && List.mem target (List.hd t.views).members
        && not (Net.is_down t.net target)
      then
        match pick_donor t ~target with
        | None -> ()
        | Some donor ->
          t.pending_transfers <-
            { donor; target; rejoin_epoch } :: t.pending_transfers;
          check_transfers t ~node:donor ~lsn:(Node.lsn t.nodes.(donor)))

(* --- failure detection (500 ms EOF silence => propose removal) --- *)

let rec schedule_detector t =
  Sim.schedule t.sim ~after:100_000 (fun () ->
      let now = Sim.now t.sim in
      let current = (List.hd t.views).members in
      let timeout = t.params.Params.membership_timeout_us in
      (* A freshly added view can start in the future (re-joins pick a
         rejoin epoch far enough out for the state transfer to land).
         Members are expected silent until then, so the silence clock
         must not start before the view does. *)
      let view_start = (List.hd t.views).from_epoch * epoch_us t in
      List.iter
        (fun p ->
          let suspected =
            List.exists
              (fun o ->
                o <> p
                && (not (Net.is_down t.net o))
                && Node.active t.nodes.(o)
                && now
                   - max
                       (Node.last_eof_from t.nodes.(o) ~peer:p)
                       (max t.last_view_change view_start)
                   > timeout)
              current
          in
          if suspected then begin
            let e = max (Backup.last_sealed t.backup ~node:p) (Node.lsn t.nodes.(p)) in
            (* The current epoch is a nonce: a node that must be removed
               twice without progress in between (failed re-join) would
               otherwise produce the same proposal string and be
               swallowed by the dedup below. *)
            let proposal =
              Printf.sprintf "remove:%d:%d:%d" p e (current_epoch t)
            in
            if not (Hashtbl.mem t.proposed proposal) then
              if Raft.propose_anywhere t.raft proposal then
                Hashtbl.replace t.proposed proposal ()
          end)
        current;
      schedule_detector t)

let create ?(params = Params.default) ?(jitter_frac = 0.05) ?(loss = 0.0)
    ?(dup = 0.0) ?(reorder = 0.0) ~topology ~load () =
  let sim = Sim.create () in
  let rng = Gg_util.Rng.create params.Params.seed in
  let net = Net.create sim ~rng ~topology ~jitter_frac ~loss ~dup ~reorder () in
  let n = Topology.n_nodes topology in
  let backup = Backup.create ~n in
  let part =
    Partitioning.make ~topology ~epoch_us:params.Params.epoch_us
      params.Params.partitioning
  in
  let clock =
    Gg_sim.Clock.create ~seed:params.Params.seed ~topology
      ~bound_us:(if params.Params.fastpath then params.Params.clock_skew_us else 0)
      ~sync_period_us:params.Params.clock_sync_period_us ()
  in
  let env =
    {
      Node.sim;
      net;
      params;
      part;
      backup;
      clock;
      members_at = (fun _ -> List.init n (fun i -> i));
      deliver = (fun ~dst:_ _ -> ());
      on_snapshot = (fun ~node:_ ~lsn:_ -> ());
      on_commit = (fun _ -> ());
    }
  in
  let nodes =
    Array.init n (fun id ->
        let db = Db.create () in
        load db;
        Node.create env ~id ~db)
  in
  (* The Raft apply callback needs the cluster record, which needs the
     Raft instance: tie the knot with a forward reference. *)
  let tref = ref None in
  let raft =
    Raft.create net
      ~rng:(Gg_util.Rng.create (params.Params.seed + 17))
      ~apply:(fun ~node:_ ~index:_ data ->
        match !tref with Some t -> apply_view_change t data | None -> ())
      ()
  in
  let t =
    {
      sim;
      net;
      params;
      topology;
      backup;
      env;
      nodes;
      raft;
      views = [ { from_epoch = 0; members = List.init n (fun i -> i) } ];
      applied_proposals = Hashtbl.create 8;
      proposed = Hashtbl.create 8;
      pending_transfers = [];
      last_view_change = 0;
      snapshot_hooks = [];
      commit_hooks = [];
    }
  in
  tref := Some t;
  env.Node.members_at <- (fun e -> members_at_views t.views e);
  env.Node.deliver <- (fun ~dst msg -> Node.receive t.nodes.(dst) msg);
  env.Node.on_snapshot <-
    (fun ~node ~lsn ->
      (* Observer hooks run first: the node's state is exactly the new
         snapshot at this instant (write-back done, next merge not yet
         started), which is what digest-based oracles need. *)
      List.iter (fun f -> f ~node ~lsn) (List.rev t.snapshot_hooks);
      check_transfers t ~node ~lsn);
  env.Node.on_commit <-
    (fun txn -> List.iter (fun f -> f txn) (List.rev t.commit_hooks));
  Array.iter Node.start nodes;
  Raft.start raft;
  schedule_detector t;
  t

let sim t = t.sim
let obs t = Sim.obs t.sim
let net t = t.net
let params t = t.params
let clock t = t.env.Node.clock
let partitioning t = t.env.Node.part
let n_nodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let metrics t i = Node.metrics t.nodes.(i)
let backup t = t.backup

let submit t ~node req cb = Node.submit t.nodes.(node) req cb

let on_snapshot t f = t.snapshot_hooks <- f :: t.snapshot_hooks
let on_commit t f = t.commit_hooks <- f :: t.commit_hooks

let members t = (List.hd t.views).members

let route t ~preferred =
  let live = List.filter (fun m -> not (Net.is_down t.net m)) (members t) in
  if List.mem preferred live then preferred
  else
    match live with
    | [] -> preferred
    | first :: _ ->
      List.fold_left
        (fun best m ->
          if
            Topology.latency t.topology preferred m
            < Topology.latency t.topology preferred best
          then m
          else best)
        first live

let run_until t time = Sim.run_until t.sim time
let run_for_ms t ms = Sim.run_until t.sim (Sim.now t.sim + Sim.ms ms)

let crash t i =
  Obs.emit (Sim.obs t.sim) ~node:i ~cat:"cluster" "crash";
  Net.set_down t.net i true;
  Node.set_active t.nodes.(i) false

let recover t i =
  Obs.emit (Sim.obs t.sim) ~node:i ~cat:"cluster" "recover";
  Net.set_down t.net i false;
  (* Re-join a few epochs in the future: enough for the membership change
     to commit and the state snapshot to arrive. *)
  let margin =
    3 + ((500_000 + (2 * 40_000)) / epoch_us t)
  in
  let er = current_epoch t + margin in
  let proposal = Printf.sprintf "add:%d:%d" i er in
  let rec try_propose attempts =
    if attempts > 0 && not (Raft.propose_anywhere t.raft proposal) then
      Sim.schedule t.sim ~after:100_000 (fun () -> try_propose (attempts - 1))
  in
  try_propose 50

let total_committed t =
  Array.fold_left (fun acc n -> acc + Metrics.committed (Node.metrics n)) 0 t.nodes

let total_aborted t =
  Array.fold_left (fun acc n -> acc + Metrics.aborted (Node.metrics n)) 0 t.nodes

let lsns t = Array.to_list (Array.map Node.lsn t.nodes)

let digests t = Array.to_list (Array.map (fun n -> Db.digest (Node.db n)) t.nodes)

let quiesce t =
  (* Run until every live member's snapshot covers every epoch sealed
     {e as of the call} (epochs keep sealing while we run, so that part
     of the target must be fixed up front or this would chase its own
     tail) — AND until all in-flight work has drained: a client request
     started just before the call can still commit {e during} the drain,
     landing in an epoch past the fixed target; comparing full-database
     digests before every live replica has merged that epoch reports a
     divergence that is really just unequal lsns. [Node.last_txn_epoch]
     is the highest epoch holding a committed local transaction (it
     stops moving once clients stop), and a non-empty waiting set means
     a commit is still in flight at its origin — both must settle. *)
  let live () = List.filter (fun m -> not (Net.is_down t.net m)) (members t) in
  let target =
    List.fold_left
      (fun acc m -> max acc (Node.sealed_epoch t.nodes.(m)))
      (-1) (live ())
  in
  let settled () =
    let lv = live () in
    let tx_target =
      List.fold_left
        (fun acc m -> max acc (Node.last_txn_epoch t.nodes.(m)))
        (-1) lv
    in
    List.for_all
      (fun m ->
        let n = t.nodes.(m) in
        Node.lsn n >= target
        && Node.lsn n >= tx_target
        && Node.pending_waiting n = 0)
      lv
  in
  let budget = ref 2_000 in
  while (not (settled ())) && !budget > 0 do
    decr budget;
    run_for_ms t 10
  done
