module Stats = Gg_util.Stats
module Obs = Gg_obs.Obs

type epoch_cell = { mutable committed : int; latency : Stats.Acc.t }

type t = {
  started : Obs.Counter.t;
  committed : Obs.Counter.t;
  aborted : Obs.Counter.t;
  ab_constraint : Obs.Counter.t;
  ab_read : Obs.Counter.t;
  ab_write : Obs.Counter.t;
  ab_ssi : Obs.Counter.t;
  ab_deleted : Obs.Counter.t;
  ab_failure : Obs.Counter.t;
  ab_cross : Obs.Counter.t;
  latency : Obs.Histogram.t;
  commit_latency : Obs.Histogram.t;
  mutable parse : Stats.Acc.t;
  mutable exec : Stats.Acc.t;
  mutable wait : Stats.Acc.t;
  mutable merge : Stats.Acc.t;
  mutable log : Stats.Acc.t;
  per_epoch : (int, epoch_cell) Hashtbl.t;
  merged_records : Obs.Counter.t;
  fp_spec : Obs.Counter.t;
  fp_confirm : Obs.Counter.t;
  fp_mispredict : Obs.Counter.t;
}

(* Clear the state that lives outside the instrument registry; the
   instruments themselves are zeroed either by [reset] (standalone use)
   or by [Obs.reset_all] (registry use). *)
let reset_tables t =
  t.parse <- Stats.Acc.create ();
  t.exec <- Stats.Acc.create ();
  t.wait <- Stats.Acc.create ();
  t.merge <- Stats.Acc.create ();
  t.log <- Stats.Acc.create ();
  Hashtbl.reset t.per_epoch

let create ?obs ?id () =
  let prefix =
    match id with Some i -> Printf.sprintf "node%d." i | None -> "node."
  in
  let counter name =
    match obs with
    | Some o -> Obs.counter o (prefix ^ name)
    | None -> Obs.Counter.make (prefix ^ name)
  in
  let histogram name =
    match obs with
    | Some o -> Obs.histogram o (prefix ^ name)
    | None -> Obs.Histogram.make (prefix ^ name)
  in
  let t =
    {
      started = counter "txn.started";
      committed = counter "txn.committed";
      aborted = counter "txn.aborted";
      ab_constraint = counter "txn.abort.constraint";
      ab_read = counter "txn.abort.read_validation";
      ab_write = counter "txn.abort.write_conflict";
      ab_ssi = counter "txn.abort.ssi";
      ab_deleted = counter "txn.abort.row_deleted";
      ab_failure = counter "txn.abort.node_failure";
      ab_cross = counter "txn.abort.cross_partition";
      latency = histogram "txn.latency_us";
      commit_latency = histogram "txn.commit_latency_us";
      parse = Stats.Acc.create ();
      exec = Stats.Acc.create ();
      wait = Stats.Acc.create ();
      merge = Stats.Acc.create ();
      log = Stats.Acc.create ();
      per_epoch = Hashtbl.create 256;
      merged_records = counter "merge.records";
      fp_spec = counter "fastpath.spec";
      fp_confirm = counter "fastpath.confirm";
      fp_mispredict = counter "fastpath.mispredict";
    }
  in
  (match obs with
  | Some o -> Obs.on_reset o (fun () -> reset_tables t)
  | None -> ());
  t

let record_start t = Obs.Counter.incr t.started
let record_merged_records t n = Obs.Counter.add t.merged_records n
let merged_records t = Obs.Counter.value t.merged_records
let record_spec t = Obs.Counter.incr t.fp_spec
let record_spec_confirm t = Obs.Counter.incr t.fp_confirm
let record_spec_mispredict t = Obs.Counter.incr t.fp_mispredict
let spec_count t = Obs.Counter.value t.fp_spec
let spec_confirms t = Obs.Counter.value t.fp_confirm
let spec_mispredicts t = Obs.Counter.value t.fp_mispredict

let record_outcome t outcome =
  let lat = float_of_int (Txn.outcome_latency outcome) in
  Obs.Histogram.observe t.latency lat;
  match outcome with
  | Txn.Committed _ ->
    Obs.Counter.incr t.committed;
    Obs.Histogram.observe t.commit_latency lat
  | Txn.Aborted { reason; _ } -> (
    Obs.Counter.incr t.aborted;
    match reason with
    | Txn.Constraint_violation _ -> Obs.Counter.incr t.ab_constraint
    | Txn.Read_validation -> Obs.Counter.incr t.ab_read
    | Txn.Write_conflict -> Obs.Counter.incr t.ab_write
    | Txn.Ssi_conflict -> Obs.Counter.incr t.ab_ssi
    | Txn.Row_deleted -> Obs.Counter.incr t.ab_deleted
    | Txn.Node_failure -> Obs.Counter.incr t.ab_failure
    | Txn.Cross_abort -> Obs.Counter.incr t.ab_cross)

let record_phases t (p : Txn.phases) =
  Stats.Acc.add t.parse (float_of_int p.parse_us);
  Stats.Acc.add t.exec (float_of_int p.exec_us);
  Stats.Acc.add t.wait (float_of_int p.wait_us);
  Stats.Acc.add t.merge (float_of_int p.merge_us);
  Stats.Acc.add t.log (float_of_int p.log_us)

let record_epoch_commit t ~cen ~latency_us =
  let cell =
    match Hashtbl.find_opt t.per_epoch cen with
    | Some c -> c
    | None ->
      let c = { committed = 0; latency = Stats.Acc.create () } in
      Hashtbl.replace t.per_epoch cen c;
      c
  in
  cell.committed <- cell.committed + 1;
  Stats.Acc.add cell.latency (float_of_int latency_us)

let started t = Obs.Counter.value t.started
let committed t = Obs.Counter.value t.committed
let aborted t = Obs.Counter.value t.aborted

let aborted_by t = function
  | Txn.Constraint_violation _ -> Obs.Counter.value t.ab_constraint
  | Txn.Read_validation -> Obs.Counter.value t.ab_read
  | Txn.Write_conflict -> Obs.Counter.value t.ab_write
  | Txn.Ssi_conflict -> Obs.Counter.value t.ab_ssi
  | Txn.Row_deleted -> Obs.Counter.value t.ab_deleted
  | Txn.Node_failure -> Obs.Counter.value t.ab_failure
  | Txn.Cross_abort -> Obs.Counter.value t.ab_cross

let latency t = Obs.Histogram.hist t.latency
let commit_latency t = Obs.Histogram.hist t.commit_latency

let phase_means_us t =
  ( Stats.Acc.mean t.parse,
    Stats.Acc.mean t.exec,
    Stats.Acc.mean t.wait,
    Stats.Acc.mean t.merge,
    Stats.Acc.mean t.log )

let epoch_cells t =
  Hashtbl.fold (fun cen cell acc -> (cen, cell) :: acc) t.per_epoch []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let reset t =
  Obs.Counter.reset t.started;
  Obs.Counter.reset t.committed;
  Obs.Counter.reset t.aborted;
  Obs.Counter.reset t.ab_constraint;
  Obs.Counter.reset t.ab_read;
  Obs.Counter.reset t.ab_write;
  Obs.Counter.reset t.ab_ssi;
  Obs.Counter.reset t.ab_deleted;
  Obs.Counter.reset t.ab_failure;
  Obs.Histogram.reset t.latency;
  Obs.Histogram.reset t.commit_latency;
  Obs.Counter.reset t.merged_records;
  Obs.Counter.reset t.fp_spec;
  Obs.Counter.reset t.fp_confirm;
  Obs.Counter.reset t.fp_mispredict;
  reset_tables t
