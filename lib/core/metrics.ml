module Stats = Gg_util.Stats

type epoch_cell = { mutable committed : int; latency : Stats.Acc.t }

type t = {
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable ab_constraint : int;
  mutable ab_read : int;
  mutable ab_write : int;
  mutable ab_ssi : int;
  mutable ab_deleted : int;
  mutable ab_failure : int;
  mutable latency : Stats.Hist.t;
  mutable commit_latency : Stats.Hist.t;
  mutable parse : Stats.Acc.t;
  mutable exec : Stats.Acc.t;
  mutable wait : Stats.Acc.t;
  mutable merge : Stats.Acc.t;
  mutable log : Stats.Acc.t;
  mutable per_epoch : (int, epoch_cell) Hashtbl.t;
  mutable merged_records : int;
}

let create () =
  {
    started = 0;
    committed = 0;
    aborted = 0;
    ab_constraint = 0;
    ab_read = 0;
    ab_write = 0;
    ab_ssi = 0;
    ab_deleted = 0;
    ab_failure = 0;
    latency = Stats.Hist.create ();
    commit_latency = Stats.Hist.create ();
    parse = Stats.Acc.create ();
    exec = Stats.Acc.create ();
    wait = Stats.Acc.create ();
    merge = Stats.Acc.create ();
    log = Stats.Acc.create ();
    per_epoch = Hashtbl.create 256;
    merged_records = 0;
  }

let record_start t = t.started <- t.started + 1
let record_merged_records t n = t.merged_records <- t.merged_records + n
let merged_records t = t.merged_records

let record_outcome t outcome =
  let lat = float_of_int (Txn.outcome_latency outcome) in
  Stats.Hist.add t.latency lat;
  match outcome with
  | Txn.Committed _ ->
    t.committed <- t.committed + 1;
    Stats.Hist.add t.commit_latency lat
  | Txn.Aborted { reason; _ } -> (
    t.aborted <- t.aborted + 1;
    match reason with
    | Txn.Constraint_violation _ -> t.ab_constraint <- t.ab_constraint + 1
    | Txn.Read_validation -> t.ab_read <- t.ab_read + 1
    | Txn.Write_conflict -> t.ab_write <- t.ab_write + 1
    | Txn.Ssi_conflict -> t.ab_ssi <- t.ab_ssi + 1
    | Txn.Row_deleted -> t.ab_deleted <- t.ab_deleted + 1
    | Txn.Node_failure -> t.ab_failure <- t.ab_failure + 1)

let record_phases t (p : Txn.phases) =
  Stats.Acc.add t.parse (float_of_int p.parse_us);
  Stats.Acc.add t.exec (float_of_int p.exec_us);
  Stats.Acc.add t.wait (float_of_int p.wait_us);
  Stats.Acc.add t.merge (float_of_int p.merge_us);
  Stats.Acc.add t.log (float_of_int p.log_us)

let record_epoch_commit t ~cen ~latency_us =
  let cell =
    match Hashtbl.find_opt t.per_epoch cen with
    | Some c -> c
    | None ->
      let c = { committed = 0; latency = Stats.Acc.create () } in
      Hashtbl.replace t.per_epoch cen c;
      c
  in
  cell.committed <- cell.committed + 1;
  Stats.Acc.add cell.latency (float_of_int latency_us)

let started t = t.started
let committed t = t.committed
let aborted t = t.aborted

let aborted_by t = function
  | Txn.Constraint_violation _ -> t.ab_constraint
  | Txn.Read_validation -> t.ab_read
  | Txn.Write_conflict -> t.ab_write
  | Txn.Ssi_conflict -> t.ab_ssi
  | Txn.Row_deleted -> t.ab_deleted
  | Txn.Node_failure -> t.ab_failure

let latency t = t.latency
let commit_latency t = t.commit_latency

let phase_means_us t =
  ( Stats.Acc.mean t.parse,
    Stats.Acc.mean t.exec,
    Stats.Acc.mean t.wait,
    Stats.Acc.mean t.merge,
    Stats.Acc.mean t.log )

let epoch_cells t =
  Hashtbl.fold (fun cen cell acc -> (cen, cell) :: acc) t.per_epoch []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let reset t =
  t.started <- 0;
  t.committed <- 0;
  t.aborted <- 0;
  t.ab_constraint <- 0;
  t.ab_read <- 0;
  t.ab_write <- 0;
  t.ab_ssi <- 0;
  t.ab_deleted <- 0;
  t.ab_failure <- 0;
  t.latency <- Stats.Hist.create ();
  t.commit_latency <- Stats.Hist.create ();
  t.parse <- Stats.Acc.create ();
  t.exec <- Stats.Acc.create ();
  t.wait <- Stats.Acc.create ();
  t.merge <- Stats.Acc.create ();
  t.log <- Stats.Acc.create ();
  t.per_epoch <- Hashtbl.create 256;
  t.merged_records <- 0
