(* The per-epoch intra-node merge kernel: DeltaCRDTMerge pre-write
   (phase A), OCC validation (phase B), the optional SSI pivot pass and
   write-back (phase C) — extracted from [Node.do_merge] so that

   - phases A and B can shard across OCaml domains while staying
     byte-identical to the sequential pass (DESIGN.md §10), and
   - the kernel can be driven in isolation (bench `merge`, unit tests)
     without a cluster around it.

   Parallel-safety argument, phase A. Records are bucketed by
   [Table.key_hash] of their encoded key, with a shard count dividing
   [Table.temp_shard_count]; hence (1) all records of one row land in
   one shard, so [Merge.merge_header] — a per-row lattice join, commut-
   ative by Lemma 2 — runs conflict-free; (2) two shards never touch
   the same temp hash shard, so concurrent [temp_add] is race-free;
   (3) the main index is only read (entry lookups; [Row_header.stamp]
   mutates same-shard headers only, and [deleted] is never written in
   phase A). Cross-shard effects — conflict marks and [Table.touch] —
   are accumulated per shard and reduced on the calling domain in a
   fixed order.

   Determinism of the marks. The sequential pass keeps the FIRST
   failing record's reason per write set (global record order). Shards
   therefore record (global record index, reason) for the first local
   failure per write set, and the reduce keeps the entry with the
   smallest index — reproducing the sequential choice exactly.

   Phase B is read-only over the post-A headers (the [dead] table is
   frozen after the reduce); per-transaction verdicts go to disjoint
   array slots and are folded sequentially. The SSI pass and phase C
   mutate shared index structures (ordered map, secondary indexes) and
   stay sequential — they are a small fraction of the record work. *)

module Db = Gg_storage.Db
module Table = Gg_storage.Table
module Csn = Gg_storage.Csn
module Row_header = Gg_storage.Row_header
module Writeset = Gg_crdt.Writeset
module Merge = Gg_crdt.Merge
module Meta = Gg_crdt.Meta
module Column = Gg_crdt.Column
module Pool = Gg_par.Pool

module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) (b : int) = a = b
  let hash = Hashtbl.hash
end)

module Stbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let node_bits = 10
let pack_csn (c : Csn.t) = (c.Csn.ts lsl node_bits) lor c.Csn.node
let csn_key (ws : Writeset.t) = pack_csn ws.Writeset.meta.Meta.csn
let pack_row ~table ~key_str = String.concat "\x00" [ table; key_str ]

type t = {
  dead : (int * Txn.abort_reason) Itbl.t;
      (* csn -> (global record index of the first failure, reason);
         phase B / SSI marks use index [max_int] (they run post-reduce) *)
  committed_set : unit Itbl.t;  (* csn *)
  n_records : int;
  jobs_used : int;
}

let n_records t = t.n_records
let n_committed t = Itbl.length t.committed_set
let n_dead t = Itbl.length t.dead
let jobs_used t = t.jobs_used
let committed t ws = Itbl.mem t.committed_set (csn_key ws)

let abort_reason t ws =
  match Itbl.find_opt t.dead (csn_key ws) with
  | Some (_, reason) -> reason
  | None -> Txn.Write_conflict

(* Effective shard count: largest power of two <= the request, capped so
   it divides [Table.temp_shard_count] (the temp-race-freedom
   precondition above). *)
let clamp_jobs requested =
  let cap = min requested Table.temp_shard_count in
  let rec go p = if 2 * p <= cap then go (2 * p) else p in
  if requested <= 1 then 1 else go 1

let resolve_jobs (params : Params.t) =
  if params.Params.merge_jobs = 0 then
    min (Pool.default_jobs ()) params.Params.cost.Params.merge_threads
  else params.Params.merge_jobs

(* One record of the flattened epoch, tagged with its global position
   (the sequential iteration order over write sets and their records). *)
type item = { gi : int; ws : Writeset.t; r : Writeset.record }

let phase_a ~db ~jobs ~level items =
  let column = level = Params.Column in
  let shard_body items =
    (* csn -> (first failing record's global index, reason), plus the
       names of tables whose committed headers this shard stamped *)
    let dead_local : (int * Txn.abort_reason) Itbl.t = Itbl.create 64 in
    let touched : unit Stbl.t = Stbl.create 8 in
    (* Column mode: the join of each live row's update/delete claims —
       names the header winner and whether it is a tombstone. Rows are
       shard-confined, so the per-shard tables are disjoint and the
       reduce is a plain union. *)
    let claims : Column.claim Stbl.t = Stbl.create (if column then 64 else 1) in
    let mark gi ws reason =
      let k = csn_key ws in
      if not (Itbl.mem dead_local k) then Itbl.replace dead_local k (gi, reason)
    in
    let claim_row ~table ~key_str ~meta ~delete =
      if column then
        let rk = pack_row ~table ~key_str in
        Stbl.replace claims rk
          (Column.claim_join_opt
             (Stbl.find_opt claims rk)
             (Column.claim ~meta ~delete))
    in
    List.iter
      (fun { gi; ws; r } ->
        let meta = ws.Writeset.meta in
        match Db.get_table db r.Writeset.table with
        | None -> mark gi ws (Txn.Constraint_violation "unknown table")
        | Some table -> (
          let key_str = Writeset.key_str r in
          match r.Writeset.op with
          | Writeset.Insert -> (
            match Table.find_live table key_str with
            | Some _ -> mark gi ws (Txn.Constraint_violation "duplicate key")
            | None -> (
              let temp = Table.temp_add table ~key:r.Writeset.key ~key_str in
              match Merge.merge_header temp.Table.header ~meta with
              | Merge.Win | Merge.Already -> ()
              | Merge.Lose -> mark gi ws Txn.Write_conflict))
          | Writeset.Update | Writeset.Delete -> (
            match Table.find table key_str with
            | None -> mark gi ws Txn.Row_deleted
            | Some entry when entry.Table.header.Row_header.deleted ->
              mark gi ws Txn.Row_deleted
            | Some entry -> (
              claim_row ~table:r.Writeset.table ~key_str ~meta
                ~delete:(r.Writeset.op = Writeset.Delete);
              match Merge.merge_header entry.Table.header ~meta with
              | Merge.Win ->
                (* In-place stamp of a committed row's header: the digest
                   changes even if this transaction later fails validation
                   and Phase C never rewrites the row. The touch itself is
                   deferred to the reduce (it mutates the table's version
                   counter). *)
                Stbl.replace touched r.Writeset.table ()
              | Merge.Already -> ()
              | Merge.Lose ->
                (* Column mode lets losing updates live on: each of their
                   cells resolves independently (validation instead asks
                   whether a tombstone won the row). Losing deletes still
                   conflict — a delete is all-or-nothing. *)
                if not (column && r.Writeset.op = Writeset.Update) then
                  mark gi ws Txn.Write_conflict))))
      items;
    (dead_local, touched, claims)
  in
  let shard_results =
    Pool.map_shards ~jobs
      ~key:(fun it -> Table.key_hash (Writeset.key_str it.r))
      items ~f:shard_body
  in
  let dead : (int * Txn.abort_reason) Itbl.t = Itbl.create 64 in
  let claims : Column.claim Stbl.t = Stbl.create (if column then 64 else 1) in
  List.iter
    (fun (dead_local, touched, claims_local) ->
      Itbl.iter
        (fun k ((gi, _) as v) ->
          match Itbl.find_opt dead k with
          | Some (gi', _) when gi' <= gi -> ()
          | Some _ | None -> Itbl.replace dead k v)
        dead_local;
      Stbl.iter (fun rk c -> Stbl.replace claims rk c) claims_local;
      Stbl.iter (fun name () -> Table.touch (Db.get_table_exn db name)) touched)
    shard_results;
  (dead, claims)

let phase_b ~db ~jobs ~dead ~level ~claims txns_arr =
  let column = level = Params.Column in
  let holds_all (ws : Writeset.t) =
    let meta = ws.Writeset.meta in
    List.for_all
      (fun (r : Writeset.record) ->
        match Db.get_table db r.Writeset.table with
        | None -> false
        | Some table -> (
          let key_str = Writeset.key_str r in
          if column && r.Writeset.op = Writeset.Update then
            (* Column mode: an update holds as long as no tombstone won
               the row — every surviving update commits and resolves
               cell by cell in phase C. A live write set's rows all
               reached phase A's claim join, so the lookup hits. *)
            match
              Stbl.find_opt claims
                (pack_row ~table:r.Writeset.table ~key_str)
            with
            | Some c -> not c.Column.c_delete
            | None -> false
          else
            let header =
              match r.Writeset.op with
              | Writeset.Insert ->
                Option.map (fun e -> e.Table.header) (Table.temp_find table key_str)
              | Writeset.Update | Writeset.Delete ->
                Option.map (fun e -> e.Table.header) (Table.find table key_str)
            in
            match header with
            | Some h -> Csn.equal h.Row_header.csn meta.Meta.csn
            | None -> false))
      ws.Writeset.records
  in
  let n = Array.length txns_arr in
  let verdicts = Array.make n false in
  let validate idxs =
    List.iter
      (fun i ->
        let ws = txns_arr.(i) in
        if not (Itbl.mem dead (csn_key ws)) then verdicts.(i) <- holds_all ws)
      idxs
  in
  (* Round-robin index shards: every [validate] reads frozen state and
     writes disjoint [verdicts] slots, so any partition works — this one
     is deterministic and balanced. *)
  (if jobs = 1 then validate (List.init n Fun.id)
   else
     ignore
       (Pool.map_shards ~jobs ~key:Fun.id (List.init n Fun.id) ~f:validate));
  verdicts

let ssi_pass ~dead ~committed_set txns =
  let writes_of : int list Stbl.t = Stbl.create 64 in
  let reads_of : int list Stbl.t = Stbl.create 64 in
  let add tbl key v =
    Stbl.replace tbl key (v :: Option.value ~default:[] (Stbl.find_opt tbl key))
  in
  List.iter
    (fun (ws : Writeset.t) ->
      let k = csn_key ws in
      if Itbl.mem committed_set k then begin
        List.iter
          (fun (r : Writeset.record) ->
            add writes_of
              (pack_row ~table:r.Writeset.table ~key_str:(Writeset.key_str r))
              k)
          ws.Writeset.records;
        List.iter
          (fun (table, key_str) -> add reads_of (pack_row ~table ~key_str) k)
          ws.Writeset.read_keys
      end)
    txns;
  let others tbl key k =
    List.exists (fun k' -> k' <> k) (Option.value ~default:[] (Stbl.find_opt tbl key))
  in
  List.iter
    (fun (ws : Writeset.t) ->
      let k = csn_key ws in
      if Itbl.mem committed_set k then begin
        let outgoing =
          List.exists
            (fun (table, key_str) -> others writes_of (pack_row ~table ~key_str) k)
            ws.Writeset.read_keys
        in
        let incoming =
          List.exists
            (fun (r : Writeset.record) ->
              others reads_of
                (pack_row ~table:r.Writeset.table ~key_str:(Writeset.key_str r))
                k)
            ws.Writeset.records
        in
        if outgoing && incoming then begin
          Itbl.remove committed_set k;
          Itbl.replace dead k (max_int, Txn.Ssi_conflict)
        end
      end)
    txns

(* Column mode: per-(row, column) winner among the COMMITTED updates.
   The committed set is itself order-independent (phases A/B), so the
   joins here are too; aborted writers never claim cells. *)
let cell_winners txns committed_set =
  let cells : Column.cell option array Stbl.t = Stbl.create 64 in
  List.iter
    (fun (ws : Writeset.t) ->
      if Itbl.mem committed_set (csn_key ws) then
        let meta = ws.Writeset.meta in
        List.iter
          (fun (r : Writeset.record) ->
            if r.Writeset.op = Writeset.Update then begin
              let rk =
                pack_row ~table:r.Writeset.table ~key_str:(Writeset.key_str r)
              in
              let n = Array.length r.Writeset.data in
              let arr =
                match Stbl.find_opt cells rk with
                | Some a when Array.length a >= n -> a
                | Some a ->
                  let a' = Array.make n None in
                  Array.blit a 0 a' 0 (Array.length a);
                  Stbl.replace cells rk a';
                  a'
                | None ->
                  let a = Array.make n None in
                  Stbl.replace cells rk a;
                  a
              in
              Array.iteri
                (fun i v ->
                  if Column.covers ~cols:r.Writeset.cols i then
                    arr.(i) <-
                      Some (Column.join_opt arr.(i) (Column.cell ~meta v)))
                r.Writeset.data
            end)
          ws.Writeset.records)
    txns;
  cells

let phase_c ~db ~defer ~level txns committed_set =
  let cells =
    if level = Params.Column then Some (cell_winners txns committed_set)
    else None
  in
  List.iter
    (fun (ws : Writeset.t) ->
      if Itbl.mem committed_set (csn_key ws) && not (defer ws) then begin
        let meta = ws.Writeset.meta in
        List.iter
          (fun (r : Writeset.record) ->
            let table = Db.get_table_exn db r.Writeset.table in
            let key_str = Writeset.key_str r in
            match r.Writeset.op with
            | Writeset.Insert -> (
              match Table.find table key_str with
              | Some entry ->
                (* tombstone revival *)
                Row_header.stamp entry.Table.header ~sen:meta.Meta.sen
                  ~csn:meta.Meta.csn ~cen:meta.Meta.cen;
                Table.revive table entry r.Writeset.data
              | None ->
                let temp = Option.get (Table.temp_find table key_str) in
                Table.insert_committed table ~key:r.Writeset.key
                  ~data:r.Writeset.data ~header:temp.Table.header)
            | Writeset.Update -> (
              let entry = Option.get (Table.find table key_str) in
              match cells with
              | None -> Table.write table entry r.Writeset.data
              | Some cells ->
                (* Write only the cells this transaction won; winners are
                   unique per cell, so the sequential order of committed
                   writers cannot clobber one another and the final row
                   is the per-column join whatever the order. A record
                   that wins no cell leaves the row (and its version
                   count) untouched on every replica alike. *)
                let arr =
                  Stbl.find cells
                    (pack_row ~table:r.Writeset.table ~key_str)
                in
                let out = ref None in
                Array.iteri
                  (fun i v ->
                    if
                      Column.covers ~cols:r.Writeset.cols i
                      && i < Array.length entry.Table.data
                      && i < Array.length arr
                    then
                      match arr.(i) with
                      | Some c
                        when Csn.equal c.Column.meta.Meta.csn meta.Meta.csn ->
                        let data =
                          match !out with
                          | Some d -> d
                          | None ->
                            let d = Array.copy entry.Table.data in
                            out := Some d;
                            d
                        in
                        data.(i) <- v
                      | _ -> ())
                  r.Writeset.data;
                match !out with
                | Some data -> Table.write table entry data
                | None -> ())
            | Writeset.Delete ->
              let entry = Option.get (Table.find table key_str) in
              Table.delete table entry)
          ws.Writeset.records
      end)
    txns

let run ?(threshold = Params.default.Params.merge_par_threshold)
    ?(defer = fun _ -> false) ?(level = Params.Row) ~db ~jobs ~ssi txns =
  (* Flatten to (global index, ws, record) in the sequential iteration
     order — the order every determinism argument above is stated in. *)
  let items =
    let gi = ref (-1) in
    List.concat_map
      (fun (ws : Writeset.t) ->
        List.map
          (fun r ->
            incr gi;
            { gi = !gi; ws; r })
          ws.Writeset.records)
      txns
  in
  let n_records = List.length items in
  let jobs = if n_records < max 1 threshold then 1 else clamp_jobs jobs in
  let dead, claims = phase_a ~db ~jobs ~level items in
  let txns_arr = Array.of_list txns in
  let verdicts = phase_b ~db ~jobs ~dead ~level ~claims txns_arr in
  (* Sequential fold of the verdicts, in write-set order — identical to
     the sequential phase B's mark/commit interleaving (a ws already in
     [dead] keeps its phase-A reason; the rest split on the verdict). *)
  let committed_set : unit Itbl.t = Itbl.create 64 in
  Array.iteri
    (fun i ws ->
      let k = csn_key ws in
      if not (Itbl.mem dead k) then
        if verdicts.(i) then Itbl.replace committed_set k ()
        else Itbl.replace dead k (max_int, Txn.Write_conflict))
    txns_arr;
  if ssi then ssi_pass ~dead ~committed_set txns;
  phase_c ~db ~defer ~level txns committed_set;
  Db.temp_clear_all db;
  { dead; committed_set; n_records; jobs_used = jobs }
