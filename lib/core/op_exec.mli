(** Key-level (stored-procedure) transaction execution against a
    replica's database — the op-level counterpart of the SQL executor.
    Produces the same read/write sets so both front ends feed the same
    multi-master OCC. *)

type result = {
  reads : Gg_sql.Executor.read_record list;
  writes : Gg_crdt.Writeset.record list;
}

val exec :
  ?col_mask:bool ->
  Gg_storage.Db.t -> Gg_workload.Op.txn -> (result, string) Stdlib.result
(** Execute all operations with read-your-writes semantics. Errors:
    [Add]/[Delete] on a missing row, [Insert] on an existing live row,
    unknown table, non-integer [Add] column. A plain [Read] of a missing
    key is a no-op (not an error). Writes per key coalesce (last wins;
    insert-then-delete cancels).

    [col_mask] (default [false]) tracks column masks on [Update]
    records for column-level merge: an [Add] claims only its column,
    any whole-row write widens the mask to {!Gg_crdt.Column.full}, and
    coalesced writes take the union. Off, every record carries the full
    mask and the wire stream is byte-identical to the pre-column
    codec. *)
