module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Obs = Gg_obs.Obs
module Cpu = Gg_sim.Cpu
module Topology = Gg_sim.Topology
module Clock = Gg_sim.Clock
module Db = Gg_storage.Db
module Table = Gg_storage.Table
module Csn = Gg_storage.Csn
module Row_header = Gg_storage.Row_header
module Writeset = Gg_crdt.Writeset
module Meta = Gg_crdt.Meta
module Executor = Gg_sql.Executor

(* Monomorphic hash tables for the per-epoch bookkeeping. The stock
   [Hashtbl] hashes tuple keys through the generic polymorphic runtime
   path and allocates a tuple per probe; packing (cen, peer) and
   (ts, node) into single ints keeps the merge loop allocation-free. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) (b : int) = a = b
  let hash = Hashtbl.hash
end)

(* Peer / csn-node ids fit in 10 bits (<= 1024 replicas); csn timestamps
   are sim microseconds, far below the remaining 53 bits. *)
let node_bits = 10
let pack_cp ~cen ~peer = (cen lsl node_bits) lor peer
let cen_of_cp k = k lsr node_bits
let pack_csn (c : Csn.t) = (c.Csn.ts lsl node_bits) lor c.Csn.node

(* Every message kind carries the sender's causal span id (0 when
   tracing is off) so receive-side trace events can reference their
   cross-node parent; the modeled byte counts include a fixed 8-byte
   trace-context header, mirroring the Batch wire form. *)
type msg =
  | Batch_msg of Writeset.Batch.t
  | Batch_wire of bytes
      (* a batch frame as raw wire bytes — what actually crosses a
         corrupting network; decode failure degrades to a lost frame *)
  | Part_vote of {
      cen : int;
      group : int;
      verdicts : (int * bool) list;  (* (packed csn, validated), sorted *)
      span : int;
    }
  | Ft_ack of { cen : int; from : int; span : int }
  | Ft_commit of { cen : int; origin : int; span : int }
  | State_snapshot of { lsn : int; ckpt : bytes; span : int }

type env = {
  sim : Sim.t;
  net : Net.t;
  params : Params.t;
  part : Partitioning.t;
  backup : Backup.t;
  clock : Clock.t;
  mutable members_at : int -> int list;
  mutable deliver : dst:int -> msg -> unit;
  mutable on_snapshot : node:int -> lsn:int -> unit;
  mutable on_commit : Txn.t -> unit;
}

type batch_state = {
  mutable txns : Writeset.t list;  (* newest first, deduplicated by csn *)
  txn_keys : unit Itbl.t;  (* packed csn *)
  mutable eof : bool;
  mutable expected : int;  (* txn count announced by the EOF; -1 until then *)
  mutable committed : bool;  (* Ft_raft gate; true otherwise *)
}

(* A cross-group transaction tracked between its merge epoch [k] and its
   resolution at merge [k + vote_depth] (DESIGN.md §12): the local
   group's fragment and verdict, plus — on the origin node — the client
   transaction to answer once the global decision is known. *)
type cross_entry = {
  ce_key : int;  (* packed csn *)
  ce_origin : int;
  ce_groups : int list;  (* touched groups, sorted *)
  ce_frag : Writeset.t;  (* this node's group fragment *)
  mutable ce_local_ok : bool;
  mutable ce_reason : Txn.abort_reason;
      (* the local abort reason when [ce_local_ok] is false; [Cross_abort]
         otherwise (used when a foreign group's vote rejects) *)
  mutable ce_txn : Txn.t option;
}

type t = {
  id : int;
  env : env;
  obs : Obs.t;
  cpu : Cpu.t;
  db : Db.t;
  wal : Gg_storage.Wal.t;
  metrics : Metrics.t;
  mutable active : bool;
  mutable lsn : int;
  mutable sealed_epoch : int;
  mutable current_send : (int * Writeset.t) list;  (* (cen, ws), newest first *)
  remote : batch_state Itbl.t;  (* packed (cen, peer) *)
  local_sealed : Writeset.t list Itbl.t;  (* cen *)
  waiting : Txn.t list Itbl.t;  (* cen -> local txns *)
  notify_gate : int Itbl.t;  (* cen -> earliest client-notify time *)
  ft_acks : int list ref Itbl.t;  (* cen *)
  sync_queue : Txn.t Queue.t;  (* GeoG-S: held until a fresh snapshot *)
  cross_pending : cross_entry list Itbl.t;  (* cen -> unresolved cross txns *)
  votes : bool Itbl.t Itbl.t;
      (* packed (cen, group) -> packed csn -> foreign group's verdict *)
  last_eof : int array;
  mutable merging : bool;
  mutable csn_last : int;
  mutable txn_seq : int;
  mutable last_advance : int;  (* sim time the snapshot last moved *)
  mutable last_txn_cen : int;  (* highest epoch holding a committed local txn *)
  (* Clock-assisted fast path (DESIGN.md §14): the speculative merge
     armed for epoch lsn+1, if any. Speculation charges the simulated
     merge duration (and the local write sets' WAL group-commit) while
     the synchronous all-arrived signal is still in flight; the merge
     itself runs exactly once, at confirmation. *)
  mutable spec_epoch : int;  (* -1 = none armed *)
  mutable spec_started : int;  (* sim time the speculative charge began *)
  mutable spec_duration : int;  (* charged merge duration *)
  mutable spec_keys : int list;  (* speculated set: sorted packed csns *)
  mutable spec_span : int;  (* causal span of the speculative merge *)
  mutable spec_logged : int;  (* sim time of the WAL prelog; -1 = none *)
  mutable spec_wake_at : int;  (* earliest armed deadline wakeup; max_int = none *)
}

let create env ~id ~db =
  let n = Net.n_nodes env.net in
  let obs = Sim.obs env.sim in
  {
    id;
    env;
    obs;
    cpu = Cpu.create env.sim ~cores:env.params.Params.cores;
    db;
    wal = Gg_storage.Wal.create ~fsync_us:env.params.Params.cost.log_fsync_us ();
    metrics = Metrics.create ~obs ~id ();
    active = true;
    lsn = -1;
    sealed_epoch = -1;
    current_send = [];
    remote = Itbl.create 64;
    local_sealed = Itbl.create 64;
    waiting = Itbl.create 64;
    notify_gate = Itbl.create 64;
    ft_acks = Itbl.create 16;
    sync_queue = Queue.create ();
    cross_pending = Itbl.create 16;
    votes = Itbl.create 32;
    last_eof = Array.make n 0;
    merging = false;
    csn_last = 0;
    txn_seq = 0;
    last_advance = 0;
    last_txn_cen = -1;
    spec_epoch = -1;
    spec_started = 0;
    spec_duration = 0;
    spec_keys = [];
    spec_span = 0;
    spec_logged = -1;
    spec_wake_at = max_int;
  }

let id t = t.id
let db t = t.db
let lsn t = t.lsn
let sealed_epoch t = t.sealed_epoch
let metrics t = t.metrics
let active t = t.active

let pending_waiting t =
  Itbl.fold (fun _ l acc -> acc + List.length l) t.waiting 0

let last_txn_epoch t = t.last_txn_cen

let now t = Sim.now t.env.sim
let epoch_us t = t.env.params.Params.epoch_us
let epoch_of t time = time / epoch_us t

(* Everything clock-related is gated on the fastpath flag: with it off no
   {!Clock} read ever happens, so the classic engine's event stream (and
   its byte-level output) is untouched. *)
let fastpath_on t = t.env.params.Params.fastpath

let local_now t =
  if fastpath_on t then Clock.read t.env.clock ~node:t.id ~at:(now t)
  else now t

(* Under the fast path epochs are cut by the node's LOCAL clock, so the
   epoch a new transaction enters follows the local reading — floored at
   [sealed_epoch + 1], because a slow clock must not assign transactions
   to an epoch whose EOF already went out. *)
let current_epoch t =
  if fastpath_on t then
    max (epoch_of t (local_now t)) (t.sealed_epoch + 1)
  else epoch_of t (now t)

let last_eof_from t ~peer = t.last_eof.(peer)
let touch_eof t ~peer = t.last_eof.(peer) <- Sim.now t.env.sim

(* Commit timestamps come from the (possibly skewed) local clock under
   the fast path — they are what feeds the peers' watermarks — and stay
   monotone per node either way. *)
let fresh_csn t =
  let ts = max (local_now t) (t.csn_last + 1) in
  t.csn_last <- ts;
  Csn.make ~ts ~node:t.id

let send_msg t ~dst ~bytes msg =
  let env = t.env in
  Net.send env.net ~src:t.id ~dst ~bytes (fun () -> env.deliver ~dst msg)

let broadcast t ~bytes msg =
  for dst = 0 to Net.n_nodes t.env.net - 1 do
    if dst <> t.id then send_msg t ~dst ~bytes msg
  done

(* --- partial replication (DESIGN.md §12) --- *)

let my_group t = Partitioning.group_of_node t.env.part t.id

(* Foreign group [group]'s verdict on cross transaction [key] of epoch
   [cen]: [Some v] once known, [None] while still awaited. For a group
   with no member left in the resolution epoch's view, the durable
   backup votes are adopted (first-write-wins and written before the
   crash, so every survivor reads the same value); a group that died
   before voting counts as a rejection — the conservative default that
   keeps survivors agreed. *)
let vote_status t ~cen ~group key =
  let direct =
    match Itbl.find_opt t.votes (pack_cp ~cen ~peer:group) with
    | Some tbl -> Itbl.find_opt tbl key
    | None -> None
  in
  match direct with
  | Some _ as s -> s
  | None ->
    let part = t.env.part in
    let alive =
      List.exists
        (fun m -> Partitioning.group_of_node part m = group)
        (t.env.members_at (cen + Partitioning.vote_depth part))
    in
    if alive then None
    else
      Some
        (match Backup.get_votes t.env.backup ~group ~cen with
        | Some vs -> (
          match List.assoc_opt key vs with Some v -> v | None -> false)
        | None -> false)

let store_votes t ~cen ~group verdicts =
  let key = pack_cp ~cen ~peer:group in
  let tbl =
    match Itbl.find_opt t.votes key with
    | Some tbl -> tbl
    | None ->
      let tbl = Itbl.create 8 in
      Itbl.replace t.votes key tbl;
      tbl
  in
  List.iter
    (fun (k, ok) -> if not (Itbl.mem tbl k) then Itbl.replace tbl k ok)
    verdicts

(* Batch frames pass through [send_batch] so the chaos checker's
   corruption fault can mangle them: a corrupted frame travels as raw
   wire bytes truncated to half (which guarantees the decoder trips) and
   is billed at the ORIGINAL frame size — corruption does not discount
   the WAN bill. With [corrupt_frac] at its default 0.0 no RNG draw
   happens and the frame goes out as a structured message, exactly as
   before. *)
let send_batch t ~dst ~bytes (b : Writeset.Batch.t) =
  let env = t.env in
  if Net.corrupt_frac env.net > 0.0 && Net.draw_corrupt env.net then begin
    let wire = Writeset.Batch.to_wire b in
    let mangled = Bytes.sub wire 0 (Bytes.length wire / 2) in
    Net.send env.net ~src:t.id ~dst ~bytes (fun () ->
        env.deliver ~dst (Batch_wire mangled))
  end
  else
    Net.send env.net ~src:t.id ~dst ~bytes (fun () ->
        env.deliver ~dst (Batch_msg b))

let broadcast_batch t ~bytes b =
  for dst = 0 to Net.n_nodes t.env.net - 1 do
    if dst <> t.id then send_batch t ~dst ~bytes b
  done

(* Nodes interested in a write set: the members of every touched group. *)
let interest_targets t (ws : Writeset.t) =
  let part = t.env.part in
  let n = Net.n_nodes t.env.net in
  let want = Array.make n false in
  List.iter
    (fun g ->
      List.iter (fun m -> want.(m) <- true) (Partitioning.members part g))
    (Partitioning.touched_groups part ws);
  want.(t.id) <- false;
  let acc = ref [] in
  for dst = n - 1 downto 0 do
    if want.(dst) then acc := dst :: !acc
  done;
  !acc

(* --- fault-tolerance notification gates (§5.2) --- *)

(* Earliest time clients of epoch [cen] may be answered, measured from
   the epoch seal time. *)
let ft_gate_delay t =
  let topo = Net.topology t.env.net in
  match t.env.params.Params.ft with
  | Params.Ft_none | Params.Ft_raft -> 0
  | Params.Ft_local_backup ->
    (* round trip to a same-region backup server *)
    2 * Topology.latency topo t.id t.id
  | Params.Ft_remote_backup ->
    (* round trip to the nearest other-region backup *)
    let best = ref max_int in
    for p = 0 to Topology.n_nodes topo - 1 do
      if Topology.region_of topo p <> Topology.region_of topo t.id then
        best := min !best (Topology.latency topo t.id p)
    done;
    if !best = max_int then 0 else 2 * !best

(* --- GeoG-A: coordination-free LWW apply (used by Async_merge) --- *)

let lww_apply t (ws : Writeset.t) =
  let meta = ws.Writeset.meta in
  List.iter
    (fun (r : Writeset.record) ->
      match Db.get_table t.db r.Writeset.table with
      | None -> ()
      | Some table -> (
        let key_str = Writeset.key_str r in
        match Table.find table key_str with
        | Some entry ->
          if Csn.compare meta.Meta.csn entry.Table.header.Row_header.csn > 0
          then begin
            Row_header.stamp entry.Table.header ~sen:meta.Meta.sen
              ~csn:meta.Meta.csn ~cen:meta.Meta.cen;
            (* The stamp alone is digest-relevant (a delete over an
               existing tombstone changes only the header). *)
            Table.touch table;
            match r.Writeset.op with
            | Writeset.Delete -> Table.delete table entry
            | Writeset.Insert | Writeset.Update ->
              Table.revive table entry r.Writeset.data
          end
        | None -> (
          match r.Writeset.op with
          | Writeset.Delete -> ()
          | Writeset.Insert | Writeset.Update ->
            let header = Row_header.create () in
            Row_header.stamp header ~sen:meta.Meta.sen ~csn:meta.Meta.csn
              ~cen:meta.Meta.cen;
            Table.insert_committed table ~key:r.Writeset.key
              ~data:r.Writeset.data ~header)))
    ws.Writeset.records

(* --- finishing transactions --- *)

(* Per-transaction span: five Algorithm-1 phase events back-dated
   cumulatively from the submit time, a commit-point marker when the
   transaction entered an epoch, then the commit/abort terminator. The
   span id is the node-tagged causal span allocated at submit; the
   commit event's parent is the span of the deciding epoch merge, which
   links the transaction into the cross-node causal DAG. *)
let emit_txn_span t (txn : Txn.t) outcome =
  let p = txn.Txn.phases in
  if txn.Txn.span = 0 then txn.Txn.span <- Obs.new_span t.obs ~node:t.id;
  let span = txn.Txn.span in
  (* cen defaults to 0; only transactions that reached the commit point
     with a write set actually belong to an epoch. *)
  let epoch = if txn.Txn.commit_point > 0 then txn.Txn.cen else -1 in
  let start = ref txn.Txn.submit_time in
  let phase name dur =
    Obs.emit t.obs ~at:!start ~node:t.id ~epoch ~span ~dur ~cat:"txn" name;
    start := !start + max 0 dur
  in
  phase "phase.parse" p.Txn.parse_us;
  phase "phase.exec" p.Txn.exec_us;
  phase "phase.wait" p.Txn.wait_us;
  phase "phase.merge" p.Txn.merge_us;
  phase "phase.log" p.Txn.log_us;
  if txn.Txn.commit_point > 0 then
    Obs.emit t.obs ~at:txn.Txn.commit_point ~node:t.id ~epoch ~span ~cat:"txn"
      "commit.point";
  let parent = if txn.Txn.merge_span > 0 then txn.Txn.merge_span else -1 in
  match outcome with
  | Txn.Committed { latency_us; _ } ->
    Obs.emit t.obs ~node:t.id ~epoch ~span ~parent ~dur:latency_us ~cat:"txn"
      "commit"
  | Txn.Aborted { latency_us; reason } ->
    Obs.emit t.obs ~node:t.id ~epoch ~span ~parent ~dur:latency_us ~cat:"txn"
      "abort"
      ~detail:(Txn.abort_reason_to_string reason)

let finish t (txn : Txn.t) outcome =
  if not txn.Txn.finished then begin
    txn.Txn.finished <- true;
    Metrics.record_outcome t.metrics outcome;
    (match outcome with
    | Txn.Committed _ -> Metrics.record_phases t.metrics txn.Txn.phases
    | Txn.Aborted _ -> ());
    if Obs.tracing t.obs then emit_txn_span t txn outcome;
    (match outcome with
    | Txn.Committed _ -> t.env.on_commit txn
    | Txn.Aborted _ -> ());
    txn.Txn.callback outcome
  end

let finish_committed t txn =
  finish t txn
    (Txn.Committed
       {
         latency_us = now t - txn.Txn.submit_time;
         results = txn.Txn.sql_results;
       })

let finish_aborted t txn reason =
  finish t txn (Txn.Aborted { latency_us = now t - txn.Txn.submit_time; reason })

(* --- deferred cross-group write-back (DESIGN.md §12) --- *)

(* Write back this group's fragment of a globally committed cross-group
   transaction, deferred from its merge epoch [k] to its resolution.
   Phase A of merge [k] already stamped the headers of the live rows
   this transaction won (Update/Delete), so the data lands only where
   the header still carries this transaction's stamp — anywhere else a
   later epoch's winner has already superseded it. Inserts went to the
   (since cleared) temporary list, so they materialise here unless a
   newer row or tombstone appeared in the vote window. *)
let apply_deferred t ce =
  let ws = ce.ce_frag in
  let meta = ws.Writeset.meta in
  List.iter
    (fun (r : Writeset.record) ->
      match Db.get_table t.db r.Writeset.table with
      | None -> ()
      | Some table -> (
        let key_str = Writeset.key_str r in
        let mine (entry : Table.entry) =
          entry.Table.header.Row_header.cen = meta.Meta.cen
          && Csn.equal entry.Table.header.Row_header.csn meta.Meta.csn
        in
        match r.Writeset.op with
        | Writeset.Insert -> (
          match Table.find table key_str with
          | None ->
            let header = Row_header.create () in
            Row_header.stamp header ~sen:meta.Meta.sen ~csn:meta.Meta.csn
              ~cen:meta.Meta.cen;
            Table.insert_committed table ~key:r.Writeset.key
              ~data:r.Writeset.data ~header
          | Some entry ->
            (* an older tombstone: revive it; any stamp from epoch >= k
               means a later writer superseded this insert *)
            if entry.Table.header.Row_header.cen < meta.Meta.cen then begin
              Row_header.stamp entry.Table.header ~sen:meta.Meta.sen
                ~csn:meta.Meta.csn ~cen:meta.Meta.cen;
              Table.touch table;
              Table.revive table entry r.Writeset.data
            end)
        | Writeset.Update -> (
          match Table.find table key_str with
          | None -> ()
          | Some entry ->
            if mine entry && not entry.Table.header.Row_header.deleted then
              Table.write table entry r.Writeset.data)
        | Writeset.Delete -> (
          match Table.find table key_str with
          | None -> ()
          | Some entry ->
            if mine entry && not entry.Table.header.Row_header.deleted then
              Table.delete table entry)))
    ws.Writeset.records

(* Resolve the cross-group transactions of epoch [rk] = e - vote_depth:
   merge-readiness demanded every touched group's verdict before the
   merge of [e] could start, so the global decision is now a pure
   function of agreed state. Entries are processed in packed-csn order,
   so every member of the group applies the same fragments in the same
   sequence. *)
let resolve_cross t e ~span =
  let part = t.env.part in
  let rk = e - Partitioning.vote_depth part in
  if Partitioning.enabled part && rk >= 0 then begin
    (match Itbl.find_opt t.cross_pending rk with
    | None -> ()
    | Some entries ->
      let entries = List.sort (fun a b -> compare a.ce_key b.ce_key) entries in
      let my = my_group t in
      List.iter
        (fun ce ->
          let ok =
            ce.ce_local_ok
            && List.for_all
                 (fun g ->
                   g = my || vote_status t ~cen:rk ~group:g ce.ce_key = Some true)
                 ce.ce_groups
          in
          if ok then apply_deferred t ce;
          if Obs.tracing t.obs then
            Obs.emit t.obs ~node:t.id ~epoch:rk ~span ~cat:"epoch"
              "cross.resolve"
              ~detail:
                (Printf.sprintf "csn=%d ok=%b groups=%d" ce.ce_key ok
                   (List.length ce.ce_groups));
          match ce.ce_txn with
          | None -> ()
          | Some txn ->
            txn.Txn.merge_span <- span;
            txn.Txn.phases.wait_us <-
              txn.Txn.phases.wait_us + (now t - txn.Txn.commit_point);
            if ok then begin
              let ws_bytes =
                match txn.Txn.writeset with
                | Some ws -> Writeset.encoded_size ws
                | None -> 0
              in
              let log_us = Gg_storage.Wal.append t.wal ~bytes:ws_bytes in
              txn.Txn.phases.log_us <- log_us;
              Sim.schedule t.env.sim ~after:log_us (fun () ->
                  Metrics.record_epoch_commit t.metrics ~cen:rk
                    ~latency_us:(now t - txn.Txn.submit_time);
                  finish_committed t txn)
            end
            else finish_aborted t txn ce.ce_reason)
        entries);
    Itbl.remove t.cross_pending rk;
    for g = 0 to Partitioning.n_groups part - 1 do
      Itbl.remove t.votes (pack_cp ~cen:rk ~peer:g)
    done
  end

(* --- epoch sealing --- *)

let seal_epoch t e =
  let mine, rest = List.partition (fun (cen, _) -> cen = e) t.current_send in
  t.current_send <- rest;
  let txns = List.rev_map snd mine in
  Itbl.replace t.local_sealed e txns;
  (* One span per sealed epoch batch: the EOF's wire header carries it to
     every peer, whose batch.recv events become its causal children. *)
  let bspan = Obs.new_span t.obs ~node:t.id in
  let batch =
    Writeset.Batch.make ~node:t.id ~cen:e ~txns ~eof:true ~span:bspan ()
  in
  Backup.put t.env.backup batch;
  let part = t.env.part in
  if Partitioning.enabled part then begin
    (* Interest-scoped dissemination: each replica group receives one
       EOF frame per epoch carrying (or, with pipelining, counting) only
       the transactions that touch its keys. Every node still hears an
       EOF from every peer every epoch, so the failure detector and the
       merge-readiness rule are unchanged; the backup above keeps the
       full batch for stall repair and view changes. *)
    if Obs.tracing t.obs then
      Obs.emit t.obs ~node:t.id ~epoch:e ~span:bspan ~cat:"epoch" "seal"
        ~detail:(Printf.sprintf "txns=%d" (List.length txns));
    for g = 0 to Partitioning.n_groups part - 1 do
      let gtxns = List.filter (Partitioning.touches part ~group:g) txns in
      let wire_batch =
        if t.env.params.Params.pipeline then
          Writeset.Batch.make ~node:t.id ~cen:e ~txns:[] ~eof:true
            ~count:(List.length gtxns) ~span:bspan ()
        else
          Writeset.Batch.make ~node:t.id ~cen:e ~txns:gtxns ~eof:true
            ~span:bspan ()
      in
      let bytes = Writeset.Batch.wire_size wire_batch in
      if Obs.tracing t.obs then
        Obs.emit t.obs ~node:t.id ~epoch:e ~span:bspan ~cat:"epoch"
          "batch.send"
          ~detail:(Printf.sprintf "group=%d bytes=%d" g bytes);
      List.iter
        (fun dst -> if dst <> t.id then send_batch t ~dst ~bytes wire_batch)
        (Partitioning.members part g)
    done
  end
  else begin
    (* With pipelining the write sets already went out in mini-batches;
       only the EOF marker (carrying the expected count) travels now. *)
    let wire_batch =
      if t.env.params.Params.pipeline then
        Writeset.Batch.make ~node:t.id ~cen:e ~txns:[] ~eof:true
          ~count:(List.length txns) ~span:bspan ()
      else batch
    in
    (* Encode+compress of a large outgoing batch is the other hot kernel
       of the epoch boundary: shard the per-transaction encodes across
       the merge domains when the batch is big enough to pay for the
       spawns. [to_wire_par] is byte-identical to [to_wire] at any
       width, so the wire size (and every simulated byte count) never
       depends on it. *)
    let enc_jobs = Epoch_merge.resolve_jobs t.env.params in
    (if enc_jobs > 1 then
       let batch_records =
         List.fold_left
           (fun n (ws : Writeset.t) -> n + List.length ws.Writeset.records)
           0 wire_batch.Writeset.Batch.txns
       in
       if batch_records >= max 1 t.env.params.Params.merge_par_threshold then
         ignore
           (Writeset.Batch.to_wire_par ~jobs:(Epoch_merge.clamp_jobs enc_jobs)
              wire_batch));
    let bytes = Writeset.Batch.wire_size wire_batch in
    if Obs.tracing t.obs then begin
      Obs.emit t.obs ~node:t.id ~epoch:e ~span:bspan ~cat:"epoch" "seal"
        ~detail:(Printf.sprintf "txns=%d" (List.length txns));
      Obs.emit t.obs ~node:t.id ~epoch:e ~span:bspan ~cat:"epoch" "batch.send"
        ~detail:(Printf.sprintf "bytes=%d" bytes)
    end;
    broadcast_batch t ~bytes wire_batch
  end;
  Itbl.replace t.notify_gate e (now t + ft_gate_delay t);
  t.sealed_epoch <- e

let rec schedule_boundary t e =
  let b = (e + 1) * epoch_us t in
  (* Under the fast path each node seals on its LOCAL clock: the boundary
     fires at the sim time where the local reading crosses [b]
     (first-order inversion of the offset; drift over one epoch is
     negligible). A fast clock seals early, a slow one late — the skew
     cost the watermark deadlines of the peers then absorb. *)
  let at =
    if fastpath_on t then b - Clock.offset_us t.env.clock ~node:t.id ~at:b
    else b
  in
  Sim.schedule_at t.env.sim at (fun () ->
      if t.active && not (Net.is_down t.env.net t.id) then begin
        seal_epoch t e;
        try_advance t
      end;
      schedule_boundary t (e + 1))

(* --- the per-epoch merge: Algorithm 2 + validation + write-back --- *)

and collect_epoch_txns t e =
  (* Local + all remote updates of epoch e, deduplicated by csn (the
     network may duplicate; merge must stay idempotent). Under partial
     replication a remote write set is kept only if it touches this
     node's group: normal dissemination never delivers others, but a
     stall repair fetches the sender's FULL backup batch — dropping the
     foreign-only entries here keeps both paths equivalent. Local
     transactions always stay (their outcome is owed to the client). *)
  let part = t.env.part in
  let keep (ws : Writeset.t) =
    (not (Partitioning.enabled part))
    || Partitioning.touches part ~group:(my_group t) ws
  in
  let seen = Itbl.create 64 in
  let add acc (ws : Writeset.t) =
    let k = pack_csn ws.Writeset.meta.Meta.csn in
    if Itbl.mem seen k then acc
    else begin
      Itbl.replace seen k ();
      ws :: acc
    end
  in
  let acc =
    List.fold_left add []
      (Option.value ~default:[] (Itbl.find_opt t.local_sealed e))
  in
  let acc =
    List.fold_left
      (fun acc peer ->
        if peer = t.id then acc
        else
          match Itbl.find_opt t.remote (pack_cp ~cen:e ~peer) with
          | None -> acc
          | Some bs ->
            List.fold_left
              (fun acc ws -> if keep ws then add acc ws else acc)
              acc (List.rev bs.txns))
      acc
      (t.env.members_at e)
  in
  List.rev acc

and cross_ready t e =
  (* All foreign verdicts for the cross transactions merged at epoch [e]
     are in (or synthesisable from a dead group's backup record). *)
  e < 0
  || (not (Partitioning.enabled t.env.part))
  ||
  match Itbl.find_opt t.cross_pending e with
  | None -> true
  | Some entries ->
    let my = my_group t in
    List.for_all
      (fun ce ->
        List.for_all
          (fun g -> g = my || vote_status t ~cen:e ~group:g ce.ce_key <> None)
          ce.ce_groups)
      entries

and peer_complete t ~cen ~peer =
  match Itbl.find_opt t.remote (pack_cp ~cen ~peer) with
  | Some bs ->
    bs.eof
    && Itbl.length bs.txn_keys >= bs.expected
    && (bs.committed || t.env.params.Params.ft <> Params.Ft_raft)
  | None -> false

and merge_ready t e =
  t.sealed_epoch >= e
  && cross_ready t (e - Partitioning.vote_depth t.env.part)
  && List.for_all
       (fun peer -> peer = t.id || peer_complete t ~cen:e ~peer)
       (t.env.members_at e)

and try_advance t =
  (if t.active && not t.merging then begin
    let e = t.lsn + 1 in
    if merge_ready t e then begin
      t.merging <- true;
      let txns = collect_epoch_txns t e in
      let part = t.env.part in
      (* Simulated merge work under partial replication counts only the
         records this group actually merges (its fragments) plus the
         deferred cross-group fragments resolving at this merge. *)
      let n_records =
        if Partitioning.enabled part then
          let my = my_group t in
          List.fold_left
            (fun n (ws : Writeset.t) ->
              List.fold_left
                (fun n r ->
                  if Partitioning.group_of_record part r = my then n + 1 else n)
                n ws.Writeset.records)
            0 txns
        else
          List.fold_left
            (fun n ws -> n + List.length ws.Writeset.records)
            0 txns
      in
      let resolve_records =
        if not (Partitioning.enabled part) then 0
        else
          match
            Itbl.find_opt t.cross_pending (e - Partitioning.vote_depth part)
          with
          | None -> 0
          | Some entries ->
            List.fold_left
              (fun n ce -> n + List.length ce.ce_frag.Writeset.records)
              0 entries
      in
      let cost = t.env.params.Params.cost in
      (* Every blocked transaction thread is checked/notified around each
         snapshot generation (§5.1): with short epochs this scan
         dominates, which is why the paper's Fig 8 peaks at ~10 ms. *)
      let fresh_duration () =
        cost.merge_base_us
        + (pending_waiting t * cost.notify_us)
        + ((n_records + resolve_records) * cost.merge_record_us
          / max 1 cost.merge_threads)
      in
      (* Fast-path intercept: a speculative merge armed for this epoch is
         confirmed if the all-arrived set matches the speculated one, and
         discarded (misprediction) otherwise. Either way externalization
         happens strictly after this point — speculation only moved
         simulated work earlier, never a client answer. *)
      let merge_started, duration, mspan, prelog, delay =
        if t.spec_epoch = e then begin
          let keys =
            List.sort compare
              (List.map
                 (fun (ws : Writeset.t) -> pack_csn ws.Writeset.meta.Meta.csn)
                 txns)
          in
          let started = t.spec_started
          and sdur = t.spec_duration
          and sspan = t.spec_span
          and skeys = t.spec_keys in
          let prelog = if t.spec_logged >= 0 then Some t.spec_logged else None in
          t.spec_epoch <- -1;
          t.spec_keys <- [];
          t.spec_logged <- -1;
          if keys = skeys then begin
            (* Confirmed: the merge charge began at [started]; only its
               residual (if any) remains. The effective start is
               back-dated so wait + merge telescope exactly to the
               commit instant even when the charge finished early. *)
            Metrics.record_spec_confirm t.metrics;
            let residual = max 0 (started + sdur - now t) in
            if Obs.tracing t.obs then
              Obs.emit t.obs ~node:t.id ~epoch:e ~span:sspan ~dur:residual
                ~cat:"epoch" "merge.confirm"
                ~detail:
                  (Printf.sprintf "txns=%d residual=%d" (List.length txns)
                     residual);
            (now t + residual - sdur, sdur, sspan, prelog, residual)
          end
          else begin
            (* Mispredicted: a straggler write set violated its
               watermark. The speculative verdicts are discarded (none
               were externalized) and the epoch re-merges synchronously
               on the actual set — at exactly the instant the classic
               path would have merged, so a misprediction costs wasted
               simulated work, not correctness. The WAL prelog stays
               valid: stragglers are remote, the local log records are
               unchanged. *)
            Metrics.record_spec_mispredict t.metrics;
            if Obs.tracing t.obs then
              Obs.emit t.obs ~node:t.id ~epoch:e ~span:sspan ~cat:"epoch"
                "merge.mispredict"
                ~detail:
                  (Printf.sprintf "speculated=%d actual=%d"
                     (List.length skeys) (List.length keys));
            let d = fresh_duration () in
            (now t, d, Obs.new_span t.obs ~node:t.id, prelog, d)
          end
        end
        else
          let d = fresh_duration () in
          (now t, d, Obs.new_span t.obs ~node:t.id, None, d)
      in
      if Obs.tracing t.obs then
        Obs.emit t.obs ~node:t.id ~epoch:e ~span:mspan ~dur:delay ~cat:"epoch"
          "merge.start"
          ~detail:(Printf.sprintf "txns=%d records=%d" (List.length txns) n_records);
      Sim.schedule t.env.sim ~after:delay (fun () ->
          do_merge t e txns ~merge_started ~duration ~span:mspan ~prelog;
          t.merging <- false;
          try_advance t)
    end
  end);
  maybe_spec t

(* --- clock-assisted speculative seal (DESIGN.md §14) --- *)

and spec_margin_us t =
  (* Negative lead on the predicted-arrival deadlines: fire early enough
     that the speculative merge charge and the WAL group commit finish
     right as the all-arrived signal lands. A larger lead only raises
     the mispredict rate — never breaks safety, and a mispredicted epoch
     re-merges at the same instant the synchronous path would have. The
     parameter override exists for tests (a huge negative value is a
     deliberately broken watermark: speculation always fires on an
     incomplete set). *)
  let m = t.env.params.Params.fastpath_margin_us in
  if m <> -1 then m
  else
    let cost = t.env.params.Params.cost in
    -(cost.log_fsync_us + cost.merge_base_us + 300)

and maybe_spec t =
  if
    fastpath_on t && t.active
    && (not (Net.is_down t.env.net t.id))
    && (not t.merging)
    && not (Partitioning.enabled t.env.part)
    (* cross-group voting already delays externalization past the merge;
       speculating under partial replication would buy nothing *)
  then begin
    let e = t.lsn + 1 in
    if t.spec_epoch <> e && t.sealed_epoch >= e then begin
      let clock = t.env.clock in
      let boundary = (e + 1) * epoch_us t in
      let margin = spec_margin_us t in
      (* Speculate once every peer is complete (EOF and announced count
         in) or past its predicted-arrival watermark deadline. *)
      let all_past, latest =
        List.fold_left
          (fun (ok, latest) peer ->
            if peer = t.id || peer_complete t ~cen:e ~peer then (ok, latest)
            else
              let d =
                Clock.deadline clock ~src:peer ~dst:t.id ~boundary_us:boundary
                  ~margin_us:margin
              in
              if d <= now t then (ok, latest) else (false, max latest d))
          (true, min_int)
          (t.env.members_at e)
      in
      if all_past then begin
        if not (merge_ready t e) then speculate t e
      end
      else if latest < t.spec_wake_at then begin
        (* One armed wakeup at the latest outstanding deadline; arriving
           messages re-evaluate sooner anyway. *)
        t.spec_wake_at <- latest;
        Sim.schedule_at t.env.sim latest (fun () ->
            if t.spec_wake_at = latest then t.spec_wake_at <- max_int;
            maybe_spec t)
      end
    end
  end

and speculate t e =
  let txns = collect_epoch_txns t e in
  let keys =
    List.sort compare
      (List.map
         (fun (ws : Writeset.t) -> pack_csn ws.Writeset.meta.Meta.csn)
         txns)
  in
  let n_records =
    List.fold_left
      (fun n (ws : Writeset.t) -> n + List.length ws.Writeset.records)
      0 txns
  in
  let cost = t.env.params.Params.cost in
  let duration =
    cost.merge_base_us
    + (pending_waiting t * cost.notify_us)
    + (n_records * cost.merge_record_us / max 1 cost.merge_threads)
  in
  t.spec_epoch <- e;
  t.spec_started <- now t;
  t.spec_duration <- duration;
  t.spec_keys <- keys;
  t.spec_span <- Obs.new_span t.obs ~node:t.id;
  Metrics.record_spec t.metrics;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~node:t.id ~epoch:e ~span:t.spec_span ~dur:duration
      ~cat:"epoch" "merge.spec"
      ~detail:(Printf.sprintf "txns=%d records=%d" (List.length txns) n_records);
  (* Speculative WAL prelog: the local write sets were frozen when the
     epoch sealed, so their group commit overlaps the EOF flight instead
     of following the merge. Safe across a misprediction — the local
     records never change, only remote stragglers do. *)
  t.spec_logged <- now t;
  List.iter
    (fun (txn : Txn.t) ->
      match txn.Txn.writeset with
      | Some ws ->
        txn.Txn.phases.log_us <-
          Gg_storage.Wal.append t.wal ~bytes:(Writeset.encoded_size ws)
      | None -> ())
    (Option.value ~default:[] (Itbl.find_opt t.waiting e))

and do_merge t e full ~merge_started ~duration ~span ~prelog =
  let part = t.env.part in
  let enabled = Partitioning.enabled part in
  (* Settle the cross-group transactions whose vote window ends here,
     before this epoch's own merge reads the database. *)
  resolve_cross t e ~span;
  let my = my_group t in
  (* Under partial replication each node merges its group's FRAGMENT of
     every write set. Cross-group transactions (touching several groups,
     or a local transaction writing only foreign groups) are merged
     normally but their write-back is deferred until every touched
     group's verdict arrives, [vote_depth] epochs later. *)
  let cross : cross_entry Itbl.t = Itbl.create 16 in
  let txns =
    if not enabled then full
    else
      List.map
        (fun (ws : Writeset.t) ->
          let frag = Partitioning.fragment part ~group:my ws in
          let gs = Partitioning.touched_groups part ws in
          let deferred =
            match gs with
            | [] -> false
            | [ g ] -> g <> my (* local txn writing only a foreign group *)
            | _ :: _ :: _ -> true
          in
          (if deferred then
             let key = pack_csn ws.Writeset.meta.Meta.csn in
             Itbl.replace cross key
               {
                 ce_key = key;
                 ce_origin = ws.Writeset.meta.Meta.csn.Csn.node;
                 ce_groups = gs;
                 ce_frag = frag;
                 ce_local_ok = false;
                 ce_reason = Txn.Cross_abort;
                 ce_txn = None;
               });
          frag)
        full
  in
  (* Phases A–C (DeltaCRDTMerge pre-write, validation, SSI, write-back)
     live in {!Epoch_merge}; [merge_jobs] shards them across host
     domains with byte-identical results (DESIGN.md §10). *)
  let m =
    Epoch_merge.run ~threshold:t.env.params.Params.merge_par_threshold
      ~db:t.db
      ~jobs:(Epoch_merge.resolve_jobs t.env.params)
      ~ssi:(t.env.params.Params.isolation = Params.SSI)
      ~level:(Params.effective_merge_level t.env.params)
      ~defer:(fun ws -> Itbl.mem cross (pack_csn ws.Writeset.meta.Meta.csn))
      txns
  in
  let entries =
    if not enabled then []
    else
      Itbl.fold
        (fun _ ce acc ->
          ce.ce_local_ok <- Epoch_merge.committed m ce.ce_frag;
          if not ce.ce_local_ok then
            ce.ce_reason <- Epoch_merge.abort_reason m ce.ce_frag;
          ce :: acc)
        cross []
  in
  if entries <> [] then Itbl.replace t.cross_pending e entries;
  Metrics.record_merged_records t.metrics (Epoch_merge.n_records m);
  t.lsn <- e;
  t.last_advance <- now t;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~node:t.id ~epoch:e ~span ~dur:duration ~cat:"epoch"
      "merge.commit"
      ~detail:
        (Printf.sprintf "committed=%d dead=%d records=%d"
           (Epoch_merge.n_committed m) (Epoch_merge.n_dead m)
           (Epoch_merge.n_records m));
  (* Tombstone GC: Algorithm 2 only needs tombstones for "the past few
     epochs"; keep a generous window and reclaim the rest. *)
  if e mod 100 = 0 then ignore (Db.purge_tombstones t.db ~before_cen:(e - 100));
  (* Notify the local transactions of this epoch. *)
  let locals = Option.value ~default:[] (Itbl.find_opt t.waiting e) in
  let gate = Option.value ~default:0 (Itbl.find_opt t.notify_gate e) in
  List.iter
    (fun (txn : Txn.t) ->
      match
        if enabled then Itbl.find_opt cross (pack_csn txn.Txn.csn) else None
      with
      | Some ce ->
        (* Cross-group: the client is answered at resolution, after the
           foreign groups' votes are in. *)
        ce.ce_txn <- Some txn;
        txn.Txn.phases.merge_us <- duration
      | None ->
        txn.Txn.merge_span <- span;
        txn.Txn.phases.wait_us <-
          txn.Txn.phases.wait_us + (merge_started - txn.Txn.commit_point);
        txn.Txn.phases.merge_us <- duration;
        let ws_bytes =
          match txn.Txn.writeset with
          | Some ws -> Writeset.encoded_size ws
          | None -> 0
        in
        let log_us =
          match prelog with
          | Some logged_at ->
            (* group commit already issued at speculation time; only the
               unfinished remainder (if any) is still on the commit path,
               which is what the log phase records *)
            max 0 (logged_at + txn.Txn.phases.log_us - now t)
          | None -> Gg_storage.Wal.append t.wal ~bytes:ws_bytes
        in
        txn.Txn.phases.log_us <- log_us;
        let extra_gate = max 0 (gate - now t) in
        Sim.schedule t.env.sim ~after:(extra_gate + log_us) (fun () ->
            match txn.Txn.writeset with
            | Some ws when Epoch_merge.committed m ws ->
              Metrics.record_epoch_commit t.metrics ~cen:e
                ~latency_us:(now t - txn.Txn.submit_time);
              finish_committed t txn
            | Some ws -> finish_aborted t txn (Epoch_merge.abort_reason m ws)
            | None -> finish_aborted t txn Txn.Write_conflict))
    locals;
  (* Vote dissemination: after merging epoch [e], this group's members
     each send the (identical, csn-sorted) verdict list for the cross
     transactions that touched the group — to the members of the other
     touched groups and to the origin nodes — and record it durably so
     a lost vote (or a dead group) can be repaired from the backup. *)
  (if enabled then
     let mine_entries = List.filter (fun ce -> List.mem my ce.ce_groups) entries in
     (* A transaction that touches ONLY this group but originated outside
        it merges on the fast path here (no deferral), yet its origin
        deferred it and waits for this group's verdict — so it must
        appear in the vote even though it has no cross entry locally. *)
     let vote_only =
       List.filter_map
         (fun (ws : Writeset.t) ->
           let key = pack_csn ws.Writeset.meta.Meta.csn in
           if Itbl.mem cross key then None
           else
             let origin = ws.Writeset.meta.Meta.csn.Csn.node in
             if Partitioning.group_of_node part origin = my then None
             else
               match Partitioning.touched_groups part ws with
               | [ g ] when g = my ->
                 Some (key, Epoch_merge.committed m ws, origin)
               | _ -> None)
         full
     in
     let verdicts =
       List.sort compare
         (List.map (fun ce -> (ce.ce_key, ce.ce_local_ok)) mine_entries
         @ List.map (fun (key, ok, _) -> (key, ok)) vote_only)
     in
     if verdicts <> [] then begin
       Backup.put_votes t.env.backup ~group:my ~cen:e verdicts;
       (* Every member records the (identical) verdict list durably, but
          only the group's first member — its speaker — puts it on the
          wire: the list is a deterministic function of the group's
          merge, so N-1 of the N copies are redundant, and at 200
          replicas that redundancy is what would dominate the WAN bill.
          A dead or lagging speaker is covered by the stall-repair
          refetch from the backup. *)
       let speaker =
         match Partitioning.members part my with m0 :: _ -> m0 | [] -> t.id
       in
       if t.id = speaker then begin
       let nn = Net.n_nodes t.env.net in
       let want = Array.make nn false in
       List.iter
         (fun ce ->
           List.iter
             (fun g ->
               if g <> my then
                 List.iter
                   (fun m' -> want.(m') <- true)
                   (Partitioning.members part g))
             ce.ce_groups;
           want.(ce.ce_origin) <- true)
         mine_entries;
       List.iter (fun (_, _, origin) -> want.(origin) <- true) vote_only;
       want.(t.id) <- false;
       (* header + epoch/group ids + 9 bytes per (csn, verdict) pair *)
       let bytes = 8 + 16 + (9 * List.length verdicts) in
       for dst = 0 to nn - 1 do
         if want.(dst) then
           send_msg t ~dst ~bytes
             (Part_vote { cen = e; group = my; verdicts; span })
       done
       end
     end);
  (* Bounded memory: drop per-epoch bookkeeping. *)
  Itbl.remove t.waiting e;
  Itbl.remove t.local_sealed e;
  Itbl.remove t.notify_gate e;
  Itbl.remove t.ft_acks e;
  List.iter
    (fun peer -> Itbl.remove t.remote (pack_cp ~cen:e ~peer))
    (t.env.members_at e);
  t.env.on_snapshot ~node:t.id ~lsn:e;
  (* GeoG-S: a fresh snapshot releases held transactions. *)
  release_sync_queue t

(* --- Algorithm 1: local transaction lifecycle --- *)

and release_sync_queue t =
  if t.env.params.Params.variant = Params.Sync_exec then begin
    let ready = Queue.create () in
    Queue.transfer t.sync_queue ready;
    Queue.iter (fun txn -> start_execution t txn) ready
  end

and submit t request callback =
  let txn =
    Txn.create ~id:t.txn_seq ~node:t.id ~request ~submit_time:(now t) ~callback
  in
  t.txn_seq <- t.txn_seq + 1;
  txn.Txn.span <- Obs.new_span t.obs ~node:t.id;
  Metrics.record_start t.metrics;
  if (not t.active) || Net.is_down t.env.net t.id then
    finish_aborted t txn Txn.Node_failure
  else begin
    txn.Txn.sen <- current_epoch t;
    txn.Txn.lsn <- t.lsn;
    match t.env.params.Params.variant with
    | Params.Sync_exec when t.lsn < current_epoch t - 1 ->
      Queue.add txn t.sync_queue
    | Params.Sync_exec | Params.Optimistic | Params.Async_merge ->
      start_execution t txn
  end

and start_execution t (txn : Txn.t) =
  let cost = t.env.params.Params.cost in
  (* Time spent queued before execution (GeoG-S holds) counts as wait. *)
  txn.Txn.phases.wait_us <- now t - txn.Txn.submit_time;
  match txn.Txn.request with
  | Txn.Op_txn o ->
    (* Stored-procedure style: parse, then one execution slice. Reads
       happen at the start of the slice; the commit point comes exec_us
       (+ injected delay) later, so the snapshot may move underneath —
       that is what RR/SI validation catches. *)
    let parse_us = o.Gg_workload.Op.parse_cost_us in
    let exec_us = Gg_workload.Op.n_ops o * cost.exec_op_us in
    let extra_us = o.Gg_workload.Op.exec_extra_us in
    txn.Txn.phases.parse_us <- parse_us;
    txn.Txn.phases.exec_us <- exec_us + extra_us;
    Cpu.run t.cpu ~cost:parse_us (fun () ->
        match run_ops t txn o with
        | Error m ->
          Cpu.run t.cpu ~cost:exec_us (fun () ->
              finish_aborted t txn (Txn.Constraint_violation m))
        | Ok () ->
          Cpu.run t.cpu ~cost:exec_us (fun () ->
              if extra_us > 0 then
                Sim.schedule t.env.sim ~after:extra_us (fun () -> commit_point t txn)
              else commit_point t txn))
  | Txn.Sql_txn { stmts; _ } ->
    (* Interactive SQL executes statement by statement: each statement
       pays its own parse + execution slice, so later statements observe
       whatever snapshots were generated in the meantime (the source of
       RR/SI read-validation aborts). *)
    let per_stmt_parse = 400 in
    txn.Txn.phases.parse_us <- List.length stmts * per_stmt_parse;
    txn.Txn.phases.exec_us <- List.length stmts * cost.sql_stmt_us;
    let ctx =
      Executor.Ctx.create
        ~track_cols:(Params.effective_merge_level t.env.params = Params.Column)
        t.db
    in
    let rec step acc = function
      | [] ->
        txn.Txn.sql_results <- List.rev acc;
        txn.Txn.read_set <- Executor.Ctx.read_set ctx;
        let records = Executor.Ctx.writeset_records ctx in
        if records = [] then txn.Txn.writeset <- None
        else
          txn.Txn.writeset <-
            Some
              (Writeset.make
                 ~meta:(Meta.make ~sen:txn.Txn.sen ~cen:0 ~csn:Csn.zero)
                 ~records ());
        commit_point t txn
      | (sql, params) :: rest ->
        Cpu.run t.cpu ~cost:(per_stmt_parse + cost.sql_stmt_us) (fun () ->
            match Executor.exec_sql ctx sql ~params with
            | Error m -> finish_aborted t txn (Txn.Constraint_violation m)
            | Ok r -> step (r :: acc) rest)
    in
    step [] stmts

and run_ops t (txn : Txn.t) o =
  match
    Op_exec.exec
      ~col_mask:(Params.effective_merge_level t.env.params = Params.Column)
      t.db o
  with
  | Error m -> Error m
  | Ok { Op_exec.reads; writes } ->
    txn.Txn.read_set <- reads;
    if writes = [] then begin
      txn.Txn.writeset <- None;
      Ok ()
    end
    else begin
      (* meta is filled in at the commit point *)
      txn.Txn.writeset <-
        Some
          (Writeset.make
             ~meta:(Meta.make ~sen:txn.Txn.sen ~cen:0 ~csn:Csn.zero)
             ~records:writes ());
      Ok ()
    end

and read_validation t (txn : Txn.t) =
  (* Algorithm 1, lines 9-18. *)
  match t.env.params.Params.isolation with
  | Params.RC -> Ok ()
  | (Params.RR | Params.SI | Params.SSI) as iso -> (
    let violation =
      List.find_opt
        (fun (r : Executor.read_record) ->
          match Db.get_table t.db r.Executor.r_table with
          | None -> true
          | Some table -> (
            match Table.find table r.Executor.r_key_str with
            | None -> true (* row vanished *)
            | Some entry ->
              let h = entry.Table.header in
              if h.Row_header.deleted then true
              else if iso = Params.RR then
                not (Csn.equal h.Row_header.csn r.Executor.r_csn)
              else h.Row_header.cen - 1 > txn.Txn.lsn))
        txn.Txn.read_set
    in
    match violation with None -> Ok () | Some _ -> Error Txn.Read_validation)

and commit_point t (txn : Txn.t) =
  if (not t.active) || Net.is_down t.env.net t.id then ()
    (* crashed mid-flight; the client will time out *)
  else
    match read_validation t txn with
    | Error reason -> finish_aborted t txn reason
    | Ok () -> (
      match txn.Txn.writeset with
      | None -> finish_committed t txn (* read-only: Algorithm 1 l.19-20 *)
      | Some ws -> (
        let cen = current_epoch t in
        let csn = fresh_csn t in
        let meta = Meta.make ~sen:txn.Txn.sen ~cen ~csn in
        let read_keys =
          (* The SSI extension ships the read-set keys with the write set
             so peers can detect rw-antidependencies (§4.3). *)
          if t.env.params.Params.isolation = Params.SSI then
            List.map
              (fun (r : Executor.read_record) ->
                (r.Executor.r_table, r.Executor.r_key_str))
              txn.Txn.read_set
          else []
        in
        let ws = Writeset.with_commit ws ~meta ~read_keys in
        txn.Txn.writeset <- Some ws;
        txn.Txn.cen <- cen;
        txn.Txn.csn <- csn;
        txn.Txn.commit_point <- now t;
        match t.env.params.Params.variant with
        | Params.Async_merge ->
          (* GeoG-A: merge locally now, gossip, reply immediately. *)
          lww_apply t ws;
          let mini =
            Writeset.Batch.make ~node:t.id ~cen ~txns:[ ws ] ~eof:false
              ~span:txn.Txn.span ()
          in
          broadcast_batch t ~bytes:(Writeset.Batch.wire_size mini) mini;
          let cost = t.env.params.Params.cost in
          txn.Txn.phases.merge_us <-
            List.length ws.Writeset.records * cost.merge_record_us;
          let log_us =
            Gg_storage.Wal.append t.wal ~bytes:(Writeset.encoded_size ws)
          in
          txn.Txn.phases.log_us <- log_us;
          Sim.schedule t.env.sim ~after:log_us (fun () -> finish_committed t txn)
        | Params.Optimistic | Params.Sync_exec ->
          t.current_send <- (cen, ws) :: t.current_send;
          if t.env.params.Params.pipeline then begin
            let mini =
              Writeset.Batch.make ~node:t.id ~cen ~txns:[ ws ] ~eof:false
                ~span:txn.Txn.span ()
            in
            let bytes = Writeset.Batch.wire_size mini in
            (* Interest-scoped pipelining: only members of the touched
               groups hear the mini-batch. *)
            if Partitioning.enabled t.env.part then
              List.iter
                (fun dst -> send_batch t ~dst ~bytes mini)
                (interest_targets t ws)
            else broadcast_batch t ~bytes mini
          end;
          let q = Option.value ~default:[] (Itbl.find_opt t.waiting cen) in
          Itbl.replace t.waiting cen (txn :: q);
          if cen > t.last_txn_cen then t.last_txn_cen <- cen))

(* --- Algorithm 3: receive side --- *)

and batch_state t ~cen ~peer =
  let key = pack_cp ~cen ~peer in
  match Itbl.find_opt t.remote key with
  | Some bs -> bs
  | None ->
    let bs =
      {
        txns = [];
        txn_keys = Itbl.create 8;
        eof = false;
        expected = -1;
        committed = t.env.params.Params.ft <> Params.Ft_raft;
      }
    in
    Itbl.replace t.remote key bs;
    bs

and receive t msg =
  (* Messages to a down node are dropped by the network; a recovering
     node (up but not yet reactivated) buffers batches so nothing from
     its re-join epoch onwards is lost. *)
  match msg with
    | Batch_msg b ->
      if t.env.params.Params.variant = Params.Async_merge then
        List.iter (lww_apply t) b.Writeset.Batch.txns
      else if b.Writeset.Batch.cen > t.lsn then begin
        (* Fast path: every arriving write set feeds the sender's
           timestamp watermark and the region-pair one-way delay
           estimator — commit timestamps are stamped from the sender's
           (skewed) local clock, which is exactly what the deadline
           extrapolation cancels out. *)
        (if fastpath_on t then
           let src = b.Writeset.Batch.node in
           List.iter
             (fun (ws : Writeset.t) ->
               let ts = ws.Writeset.meta.Meta.csn.Csn.ts in
               Clock.note_stamp t.env.clock ~src ~dst:t.id ~stamp:ts
                 ~at:(now t);
               Clock.observe_delay t.env.clock ~src ~dst:t.id
                 ~sample_us:(now t - ts))
             b.Writeset.Batch.txns);
        let bs = batch_state t ~cen:b.Writeset.Batch.cen ~peer:b.Writeset.Batch.node in
        List.iter
          (fun (ws : Writeset.t) ->
            let k = pack_csn ws.Writeset.meta.Meta.csn in
            if not (Itbl.mem bs.txn_keys k) then begin
              Itbl.replace bs.txn_keys k ();
              bs.txns <- ws :: bs.txns
            end)
          b.Writeset.Batch.txns;
        if b.Writeset.Batch.eof then begin
          bs.eof <- true;
          bs.expected <- max bs.expected b.Writeset.Batch.count;
          t.last_eof.(b.Writeset.Batch.node) <- now t;
          (* The recv span becomes the parent of any Ft_ack we send back,
             continuing the causal chain across the acknowledgement. *)
          let rspan = Obs.new_span t.obs ~node:t.id in
          if Obs.tracing t.obs then
            Obs.emit t.obs ~node:t.id ~epoch:b.Writeset.Batch.cen ~cat:"epoch"
              "batch.recv" ~span:rspan
              ~parent:
                (if b.Writeset.Batch.span > 0 then b.Writeset.Batch.span else -1)
              ~detail:
                (Printf.sprintf "from=%d txns=%d" b.Writeset.Batch.node
                   (Itbl.length bs.txn_keys));
          if t.env.params.Params.ft = Params.Ft_raft then
            send_msg t ~dst:b.Writeset.Batch.node ~bytes:40
              (Ft_ack { cen = b.Writeset.Batch.cen; from = t.id; span = rspan })
        end;
        try_advance t
      end
    | Batch_wire bytes -> (
      match Writeset.Batch.of_wire_opt bytes with
      | Some b -> receive t (Batch_msg b)
      | None ->
        (* Corrupted frame: indistinguishable from a lost one once the
           decoder trips; drop it and let the stall-repair path refetch
           the epoch from the sender's backup if the loss blocks. *)
        if Obs.tracing t.obs then
          Obs.emit t.obs ~node:t.id ~cat:"epoch" "batch.corrupt"
            ~detail:(Printf.sprintf "bytes=%d" (Bytes.length bytes)))
    | Part_vote { cen; group; verdicts; span = pspan } ->
      if cen + Partitioning.vote_depth t.env.part > t.lsn then begin
        if Obs.tracing t.obs then
          Obs.emit t.obs ~node:t.id ~epoch:cen ~cat:"epoch" "vote.recv"
            ~parent:(if pspan > 0 then pspan else -1)
            ~detail:
              (Printf.sprintf "group=%d verdicts=%d" group
                 (List.length verdicts));
        store_votes t ~cen ~group verdicts;
        try_advance t
      end
    | Ft_ack { cen; from; span = pspan } ->
      let aspan = Obs.new_span t.obs ~node:t.id in
      if Obs.tracing t.obs then
        Obs.emit t.obs ~node:t.id ~epoch:cen ~cat:"epoch" "ft.ack" ~span:aspan
          ~parent:(if pspan > 0 then pspan else -1)
          ~detail:(Printf.sprintf "from=%d" from);
      let acks =
        match Itbl.find_opt t.ft_acks cen with
        | Some l -> l
        | None ->
          let l = ref [] in
          Itbl.replace t.ft_acks cen l;
          l
      in
      if not (List.mem from !acks) then begin
        acks := from :: !acks;
        let n = List.length (t.env.members_at cen) in
        (* self + acks form the majority *)
        if (List.length !acks + 1) * 2 > n then
          broadcast t ~bytes:40 (Ft_commit { cen; origin = t.id; span = aspan })
      end
    | Ft_commit { cen; origin; span = pspan } ->
      if Obs.tracing t.obs then
        Obs.emit t.obs ~node:t.id ~epoch:cen ~cat:"epoch" "ft.commit"
          ~parent:(if pspan > 0 then pspan else -1)
          ~detail:(Printf.sprintf "origin=%d" origin);
      let bs = batch_state t ~cen ~peer:origin in
      bs.committed <- true;
      try_advance t
    | State_snapshot _ -> ()
(* recovery installation goes through install_state *)

(* --- lifecycle --- *)

(* Stall repair (§5.2): without a reliable transport, a lost mini-batch,
   EOF or Ft_commit would block the next merge forever — the failure
   detector never fires because the peer keeps sending later EOFs. When
   the snapshot has not moved for [repair_after_us], re-fetch whatever is
   missing for epoch (lsn + 1) from the peers' backup servers (one
   regional round trip, same path survivors use after a view change). A
   batch present in the backup is durable, which is also all the Raft-FT
   commit gate establishes, so a successful fetch may release it too.
   Fetches are idempotent: receive deduplicates transactions by csn. *)
let repair t =
  let e = t.lsn + 1 in
  if
    t.active
    && (not (Net.is_down t.env.net t.id))
    && (not t.merging)
    && t.sealed_epoch >= e
    && now t - t.last_advance > t.env.params.Params.repair_after_us
  then begin
    List.iter
      (fun peer ->
        if peer <> t.id then begin
          let complete =
            match Itbl.find_opt t.remote (pack_cp ~cen:e ~peer) with
            | Some bs -> bs.eof && Itbl.length bs.txn_keys >= bs.expected
            | None -> false
          in
          let gated =
            t.env.params.Params.ft = Params.Ft_raft
            &&
            match Itbl.find_opt t.remote (pack_cp ~cen:e ~peer) with
            | Some bs -> not bs.committed
            | None -> true
          in
          if (not complete) || gated then
            match Backup.get t.env.backup ~node:peer ~cen:e with
            | None -> ()
            | Some batch ->
              let topo = Net.topology t.env.net in
              let delay = 2 * Topology.latency topo t.id peer in
              if Obs.tracing t.obs then
                Obs.emit t.obs ~node:t.id ~epoch:e ~cat:"epoch" "repair.fetch"
                  ~detail:(Printf.sprintf "peer=%d" peer);
              Sim.schedule t.env.sim ~after:delay (fun () ->
                  if t.active && not (Net.is_down t.env.net t.id) then begin
                    let bs = batch_state t ~cen:e ~peer in
                    bs.committed <- true;
                    receive t (Batch_msg batch)
                  end)
        end)
      (t.env.members_at e);
    (* Missing cross-group votes stall the merge the same way a missing
       batch does: refetch them from the voting group's durable backup
       record (one round trip to its nearest member). A group that has
       not merged the epoch yet has nothing in the backup — keep
       waiting; a dead group is handled by [vote_status] directly. *)
    let part = t.env.part in
    if Partitioning.enabled part then begin
      let rk = e - Partitioning.vote_depth part in
      if rk >= 0 then
        match Itbl.find_opt t.cross_pending rk with
        | None -> ()
        | Some entries ->
          let my = my_group t in
          for g = 0 to Partitioning.n_groups part - 1 do
            let missing =
              g <> my
              && List.exists
                   (fun ce ->
                     List.mem g ce.ce_groups
                     && vote_status t ~cen:rk ~group:g ce.ce_key = None)
                   entries
            in
            if missing then
              match Backup.get_votes t.env.backup ~group:g ~cen:rk with
              | None -> ()
              | Some vs ->
                let topo = Net.topology t.env.net in
                let best =
                  List.fold_left
                    (fun a m -> min a (Topology.latency topo t.id m))
                    max_int
                    (Partitioning.members part g)
                in
                let delay = if best = max_int then 0 else 2 * best in
                if Obs.tracing t.obs then
                  Obs.emit t.obs ~node:t.id ~epoch:rk ~cat:"epoch"
                    "repair.votes"
                    ~detail:(Printf.sprintf "group=%d" g);
                Sim.schedule t.env.sim ~after:delay (fun () ->
                    if t.active && not (Net.is_down t.env.net t.id) then begin
                      store_votes t ~cen:rk ~group:g vs;
                      try_advance t
                    end)
          done
    end
  end

let rec schedule_repair t =
  Sim.schedule t.env.sim ~after:100_000 (fun () ->
      repair t;
      schedule_repair t)

let start t =
  (* The first boundary is picked by SIM time even under the fast path:
     a node whose local clock runs ahead must still seal every epoch
     from 0 (peers wait on its EOFs); its early boundaries simply all
     fire immediately. *)
  schedule_boundary t (epoch_of t (now t));
  schedule_repair t

let set_active t v =
  if t.active && not v then begin
    (* Crash: drop all volatile per-epoch state; in-flight local txns are
       lost (their clients time out and retry elsewhere). *)
    t.active <- false;
    Itbl.reset t.remote;
    Itbl.reset t.local_sealed;
    Itbl.reset t.waiting;
    Itbl.reset t.notify_gate;
    Itbl.reset t.ft_acks;
    Itbl.reset t.cross_pending;
    Itbl.reset t.votes;
    Queue.clear t.sync_queue;
    t.current_send <- [];
    t.merging <- false;
    t.spec_epoch <- -1;
    t.spec_keys <- [];
    t.spec_logged <- -1;
    t.spec_wake_at <- max_int
  end
  else if (not t.active) && v then t.active <- true

let missing_sealed_epochs t ~peer ~upto =
  let missing = ref [] in
  for e = upto downto t.lsn + 1 do
    let have =
      match Itbl.find_opt t.remote (pack_cp ~cen:e ~peer) with
      | Some bs -> bs.eof
      | None -> false
    in
    if not have then missing := e :: !missing
  done;
  !missing

let make_state_snapshot ?(span = 0) t =
  State_snapshot { lsn = t.lsn; ckpt = Gg_storage.Checkpoint.encode t.db; span }

let install_state t ~rejoin ~lsn ~db =
  (* Guard against duplicated or stale snapshots: the transfer travels
     over the faulty network, so it can arrive twice (dup) or be re-sent
     by the cluster's retry loop after the node already resumed.
     Installing again would wipe live per-epoch state. *)
  if (not t.active) && lsn > t.lsn then begin
    (* Keep batches buffered for epochs after the installed snapshot —
       the peers broadcast them while the transfer was in flight. *)
    let stale =
      Itbl.fold
        (fun key _ acc -> if cen_of_cp key <= lsn then key :: acc else acc)
        t.remote []
    in
    List.iter (Itbl.remove t.remote) stale;
    Itbl.reset t.local_sealed;
    Itbl.reset t.waiting;
    Itbl.reset t.cross_pending;
    Itbl.reset t.votes;
    Db.replace_contents t.db ~from:db;
    t.lsn <- lsn;
    t.last_advance <- Sim.now t.env.sim;
    t.sealed_epoch <- max t.sealed_epoch lsn;
    t.merging <- false;
    t.spec_epoch <- -1;
    t.spec_keys <- [];
    t.spec_logged <- -1;
    t.spec_wake_at <- max_int;
    t.active <- true;
    (* Seal every epoch from the re-join epoch up to the current one
       (all empty — the node served no clients): peers are already
       waiting for these EOFs, and our own merges need the local
       entries. The snapshot may cover epochs past [rejoin] (the donor
       keeps merging while the transfer is pending), in which case the
       already-covered epochs still need their empty seals broadcast.
       The current epoch is left to its own boundary timer. *)
    for e = min (t.lsn + 1) rejoin to current_epoch t - 1 do
      seal_epoch t e
    done;
    t.sealed_epoch <- max t.sealed_epoch lsn;
    try_advance t
  end
