(** Transaction requests, outcomes and runtime bookkeeping. *)

type request =
  | Op_txn of Gg_workload.Op.txn
      (** key-level stored-procedure style transaction (benchmarks) *)
  | Sql_txn of {
      label : string;
      stmts : (string * Gg_storage.Value.t array) list;
          (** statements with positional parameters, executed in order *)
    }

type abort_reason =
  | Constraint_violation of string
  | Read_validation  (** RR/SI read-set check failed (Algorithm 1 l.9-18) *)
  | Write_conflict  (** lost the write-write merge (Algorithm 1 l.26-29) *)
  | Ssi_conflict
      (** SSI extension: pivot of consecutive rw-antidependencies *)
  | Row_deleted  (** wrote a row deleted by an earlier epoch *)
  | Node_failure  (** host crashed before responding *)
  | Cross_abort
      (** partial replication: passed the local group's validation but a
          foreign touched group's merge rejected it (DESIGN.md §12) *)

type outcome =
  | Committed of {
      latency_us : int;
      results : Gg_sql.Executor.result list;
          (** SQL result sets; empty for op-level transactions *)
    }
  | Aborted of { latency_us : int; reason : abort_reason }

(** Per-phase latency breakdown of a transaction (paper Table 2). All in
    µs; [wait] covers both waiting for the previous snapshot and for the
    epoch's remote updates. *)
type phases = {
  mutable parse_us : int;
  mutable exec_us : int;
  mutable wait_us : int;
  mutable merge_us : int;
  mutable log_us : int;
}

type t = {
  id : int;
  node : int;
  request : request;
  submit_time : int;
  callback : outcome -> unit;
  phases : phases;
  mutable sen : int;
  mutable lsn : int;  (** snapshot the transaction read from *)
  mutable cen : int;
  mutable csn : Gg_storage.Csn.t;
  mutable read_set : Gg_sql.Executor.read_record list;
  mutable writeset : Gg_crdt.Writeset.t option;
  mutable sql_results : Gg_sql.Executor.result list;
  mutable commit_point : int;  (** time the send-buffer append happened *)
  mutable finished : bool;
  mutable span : int;
      (** causal span id ({!Gg_obs.Obs.new_span}); [0] while tracing is
          off. Allocated at submit, carried by the transaction's
          mini-batches, and stamped on its trace events. *)
  mutable merge_span : int;
      (** span of the epoch merge that decided this transaction; [0]
          until then. Becomes the parent of the commit/abort event,
          linking the transaction into the cross-node causal DAG. *)
}

val create :
  id:int -> node:int -> request:request -> submit_time:int ->
  callback:(outcome -> unit) -> t

val label : t -> string
val abort_reason_to_string : abort_reason -> string
val outcome_latency : outcome -> int
val is_committed : outcome -> bool
