module Sim = Gg_sim.Sim
module Arrival = Gg_workload.Arrival
module Rng = Gg_util.Rng

type sample = { at : int; latency_us : int }

type mode = Closed | Open of { arrival : Arrival.t; queue_cap : int }

type t = {
  cluster : Cluster.t;
  home : int;
  connections : int;
  mode : mode;
  gen : unit -> Txn.request;
  rng : Rng.t;  (* open-loop arrival draws; untouched in closed mode *)
  queue : int Queue.t;  (* waiting arrivals' timestamps, FIFO *)
  mutable in_flight : int;
  mutable running : bool;
  mutable committed : int;
  mutable aborted : int;
  mutable timeouts : int;
  mutable offered : int;  (* open-loop: arrivals admitted by thinning *)
  mutable shed : int;  (* open-loop: arrivals dropped, queue full *)
  mutable latency : Gg_util.Stats.Hist.t;
  mutable samples : sample list;  (* committed, newest first *)
  mutable started : bool;
}

(* End-of-warm-up reset: statistics only. The queue and the in-flight
   count are simulation STATE, not statistics — wiping them would
   teleport queued work away and let the measured window start from an
   artificially empty system. A transaction that arrived during warm-up
   but commits after the reset counts with its full latency (queue wait
   included): that backlog is precisely what an overloaded open-loop
   system carries into any measurement window. *)
let reset_stats t =
  t.committed <- 0;
  t.aborted <- 0;
  t.timeouts <- 0;
  t.offered <- 0;
  t.shed <- 0;
  t.latency <- Gg_util.Stats.Hist.create ();
  t.samples <- []

let create ?(mode = Closed) cluster ~home ~connections ~gen =
  let t =
    {
      cluster;
      home;
      connections;
      mode;
      gen;
      rng =
        Rng.create
          ((Cluster.params cluster).Params.seed
          lxor (0x09E2 + (home * 7919)));
      queue = Queue.create ();
      in_flight = 0;
      running = false;
      committed = 0;
      aborted = 0;
      timeouts = 0;
      offered = 0;
      shed = 0;
      latency = Gg_util.Stats.Hist.create ();
      samples = [];
      started = false;
    }
  in
  Gg_obs.Obs.on_reset (Cluster.obs cluster) (fun () -> reset_stats t);
  t

let now t = Sim.now (Cluster.sim t.cluster)

(* --- closed loop (the paper's serving model) -------------------------- *)

let rec connection_loop t =
  if t.running then begin
    let target = Cluster.route t.cluster ~preferred:t.home in
    let sim = Cluster.sim t.cluster in
    (* Clients live in their home node's region; being re-routed to
       another region (failover) costs a WAN hop each way. *)
    let hop =
      if target = t.home then 0
      else
        Gg_sim.Topology.latency
          (Gg_sim.Net.topology (Cluster.net t.cluster))
          t.home target
    in
    let req = t.gen () in
    let submitted = now t in
    let answered = ref false in
    let retry_us = (Cluster.params t.cluster).Params.client_retry_us in
    (* If the serving node dies, the response never comes: time out and
       re-route. *)
    Sim.schedule sim ~after:retry_us (fun () ->
        if not !answered then begin
          answered := true;
          t.timeouts <- t.timeouts + 1;
          Sim.schedule sim ~after:1_000 (fun () -> connection_loop t)
        end);
    let respond outcome =
      if not !answered then begin
        answered := true;
        match outcome with
        | Txn.Committed _ ->
          let latency_us = now t - submitted in
          t.committed <- t.committed + 1;
          Gg_util.Stats.Hist.add t.latency (float_of_int latency_us);
          t.samples <- { at = now t; latency_us } :: t.samples;
          connection_loop t
        | Txn.Aborted _ ->
          t.aborted <- t.aborted + 1;
          (* Small client-side retry backoff; also prevents a
             same-instant resubmission loop against a failed node. *)
          Sim.schedule sim ~after:1_000 (fun () -> connection_loop t)
      end
    in
    Sim.schedule sim ~after:hop (fun () ->
        Cluster.submit t.cluster ~node:target req (fun outcome ->
            Sim.schedule sim ~after:hop (fun () -> respond outcome)))
  end

(* --- open loop -------------------------------------------------------- *)

(* One submission over one connection. Unlike the closed loop the
   latency clock starts at ARRIVAL, not submission — queueing delay is
   part of what an open-loop user experiences — and nothing retries:
   an abort or timeout frees the connection for the next arrival. *)
let rec dispatch t ~arrived =
  t.in_flight <- t.in_flight + 1;
  let target = Cluster.route t.cluster ~preferred:t.home in
  let sim = Cluster.sim t.cluster in
  let hop =
    if target = t.home then 0
    else
      Gg_sim.Topology.latency
        (Gg_sim.Net.topology (Cluster.net t.cluster))
        t.home target
  in
  let req = t.gen () in
  let answered = ref false in
  let retry_us = (Cluster.params t.cluster).Params.client_retry_us in
  let complete () =
    t.in_flight <- t.in_flight - 1;
    (* Already-admitted arrivals drain even after [stop]. *)
    match Queue.take_opt t.queue with
    | Some arrived -> dispatch t ~arrived
    | None -> ()
  in
  Sim.schedule sim ~after:retry_us (fun () ->
      if not !answered then begin
        answered := true;
        t.timeouts <- t.timeouts + 1;
        complete ()
      end);
  let respond outcome =
    if not !answered then begin
      answered := true;
      (match outcome with
      | Txn.Committed _ ->
        let latency_us = now t - arrived in
        t.committed <- t.committed + 1;
        Gg_util.Stats.Hist.add t.latency (float_of_int latency_us);
        t.samples <- { at = now t; latency_us } :: t.samples
      | Txn.Aborted _ -> t.aborted <- t.aborted + 1);
      complete ()
    end
  in
  Sim.schedule sim ~after:hop (fun () ->
      Cluster.submit t.cluster ~node:target req (fun outcome ->
          Sim.schedule sim ~after:hop (fun () -> respond outcome)))

(* Nonhomogeneous Poisson arrivals by Lewis thinning: draw exponential
   gaps at the PEAK rate, then accept each candidate with probability
   rate(now)/peak. Both draws come from the client's own rng, so the
   arrival curve is a pure function of (seed, home) — byte-determinism
   holds whatever the cluster does in between. *)
let rec arrival_loop t ~arrival ~queue_cap =
  if t.running then begin
    let sim = Cluster.sim t.cluster in
    let peak = Arrival.peak_tps arrival in
    let gap_us = Rng.exponential t.rng (1e6 /. peak) in
    let gap_us = max 1 (int_of_float gap_us) in
    Sim.schedule sim ~after:gap_us (fun () ->
        if t.running then begin
          let rate = Arrival.rate_at arrival ~at_us:(now t) in
          if Rng.chance t.rng (rate /. peak) then begin
            t.offered <- t.offered + 1;
            if t.in_flight < t.connections then dispatch t ~arrived:(now t)
            else if Queue.length t.queue < queue_cap then
              Queue.push (now t) t.queue
            else t.shed <- t.shed + 1
          end;
          arrival_loop t ~arrival ~queue_cap
        end)
  end

let start t =
  match t.mode with
  | Closed ->
    if not t.started then begin
      t.started <- true;
      t.running <- true;
      for _ = 1 to t.connections do
        connection_loop t
      done
    end
    else t.running <- true
  | Open { arrival; queue_cap } ->
    if not t.running then begin
      t.started <- true;
      t.running <- true;
      arrival_loop t ~arrival ~queue_cap
    end

let stop t = t.running <- false

let committed t = t.committed
let aborted t = t.aborted
let timeouts t = t.timeouts
let offered t = t.offered
let shed t = t.shed
let in_flight t = t.in_flight
let queued t = Queue.length t.queue
let latency t = t.latency

let timeline t ~bucket_us =
  let samples = List.rev t.samples in
  let horizon = now t in
  let n_buckets = (horizon / bucket_us) + 1 in
  let counts = Array.make n_buckets 0 in
  let lat_sums = Array.make n_buckets 0.0 in
  List.iter
    (fun s ->
      let b = s.at / bucket_us in
      if b >= 0 && b < n_buckets then begin
        counts.(b) <- counts.(b) + 1;
        lat_sums.(b) <- lat_sums.(b) +. float_of_int s.latency_us
      end)
    samples;
  List.init n_buckets (fun b ->
      let tput = float_of_int counts.(b) /. (float_of_int bucket_us /. 1e6) in
      let lat_ms =
        if counts.(b) = 0 then 0.0
        else lat_sums.(b) /. float_of_int counts.(b) /. 1000.0
      in
      (float_of_int (b * bucket_us) /. 1e6, tput, lat_ms))
