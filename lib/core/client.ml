module Sim = Gg_sim.Sim

type sample = { at : int; latency_us : int }

type t = {
  cluster : Cluster.t;
  home : int;
  connections : int;
  gen : unit -> Txn.request;
  mutable running : bool;
  mutable committed : int;
  mutable aborted : int;
  mutable timeouts : int;
  mutable latency : Gg_util.Stats.Hist.t;
  mutable samples : sample list;  (* committed, newest first *)
  mutable started : bool;
}

let reset_stats t =
  t.committed <- 0;
  t.aborted <- 0;
  t.timeouts <- 0;
  t.latency <- Gg_util.Stats.Hist.create ();
  t.samples <- []

let create cluster ~home ~connections ~gen =
  let t =
    {
      cluster;
      home;
      connections;
      gen;
      running = false;
      committed = 0;
      aborted = 0;
      timeouts = 0;
      latency = Gg_util.Stats.Hist.create ();
      samples = [];
      started = false;
    }
  in
  Gg_obs.Obs.on_reset (Cluster.obs cluster) (fun () -> reset_stats t);
  t

let now t = Sim.now (Cluster.sim t.cluster)

let rec connection_loop t =
  if t.running then begin
    let target = Cluster.route t.cluster ~preferred:t.home in
    let sim = Cluster.sim t.cluster in
    (* Clients live in their home node's region; being re-routed to
       another region (failover) costs a WAN hop each way. *)
    let hop =
      if target = t.home then 0
      else
        Gg_sim.Topology.latency
          (Gg_sim.Net.topology (Cluster.net t.cluster))
          t.home target
    in
    let req = t.gen () in
    let submitted = now t in
    let answered = ref false in
    let retry_us = (Cluster.params t.cluster).Params.client_retry_us in
    (* If the serving node dies, the response never comes: time out and
       re-route. *)
    Sim.schedule sim ~after:retry_us (fun () ->
        if not !answered then begin
          answered := true;
          t.timeouts <- t.timeouts + 1;
          Sim.schedule sim ~after:1_000 (fun () -> connection_loop t)
        end);
    let respond outcome =
      if not !answered then begin
        answered := true;
        match outcome with
        | Txn.Committed _ ->
          let latency_us = now t - submitted in
          t.committed <- t.committed + 1;
          Gg_util.Stats.Hist.add t.latency (float_of_int latency_us);
          t.samples <- { at = now t; latency_us } :: t.samples;
          connection_loop t
        | Txn.Aborted _ ->
          t.aborted <- t.aborted + 1;
          (* Small client-side retry backoff; also prevents a
             same-instant resubmission loop against a failed node. *)
          Sim.schedule sim ~after:1_000 (fun () -> connection_loop t)
      end
    in
    Sim.schedule sim ~after:hop (fun () ->
        Cluster.submit t.cluster ~node:target req (fun outcome ->
            Sim.schedule sim ~after:hop (fun () -> respond outcome)))
  end

let start t =
  if not t.started then begin
    t.started <- true;
    t.running <- true;
    for _ = 1 to t.connections do
      connection_loop t
    done
  end
  else t.running <- true

let stop t = t.running <- false

let committed t = t.committed
let aborted t = t.aborted
let timeouts t = t.timeouts
let latency t = t.latency

let timeline t ~bucket_us =
  let samples = List.rev t.samples in
  let horizon = now t in
  let n_buckets = (horizon / bucket_us) + 1 in
  let counts = Array.make n_buckets 0 in
  let lat_sums = Array.make n_buckets 0.0 in
  List.iter
    (fun s ->
      let b = s.at / bucket_us in
      if b >= 0 && b < n_buckets then begin
        counts.(b) <- counts.(b) + 1;
        lat_sums.(b) <- lat_sums.(b) +. float_of_int s.latency_us
      end)
    samples;
  List.init n_buckets (fun b ->
      let tput = float_of_int counts.(b) /. (float_of_int bucket_us /. 1e6) in
      let lat_ms =
        if counts.(b) = 0 then 0.0
        else lat_sums.(b) /. float_of_int counts.(b) /. 1000.0
      in
      (float_of_int (b * bucket_us) /. 1e6, tput, lat_ms))
