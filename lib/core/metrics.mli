(** Per-node transaction metrics: counts, latency histograms, per-phase
    breakdown (Table 2) and per-epoch series (Fig 6). *)

type epoch_cell = { mutable committed : int; latency : Gg_util.Stats.Acc.t }

type t

val create : ?obs:Gg_obs.Obs.t -> ?id:int -> unit -> t
(** With [?obs], counts and latency histograms live in the registry
    under ["node<id>.txn.*"] / ["node<id>.merge.records"] names (so
    {!Gg_obs.Obs.reset_all} zeroes them and JSONL snapshots include
    them); without it they are standalone instruments with identical
    behaviour. *)

val record_start : t -> unit
val record_outcome : t -> Txn.outcome -> unit

val record_phases : t -> Txn.phases -> unit
(** Call for committed transactions only (matches the paper's Table 2,
    which breaks down successfully committed transactions). *)

val record_epoch_commit : t -> cen:int -> latency_us:int -> unit

val record_merged_records : t -> int -> unit
(** Add [n] to the count of write-set records pushed through the merge
    loop (DeltaCRDTMerge phase A), duplicates included. *)

val merged_records : t -> int

(** {2 Clock-assisted fast path (DESIGN.md §14)} *)

val record_spec : t -> unit
(** A speculative merge fired (["fastpath.spec"]). *)

val record_spec_confirm : t -> unit
(** The all-arrived signal matched the speculated set. *)

val record_spec_mispredict : t -> unit
(** A straggler violated its watermark; the epoch re-merged
    synchronously (["fastpath.mispredict"]). *)

val spec_count : t -> int
val spec_confirms : t -> int
val spec_mispredicts : t -> int

val started : t -> int
val committed : t -> int
val aborted : t -> int
val aborted_by : t -> Txn.abort_reason -> int
(** Counts by reason constructor ([Constraint_violation _] pools
    together). *)

val latency : t -> Gg_util.Stats.Hist.t
(** All finished transactions. *)

val commit_latency : t -> Gg_util.Stats.Hist.t

val phase_means_us : t -> float * float * float * float * float
(** (parse, exec, wait, merge, log) means over committed txns. *)

val epoch_cells : t -> (int * epoch_cell) list
(** Sorted by epoch. *)

val reset : t -> unit
(** Clear everything (end of warm-up). *)
