(** The per-epoch intra-node merge kernel — DeltaCRDTMerge pre-write
    (phase A), OCC validation (phase B), the optional SSI pivot pass and
    write-back (phase C) — extracted from [Node.do_merge] so phases A/B
    can shard across OCaml domains ({!Gg_par.Pool.map_shards}) while
    staying byte-identical to the sequential pass, and so the kernel can
    be benchmarked and tested in isolation. DESIGN.md §10 gives the
    sharding rule and the determinism argument. *)

type t
(** The merge outcome: per-transaction commit/abort decisions plus
    counters. The decisions (and the database mutations performed by
    {!run}) are a deterministic function of the inputs alone — never of
    [jobs]. *)

val run :
  ?threshold:int -> ?defer:(Gg_crdt.Writeset.t -> bool) ->
  ?level:Params.merge_level ->
  db:Gg_storage.Db.t -> jobs:int -> ssi:bool ->
  Gg_crdt.Writeset.t list -> t
(** Merge one epoch's deduplicated write sets into [db] (mutating it:
    header stamps, write-back, temp-area use and final clear — exactly
    the sequential [do_merge] data path). [jobs] is the requested shard
    width; it is rounded down to a power of two dividing
    {!Gg_storage.Table.temp_shard_count}, and forced to 1 when the epoch
    has fewer than [threshold] records (default
    [Params.default.merge_par_threshold]; pass [~threshold:0] to force
    sharding on). [ssi] enables the SSI pivot-abort pass. [defer]
    (default: never) marks write sets that participate fully in
    validation — they can win rows in phases A/B and enter the committed
    set — but whose phase-C write-back is withheld; the partial-
    replication engine uses this for cross-group transactions whose
    global verdict arrives epochs later (DESIGN.md §12).

    [level] (default [Row]) selects the conflict granularity
    (DESIGN.md §13). Under [Column], concurrent [Update]s to one row all
    commit — phase A still stamps the row header with the row-order
    winner but no longer aborts the losers, phase B admits an [Update]
    iff the row-claim join ({!Gg_crdt.Column.claim_join}) is not a
    delete, and phase C writes back only the cells each committed update
    won under the per-column LWW join ({!Gg_crdt.Column.join}).
    [Insert]/[Delete] keep row semantics at either level. Pass
    {!Params.effective_merge_level}, never the raw param: gossip and
    partial replication re-apply whole row images and are row-level by
    construction. *)

val committed : t -> Gg_crdt.Writeset.t -> bool
(** Did this write set's transaction commit? (Keyed by its csn.) *)

val abort_reason : t -> Gg_crdt.Writeset.t -> Txn.abort_reason
(** The recorded abort reason — the {e first} failing record's reason in
    global record order, as in the sequential pass. Defaults to
    [Write_conflict] when the transaction is not in the dead set. *)

val n_records : t -> int
val n_committed : t -> int
val n_dead : t -> int

val jobs_used : t -> int
(** The effective shard width after clamping and the threshold gate
    (1 = the sequential path ran). *)

val resolve_jobs : Params.t -> int
(** The requested width from the parameter block: [merge_jobs] itself,
    or for [merge_jobs = 0] (auto) [min host_cores cost.merge_threads] —
    as many real domains as the modeled node's merge-thread count, when
    the host has them. *)

val clamp_jobs : int -> int
(** Largest power of two [<=] the request that divides
    {!Gg_storage.Table.temp_shard_count}; 1 for requests [<= 1]. *)
