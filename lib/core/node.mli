(** A GeoGauss master node: the per-replica state machine implementing
    the paper's epoch-based multi-master OCC.

    - {b Algorithm 1} (local transaction lifecycle) is spread across
      {!submit} (epoch/snapshot assignment, execution scheduling), the
      commit-point handler (read-set validation per isolation level,
      write-set dissemination) and the per-epoch notification step.
    - {b Algorithm 2} (DeltaCRDTMerge) runs inside the per-epoch merge,
      via {!Gg_crdt.Merge}.
    - {b Algorithm 3} (receive/merge threads) maps onto the message
      handler plus [try_advance], which produces consistent snapshots
      one by one.

    Timing is simulated: CPU work goes through a {!Gg_sim.Cpu} pool,
    write sets travel over {!Gg_sim.Net}, and per-phase durations follow
    {!Params.cost}. State changes (reads, merges, write-backs) happen at
    the simulated instants where the real system would perform them. *)

(** Every message carries the sender's causal span id ([0] when tracing
    is off) so receive-side trace events can name their cross-node
    parent; modeled byte counts include a fixed 8-byte trace-context
    header, matching the Batch wire form. *)
type msg =
  | Batch_msg of Gg_crdt.Writeset.Batch.t
  | Batch_wire of bytes
      (** a batch frame as raw wire bytes: what a corrupting network
          actually carries. A frame that fails to decode is dropped like
          a lost message (the stall-repair path recovers it). *)
  | Part_vote of {
      cen : int;
      group : int;
      verdicts : (int * bool) list;
      span : int;
    }
      (** partial replication: one group's merge verdicts for the
          cross-group transactions of an epoch — [(packed csn,
          validated)] pairs, csn-sorted (DESIGN.md §12) *)
  | Ft_ack of { cen : int; from : int; span : int }
      (** Raft-FT: receiver acknowledges an epoch batch *)
  | Ft_commit of { cen : int; origin : int; span : int }
      (** Raft-FT: origin saw a majority; batch may be merged *)
  | State_snapshot of { lsn : int; ckpt : bytes; span : int }
      (** recovery: serialized checkpoint of the state at snapshot [lsn]
          (see {!Gg_storage.Checkpoint}) *)

(** Shared environment; the [mutable] hooks are wired by {!Cluster}
    after all nodes exist. *)
type env = {
  sim : Gg_sim.Sim.t;
  net : Gg_sim.Net.t;
  params : Params.t;
  part : Partitioning.t;
      (** replica-group map; {!Partitioning.enabled} [= false] means
          full replication (every node receives every write set) *)
  backup : Backup.t;
  clock : Gg_sim.Clock.t;
      (** bounded-skew local clocks + watermark/delay estimators; only
          read when {!Params.t.fastpath} is on *)
  mutable members_at : int -> int list;
      (** expected replica set for a given epoch *)
  mutable deliver : dst:int -> msg -> unit;
      (** local dispatch, invoked at network delivery time *)
  mutable on_snapshot : node:int -> lsn:int -> unit;
      (** cluster hook fired after each snapshot generation *)
  mutable on_commit : Txn.t -> unit;
      (** commit-log hook: fired for every transaction whose commit is
          reported to its client, at the reporting instant. The {!Txn.t}
          carries the commit epoch, csn and write set — the chaos
          checker's durability and isolation oracles consume these. *)
}

type t

val create : env -> id:int -> db:Gg_storage.Db.t -> t
val start : t -> unit
(** Arm the epoch-boundary timer. *)

val submit : t -> Txn.request -> (Txn.outcome -> unit) -> unit
(** Accept a client transaction. The callback fires exactly once. *)

val receive : t -> msg -> unit

(** {1 Accessors} *)

val id : t -> int
val db : t -> Gg_storage.Db.t
val lsn : t -> int
(** Latest globally consistent snapshot number (-1 before the first). *)

val sealed_epoch : t -> int
val current_epoch : t -> int
val metrics : t -> Metrics.t
val active : t -> bool
val pending_waiting : t -> int
(** Local transactions blocked on future snapshots (diagnostics). *)

val last_txn_epoch : t -> int
(** Highest epoch that ever held a committed local transaction (-1 if
    none) — the epoch every replica must merge before a full-database
    digest comparison is meaningful ({!Cluster.quiesce}). *)

(** {1 Failure / recovery hooks (driven by Cluster)} *)

val set_active : t -> bool -> unit
(** [false]: stop sealing epochs and fail new submissions (crash).
    In-flight transactions are dropped; clients must time out. *)

val last_eof_from : t -> peer:int -> int
(** Sim time of the last EOF received from a peer (failure detection). *)

val touch_eof : t -> peer:int -> unit
(** Reset a peer's failure-detection clock (e.g. after it re-joins). *)

val missing_sealed_epochs : t -> peer:int -> upto:int -> int list
(** Epochs in (lsn, upto] with no EOF from [peer] — to be recovered from
    the peer's backup server. *)

val make_state_snapshot : ?span:int -> t -> msg
(** Donor side of recovery: deep copy of the current snapshot state.
    [span] (default [0] = untraced) is the transfer's causal span id. *)

val install_state : t -> rejoin:int -> lsn:int -> db:Gg_storage.Db.t -> unit
(** Recovering side: adopt a transferred snapshot and resume, sealing
    (empty) every epoch from [rejoin] — the epoch peers start expecting
    this node's EOFs again — up to the present. Duplicate or stale
    snapshots (lower [lsn], or the node already active) are ignored. *)

val try_advance : t -> unit
(** Re-evaluate merge prerequisites (call after view changes). *)
