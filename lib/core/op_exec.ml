module Op = Gg_workload.Op
module Value = Gg_storage.Value
module Table = Gg_storage.Table
module Db = Gg_storage.Db
module Writeset = Gg_crdt.Writeset

module Stbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type result = {
  reads : Gg_sql.Executor.read_record list;
  writes : Gg_crdt.Writeset.record list;
}

type pending = {
  p_table : string;
  p_key : Value.t array;
  p_key_str : string;
  p_existed : bool;
  mutable p_op : Writeset.op;
  mutable p_data : Value.t array;
  mutable p_cols : int;
      (* column mask of an Update; Column.full unless col_mask tracking
         is on and every write to this row was single-column *)
  mutable p_dead : bool;
}

exception Exec_error of string

(* (table, encoded key) flattened to one string so the buffers use a
   monomorphic string-keyed table instead of polymorphic tuple hashing;
   table names never contain NUL. *)
let rowkey ~table ~key_str = String.concat "\x00" [ table; key_str ]

let exec ?(col_mask = false) db (txn : Op.txn) =
  let module Column = Gg_crdt.Column in
  let reads_rev = ref [] in
  let read_seen = Stbl.create 8 in
  let writes : pending Stbl.t = Stbl.create 8 in
  let order_rev : pending list ref = ref [] in
  let table_of name =
    match Db.get_table db name with
    | Some t -> t
    | None -> raise (Exec_error (Printf.sprintf "unknown table %s" name))
  in
  let record_read ~table ~key_str ~rk (header : Gg_storage.Row_header.t) =
    if not (Stbl.mem read_seen rk) then begin
      Stbl.replace read_seen rk ();
      reads_rev :=
        {
          Gg_sql.Executor.r_table = table;
          r_key_str = key_str;
          r_csn = header.csn;
          r_cen = header.cen;
        }
        :: !reads_rev
    end
  in
  (* Visible data under the read-your-writes overlay: [None] = absent. *)
  let lookup ~table ~key_str ~rk =
    match Stbl.find_opt writes rk with
    | Some p when not p.p_dead ->
      if p.p_op = Writeset.Delete then None else Some (`Own p)
    | Some _ | None -> (
      match Table.find_live (table_of table) key_str with
      | Some e -> Some (`Base e)
      | None -> None)
  in
  let buffer ~table ~key ~key_str ~rk ~existed ~op ~cols ~data =
    match Stbl.find_opt writes rk with
    | Some p ->
      (match (p.p_dead, op) with
      | true, Writeset.Delete -> ()
      | true, _ ->
        p.p_dead <- false;
        p.p_op <- (if p.p_existed then Writeset.Update else Writeset.Insert);
        p.p_data <- data;
        p.p_cols <- Column.full
      | false, Writeset.Delete ->
        if p.p_existed then begin
          p.p_op <- Writeset.Delete;
          p.p_data <- [||];
          p.p_cols <- Column.full
        end
        else p.p_dead <- true
      | false, _ ->
        p.p_op <- (if p.p_existed then Writeset.Update else Writeset.Insert);
        p.p_data <- data;
        (* Coalesced writes touch the union of the columns; [full]
           (any whole-row write) absorbs. *)
        p.p_cols <- Column.union p.p_cols cols)
    | None ->
      let p =
        {
          p_table = table;
          p_key = key;
          p_key_str = key_str;
          p_existed = existed;
          p_op = op;
          p_data = data;
          p_cols = cols;
          p_dead = false;
        }
      in
      Stbl.replace writes rk p;
      order_rev := p :: !order_rev
  in
  let run_op op =
    let table = Op.op_table op in
    let key = Op.op_key op in
    let key_str = Value.encode_key key in
    let rk = rowkey ~table ~key_str in
    match op with
    | Op.Read _ -> (
      match lookup ~table ~key_str ~rk with
      | Some (`Base e) -> record_read ~table ~key_str ~rk e.Table.header
      | Some (`Own _) | None -> ())
    | Op.Write { data; _ } -> (
      match lookup ~table ~key_str ~rk with
      | Some (`Base _) ->
        buffer ~table ~key ~key_str ~rk ~existed:true ~op:Writeset.Update
          ~cols:Column.full ~data
      | Some (`Own p) ->
        buffer ~table ~key ~key_str ~rk ~existed:p.p_existed ~op:Writeset.Update
          ~cols:Column.full ~data
      | None ->
        buffer ~table ~key ~key_str ~rk ~existed:false ~op:Writeset.Insert
          ~cols:Column.full ~data)
    | Op.Add { col; delta; _ } -> (
      match lookup ~table ~key_str ~rk with
      | None -> raise (Exec_error (Printf.sprintf "Add: missing row in %s" table))
      | Some visible ->
        let data, existed =
          match visible with
          | `Base e ->
            record_read ~table ~key_str ~rk e.Table.header;
            (Array.copy e.Table.data, true)
          | `Own p -> (Array.copy p.p_data, p.p_existed)
        in
        if col < 0 || col >= Array.length data then
          raise (Exec_error "Add: column out of range");
        (match data.(col) with
        | Value.Int v -> data.(col) <- Value.Int (v + delta)
        | _ -> raise (Exec_error "Add: non-integer column"));
        let cols = if col_mask then Column.of_index col else Column.full in
        buffer ~table ~key ~key_str ~rk ~existed ~op:Writeset.Update ~cols ~data)
    | Op.Insert { data; _ } -> (
      match lookup ~table ~key_str ~rk with
      | Some _ ->
        raise (Exec_error (Printf.sprintf "Insert: duplicate key in %s" table))
      | None ->
        buffer ~table ~key ~key_str ~rk ~existed:false ~op:Writeset.Insert
          ~cols:Column.full ~data)
    | Op.Delete _ -> (
      match lookup ~table ~key_str ~rk with
      | None ->
        raise (Exec_error (Printf.sprintf "Delete: missing row in %s" table))
      | Some (`Base e) ->
        record_read ~table ~key_str ~rk e.Table.header;
        buffer ~table ~key ~key_str ~rk ~existed:true ~op:Writeset.Delete
          ~cols:Column.full ~data:[||]
      | Some (`Own p) ->
        buffer ~table ~key ~key_str ~rk ~existed:p.p_existed ~op:Writeset.Delete
          ~cols:Column.full ~data:[||])
  in
  match Array.iter run_op txn.Op.ops with
  | () ->
    let ws =
      List.rev !order_rev
      |> List.filter_map (fun p ->
             if p.p_dead then None
             else
               Some
                 (Writeset.make_record ~key_str:p.p_key_str ~cols:p.p_cols
                    ~table:p.p_table ~key:p.p_key ~op:p.p_op ~data:p.p_data ()))
    in
    Ok { reads = List.rev !reads_rev; writes = ws }
  | exception Exec_error m -> Error m
