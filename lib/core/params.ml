type isolation = RC | RR | SI | SSI

type variant = Optimistic | Sync_exec | Async_merge

type ft_mode = Ft_none | Ft_local_backup | Ft_remote_backup | Ft_raft

type partitioning = P_none | P_region | P_hash of int

type merge_level = Row | Column

type cost = {
  exec_op_us : int;
  sql_stmt_us : int;
  merge_record_us : int;
  merge_threads : int;
  merge_base_us : int;
  notify_us : int;
  log_fsync_us : int;
}

type t = {
  epoch_us : int;
  isolation : isolation;
  variant : variant;
  ft : ft_mode;
  cores : int;
  pipeline : bool;
  seed : int;
  cost : cost;
  membership_timeout_us : int;
  client_retry_us : int;
  repair_after_us : int;
  merge_jobs : int;
  merge_par_threshold : int;
  partitioning : partitioning;
  merge_level : merge_level;
  fastpath : bool;
  clock_skew_us : int;
  clock_sync_period_us : int;
  fastpath_margin_us : int;
}

let default_cost =
  {
    exec_op_us = 150;
    sql_stmt_us = 400;
    merge_record_us = 6;
    merge_threads = 8;
    merge_base_us = 200;
    notify_us = 1;
    log_fsync_us = 3_000;
  }

let default =
  {
    epoch_us = 10_000;
    isolation = RC;
    variant = Optimistic;
    ft = Ft_local_backup;
    cores = 32;
    pipeline = true;
    seed = 42;
    cost = default_cost;
    membership_timeout_us = 500_000;
    client_retry_us = 2_000_000;
    repair_after_us = 250_000;
    merge_jobs = 1;
    merge_par_threshold = 4_096;
    partitioning = P_none;
    merge_level = Row;
    fastpath = false;
    clock_skew_us = 5_000;
    clock_sync_period_us = 0;
    fastpath_margin_us = -1;
  }

let with_epoch_ms t ms = { t with epoch_us = ms * 1_000 }
let with_isolation t isolation = { t with isolation }
let with_variant t variant = { t with variant }
let with_ft t ft = { t with ft }

(* The fast path is a refinement of the Optimistic merge pipeline:
   speculative sealing has no meaning for GeoG-S (execution already
   waits on the previous snapshot) or GeoG-A (no epochs at all), so
   enabling it coerces the variant. *)
let with_fastpath t on =
  if on then { t with fastpath = true; variant = Optimistic }
  else { t with fastpath = false }

let with_clock_skew_us t clock_skew_us =
  { t with clock_skew_us = max 0 clock_skew_us }

let isolation_to_string = function
  | RC -> "RC"
  | RR -> "RR"
  | SI -> "SI"
  | SSI -> "SSI"

let variant_to_string = function
  | Optimistic -> "GeoGauss"
  | Sync_exec -> "GeoG-S"
  | Async_merge -> "GeoG-A"

let ft_to_string = function
  | Ft_none -> "none"
  | Ft_local_backup -> "local-backup"
  | Ft_remote_backup -> "remote-backup"
  | Ft_raft -> "raft"

let partitioning_to_string = function
  | P_none -> "none"
  | P_region -> "region"
  | P_hash k -> Printf.sprintf "hash:%d" k

let partitioning_of_string s =
  match s with
  | "none" -> Ok P_none
  | "region" -> Ok P_region
  | _ -> (
    match String.index_opt s ':' with
    | Some i
      when String.sub s 0 i = "hash"
           && i + 1 < String.length s -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some k when k >= 1 -> Ok (P_hash k)
      | _ -> Error (Printf.sprintf "bad group count in %S (want hash:<k>, k >= 1)" s))
    | _ ->
      Error
        (Printf.sprintf "unknown partitioning %S (expected none, region or hash:<k>)" s))

let merge_level_to_string = function Row -> "row" | Column -> "column"

let merge_level_of_string = function
  | "row" -> Ok Row
  | "column" -> Ok Column
  | s -> Error (Printf.sprintf "unknown merge level %S (expected row or column)" s)

(* Column-level merge only exists inside the epoch-scoped kernel:
   GeoG-A's gossip applies whole rows on arrival (no per-epoch candidate
   set to resolve cells over), and the partial-replication write-back
   re-applies row fragments against header ownership. Both fall back to
   the row lattice rather than silently mis-merging. *)
let effective_merge_level t =
  match (t.variant, t.partitioning) with
  | Async_merge, _ -> Row
  | _, (P_region | P_hash _) -> Row
  | _, P_none -> t.merge_level
