(** Minimal JSON values for the trace JSONL files.

    Covers exactly the subset the exporter emits (flat objects of ints
    and strings, one per line) plus enough generality to round-trip
    nested values in tests. Hand-rolled so the repo stays inside the
    preinstalled dependency set. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with deterministic field order —
    two identical values always produce identical bytes. Control
    characters are [\u00xx]-escaped; non-finite floats render as [null]
    (NaN) or [±1e999] (infinities, which parse back as [Float
    infinity]). *)

val write_line : out_channel -> t -> unit
(** [to_string] plus a trailing newline, buffered. *)

val parse : string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
val to_int : ?default:int -> t option -> int
val to_str : ?default:string -> t option -> string
