module Tablefmt = Gg_util.Tablefmt

type t = {
  meta : Jsonl.t;
  events : Obs.Trace.event list;
  snapshots : (int * (string * int) list) list;
}

let f = Tablefmt.fmt_f

(* --- loading --- *)

let event_of_json j =
  {
    Obs.Trace.at = Jsonl.to_int (Jsonl.member "at" j);
    node = Jsonl.to_int ~default:(-1) (Jsonl.member "node" j);
    cat = Jsonl.to_str (Jsonl.member "cat" j);
    name = Jsonl.to_str (Jsonl.member "name" j);
    epoch = Jsonl.to_int ~default:(-1) (Jsonl.member "epoch" j);
    span = Jsonl.to_int ~default:(-1) (Jsonl.member "span" j);
    parent = Jsonl.to_int ~default:(-1) (Jsonl.member "parent" j);
    dur = Jsonl.to_int ~default:(-1) (Jsonl.member "dur" j);
    detail = Jsonl.to_str (Jsonl.member "detail" j);
  }

let snapshot_of_json j =
  let at = Jsonl.to_int (Jsonl.member "at" j) in
  let counters =
    match Jsonl.member "counters" j with
    | Some (Jsonl.Obj fields) ->
      List.map (fun (k, v) -> (k, Jsonl.to_int (Some v))) fields
    | _ -> []
  in
  (at, counters)

let of_lines lines =
  let meta = ref (Jsonl.Obj []) in
  let events = ref [] in
  let snapshots = ref [] in
  let bad = ref None in
  List.iteri
    (fun i line ->
      if !bad = None && String.trim line <> "" then
        match Jsonl.parse line with
        | Error msg -> bad := Some (Printf.sprintf "line %d: %s" (i + 1) msg)
        | Ok j -> (
          match Jsonl.to_str (Jsonl.member "type" j) with
          | "meta" -> meta := j
          | "event" -> events := event_of_json j :: !events
          | "snapshot" -> snapshots := snapshot_of_json j :: !snapshots
          | other ->
            bad :=
              Some (Printf.sprintf "line %d: unknown record type %S" (i + 1) other)))
    lines;
  match !bad with
  | Some msg -> Error msg
  | None ->
    Ok
      {
        meta = !meta;
        events = List.rev !events;
        snapshots = List.rev !snapshots;
      }

let load_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    of_lines (List.rev !lines)

(* --- per-phase breakdown (Algorithm 1 / Table 2) --- *)

type phase_row = {
  pr_node : int;
  pr_txns : int;
  pr_parse_ms : float;
  pr_exec_ms : float;
  pr_wait_ms : float;
  pr_merge_ms : float;
  pr_log_ms : float;
}

let phase_breakdown t =
  (* node -> (txns, sums per phase in us) *)
  let tbl : (int, int ref * float array) Hashtbl.t = Hashtbl.create 8 in
  let cell node =
    match Hashtbl.find_opt tbl node with
    | Some c -> c
    | None ->
      let c = (ref 0, Array.make 5 0.0) in
      Hashtbl.replace tbl node c;
      c
  in
  let phase_idx = function
    | "phase.parse" -> Some 0
    | "phase.exec" -> Some 1
    | "phase.wait" -> Some 2
    | "phase.merge" -> Some 3
    | "phase.log" -> Some 4
    | _ -> None
  in
  List.iter
    (fun (e : Obs.Trace.event) ->
      if e.Obs.Trace.cat = "txn" then
        if e.Obs.Trace.name = "commit" then incr (fst (cell e.Obs.Trace.node))
        else
          match phase_idx e.Obs.Trace.name with
          | Some i ->
            let _, sums = cell e.Obs.Trace.node in
            sums.(i) <- sums.(i) +. float_of_int (max 0 e.Obs.Trace.dur)
          | None -> ())
    t.events;
  Hashtbl.fold (fun node (n, sums) acc -> (node, !n, sums) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (node, n, sums) ->
         let mean i =
           if n = 0 then 0.0 else sums.(i) /. float_of_int n /. 1000.0
         in
         {
           pr_node = node;
           pr_txns = n;
           pr_parse_ms = mean 0;
           pr_exec_ms = mean 1;
           pr_wait_ms = mean 2;
           pr_merge_ms = mean 3;
           pr_log_ms = mean 4;
         })

(* --- epoch timeline (Fig 6 / Fig 8 style) --- *)

type epoch_row = {
  er_epoch : int;
  er_seal_at : int;  (* earliest seal across nodes, -1 if unobserved *)
  er_merge_nodes : int;  (* nodes whose merge.commit was observed *)
  er_merge_max_us : int;  (* slowest merge duration *)
  er_skew_us : int;  (* spread of merge.commit instants across nodes *)
  er_commits : int;
  er_aborts : int;
  er_lat_mean_ms : float;  (* mean committed latency *)
}

type epoch_cell = {
  mutable c_seal_at : int;
  mutable c_merge_ats : (int * int) list;  (* (node, at) newest first *)
  mutable c_merge_max : int;
  mutable c_commits : int;
  mutable c_aborts : int;
  mutable c_lat_sum : float;
}

let epoch_rows t =
  let tbl : (int, epoch_cell) Hashtbl.t = Hashtbl.create 64 in
  let cell e =
    match Hashtbl.find_opt tbl e with
    | Some c -> c
    | None ->
      let c =
        {
          c_seal_at = -1;
          c_merge_ats = [];
          c_merge_max = 0;
          c_commits = 0;
          c_aborts = 0;
          c_lat_sum = 0.0;
        }
      in
      Hashtbl.replace tbl e c;
      c
  in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let ep = e.Obs.Trace.epoch in
      if ep >= 0 then
        match (e.Obs.Trace.cat, e.Obs.Trace.name) with
        | "epoch", "seal" ->
          let c = cell ep in
          if c.c_seal_at < 0 || e.Obs.Trace.at < c.c_seal_at then
            c.c_seal_at <- e.Obs.Trace.at
        | "epoch", "merge.commit" ->
          let c = cell ep in
          c.c_merge_ats <- (e.Obs.Trace.node, e.Obs.Trace.at) :: c.c_merge_ats;
          if e.Obs.Trace.dur > c.c_merge_max then c.c_merge_max <- e.Obs.Trace.dur
        | "txn", "commit" ->
          let c = cell ep in
          c.c_commits <- c.c_commits + 1;
          c.c_lat_sum <- c.c_lat_sum +. float_of_int (max 0 e.Obs.Trace.dur)
        | "txn", "abort" ->
          let c = cell ep in
          c.c_aborts <- c.c_aborts + 1
        | _ -> ())
    t.events;
  Hashtbl.fold (fun ep c acc -> (ep, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (ep, c) ->
         let skew =
           match c.c_merge_ats with
           | [] | [ _ ] -> 0
           | ats ->
             let ts = List.map snd ats in
             List.fold_left max min_int ts - List.fold_left min max_int ts
         in
         {
           er_epoch = ep;
           er_seal_at = c.c_seal_at;
           er_merge_nodes = List.length c.c_merge_ats;
           er_merge_max_us = c.c_merge_max;
           er_skew_us = skew;
           er_commits = c.c_commits;
           er_aborts = c.c_aborts;
           er_lat_mean_ms =
             (if c.c_commits = 0 then 0.0
              else c.c_lat_sum /. float_of_int c.c_commits /. 1000.0);
         })

let slowest_epochs t ~top =
  epoch_rows t
  |> List.sort (fun a b -> compare b.er_merge_max_us a.er_merge_max_us)
  |> List.filteri (fun i _ -> i < top)

let skew_stats t =
  let skews =
    epoch_rows t
    |> List.filter (fun r -> r.er_merge_nodes >= 2)
    |> List.map (fun r -> r.er_skew_us)
  in
  match skews with
  | [] -> (0.0, 0)
  | _ ->
    let sum = List.fold_left ( + ) 0 skews in
    ( float_of_int sum /. float_of_int (List.length skews),
      List.fold_left max 0 skews )

let epoch_events t ep =
  List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.epoch = ep) t.events

(* --- causal DAG: span resolution --- *)

let meta_regions t =
  match Jsonl.member "regions" t.meta with
  | Some (Jsonl.List l) ->
    Array.of_list
      (List.map (function Jsonl.Str s -> s | _ -> "?") l)
  | _ -> [||]

let region_of_node regions node =
  if node >= 0 && node < Array.length regions then regions.(node) else "?"

(* Receive-side events name their causal parent by span id; a parent is
   unresolved when no event in the file carries that span (the sender's
   event predates the measurement window, or the ring buffer wrapped).
   Returns (events_with_parent, unresolved). *)
let unresolved_parents t =
  let spans = Hashtbl.create 4096 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      if e.Obs.Trace.span > 0 then Hashtbl.replace spans e.Obs.Trace.span ())
    t.events;
  List.fold_left
    (fun (total, unresolved) (e : Obs.Trace.event) ->
      if e.Obs.Trace.parent > 0 then
        ( total + 1,
          if Hashtbl.mem spans e.Obs.Trace.parent then unresolved
          else unresolved + 1 )
      else (total, unresolved))
    (0, 0) t.events

(* --- critical-path latency attribution --- *)

(* Per committed transaction, the end-to-end latency T4-T0 is cut at the
   causally ordered instants of Algorithm 1:

     T0 submit (= commit.at - commit.dur)
     T1 commit point        -> execute    = T1 - T0
     s  own epoch sealed    -> seal_wait  = s - T1
     r  last peer EOF here  -> wan        = r - s      (binding WAN hop)
     T2 merge started       -> merge_wait = T2 - r
     T3 merge committed     -> validate   = T3 - T2
     T4 client notified     -> commit     = T4 - T3

   s and r are clamped into [T1, T2] (a peer's EOF can land before this
   transaction's commit point; the seal can only happen after it), so
   the chain is monotone and the phases telescope to exactly T4-T0
   for every sampled transaction — the invariant the tests pin. The
   binding WAN hop is the batch.recv with the largest (at, sender); its
   sender decodes from the parent span's node bits.

   Under the clock-assisted fast path (eocc, DESIGN.md §14) a confirmed
   speculative epoch replaces the wan/merge_wait cut with a spec/confirm
   cut at the instants its merge span records:

     S  speculative seal     -> spec_wait    = S - s   (watermark wait)
     C  confirm point        -> confirm_wait = C - S  (straggler overlap)
     T3 merge committed      -> validate     = T3 - C (residual charge)

   wan and merge_wait are 0 for those transactions (the WAN tail is
   exactly what the speculation overlapped — it shows up as
   confirm_wait), and the eight phases still telescope to T4-T0.
   Mispredicted epochs re-merge under a fresh span with no spec/confirm
   events, so they fall through to the classic six-phase cut. *)

type cp_txn = {
  cp_node : int;
  cp_span : int;
  cp_epoch : int;
  cp_submit_at : int;
  cp_latency_us : int;
  cp_execute : int;
  cp_seal_wait : int;
  cp_wan : int;
  cp_merge_wait : int;
  cp_spec_wait : int;  (* fast path: seal -> speculative merge start *)
  cp_confirm_wait : int;  (* fast path: speculative start -> confirm *)
  cp_validate : int;
  cp_commit : int;
  cp_wan_from : int;  (* binding sender node, -1 when no WAN hop bound *)
  cp_wan_pair : string;  (* "SenderRegion>MyRegion", "" when none *)
}

type cp_report = {
  cpr_txns : cp_txn list;  (* sorted by (submit_at, node, span) *)
  cpr_committed : int;  (* commit events seen in the trace *)
  cpr_parent_events : int;
  cpr_unresolved : int;
}

let critical_path t =
  let regions = meta_regions t in
  let seal_at = Hashtbl.create 256 in (* (node, epoch) -> at *)
  let recvs = Hashtbl.create 256 in (* (node, epoch) -> (at, parent) list *)
  let m_start = Hashtbl.create 256 in (* merge span -> at *)
  let m_commit = Hashtbl.create 256 in
  let spec_at = Hashtbl.create 64 in (* merge span -> speculative seal at *)
  let confirm_at = Hashtbl.create 64 in (* merge span -> confirm at *)
  let cpoint = Hashtbl.create 4096 in (* txn span -> at *)
  let committed = ref 0 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let key = (e.Obs.Trace.node, e.Obs.Trace.epoch) in
      match (e.Obs.Trace.cat, e.Obs.Trace.name) with
      | "epoch", "seal" -> Hashtbl.replace seal_at key e.Obs.Trace.at
      | "epoch", "batch.recv" ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt recvs key) in
        Hashtbl.replace recvs key
          ((e.Obs.Trace.at, e.Obs.Trace.parent) :: prev)
      | "epoch", "merge.start" when e.Obs.Trace.span > 0 ->
        Hashtbl.replace m_start e.Obs.Trace.span e.Obs.Trace.at
      | "epoch", "merge.commit" when e.Obs.Trace.span > 0 ->
        Hashtbl.replace m_commit e.Obs.Trace.span e.Obs.Trace.at
      | "epoch", "merge.spec" when e.Obs.Trace.span > 0 ->
        Hashtbl.replace spec_at e.Obs.Trace.span e.Obs.Trace.at
      | "epoch", "merge.confirm" when e.Obs.Trace.span > 0 ->
        Hashtbl.replace confirm_at e.Obs.Trace.span e.Obs.Trace.at
      | "txn", "commit.point" when e.Obs.Trace.span > 0 ->
        Hashtbl.replace cpoint e.Obs.Trace.span e.Obs.Trace.at
      | "txn", "commit" -> incr committed
      | _ -> ())
    t.events;
  let clamp lo hi v = max lo (min hi v) in
  let sample (e : Obs.Trace.event) =
    (* Committed write transactions with full lineage only: epoch-less
       (read-only) commits have no dissemination to attribute, and
       GeoG-A commits carry no merge span. *)
    if
      e.Obs.Trace.cat <> "txn"
      || e.Obs.Trace.name <> "commit"
      || e.Obs.Trace.epoch < 0
      || e.Obs.Trace.span <= 0
      || e.Obs.Trace.parent <= 0
      || e.Obs.Trace.dur < 0
    then None
    else
      let key = (e.Obs.Trace.node, e.Obs.Trace.epoch) in
      match
        ( Hashtbl.find_opt cpoint e.Obs.Trace.span,
          Hashtbl.find_opt seal_at key,
          Hashtbl.find_opt m_start e.Obs.Trace.parent,
          Hashtbl.find_opt m_commit e.Obs.Trace.parent )
      with
      | Some t1, Some seal, Some t2, Some t3 -> (
        let t4 = e.Obs.Trace.at in
        let t0 = t4 - e.Obs.Trace.dur in
        match
          ( Hashtbl.find_opt spec_at e.Obs.Trace.parent,
            Hashtbl.find_opt confirm_at e.Obs.Trace.parent )
        with
        | Some sp, Some c ->
          (* Confirmed speculative epoch: cut at seal -> spec -> confirm
             instead of wan/merge_wait (both 0 here — the WAN tail is
             the confirm_wait the speculation overlapped). Clamps keep
             the chain monotone so the eight phases telescope. *)
          let s = clamp t1 t3 seal in
          let sp = clamp s t3 sp in
          let c = clamp sp t3 c in
          Some
            {
              cp_node = e.Obs.Trace.node;
              cp_span = e.Obs.Trace.span;
              cp_epoch = e.Obs.Trace.epoch;
              cp_submit_at = t0;
              cp_latency_us = e.Obs.Trace.dur;
              cp_execute = t1 - t0;
              cp_seal_wait = s - t1;
              cp_wan = 0;
              cp_merge_wait = 0;
              cp_spec_wait = sp - s;
              cp_confirm_wait = c - sp;
              cp_validate = t3 - c;
              cp_commit = t4 - t3;
              cp_wan_from = -1;
              cp_wan_pair = "";
            }
        | _ ->
        let binding =
          List.fold_left
            (fun best (at, parent) ->
              let sender = if parent > 0 then Obs.span_node parent else -1 in
              match best with
              | Some (ba, bs) when (ba, bs) >= (at, sender) -> best
              | _ -> Some (at, sender))
            None
            (Option.value ~default:[] (Hashtbl.find_opt recvs key))
        in
        let last_recv, sender =
          match binding with Some (at, s) -> (at, s) | None -> (min_int, -1)
        in
        let ready = clamp t1 t2 (max seal last_recv) in
        let s = clamp t1 ready seal in
        let wan = ready - s in
        Some
          {
            cp_node = e.Obs.Trace.node;
            cp_span = e.Obs.Trace.span;
            cp_epoch = e.Obs.Trace.epoch;
            cp_submit_at = t0;
            cp_latency_us = e.Obs.Trace.dur;
            cp_execute = t1 - t0;
            cp_seal_wait = s - t1;
            cp_wan = wan;
            cp_merge_wait = t2 - ready;
            cp_spec_wait = 0;
            cp_confirm_wait = 0;
            cp_validate = t3 - t2;
            cp_commit = t4 - t3;
            cp_wan_from = (if wan > 0 then sender else -1);
            cp_wan_pair =
              (if wan > 0 && sender >= 0 then
                 Printf.sprintf "%s>%s"
                   (region_of_node regions sender)
                   (region_of_node regions e.Obs.Trace.node)
               else "");
          })
      | _ -> None
  in
  let txns =
    List.filter_map sample t.events
    |> List.sort (fun a b ->
           compare
             (a.cp_submit_at, a.cp_node, a.cp_span)
             (b.cp_submit_at, b.cp_node, b.cp_span))
  in
  let parent_events, unresolved = unresolved_parents t in
  {
    cpr_txns = txns;
    cpr_committed = !committed;
    cpr_parent_events = parent_events;
    cpr_unresolved = unresolved;
  }

(* --- per-region-pair WAN accounting (fig 11 currency) --- *)

type wan_report = {
  wr_pairs : (string * int) list;  (* "A>B" -> bytes, registry order *)
  wr_total_bytes : int;
  wr_commits : int;
}

let wan_pair_prefix = "net.wan.bytes."

let wan_report t =
  (* The driver appends a closing counter snapshot at the window end;
     the last snapshot therefore carries the final per-pair totals. *)
  let counters =
    match List.rev t.snapshots with [] -> [] | (_, cs) :: _ -> cs
  in
  let plen = String.length wan_pair_prefix in
  let pairs =
    List.filter_map
      (fun (name, v) ->
        if
          String.length name > plen
          && String.sub name 0 plen = wan_pair_prefix
          && String.contains name '>'
        then Some (String.sub name plen (String.length name - plen), v)
        else None)
      counters
  in
  let total =
    match List.assoc_opt "net.wan.bytes" counters with
    | Some v -> v
    | None -> List.fold_left (fun a (_, v) -> a + v) 0 pairs
  in
  let commits =
    List.fold_left
      (fun a (e : Obs.Trace.event) ->
        if e.Obs.Trace.cat = "txn" && e.Obs.Trace.name = "commit" then a + 1
        else a)
      0 t.events
  in
  { wr_pairs = pairs; wr_total_bytes = total; wr_commits = commits }

(* --- rendering --- *)

let meta_line t =
  let m k = Jsonl.member k t.meta in
  Printf.sprintf
    "trace: label=%s nodes=%d epoch_us=%d seed=%d events=%d (dropped %d) \
     snapshots=%d"
    (Jsonl.to_str ~default:"?" (m "label"))
    (Jsonl.to_int (m "nodes"))
    (Jsonl.to_int (m "epoch_us"))
    (Jsonl.to_int (m "seed"))
    (List.length t.events)
    (Jsonl.to_int (m "dropped"))
    (List.length t.snapshots)

let render_epoch_table ?(limit = 40) t =
  let rows = epoch_rows t in
  let shown = List.filteri (fun i _ -> i < limit) rows in
  let table =
    Tablefmt.create ~title:"Epoch timeline"
      ~headers:
        [
          "epoch"; "sealed @ (s)"; "merges"; "merge max (ms)"; "skew (ms)";
          "commits"; "aborts"; "mean lat (ms)";
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row table
        [
          string_of_int r.er_epoch;
          (if r.er_seal_at < 0 then "-" else f ~dec:3 (float_of_int r.er_seal_at /. 1e6));
          string_of_int r.er_merge_nodes;
          f (float_of_int r.er_merge_max_us /. 1000.0);
          f (float_of_int r.er_skew_us /. 1000.0);
          string_of_int r.er_commits;
          string_of_int r.er_aborts;
          f r.er_lat_mean_ms;
        ])
    shown;
  let rendered = Tablefmt.render table in
  if List.length rows > limit then
    Printf.sprintf "%s\n  ... %d more epochs (use --epochs to widen)\n" rendered
      (List.length rows - limit)
  else rendered ^ "\n"

let render_phase_table t =
  let table =
    Tablefmt.create ~title:"Per-phase latency breakdown (committed txns, ms)"
      ~headers:
        [ "node"; "txns"; "parse"; "exec"; "wait"; "merge"; "log"; "total" ]
  in
  List.iter
    (fun r ->
      let total =
        r.pr_parse_ms +. r.pr_exec_ms +. r.pr_wait_ms +. r.pr_merge_ms
        +. r.pr_log_ms
      in
      Tablefmt.add_row table
        [
          string_of_int r.pr_node;
          string_of_int r.pr_txns;
          f r.pr_parse_ms;
          f r.pr_exec_ms;
          f r.pr_wait_ms;
          f r.pr_merge_ms;
          f r.pr_log_ms;
          f total;
        ])
    (phase_breakdown t);
  Tablefmt.render table ^ "\n"

let render_slowest ?(top = 5) t =
  let table =
    Tablefmt.create
      ~title:(Printf.sprintf "Slowest %d epochs by merge duration" top)
      ~headers:[ "epoch"; "merge max (ms)"; "commits"; "aborts"; "events" ]
  in
  let rows = slowest_epochs t ~top in
  List.iter
    (fun r ->
      Tablefmt.add_row table
        [
          string_of_int r.er_epoch;
          f (float_of_int r.er_merge_max_us /. 1000.0);
          string_of_int r.er_commits;
          string_of_int r.er_aborts;
          string_of_int (List.length (epoch_events t r.er_epoch));
        ])
    rows;
  let drill =
    match rows with
    | [] -> ""
    | worst :: _ ->
      let evs =
        epoch_events t worst.er_epoch
        |> List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.cat = "epoch")
        |> List.sort (fun (a : Obs.Trace.event) b ->
               compare (a.Obs.Trace.at, a.Obs.Trace.node) (b.Obs.Trace.at, b.Obs.Trace.node))
      in
      let dt =
        Tablefmt.create
          ~title:(Printf.sprintf "Drill-down: epoch %d" worst.er_epoch)
          ~headers:[ "t (ms)"; "node"; "event"; "dur (ms)"; "detail" ]
      in
      List.iter
        (fun (e : Obs.Trace.event) ->
          Tablefmt.add_row dt
            [
              f (float_of_int e.Obs.Trace.at /. 1000.0);
              string_of_int e.Obs.Trace.node;
              e.Obs.Trace.name;
              (if e.Obs.Trace.dur < 0 then "-"
               else f (float_of_int e.Obs.Trace.dur /. 1000.0));
              e.Obs.Trace.detail;
            ])
        evs;
      Tablefmt.render dt ^ "\n"
  in
  Tablefmt.render table ^ "\n" ^ drill

let render_report ?(epoch_limit = 40) ?(top = 5) t =
  let mean_skew, max_skew = skew_stats t in
  String.concat "\n"
    [
      meta_line t;
      "";
      render_epoch_table ~limit:epoch_limit t;
      render_phase_table t;
      render_slowest ~top t;
      Printf.sprintf
        "cross-node epoch skew (merge.commit spread): mean %.2f ms, max %.2f ms"
        (mean_skew /. 1000.0)
        (float_of_int max_skew /. 1000.0);
    ]

let cp_phase_names =
  [
    "execute"; "seal_wait"; "wan"; "merge_wait"; "spec_wait"; "confirm_wait";
    "validate"; "commit";
  ]

let cp_phase_values c =
  [
    c.cp_execute; c.cp_seal_wait; c.cp_wan; c.cp_merge_wait; c.cp_spec_wait;
    c.cp_confirm_wait; c.cp_validate; c.cp_commit;
  ]

let render_critical_path t =
  let r = critical_path t in
  let by_node = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let n, sums =
        match Hashtbl.find_opt by_node c.cp_node with
        | Some cell -> cell
        | None ->
          let cell = (ref 0, Array.make 9 0.0) in
          Hashtbl.replace by_node c.cp_node cell;
          cell
      in
      incr n;
      List.iteri
        (fun i v -> sums.(i) <- sums.(i) +. float_of_int v)
        (cp_phase_values c);
      sums.(8) <- sums.(8) +. float_of_int c.cp_latency_us)
    r.cpr_txns;
  let table =
    Tablefmt.create
      ~title:"Critical-path attribution (committed write txns, mean ms)"
      ~headers:
        [
          "node"; "txns"; "execute"; "seal wait"; "wan"; "merge wait";
          "spec wait"; "confirm wait"; "validate"; "commit"; "total";
        ]
  in
  Hashtbl.fold (fun node cell acc -> (node, cell) :: acc) by_node []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (node, (n, sums)) ->
         let mean i = sums.(i) /. float_of_int !n /. 1000.0 in
         Tablefmt.add_row table
           (string_of_int node :: string_of_int !n
           :: List.map (fun i -> f (mean i)) [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]));
  let pair_tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if c.cp_wan_pair <> "" then begin
        let n, sum =
          match Hashtbl.find_opt pair_tbl c.cp_wan_pair with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0.0) in
            Hashtbl.replace pair_tbl c.cp_wan_pair cell;
            cell
        in
        incr n;
        sum := !sum +. float_of_int c.cp_wan
      end)
    r.cpr_txns;
  let pairs =
    Tablefmt.create ~title:"Binding WAN hop by region pair"
      ~headers:[ "pair"; "txns bound"; "mean wan (ms)" ]
  in
  Hashtbl.fold (fun p cell acc -> (p, cell) :: acc) pair_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (p, (n, sum)) ->
         Tablefmt.add_row pairs
           [
             p;
             string_of_int !n;
             f (!sum /. float_of_int !n /. 1000.0);
           ]);
  String.concat "\n"
    [
      meta_line t;
      "";
      Tablefmt.render table;
      "";
      Tablefmt.render pairs;
      "";
      Printf.sprintf
        "sampled %d of %d committed txns (full causal lineage required); \
         unresolved parents: %d of %d receive-side events"
        (List.length r.cpr_txns) r.cpr_committed r.cpr_unresolved
        r.cpr_parent_events;
    ]

let critical_path_json t =
  let r = critical_path t in
  let n = List.length r.cpr_txns in
  let sums = Array.make 8 0 in
  List.iter
    (fun c -> List.iteri (fun i v -> sums.(i) <- sums.(i) + v) (cp_phase_values c))
    r.cpr_txns;
  let mean i =
    if n = 0 then 0.0 else float_of_int sums.(i) /. float_of_int n
  in
  Jsonl.Obj
    [
      ("type", Jsonl.Str "critical_path_report");
      ("label", Jsonl.Str (Jsonl.to_str ~default:"?" (Jsonl.member "label" t.meta)));
      ("seed", Jsonl.Int (Jsonl.to_int (Jsonl.member "seed" t.meta)));
      ("nodes", Jsonl.Int (Jsonl.to_int (Jsonl.member "nodes" t.meta)));
      ("txns_committed", Jsonl.Int r.cpr_committed);
      ("txns_sampled", Jsonl.Int n);
      ("parent_events", Jsonl.Int r.cpr_parent_events);
      ("unresolved_parents", Jsonl.Int r.cpr_unresolved);
      ( "phase_mean_us",
        Jsonl.Obj (List.mapi (fun i p -> (p, Jsonl.Float (mean i))) cp_phase_names)
      );
      ( "txns",
        Jsonl.List
          (List.map
             (fun c ->
               Jsonl.Obj
                 [
                   ("node", Jsonl.Int c.cp_node);
                   ("span", Jsonl.Int c.cp_span);
                   ("epoch", Jsonl.Int c.cp_epoch);
                   ("submit_at", Jsonl.Int c.cp_submit_at);
                   ("latency_us", Jsonl.Int c.cp_latency_us);
                   ("execute_us", Jsonl.Int c.cp_execute);
                   ("seal_wait_us", Jsonl.Int c.cp_seal_wait);
                   ("wan_us", Jsonl.Int c.cp_wan);
                   ("merge_wait_us", Jsonl.Int c.cp_merge_wait);
                   ("spec_wait_us", Jsonl.Int c.cp_spec_wait);
                   ("confirm_wait_us", Jsonl.Int c.cp_confirm_wait);
                   ("validate_us", Jsonl.Int c.cp_validate);
                   ("commit_us", Jsonl.Int c.cp_commit);
                   ("wan_from", Jsonl.Int c.cp_wan_from);
                   ("wan_pair", Jsonl.Str c.cp_wan_pair);
                 ])
             r.cpr_txns) );
    ]

let render_wan t =
  let r = wan_report t in
  let table =
    Tablefmt.create ~title:"WAN bytes by region pair (measurement window)"
      ~headers:[ "pair"; "bytes"; "bytes/txn" ]
  in
  List.iter
    (fun (p, b) ->
      Tablefmt.add_row table
        [
          p;
          string_of_int b;
          (if r.wr_commits = 0 then "-"
           else f (float_of_int b /. float_of_int r.wr_commits));
        ])
    r.wr_pairs;
  String.concat "\n"
    [
      meta_line t;
      "";
      Tablefmt.render table;
      "";
      Printf.sprintf "total WAN bytes: %d over %d committed txns (%s bytes/txn)"
        r.wr_total_bytes r.wr_commits
        (if r.wr_commits = 0 then "-"
         else f (float_of_int r.wr_total_bytes /. float_of_int r.wr_commits));
    ]

let wan_json t =
  let r = wan_report t in
  Jsonl.Obj
    [
      ("type", Jsonl.Str "wan_report");
      ("label", Jsonl.Str (Jsonl.to_str ~default:"?" (Jsonl.member "label" t.meta)));
      ("seed", Jsonl.Int (Jsonl.to_int (Jsonl.member "seed" t.meta)));
      ("txns_committed", Jsonl.Int r.wr_commits);
      ("total_wan_bytes", Jsonl.Int r.wr_total_bytes);
      ( "pairs",
        Jsonl.Obj
          (List.map
             (fun (p, b) ->
               ( p,
                 Jsonl.Obj
                   [
                     ("bytes", Jsonl.Int b);
                     ( "bytes_per_txn",
                       Jsonl.Float
                         (if r.wr_commits = 0 then 0.0
                          else float_of_int b /. float_of_int r.wr_commits) );
                   ] ))
             r.wr_pairs) );
    ]
