module Tablefmt = Gg_util.Tablefmt

type t = {
  meta : Jsonl.t;
  events : Obs.Trace.event list;
  snapshots : (int * (string * int) list) list;
}

let f = Tablefmt.fmt_f

(* --- loading --- *)

let event_of_json j =
  {
    Obs.Trace.at = Jsonl.to_int (Jsonl.member "at" j);
    node = Jsonl.to_int ~default:(-1) (Jsonl.member "node" j);
    cat = Jsonl.to_str (Jsonl.member "cat" j);
    name = Jsonl.to_str (Jsonl.member "name" j);
    epoch = Jsonl.to_int ~default:(-1) (Jsonl.member "epoch" j);
    span = Jsonl.to_int ~default:(-1) (Jsonl.member "span" j);
    dur = Jsonl.to_int ~default:(-1) (Jsonl.member "dur" j);
    detail = Jsonl.to_str (Jsonl.member "detail" j);
  }

let snapshot_of_json j =
  let at = Jsonl.to_int (Jsonl.member "at" j) in
  let counters =
    match Jsonl.member "counters" j with
    | Some (Jsonl.Obj fields) ->
      List.map (fun (k, v) -> (k, Jsonl.to_int (Some v))) fields
    | _ -> []
  in
  (at, counters)

let of_lines lines =
  let meta = ref (Jsonl.Obj []) in
  let events = ref [] in
  let snapshots = ref [] in
  let bad = ref None in
  List.iteri
    (fun i line ->
      if !bad = None && String.trim line <> "" then
        match Jsonl.parse line with
        | Error msg -> bad := Some (Printf.sprintf "line %d: %s" (i + 1) msg)
        | Ok j -> (
          match Jsonl.to_str (Jsonl.member "type" j) with
          | "meta" -> meta := j
          | "event" -> events := event_of_json j :: !events
          | "snapshot" -> snapshots := snapshot_of_json j :: !snapshots
          | other ->
            bad :=
              Some (Printf.sprintf "line %d: unknown record type %S" (i + 1) other)))
    lines;
  match !bad with
  | Some msg -> Error msg
  | None ->
    Ok
      {
        meta = !meta;
        events = List.rev !events;
        snapshots = List.rev !snapshots;
      }

let load_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    of_lines (List.rev !lines)

(* --- per-phase breakdown (Algorithm 1 / Table 2) --- *)

type phase_row = {
  pr_node : int;
  pr_txns : int;
  pr_parse_ms : float;
  pr_exec_ms : float;
  pr_wait_ms : float;
  pr_merge_ms : float;
  pr_log_ms : float;
}

let phase_breakdown t =
  (* node -> (txns, sums per phase in us) *)
  let tbl : (int, int ref * float array) Hashtbl.t = Hashtbl.create 8 in
  let cell node =
    match Hashtbl.find_opt tbl node with
    | Some c -> c
    | None ->
      let c = (ref 0, Array.make 5 0.0) in
      Hashtbl.replace tbl node c;
      c
  in
  let phase_idx = function
    | "phase.parse" -> Some 0
    | "phase.exec" -> Some 1
    | "phase.wait" -> Some 2
    | "phase.merge" -> Some 3
    | "phase.log" -> Some 4
    | _ -> None
  in
  List.iter
    (fun (e : Obs.Trace.event) ->
      if e.Obs.Trace.cat = "txn" then
        if e.Obs.Trace.name = "commit" then incr (fst (cell e.Obs.Trace.node))
        else
          match phase_idx e.Obs.Trace.name with
          | Some i ->
            let _, sums = cell e.Obs.Trace.node in
            sums.(i) <- sums.(i) +. float_of_int (max 0 e.Obs.Trace.dur)
          | None -> ())
    t.events;
  Hashtbl.fold (fun node (n, sums) acc -> (node, !n, sums) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (node, n, sums) ->
         let mean i =
           if n = 0 then 0.0 else sums.(i) /. float_of_int n /. 1000.0
         in
         {
           pr_node = node;
           pr_txns = n;
           pr_parse_ms = mean 0;
           pr_exec_ms = mean 1;
           pr_wait_ms = mean 2;
           pr_merge_ms = mean 3;
           pr_log_ms = mean 4;
         })

(* --- epoch timeline (Fig 6 / Fig 8 style) --- *)

type epoch_row = {
  er_epoch : int;
  er_seal_at : int;  (* earliest seal across nodes, -1 if unobserved *)
  er_merge_nodes : int;  (* nodes whose merge.commit was observed *)
  er_merge_max_us : int;  (* slowest merge duration *)
  er_skew_us : int;  (* spread of merge.commit instants across nodes *)
  er_commits : int;
  er_aborts : int;
  er_lat_mean_ms : float;  (* mean committed latency *)
}

type epoch_cell = {
  mutable c_seal_at : int;
  mutable c_merge_ats : (int * int) list;  (* (node, at) newest first *)
  mutable c_merge_max : int;
  mutable c_commits : int;
  mutable c_aborts : int;
  mutable c_lat_sum : float;
}

let epoch_rows t =
  let tbl : (int, epoch_cell) Hashtbl.t = Hashtbl.create 64 in
  let cell e =
    match Hashtbl.find_opt tbl e with
    | Some c -> c
    | None ->
      let c =
        {
          c_seal_at = -1;
          c_merge_ats = [];
          c_merge_max = 0;
          c_commits = 0;
          c_aborts = 0;
          c_lat_sum = 0.0;
        }
      in
      Hashtbl.replace tbl e c;
      c
  in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let ep = e.Obs.Trace.epoch in
      if ep >= 0 then
        match (e.Obs.Trace.cat, e.Obs.Trace.name) with
        | "epoch", "seal" ->
          let c = cell ep in
          if c.c_seal_at < 0 || e.Obs.Trace.at < c.c_seal_at then
            c.c_seal_at <- e.Obs.Trace.at
        | "epoch", "merge.commit" ->
          let c = cell ep in
          c.c_merge_ats <- (e.Obs.Trace.node, e.Obs.Trace.at) :: c.c_merge_ats;
          if e.Obs.Trace.dur > c.c_merge_max then c.c_merge_max <- e.Obs.Trace.dur
        | "txn", "commit" ->
          let c = cell ep in
          c.c_commits <- c.c_commits + 1;
          c.c_lat_sum <- c.c_lat_sum +. float_of_int (max 0 e.Obs.Trace.dur)
        | "txn", "abort" ->
          let c = cell ep in
          c.c_aborts <- c.c_aborts + 1
        | _ -> ())
    t.events;
  Hashtbl.fold (fun ep c acc -> (ep, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (ep, c) ->
         let skew =
           match c.c_merge_ats with
           | [] | [ _ ] -> 0
           | ats ->
             let ts = List.map snd ats in
             List.fold_left max min_int ts - List.fold_left min max_int ts
         in
         {
           er_epoch = ep;
           er_seal_at = c.c_seal_at;
           er_merge_nodes = List.length c.c_merge_ats;
           er_merge_max_us = c.c_merge_max;
           er_skew_us = skew;
           er_commits = c.c_commits;
           er_aborts = c.c_aborts;
           er_lat_mean_ms =
             (if c.c_commits = 0 then 0.0
              else c.c_lat_sum /. float_of_int c.c_commits /. 1000.0);
         })

let slowest_epochs t ~top =
  epoch_rows t
  |> List.sort (fun a b -> compare b.er_merge_max_us a.er_merge_max_us)
  |> List.filteri (fun i _ -> i < top)

let skew_stats t =
  let skews =
    epoch_rows t
    |> List.filter (fun r -> r.er_merge_nodes >= 2)
    |> List.map (fun r -> r.er_skew_us)
  in
  match skews with
  | [] -> (0.0, 0)
  | _ ->
    let sum = List.fold_left ( + ) 0 skews in
    ( float_of_int sum /. float_of_int (List.length skews),
      List.fold_left max 0 skews )

let epoch_events t ep =
  List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.epoch = ep) t.events

(* --- rendering --- *)

let meta_line t =
  let m k = Jsonl.member k t.meta in
  Printf.sprintf
    "trace: label=%s nodes=%d epoch_us=%d seed=%d events=%d (dropped %d) \
     snapshots=%d"
    (Jsonl.to_str ~default:"?" (m "label"))
    (Jsonl.to_int (m "nodes"))
    (Jsonl.to_int (m "epoch_us"))
    (Jsonl.to_int (m "seed"))
    (List.length t.events)
    (Jsonl.to_int (m "dropped"))
    (List.length t.snapshots)

let render_epoch_table ?(limit = 40) t =
  let rows = epoch_rows t in
  let shown = List.filteri (fun i _ -> i < limit) rows in
  let table =
    Tablefmt.create ~title:"Epoch timeline"
      ~headers:
        [
          "epoch"; "sealed @ (s)"; "merges"; "merge max (ms)"; "skew (ms)";
          "commits"; "aborts"; "mean lat (ms)";
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row table
        [
          string_of_int r.er_epoch;
          (if r.er_seal_at < 0 then "-" else f ~dec:3 (float_of_int r.er_seal_at /. 1e6));
          string_of_int r.er_merge_nodes;
          f (float_of_int r.er_merge_max_us /. 1000.0);
          f (float_of_int r.er_skew_us /. 1000.0);
          string_of_int r.er_commits;
          string_of_int r.er_aborts;
          f r.er_lat_mean_ms;
        ])
    shown;
  let rendered = Tablefmt.render table in
  if List.length rows > limit then
    Printf.sprintf "%s\n  ... %d more epochs (use --epochs to widen)\n" rendered
      (List.length rows - limit)
  else rendered ^ "\n"

let render_phase_table t =
  let table =
    Tablefmt.create ~title:"Per-phase latency breakdown (committed txns, ms)"
      ~headers:
        [ "node"; "txns"; "parse"; "exec"; "wait"; "merge"; "log"; "total" ]
  in
  List.iter
    (fun r ->
      let total =
        r.pr_parse_ms +. r.pr_exec_ms +. r.pr_wait_ms +. r.pr_merge_ms
        +. r.pr_log_ms
      in
      Tablefmt.add_row table
        [
          string_of_int r.pr_node;
          string_of_int r.pr_txns;
          f r.pr_parse_ms;
          f r.pr_exec_ms;
          f r.pr_wait_ms;
          f r.pr_merge_ms;
          f r.pr_log_ms;
          f total;
        ])
    (phase_breakdown t);
  Tablefmt.render table ^ "\n"

let render_slowest ?(top = 5) t =
  let table =
    Tablefmt.create
      ~title:(Printf.sprintf "Slowest %d epochs by merge duration" top)
      ~headers:[ "epoch"; "merge max (ms)"; "commits"; "aborts"; "events" ]
  in
  let rows = slowest_epochs t ~top in
  List.iter
    (fun r ->
      Tablefmt.add_row table
        [
          string_of_int r.er_epoch;
          f (float_of_int r.er_merge_max_us /. 1000.0);
          string_of_int r.er_commits;
          string_of_int r.er_aborts;
          string_of_int (List.length (epoch_events t r.er_epoch));
        ])
    rows;
  let drill =
    match rows with
    | [] -> ""
    | worst :: _ ->
      let evs =
        epoch_events t worst.er_epoch
        |> List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.cat = "epoch")
        |> List.sort (fun (a : Obs.Trace.event) b ->
               compare (a.Obs.Trace.at, a.Obs.Trace.node) (b.Obs.Trace.at, b.Obs.Trace.node))
      in
      let dt =
        Tablefmt.create
          ~title:(Printf.sprintf "Drill-down: epoch %d" worst.er_epoch)
          ~headers:[ "t (ms)"; "node"; "event"; "dur (ms)"; "detail" ]
      in
      List.iter
        (fun (e : Obs.Trace.event) ->
          Tablefmt.add_row dt
            [
              f (float_of_int e.Obs.Trace.at /. 1000.0);
              string_of_int e.Obs.Trace.node;
              e.Obs.Trace.name;
              (if e.Obs.Trace.dur < 0 then "-"
               else f (float_of_int e.Obs.Trace.dur /. 1000.0));
              e.Obs.Trace.detail;
            ])
        evs;
      Tablefmt.render dt ^ "\n"
  in
  Tablefmt.render table ^ "\n" ^ drill

let render_report ?(epoch_limit = 40) ?(top = 5) t =
  let mean_skew, max_skew = skew_stats t in
  String.concat "\n"
    [
      meta_line t;
      "";
      render_epoch_table ~limit:epoch_limit t;
      render_phase_table t;
      render_slowest ~top t;
      Printf.sprintf
        "cross-node epoch skew (merge.commit spread): mean %.2f ms, max %.2f ms"
        (mean_skew /. 1000.0)
        (float_of_int max_skew /. 1000.0);
    ]
