type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no literals for non-finite floats; emit them
       deterministically instead of producing invalid output: NaN
       degrades to null, infinities to the overflow literal 1e999
       (which [float_of_string] reads back as infinity, so finite-free
       round-trips survive). *)
    if Float.is_nan f then Buffer.add_string buf "null"
    else if f = Float.infinity then Buffer.add_string buf "1e999"
    else if f = Float.neg_infinity then Buffer.add_string buf "-1e999"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let write_line oc v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf

(* --- parsing (recursive descent over the JSON subset we emit) --- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "bad escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* we only emit \u00xx control codes; anything wider
                  degrades to '?' *)
               Buffer.add_char buf
                 (if code < 0x100 then Char.chr code else '?');
               pos := !pos + 5
             | _ -> fail "bad escape");
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int ?(default = 0) = function
  | Some (Int i) -> i
  | Some (Float f) -> int_of_float f
  | _ -> default

let to_str ?(default = "") = function Some (Str s) -> s | _ -> default
