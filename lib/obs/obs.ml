module Stats = Gg_util.Stats

module Counter = struct
  type t = { name : string; mutable v : int }

  let make name = { name; v = 0 }
  let name c = c.name
  let incr c = c.v <- c.v + 1
  let add c n = c.v <- c.v + n
  let value c = c.v
  let set c v = c.v <- v
  let reset c = c.v <- 0
end

module Gauge = struct
  type t = { name : string; mutable v : float }

  let make name = { name; v = 0.0 }
  let name g = g.name
  let set g v = g.v <- v
  let value g = g.v
  let reset g = g.v <- 0.0
end

module Histogram = struct
  type t = { name : string; mutable h : Stats.Hist.t }

  let make name = { name; h = Stats.Hist.create () }
  let name h = h.name
  let observe t x = Stats.Hist.add t.h x
  let hist t = t.h
  let count t = Stats.Hist.count t.h
  let reset t = t.h <- Stats.Hist.create ()
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

module Trace = struct
  type event = {
    at : int;
    node : int;
    cat : string;
    name : string;
    epoch : int;
    span : int;
    parent : int;
    dur : int;
    detail : string;
  }

  let dummy =
    {
      at = 0;
      node = -1;
      cat = "";
      name = "";
      epoch = -1;
      span = -1;
      parent = -1;
      dur = -1;
      detail = "";
    }

  type t = {
    capacity : int;
    mutable buf : event array;  (* [||] until tracing is first enabled *)
    mutable next : int;  (* next write slot *)
    mutable total : int;  (* events recorded since last clear *)
  }

  let create ~capacity = { capacity = max 1 capacity; buf = [||]; next = 0; total = 0 }

  let ensure_buf t = if t.buf = [||] then t.buf <- Array.make t.capacity dummy

  let record t e =
    t.buf.(t.next) <- e;
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1

  let clear t =
    t.next <- 0;
    t.total <- 0

  let total t = t.total
  let dropped t = max 0 (t.total - t.capacity)

  let events t =
    if t.buf = [||] || t.total = 0 then []
    else if t.total <= t.capacity then Array.to_list (Array.sub t.buf 0 t.total)
    else
      (* wrapped: oldest surviving event sits at [next] *)
      Array.to_list
        (Array.append
           (Array.sub t.buf t.next (t.capacity - t.next))
           (Array.sub t.buf 0 t.next))
end

type t = {
  mutable clock : unit -> int;
  mutable tracing : bool;
  trace : Trace.t;
  by_name : (string, instrument) Hashtbl.t;
  mutable order : instrument list;  (* reverse registration order *)
  mutable reset_hooks : (unit -> unit) list;  (* reverse registration order *)
  mutable span_seq : int;  (* causal span allocator; never reset *)
}

let create ?(trace_capacity = 1 lsl 18) () =
  {
    clock = (fun () -> 0);
    tracing = false;
    trace = Trace.create ~capacity:trace_capacity;
    by_name = Hashtbl.create 64;
    order = [];
    reset_hooks = [];
    span_seq = 0;
  }

let set_clock t f = t.clock <- f
let now t = t.clock ()

let register t name i =
  Hashtbl.replace t.by_name name i;
  t.order <- i :: t.order

let kind_error name = invalid_arg ("Obs: instrument kind mismatch for " ^ name)

let counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (I_counter c) -> c
  | Some _ -> kind_error name
  | None ->
    let c = Counter.make name in
    register t name (I_counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (I_gauge g) -> g
  | Some _ -> kind_error name
  | None ->
    let g = Gauge.make name in
    register t name (I_gauge g);
    g

let histogram t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (I_histogram h) -> h
  | Some _ -> kind_error name
  | None ->
    let h = Histogram.make name in
    register t name (I_histogram h);
    h

let on_reset t f = t.reset_hooks <- f :: t.reset_hooks

let reset_all t =
  List.iter
    (function
      | I_counter c -> Counter.reset c
      | I_gauge g -> Gauge.reset g
      | I_histogram h -> Histogram.reset h)
    t.order;
  List.iter (fun f -> f ()) (List.rev t.reset_hooks);
  Trace.clear t.trace

let counter_values t =
  List.rev t.order
  |> List.filter_map (function
       | I_counter c -> Some (Counter.name c, Counter.value c)
       | I_gauge _ | I_histogram _ -> None)

let tracing t = t.tracing

let set_tracing t v =
  if v then Trace.ensure_buf t.trace;
  t.tracing <- v

(* Causal span ids: a process-unique sequence number with the allocating
   node packed into the low bits, so an id decodes back to its origin
   without a lookup. Allocation rides the (single-threaded) simulation
   event loop, never the merge/encode domain pools, so the id stream is
   deterministic at any --jobs/--merge-jobs width. The sequence is
   deliberately NOT cleared by [reset_all]: spans allocated before the
   warm-up reset may still be referenced by in-flight wire messages, and
   re-using their ids would fabricate causal edges. *)
let span_node_bits = 10
let span_node_mask = (1 lsl span_node_bits) - 1

let new_span t ~node =
  if not t.tracing then 0
  else begin
    t.span_seq <- t.span_seq + 1;
    (t.span_seq lsl span_node_bits) lor ((node + 1) land span_node_mask)
  end

let span_node span = (span land span_node_mask) - 1

let emit t ?at ?(node = -1) ?(epoch = -1) ?(span = -1) ?(parent = -1)
    ?(dur = -1) ?(detail = "") ~cat name =
  if t.tracing then
    let at = match at with Some a -> a | None -> t.clock () in
    Trace.record t.trace
      { Trace.at; node; cat; name; epoch; span; parent; dur; detail }

let events t = Trace.events t.trace
let events_total t = Trace.total t.trace
let dropped_events t = Trace.dropped t.trace
