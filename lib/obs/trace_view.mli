(** Offline analysis of exported JSONL traces.

    Loads the [meta] / [event] / [snapshot] records the harness writes
    (see DESIGN.md §7) and renders the epoch timeline, per-phase latency
    breakdown, slowest-epoch drill-down and cross-node epoch skew that
    the [geogauss_cli trace] subcommand prints. *)

type t = {
  meta : Jsonl.t;  (** the ["type":"meta"] record, [Obj []] when absent *)
  events : Obs.Trace.event list;  (** file order *)
  snapshots : (int * (string * int) list) list;
      (** periodic counter snapshots: (sim time µs, counter values) *)
}

val of_lines : string list -> (t, string) result
val load_file : string -> (t, string) result

(** {1 Analyses} *)

type phase_row = {
  pr_node : int;
  pr_txns : int;  (** committed transactions observed for this node *)
  pr_parse_ms : float;
  pr_exec_ms : float;
  pr_wait_ms : float;
  pr_merge_ms : float;
  pr_log_ms : float;
}

val phase_breakdown : t -> phase_row list
(** Mean per-phase latency (Algorithm 1 phases) per node, from the
    [txn/phase.*] events; sorted by node id. *)

type epoch_row = {
  er_epoch : int;
  er_seal_at : int;  (** earliest seal across nodes, [-1] if unobserved *)
  er_merge_nodes : int;  (** nodes whose merge.commit was observed *)
  er_merge_max_us : int;  (** slowest merge duration *)
  er_skew_us : int;  (** spread of merge.commit instants across nodes *)
  er_commits : int;
  er_aborts : int;
  er_lat_mean_ms : float;  (** mean committed latency *)
}

val epoch_rows : t -> epoch_row list
(** One row per epoch observed in the trace, sorted by epoch number. *)

val slowest_epochs : t -> top:int -> epoch_row list
(** The [top] epochs by maximum merge duration, slowest first. *)

val skew_stats : t -> float * int
(** (mean, max) cross-node merge.commit skew in µs over epochs merged on
    at least two nodes; [(0., 0)] when no such epoch exists. *)

val epoch_events : t -> int -> Obs.Trace.event list
(** All events scoped to one epoch, in file order. *)

(** {1 Rendering} *)

val meta_line : t -> string
val render_epoch_table : ?limit:int -> t -> string
val render_phase_table : t -> string
val render_slowest : ?top:int -> t -> string

val render_report : ?epoch_limit:int -> ?top:int -> t -> string
(** Full report: meta line, epoch timeline, phase breakdown,
    slowest-epoch drill-down, skew summary. *)
