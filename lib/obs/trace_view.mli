(** Offline analysis of exported JSONL traces.

    Loads the [meta] / [event] / [snapshot] records the harness writes
    (see DESIGN.md §7) and renders the epoch timeline, per-phase latency
    breakdown, slowest-epoch drill-down and cross-node epoch skew that
    the [geogauss_cli trace] subcommand prints. *)

type t = {
  meta : Jsonl.t;  (** the ["type":"meta"] record, [Obj []] when absent *)
  events : Obs.Trace.event list;  (** file order *)
  snapshots : (int * (string * int) list) list;
      (** periodic counter snapshots: (sim time µs, counter values) *)
}

val of_lines : string list -> (t, string) result
val load_file : string -> (t, string) result

(** {1 Analyses} *)

type phase_row = {
  pr_node : int;
  pr_txns : int;  (** committed transactions observed for this node *)
  pr_parse_ms : float;
  pr_exec_ms : float;
  pr_wait_ms : float;
  pr_merge_ms : float;
  pr_log_ms : float;
}

val phase_breakdown : t -> phase_row list
(** Mean per-phase latency (Algorithm 1 phases) per node, from the
    [txn/phase.*] events; sorted by node id. *)

type epoch_row = {
  er_epoch : int;
  er_seal_at : int;  (** earliest seal across nodes, [-1] if unobserved *)
  er_merge_nodes : int;  (** nodes whose merge.commit was observed *)
  er_merge_max_us : int;  (** slowest merge duration *)
  er_skew_us : int;  (** spread of merge.commit instants across nodes *)
  er_commits : int;
  er_aborts : int;
  er_lat_mean_ms : float;  (** mean committed latency *)
}

val epoch_rows : t -> epoch_row list
(** One row per epoch observed in the trace, sorted by epoch number. *)

val slowest_epochs : t -> top:int -> epoch_row list
(** The [top] epochs by maximum merge duration, slowest first. *)

val skew_stats : t -> float * int
(** (mean, max) cross-node merge.commit skew in µs over epochs merged on
    at least two nodes; [(0., 0)] when no such epoch exists. *)

val epoch_events : t -> int -> Obs.Trace.event list
(** All events scoped to one epoch, in file order. *)

(** {1 Causal DAG} *)

val meta_regions : t -> string array
(** Node → region name, from the meta record's [regions] list
    ([[||]] for traces written before the field existed). *)

val unresolved_parents : t -> int * int
(** [(with_parent, unresolved)]: receive-side events carrying a parent
    span, and how many of those parents no event in the file emits
    (sender predates the measurement window or the ring buffer
    wrapped). *)

(** {1 Critical-path attribution}

    The committed latency [T4 - T0] of each fully traced write
    transaction is cut at the causally ordered instants of Algorithm 1
    into eight phases — execute (submit → commit point), seal wait
    (commit point → own epoch seal), wan (seal → last peer EOF, the
    binding WAN hop), merge wait, spec wait (seal → speculative merge
    start, fast path only), confirm wait (speculative start → confirm
    point, fast path only), validate (the merge itself) and commit
    (write-back → client notify). A transaction takes the wan/merge-wait
    cut {e or} the spec/confirm cut, never both: a confirmed speculative
    epoch (eocc, DESIGN.md §14) reports wan = merge wait = 0 — its WAN
    tail is exactly the confirm wait the speculation overlapped — and a
    classic or mispredicted epoch reports spec = confirm = 0.
    Intermediate instants are clamped to stay monotone, so the eight
    phases always sum to exactly the commit event's latency.
    Transactions without full lineage (read-only, GeoG-A, ring-buffer
    wrap) are excluded and reported in {!cp_report.cpr_committed} vs the
    sampled count. *)

type cp_txn = {
  cp_node : int;
  cp_span : int;
  cp_epoch : int;
  cp_submit_at : int;
  cp_latency_us : int;
  cp_execute : int;
  cp_seal_wait : int;
  cp_wan : int;
  cp_merge_wait : int;
  cp_spec_wait : int;  (** fast path: seal → speculative merge start *)
  cp_confirm_wait : int;  (** fast path: speculative start → confirm *)
  cp_validate : int;
  cp_commit : int;
  cp_wan_from : int;  (** binding sender node, [-1] when no WAN hop bound *)
  cp_wan_pair : string;  (** ["SenderRegion>MyRegion"], [""] when none *)
}

type cp_report = {
  cpr_txns : cp_txn list;  (** sorted by (submit_at, node, span) *)
  cpr_committed : int;  (** commit events seen in the trace *)
  cpr_parent_events : int;
  cpr_unresolved : int;
}

val critical_path : t -> cp_report

(** {1 Per-region-pair WAN accounting} *)

type wan_report = {
  wr_pairs : (string * int) list;
      (** ["A>B"] → bytes, in counter-registry (row-major region)
          order, read from the window-closing snapshot *)
  wr_total_bytes : int;
  wr_commits : int;  (** committed transactions in the window *)
}

val wan_report : t -> wan_report

(** {1 Rendering} *)

val meta_line : t -> string
val render_epoch_table : ?limit:int -> t -> string
val render_phase_table : t -> string
val render_slowest : ?top:int -> t -> string

val render_report : ?epoch_limit:int -> ?top:int -> t -> string
(** Full report: meta line, epoch timeline, phase breakdown,
    slowest-epoch drill-down, skew summary. *)

val render_critical_path : t -> string
(** Per-node mean phase table, binding-WAN-hop pair table, sampling and
    parent-resolution summary. Byte-deterministic for a given trace. *)

val critical_path_json : t -> Jsonl.t
(** Machine-readable critical-path report: aggregate means plus one
    entry per sampled transaction, in the same deterministic order. *)

val render_wan : t -> string
val wan_json : t -> Jsonl.t
(** Per-region-pair WAN bytes and bytes/committed-txn for the
    measurement window. *)
