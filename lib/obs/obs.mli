(** Observability substrate: a registry of named instruments plus a
    span/event tracer keyed on simulated time.

    One [Obs.t] lives per simulation ({!Gg_sim.Sim.create} makes it and
    points its clock at the sim); every layer (sim, net, node, raft,
    harness) registers counters/gauges/histograms in it and emits trace
    events into a fixed-capacity ring buffer.

    Cost model: instruments are plain mutable records (an increment is a
    load + store, same as the ad-hoc counters they replace). Tracing is
    {e disabled by default}: the ring buffer is not even allocated until
    {!set_tracing} first enables it, and every emission site guards on
    {!tracing}, so a disabled tracer costs one boolean test per
    potential event. *)

module Counter : sig
  type t

  val make : string -> t
  (** Standalone (unregistered) counter — for components created without
      a registry. *)

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val set : t -> int -> unit
  val reset : t -> unit
end

module Gauge : sig
  type t

  val make : string -> t
  val name : t -> string
  val set : t -> float -> unit
  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  val make : string -> t
  val name : t -> string
  val observe : t -> float -> unit

  val hist : t -> Gg_util.Stats.Hist.t
  (** The live underlying histogram (invalidated by {!reset}). *)

  val count : t -> int
  val reset : t -> unit
end

module Trace : sig
  type event = {
    at : int;  (** simulated time, µs *)
    node : int;  (** emitting node id, [-1] for cluster-level events *)
    cat : string;  (** category: "txn", "epoch", "net", "raft", "cluster" *)
    name : string;  (** event name within the category *)
    epoch : int;  (** epoch number (cen), [-1] when not epoch-scoped *)
    span : int;  (** causal span id ({!new_span}), [-1]/[0] for instants *)
    parent : int;
        (** span id of the causal parent (for receive-side events, the
            sender's span carried on the wire); [-1]/[0] when none *)
    dur : int;  (** duration in µs, [-1] for instant events *)
    detail : string;  (** free-form ["k=v k=v"] payload, [""] if none *)
  }
end

type t

val create : ?trace_capacity:int -> unit -> t
(** [trace_capacity] bounds the event ring buffer (default 2{^18});
    older events are overwritten once it wraps, with {!dropped_events}
    counting the loss. *)

val set_clock : t -> (unit -> int) -> unit
(** Wire the tracer to a time source (the owning simulation). *)

val now : t -> int

(** {1 Instrument registry}

    [counter t name] is get-or-create: the first call registers, later
    calls return the same instrument, so any module can look up a shared
    metric cheaply by name. Raises [Invalid_argument] if [name] is
    already registered as a different kind. *)

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

val counter_values : t -> (string * int) list
(** Snapshot of every registered counter, in registration order
    (deterministic — feeds the JSONL snapshot stream). *)

val on_reset : t -> (unit -> unit) -> unit
(** Register extra state to clear on {!reset_all} (per-epoch tables,
    client-side stats, ...). *)

val reset_all : t -> unit
(** One-call warm-up reset: zero every registered instrument, run every
    {!on_reset} hook (in registration order), and clear the trace ring
    buffer, so all measurement windows start at the same instant. *)

(** {1 Tracing} *)

val tracing : t -> bool
val set_tracing : t -> bool -> unit

val new_span : t -> node:int -> int
(** Allocate a causal span id: a process-unique positive integer with
    [node] packed into the low bits (decode with {!span_node}). Returns
    [0] — the "no span" wire value — without consuming a sequence number
    while tracing is disabled, so traced and untraced runs behave
    identically on the wire. Allocation happens on the simulation thread
    only, keeping the id stream byte-deterministic at any
    [--jobs]/[--merge-jobs] width. The sequence survives {!reset_all}
    (in-flight messages may still carry pre-reset spans). *)

val span_node : int -> int
(** The node id packed into a span by {!new_span} ([-1] for span 0). *)

val emit :
  t ->
  ?at:int ->
  ?node:int ->
  ?epoch:int ->
  ?span:int ->
  ?parent:int ->
  ?dur:int ->
  ?detail:string ->
  cat:string ->
  string ->
  unit
(** Record an event ([?at] defaults to the clock's current time). A
    no-op while tracing is disabled; emission sites that build a
    [detail] string should still guard on {!tracing} to skip the
    formatting work. *)

val events : t -> Trace.event list
(** Buffered events, oldest first. *)

val events_total : t -> int
(** Events emitted since the last reset (including overwritten ones). *)

val dropped_events : t -> int
(** Events lost to ring-buffer wrap-around since the last reset. *)
