type t = Det_base.t

let name = "EOCC"

(* Lead time of the speculative seal: the merge-and-validate tail the
   full-fidelity engine overlaps with the all-arrived wait (its auto
   margin is log fsync + merge base + slack, see Params.fastpath_margin_us
   and DESIGN.md §14). *)
let spec_lead_us = 3_500

let strategy =
  {
    Det_base.strat_name = "eocc";
    per_txn_sched_us = 5;  (* timestamp-ordered schedule, no lock chains *)
    preprocess_us = 20;  (* clock stamp + watermark bookkeeping *)
    lock_critical_path = false;
    reservation_aborts = true;  (* OCC validation aborts on conflicts *)
    extra_round_us = 0;
    ft_raft = false;
    spec_margin_us = Some spec_lead_us;
  }

let create net cfg = Det_base.create net cfg strategy
let submit = Det_base.submit
