type t = Det_base.t

let name = "Q-Store"

let strategy =
  {
    Det_base.strat_name = "qstore";
    per_txn_sched_us = 15;  (* queue-oriented planning is nearly free *)
    preprocess_us = 20;  (* planner builds per-partition queues *)
    lock_critical_path = true;  (* conflicting queues still serialize *)
    reservation_aborts = false;
    extra_round_us = 0;
    ft_raft = false;
    spec_margin_us = None;
  }

let create net cfg = Det_base.create net cfg strategy
let submit = Det_base.submit
