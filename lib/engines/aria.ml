type t = Det_base.t

let name = "Aria"

let strategy ~ft_raft =
  {
    Det_base.strat_name = "aria";
    per_txn_sched_us = 10;
    preprocess_us = 120;  (* dependency analysis / reservation pass *)
    lock_critical_path = false;
    reservation_aborts = true;
    extra_round_us = 0;
    ft_raft;
    spec_margin_us = None;
  }

let create net cfg = Det_base.create net cfg (strategy ~ft_raft:false)
let create_ft net cfg = Det_base.create net cfg (strategy ~ft_raft:true)
let submit = Det_base.submit
