module Params = Geogauss.Params

type impl =
  | Core of (Params.t -> Params.t)
  | Baseline of (module Engine.S)

(* THE canonical engine list. Every name the CLI, the harness, and the
   check sweeps accept lives here and nowhere else — exactly like the
   experiments registry in Gg_harness.Experiments — so adding an engine
   is one line and a stale name fails loudly instead of silently running
   the wrong protocol. Order is documentation only (core variants first,
   then the baseline timing models); lookups go through {!find}. *)
let entries : (string * impl) list =
  [
    ("geogauss", Core (fun p -> Params.with_variant p Params.Optimistic));
    ("geog-s", Core (fun p -> Params.with_variant p Params.Sync_exec));
    ("geog-a", Core (fun p -> Params.with_variant p Params.Async_merge));
    ("eocc", Core (fun p -> Params.with_fastpath p true));
    ("crdb", Baseline (module Crdb));
    ("calvin", Baseline (module Calvin));
    ("aria", Baseline (module Aria));
    ("calvinfs", Baseline (module Calvinfs));
    ("qstore", Baseline (module Qstore));
    ("slog", Baseline (module Slog));
    ("anna", Baseline (module Anna));
  ]

let names = List.map fst entries

let find name =
  match List.assoc_opt name entries with
  | Some impl -> impl
  | None ->
    invalid_arg
      (Printf.sprintf "unknown engine %S (known: %s)" name
         (String.concat " " names))

let mem name = List.mem_assoc name entries
