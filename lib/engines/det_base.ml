module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Op = Gg_workload.Op

type strategy = {
  strat_name : string;
  per_txn_sched_us : int;
  preprocess_us : int;
  lock_critical_path : bool;
  reservation_aborts : bool;
  extra_round_us : int;
  ft_raft : bool;
  spec_margin_us : int option;
}

type entry = {
  origin : int;
  seq : int;
  txn : Op.txn;
  submit_time : int;
  cb : Engine.outcome -> unit;
}

type node_state = {
  id : int;
  mutable batch : entry list;  (* being collected, newest first *)
  arrived : (int * int, entry list) Hashtbl.t;  (* (round, src) -> txns *)
  mutable done_round : int;
  mutable executing : bool;
}

type t = {
  sim : Sim.t;
  net : Net.t;
  cfg : Engine.config;
  strat : strategy;
  nodes : node_state array;
  mutable seq : int;
  mutable started : bool;
}

let create net cfg strat =
  let n = Net.n_nodes net in
  let t =
    {
      sim = Net.sim net;
      net;
      cfg;
      strat;
      nodes =
        Array.init n (fun id ->
            {
              id;
              batch = [];
              arrived = Hashtbl.create 64;
              done_round = -1;
              executing = false;
            });
      seq = 0;
      started = false;
    }
  in
  t

let txn_exec_us t (txn : Op.txn) =
  (Op.n_ops txn * t.cfg.Engine.exec_op_us) + txn.Op.exec_extra_us

(* Deterministic order within a round: by (origin, seq). *)
let round_order entries =
  List.sort
    (fun a b ->
      let c = compare a.origin b.origin in
      if c <> 0 then c else compare a.seq b.seq)
    entries

(* Which transactions abort under Aria-style reservations: a transaction
   aborts on a WAW or RAW conflict with an earlier transaction. *)
let reservation_outcomes entries =
  let writers : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i e ->
      Array.iter
        (fun op ->
          match op with
          | Op.Read _ -> ()
          | Op.Write _ | Op.Add _ | Op.Insert _ | Op.Delete _ ->
            let k = (Op.op_table op, Op.op_key_str op) in
            if not (Hashtbl.mem writers k) then Hashtbl.replace writers k i)
        e.txn.Op.ops)
    entries;
  List.mapi
    (fun i e ->
      let conflicted =
        Array.exists
          (fun op ->
            let k = (Op.op_table op, Op.op_key_str op) in
            match Hashtbl.find_opt writers k with
            | Some j when j < i -> true
            | Some _ | None -> false)
          e.txn.Op.ops
      in
      (e, not conflicted))
    entries

(* Round duration on one node. *)
let round_duration t entries =
  let total_work =
    List.fold_left (fun acc e -> acc + txn_exec_us t e.txn) 0 entries
  in
  let parallel_floor = total_work / max 1 t.cfg.Engine.cores in
  let longest_txn =
    List.fold_left (fun acc e -> max acc (txn_exec_us t e.txn)) 0 entries
  in
  let critical =
    if not t.strat.lock_critical_path then longest_txn
    else begin
      (* Ordered locks: per-key chains of conflicting txns serialize. *)
      let chains : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun e ->
          let cost = txn_exec_us t e.txn in
          let seen = Hashtbl.create 8 in
          Array.iter
            (fun op ->
              match op with
              | Op.Read _ -> ()
              | Op.Write _ | Op.Add _ | Op.Insert _ | Op.Delete _ ->
                let k = (Op.op_table op, Op.op_key_str op) in
                if not (Hashtbl.mem seen k) then begin
                  Hashtbl.replace seen k ();
                  let prev = Option.value ~default:0 (Hashtbl.find_opt chains k) in
                  Hashtbl.replace chains k (prev + cost)
                end)
            e.txn.Op.ops)
        entries;
      Hashtbl.fold (fun _ v acc -> max acc v) chains longest_txn
    end
  in
  let overhead =
    List.length entries * (t.strat.per_txn_sched_us + t.strat.preprocess_us)
  in
  t.strat.extra_round_us + overhead + max parallel_floor critical

let rec try_execute t nd =
  if not nd.executing then begin
    let r = nd.done_round + 1 in
    let n = Net.n_nodes t.net in
    let have_all =
      let rec go src =
        src >= n || (Hashtbl.mem nd.arrived (r, src) && go (src + 1))
      in
      go 0
    in
    if have_all then begin
      nd.executing <- true;
      let entries =
        round_order
          (List.concat_map
             (fun src -> Hashtbl.find nd.arrived (r, src))
             (List.init n Fun.id))
      in
      let duration = round_duration t entries in
      (* Clock-assisted speculative seal/confirm (the eocc fast path):
         bounded-skew clocks let a node predict the round's closing set
         and start the deterministic schedule before the last batch
         lands, so up to [spec_margin_us] of the round's critical path
         overlaps the arrival wait. Only the residual is charged here —
         the confirm point (all batches in hand) still gates every
         client answer. *)
      let duration =
        match t.strat.spec_margin_us with
        | Some lead -> max 0 (duration - lead)
        | None -> duration
      in
      Sim.schedule t.sim ~after:duration (fun () ->
          let outcomes =
            if t.strat.reservation_aborts then reservation_outcomes entries
            else List.map (fun e -> (e, true)) entries
          in
          List.iter
            (fun (e, ok) ->
              (* The client is answered by the transaction's origin node. *)
              if e.origin = nd.id then
                e.cb
                  {
                    Engine.committed = ok;
                    latency_us = Sim.now t.sim - e.submit_time;
                  })
            outcomes;
          for src = 0 to n - 1 do
            Hashtbl.remove nd.arrived (r, src)
          done;
          nd.done_round <- r;
          nd.executing <- false;
          try_execute t nd)
    end
  end

let deliver t ~dst ~round ~src entries =
  let nd = t.nodes.(dst) in
  if not (Hashtbl.mem nd.arrived (round, src)) then begin
    Hashtbl.replace nd.arrived (round, src) entries;
    try_execute t nd
  end

let seal t nd round =
  let entries = List.rev nd.batch in
  nd.batch <- [];
  let bytes = Engine.input_wire_bytes (List.map (fun e -> e.txn) entries) in
  (* Raft input replication delays batch availability by roughly one
     extra round trip (append + ack before commit). *)
  let topo = Net.topology t.net in
  for dst = 0 to Net.n_nodes t.net - 1 do
    if dst = nd.id then begin
      if t.strat.ft_raft then begin
        (* Leader itself waits for a majority ack: one RTT to the nearest
           majority peer. *)
        let rtts =
          List.sort compare
            (List.filteri
               (fun i _ -> i <> nd.id)
               (List.init (Net.n_nodes t.net) (fun i ->
                    Gg_sim.Topology.latency topo nd.id i)))
        in
        let majority_rtt = match rtts with x :: _ -> 2 * x | [] -> 0 in
        Sim.schedule t.sim ~after:majority_rtt (fun () ->
            deliver t ~dst ~round ~src:nd.id entries)
      end
      else deliver t ~dst ~round ~src:nd.id entries
    end
    else begin
      let extra =
        if t.strat.ft_raft then 2 * Gg_sim.Topology.latency topo nd.id dst else 0
      in
      Net.send t.net ~src:nd.id ~dst ~bytes (fun () ->
          if extra > 0 then
            Sim.schedule t.sim ~after:extra (fun () ->
                deliver t ~dst ~round ~src:nd.id entries)
          else deliver t ~dst ~round ~src:nd.id entries)
    end
  done

let start_sequencer t nd =
  let rec boundary round =
    Sim.schedule_at t.sim ((round + 1) * t.cfg.Engine.batch_us) (fun () ->
        seal t nd round;
        boundary (round + 1))
  in
  boundary (Sim.now t.sim / t.cfg.Engine.batch_us)

let ensure_started t =
  if not t.started then begin
    t.started <- true;
    Array.iter (fun nd -> start_sequencer t nd) t.nodes
  end

let submit t ~node txn cb =
  ensure_started t;
  t.seq <- t.seq + 1;
  let entry =
    { origin = node; seq = t.seq; txn; submit_time = Sim.now t.sim; cb }
  in
  t.nodes.(node).batch <- entry :: t.nodes.(node).batch

let wan_bytes t = Net.wan_bytes t.net
let rounds_executed t ~node = t.nodes.(node).done_round + 1
