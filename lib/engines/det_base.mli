(** Shared machinery for deterministic multi-master baselines (Calvin,
    Aria, CalvinFS, Q-Store).

    These systems replicate transaction {e inputs}: every node runs a
    sequencer that batches its local transactions per interval and
    broadcasts the batch; when a node holds round [r]'s batches from all
    peers (and round [r-1] is done — deterministic rounds execute in
    order), it executes the identical transaction set in the agreed
    order. The strategy record captures how each system schedules a
    round and which transactions abort. *)

type strategy = {
  strat_name : string;
  per_txn_sched_us : int;
      (** deterministic scheduling overhead per transaction (ordered
          locks for Calvin; near-zero for queue-oriented Q-Store) *)
  preprocess_us : int;
      (** per-transaction pre-execution analysis (Aria's dependency
          reservation pass) *)
  lock_critical_path : bool;
      (** Calvin-style ordered locks: conflicting transactions serialize,
          so the round lasts at least the longest per-key chain *)
  reservation_aborts : bool;
      (** Aria-style reservations: WAW/RAW conflicts with earlier
          transactions in the round abort *)
  extra_round_us : int;
      (** fixed extra per-round cost (e.g. CalvinFS quorum metadata
          round) *)
  ft_raft : bool;
      (** replicate input batches through Raft before execution
          (~1 extra RTT before a round is runnable) *)
  spec_margin_us : int option;
      (** clock-assisted speculative seal (eocc): overlap up to this
          much of the round's critical path with the arrival wait —
          bounded-skew clocks let the node start the deterministic
          schedule before the last batch lands. [None] (every classic
          baseline) charges the full round after all batches arrive *)
}

type t

val create : Gg_sim.Net.t -> Engine.config -> strategy -> t
val submit : t -> node:int -> Gg_workload.Op.txn -> (Engine.outcome -> unit) -> unit

val wan_bytes : t -> int
(** Input-replication WAN traffic so far (also visible via the net). *)

val rounds_executed : t -> node:int -> int
