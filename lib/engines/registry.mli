(** The canonical engine registry.

    One list maps every engine name the CLI / harness / check sweeps
    accept to its implementation. Two kinds exist:

    - [Core] — a variant of the full GeoGauss cluster, expressed as a
      {!Geogauss.Params} transform ([geogauss], [geog-s], [geog-a], and
      the clock-assisted fast path [eocc] = [Params.with_fastpath]).
      These run the real protocol with write sets, fault tolerance, and
      oracle coverage.
    - [Baseline] — a timing-and-conflict comparison model implementing
      {!Engine.S} ([crdb], [calvin], [aria], [calvinfs], [qstore],
      [slog], [anna]).

    The list is the single source of truth (same discipline as the
    experiments registry in [Gg_harness.Experiments]): the determinism
    lint checks that no other module grows its own name table, and
    {!find} rejects unknown names loudly with the full known list. *)

type impl =
  | Core of (Geogauss.Params.t -> Geogauss.Params.t)
      (** parameter transform onto the full GeoGauss cluster *)
  | Baseline of (module Engine.S)  (** standalone timing model *)

val entries : (string * impl) list
(** The canonical (name, implementation) list, in documentation order. *)

val names : string list
(** All registered engine names, in [entries] order. *)

val find : string -> impl
(** Look an engine up by name. @raise Invalid_argument on an unknown
    name, listing every known engine in the message. *)

val mem : string -> bool
(** [mem name] is [true] iff [name] is registered. *)
