type t = Det_base.t

let name = "CalvinFS"

let strategy =
  {
    Det_base.strat_name = "calvinfs";
    per_txn_sched_us = 60;
    preprocess_us = 40;  (* metadata block-map lookups *)
    lock_critical_path = true;
    reservation_aborts = false;
    (* quorum round for metadata consistency: intra-region is cheap but
       happens on every round *)
    extra_round_us = 2_000;
    ft_raft = false;
    spec_margin_us = None;
  }

let create net cfg = Det_base.create net cfg strategy
let submit = Det_base.submit
