(** Epoch-based OCC with a clock-assisted fast path (the [eocc]
    baseline row of fig5/fig8): deterministic epoch rounds whose seal is
    {e speculative} — bounded-skew clocks plus predicted-arrival
    watermarks let a node start the round's validation schedule before
    the last batch lands, overlapping up to {!Det_base.strategy}
    [spec_margin_us] of the critical path with the arrival wait. Client
    answers still gate on the confirm point (every batch in hand).

    This is the timing-and-conflict baseline model; the full-fidelity
    speculative engine — real write sets, misprediction fallback,
    oracle coverage — is the GeoGauss cluster run with
    [Params.fastpath] (registered under the same ["eocc"] name in
    {!Registry}). *)

include Engine.S
