type t = Det_base.t

let name = "Calvin"

let strategy ~ft_raft =
  {
    Det_base.strat_name = "calvin";
    per_txn_sched_us = 60;  (* ordered-lock scheduling overhead *)
    preprocess_us = 0;
    lock_critical_path = true;
    reservation_aborts = false;
    extra_round_us = 0;
    ft_raft;
    spec_margin_us = None;
  }

let create net cfg = Det_base.create net cfg (strategy ~ft_raft:false)
let create_ft net cfg = Det_base.create net cfg (strategy ~ft_raft:true)
let submit = Det_base.submit
