module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Obs = Gg_obs.Obs

type role = Follower | Candidate | Leader

type entry = { term : int; data : string }

type msg =
  | Request_vote of { term : int; candidate : int; last_idx : int; last_term : int }
  | Vote of { term : int; voter : int; granted : bool }
  | Append of {
      term : int;
      leader : int;
      prev_idx : int;
      prev_term : int;
      entries : entry list;
      commit : int;
    }
  | Append_ack of { term : int; follower : int; success : bool; match_idx : int }

type node = {
  id : int;
  mutable term : int;
  mutable voted_for : int option;
  mutable role : role;
  mutable log : entry array;  (* 1-based view: log.(i-1) *)
  mutable commit_index : int;
  mutable last_applied : int;
  mutable next_index : int array;
  mutable match_index : int array;
  mutable votes : int list;
  mutable last_contact : int;  (* last heartbeat/vote-grant time *)
  mutable timeout : int;  (* current randomized election timeout *)
}

type t = {
  sim : Sim.t;
  net : Net.t;
  rng : Gg_util.Rng.t;
  n : int;
  nodes : node array;
  heartbeat_us : int;
  election_timeout_us : int;
  apply : node:int -> index:int -> string -> unit;
}

(* 64 bytes of fixed header per message plus an 8-byte trace-context
   header (span id), matching the framing of the epoch-batch wire form. *)
let msg_size = function
  | Request_vote _ | Vote _ | Append_ack _ -> 72
  | Append { entries; _ } ->
    72 + List.fold_left (fun n e -> n + 16 + String.length e.data) 0 entries

let msg_kind = function
  | Request_vote _ -> "vote.req"
  | Vote _ -> "vote"
  | Append _ -> "append"
  | Append_ack _ -> "append.ack"

let create net ~rng ?(heartbeat_us = 50_000) ?(election_timeout_us = 300_000)
    ~apply () =
  let n = Net.n_nodes net in
  let nodes =
    Array.init n (fun id ->
        {
          id;
          term = 0;
          voted_for = None;
          role = Follower;
          log = [||];
          commit_index = 0;
          last_applied = 0;
          next_index = Array.make n 1;
          match_index = Array.make n 0;
          votes = [];
          last_contact = 0;
          timeout = election_timeout_us;
        })
  in
  { sim = Net.sim net; net; rng; n; nodes; heartbeat_us; election_timeout_us; apply }

let n_nodes t = t.n

let log_length_of nd = Array.length nd.log
let last_log_term nd = if nd.log = [||] then 0 else nd.log.(Array.length nd.log - 1).term

let log_term_at nd idx =
  if idx = 0 then 0
  else if idx <= Array.length nd.log then nd.log.(idx - 1).term
  else -1

let fresh_timeout t =
  t.election_timeout_us + Gg_util.Rng.int t.rng t.election_timeout_us

let is_down t id = Net.is_down t.net id

(* Each send allocates a causal span carried (conceptually) in the
   message's trace-context header; the delivery-side recv event names it
   as parent, so Raft hops appear in the cross-node causal DAG. Span
   allocation is a no-op (returns 0) when tracing is off. *)
let rec send t ~src ~dst msg =
  let obs = Sim.obs t.sim in
  let span = Obs.new_span obs ~node:src in
  if Obs.tracing obs then
    Obs.emit obs ~node:src ~span ~cat:"raft" "send" ~detail:(msg_kind msg);
  Net.send t.net ~src ~dst ~bytes:(msg_size msg) (fun () ->
      dispatch t dst ~parent:span msg)

and dispatch t dst ~parent msg =
  let obs = Sim.obs t.sim in
  if Obs.tracing obs then
    Obs.emit obs ~node:dst ~cat:"raft" "recv"
      ~parent:(if parent > 0 then parent else -1)
      ~detail:(msg_kind msg);
  handle t t.nodes.(dst) msg

and become_follower t nd term =
  nd.term <- term;
  nd.role <- Follower;
  nd.voted_for <- None;
  nd.votes <- [];
  nd.last_contact <- Sim.now t.sim

and apply_committed t nd =
  while nd.last_applied < nd.commit_index do
    nd.last_applied <- nd.last_applied + 1;
    let e = nd.log.(nd.last_applied - 1) in
    let obs = Sim.obs t.sim in
    if Obs.tracing obs then
      Obs.emit obs ~node:nd.id ~span:nd.last_applied ~cat:"raft" "apply"
        ~detail:e.data;
    t.apply ~node:nd.id ~index:nd.last_applied e.data
  done

and advance_leader_commit t nd =
  (* Commit the highest index replicated on a majority with current term. *)
  let len = log_length_of nd in
  let idx = ref nd.commit_index in
  for candidate = nd.commit_index + 1 to len do
    if log_term_at nd candidate = nd.term then begin
      let count =
        1
        + Array.fold_left
            (fun acc m -> if m >= candidate then acc + 1 else acc)
            0
            (Array.mapi
               (fun i m -> if i = nd.id then -1 else m)
               nd.match_index)
      in
      if count * 2 > t.n then idx := candidate
    end
  done;
  if !idx > nd.commit_index then begin
    nd.commit_index <- !idx;
    apply_committed t nd
  end

and replicate_to t nd peer =
  let next = nd.next_index.(peer) in
  let prev_idx = next - 1 in
  let prev_term = log_term_at nd prev_idx in
  let entries =
    if next <= log_length_of nd then
      Array.to_list (Array.sub nd.log (next - 1) (log_length_of nd - next + 1))
    else []
  in
  send t ~src:nd.id ~dst:peer
    (Append
       {
         term = nd.term;
         leader = nd.id;
         prev_idx;
         prev_term;
         entries;
         commit = nd.commit_index;
       })

and broadcast_append t nd =
  for peer = 0 to t.n - 1 do
    if peer <> nd.id then replicate_to t nd peer
  done

and become_leader t nd =
  Obs.emit (Sim.obs t.sim) ~node:nd.id ~span:nd.term ~cat:"raft" "leader";
  nd.role <- Leader;
  nd.next_index <- Array.make t.n (log_length_of nd + 1);
  nd.match_index <- Array.make t.n 0;
  broadcast_append t nd;
  schedule_heartbeat t nd nd.term

and schedule_heartbeat t nd term =
  Sim.schedule t.sim ~after:t.heartbeat_us (fun () ->
      if nd.role = Leader && nd.term = term && not (is_down t nd.id) then begin
        broadcast_append t nd;
        schedule_heartbeat t nd term
      end)

and start_election t nd =
  Obs.emit (Sim.obs t.sim) ~node:nd.id ~span:(nd.term + 1) ~cat:"raft" "election";
  nd.term <- nd.term + 1;
  nd.role <- Candidate;
  nd.voted_for <- Some nd.id;
  nd.votes <- [ nd.id ];
  nd.last_contact <- Sim.now t.sim;
  nd.timeout <- fresh_timeout t;
  let last_idx = log_length_of nd and last_term = last_log_term nd in
  for peer = 0 to t.n - 1 do
    if peer <> nd.id then
      send t ~src:nd.id ~dst:peer
        (Request_vote { term = nd.term; candidate = nd.id; last_idx; last_term })
  done;
  if t.n = 1 then become_leader t nd

and handle t nd msg =
  if not (is_down t nd.id) then
    match msg with
    | Request_vote { term; candidate; last_idx; last_term } ->
      if term > nd.term then become_follower t nd term;
      let up_to_date =
        last_term > last_log_term nd
        || (last_term = last_log_term nd && last_idx >= log_length_of nd)
      in
      let granted =
        term = nd.term
        && up_to_date
        && (nd.voted_for = None || nd.voted_for = Some candidate)
      in
      if granted then begin
        nd.voted_for <- Some candidate;
        nd.last_contact <- Sim.now t.sim
      end;
      send t ~src:nd.id ~dst:candidate (Vote { term = nd.term; voter = nd.id; granted })
    | Vote { term; voter; granted } ->
      if term > nd.term then become_follower t nd term
      else if nd.role = Candidate && term = nd.term && granted then begin
        if not (List.mem voter nd.votes) then nd.votes <- voter :: nd.votes;
        if List.length nd.votes * 2 > t.n then become_leader t nd
      end
    | Append { term; leader; prev_idx; prev_term; entries; commit } ->
      if term > nd.term then become_follower t nd term;
      if term < nd.term then
        send t ~src:nd.id ~dst:leader
          (Append_ack { term = nd.term; follower = nd.id; success = false; match_idx = 0 })
      else begin
        (* Valid leader for our term. *)
        if nd.role <> Follower then nd.role <- Follower;
        nd.last_contact <- Sim.now t.sim;
        if log_term_at nd prev_idx <> prev_term then
          send t ~src:nd.id ~dst:leader
            (Append_ack
               { term = nd.term; follower = nd.id; success = false; match_idx = 0 })
        else begin
          (* Append, truncating conflicts. *)
          let base = prev_idx in
          List.iteri
            (fun i (e : entry) ->
              let idx = base + i + 1 in
              if idx <= log_length_of nd then begin
                if nd.log.(idx - 1).term <> e.term then begin
                  nd.log <- Array.sub nd.log 0 (idx - 1);
                  nd.log <- Array.append nd.log [| e |]
                end
              end
              else nd.log <- Array.append nd.log [| e |])
            entries;
          let match_idx = base + List.length entries in
          if commit > nd.commit_index then begin
            nd.commit_index <- min commit (log_length_of nd);
            apply_committed t nd
          end;
          send t ~src:nd.id ~dst:leader
            (Append_ack { term = nd.term; follower = nd.id; success = true; match_idx })
        end
      end
    | Append_ack { term; follower; success; match_idx } ->
      if term > nd.term then become_follower t nd term
      else if nd.role = Leader && term = nd.term then
        if success then begin
          if match_idx > nd.match_index.(follower) then begin
            nd.match_index.(follower) <- match_idx;
            nd.next_index.(follower) <- match_idx + 1;
            advance_leader_commit t nd
          end
        end
        else begin
          nd.next_index.(follower) <- max 1 (nd.next_index.(follower) - 1);
          replicate_to t nd follower
        end

let rec schedule_election_check t nd =
  Sim.schedule t.sim ~after:(nd.timeout / 2) (fun () ->
      (if not (is_down t nd.id) then
         match nd.role with
         | Leader -> ()
         | Follower | Candidate ->
           if Sim.now t.sim - nd.last_contact >= nd.timeout then
             start_election t nd);
      schedule_election_check t nd)

let start t =
  Array.iter
    (fun nd ->
      nd.timeout <- fresh_timeout t;
      (* Stagger initial checks so elections rarely collide. *)
      nd.last_contact <- Sim.now t.sim;
      schedule_election_check t nd)
    t.nodes

let propose t ~node data =
  let nd = t.nodes.(node) in
  if nd.role <> Leader || is_down t node then false
  else begin
    nd.log <- Array.append nd.log [| { term = nd.term; data } |];
    nd.match_index.(nd.id) <- log_length_of nd;
    broadcast_append t nd;
    if t.n = 1 then begin
      nd.commit_index <- log_length_of nd;
      apply_committed t nd
    end;
    true
  end

let current_leader t =
  let best = ref None in
  Array.iter
    (fun nd ->
      if nd.role = Leader && not (is_down t nd.id) then
        match !best with
        | Some (_, term) when term >= nd.term -> ()
        | _ -> best := Some (nd.id, nd.term))
    t.nodes;
  Option.map fst !best

let propose_anywhere t data =
  match current_leader t with
  | None -> false
  | Some leader -> propose t ~node:leader data

let role t i = t.nodes.(i).role
let term t i = t.nodes.(i).term
let log_length t i = log_length_of t.nodes.(i)
let commit_index t i = t.nodes.(i).commit_index

let entry_at t ~node ~index =
  let nd = t.nodes.(node) in
  if index >= 1 && index <= log_length_of nd then Some nd.log.(index - 1) else None
