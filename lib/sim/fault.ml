module Obs = Gg_obs.Obs

type action =
  | Crash of int
  | Recover of int
  | Loss of float
  | Dup of float
  | Reorder of float
  | Jitter of float
  | Corrupt of float
  | Skew_step of { node : int; delta_us : int }

type event = { at_ms : int; action : action }

let action_to_string = function
  | Crash n -> Printf.sprintf "crash:%d" n
  | Recover n -> Printf.sprintf "recover:%d" n
  | Loss p -> Printf.sprintf "loss:%.3f" p
  | Dup p -> Printf.sprintf "dup:%.3f" p
  | Reorder p -> Printf.sprintf "reorder:%.3f" p
  | Jitter f -> Printf.sprintf "jitter:%.3f" f
  | Corrupt p -> Printf.sprintf "corrupt:%.3f" p
  | Skew_step { node; delta_us } -> Printf.sprintf "skew:%d:%+dus" node delta_us

let event_to_string e = Printf.sprintf "%s@%dms" (action_to_string e.action) e.at_ms

let schedule_to_string events =
  if events = [] then "-"
  else String.concat "," (List.map event_to_string events)

let apply net ?(on_crash = fun n -> Net.set_down net n true)
    ?(on_recover = fun n -> Net.set_down net n false)
    ?(on_skew = fun _ ~delta_us:_ -> ()) action =
  match action with
  | Crash n -> on_crash n
  | Recover n -> on_recover n
  | Loss p -> Net.set_loss net p
  | Dup p -> Net.set_dup net p
  | Reorder p -> Net.set_reorder net p
  | Jitter f -> Net.set_jitter_frac net f
  | Corrupt p -> Net.set_corrupt_frac net p
  | Skew_step { node; delta_us } -> on_skew node ~delta_us

let install net ?on_crash ?on_recover ?on_skew events =
  let sim = Net.sim net in
  let obs = Sim.obs sim in
  List.iter
    (fun e ->
      Sim.schedule_at sim (Sim.ms e.at_ms) (fun () ->
          if Obs.tracing obs then
            Obs.emit obs ~cat:"fault" "inject" ~detail:(event_to_string e);
          apply net ?on_crash ?on_recover ?on_skew e.action))
    (List.stable_sort (fun a b -> compare a.at_ms b.at_ms) events)
