(** Discrete-event simulation engine.

    Time is an [int] count of {e microseconds}. All cluster components
    (nodes, clients, the network) are callbacks scheduled on a single
    engine, which makes whole geo-distributed runs deterministic and
    seedable. *)

type t

val create : ?obs:Gg_obs.Obs.t -> unit -> t
(** Every simulation owns an observability registry (created here unless
    one is supplied) whose clock is wired to simulated time; components
    sharing the sim register their instruments and trace events in it. *)

val now : t -> int
(** Current simulated time (µs). *)

val obs : t -> Gg_obs.Obs.t
(** The registry/tracer bound to this simulation. *)

val events : t -> int
(** Total events executed since creation (throughput accounting); backed
    by the ["sim.events"] counter, so {!Gg_obs.Obs.reset_all} zeroes
    it. *)

val schedule : t -> after:int -> (unit -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t + max 0 after]. Events with
    equal timestamps run in scheduling order. *)

val schedule_at : t -> int -> (unit -> unit) -> unit
(** Absolute-time variant; past times run "now". *)

val step : t -> bool
(** Run the single earliest event. [false] when the queue is empty. *)

val run : t -> unit
(** Run until no events remain. *)

val run_until : t -> int -> unit
(** [run_until t limit] runs all events with timestamp [<= limit] and
    leaves [now t = limit] (even if the queue drained earlier). *)

val pending : t -> int
(** Number of queued events (diagnostics). *)

(** {1 Time helpers} *)

val us : int -> int
val ms : int -> int
val sec : int -> int

val to_ms : int -> float
val to_sec : int -> float
