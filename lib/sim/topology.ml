type t = {
  name : string;
  regions : string array;
  node_region : int array;
  region_latency_us : int array array;
}

let n_nodes t = Array.length t.node_region
let n_regions t = Array.length t.regions
let region_of t node = t.node_region.(node)
let region_name t node = t.regions.(t.node_region.(node))
let name_of_region t r = t.regions.(r)

let latency t a b =
  t.region_latency_us.(t.node_region.(a)).(t.node_region.(b))

let nodes_in_region t r =
  let acc = ref [] in
  for i = Array.length t.node_region - 1 downto 0 do
    if t.node_region.(i) = r then acc := i :: !acc
  done;
  !acc

let validate t =
  let nr = Array.length t.regions in
  if Array.length t.region_latency_us <> nr then
    invalid_arg "Topology: latency matrix row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> nr then
        invalid_arg "Topology: latency matrix column count mismatch")
    t.region_latency_us;
  for i = 0 to nr - 1 do
    for j = 0 to nr - 1 do
      if t.region_latency_us.(i).(j) <> t.region_latency_us.(j).(i) then
        invalid_arg "Topology: latency matrix must be symmetric";
      if t.region_latency_us.(i).(j) < 0 then
        invalid_arg "Topology: negative latency"
    done
  done;
  Array.iter
    (fun r ->
      if r < 0 || r >= nr then invalid_arg "Topology: node region out of range")
    t.node_region;
  t

let custom ~name ~regions ~node_region ~region_latency_us =
  validate { name; regions; node_region; region_latency_us }

let ms x = x * 1_000

let round_robin n_regions n = Array.init n (fun i -> i mod n_regions)

(* One-way latencies. Intra-region is 500 µs (same-city DC network). *)
let china_regions = [| "Zhangjiakou"; "Chengdu"; "Shenzhen"; "Beijing"; "Shanghai" |]

let china_matrix =
  [|
    (*               ZJK       CD        SZ        BJ        SH   *)
    [| 500;      ms 30;    ms 35;    ms 5;     ms 15 |];
    [| ms 30;    500;      ms 25;    ms 28;    ms 22 |];
    [| ms 35;    ms 25;    500;      ms 32;    ms 18 |];
    [| ms 5;     ms 28;    ms 32;    500;      ms 14 |];
    [| ms 15;    ms 22;    ms 18;    ms 14;    500 |];
  |]

let china3 () =
  validate
    {
      name = "china3";
      regions = Array.sub china_regions 0 3;
      node_region = [| 0; 1; 2 |];
      region_latency_us =
        Array.init 3 (fun i -> Array.sub china_matrix.(i) 0 3);
    }

let china n =
  if n <= 0 then invalid_arg "Topology.china: need at least one node";
  validate
    {
      name = Printf.sprintf "china%d" n;
      regions = china_regions;
      node_region = round_robin 5 n;
      region_latency_us = china_matrix;
    }

let worldwide_regions =
  [| "London"; "Singapore"; "Tokyo"; "SiliconValley"; "Virginia" |]

let worldwide_matrix =
  [|
    (*               LON       SGP       TYO       SV        VA   *)
    [| 250;      ms 85;    ms 110;   ms 70;    ms 38 |];
    [| ms 85;    250;      ms 35;    ms 85;    ms 110 |];
    [| ms 110;   ms 35;    250;      ms 55;    ms 75 |];
    [| ms 70;    ms 85;    ms 55;    250;      ms 30 |];
    [| ms 38;    ms 110;   ms 75;    ms 30;    250 |];
  |]

let worldwide n =
  if n <= 0 then invalid_arg "Topology.worldwide: need at least one node";
  validate
    {
      name = Printf.sprintf "worldwide%d" n;
      regions = worldwide_regions;
      node_region = round_robin 5 n;
      region_latency_us = worldwide_matrix;
    }

let single_region n =
  if n <= 0 then invalid_arg "Topology.single_region: need at least one node";
  validate
    {
      name = Printf.sprintf "local%d" n;
      regions = [| "local" |];
      node_region = Array.make n 0;
      region_latency_us = [| [| 200 |] |];
    }
