type t = {
  mutable now : int;
  events : Gg_obs.Obs.Counter.t;
  obs : Gg_obs.Obs.t;
  queue : (unit -> unit) Event_queue.t;
}

let create ?obs () =
  let obs = match obs with Some o -> o | None -> Gg_obs.Obs.create () in
  let t =
    {
      now = 0;
      events = Gg_obs.Obs.counter obs "sim.events";
      obs;
      queue = Event_queue.create ();
    }
  in
  Gg_obs.Obs.set_clock obs (fun () -> t.now);
  t

let now t = t.now
let events t = Gg_obs.Obs.Counter.value t.events
let obs t = t.obs

let schedule t ~after f =
  let after = max 0 after in
  Event_queue.push t.queue ~time:(t.now + after) f

let schedule_at t time f =
  Event_queue.push t.queue ~time:(max time t.now) f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.now <- max t.now time;
    Gg_obs.Obs.Counter.incr t.events;
    f ();
    true

let run t = while step t do () done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= limit -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if t.now < limit then t.now <- limit

let pending t = Event_queue.length t.queue

let us x = x
let ms x = x * 1_000
let sec x = x * 1_000_000
let to_ms x = float_of_int x /. 1_000.0
let to_sec x = float_of_int x /. 1_000_000.0
