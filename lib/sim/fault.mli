(** Declarative fault-injection timelines.

    A fault schedule is a list of timestamped actions — node crashes and
    recoveries plus mid-run changes to the network's loss / duplication /
    reorder / jitter knobs. {!install} arms the whole schedule on the
    simulation up front, replacing the ad-hoc [Net.set_down] calls the
    fixed experiments used. The chaos checker ({!module:Gg_check})
    derives schedules from a seed and shrinks them toward minimal
    failing reproducers, so events must be plain data: printable,
    comparable, and re-installable on a fresh simulation. *)

type action =
  | Crash of int  (** take a node down (network and, via hook, service) *)
  | Recover of int  (** bring a node back *)
  | Loss of float  (** set the per-message drop probability *)
  | Dup of float  (** set the duplication probability *)
  | Reorder of float  (** set the reorder probability *)
  | Jitter of float  (** set the jitter fraction (spikes) *)
  | Corrupt of float  (** set the binary-frame corruption probability *)
  | Skew_step of { node : int; delta_us : int }
      (** skew burst: step a node's clock offset ({!Clock.inject_step}
          via the [on_skew] hook); forces fast-path mispredictions *)

type event = { at_ms : int; action : action }

val install :
  Net.t ->
  ?on_crash:(int -> unit) ->
  ?on_recover:(int -> unit) ->
  ?on_skew:(int -> delta_us:int -> unit) ->
  event list ->
  unit
(** Schedule every event at its absolute simulated time. [on_crash] /
    [on_recover] default to plain [Net.set_down]; a full-cluster caller
    passes [Cluster.crash] / [Cluster.recover] so membership changes and
    state transfer run too. [on_skew] (default: no-op) receives
    [Skew_step] actions — a cluster wires it to its {!Clock}. Knob
    actions apply directly to the network. Each application emits a
    ["fault"]-category trace event when tracing is enabled. *)

val event_to_string : event -> string
(** E.g. ["crash:2@350ms"] — the reproducer-line format. *)

val schedule_to_string : event list -> string
(** Comma-joined {!event_to_string}, ["-"] for the empty schedule. *)

val action_to_string : action -> string
