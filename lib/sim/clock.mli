(** Bounded-skew simulated clocks plus the arrival predictors built on
    them (the eocc fast path's watermark machinery, DESIGN.md §14).

    Each node owns a local clock [read = sim_time + offset(node, t)]
    whose offset is a per-node base error plus linear drift, drawn
    deterministically from the seed and clamped to a configured bound —
    the guarantee an external time service (NTP/PTP) provides. An
    optional sync period models NTP-style discipline: drift accumulation
    resets every period, so only the base error and one period's wander
    remain. Skew-burst fault schedules inject additional steps at run
    time ({!inject_step}); the clamp still holds, so the bound is an
    invariant, not a typical value.

    The same instance carries two receiver-side estimators the fast path
    needs, both updated only from the simulation thread (deterministic
    at any host parallelism):
    - a one-way delay EWMA per directed region pair, seeded from the
      topology matrix and fed with observed [arrival - stamp] samples;
    - a per-(receiver, sender) timestamp high-water mark — the
      watermark — monotone per sender because commit timestamps are
      monotone at the sender. *)

type t

val create :
  seed:int ->
  topology:Topology.t ->
  bound_us:int ->
  ?sync_period_us:int ->
  unit ->
  t
(** [bound_us = 0] gives perfectly synchronized clocks (every read is
    sim time); [sync_period_us = 0] (default) disables sync pulses. *)

val bound_us : t -> int

val offset_us : t -> node:int -> at:int -> int
(** Clock error of [node] at sim time [at]; always in
    [[-bound_us, bound_us]]. *)

val read : t -> node:int -> at:int -> int
(** The node's local clock: [at + offset_us]. *)

val inject_step : t -> node:int -> delta_us:int -> unit
(** Skew burst: shift the node's offset by [delta_us] from now on (the
    total offset stays clamped to the bound). Fault schedules use this
    to force watermark mispredictions. *)

(** {1 One-way delay estimator} *)

val owd_us : t -> src:int -> dst:int -> int
(** Current one-way delay estimate for the [src -> dst] region pair. *)

val observe_delay : t -> src:int -> dst:int -> sample_us:int -> unit
(** Feed an observed [arrival - stamp] delay sample (clamped to >= 0).
    The sample mixes true network delay with the sender's clock error;
    consumers bound that error separately via {!bound_us}. *)

(** {1 Per-sender watermark} *)

val note_stamp : t -> src:int -> dst:int -> stamp:int -> at:int -> unit
(** Record a sender timestamp observed at sim time [at]. The watermark
    is monotone per sender: stale (reordered / duplicated) deliveries
    never move it backwards. *)

val hwm : t -> src:int -> dst:int -> (int * int) option
(** [(stamp, arrival)] of the sender's highest stamp seen, if any. *)

val deadline :
  t -> src:int -> dst:int -> boundary_us:int -> margin_us:int -> int
(** Predicted-arrival watermark: the sim time by which everything [src]
    stamped before [boundary_us] (on {e its} clock) should have arrived
    here. Extrapolated from the high-water mark when there is one — the
    sender-clock terms cancel, making the prediction skew-independent —
    otherwise the worst case over the skew bound plus the delay
    estimate. [margin_us] absorbs jitter and estimator error; a
    speculative seal that fires at this deadline and is later
    contradicted by a straggler is a misprediction, handled by the
    node's synchronous fallback. *)
