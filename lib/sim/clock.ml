module Rng = Gg_util.Rng

(* Scale factor for the fixed-point EWMA state of the one-way delay
   estimator: keeps sub-µs precision without floats (float arithmetic
   would still be deterministic, but integer state keeps the estimator
   trivially byte-stable across platforms). *)
let ewma_scale = 16

type t = {
  topology : Topology.t;
  bound_us : int;
  sync_period_us : int;
  base_us : int array;  (* per-node fixed offset component *)
  drift_ppm : int array;  (* per-node rate error, parts per million *)
  step_us : int array;  (* injected skew-burst steps (fault schedules) *)
  owd_scaled : int array array;
      (* [src_region].[dst_region] one-way delay EWMA, x ewma_scale *)
  hwm_stamp : int array array;  (* [dst].[src] highest sender stamp seen *)
  hwm_at : int array array;  (* [dst].[src] sim arrival time of that stamp *)
}

(* Drift magnitude: commodity crystal oscillators sit in the tens of ppm;
   NTP-disciplined clocks well under 100. 200 ppm is a pessimistic cap —
   2 ms of wander over a 10 s run when sync pulses are off. *)
let max_drift_ppm = 200

let create ~seed ~topology ~bound_us ?(sync_period_us = 0) () =
  let n = Topology.n_nodes topology in
  let r = Topology.n_regions topology in
  let rng = Rng.create (0x10cc + (seed * 0x9e3779b9)) in
  let half = max 0 (bound_us / 2) in
  let base_us =
    Array.init n (fun _ -> if half = 0 then 0 else Rng.int_in rng (-half) half)
  in
  let drift_ppm =
    Array.init n (fun _ ->
        if bound_us = 0 then 0
        else Rng.int_in rng (-max_drift_ppm) max_drift_ppm)
  in
  let owd_scaled =
    Array.init r (fun src ->
        Array.init r (fun dst ->
            topology.Topology.region_latency_us.(src).(dst) * ewma_scale))
  in
  {
    topology;
    bound_us = max 0 bound_us;
    sync_period_us = max 0 sync_period_us;
    base_us;
    drift_ppm;
    step_us = Array.make n 0;
    owd_scaled;
    hwm_stamp = Array.make_matrix n n min_int;
    hwm_at = Array.make_matrix n n min_int;
  }

let bound_us t = t.bound_us

let offset_us t ~node ~at =
  if t.bound_us = 0 then 0
  else begin
    (* Drift accumulates from the last sync pulse (or from t=0 when the
       NTP-style discipline is off); the total offset is clamped to the
       configured bound — the contract an external time service would
       enforce. *)
    let tau =
      if t.sync_period_us > 0 then at mod t.sync_period_us else max 0 at
    in
    let o =
      t.base_us.(node) + (t.drift_ppm.(node) * tau / 1_000_000) + t.step_us.(node)
    in
    if o > t.bound_us then t.bound_us
    else if o < -t.bound_us then -t.bound_us
    else o
  end

let read t ~node ~at = at + offset_us t ~node ~at

let inject_step t ~node ~delta_us =
  t.step_us.(node) <- t.step_us.(node) + delta_us

(* --- one-way delay estimator (per directed region pair) --- *)

let owd_us t ~src ~dst =
  let rs = Topology.region_of t.topology src in
  let rd = Topology.region_of t.topology dst in
  t.owd_scaled.(rs).(rd) / ewma_scale

let observe_delay t ~src ~dst ~sample_us =
  let rs = Topology.region_of t.topology src in
  let rd = Topology.region_of t.topology dst in
  let s = max 0 sample_us * ewma_scale in
  let e = t.owd_scaled.(rs).(rd) in
  (* EWMA with alpha = 1/8: converges in a few tens of samples, damps
     per-message jitter. *)
  t.owd_scaled.(rs).(rd) <- e + ((s - e) / 8)

(* --- per-sender watermark --- *)

let note_stamp t ~src ~dst ~stamp ~at =
  (* Monotonic per sender: csn timestamps are monotone at the sender, so
     a lower stamp is a reordered or duplicated delivery and never moves
     the watermark backwards. *)
  if stamp > t.hwm_stamp.(dst).(src) then begin
    t.hwm_stamp.(dst).(src) <- stamp;
    t.hwm_at.(dst).(src) <- at
  end

let hwm t ~src ~dst =
  let s = t.hwm_stamp.(dst).(src) in
  if s = min_int then None else Some (s, t.hwm_at.(dst).(src))

let deadline t ~src ~dst ~boundary_us ~margin_us =
  match hwm t ~src ~dst with
  | Some (s, a) ->
    (* The sender's clock read [s] when the message that arrived here at
       [a] was stamped. It advances at ~1x real time, so it passes the
       epoch boundary (and seals) about [boundary - s] after that send —
       and anything it stamped before the boundary rides the same pipe
       the watermark message did, landing ~(boundary - s) after [a]. The
       sender-clock terms cancel, so the deadline is skew-independent;
       [margin_us] absorbs jitter and estimator error. *)
    a + max 0 (boundary_us - s) + margin_us
  | None ->
    (* No traffic from this sender yet: fall back to the worst case over
       the skew bound plus the topology-seeded delay estimate. *)
    boundary_us + t.bound_us + owd_us t ~src ~dst + margin_us
