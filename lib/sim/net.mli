(** Simulated geo-distributed network.

    Point-to-point messages with topology-derived one-way latency,
    optional jitter, loss, duplication, reordering, a shared egress
    bandwidth pipe per node (the paper's cross-region links are ~100
    Mbps), per-node byte accounting (for WAN-traffic experiments) and
    node up/down state (for failure experiments).

    A message is a closure run at the destination at delivery time; the
    payload lives in the closure. Duplication delivers the closure twice —
    receivers must tolerate it (which is exactly what the paper's
    idempotent CRDT merge provides). *)

type t

val create :
  Sim.t ->
  rng:Gg_util.Rng.t ->
  topology:Topology.t ->
  ?jitter_frac:float ->
  ?loss:float ->
  ?dup:float ->
  ?reorder:float ->
  ?bandwidth_bps:int ->
  unit ->
  t
(** [create sim ~rng ~topology ()] builds a network. [jitter_frac] is the
    mean extra delay as a fraction of base latency (exponential, default
    0.05); [loss] the per-message drop probability (default 0); [dup] the
    per-message duplication probability (default 0); [reorder] the
    probability of adding a fat delay that reorders the message (default
    0); [bandwidth_bps] the per-node egress bandwidth (default
    100_000_000, i.e. the paper's 100 Mbps links). *)

val sim : t -> Sim.t
val topology : t -> Topology.t
val n_nodes : t -> int

val send : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
(** Queue a message. Silently dropped if either endpoint is down at send
    or delivery time, or if it loses the loss coin-flip. [src = dst]
    delivers with loopback latency and no WAN accounting. *)

val broadcast : t -> src:int -> bytes:int -> (int -> unit -> unit) -> unit
(** [broadcast t ~src ~bytes f] sends to every node except [src]; the
    per-destination closure is [f dst]. *)

(** {1 Failures} *)

val set_down : t -> int -> bool -> unit
(** Mark a node crashed ([true]) or recovered ([false]). While down it
    neither sends nor receives. *)

val is_down : t -> int -> bool

(** {1 Runtime fault knobs}

    The loss/dup/reorder/jitter probabilities given to {!create} can be
    changed mid-run — the chaos checker's fault timelines use this for
    loss bursts and jitter spikes ({!Fault}). Values are clamped to
    their valid range. Changing a probability never consumes randomness,
    so a fixed seed plus a fixed change schedule stays deterministic. *)

val set_loss : t -> float -> unit
val set_dup : t -> float -> unit
val set_reorder : t -> float -> unit
val set_jitter_frac : t -> float -> unit

val set_corrupt_frac : t -> float -> unit
(** Probability that a binary frame is delivered with a mangled payload.
    The transport carries closures, so it cannot corrupt payloads
    itself; senders of binary frames consult {!draw_corrupt} per
    destination and enqueue a truncated copy on [true]. *)

val loss : t -> float
val dup : t -> float
val reorder : t -> float
val jitter_frac : t -> float
val corrupt_frac : t -> float

val draw_corrupt : t -> bool
(** One corruption coin-flip (shared rng; no draw when the probability
    is zero, so enabling the knob never perturbs other seeds). Counts
    into ["net.corrupted.messages"] when true. *)

(** {1 Accounting}

    Counters are registered in the simulation's {!Gg_obs.Obs.t} registry
    (["net.sent.messages"], ["net.sent.bytes"], ["net.wan.bytes"],
    ["net.dropped.messages"]), so {!Gg_obs.Obs.reset_all} zeroes them
    together with everything else; loss/up/down transitions additionally
    emit ["net"]-category trace events when tracing is on. *)

val sent_messages : t -> int
val sent_bytes : t -> int
(** All traffic including intra-region. *)

val wan_bytes : t -> int
(** Cross-region traffic only (paper Table 3 counts WAN). *)

val wan_bytes_from : t -> int -> int
(** Cross-region bytes originated by a node. *)

val wan_pair_bytes : t -> src_region:int -> dst_region:int -> int
(** Cross-region bytes for one directed region pair. Each pair has a
    registry counter named ["net.wan.bytes.<SrcRegion>><DstRegion>"],
    registered eagerly at {!create} in row-major region order so the
    registry layout depends only on the topology (fig 11 currency). *)

val reset_accounting : t -> unit
(** Zero the counters (e.g. after warm-up). *)
