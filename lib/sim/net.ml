module Obs = Gg_obs.Obs

type t = {
  sim : Sim.t;
  obs : Obs.t;
  rng : Gg_util.Rng.t;
  topology : Topology.t;
  mutable jitter_frac : float;
  mutable loss : float;
  mutable dup : float;
  mutable reorder : float;
  mutable corrupt : float;
  bandwidth_bps : int;
  down : bool array;
  egress_free : int array; (* absolute time each node's egress pipe frees up *)
  sent_messages : Obs.Counter.t;
  sent_bytes : Obs.Counter.t;
  wan_bytes : Obs.Counter.t;
  dropped : Obs.Counter.t;
  corrupted : Obs.Counter.t;
  wan_bytes_from : int array;
  wan_pair : Obs.Counter.t array array;
      (* [src_region].(dst_region) WAN bytes; diagonal entries are
         unregistered dummies (intra-region traffic is not WAN) *)
}

let create sim ~rng ~topology ?(jitter_frac = 0.05) ?(loss = 0.0) ?(dup = 0.0)
    ?(reorder = 0.0) ?(bandwidth_bps = 100_000_000) () =
  let n = Topology.n_nodes topology in
  let obs = Sim.obs sim in
  (* Every cross-region pair is registered eagerly, in row-major region
     order, so the counter registry's order (and thus every snapshot
     line) is a function of the topology alone, never of which pairs
     happened to see traffic first. *)
  let nr = Topology.n_regions topology in
  let wan_pair =
    Array.init nr (fun a ->
        Array.init nr (fun b ->
            let name =
              Printf.sprintf "net.wan.bytes.%s>%s"
                (Topology.name_of_region topology a)
                (Topology.name_of_region topology b)
            in
            if a = b then Obs.Counter.make name else Obs.counter obs name))
  in
  let t =
    {
      sim;
      obs;
      rng;
      topology;
      jitter_frac;
      loss;
      dup;
      reorder;
      corrupt = 0.0;
      bandwidth_bps;
      down = Array.make n false;
      egress_free = Array.make n 0;
      sent_messages = Obs.counter obs "net.sent.messages";
      sent_bytes = Obs.counter obs "net.sent.bytes";
      wan_bytes = Obs.counter obs "net.wan.bytes";
      dropped = Obs.counter obs "net.dropped.messages";
      corrupted = Obs.counter obs "net.corrupted.messages";
      wan_bytes_from = Array.make n 0;
      wan_pair;
    }
  in
  Obs.on_reset obs (fun () ->
      Array.fill t.wan_bytes_from 0 (Array.length t.wan_bytes_from) 0);
  t

let sim t = t.sim
let topology t = t.topology
let n_nodes t = Topology.n_nodes t.topology

let set_down t node v =
  if t.down.(node) <> v then
    Obs.emit t.obs ~node ~cat:"net" (if v then "down" else "up");
  t.down.(node) <- v

let is_down t node = t.down.(node)

(* Runtime fault knobs: the chaos checker's fault timelines flip these
   mid-run (loss bursts, jitter spikes). Draw order from the shared rng
   is unaffected — only probabilities change — so a schedule of knob
   changes stays deterministic for a fixed seed. *)
let set_loss t p = t.loss <- Float.max 0.0 (Float.min 1.0 p)
let set_dup t p = t.dup <- Float.max 0.0 (Float.min 1.0 p)
let set_reorder t p = t.reorder <- Float.max 0.0 (Float.min 1.0 p)
let set_jitter_frac t f = t.jitter_frac <- Float.max 0.0 f
let set_corrupt_frac t p = t.corrupt <- Float.max 0.0 (Float.min 1.0 p)
let loss t = t.loss
let dup t = t.dup
let reorder t = t.reorder
let jitter_frac t = t.jitter_frac
let corrupt_frac t = t.corrupt

(* Payload corruption is the one fault the transport cannot model by
   itself: the payload is an opaque closure. Senders of binary frames
   (batch wire bytes) call [draw_corrupt] per destination and, on true,
   enqueue a mangled copy instead. Zero probability consumes no
   randomness, like every other knob. *)
let draw_corrupt t =
  t.corrupt > 0.0 && Gg_util.Rng.chance t.rng t.corrupt
  && begin
       Obs.Counter.incr t.corrupted;
       true
     end

let delay t ~src ~dst ~bytes =
  let base = Topology.latency t.topology src dst in
  let jitter =
    if t.jitter_frac <= 0.0 then 0
    else
      int_of_float
        (Gg_util.Rng.exponential t.rng (t.jitter_frac *. float_of_int base))
  in
  (* Egress serialization: the pipe is shared, so messages queue. *)
  let tx_us = bytes * 8 * 1_000_000 / t.bandwidth_bps in
  let now = Sim.now t.sim in
  let start = max now t.egress_free.(src) in
  t.egress_free.(src) <- start + tx_us;
  let reorder_extra =
    if t.reorder > 0.0 && Gg_util.Rng.chance t.rng t.reorder then
      Gg_util.Rng.int_in t.rng base (3 * base)
    else 0
  in
  start - now + tx_us + base + jitter + reorder_extra

let deliver t ~dst ~after k =
  Sim.schedule t.sim ~after (fun () -> if not t.down.(dst) then k ())

let send t ~src ~dst ~bytes k =
  if not (t.down.(src) || t.down.(dst)) then begin
    Obs.Counter.incr t.sent_messages;
    Obs.Counter.add t.sent_bytes bytes;
    let sr = Topology.region_of t.topology src
    and dr = Topology.region_of t.topology dst in
    if sr <> dr then begin
      Obs.Counter.add t.wan_bytes bytes;
      Obs.Counter.add t.wan_pair.(sr).(dr) bytes;
      t.wan_bytes_from.(src) <- t.wan_bytes_from.(src) + bytes
    end;
    if t.loss > 0.0 && Gg_util.Rng.chance t.rng t.loss then begin
      Obs.Counter.incr t.dropped;
      if Obs.tracing t.obs then
        Obs.emit t.obs ~node:src ~cat:"net" "drop"
          ~detail:(Printf.sprintf "dst=%d bytes=%d" dst bytes)
    end
    else begin
      let after = delay t ~src ~dst ~bytes in
      deliver t ~dst ~after k;
      if t.dup > 0.0 && Gg_util.Rng.chance t.rng t.dup then begin
        let extra = delay t ~src ~dst ~bytes in
        deliver t ~dst ~after:(max after extra + 1) k
      end
    end
  end

let broadcast t ~src ~bytes f =
  for dst = 0 to n_nodes t - 1 do
    if dst <> src then send t ~src ~dst ~bytes (f dst)
  done

let sent_messages t = Obs.Counter.value t.sent_messages
let sent_bytes t = Obs.Counter.value t.sent_bytes
let wan_bytes t = Obs.Counter.value t.wan_bytes
let wan_bytes_from t node = t.wan_bytes_from.(node)

let wan_pair_bytes t ~src_region ~dst_region =
  Obs.Counter.value t.wan_pair.(src_region).(dst_region)

let reset_accounting t =
  Obs.Counter.reset t.sent_messages;
  Obs.Counter.reset t.sent_bytes;
  Obs.Counter.reset t.wan_bytes;
  Obs.Counter.reset t.dropped;
  Array.iter (Array.iter Obs.Counter.reset) t.wan_pair;
  Array.fill t.wan_bytes_from 0 (Array.length t.wan_bytes_from) 0
