(** Geo-distributed cluster topologies with one-way latency matrices.

    Latencies are one-way microsecond figures between regions, modelled on
    the paper's two testbeds: a 3-region China cluster (Zhangjiakou /
    Chengdu / Shenzhen, one-way delays around 25–35 ms) and a worldwide
    5-DC cluster (London, Singapore, Tokyo, Silicon Valley, Virginia). *)

type t = {
  name : string;
  regions : string array;
  node_region : int array;  (** region index of each node *)
  region_latency_us : int array array;
      (** one-way latency between regions; the diagonal is intra-region *)
}

val n_nodes : t -> int
val n_regions : t -> int

val region_of : t -> int -> int
(** Region index of a node. *)

val region_name : t -> int -> string
(** Region name of a node. *)

val name_of_region : t -> int -> string
(** Name of a region by region index (not node id). *)

val latency : t -> int -> int -> int
(** One-way node-to-node latency in µs. *)

val nodes_in_region : t -> int -> int list
(** Nodes placed in the given region, ascending. *)

val china3 : unit -> t
(** The paper's main testbed: one node in each of Zhangjiakou, Chengdu,
    Shenzhen. *)

val china : int -> t
(** [china n] spreads [n] nodes round-robin over five Chinese regions
    (the §7.6 scalability setting, 3–15 nodes). *)

val worldwide : int -> t
(** [worldwide n] spreads [n] nodes round-robin over the five worldwide
    data centers (§7.6, 3–25 nodes). *)

val single_region : int -> t
(** [single_region n]: all nodes co-located (LAN); useful for tests. *)

val custom :
  name:string ->
  regions:string array ->
  node_region:int array ->
  region_latency_us:int array array ->
  t
(** Validated constructor; raises [Invalid_argument] on shape or symmetry
    errors. *)
