(* Greedy delta-debugging over the scenario record: each transformation
   is kept only if the re-run still violates an invariant (not
   necessarily the same one — any failure is a valid reproducer). Every
   re-run is a full deterministic simulation, so the budget is small and
   the cheap transformation (truncating the duration) runs first. *)

let budget = 24

let minimize ~run (s : Scenario.t) (v : Oracle.violation) =
  let runs = ref 0 in
  let best = ref s in
  let best_v = ref v in
  let attempt (s' : Scenario.t) =
    !runs < budget && s' <> !best
    && begin
         incr runs;
         match run s' with
         | Some v' ->
           best := s';
           best_v := v';
           true
         | None -> false
       end
  in
  (* 1. Truncate the run to just past the violating epoch; faults
     scheduled after the new horizon can no longer matter. *)
  (if !best_v.Oracle.epoch >= 0 then
     let dur = ((!best_v.Oracle.epoch + 20) * s.Scenario.epoch_ms) + 400 in
     if dur < s.Scenario.duration_ms then
       ignore
         (attempt
            {
              !best with
              Scenario.duration_ms = dur;
              faults =
                List.filter
                  (fun e -> e.Gg_sim.Fault.at_ms < dur)
                  s.Scenario.faults;
            }));
  (* 2. Drop fault events one by one until no single removal keeps the
     failure alive. *)
  let rec drop_events () =
    let evs = !best.Scenario.faults in
    let dropped =
      List.exists
        (fun i ->
          attempt
            {
              !best with
              Scenario.faults = List.filteri (fun j _ -> j <> i) evs;
            })
        (List.init (List.length evs) Fun.id)
    in
    if dropped && !runs < budget then drop_events ()
  in
  drop_events ();
  (* 3. Zero the baseline network fault rates. *)
  List.iter
    (fun f -> ignore (attempt (f !best)))
    [
      (fun s -> { s with Scenario.loss = 0.0 });
      (fun s -> { s with Scenario.dup = 0.0 });
      (fun s -> { s with Scenario.reorder = 0.0 });
      (fun s -> { s with Scenario.jitter = 0.0 });
      (fun s -> { s with Scenario.corrupt_frac = 0.0 });
    ];
  (* 4. Thin the workload. *)
  let rec fewer_connections () =
    if !best.Scenario.connections > 1 then
      if
        attempt
          { !best with Scenario.connections = !best.Scenario.connections / 2 }
      then fewer_connections ()
  in
  fewer_connections ();
  (!best, !best_v, !runs)
