module Rng = Gg_util.Rng
module Params = Geogauss.Params
module Fault = Gg_sim.Fault
module Arrival = Gg_workload.Arrival

type workload = Ycsb_mc | Ycsb_hc | Tpcc | Hotkey | Social | Scan | Secidx

let workload_to_string = function
  | Ycsb_mc -> "ycsb-mc"
  | Ycsb_hc -> "ycsb-hc"
  | Tpcc -> "tpcc"
  | Hotkey -> "hotkey"
  | Social -> "social"
  | Scan -> "scan"
  | Secidx -> "secidx"

type t = {
  seed : int;
  nodes : int;
  workload : workload;
  variant : Params.variant;
  isolation : Params.isolation;
  ft : Params.ft_mode;
  epoch_ms : int;
  duration_ms : int;
  connections : int;  (* per node *)
  loss : float;
  dup : float;
  reorder : float;
  jitter : float;
  faults : Fault.event list;
  corruption : (int * int) option;
  merge_jobs : int;
      (* host domains for the intra-node merge; 1 = sequential. Not
         drawn from the seed (it must not perturb existing
         reproducers) — sweeps pin it via Checker.check ?merge_jobs. *)
  partitioning : Params.partitioning;
      (* replica-group map for partial replication. Like merge_jobs,
         never drawn from the seed — pinned via Checker.check
         ?partitioning / with_partitioning. *)
  corrupt_frac : float;
      (* probability a binary batch frame is truncated in flight.
         Pinned, not drawn: probability 0 means the network takes no
         corruption coin-flips, so existing seeds are unperturbed. *)
  merge_level : Params.merge_level;
      (* conflict granularity of the epoch merge. Like merge_jobs,
         never drawn from the seed — pinned via Checker.check
         ?merge_level / with_merge_level. *)
  arrival : Gg_workload.Arrival.t option;
      (* open-loop arrival curve; None = the closed loop. Drawn LAST so
         the coin-flips cannot perturb any knob above. *)
  fastpath : bool;
      (* clock-assisted speculative sealing (the eocc engine). Like
         merge_jobs, never drawn from the seed — pinned via
         with_fastpath, so existing reproducer lines replay unchanged. *)
  clock_skew_ms : int;
      (* bounded clock-skew budget for fastpath runs. Pinned alongside
         fastpath; 0 keeps perfectly synchronized clocks. *)
}

(* Crash/recover timing must respect the protocol's own clocks: the
   failure detector needs ~500 ms of EOF silence before it removes a
   node, and a recovery only works once that removal has committed —
   recovering earlier leaves the node in the view but inactive, and its
   (deduplicated) add proposal is a no-op. After the recover call the
   run needs roughly the re-join margin (~600 ms) plus the state
   transfer before the node contributes again. *)
let crash_detect_ms = 750
let rejoin_ms = 1_000

let gen_faults rng ~nodes ~duration_ms =
  let events = ref [] in
  let push at_ms action = events := { Fault.at_ms; action } :: !events in
  (* At most one node down at a time: a second concurrent crash of a
     3-node cluster would lose the Raft majority and stall by design. *)
  let n_cycles =
    if Rng.chance rng 0.55 then 1 + (if Rng.chance rng 0.25 then 1 else 0)
    else 0
  in
  let horizon = ref 200 in
  for _ = 1 to n_cycles do
    let crash_at = !horizon + Rng.int_in rng 50 400 in
    let recover_at = crash_at + crash_detect_ms + Rng.int_in rng 0 250 in
    if recover_at + rejoin_ms < duration_ms then begin
      let victim = Rng.int rng nodes in
      push crash_at (Fault.Crash victim);
      (* Sometimes the node never comes back: survivors must still
         converge among themselves. *)
      if Rng.chance rng 0.75 then begin
        push recover_at (Fault.Recover victim);
        horizon := recover_at + rejoin_ms
      end
      else horizon := duration_ms
    end
  done;
  (* Network-knob bursts: a loss or jitter spike that later subsides.
     Sustained loss is survivable thanks to the stall-repair path, but
     bursts keep most of the run productive. *)
  let n_bursts = Rng.int rng 3 in
  for _ = 1 to n_bursts do
    let at = Rng.int_in rng 100 (max 200 (duration_ms - 400)) in
    let until = at + Rng.int_in rng 100 300 in
    match Rng.int rng 3 with
    | 0 ->
      push at (Fault.Loss (0.05 +. Rng.float rng 0.2));
      push until (Fault.Loss 0.0)
    | 1 ->
      push at (Fault.Jitter (0.5 +. Rng.float rng 1.5));
      push until (Fault.Jitter 0.05)
    | _ ->
      push at (Fault.Dup (0.1 +. Rng.float rng 0.3));
      push until (Fault.Dup 0.0)
  done;
  List.stable_sort (fun a b -> compare a.Fault.at_ms b.Fault.at_ms) !events

(* Open-loop curves sized for checker runs: peaks a small cluster can
   mostly (but not always) serve, periods/windows that fit inside a
   1-5 s scenario so the curve actually bends during the run. *)
let draw_arrival rng ~duration_ms =
  let peak_tps = float_of_int (Rng.int_in rng 200 800) in
  let shape =
    match Rng.int rng 3 with
    | 0 -> Arrival.Constant
    | 1 ->
      Arrival.Diurnal
        {
          period_ms = Rng.int_in rng 400 1_500;
          trough = 0.1 +. Rng.float rng 0.5;
        }
    | _ ->
      Arrival.Flash
        {
          at_ms = Rng.int_in rng 200 (max 300 (duration_ms / 2));
          dur_ms = Rng.int_in rng 200 600;
          mult = 3.0 +. Rng.float rng 7.0;
        }
  in
  Arrival.make ~shape ~peak_tps

let generate ?variant ?isolation ?ft ~fast seed =
  let rng = Rng.create (0x5eed + (seed * 0x9e3779b9)) in
  let variant =
    match variant with
    | Some v -> v
    | None -> (
      match Rng.int rng 10 with
      | 0 | 1 -> Params.Sync_exec
      | 2 -> Params.Async_merge
      | _ -> Params.Optimistic)
  in
  let isolation =
    match isolation with
    | Some i -> i
    | None -> (
      match Rng.int rng 4 with
      | 0 -> Params.RC
      | 1 -> Params.RR
      | 2 -> Params.SI
      | _ -> Params.SSI)
  in
  let ft =
    match ft with
    | Some f -> f
    | None -> (
      match Rng.int rng 4 with
      | 0 -> Params.Ft_none
      | 1 -> Params.Ft_local_backup
      | 2 -> Params.Ft_remote_backup
      | _ -> Params.Ft_raft)
  in
  let nodes = if fast || Rng.chance rng 0.8 then 3 else 5 in
  let epoch_ms = [| 5; 10; 20 |].(Rng.int rng 3) in
  let duration_ms =
    if fast then 1_200 + Rng.int rng 1_400 else 2_500 + Rng.int rng 2_000
  in
  let workload =
    match Rng.int rng 8 with
    | 0 -> Ycsb_hc
    | 1 -> Tpcc
    | 2 -> Hotkey
    | 3 -> Social
    | 4 -> Scan
    | 5 -> Secidx
    | _ -> Ycsb_mc
  in
  let connections = 2 + Rng.int rng 4 in
  (* Arrival is the LAST draw of a scenario: a freshly taken coin-flip
     cannot shift any knob above it, only add the open-loop curve. *)
  let finish s =
    if Rng.chance rng 0.3 then
      { s with arrival = Some (draw_arrival rng ~duration_ms:s.duration_ms) }
    else s
  in
  finish
  @@
  match variant with
  | Params.Async_merge ->
    (* GeoG-A is coordination-free gossip: a lost update is lost forever
       (no EOFs, no epochs to repair), and a recovering node never
       catches up. Restrict its scenarios to the faults it tolerates —
       duplication, reordering, jitter — and let the checker fall back
       to the eventual-convergence oracle. *)
    {
      seed;
      nodes;
      workload;
      variant;
      isolation = Params.RC;
      ft = Params.Ft_none;
      epoch_ms;
      duration_ms;
      connections;
      loss = 0.0;
      dup = Rng.float rng 0.3;
      reorder = Rng.float rng 0.3;
      jitter = Rng.float rng 0.3;
      faults = [];
      corruption = None;
      merge_jobs = 1;
      partitioning = Params.P_none;
      corrupt_frac = 0.0;
      merge_level = Params.Row;
      arrival = None;
      fastpath = false;
      clock_skew_ms = 0;
    }
  | Params.Optimistic | Params.Sync_exec ->
    let faults = gen_faults rng ~nodes ~duration_ms in
    {
      seed;
      nodes;
      workload;
      variant;
      isolation;
      ft;
      epoch_ms;
      duration_ms;
      connections;
      loss = (if Rng.chance rng 0.5 then Rng.float rng 0.04 else 0.0);
      dup = (if Rng.chance rng 0.5 then Rng.float rng 0.2 else 0.0);
      reorder = (if Rng.chance rng 0.5 then Rng.float rng 0.2 else 0.0);
      jitter = Rng.float rng 0.2;
      faults;
      corruption = None;
      merge_jobs = 1;
      partitioning = Params.P_none;
      corrupt_frac = 0.0;
      merge_level = Params.Row;
      arrival = None;
      fastpath = false;
      clock_skew_ms = 0;
    }

(* Pin partial replication onto a drawn scenario. Two coercions keep the
   result inside what the engine supports (DESIGN.md §12, Caveats):
   recovery installs a whole-db snapshot from the nearest live donor,
   which under partial replication holds a different group's fragment —
   so crash/recover faults are scrubbed; and GeoG-A's coordination-free
   gossip has no epoch merge to scope, so it is coerced to the full
   engine. Everything else (network knobs, workload, epochs) is the
   seed's own draw. *)
let with_partitioning s mode =
  if mode = Params.P_none then s
  else
    {
      s with
      partitioning = mode;
      variant =
        (match s.variant with
        | Params.Async_merge -> Params.Optimistic
        | v -> v);
      faults =
        List.filter
          (fun e ->
            match e.Fault.action with
            | Fault.Crash _ | Fault.Recover _ -> false
            | _ -> true)
          s.faults;
    }

(* Pin column-level merge onto a drawn scenario. GeoG-A is coerced to
   the full engine, as in {!with_partitioning}: gossip re-applies whole
   row images, so there is no column kernel to exercise there (and
   {!Params.effective_merge_level} would silently fall back to Row).
   Partial replication is left alone — the effective level degrades to
   Row by design and the sweep still checks that gate. *)
let with_merge_level s level =
  if level = Params.Row then s
  else
    {
      s with
      merge_level = level;
      variant =
        (match s.variant with
        | Params.Async_merge -> Params.Optimistic
        | v -> v);
    }

(* Pin the clock-assisted fast path (engine=eocc) onto a drawn scenario.
   Like the other pins this never touches the seed's own draw stream: the
   skew-burst schedule comes from a fresh Rng salted differently from
   {!generate}'s, so existing reproducer lines replay byte-identically.
   The fast path refines the Optimistic engine, so GeoG-S / GeoG-A draws
   are coerced (same discipline as {!with_partitioning}). Bursts step one
   node's clock by up to the skew budget mid-run; {!Gg_sim.Clock} clamps
   the result to the bound, so the bounded-skew invariant survives the
   fault and the watermark fallback absorbs the surprise. *)
let with_fastpath s ~clock_skew_ms =
  let clock_skew_ms = max 0 clock_skew_ms in
  let rng = Rng.create (0x5c3a + (s.seed * 0x9e3779b9)) in
  let skew_faults =
    if clock_skew_ms = 0 then []
    else
      List.init (Rng.int rng 3) (fun _ ->
          let at_ms = Rng.int_in rng 200 (max 300 (s.duration_ms - 200)) in
          let node = Rng.int rng s.nodes in
          let magnitude_ms = Rng.int_in rng 1 (max 2 clock_skew_ms) in
          let delta_us =
            magnitude_ms * 1_000 * (if Rng.chance rng 0.5 then 1 else -1)
          in
          { Fault.at_ms; action = Fault.Skew_step { node; delta_us } })
  in
  {
    s with
    fastpath = true;
    clock_skew_ms;
    variant = Params.Optimistic;
    faults =
      List.stable_sort
        (fun a b -> compare a.Fault.at_ms b.Fault.at_ms)
        (s.faults @ skew_faults);
  }

let params s =
  {
    Params.default with
    Params.epoch_us = s.epoch_ms * 1_000;
    isolation = s.isolation;
    variant = s.variant;
    ft = s.ft;
    seed = 42 + s.seed;
    (* Faulty runs stall for up to a detection window; clients should
       re-route well before the run ends. *)
    client_retry_us = 900_000;
    partitioning = s.partitioning;
    merge_jobs = s.merge_jobs;
    (* A sharded sweep must actually shard: small checker epochs never
       reach the default record threshold. *)
    merge_par_threshold =
      (if s.merge_jobs > 1 then 0 else Params.default.Params.merge_par_threshold);
    merge_level = s.merge_level;
    fastpath = s.fastpath;
    clock_skew_us = s.clock_skew_ms * 1_000;
  }

let to_string s =
  Printf.sprintf
    "seed=%d engine=%s iso=%s ft=%s wl=%s nodes=%d epoch_ms=%d dur_ms=%d \
     conn=%d loss=%.3f dup=%.3f reorder=%.3f jitter=%.3f faults=%s%s"
    s.seed
    (Params.variant_to_string s.variant)
    (Params.isolation_to_string s.isolation)
    (Params.ft_to_string s.ft)
    (workload_to_string s.workload)
    s.nodes s.epoch_ms s.duration_ms s.connections s.loss s.dup s.reorder
    s.jitter
    (Fault.schedule_to_string s.faults)
    (match s.corruption with
    | None -> ""
    | Some (node, at_ms) -> Printf.sprintf " corrupt=%d@%dms" node at_ms)
  (* the non-default suffixes print only when set, so every existing
     reproducer line is byte-identical *)
  ^ (if s.merge_jobs = 1 then "" else Printf.sprintf " merge_jobs=%d" s.merge_jobs)
  ^ (match s.partitioning with
    | Params.P_none -> ""
    | m -> Printf.sprintf " partitioning=%s" (Params.partitioning_to_string m))
  ^ (if s.corrupt_frac = 0.0 then ""
     else Printf.sprintf " corrupt_frac=%.3f" s.corrupt_frac)
  ^ (match s.merge_level with
    | Params.Row -> ""
    | Params.Column -> " merge_level=column")
  ^ (if not s.fastpath then ""
     else Printf.sprintf " fastpath=eocc clock_skew_ms=%d" s.clock_skew_ms)
  ^ (match s.arrival with
    | None -> ""
    | Some a -> Printf.sprintf " arrival=%s" (Arrival.to_string a))
