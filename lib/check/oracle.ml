module Rng = Gg_util.Rng
module Params = Geogauss.Params
module Cluster = Geogauss.Cluster
module Node = Geogauss.Node
module Backup = Geogauss.Backup
module Partitioning = Geogauss.Partitioning
module Txn = Geogauss.Txn
module Db = Gg_storage.Db
module Table = Gg_storage.Table
module Csn = Gg_storage.Csn
module Row_header = Gg_storage.Row_header
module Writeset = Gg_crdt.Writeset
module Merge = Gg_crdt.Merge
module Meta = Gg_crdt.Meta
module Column = Gg_crdt.Column

type invariant = Convergence | Monotonicity | Durability | Aci | Isolation

let invariant_to_string = function
  | Convergence -> "convergence"
  | Monotonicity -> "monotonicity"
  | Durability -> "durability"
  | Aci -> "aci-merge"
  | Isolation -> "isolation"

type violation = {
  invariant : invariant;
  epoch : int;
  node : int;
  detail : string;
}

let violation_to_string v =
  Printf.sprintf "invariant=%s epoch=%d node=%d detail=%S"
    (invariant_to_string v.invariant)
    v.epoch v.node v.detail

type commit = {
  c_node : int;
  c_cen : int;
  c_csn : Csn.t;
  c_rows : (string * string * Writeset.op) list;  (* table, key, op *)
}

type t = {
  cluster : Cluster.t;
  variant : Params.variant;
  level : Params.merge_level;
      (* the EFFECTIVE merge level: under column-level merge, isolation
         admits several committed updaters per row (cell-granularity
         conflicts) and durability checks an update's row survived its
         epoch rather than that its csn owns the header *)
  part : Partitioning.t;
      (* under partial replication (DESIGN.md §12) replicas of different
         groups hold different fragments by design: convergence compares
         states within a group only, and durability consults the most
         advanced live member of each row's owning group *)
  mutable violations : violation list;  (* newest first *)
  digest_at : (int, (int * string) list) Hashtbl.t;  (* lsn -> digests *)
  last_lsn : int array;
  mutable commits : commit list;
  epoch_writers : (int, (string, Csn.t * Writeset.op) Hashtbl.t) Hashtbl.t;
  replay_rng : Rng.t;
}

let record t ~invariant ~epoch ~node detail =
  if List.length t.violations < 32 then
    t.violations <- { invariant; epoch; node; detail } :: t.violations

let violations t = List.rev t.violations
let first t = match List.rev t.violations with [] -> None | v :: _ -> Some v

let row_id ~table ~key = String.concat "\x00" [ table; key ]

(* --- (4) ACI merge laws on real traffic -------------------------------

   The merged outcome of an epoch must be independent of delivery order
   and duplication (Lemma 2 / Theorem 1: the per-row winner is the
   join of a semilattice). Replay the epoch's full batch set — taken
   from the backup store, which holds exactly what replicas merged —
   twice over fresh row headers: once as-is, once permuted with a random
   prefix duplicated. Identical per-row winners or the merge is not a
   CRDT. *)

let replay_winners txns =
  let winners : (string, Row_header.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ws : Writeset.t) ->
      let meta = ws.Writeset.meta in
      List.iter
        (fun (r : Writeset.record) ->
          let id = row_id ~table:r.Writeset.table ~key:(Writeset.key_str r) in
          let header =
            match Hashtbl.find_opt winners id with
            | Some h -> h
            | None ->
              let h = Row_header.create () in
              Hashtbl.replace winners id h;
              h
          in
          ignore (Merge.merge_header header ~meta))
        ws.Writeset.records)
    txns;
  winners

(* Column-mode companion law: the per-(row, column) cell winner under
   {!Column.join} must also be order- and duplication-independent. The
   join here runs over every candidate update in the batch set (the
   oracle does not re-derive the committed set — the lattice law holds
   for any subset, so candidates are the stronger check). *)
let replay_cells txns =
  let cells : (string, Column.cell option array) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (ws : Writeset.t) ->
      let meta = ws.Writeset.meta in
      List.iter
        (fun (r : Writeset.record) ->
          if r.Writeset.op = Writeset.Update then begin
            let id = row_id ~table:r.Writeset.table ~key:(Writeset.key_str r) in
            let n = Array.length r.Writeset.data in
            let arr =
              match Hashtbl.find_opt cells id with
              | Some a when Array.length a >= n -> a
              | Some a ->
                let a' = Array.make n None in
                Array.blit a 0 a' 0 (Array.length a);
                Hashtbl.replace cells id a';
                a'
              | None ->
                let a = Array.make n None in
                Hashtbl.replace cells id a;
                a
            in
            Array.iteri
              (fun i v ->
                if Column.covers ~cols:r.Writeset.cols i then
                  arr.(i) <-
                    Some (Column.join_opt arr.(i) (Column.cell ~meta v)))
              r.Writeset.data
          end)
        ws.Writeset.records)
    txns;
  cells

let check_aci t ~epoch =
  let backup = Cluster.backup t.cluster in
  let txns =
    List.concat_map
      (fun node ->
        match Backup.get backup ~node ~cen:epoch with
        | None -> []
        | Some b -> b.Writeset.Batch.txns)
      (List.init (Cluster.n_nodes t.cluster) Fun.id)
  in
  if txns <> [] then begin
    let reference = replay_winners txns in
    let ref_cells =
      if t.level = Params.Column then Some (replay_cells txns) else None
    in
    let arr = Array.of_list txns in
    Rng.shuffle t.replay_rng arr;
    let dup_n = 1 + Rng.int t.replay_rng (Array.length arr) in
    let permuted =
      Array.to_list arr @ Array.to_list (Array.sub arr 0 dup_n)
    in
    let alt = replay_winners permuted in
    if Hashtbl.length alt <> Hashtbl.length reference then
      record t ~invariant:Aci ~epoch ~node:(-1)
        (Printf.sprintf "replay row count %d <> %d" (Hashtbl.length alt)
           (Hashtbl.length reference))
    else
      Hashtbl.iter
        (fun id (h : Row_header.t) ->
          match Hashtbl.find_opt alt id with
          | None ->
            record t ~invariant:Aci ~epoch ~node:(-1)
              (Printf.sprintf "row %S missing from permuted replay" id)
          | Some h' ->
            if not (Csn.equal h.Row_header.csn h'.Row_header.csn) then
              record t ~invariant:Aci ~epoch ~node:(-1)
                (Printf.sprintf
                   "row %S winner differs under permutation+duplication" id))
        reference;
    match ref_cells with
    | None -> ()
    | Some ref_cells ->
      let alt_cells = replay_cells permuted in
      Hashtbl.iter
        (fun id arr ->
          match Hashtbl.find_opt alt_cells id with
          | None ->
            record t ~invariant:Aci ~epoch ~node:(-1)
              (Printf.sprintf "row %S cells missing from permuted replay" id)
          | Some arr' ->
            Array.iteri
              (fun i c ->
                let c' = if i < Array.length arr' then arr'.(i) else None in
                let same =
                  match (c, c') with
                  | None, None -> true
                  | Some a, Some b ->
                    Csn.equal a.Column.meta.Meta.csn b.Column.meta.Meta.csn
                  | _ -> false
                in
                if not same then
                  record t ~invariant:Aci ~epoch ~node:(-1)
                    (Printf.sprintf
                       "row %S column %d cell winner differs under \
                        permutation+duplication" id i))
              arr)
        ref_cells
  end

(* --- per-snapshot hook: (1) convergence, (2) monotonicity ------------- *)

let on_snapshot t ~node ~lsn =
  if t.last_lsn.(node) >= lsn then
    record t ~invariant:Monotonicity ~epoch:lsn ~node
      (Printf.sprintf "snapshot %d after %d" lsn t.last_lsn.(node));
  t.last_lsn.(node) <- lsn;
  let digest = Db.digest (Node.db (Cluster.node t.cluster node)) in
  let existing =
    Option.value ~default:[] (Hashtbl.find_opt t.digest_at lsn)
  in
  let group = Partitioning.group_of_node t.part in
  (match
     List.find_opt (fun (other, _) -> group other = group node) existing
   with
  | Some (other, d) when d <> digest ->
    record t ~invariant:Convergence ~epoch:lsn ~node
      (Printf.sprintf "snapshot %d digest differs from node %d" lsn other)
  | _ -> ());
  if existing = [] && t.variant <> Params.Async_merge then
    (* First replica to reach this snapshot: every member's epoch batch
       is in the backup store by now (sealing precedes merging). *)
    check_aci t ~epoch:lsn;
  Hashtbl.replace t.digest_at lsn ((node, digest) :: existing)

(* --- per-commit hook: (5) isolation + the durability commit log ------- *)

let on_commit t (txn : Txn.t) =
  match txn.Txn.writeset with
  | None -> ()
  | Some ws ->
    let cen = txn.Txn.cen in
    let rows =
      List.map
        (fun (r : Writeset.record) ->
          (r.Writeset.table, Writeset.key_str r, r.Writeset.op))
        ws.Writeset.records
    in
    t.commits <-
      { c_node = txn.Txn.node; c_cen = cen; c_csn = txn.Txn.csn; c_rows = rows }
      :: t.commits;
    if t.variant <> Params.Async_merge then begin
      let writers =
        match Hashtbl.find_opt t.epoch_writers cen with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 16 in
          Hashtbl.replace t.epoch_writers cen tbl;
          tbl
      in
      List.iter
        (fun (table, key, op) ->
          let id = row_id ~table ~key in
          match Hashtbl.find_opt writers id with
          | Some (csn, prev_op) when not (Csn.equal csn txn.Txn.csn) ->
            (* Column-level merge resolves update/update races per cell:
               any number of committed updaters per row is legal there.
               Everything else — two inserts, two deletes, and every
               mixed pair — still admits exactly one winner. *)
            if
              not
                (t.level = Params.Column
                && op = Writeset.Update
                && prev_op = Writeset.Update)
            then
              record t ~invariant:Isolation ~epoch:cen ~node:txn.Txn.node
                (Printf.sprintf
                   "two committed writers of row %S in epoch %d" id cen)
          | _ -> Hashtbl.replace writers id (txn.Txn.csn, op))
        rows
    end

let create cluster =
  let t =
    {
      cluster;
      variant = (Cluster.params cluster).Params.variant;
      level = Params.effective_merge_level (Cluster.params cluster);
      part = Cluster.partitioning cluster;
      violations = [];
      digest_at = Hashtbl.create 512;
      last_lsn = Array.make (Cluster.n_nodes cluster) (-1);
      commits = [];
      epoch_writers = Hashtbl.create 512;
      replay_rng = Rng.create ((Cluster.params cluster).Params.seed lxor 0xACEACE);
    }
  in
  Cluster.on_snapshot cluster (fun ~node ~lsn -> on_snapshot t ~node ~lsn);
  Cluster.on_commit cluster (fun txn -> on_commit t txn);
  t

(* --- end-of-run checks: (3) durability + final convergence ------------ *)

let live_members t =
  let net = Cluster.net t.cluster in
  List.filter
    (fun m -> not (Gg_sim.Net.is_down net m))
    (Cluster.members t.cluster)

let finalize t ~min_lsn =
  let live = live_members t in
  (match live with
  | [] -> record t ~invariant:Convergence ~epoch:(-1) ~node:(-1) "no live members"
  | _ ->
    let lsn_of m = Node.lsn (Cluster.node t.cluster m) in
    let lo = List.fold_left (fun acc m -> min acc (lsn_of m)) max_int live in
    if lo < min_lsn then
      record t ~invariant:Convergence ~epoch:lo ~node:(-1)
        (Printf.sprintf "stalled: live snapshot floor %d < expected %d" lo
           min_lsn);
    (* Replicas of one group holding the same snapshot must be
       byte-identical, checked directly on the final states (the
       per-epoch digests already compared every snapshot both replicas
       generated). Cross-group states differ by design under partial
       replication; with partitioning off every node is group 0 and the
       sweep is the old full-cluster one. *)
    let group = Partitioning.group_of_node t.part in
    List.iter
      (fun m ->
        List.iter
          (fun m' ->
            if m < m' && group m = group m' && lsn_of m = lsn_of m' then
              let d = Db.digest (Node.db (Cluster.node t.cluster m)) in
              let d' = Db.digest (Node.db (Cluster.node t.cluster m')) in
              if d <> d' then
                record t ~invariant:Convergence ~epoch:(lsn_of m) ~node:m'
                  (Printf.sprintf "final digest differs from node %d" m))
          live)
      live;
    (* Durability: every commit reported to a client must survive in the
       most advanced live replica, and its write set must be recoverable
       from the origin's backup server (§5.2). Commits from epochs the
       reference has not merged yet (in-flight past the quiesce target)
       are out of scope. *)
    if t.variant <> Params.Async_merge then begin
      let refm =
        List.fold_left
          (fun best m -> if lsn_of m > lsn_of best then m else best)
          (List.hd live) live
      in
      let ref_lsn = lsn_of refm in
      (* Per-group reference replica: the most advanced live member of
         each group. A row is checked against its owning group's
         reference (the backup store keeps full batches, so the
         recoverability check stays global). [None] = no live member —
         the group's state is unobservable, its rows out of scope. *)
      let group_ref =
        Array.init (max 1 (Partitioning.n_groups t.part)) (fun g ->
            match
              List.filter
                (fun m -> Partitioning.group_of_node t.part m = g)
                live
            with
            | [] -> None
            | m :: rest ->
              Some
                (List.fold_left
                   (fun best m' -> if lsn_of m' > lsn_of best then m' else best)
                   m rest))
      in
      let backup = Cluster.backup t.cluster in
      List.iter
        (fun c ->
          if c.c_cen <= ref_lsn then begin
            (match Backup.get backup ~node:c.c_node ~cen:c.c_cen with
            | None ->
              record t ~invariant:Durability ~epoch:c.c_cen ~node:c.c_node
                "committed epoch batch missing from backup"
            | Some b ->
              if
                not
                  (List.exists
                     (fun (ws : Writeset.t) ->
                       Csn.equal ws.Writeset.meta.Meta.csn c.c_csn)
                     b.Writeset.Batch.txns)
              then
                record t ~invariant:Durability ~epoch:c.c_cen ~node:c.c_node
                  "committed write set missing from backup batch");
            List.iter
              (fun (table, key, op) ->
                if op <> Writeset.Delete then
                  let row_ref =
                    match group_ref.(Partitioning.group_of_key t.part key) with
                    | None -> None
                    | Some m when c.c_cen > lsn_of m -> None
                    | Some m -> Some (Node.db (Cluster.node t.cluster m))
                  in
                  match row_ref with
                  | None -> ()
                  | Some db ->
                  let row =
                    match Db.get_table db table with
                    | None -> None
                    | Some tbl -> Table.find tbl key
                  in
                  match row with
                  | None ->
                    record t ~invariant:Durability ~epoch:c.c_cen
                      ~node:c.c_node
                      (Printf.sprintf "committed row %S absent" key)
                  | Some entry ->
                    let h = entry.Table.header in
                    if h.Row_header.deleted && h.Row_header.cen <= c.c_cen
                    then
                      record t ~invariant:Durability ~epoch:c.c_cen
                        ~node:c.c_node
                        (Printf.sprintf "committed row %S tombstoned" key)
                    else if
                      (* Column-level merge: several updates commit into
                         one row per epoch but only the claim winner's
                         csn stamps the header, so a committed update is
                         lost only if the row's header never reached its
                         epoch at all. Inserts still own their header. *)
                      h.Row_header.cen < c.c_cen
                      || (h.Row_header.cen = c.c_cen
                         && not (Csn.equal h.Row_header.csn c.c_csn)
                         && not
                              (t.level = Params.Column
                              && op = Writeset.Update))
                    then
                      record t ~invariant:Durability ~epoch:c.c_cen
                        ~node:c.c_node
                        (Printf.sprintf
                           "committed write to %S lost (header cen %d)" key
                           h.Row_header.cen))
              c.c_rows
          end)
        t.commits
    end);
  first t

let n_commits t = List.length t.commits
