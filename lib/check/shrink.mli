(** Scenario minimizer.

    [minimize ~run scenario violation] greedily shrinks a failing
    scenario toward a minimal reproducer: it truncates the duration to
    just past the violating epoch, drops fault-schedule events one by
    one, zeroes the baseline network fault rates and halves the client
    count — keeping each transformation only when [run] still reports a
    violation. Deterministic ([run] is a pure function of the scenario)
    and bounded (at most 24 re-runs). Returns the smallest failing
    scenario found, its violation, and the number of re-runs spent. *)

val minimize :
  run:(Scenario.t -> Oracle.violation option) ->
  Scenario.t ->
  Oracle.violation ->
  Scenario.t * Oracle.violation * int
