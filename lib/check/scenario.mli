(** Seeded chaos scenarios.

    A scenario is plain data: every knob of one randomized cluster run —
    engine variant, isolation, fault-tolerance mode, workload, epoch
    length, network fault rates, and a timestamped fault schedule
    ({!Gg_sim.Fault}). {!generate} derives it deterministically from a
    single integer seed, so any failure reproduces from its seed alone,
    and the shrinker ({!Shrink}) can mutate the record field-wise. *)

type workload = Ycsb_mc | Ycsb_hc | Tpcc | Hotkey | Social | Scan | Secidx

type t = {
  seed : int;
  nodes : int;
  workload : workload;
  variant : Geogauss.Params.variant;
  isolation : Geogauss.Params.isolation;
  ft : Geogauss.Params.ft_mode;
  epoch_ms : int;
  duration_ms : int;
  connections : int;  (** closed-loop connections per node *)
  loss : float;  (** baseline network fault rates... *)
  dup : float;
  reorder : float;
  jitter : float;
  faults : Gg_sim.Fault.event list;  (** ...plus the scheduled faults *)
  corruption : (int * int) option;
      (** [(node, at_ms)]: deliberately corrupt one row on one replica —
          the self-test canary proving the oracles can detect divergence *)
  merge_jobs : int;
      (** host domains for each node's intra-node merge (1 = the
          sequential path). Never drawn from the seed — existing
          reproducer lines stay stable — and merge results are
          byte-identical at any value, so a sweep with [merge_jobs > 1]
          checks the parallel merge against the same five oracles. *)
  partitioning : Geogauss.Params.partitioning;
      (** replica-group map for partial replication (DESIGN.md §12).
          Like [merge_jobs], never drawn from the seed — pinned through
          {!with_partitioning}. *)
  corrupt_frac : float;
      (** probability each binary batch frame is truncated in flight
          (the decode failure routes to the batch-loss repair path).
          Pinned, never drawn: at [0.0] the network takes no corruption
          coin-flips, so existing seeds replay unchanged. *)
  merge_level : Geogauss.Params.merge_level;
      (** conflict granularity of the epoch merge (DESIGN.md §13). Like
          [merge_jobs], never drawn from the seed — pinned through
          {!with_merge_level}, so one seed runs the same scenario at
          either granularity and the sweeps compare cleanly. *)
  arrival : Gg_workload.Arrival.t option;
      (** open-loop arrival curve; [None] = the paper's closed loop.
          Drawn {e last}, so the extra coin-flips cannot shift any
          other knob. *)
  fastpath : bool;
      (** clock-assisted speculative sealing (the [eocc] engine,
          DESIGN.md §14). Like [merge_jobs], never drawn from the seed —
          pinned through {!with_fastpath}, so existing reproducer lines
          replay unchanged. *)
  clock_skew_ms : int;
      (** bounded clock-skew budget for fastpath runs ([0] = perfectly
          synchronized clocks). Pinned alongside [fastpath]. *)
}

val generate :
  ?variant:Geogauss.Params.variant ->
  ?isolation:Geogauss.Params.isolation ->
  ?ft:Geogauss.Params.ft_mode ->
  fast:bool ->
  int ->
  t
(** [generate ~fast seed] draws a scenario from the seed; the optional
    arguments pin a dimension instead of drawing it. [fast] bounds the
    run length for test-suite use. GeoG-A ([Async_merge]) scenarios are
    automatically restricted to the faults eventual consistency
    tolerates (no loss, no crashes). *)

val with_partitioning : t -> Geogauss.Params.partitioning -> t
(** Pin a replica-group map onto a drawn scenario (identity for
    [P_none]). Scrubs crash/recover faults — recovery state transfer
    installs whole-db snapshots, which partial replication invalidates —
    and coerces GeoG-A to the full engine (gossip has no epoch merge to
    scope). All seed-drawn knobs are otherwise untouched. *)

val with_fastpath : t -> clock_skew_ms:int -> t
(** Pin the clock-assisted fast path ([eocc]) onto a drawn scenario,
    with the given skew budget. Coerces the variant to the full engine
    (the fast path refines Optimistic) and appends a deterministic
    skew-burst fault schedule — {!Gg_sim.Fault.Skew_step} events drawn
    from a fresh Rng salted independently of {!generate}'s stream, so
    the seed's own draws are untouched. At [clock_skew_ms = 0] no
    bursts are added (there is no skew budget to step within). *)

val with_merge_level : t -> Geogauss.Params.merge_level -> t
(** Pin the epoch merge's conflict granularity (identity for [Row]).
    Coerces GeoG-A to the full engine — gossip re-applies whole row
    images, so it has no column kernel to exercise. All seed-drawn
    knobs are otherwise untouched. *)

val params : t -> Geogauss.Params.t
(** The cluster parameter block this scenario runs under. *)

val to_string : t -> string
(** One-line reproducer form; includes every generated knob. *)

val workload_to_string : workload -> string
