(** The deterministic chaos checker.

    Drives seeded chaos scenarios ({!Scenario}) through full cluster
    simulations with the invariant oracles ({!Oracle}) attached, and
    shrinks any failure ({!Shrink}) to a one-line reproducer. Fixed
    seeds give byte-identical results, so a reproducer line is a
    complete bug report. *)

type outcome = {
  scenario : Scenario.t;
  violation : Oracle.violation option;
  commits : int;  (** client-observed commits *)
  aborts : int;
  timeouts : int;
  oracle_commits : int;  (** commit-log entries the oracles tracked *)
  lsns : int list;  (** final per-replica snapshot numbers *)
}

val run : ?trace:string -> Scenario.t -> outcome
(** Run one scenario to completion (or to the first violation). With
    [?trace], tracing is enabled for the whole run and a JSONL trace is
    written to the given path ({!Gg_harness.Driver.write_trace}). *)

val reproducer : Scenario.t -> Oracle.violation -> string
(** ["VIOLATION seed=... engine=... faults=... invariant=..."] — the
    line to paste into a regression test. *)

type failure = {
  original : Scenario.t;
  minimized : Scenario.t;
  min_violation : Oracle.violation;
  shrink_runs : int;
}

type report = {
  seeds_run : int;
  total_commits : int;
  failures : failure list;
}

val shrink_and_report :
  ?log:(string -> unit) -> Scenario.t -> Oracle.violation -> failure

val check :
  ?log:(string -> unit) ->
  ?variant:Geogauss.Params.variant ->
  ?isolation:Geogauss.Params.isolation ->
  ?ft:Geogauss.Params.ft_mode ->
  ?fast:bool ->
  ?base:int ->
  ?pool:Gg_par.Pool.t ->
  ?merge_jobs:int ->
  ?partitioning:Geogauss.Params.partitioning ->
  ?corrupt_frac:float ->
  ?merge_level:Geogauss.Params.merge_level ->
  ?fastpath:bool ->
  ?clock_skew_ms:int ->
  seeds:int ->
  unit ->
  report
(** Check seeds [base .. base + seeds - 1], shrinking every failure.
    [?log] receives one progress line per seed. The optional dimension
    pins restrict generation (e.g. only the [Optimistic] engine).
    [?pool] fans seeds out over domains; the log, report and exit
    status are byte-identical at every pool width (results are
    delivered in seed order, and each scenario simulation is fully
    self-contained). Default: sequential.

    [?merge_jobs] pins every scenario's intra-node merge width (default
    1). It is applied after seed generation, so the drawn scenarios are
    the same ones the default sweep runs — and since the parallel merge
    is result-identical, commits/aborts/violations must match the
    [merge_jobs = 1] sweep exactly (the tests assert this).

    [?partitioning] pins a replica-group map on every scenario (default
    [P_none]), via {!Scenario.with_partitioning} — crash/recover faults
    are scrubbed and GeoG-A coerced to the full engine; the oracles
    scope convergence/durability to each key's replica group.
    [?corrupt_frac] pins a binary-frame corruption probability (default
    [0.0]); corrupted batches must be recovered by the stall-repair
    path, so the same oracles apply — except on GeoG-A scenarios, which
    the pin skips (a corrupted frame is a dropped frame, and the gossip
    engine makes no promises under drops). Both are applied after seed
    generation like [merge_jobs].

    [?merge_level] pins the epoch merge's conflict granularity (default
    [Row]), via {!Scenario.with_merge_level} — GeoG-A is coerced to the
    full engine. A [Column] sweep runs the same drawn scenarios through
    all five oracles with the column-level lattice active.

    [?fastpath] pins the clock-assisted speculative fast path (the
    [eocc] engine) on every scenario, via {!Scenario.with_fastpath} with
    the [?clock_skew_ms] budget (default 5 ms) — the variant is coerced
    to the full engine and a deterministic skew-burst schedule is
    appended. Externalization still gates on the confirm point, so the
    same five oracles apply at full strength: speculation may only waste
    simulated work, never change what clients observe. *)
