(** Protocol invariant oracles.

    One oracle instance observes a running {!Geogauss.Cluster} through
    its snapshot and commit hooks and checks, per epoch:

    + {b Convergence} — replicas generating the same global snapshot
      number hold byte-identical states ({!Gg_storage.Db.digest};
      Theorem 1 / §4.2 determinism of the epoch merge).
    + {b Monotonicity} — each node's snapshot numbers strictly increase.
    + {b Durability} — every commit reported to a client survives in the
      final state of the most advanced live replica, and its write set
      is recoverable from the origin's backup server (§5.2).
    + {b ACI merge laws} — replaying an epoch's full batch set permuted
      and partially duplicated yields the same per-row winners
      (Lemma 2: the merge is associative, commutative, idempotent).
    + {b Isolation} — no two committed transactions of one epoch wrote
      the same row (the per-epoch OCC validation admits exactly one
      winner per row, §4.3).

    GeoG-A ([Async_merge]) runs skip the epoch-based checks; the checker
    applies an eventual-convergence check instead.

    Under partial replication ([Params.partitioning <> P_none],
    DESIGN.md §12) replicas of different groups hold different fragments
    by design, so convergence is scoped to same-group pairs and
    durability consults the most advanced live member of each row's
    owning group. With partitioning off every node is in group 0 and the
    checks reduce to the full-cluster ones above.

    Under column-level merge ({!Params.effective_merge_level} =
    [Column], DESIGN.md §13) conflicts resolve per cell, so the oracles
    rescope: isolation admits any number of committed {e updaters} per
    row (while two inserts, two deletes, or any mixed pair stay
    violations); durability treats a committed update as lost only if
    its row's header never reached the update's epoch (the header csn
    belongs to the row-claim winner, not every cell winner); and the ACI
    replay additionally checks the per-(row, column) cell winners under
    {!Gg_crdt.Column.join} against permutation + duplication. *)

type invariant = Convergence | Monotonicity | Durability | Aci | Isolation

type violation = {
  invariant : invariant;
  epoch : int;
  node : int;  (** -1 when not attributable to one replica *)
  detail : string;
}

type t

val create : Geogauss.Cluster.t -> t
(** Register the oracle's hooks on the cluster. Create it before the
    run starts; checks fire synchronously as the simulation advances. *)

val finalize : t -> min_lsn:int -> violation option
(** End-of-run checks (call after clients stopped and the cluster
    quiesced): liveness floor [min_lsn], pairwise final digests, and the
    durability sweep over the recorded commit log. Returns the first
    violation of the whole run, if any. *)

val violations : t -> violation list
(** All recorded violations, oldest first (recording caps at 32). *)

val first : t -> violation option
val n_commits : t -> int

val invariant_to_string : invariant -> string
val violation_to_string : violation -> string
