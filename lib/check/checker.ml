module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Fault = Gg_sim.Fault
module Topology = Gg_sim.Topology
module Obs = Gg_obs.Obs
module Db = Gg_storage.Db
module Table = Gg_storage.Table
module Params = Geogauss.Params
module Cluster = Geogauss.Cluster
module Node = Geogauss.Node
module Client = Geogauss.Client
module Ycsb = Gg_workload.Ycsb
module Tpcc = Gg_workload.Tpcc
module Driver = Gg_harness.Driver

type outcome = {
  scenario : Scenario.t;
  violation : Oracle.violation option;
  commits : int;
  aborts : int;
  timeouts : int;
  oracle_commits : int;
  lsns : int list;
}

(* Checker scenarios keep populations small: contention is what shakes
   out merge/validation bugs, and per-epoch digests touch every row. *)
let ycsb_records = 400
let hotkey_records = 300
let social_users = 400
let scan_records = 400
let secidx_records = 400

(* Request-level generators: op workloads wrap in [Op_txn], SQL-shaped
   ones ({!Gg_workload.Sqlgen}) arrive as statement lists and wrap in
   [Sql_txn]. *)
let load_and_gen (s : Scenario.t) =
  let wrap gen node =
    let next = gen node in
    fun () -> Geogauss.Txn.Op_txn (next ())
  in
  match s.workload with
  | Scenario.Ycsb_mc ->
    let p = Ycsb.with_records Ycsb.medium_contention ycsb_records in
    (Ycsb.load p, wrap (Driver.ycsb_gens p ~seed:(1000 + s.seed)))
  | Scenario.Ycsb_hc ->
    let p = Ycsb.with_records Ycsb.high_contention ycsb_records in
    (Ycsb.load p, wrap (Driver.ycsb_gens p ~seed:(1000 + s.seed)))
  | Scenario.Tpcc ->
    let c = Tpcc.small in
    (Tpcc.load c, wrap (Driver.tpcc_gens c ~seed:(1000 + s.seed)))
  | Scenario.Hotkey ->
    let p = Gg_workload.Hotkey.with_records Gg_workload.Hotkey.base hotkey_records in
    (Gg_workload.Hotkey.load p, wrap (Driver.hotkey_gens p ~seed:(1000 + s.seed)))
  | Scenario.Social ->
    let p = Gg_workload.Social.with_users Gg_workload.Social.base social_users in
    (Gg_workload.Social.load p, wrap (Driver.social_gens p ~seed:(1000 + s.seed)))
  | Scenario.Scan ->
    let p =
      Gg_workload.Sqlgen.Scan.with_records Gg_workload.Sqlgen.Scan.base
        scan_records
    in
    (Gg_workload.Sqlgen.Scan.load p, Driver.scan_req_gens p ~seed:(1000 + s.seed))
  | Scenario.Secidx ->
    let p =
      Gg_workload.Sqlgen.Secidx.with_records Gg_workload.Sqlgen.Secidx.base
        secidx_records
    in
    ( Gg_workload.Sqlgen.Secidx.load p,
      Driver.secidx_req_gens p ~seed:(1000 + s.seed) )

(* The self-test canary: silently tombstone one committed row on one
   replica, bypassing the protocol. A correct checker must notice — the
   next snapshot digest on that node diverges. *)
let inject_corruption cluster ~node ~at_ms =
  let sim = Cluster.sim cluster in
  Sim.schedule_at sim (Sim.ms at_ms) (fun () ->
      let db = Node.db (Cluster.node cluster node) in
      match Db.table_names db with
      | [] -> ()
      | name :: _ -> (
        let table = Db.get_table_exn db name in
        let victim = ref None in
        (try
           Table.scan table ~f:(fun e ->
               victim := Some e;
               raise Exit)
         with Exit -> ());
        match !victim with
        | None -> ()
        | Some entry -> Table.delete table entry))

let run ?trace (s : Scenario.t) =
  let params = Scenario.params s in
  let topology = Topology.china s.nodes in
  let load, gen = load_and_gen s in
  let cluster =
    Cluster.create ~params ~jitter_frac:s.jitter ~loss:s.loss ~dup:s.dup
      ~reorder:s.reorder ~topology ~load ()
  in
  if s.corrupt_frac > 0.0 then
    Net.set_corrupt_frac (Cluster.net cluster) s.corrupt_frac;
  let obs = Cluster.obs cluster in
  (match trace with Some _ -> Obs.set_tracing obs true | None -> ());
  let oracle = Oracle.create cluster in
  Fault.install (Cluster.net cluster)
    ~on_crash:(fun n -> Cluster.crash cluster n)
    ~on_recover:(fun n -> Cluster.recover cluster n)
    ~on_skew:(fun node ~delta_us ->
      Gg_sim.Clock.inject_step (Cluster.clock cluster) ~node ~delta_us)
    s.faults;
  (match s.corruption with
  | Some (node, at_ms) -> inject_corruption cluster ~node ~at_ms
  | None -> ());
  (* Open loop when the scenario drew an arrival curve: same bounded
     FIFO shape as the measurement driver (4x the pool). *)
  let mode =
    match s.arrival with
    | None -> Client.Closed
    | Some arrival -> Client.Open { arrival; queue_cap = 4 * s.connections }
  in
  let clients =
    List.init s.nodes (fun home ->
        Client.create ~mode cluster ~home ~connections:s.connections
          ~gen:(gen home))
  in
  List.iter Client.start clients;
  (* Advance in small steps so a violation stops the run near the epoch
     that caused it (the shrinker then truncates the schedule there). *)
  let chunk_ms = 50 in
  let rec drive elapsed =
    if elapsed < s.duration_ms && Oracle.first oracle = None then begin
      Cluster.run_for_ms cluster chunk_ms;
      drive (elapsed + chunk_ms)
    end
  in
  drive 0;
  List.iter Client.stop clients;
  (* Drain in-flight transactions, then settle all replicas. *)
  Cluster.run_for_ms cluster 800;
  let violation =
    match s.variant with
    | Params.Async_merge ->
      (* No epochs to quiesce: once gossip stops flowing, every replica
         must have applied the same LWW winners. *)
      (match Cluster.digests cluster with
      | [] | [ _ ] -> None
      | d :: rest ->
        if List.for_all (fun d' -> d' = d) rest then None
        else
          Some
            {
              Oracle.invariant = Oracle.Convergence;
              epoch = -1;
              node = -1;
              detail = "replicas diverge after gossip settled";
            })
    | Params.Optimistic | Params.Sync_exec ->
      if Oracle.first oracle = None then Cluster.quiesce cluster;
      (* Liveness floor: replicas should reach half the epochs. Each
         corrupted frame is only recovered at the next 100 ms stall-
         repair tick — tens of epochs at the shortest epoch lengths — so
         corruption runs get a looser floor; convergence, durability and
         the merge laws still hold at full strength. *)
      let div = if s.corrupt_frac > 0.0 then 4 else 2 in
      let min_lsn = s.duration_ms / s.epoch_ms / div in
      Oracle.finalize oracle ~min_lsn
  in
  (match trace with
  | Some path ->
    Driver.write_trace ~path ~label:(Scenario.to_string s) ~params ~topology
      ~nodes:s.nodes ~warmup_ms:0 ~measure_ms:s.duration_ms ~window_start_us:0
      obs []
  | None -> ());
  {
    scenario = s;
    violation;
    commits = List.fold_left (fun a c -> a + Client.committed c) 0 clients;
    aborts = List.fold_left (fun a c -> a + Client.aborted c) 0 clients;
    timeouts = List.fold_left (fun a c -> a + Client.timeouts c) 0 clients;
    oracle_commits = Oracle.n_commits oracle;
    lsns = Cluster.lsns cluster;
  }

let reproducer (s : Scenario.t) (v : Oracle.violation) =
  Printf.sprintf "VIOLATION %s %s" (Scenario.to_string s)
    (Oracle.violation_to_string v)

type failure = {
  original : Scenario.t;
  minimized : Scenario.t;
  min_violation : Oracle.violation;
  shrink_runs : int;
}

type report = {
  seeds_run : int;
  total_commits : int;
  failures : failure list;
}

let shrink_and_report ?log s v =
  let emit m = match log with Some f -> f m | None -> () in
  let rerun s' = (run s').violation in
  let minimized, min_violation, shrink_runs = Shrink.minimize ~run:rerun s v in
  emit
    (Printf.sprintf "  shrunk in %d runs: %s" shrink_runs
       (reproducer minimized min_violation));
  { original = s; minimized; min_violation; shrink_runs }

(* Each seed is one pool task: a fully self-contained simulation (own
   Sim/Obs/Db/RNGs, no printing). Results stream back in seed order, so
   the log and the report are byte-identical at any [pool] width; the
   default sequential pool is the exact legacy loop. Shrinking reruns
   happen on the calling domain, between ordered deliveries, exactly
   where the sequential run would do them. *)
let check ?log ?variant ?isolation ?ft ?(fast = false) ?(base = 0)
    ?(pool = Gg_par.Pool.seq) ?(merge_jobs = 1)
    ?(partitioning = Params.P_none) ?(corrupt_frac = 0.0)
    ?(merge_level = Params.Row) ?(fastpath = false) ?(clock_skew_ms = 5)
    ~seeds () =
  let emit m = match log with Some f -> f m | None -> () in
  let failures = ref [] in
  let total_commits = ref 0 in
  let tasks =
    List.init seeds (fun i ->
        let s = Scenario.generate ?variant ?isolation ?ft ~fast (base + i) in
        (* Pinned after generation: the seed's RNG draws are identical
           at any [merge_jobs] / [partitioning] / [corrupt_frac], so the
           scenario differs only in the knobs themselves. *)
        let s =
          if merge_jobs = 1 then s else { s with Scenario.merge_jobs }
        in
        let s = Scenario.with_partitioning s partitioning in
        let s = Scenario.with_merge_level s merge_level in
        let s =
          if not fastpath then s else Scenario.with_fastpath s ~clock_skew_ms
        in
        (* A corrupted frame is a dropped frame; GeoG-A's gossip makes
           no promises under drops (the generator zeroes [loss] for it
           for the same reason), so the corruption pin skips it. *)
        let s =
          if corrupt_frac = 0.0 || s.Scenario.variant = Params.Async_merge
          then s
          else { s with Scenario.corrupt_frac }
        in
        fun () -> (s, run s))
  in
  Gg_par.Pool.iter_ordered pool tasks ~f:(fun _ (s, o) ->
      total_commits := !total_commits + o.commits;
      match o.violation with
      | None ->
        emit
          (Printf.sprintf "seed %d: ok (%d commits, %d aborts, %d timeouts) %s"
             s.Scenario.seed o.commits o.aborts o.timeouts
             (Scenario.to_string s))
      | Some v ->
        emit (Printf.sprintf "seed %d: %s" s.Scenario.seed (reproducer s v));
        failures := shrink_and_report ?log s v :: !failures);
  {
    seeds_run = seeds;
    total_commits = !total_commits;
    failures = List.rev !failures;
  }
