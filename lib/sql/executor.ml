module Value = Gg_storage.Value
module Schema = Gg_storage.Schema
module Table = Gg_storage.Table
module Db = Gg_storage.Db
module Writeset = Gg_crdt.Writeset

open Expr (* for Sql_error and Env *)

type read_record = {
  r_table : string;
  r_key_str : string;
  r_csn : Gg_storage.Csn.t;
  r_cen : int;
}

type write_buf = {
  w_table : string;
  w_key : Value.t array;
  w_key_str : string;
  w_existed : bool;  (* live row existed when first written *)
  mutable w_op : Writeset.op;
  mutable w_data : Value.t array;
  mutable w_cols : int;
      (* column mask of an Update; Gg_crdt.Column.full unless the context
         tracks columns and every UPDATE's SET list stayed maskable *)
  mutable w_dead : bool;  (* insert-then-delete: no net effect *)
}

module Ctx = struct
  type t = {
    db : Db.t;
    track_cols : bool;  (* capture UPDATE column masks for column merge *)
    mutable reads_rev : read_record list;
    read_keys : (string * string, unit) Hashtbl.t;
    writes : (string * string, write_buf) Hashtbl.t;
    mutable write_order_rev : write_buf list;
  }

  let create ?(track_cols = false) db =
    {
      db;
      track_cols;
      reads_rev = [];
      read_keys = Hashtbl.create 16;
      writes = Hashtbl.create 16;
      write_order_rev = [];
    }

  let db t = t.db
  let track_cols t = t.track_cols

  let record_read t ~table ~key_str ~(header : Gg_storage.Row_header.t) =
    (* Keep the first observation of each row: RR compares the commit-time
       version against the first read. *)
    if not (Hashtbl.mem t.read_keys (table, key_str)) then begin
      Hashtbl.replace t.read_keys (table, key_str) ();
      t.reads_rev <-
        { r_table = table; r_key_str = key_str; r_csn = header.csn; r_cen = header.cen }
        :: t.reads_rev
    end

  let read_set t = List.rev t.reads_rev

  let reread_csns t =
    List.rev_map (fun r -> (r.r_table, r.r_key_str, r.r_csn)) t.reads_rev

  let find_write t ~table ~key_str = Hashtbl.find_opt t.writes (table, key_str)

  let add_write t w =
    Hashtbl.replace t.writes (w.w_table, w.w_key_str) w;
    t.write_order_rev <- w :: t.write_order_rev

  let writeset_records t =
    List.rev t.write_order_rev
    |> List.filter_map (fun w ->
           if w.w_dead then None
           else
             Some
               (Writeset.make_record ~key_str:w.w_key_str ~cols:w.w_cols
                  ~table:w.w_table ~key:w.w_key ~op:w.w_op
                  ~data:
                    (match w.w_op with Writeset.Delete -> [||] | _ -> w.w_data)
                  ()))

  let has_writes t =
    List.exists (fun w -> not w.w_dead) t.write_order_rev
end

type result = {
  columns : string list;
  rows : Value.t array list;
  affected : int;
}

let get_table db name =
  match Db.get_table db name with
  | Some t -> t
  | None -> raise (Sql_error (Printf.sprintf "unknown table %s" name))

(* A visible row: base-table entry overlaid with the txn's own writes. *)
type vrow = {
  v_key : Value.t array;
  v_key_str : string;
  v_data : Value.t array;
  v_entry : Table.entry option;  (* None for rows inserted by this txn *)
}

(* Iterate the visible rows of [table] under [access], applying the
   read-your-writes overlay. *)
let visible_rows ctx table access ~params f =
  let tbl = get_table (Ctx.db ctx) table in
  let tname = (Table.schema tbl).Schema.table_name in
  let overlaid entry =
    let e_key_str = entry.Table.key_str in
    match Ctx.find_write ctx ~table:tname ~key_str:e_key_str with
    | Some w when not w.w_dead -> (
      match w.w_op with
      | Writeset.Delete -> None
      | Writeset.Insert | Writeset.Update ->
        Some
          {
            v_key = entry.Table.key;
            v_key_str = e_key_str;
            v_data = w.w_data;
            v_entry = Some entry;
          })
    | Some _ | None ->
      Some
        {
          v_key = entry.Table.key;
          v_key_str = e_key_str;
          v_data = entry.Table.data;
          v_entry = Some entry;
        }
  in
  let visit_entry entry =
    match overlaid entry with Some v -> f v | None -> ()
  in
  let eval_key_exprs exprs =
    Array.map (fun e -> Expr.eval_const ~params e) exprs
  in
  (match access with
  | Plan.Point exprs -> (
    let key = eval_key_exprs exprs in
    let key_str = Value.encode_key key in
    (* The txn may have inserted this key itself. *)
    match Ctx.find_write ctx ~table:tname ~key_str with
    | Some w when (not w.w_dead) && (not w.w_existed) && w.w_op <> Writeset.Delete ->
      f { v_key = key; v_key_str = key_str; v_data = w.w_data; v_entry = None }
    | Some _ | None -> (
      match Table.find_live tbl key_str with
      | Some entry -> visit_entry entry
      | None -> ()))
  | Plan.Prefix exprs ->
    let prefix = eval_key_exprs exprs in
    Table.scan_prefix tbl ~prefix visit_entry;
    (* Own inserts matching the prefix. *)
    Hashtbl.iter
      (fun (t, _) w ->
        if
          t = tname && (not w.w_dead) && (not w.w_existed)
          && w.w_op <> Writeset.Delete
          && Array.length w.w_key >= Array.length prefix
          &&
          let ok = ref true in
          Array.iteri
            (fun i p -> if Value.compare p w.w_key.(i) <> 0 then ok := false)
            prefix;
          !ok
        then
          f { v_key = w.w_key; v_key_str = w.w_key_str; v_data = w.w_data; v_entry = None })
      ctx.Ctx.writes
  | Plan.Sec_index (iname, exprs) ->
    let probe = eval_key_exprs exprs in
    List.iter visit_entry (Table.index_lookup tbl ~name:iname ~key:probe);
    (* own inserts whose indexed columns match the probe *)
    (match Table.index_cols tbl ~name:iname with
    | None -> ()
    | Some cols ->
      Hashtbl.iter
        (fun (t, _) w ->
          if
            t = tname && (not w.w_dead) && (not w.w_existed)
            && w.w_op <> Writeset.Delete
            && Array.length w.w_data > Array.fold_left max 0 cols
            &&
            let ok = ref true in
            Array.iteri
              (fun i c ->
                if Value.compare probe.(i) w.w_data.(c) <> 0 then ok := false)
              cols;
            !ok
          then
            f { v_key = w.w_key; v_key_str = w.w_key_str; v_data = w.w_data; v_entry = None })
        ctx.Ctx.writes)
  | Plan.Full ->
    Table.scan tbl ~f:visit_entry;
    Hashtbl.iter
      (fun (t, _) w ->
        if t = tname && (not w.w_dead) && (not w.w_existed) && w.w_op <> Writeset.Delete
        then
          f { v_key = w.w_key; v_key_str = w.w_key_str; v_data = w.w_data; v_entry = None })
      ctx.Ctx.writes)

let record_vrow_read ctx ~table v =
  match v.v_entry with
  | Some entry -> Ctx.record_read ctx ~table ~key_str:v.v_key_str ~header:entry.Table.header
  | None -> () (* own insert: nothing to validate *)

(* --- SELECT --- *)

let binding_names (tr : Ast.table_ref) =
  match tr.alias with Some a -> [ a; tr.table ] | None -> [ tr.table ]

let proj_name i = function
  | Ast.Star -> "*"
  | Ast.Expr_proj (Ast.Col (_, c), None) -> c
  | Ast.Expr_proj (_, Some a) | Ast.Agg (_, _, Some a) -> a
  | Ast.Expr_proj (_, None) -> Printf.sprintf "col%d" i
  | Ast.Agg (fn, _, None) -> (
    match fn with
    | Ast.Count -> "count"
    | Ast.Sum -> "sum"
    | Ast.Min -> "min"
    | Ast.Max -> "max"
    | Ast.Avg -> "avg")

let has_agg projs =
  List.exists (function Ast.Agg _ -> true | _ -> false) projs

(* Per-group aggregation state; one implicit group when GROUP BY is
   absent. Non-aggregate projections and sort keys are captured at the
   group's first row. *)
type group_state = {
  g_count : int array;
  g_sumf : float array;
  g_sumi : int array;
  g_int_only : bool array;
  g_min : Value.t array;
  g_max : Value.t array;
  g_repr : Value.t array;
  g_sort : (Value.t * Ast.order_dir) list;
}

let select ctx (s : Ast.select) ~params =
  let db = Ctx.db ctx in
  let from_tbl = get_table db s.from.table in
  let from_name = Option.value s.from.alias ~default:s.from.table in
  let from_binding =
    { Env.binding_name = from_name; schema = Table.schema from_tbl; row = [||] }
  in
  let join_info =
    Option.map
      (fun ((tr : Ast.table_ref), on) ->
        let tbl = get_table db tr.table in
        let name = Option.value tr.alias ~default:tr.table in
        let binding =
          { Env.binding_name = name; schema = Table.schema tbl; row = [||] }
        in
        (tr, on, binding))
      s.join
  in
  let env =
    match join_info with
    | None -> [ from_binding ]
    | Some (_, _, jb) -> [ from_binding; jb ]
  in
  let access =
    Plan.access_path_table from_tbl ~names:(binding_names s.from) s.where
  in
  (* Collected matches: projected row + sort keys. *)
  let matches = ref [] in
  let n_matches = ref 0 in
  let where_ok () =
    match s.where with
    | None -> true
    | Some w -> Expr.is_truthy (Expr.eval env ~params w)
  in
  let n_projs = List.length s.projs in
  let project () =
    List.concat_map
      (fun p ->
        match p with
        | Ast.Star -> List.concat_map (fun b -> Array.to_list b.Env.row) env
        | Ast.Expr_proj (e, _) -> [ Expr.eval env ~params e ]
        | Ast.Agg _ ->
          (* defended by the [aggregating] dispatch above; a proper error
             beats an [assert false] if a future path slips through *)
          raise (Sql_error "aggregate function outside an aggregate query"))
      s.projs
    |> Array.of_list
  in
  let sort_keys () =
    List.map (fun (e, dir) -> (Expr.eval env ~params e, dir)) s.order_by
  in
  (* Grouped/aggregated path. *)
  let aggregating = has_agg s.projs || s.group_by <> [] in
  if aggregating then
    List.iter
      (function
        | Ast.Agg _ -> ()
        | Ast.Expr_proj _ when s.group_by <> [] -> ()
        | Ast.Star | Ast.Expr_proj _ ->
          raise (Sql_error "mixing aggregates and plain projections needs GROUP BY"))
      s.projs;
  let groups : (Value.t list, group_state) Hashtbl.t = Hashtbl.create 16 in
  let group_order = ref [] in
  let fresh_state ~repr ~sort =
    {
      g_count = Array.make n_projs 0;
      g_sumf = Array.make n_projs 0.0;
      g_sumi = Array.make n_projs 0;
      g_int_only = Array.make n_projs true;
      g_min = Array.make n_projs Value.Null;
      g_max = Array.make n_projs Value.Null;
      g_repr = repr;
      g_sort = sort;
    }
  in
  let aggregate_row () =
    let key = List.map (fun e -> Expr.eval env ~params e) s.group_by in
    let st =
      match Hashtbl.find_opt groups key with
      | Some st -> st
      | None ->
        let repr =
          List.map
            (fun p ->
              match p with
              | Ast.Expr_proj (e, _) -> Expr.eval env ~params e
              | Ast.Agg _ | Ast.Star -> Value.Null)
            s.projs
          |> Array.of_list
        in
        let st = fresh_state ~repr ~sort:(sort_keys ()) in
        Hashtbl.replace groups key st;
        group_order := key :: !group_order;
        st
    in
    List.iteri
      (fun i p ->
        match p with
        | Ast.Agg (fn, arg, _) -> (
          let v =
            match arg with
            | None -> Value.Int 1
            | Some e -> Expr.eval env ~params e
          in
          match (fn, v) with
          | _, Value.Null -> ()
          | Ast.Count, _ -> st.g_count.(i) <- st.g_count.(i) + 1
          | (Ast.Sum | Ast.Avg), Value.Int n ->
            st.g_count.(i) <- st.g_count.(i) + 1;
            st.g_sumf.(i) <- st.g_sumf.(i) +. float_of_int n;
            st.g_sumi.(i) <- st.g_sumi.(i) + n
          | (Ast.Sum | Ast.Avg), Value.Float f ->
            st.g_count.(i) <- st.g_count.(i) + 1;
            st.g_sumf.(i) <- st.g_sumf.(i) +. f;
            st.g_int_only.(i) <- false
          | (Ast.Sum | Ast.Avg), v ->
            raise (Sql_error (Printf.sprintf "SUM/AVG of %s" (Value.type_name v)))
          | Ast.Min, v ->
            if st.g_min.(i) = Value.Null || Value.compare v st.g_min.(i) < 0 then
              st.g_min.(i) <- v
          | Ast.Max, v ->
            if st.g_max.(i) = Value.Null || Value.compare v st.g_max.(i) > 0 then
              st.g_max.(i) <- v)
        | Ast.Star | Ast.Expr_proj _ -> ())
      s.projs
  in
  let handle_match () =
    if aggregating then aggregate_row ()
    else begin
      matches := (project (), sort_keys ()) :: !matches;
      incr n_matches
    end
  in
  let process_outer v =
    from_binding.Env.row <- v.v_data;
    match join_info with
    | None ->
      if where_ok () then begin
        record_vrow_read ctx ~table:s.from.table v;
        handle_match ()
      end
    | Some (jtr, on, jb) ->
      let jaccess =
        (* Try to use the ON clause for the inner lookup only when it is a
           plain equality against column-free values; otherwise full scan.
           Nested-loop with the outer row bound is correct either way. *)
        Plan.Full
      in
      ignore jaccess;
      visible_rows ctx jtr.Ast.table Plan.Full ~params (fun jv ->
          jb.Env.row <- jv.v_data;
          if Expr.is_truthy (Expr.eval env ~params on) && where_ok () then begin
            record_vrow_read ctx ~table:s.from.table v;
            record_vrow_read ctx ~table:jtr.Ast.table jv;
            handle_match ()
          end)
  in
  visible_rows ctx s.from.table access ~params process_outer;
  let columns = List.mapi proj_name s.projs in
  let columns =
    (* Expand star into actual column names. *)
    List.concat_map
      (fun (p, n) ->
        match p with
        | Ast.Star ->
          List.concat_map
            (fun b ->
              Array.to_list
                (Array.map
                   (fun (c : Schema.column) -> c.Schema.name)
                   b.Env.schema.Schema.columns))
            env
        | Ast.Expr_proj _ | Ast.Agg _ -> [ n ])
      (List.combine s.projs columns)
  in
  if aggregating then begin
    let row_of (st : group_state) =
      List.mapi
        (fun i p ->
          match p with
          | Ast.Agg (Ast.Count, _, _) -> Value.Int st.g_count.(i)
          | Ast.Agg (Ast.Sum, _, _) ->
            if st.g_count.(i) = 0 then Value.Null
            else if st.g_int_only.(i) then Value.Int st.g_sumi.(i)
            else Value.Float st.g_sumf.(i)
          | Ast.Agg (Ast.Avg, _, _) ->
            if st.g_count.(i) = 0 then Value.Null
            else Value.Float (st.g_sumf.(i) /. float_of_int st.g_count.(i))
          | Ast.Agg (Ast.Min, _, _) -> st.g_min.(i)
          | Ast.Agg (Ast.Max, _, _) -> st.g_max.(i)
          | Ast.Star ->
            (* rejected up front ("mixing aggregates and plain
               projections needs GROUP BY"); kept as a query error *)
            raise (Sql_error "SELECT * cannot be combined with aggregates")
          | Ast.Expr_proj _ -> st.g_repr.(i))
        s.projs
      |> Array.of_list
    in
    let rows =
      List.rev_map
        (fun key ->
          let st = Hashtbl.find groups key in
          (row_of st, st.g_sort))
        !group_order
    in
    (* With no GROUP BY and no matches, SQL still yields one row. *)
    let rows =
      if rows = [] && s.group_by = [] then
        [ (row_of (fresh_state ~repr:(Array.make n_projs Value.Null) ~sort:[]), []) ]
      else rows
    in
    let rows =
      if s.order_by = [] then rows
      else
        List.stable_sort
          (fun (_, ka) (_, kb) ->
            let rec cmp a b =
              match (a, b) with
              | (va, dir) :: ra, (vb, _) :: rb ->
                let c = Value.compare va vb in
                let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
                if c <> 0 then c else cmp ra rb
              | _, _ -> 0
            in
            cmp ka kb)
          rows
    in
    let rows = List.map fst rows in
    let rows =
      match s.limit with
      | None -> rows
      | Some k -> List.filteri (fun i _ -> i < k) rows
    in
    { columns; rows; affected = 0 }
  end
  else begin
    let rows = List.rev !matches in
    let rows =
      if s.order_by = [] then rows
      else
        List.stable_sort
          (fun (_, ka) (_, kb) ->
            let rec cmp a b =
              match (a, b) with
              | [], [] -> 0
              | (va, dir) :: ra, (vb, _) :: rb ->
                let c = Value.compare va vb in
                let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
                if c <> 0 then c else cmp ra rb
              | _ -> 0
            in
            cmp ka kb)
          rows
    in
    let rows = List.map fst rows in
    let rows =
      match s.limit with
      | None -> rows
      | Some k -> List.filteri (fun i _ -> i < k) rows
    in
    { columns; rows; affected = 0 }
  end

(* --- INSERT --- *)

let insert ctx ~table ~cols ~rows ~params =
  let tbl = get_table (Ctx.db ctx) table in
  let schema = Table.schema tbl in
  let arity = Schema.arity schema in
  let col_map =
    match cols with
    | None -> Array.init arity (fun i -> i)
    | Some cs ->
      Array.of_list
        (List.map
           (fun c ->
             match Schema.col_index schema c with
             | Some i -> i
             | None ->
               raise (Sql_error (Printf.sprintf "unknown column %s" c)))
           cs)
  in
  let n = ref 0 in
  List.iter
    (fun exprs ->
      if List.length exprs <> Array.length col_map then
        raise (Sql_error "INSERT arity mismatch");
      let row = Array.make arity Value.Null in
      List.iteri
        (fun i e -> row.(col_map.(i)) <- Expr.eval_const ~params e)
        exprs;
      (match Schema.validate_row schema row with
      | Ok () -> ()
      | Error m -> raise (Sql_error m));
      let key = Schema.primary_key schema row in
      let key_str = Value.encode_key key in
      (* Duplicate checks against own writes then the table. *)
      (match Ctx.find_write ctx ~table ~key_str with
      | Some w when (not w.w_dead) && w.w_op <> Writeset.Delete ->
        raise (Sql_error (Printf.sprintf "duplicate key in table %s" table))
      | Some w ->
        (* re-insert over own delete: becomes an update of the base row *)
        w.w_dead <- false;
        w.w_op <- (if w.w_existed then Writeset.Update else Writeset.Insert);
        w.w_data <- row;
        w.w_cols <- Gg_crdt.Column.full
      | None -> (
        match Table.find_live tbl key_str with
        | Some _ ->
          raise (Sql_error (Printf.sprintf "duplicate key in table %s" table))
        | None ->
          Ctx.add_write ctx
            {
              w_table = table;
              w_key = key;
              w_key_str = key_str;
              w_existed = false;
              w_op = Writeset.Insert;
              w_data = row;
              w_cols = Gg_crdt.Column.full;
              w_dead = false;
            }));
      incr n)
    rows;
  { columns = []; rows = []; affected = !n }

(* --- UPDATE / DELETE --- *)

let collect_targets ctx table where ~params =
  let tbl = get_table (Ctx.db ctx) table in
  let access = Plan.access_path_table tbl ~names:[ table ] where in
  let binding =
    { Env.binding_name = table; schema = Table.schema tbl; row = [||] }
  in
  let env = [ binding ] in
  let acc = ref [] in
  visible_rows ctx table access ~params (fun v ->
      binding.Env.row <- v.v_data;
      let ok =
        match where with
        | None -> true
        | Some w -> Expr.is_truthy (Expr.eval env ~params w)
      in
      if ok then acc := v :: !acc);
  (tbl, binding, env, List.rev !acc)

let buffer_write ctx ~table ~(v : vrow) ~op ?(cols = Gg_crdt.Column.full) ~data
    () =
  match Ctx.find_write ctx ~table ~key_str:v.v_key_str with
  | Some w when not w.w_dead ->
    (match (w.w_op, op) with
    | Writeset.Insert, Writeset.Delete ->
      if w.w_existed then begin
        w.w_op <- Writeset.Delete;
        w.w_data <- [||];
        w.w_cols <- Gg_crdt.Column.full
      end
      else w.w_dead <- true
    | Writeset.Insert, _ -> w.w_data <- data
    | _, Writeset.Delete ->
      w.w_op <- Writeset.Delete;
      w.w_data <- [||];
      w.w_cols <- Gg_crdt.Column.full
    | _, _ ->
      w.w_op <- (if w.w_existed then Writeset.Update else Writeset.Insert);
      w.w_data <- data;
      (* coalesced updates touch the union of the columns; full absorbs *)
      w.w_cols <- Gg_crdt.Column.union w.w_cols cols)
  | Some w ->
    (* previously cancelled; revive *)
    if op <> Writeset.Delete then begin
      w.w_dead <- false;
      w.w_op <- (if w.w_existed then Writeset.Update else Writeset.Insert);
      w.w_data <- data;
      w.w_cols <- Gg_crdt.Column.full
    end
  | None ->
    Ctx.add_write ctx
      {
        w_table = table;
        w_key = v.v_key;
        w_key_str = v.v_key_str;
        w_existed = v.v_entry <> None;
        w_op = op;
        w_data = data;
        w_cols = cols;
        w_dead = false;
      }

let update ctx ~table ~sets ~where ~params =
  let tbl, binding, env, targets = collect_targets ctx table where ~params in
  let schema = Table.schema tbl in
  let set_indices =
    List.map
      (fun (c, e) ->
        match Schema.col_index schema c with
        | None -> raise (Sql_error (Printf.sprintf "unknown column %s" c))
        | Some i ->
          if Schema.is_key_col schema i then
            raise (Sql_error (Printf.sprintf "cannot update key column %s" c));
          (i, e))
      sets
  in
  (* The SET list names the touched columns directly; a set wider than
     the maskable range degrades to the whole-row mask. *)
  let cols =
    if Ctx.track_cols ctx then
      match set_indices with
      | [] -> Gg_crdt.Column.full
      | (i, _) :: rest ->
        List.fold_left
          (fun acc (j, _) ->
            Gg_crdt.Column.union acc (Gg_crdt.Column.of_index j))
          (Gg_crdt.Column.of_index i) rest
    else Gg_crdt.Column.full
  in
  List.iter
    (fun v ->
      binding.Env.row <- v.v_data;
      let new_row = Array.copy v.v_data in
      List.iter
        (fun (i, e) -> new_row.(i) <- Expr.eval env ~params e)
        set_indices;
      (match Schema.validate_row schema new_row with
      | Ok () -> ()
      | Error m -> raise (Sql_error m));
      record_vrow_read ctx ~table v;
      buffer_write ctx ~table ~v ~op:Writeset.Update ~cols ~data:new_row ())
    targets;
  { columns = []; rows = []; affected = List.length targets }

let delete ctx ~table ~where ~params =
  let _, _, _, targets = collect_targets ctx table where ~params in
  List.iter
    (fun v ->
      record_vrow_read ctx ~table v;
      buffer_write ctx ~table ~v ~op:Writeset.Delete ~data:[||] ())
    targets;
  { columns = []; rows = []; affected = List.length targets }

(* --- entry points --- *)

let exec ctx stmt ~params =
  try
    match stmt with
    | Ast.Select s -> Ok (select ctx s ~params)
    | Ast.Insert { table; cols; rows } -> Ok (insert ctx ~table ~cols ~rows ~params)
    | Ast.Update { table; sets; where } -> Ok (update ctx ~table ~sets ~where ~params)
    | Ast.Delete { table; where } -> Ok (delete ctx ~table ~where ~params)
    | Ast.Create_table { name; cols; key } ->
      let columns =
        List.map (fun (n, ty) -> { Schema.name = n; ty }) cols
      in
      let key = if key = [] then [ fst (List.hd cols) ] else key in
      ignore (Db.create_table (Ctx.db ctx) ~name ~columns ~key);
      Ok { columns = []; rows = []; affected = 0 }
    | Ast.Create_index { name; table; cols } ->
      let tbl = get_table (Ctx.db ctx) table in
      Table.create_index tbl ~name ~cols;
      Ok { columns = []; rows = []; affected = 0 }
  with
  | Sql_error m -> Error m
  | Invalid_argument m -> Error m

let exec_sql ctx sql ~params =
  match Parser.parse_result sql with
  | Error m -> Error m
  | Ok stmt -> exec ctx stmt ~params
