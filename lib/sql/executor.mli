(** SQL execution inside a transaction context.

    The executor runs statements against a replica's {!Gg_storage.Db}
    while accumulating the transaction's read set (row versions observed)
    and write set (buffered writes with read-your-writes semantics).
    Nothing touches the shared tables until the OCC write-back phase; the
    write set produced here is exactly what GeoGauss ships to its
    peers. *)

type read_record = {
  r_table : string;
  r_key_str : string;
  r_csn : Gg_storage.Csn.t;  (** row version at read time *)
  r_cen : int;  (** row's commit epoch at read time *)
}

module Ctx : sig
  type t

  val create : ?track_cols:bool -> Gg_storage.Db.t -> t
  (** [track_cols] (default [false]) captures UPDATE column masks on the
      write set for column-level merge: a [SET] list covering only
      maskable columns produces a masked record
      ({!Gg_crdt.Writeset.record.cols}); coalesced updates take the
      union of their masks, and any whole-row write (INSERT-over-delete,
      re-insert) widens to {!Gg_crdt.Column.full}. Off, every record
      carries the full mask — the pre-column wire stream, byte for
      byte. *)

  val db : t -> Gg_storage.Db.t
  val track_cols : t -> bool

  val read_set : t -> read_record list
  (** In read order (first read first). A row read several times keeps
      its {e first} observation, which is what RR validation compares
      against. *)

  val reread_csns : t -> (string * string * Gg_storage.Csn.t) list
  (** Most recent observation per (table, key) — diagnostics. *)

  val writeset_records : t -> Gg_crdt.Writeset.record list
  (** Net effect of the buffered writes, in first-write order.
      Insert-then-delete pairs cancel out. *)

  val has_writes : t -> bool
end

type result = {
  columns : string list;
  rows : Gg_storage.Value.t array list;
  affected : int;
}

val exec :
  Ctx.t ->
  Ast.stmt ->
  params:Gg_storage.Value.t array ->
  (result, string) Stdlib.result
(** Execute one statement. [Create_table] acts directly on the catalog
    (DDL is not transactional). Errors (constraint violations, type
    errors, unknown tables/columns) are returned as [Error _]; the
    context's buffered writes from {e earlier} statements are
    untouched. *)

val exec_sql :
  Ctx.t ->
  string ->
  params:Gg_storage.Value.t array ->
  (result, string) Stdlib.result
(** Parse then {!exec}. *)
