module Value = Gg_storage.Value

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Sql_error m)) fmt

module Env = struct
  type binding = {
    binding_name : string;
    schema : Gg_storage.Schema.t;
    mutable row : Value.t array;
  }

  type t = binding list

  let resolve env qualifier col =
    match qualifier with
    | Some q -> (
      match List.find_opt (fun b -> b.binding_name = q) env with
      | None -> fail "unknown table or alias %s" q
      | Some b -> (
        match Gg_storage.Schema.col_index b.schema col with
        | Some i -> (b, i)
        | None -> fail "unknown column %s.%s" q col))
    | None -> (
      let hits =
        List.filter_map
          (fun b ->
            match Gg_storage.Schema.col_index b.schema col with
            | Some i -> Some (b, i)
            | None -> None)
          env
      in
      match hits with
      | [ hit ] -> hit
      | [] -> fail "unknown column %s" col
      | _ :: _ :: _ -> fail "ambiguous column %s" col)
end

let is_truthy = Value.is_truthy

let num_binop op a b =
  let open Ast in
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
    match op with
    | Add -> Value.Int (x + y)
    | Sub -> Value.Int (x - y)
    | Mul -> Value.Int (x * y)
    | Div -> if y = 0 then fail "division by zero" else Value.Int (x / y)
    | Mod -> if y = 0 then fail "modulo by zero" else Value.Int (x mod y)
    | _ -> fail "not an arithmetic operator")
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    let fx = match a with Value.Int i -> float_of_int i | Value.Float f -> f | _ -> 0.0 in
    let fy = match b with Value.Int i -> float_of_int i | Value.Float f -> f | _ -> 0.0 in
    (match op with
    | Add -> Value.Float (fx +. fy)
    | Sub -> Value.Float (fx -. fy)
    | Mul -> Value.Float (fx *. fy)
    | Div -> if fy = 0.0 then fail "division by zero" else Value.Float (fx /. fy)
    | Mod -> fail "modulo on float"
    | _ -> fail "not an arithmetic operator")
  | _ ->
    fail "arithmetic on non-numeric values (%s, %s)" (Value.type_name a)
      (Value.type_name b)

let cmp_binop op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ ->
    let c = Value.compare a b in
    let r =
      let open Ast in
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | _ -> fail "not a comparison operator"
    in
    Value.Int (if r then 1 else 0)

(* SQL LIKE with % (any run) and _ (any single char). *)
let like_match s p =
  let ns = String.length s and np = String.length p in
  let rec go i j =
    if j >= np then i >= ns
    else
      match p.[j] with
      | '%' ->
        (* try every suffix *)
        let rec try_from k = k <= ns && (go k (j + 1) || try_from (k + 1)) in
        try_from i
      | '_' -> i < ns && go (i + 1) (j + 1)
      | c -> i < ns && s.[i] = c && go (i + 1) (j + 1)
  in
  go 0 0

let rec eval env ~params e =
  let open Ast in
  match e with
  | Const v -> v
  | Param i ->
    if i < 0 || i >= Array.length params then
      fail "parameter ?%d not supplied (%d given)" (i + 1) (Array.length params)
    else params.(i)
  | Col (q, c) ->
    let b, i = Env.resolve env q c in
    b.Env.row.(i)
  | Unop (Neg, e) -> (
    match eval env ~params e with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int (-i)
    | Value.Float f -> Value.Float (-.f)
    | v -> fail "negation of %s" (Value.type_name v))
  | Unop (Not, e) ->
    Value.Int (if is_truthy (eval env ~params e) then 0 else 1)
  | Binop (And, a, b) ->
    if is_truthy (eval env ~params a) then
      Value.Int (if is_truthy (eval env ~params b) then 1 else 0)
    else Value.Int 0
  | Binop (Or, a, b) ->
    if is_truthy (eval env ~params a) then Value.Int 1
    else Value.Int (if is_truthy (eval env ~params b) then 1 else 0)
  | Binop (Concat, a, b) -> (
    match (eval env ~params a, eval env ~params b) with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | Value.Str x, Value.Str y -> Value.Str (x ^ y)
    | x, y -> Value.Str (Value.to_string x ^ Value.to_string y))
  | Binop (((Add | Sub | Mul | Div | Mod) as op), a, b) ->
    num_binop op (eval env ~params a) (eval env ~params b)
  | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) ->
    cmp_binop op (eval env ~params a) (eval env ~params b)
  | In_list (e, items) ->
    let v = eval env ~params e in
    if v = Value.Null then Value.Null
    else
      Value.Int
        (if List.exists (fun i -> Value.compare v (eval env ~params i) = 0) items
         then 1
         else 0)
  | Between (e, lo, hi) ->
    let v = eval env ~params e in
    let l = eval env ~params lo and h = eval env ~params hi in
    if v = Value.Null || l = Value.Null || h = Value.Null then Value.Null
    else Value.Int (if Value.compare v l >= 0 && Value.compare v h <= 0 then 1 else 0)
  | Like (e, pat) -> (
    match (eval env ~params e, eval env ~params pat) with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | Value.Str s, Value.Str p -> Value.Int (if like_match s p then 1 else 0)
    | v, p ->
      fail "LIKE expects strings, got %s and %s" (Value.type_name v)
        (Value.type_name p))

let eval_const ~params e = eval [] ~params e
