(** A deterministic fixed-size Domain pool for independent simulations.

    The harness uses one simulation = one task: chaos-check seeds,
    experiment grid points and bench scenarios are all mutually
    independent, fully self-contained (own [Sim], [Obs], RNGs, database)
    and never print. The pool fans tasks out over OCaml 5 domains and
    hands results back to the caller {e in submission order}, so every
    user-visible artifact built from them (reports, tables, JSON) is
    byte-identical to the sequential run.

    [jobs = 1] is the exact legacy path: no domain is ever spawned and
    each task runs to completion on the calling domain before the next
    starts, interleaved with its [iter_ordered] callback just as the
    original sequential loops were. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], capped at {!max_jobs}. *)

val max_jobs : int
(** Upper bound on pool size (memory: each task is a whole simulated
    cluster). *)

val create : jobs:int -> t
(** A pool of [jobs] worker domains ([jobs <= 1] spawns none).
    [jobs <= 0] means auto: {!default_jobs}. Values above {!max_jobs}
    are clamped. *)

val seq : t
(** The sequential pool ([jobs = 1]); {!shutdown} on it is a no-op. *)

val jobs : t -> int
(** Parallel width: number of tasks that can run simultaneously. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute all thunks, returning results in submission order. If a
    task raised, the first raising task's exception (by submission
    order) is re-raised after all tasks have finished. *)

val iter_ordered : t -> (unit -> 'a) list -> f:(int -> 'a -> unit) -> unit
(** Like {!run}, but streams: [f i result] runs on the calling domain,
    in submission order, as soon as every task [<= i] has completed —
    so progressive output appears early yet stays byte-identical to the
    sequential run. [f] must not submit to the same pool. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] is [run t (List.map (fun x () -> f x) xs)]. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent. Using the pool afterwards
    raises. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, always [shutdown]. *)

(** {1 Sharded fan-out inside one shared computation}

    The pool above fans out {e independent} simulations; the helpers
    below parallelise {e one} computation over shared mutable state
    (the intra-node merge). They spawn [jobs - 1] fresh domains per
    call, run part 0 on the calling domain, and join all domains before
    returning — so they are safe to call from inside a pool task (no
    shared queue to deadlock on) and nothing outlives the call. *)

val map_shards :
  jobs:int -> key:('a -> int) -> 'a list -> f:('a list -> 'b) -> 'b list
(** [map_shards ~jobs ~key xs ~f] partitions [xs] into [jobs] shards by
    [key x land max_int mod jobs] (items keep their relative order
    within a shard), runs [f] on every shard concurrently, and returns
    the results in shard order — a deterministic function of [xs] and
    [key] alone, independent of scheduling. [jobs <= 1] runs [f xs] on
    the calling domain and returns a single-element list. Shards may be
    empty. If several shards raise, the lowest shard's exception is
    re-raised after all domains have joined.

    Determinism contract: [f] must touch only state owned by its shard
    (plus read-only shared state) — the shard partition is what makes
    that disjointness hold, so [key] must agree with how the shared
    structure is sharded (e.g. {!val:key} = the [Table] temp-shard hash
    when temp entries are created). *)

val map_chunks : jobs:int -> 'a list -> f:('a list -> 'b) -> 'b list
(** [map_chunks ~jobs xs ~f] splits [xs] into at most [jobs] contiguous
    chunks (order-preserving, sizes within one of each other), runs [f]
    on each concurrently, and returns results in chunk order —
    concatenating them reproduces a sequential left-to-right pass. *)

(** Domain-local counters: the sanctioned form of cross-call counting
    state in [lib/] (a plain global [ref] would race and mix counts
    across concurrent pool tasks). Each domain sees its own counter;
    reset and read from the same task. *)
module Local_counter : sig
  type t

  val create : unit -> t
  (** Create the key (itself immutable; safe at module level). *)

  val incr : t -> unit
  val get : t -> int
  val reset : t -> unit
end
