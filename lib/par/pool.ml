let max_jobs = 16

let default_jobs () = max 1 (min max_jobs (Domain.recommended_domain_count ()))

type pool = {
  n : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_cv : Condition.t;
  mutable closing : bool;
  mutable domains : unit Domain.t array;
}

type t = Seq | Par of pool

let jobs = function Seq -> 1 | Par p -> p.n

let rec worker p =
  Mutex.lock p.mutex;
  while Queue.is_empty p.queue && not p.closing do
    Condition.wait p.work_cv p.mutex
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.mutex (* closing *)
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.mutex;
    task ();
    worker p
  end

let create ~jobs =
  let jobs = if jobs <= 0 then default_jobs () else min jobs max_jobs in
  if jobs = 1 then Seq
  else begin
    let p =
      {
        n = jobs;
        queue = Queue.create ();
        mutex = Mutex.create ();
        work_cv = Condition.create ();
        closing = false;
        domains = [||];
      }
    in
    p.domains <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker p));
    Par p
  end

let seq = Seq

let shutdown = function
  | Seq -> ()
  | Par p ->
    Mutex.lock p.mutex;
    p.closing <- true;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.mutex;
    Array.iter Domain.join p.domains;
    p.domains <- [||]

let submit p task =
  Mutex.lock p.mutex;
  if p.closing then begin
    Mutex.unlock p.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task p.queue;
  Condition.signal p.work_cv;
  Mutex.unlock p.mutex

(* Tasks stash [Ok result] or [Error exn] into their submission slot;
   the caller consumes the slots as a strictly growing prefix. On a
   task exception we stop delivering results but still wait for every
   task to finish (nothing outlives the call), then re-raise the
   lowest-index exception. *)
let iter_ordered t thunks ~f =
  match t with
  | Seq -> List.iteri (fun i thunk -> f i (thunk ())) thunks
  | Par p ->
    let n = List.length thunks in
    if n > 0 then begin
      let slots = Array.make n None in
      let done_mutex = Mutex.create () in
      let done_cv = Condition.create () in
      let completed = ref 0 in
      List.iteri
        (fun i thunk ->
          submit p (fun () ->
              let r =
                try Ok (thunk ())
                with e ->
                  let bt = Printexc.get_raw_backtrace () in
                  Error (e, bt)
              in
              Mutex.lock done_mutex;
              slots.(i) <- Some r;
              incr completed;
              Condition.broadcast done_cv;
              Mutex.unlock done_mutex))
        thunks;
      let first_error = ref None in
      let next = ref 0 in
      Mutex.lock done_mutex;
      while !next < n do
        match slots.(!next) with
        | Some r ->
          let i = !next in
          incr next;
          slots.(i) <- None;
          (match (r, !first_error) with
          | Ok v, None ->
            (* Deliver outside the lock: [f] may be slow (shrinking a
               failure reruns whole simulations). *)
            Mutex.unlock done_mutex;
            f i v;
            Mutex.lock done_mutex
          | Ok _, Some _ -> ()
          | Error e, None -> first_error := Some e
          | Error _, Some _ -> ())
        | None -> Condition.wait done_cv done_mutex
      done;
      (* All slots consumed in order; stragglers cannot exist (slot n-1
         was filled), but [completed] documents the invariant. *)
      while !completed < n do
        Condition.wait done_cv done_mutex
      done;
      Mutex.unlock done_mutex;
      match !first_error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let run t thunks =
  let n = List.length thunks in
  let out = Array.make (max n 1) None in
  iter_ordered t thunks ~f:(fun i v -> out.(i) <- Some v);
  List.init n (fun i -> Option.get out.(i))

let map t f xs = run t (List.map (fun x () -> f x) xs)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- sharded fan-out inside one shared computation ---

   Unlike the pool above (long-lived workers, one simulation per task),
   these helpers parallelise ONE short computation over the data it
   already holds: they spawn [k - 1] fresh domains, run part 0 on the
   calling domain, and join before returning. Spawning per call keeps
   them safe to use from inside a pool task (a shared worker pool would
   deadlock when every worker blocks on subtasks that sit behind it in
   the queue) and leaks nothing when the caller has no shutdown hook. *)

let join_all (tasks : (unit -> 'a) array) : 'a array =
  let k = Array.length tasks in
  if k = 0 then [||]
  else if k = 1 then [| tasks.(0) () |]
  else begin
    let wrap f () =
      try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    let doms =
      Array.init (k - 1) (fun i -> Domain.spawn (wrap tasks.(i + 1)))
    in
    let r0 = wrap tasks.(0) () in
    let results = Array.make k r0 in
    Array.iteri (fun i d -> results.(i + 1) <- Domain.join d) doms;
    (* lowest-index exception wins, as in [iter_ordered] *)
    Array.iter
      (function
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
      results;
    Array.map (function Ok v -> v | Error _ -> assert false) results
  end

let map_shards ~jobs ~key xs ~f =
  let jobs = max 1 jobs in
  if jobs = 1 then [ f xs ]
  else begin
    let buckets = Array.make jobs [] in
    List.iter
      (fun x ->
        let s = key x land max_int mod jobs in
        buckets.(s) <- x :: buckets.(s))
      xs;
    let tasks =
      Array.map
        (fun rev_items ->
          let items = List.rev rev_items in
          fun () -> f items)
        buckets
    in
    Array.to_list (join_all tasks)
  end

let map_chunks ~jobs xs ~f =
  let jobs = max 1 jobs in
  if jobs = 1 then [ f xs ]
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let k = max 1 (min jobs n) in
    let tasks =
      Array.init k (fun i ->
          let lo = i * n / k and hi = (i + 1) * n / k in
          let chunk = Array.to_list (Array.sub arr lo (hi - lo)) in
          fun () -> f chunk)
    in
    Array.to_list (join_all tasks)
  end

module Local_counter = struct
  type t = int ref Domain.DLS.key

  let create () = Domain.DLS.new_key (fun () -> ref 0)
  let incr t = incr (Domain.DLS.get t)
  let get t = !(Domain.DLS.get t)
  let reset t = Domain.DLS.get t := 0
end
