let max_jobs = 16

let default_jobs () = max 1 (min max_jobs (Domain.recommended_domain_count ()))

type pool = {
  n : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_cv : Condition.t;
  mutable closing : bool;
  mutable domains : unit Domain.t array;
}

type t = Seq | Par of pool

let jobs = function Seq -> 1 | Par p -> p.n

let rec worker p =
  Mutex.lock p.mutex;
  while Queue.is_empty p.queue && not p.closing do
    Condition.wait p.work_cv p.mutex
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.mutex (* closing *)
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.mutex;
    task ();
    worker p
  end

let create ~jobs =
  let jobs = if jobs <= 0 then default_jobs () else min jobs max_jobs in
  if jobs = 1 then Seq
  else begin
    let p =
      {
        n = jobs;
        queue = Queue.create ();
        mutex = Mutex.create ();
        work_cv = Condition.create ();
        closing = false;
        domains = [||];
      }
    in
    p.domains <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker p));
    Par p
  end

let seq = Seq

let shutdown = function
  | Seq -> ()
  | Par p ->
    Mutex.lock p.mutex;
    p.closing <- true;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.mutex;
    Array.iter Domain.join p.domains;
    p.domains <- [||]

let submit p task =
  Mutex.lock p.mutex;
  if p.closing then begin
    Mutex.unlock p.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task p.queue;
  Condition.signal p.work_cv;
  Mutex.unlock p.mutex

(* Tasks stash [Ok result] or [Error exn] into their submission slot;
   the caller consumes the slots as a strictly growing prefix. On a
   task exception we stop delivering results but still wait for every
   task to finish (nothing outlives the call), then re-raise the
   lowest-index exception. *)
let iter_ordered t thunks ~f =
  match t with
  | Seq -> List.iteri (fun i thunk -> f i (thunk ())) thunks
  | Par p ->
    let n = List.length thunks in
    if n > 0 then begin
      let slots = Array.make n None in
      let done_mutex = Mutex.create () in
      let done_cv = Condition.create () in
      let completed = ref 0 in
      List.iteri
        (fun i thunk ->
          submit p (fun () ->
              let r =
                try Ok (thunk ())
                with e ->
                  let bt = Printexc.get_raw_backtrace () in
                  Error (e, bt)
              in
              Mutex.lock done_mutex;
              slots.(i) <- Some r;
              incr completed;
              Condition.broadcast done_cv;
              Mutex.unlock done_mutex))
        thunks;
      let first_error = ref None in
      let next = ref 0 in
      Mutex.lock done_mutex;
      while !next < n do
        match slots.(!next) with
        | Some r ->
          let i = !next in
          incr next;
          slots.(i) <- None;
          (match (r, !first_error) with
          | Ok v, None ->
            (* Deliver outside the lock: [f] may be slow (shrinking a
               failure reruns whole simulations). *)
            Mutex.unlock done_mutex;
            f i v;
            Mutex.lock done_mutex
          | Ok _, Some _ -> ()
          | Error e, None -> first_error := Some e
          | Error _, Some _ -> ())
        | None -> Condition.wait done_cv done_mutex
      done;
      (* All slots consumed in order; stragglers cannot exist (slot n-1
         was filled), but [completed] documents the invariant. *)
      while !completed < n do
        Condition.wait done_cv done_mutex
      done;
      Mutex.unlock done_mutex;
      match !first_error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let run t thunks =
  let n = List.length thunks in
  let out = Array.make (max n 1) None in
  iter_ordered t thunks ~f:(fun i v -> out.(i) <- Some v);
  List.init n (fun i -> Option.get out.(i))

let map t f xs = run t (List.map (fun x () -> f x) xs)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
