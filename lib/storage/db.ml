type t = { tables : (string, Table.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let add_table t schema =
  let name = schema.Schema.table_name in
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Db.add_table: table %s exists" name);
  let table = Table.create schema in
  Hashtbl.replace t.tables name table;
  table

let create_table t ~name ~columns ~key =
  add_table t (Schema.create ~name ~columns ~key)

let get_table t name = Hashtbl.find_opt t.tables name

let get_table_exn t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> raise Not_found

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort Stdlib.compare

let temp_clear_all t = Hashtbl.iter (fun _ table -> Table.temp_clear table) t.tables

let purge_tombstones t ~before_cen =
  Hashtbl.fold
    (fun _ table acc -> acc + Table.purge_tombstones table ~before_cen)
    t.tables 0

(* Hash of per-table digests rather than of one concatenated
   serialization: each table's digest is cached behind its mutation
   counter (Table.digest), so re-digesting a database in which only a
   few tables changed — the convergence oracle does this every epoch —
   re-serializes only those tables. *)
let digest t =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf (Table.digest (get_table_exn t name)))
    (table_names t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let row_count t =
  Hashtbl.fold (fun _ table acc -> acc + Table.live_count table) t.tables 0

let copy t =
  let fresh = create () in
  Hashtbl.iter
    (fun name table -> Hashtbl.replace fresh.tables name (Table.copy table))
    t.tables;
  fresh

let replace_contents t ~from =
  Hashtbl.reset t.tables;
  Hashtbl.iter
    (fun name table -> Hashtbl.replace t.tables name (Table.copy table))
    from.tables

let estimated_bytes t =
  (* Rough serialized size for state-transfer cost modeling. *)
  let enc = Gg_util.Codec.Enc.create () in
  List.iter (fun name -> Table.digest_into (get_table_exn t name) enc) (table_names t);
  Gg_util.Codec.Enc.length enc
