(** In-memory row store with primary-key hash index, an ordered index for
    range scans, and a per-epoch temporary table for insertion conflicts
    (paper §4.2.1).

    Every row carries a {!Row_header.t}. Deletions leave a tombstone in
    the hash index (so concurrent writers observe "row deleted" and
    abort, Algorithm 2 line 3–4) but drop the row from the ordered index
    so scans skip it. *)

type entry = {
  key : Value.t array;
  key_str : string;
  mutable data : Value.t array;
  header : Row_header.t;
}

type t

val create : Schema.t -> t
val schema : t -> Schema.t

(** {1 Loading and direct access} *)

val load : t -> Value.t array -> unit
(** Bulk-load a full row (initial database population). Raises
    [Invalid_argument] on schema violation or duplicate key. *)

val find : t -> string -> entry option
(** FindRow by encoded key; returns tombstones too (check
    [header.deleted]). *)

val find_live : t -> string -> entry option
(** Like {!find} but [None] for tombstones. *)

val mem_live : t -> string -> bool

(** {1 Mutation (called by the OCC write-back path)} *)

val write : t -> entry -> Value.t array -> unit
(** Overwrite an entry's data in place. *)

val delete : t -> entry -> unit
(** Tombstone the entry and remove it from the ordered index. *)

val revive : t -> entry -> Value.t array -> unit
(** Un-tombstone (an insert over a deleted key) with fresh data. *)

val insert_committed : t -> key:Value.t array -> data:Value.t array -> header:Row_header.t -> unit
(** Install a freshly committed insert into the main indexes. Replaces
    any tombstone. Raises [Invalid_argument] if a live row exists. *)

(** {1 Temporary insert table}

    The temp area is internally split into {!temp_shard_count} hash
    shards keyed by {!key_shard}. Concurrency contract for the parallel
    merge: two domains may call {!temp_add}/{!temp_find} on the same
    table simultaneously iff their keys land in different shards — which
    holds whenever the work partition is derived from {!key_hash} with a
    shard count dividing {!temp_shard_count}. *)

val temp_shard_count : int
(** Number of temp hash shards (16). Parallel merge widths must divide
    this so the key→merge-shard map refines the key→temp-shard map. *)

val key_hash : string -> int
(** Deterministic non-negative hash of an encoded key ([Hashtbl.hash]
    with the default seed — stable across runs and processes). *)

val key_shard : shards:int -> string -> int
(** [key_hash key mod shards]: the canonical key→shard rule shared by
    the temp area, the parallel merge's record bucketing, and
    {!digest_shard}. *)

val temp_find : t -> string -> entry option
val temp_add : t -> key:Value.t array -> key_str:string -> entry
(** Create (or return the existing) temp entry for an in-flight insert. *)

val temp_clear : t -> unit
(** Drop all temp entries (end of epoch). *)

(** {1 Scans} *)

val scan : t -> f:(entry -> unit) -> unit
(** All live rows in primary-key order. *)

val iter_all : t -> f:(entry -> unit) -> unit
(** Every entry including tombstones, in no particular order. *)

val scan_range :
  t -> ?lo:Value.t array -> ?hi:Value.t array -> (entry -> unit) -> unit
(** Live rows with [lo <= key <= hi] in key order (missing bound =
    unbounded). Seeks to [lo]. *)

val scan_prefix : t -> prefix:Value.t array -> (entry -> unit) -> unit
(** Live rows whose key starts with [prefix], in key order. *)

(** {1 Secondary indexes}

    Non-unique in-memory indexes over arbitrary column subsets,
    maintained through every write/delete/revive. Only live rows are
    indexed. *)

val create_index : t -> name:string -> cols:string list -> unit
(** Build an index over existing rows. Raises [Invalid_argument] on a
    duplicate name or unknown column. *)

val index_names : t -> string list
val index_cols : t -> name:string -> int array option

val index_lookup : t -> name:string -> key:Value.t array -> entry list
(** Live entries whose indexed columns equal [key]. Raises
    [Invalid_argument] on an unknown index. *)

val find_index_covering : t -> int array -> string option
(** An index whose column array is exactly the given one, if any. *)

(** {1 Introspection} *)

val live_count : t -> int
val total_count : t -> int
(** Including tombstones. *)

val copy : t -> t
(** Deep copy (rows, headers, tombstones; temp entries are not copied).
    Used for state transfer to recovering replicas. *)

val purge_tombstones : t -> before_cen:int -> int
(** Garbage-collect tombstones whose deleting epoch precedes
    [before_cen]; returns how many were removed. Safe once every
    replica's snapshot has passed that epoch — a write referencing the
    key after the purge behaves like a write to a never-existing row,
    which the paper treats the same as a deleted one. *)

val digest_into : t -> Gg_util.Codec.Enc.t -> unit
(** Canonical serialization (keys ascending; data + header + tombstones)
    used for replica-equality checks. *)

val digest : t -> string
(** MD5 hex of {!digest_into}, cached behind a per-table mutation
    counter: digesting an unchanged table is O(1). *)

val digest_shard : t -> shards:int -> shard:int -> string
(** MD5 hex over only the rows with [key_shard ~shards key = shard]
    (keys ascending; includes tombstones). The [shards] digests jointly
    cover every entry exactly once, so comparing them localises replica
    divergence to a key range. Pure read; not cached. *)

val touch : t -> unit
(** Invalidate the digest cache. Every mutator in this module touches
    automatically; code that stamps a committed row's header in place
    (the merge pre-write path) must call this itself. *)

val version : t -> int
(** Mutation counter (monotone; bumped by every digest-relevant
    change). *)
