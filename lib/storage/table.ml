type entry = {
  key : Value.t array;
  key_str : string;
  mutable data : Value.t array;
  header : Row_header.t;
}

let compare_keys a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

module Key_map = Map.Make (struct
  type t = Value.t array

  let compare = compare_keys
end)

type sec_index = {
  idx_cols : int array;
  mutable idx_map : entry list Key_map.t;
}

(* The per-epoch temp area is split into a fixed number of hash shards
   so the parallel merge can create temp entries from several domains at
   once: merge shard counts divide [temp_shard_count], and a record's
   merge shard is derived from the same key hash, so two merge shards
   never touch the same temp shard. *)
let temp_shard_count = 16

let key_hash key_str = Hashtbl.hash key_str land max_int
let key_shard ~shards key_str = key_hash key_str mod shards

type t = {
  schema : Schema.t;
  index : (string, entry) Hashtbl.t;
  mutable ordered : entry Key_map.t;
  temp : (string, entry) Hashtbl.t array;  (* [temp_shard_count] shards *)
  indexes : (string, sec_index) Hashtbl.t;
  mutable live : int;
  mutable version : int;
      (* bumped on every digest-relevant mutation; keys [digest_cache] *)
  mutable digest_cache : (int * string) option;
}

let fresh_temp () = Array.init temp_shard_count (fun _ -> Hashtbl.create 8)

let create schema =
  {
    schema;
    index = Hashtbl.create 1024;
    ordered = Key_map.empty;
    temp = fresh_temp ();
    indexes = Hashtbl.create 4;
    live = 0;
    version = 0;
    digest_cache = None;
  }

let touch t = t.version <- t.version + 1
let version t = t.version

(* --- secondary index maintenance --- *)

let project cols data = Array.map (fun i -> data.(i)) cols

let idx_add idx entry =
  let k = project idx.idx_cols entry.data in
  let existing = Option.value ~default:[] (Key_map.find_opt k idx.idx_map) in
  idx.idx_map <- Key_map.add k (entry :: existing) idx.idx_map

let idx_remove idx ~data entry =
  let k = project idx.idx_cols data in
  match Key_map.find_opt k idx.idx_map with
  | None -> ()
  | Some entries -> (
    match List.filter (fun e -> e != entry) entries with
    | [] -> idx.idx_map <- Key_map.remove k idx.idx_map
    | rest -> idx.idx_map <- Key_map.add k rest idx.idx_map)

let indexes_add t entry = Hashtbl.iter (fun _ idx -> idx_add idx entry) t.indexes

let indexes_remove t ~data entry =
  Hashtbl.iter (fun _ idx -> idx_remove idx ~data entry) t.indexes

let schema t = t.schema

let load t row =
  (match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error m -> invalid_arg ("Table.load: " ^ m));
  let key = Schema.primary_key t.schema row in
  let key_str = Value.encode_key key in
  if Hashtbl.mem t.index key_str then invalid_arg "Table.load: duplicate key";
  let entry = { key; key_str; data = row; header = Row_header.create () } in
  Hashtbl.replace t.index key_str entry;
  t.ordered <- Key_map.add key entry t.ordered;
  indexes_add t entry;
  t.live <- t.live + 1;
  touch t

let find t key_str = Hashtbl.find_opt t.index key_str

let find_live t key_str =
  match Hashtbl.find_opt t.index key_str with
  | Some e when not e.header.deleted -> Some e
  | Some _ | None -> None

let mem_live t key_str = find_live t key_str <> None

let write t entry data =
  let old = entry.data in
  entry.data <- data;
  touch t;
  if Hashtbl.length t.indexes > 0 then begin
    indexes_remove t ~data:old entry;
    indexes_add t entry
  end

let delete t entry =
  if not entry.header.deleted then begin
    entry.header.deleted <- true;
    t.ordered <- Key_map.remove entry.key t.ordered;
    indexes_remove t ~data:entry.data entry;
    t.live <- t.live - 1;
    touch t
  end

let revive t entry data =
  if entry.header.deleted then begin
    entry.header.deleted <- false;
    entry.data <- data;
    t.ordered <- Key_map.add entry.key entry t.ordered;
    indexes_add t entry;
    t.live <- t.live + 1;
    touch t
  end
  else write t entry data

let insert_committed t ~key ~data ~header =
  let key_str = Value.encode_key key in
  (match Hashtbl.find_opt t.index key_str with
  | Some e when not e.header.deleted ->
    invalid_arg "Table.insert_committed: live row exists"
  | Some _ | None -> ());
  let entry = { key; key_str; data; header } in
  Hashtbl.replace t.index key_str entry;
  t.ordered <- Key_map.add key entry t.ordered;
  indexes_add t entry;
  t.live <- t.live + 1;
  touch t

let temp_tbl t key_str = t.temp.(key_shard ~shards:temp_shard_count key_str)
let temp_find t key_str = Hashtbl.find_opt (temp_tbl t key_str) key_str

let temp_add t ~key ~key_str =
  let tbl = temp_tbl t key_str in
  match Hashtbl.find_opt tbl key_str with
  | Some e -> e
  | None ->
    let entry = { key; key_str; data = [||]; header = Row_header.create () } in
    Hashtbl.replace tbl key_str entry;
    entry

let temp_clear t = Array.iter Hashtbl.reset t.temp

let scan t ~f = Key_map.iter (fun _ e -> f e) t.ordered

let iter_all t ~f = Hashtbl.iter (fun _ e -> f e) t.index

let scan_range t ?lo ?hi f =
  let seq =
    match lo with
    | None -> Key_map.to_seq t.ordered
    | Some l -> Key_map.to_seq_from l t.ordered
  in
  let rec go seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons ((key, e), rest) ->
      let le_hi =
        match hi with None -> true | Some h -> compare_keys key h <= 0
      in
      if le_hi then begin
        f e;
        go rest
      end
  in
  go seq

let has_prefix ~prefix key =
  let lp = Array.length prefix in
  Array.length key >= lp
  &&
  let rec go i = i >= lp || (Value.compare prefix.(i) key.(i) = 0 && go (i + 1)) in
  go 0

let scan_prefix t ~prefix f =
  let rec go seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons ((key, e), rest) ->
      if has_prefix ~prefix key then begin
        f e;
        go rest
      end
  in
  go (Key_map.to_seq_from prefix t.ordered)

(* --- secondary index API --- *)

let create_index t ~name ~cols =
  if Hashtbl.mem t.indexes name then
    invalid_arg (Printf.sprintf "Table.create_index: index %s exists" name);
  let idx_cols =
    Array.of_list
      (List.map
         (fun c ->
           match Schema.col_index t.schema c with
           | Some i -> i
           | None ->
             invalid_arg (Printf.sprintf "Table.create_index: unknown column %s" c))
         cols)
  in
  if Array.length idx_cols = 0 then
    invalid_arg "Table.create_index: no columns";
  let idx = { idx_cols; idx_map = Key_map.empty } in
  Key_map.iter (fun _ e -> idx_add idx e) t.ordered;
  Hashtbl.replace t.indexes name idx

let index_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.indexes []
  |> List.sort Stdlib.compare

let index_cols t ~name =
  match Hashtbl.find_opt t.indexes name with
  | Some idx -> Some idx.idx_cols
  | None -> None

let index_lookup t ~name ~key =
  match Hashtbl.find_opt t.indexes name with
  | None -> invalid_arg (Printf.sprintf "Table.index_lookup: no index %s" name)
  | Some idx ->
    Option.value ~default:[] (Key_map.find_opt key idx.idx_map)
    |> List.filter (fun e -> not e.header.deleted)

let find_index_covering t cols =
  (* an index whose column set is exactly [cols] as a prefix-free match *)
  Hashtbl.fold
    (fun name idx acc ->
      match acc with
      | Some _ -> acc
      | None -> if idx.idx_cols = cols then Some name else None)
    t.indexes None

let live_count t = t.live
let total_count t = Hashtbl.length t.index

let purge_tombstones t ~before_cen =
  let victims =
    Hashtbl.fold
      (fun key_str e acc ->
        if e.header.Row_header.deleted && e.header.Row_header.cen < before_cen
        then key_str :: acc
        else acc)
      t.index []
  in
  List.iter (Hashtbl.remove t.index) victims;
  if victims <> [] then touch t;
  List.length victims

let copy t =
  let fresh =
    {
      schema = t.schema;
      index = Hashtbl.create (Hashtbl.length t.index);
      ordered = Key_map.empty;
      temp = fresh_temp ();
      indexes = Hashtbl.create 4;
      live = t.live;
      version = 0;
      digest_cache = None;
    }
  in
  Hashtbl.iter
    (fun key_str e ->
      let e' =
        {
          key = e.key;
          key_str;
          data = Array.copy e.data;
          header = Row_header.copy e.header;
        }
      in
      Hashtbl.replace fresh.index key_str e';
      if not e'.header.deleted then
        fresh.ordered <- Key_map.add e'.key e' fresh.ordered)
    t.index;
  (* Replicate the index definitions, then fill every secondary index in
     a single ordered pass (primary-key order, matching incremental
     maintenance). *)
  Hashtbl.iter
    (fun name idx ->
      Hashtbl.replace fresh.indexes name
        { idx_cols = idx.idx_cols; idx_map = Key_map.empty })
    t.indexes;
  if Hashtbl.length fresh.indexes > 0 then
    Key_map.iter (fun _ e -> indexes_add fresh e) fresh.ordered;
  fresh

let digest_entry enc k e =
  let module E = Gg_util.Codec.Enc in
  E.string enc k;
  E.bool enc e.header.Row_header.deleted;
  E.zigzag enc e.header.Row_header.sen;
  E.zigzag enc e.header.Row_header.cen;
  Csn.encode enc e.header.Row_header.csn;
  if not e.header.Row_header.deleted then
    Array.iter (Value.encode enc) e.data

let digest_into t enc =
  let module E = Gg_util.Codec.Enc in
  E.string enc t.schema.Schema.table_name;
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.index []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  |> List.iter (fun (k, e) -> digest_entry enc k e)

(* Canonical digest of the key-shard slice of the table: the rows whose
   [key_shard] is [shard]. The shard digests jointly cover every entry
   exactly once, so comparing them pair-wise localises a divergence to a
   key range — and each slice can be digested on its own domain (pure
   reads over [index]). Not cached: callers are tests and benches. *)
let digest_shard t ~shards ~shard =
  let module E = Gg_util.Codec.Enc in
  let enc = E.create () in
  E.string enc t.schema.Schema.table_name;
  E.varint enc shard;
  Hashtbl.fold
    (fun k e acc -> if key_shard ~shards k = shard then (k, e) :: acc else acc)
    t.index []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  |> List.iter (fun (k, e) -> digest_entry enc k e);
  Digest.to_hex (Digest.bytes (E.to_bytes enc))

(* The convergence oracle digests every node's whole database once per
   epoch; tables the epoch never wrote (most of TPC-C's nine) hit the
   cache. Any mutation that escapes [touch] would poison it, which is
   why every header stamp outside this module must call {!touch} — the
   checker's convergence oracle doubles as the regression test. *)
let digest t =
  match t.digest_cache with
  | Some (v, d) when v = t.version -> d
  | _ ->
    let enc = Gg_util.Codec.Enc.create () in
    digest_into t enc;
    let d = Digest.to_hex (Digest.bytes (Gg_util.Codec.Enc.to_bytes enc)) in
    t.digest_cache <- Some (t.version, d);
    d
