module Value = Gg_storage.Value
module Schema = Gg_storage.Schema
module Rng = Gg_util.Rng
module Zipf = Gg_util.Zipf

type profile = {
  name : string;
  users : int;
  theta : float;  (* author popularity skew *)
  fanout_alpha : float;  (* Pareto tail of follower counts *)
  max_fanout : int;
  read_pct : float;  (* timeline reads vs posts *)
  reads_per_txn : int;
  parse_cost_us : int;
}

let table_name = "account"

let base =
  {
    name = "SOCIAL";
    users = 50_000;
    theta = 0.9;
    fanout_alpha = 1.2;
    max_fanout = 64;
    read_pct = 0.7;
    reads_per_txn = 5;
    parse_cost_us = 300;
  }

let with_users p users = { p with users }
let with_fanout p ~alpha ~max_fanout = { p with fanout_alpha = alpha; max_fanout }

(* account: user_id | feed_count | post_count | last_seen *)
let schema =
  Schema.create ~name:table_name
    ~columns:
      [
        { Schema.name = "user_id"; ty = Schema.TInt };
        { Schema.name = "feed_count"; ty = Schema.TInt };
        { Schema.name = "post_count"; ty = Schema.TInt };
        { Schema.name = "last_seen"; ty = Schema.TInt };
      ]
    ~key:[ "user_id" ]

let feed_col = 1
let post_col = 2

let key_of i = [| Value.Int i |]

let load p db =
  let table = Gg_storage.Db.add_table db schema in
  for i = 0 to p.users - 1 do
    Gg_storage.Table.load table
      [| Value.Int i; Value.Int 0; Value.Int 0; Value.Int 0 |]
  done

type t = { profile : profile; rng : Rng.t; zipf : Zipf.t }

let create profile ~seed =
  {
    profile;
    rng = Rng.create seed;
    zipf = Zipf.create ~theta:profile.theta ~n:profile.users;
  }

let profile t = t.profile

(* The follow graph is implicit and deterministic: follower j of author
   a is a multiplicative hash of (a, j). Every replica derives the same
   graph from nothing, and popular authors (small zipf ranks drawn
   often) repeatedly fan out to the SAME follower rows — cross-region
   posts by hot authors collide on those rows, which is the contention
   this workload exists to produce. *)
let follower p ~author ~j =
  (((author * 2654435761) + (j * 40503) + 12289) land max_int) mod p.users

(* Pareto-tailed fanout: most posts reach a handful of followers, a few
   reach [max_fanout]. *)
let draw_fanout t =
  let p = t.profile in
  let u = 1.0 -. Rng.float t.rng 1.0 (* (0,1] *) in
  let k = int_of_float (u ** (-1.0 /. p.fanout_alpha)) in
  max 1 (min p.max_fanout k)

let next_txn t =
  let p = t.profile in
  if Rng.chance t.rng p.read_pct then begin
    (* timeline read: check own row + a few followed authors *)
    let self = Zipf.scrambled t.zipf t.rng in
    let ops =
      Op.Read { table = table_name; key = key_of self }
      :: List.init p.reads_per_txn (fun _ ->
             Op.Read
               {
                 table = table_name;
                 key = key_of (Zipf.scrambled t.zipf t.rng);
               })
    in
    Op.make ~label:(p.name ^ "-read") ~parse_cost_us:p.parse_cost_us ops
  end
  else begin
    (* post: bump own post_count, then fan a feed_count bump out to a
       power-law number of followers — a read-modify-write multicast *)
    let author = Zipf.scrambled t.zipf t.rng in
    let fanout = draw_fanout t in
    let ops =
      Op.Read { table = table_name; key = key_of author }
      :: Op.Add
           {
             table = table_name;
             key = key_of author;
             col = post_col;
             delta = 1;
           }
      :: List.init fanout (fun j ->
             Op.Add
               {
                 table = table_name;
                 key = key_of (follower p ~author ~j);
                 col = feed_col;
                 delta = 1;
               })
    in
    Op.make ~label:(p.name ^ "-post") ~parse_cost_us:p.parse_cost_us ops
  end
