(** Social-graph fanout workload (DESIGN.md §13).

    Zipf-popular authors post; each post is a read-modify-write
    multicast that bumps the author's [post_count] and the [feed_count]
    of a Pareto-tailed number of follower rows. The follow graph is an
    implicit deterministic hash of (author, slot), so hot authors hit
    the {e same} follower rows from every region — classic power-law
    write skew. Reads model timeline checks.

    All contended writes are single-column {!Op.Add}s, so row-level
    merge aborts colliding posts while column-level merge commits them
    (per-cell LWW still drops one bump when two posts race on the same
    cell — the counter-semantics caveat DESIGN.md §13 spells out). *)

type profile = {
  name : string;
  users : int;
  theta : float;
  fanout_alpha : float;
  max_fanout : int;
  read_pct : float;
  reads_per_txn : int;
  parse_cost_us : int;
}

val table_name : string
val base : profile
val with_users : profile -> int -> profile
val with_fanout : profile -> alpha:float -> max_fanout:int -> profile

val feed_col : int
val post_col : int

val load : profile -> Gg_storage.Db.t -> unit

type t

val create : profile -> seed:int -> t
val profile : t -> profile

val next_txn : t -> Op.txn
(** Deterministic given the creation seed and call sequence. *)
