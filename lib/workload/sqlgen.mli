(** SQL-shaped workload generators (DESIGN.md §13).

    This library cannot depend on the core, so a generator yields each
    transaction as a label plus a list of [(sql, params)] statements;
    the harness and checker wrap them into [Txn.Sql_txn] requests and
    run them through the SQL executor.

    {!Scan} mixes long range scans and full-scan aggregates over an
    [events] table with occasional single-column point updates — the
    analytics-adjacent shape that stresses read-set validation.
    {!Secidx} serves point queries through a secondary index on
    [profiles.region], with updates that flip rows between index keys to
    exercise index maintenance on the merge path. *)

type stmt = string * Gg_storage.Value.t array

module Scan : sig
  type profile = {
    name : string;
    records : int;
    regions : int;
    span : int;
    scan_pct : float;
    parse_cost_us : int;
  }

  val table_name : string
  val base : profile
  val with_records : profile -> int -> profile
  val load : profile -> Gg_storage.Db.t -> unit

  type t

  val create : profile -> seed:int -> t
  val profile : t -> profile

  val next_stmts : t -> string * stmt list
  (** [(label, statements)]; deterministic given seed and call
      sequence. *)
end

module Secidx : sig
  type profile = {
    name : string;
    records : int;
    regions : int;
    read_pct : float;
    flip_pct : float;
    parse_cost_us : int;
  }

  val table_name : string
  val index_name : string
  val base : profile
  val with_records : profile -> int -> profile

  val load : profile -> Gg_storage.Db.t -> unit
  (** Loads rows, then builds the [region] secondary index. *)

  type t

  val create : profile -> seed:int -> t
  val profile : t -> profile

  val next_stmts : t -> string * stmt list
end
