(* Open-loop arrival curves: offered load as a function of simulated
   time, independent of service capacity. The three shapes cover the
   internet-scale patterns the paper's closed-loop clients cannot
   express — steady load, the day/night swing of a geo-distributed user
   base, and a flash crowd. *)

type shape =
  | Constant
  | Diurnal of { period_ms : int; trough : float }
  | Flash of { at_ms : int; dur_ms : int; mult : float }

type t = { shape : shape; peak_tps : float }

let make ~shape ~peak_tps =
  if peak_tps <= 0.0 then invalid_arg "Arrival.make: peak_tps must be > 0";
  (match shape with
  | Constant -> ()
  | Diurnal { period_ms; trough } ->
    if period_ms <= 0 then invalid_arg "Arrival.make: period_ms must be > 0";
    if trough < 0.0 || trough > 1.0 then
      invalid_arg "Arrival.make: trough must be in [0,1]"
  | Flash { at_ms; dur_ms; mult } ->
    if at_ms < 0 || dur_ms <= 0 then
      invalid_arg "Arrival.make: flash window must be non-negative/positive";
    if mult < 1.0 then invalid_arg "Arrival.make: mult must be >= 1");
  { shape; peak_tps }

let peak_tps t = t.peak_tps

let pi = 4.0 *. atan 1.0

(* Instantaneous offered rate in txns/s; never exceeds [peak_tps], which
   is what makes Lewis thinning against the peak correct. *)
let rate_at t ~at_us =
  match t.shape with
  | Constant -> t.peak_tps
  | Diurnal { period_ms; trough } ->
    let period_us = float_of_int period_ms *. 1e3 in
    let phase = 2.0 *. pi *. (float_of_int at_us /. period_us) in
    (* trough at t = 0, peak mid-period *)
    t.peak_tps *. (trough +. ((1.0 -. trough) *. 0.5 *. (1.0 -. cos phase)))
  | Flash { at_ms; dur_ms; mult } ->
    let at = at_us / 1000 in
    if at >= at_ms && at < at_ms + dur_ms then t.peak_tps
    else t.peak_tps /. mult

(* How many think-time-limited users this offered load stands for
   (Little's law: users = rate x think time) — the knob that lets a few
   hundred simulated tps model millions of real users. *)
let implied_users t ~think_ms =
  int_of_float (ceil (t.peak_tps *. (float_of_int think_ms /. 1000.0)))

let to_string t =
  let shape =
    match t.shape with
    | Constant -> "constant"
    | Diurnal { period_ms; trough } ->
      Printf.sprintf "diurnal:%d:%g" period_ms trough
    | Flash { at_ms; dur_ms; mult } ->
      Printf.sprintf "flash:%d:%d:%g" at_ms dur_ms mult
  in
  Printf.sprintf "%s@%g" shape t.peak_tps

let of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad arrival spec %S (expected constant@TPS, \
          diurnal:PERIOD_MS:TROUGH@TPS or flash:AT_MS:DUR_MS:MULT@TPS)"
         s)
  in
  match String.rindex_opt s '@' with
  | None -> fail ()
  | Some i -> (
    let shape_s = String.sub s 0 i in
    let peak_s = String.sub s (i + 1) (String.length s - i - 1) in
    match float_of_string_opt peak_s with
    | None -> fail ()
    | Some peak_tps -> (
      let parts = String.split_on_char ':' shape_s in
      let shape =
        match parts with
        | [ "constant" ] -> Some Constant
        | [ "diurnal"; p; tr ] -> (
          match (int_of_string_opt p, float_of_string_opt tr) with
          | Some period_ms, Some trough -> Some (Diurnal { period_ms; trough })
          | _ -> None)
        | [ "flash"; a; d; m ] -> (
          match
            (int_of_string_opt a, int_of_string_opt d, float_of_string_opt m)
          with
          | Some at_ms, Some dur_ms, Some mult ->
            Some (Flash { at_ms; dur_ms; mult })
          | _ -> None)
        | _ -> None
      in
      match shape with
      | None -> fail ()
      | Some shape -> (
        match make ~shape ~peak_tps with
        | t -> Ok t
        | exception Invalid_argument m -> Error m)))
