module Value = Gg_storage.Value
module Schema = Gg_storage.Schema
module Rng = Gg_util.Rng

type profile = {
  name : string;
  records : int;
  counters : int;  (* int counter columns after the key *)
  hot_keys : int;  (* size of the rotating hot set *)
  hot_pct : float;  (* fraction of ops aimed at the hot set *)
  rotate_every : int;  (* txns between hot-set moves (the "burst") *)
  ops_per_txn : int;
  parse_cost_us : int;
}

let table_name = "hotspot"

let base =
  {
    name = "HOTKEY";
    records = 20_000;
    counters = 8;
    hot_keys = 16;
    hot_pct = 0.6;
    rotate_every = 400;
    ops_per_txn = 6;
    parse_cost_us = 250;
  }

let with_records p records = { p with records }
let with_hot p ~keys ~pct = { p with hot_keys = keys; hot_pct = pct }

let schema p =
  Schema.create ~name:table_name
    ~columns:
      ({ Schema.name = "hk_key"; ty = Schema.TInt }
      :: List.init p.counters (fun i ->
             { Schema.name = Printf.sprintf "c%d" i; ty = Schema.TInt }))
    ~key:[ "hk_key" ]

let key_of i = [| Value.Int i |]

let load p db =
  let table = Gg_storage.Db.add_table db (schema p) in
  for i = 0 to p.records - 1 do
    let row =
      Array.init (p.counters + 1) (fun c ->
          if c = 0 then Value.Int i else Value.Int 0)
    in
    Gg_storage.Table.load table row
  done

type t = { profile : profile; rng : Rng.t; mutable txns : int }

let create profile ~seed = { profile; rng = Rng.create seed; txns = 0 }
let profile t = t.profile

(* The hot set is a window of [hot_keys] consecutive keys that jumps to
   a fresh position every [rotate_every] transactions — every client
   piles onto the same few rows for a while, then the burst moves.
   Writes to hot rows are single-column counter bumps: the natural shape
   for column-level merge to disarm (distinct columns of one row merge
   per cell; same-column bumps still race). *)
let next_txn t =
  let p = t.profile in
  t.txns <- t.txns + 1;
  let window = t.txns / p.rotate_every in
  (* multiplicative hashing scatters successive windows across the table *)
  let hot_base = window * 2654435761 land max_int mod p.records in
  let ops =
    List.init p.ops_per_txn (fun _ ->
        if Rng.chance t.rng p.hot_pct then
          let k = (hot_base + Rng.int t.rng p.hot_keys) mod p.records in
          Op.Add
            {
              table = table_name;
              key = key_of k;
              col = 1 + Rng.int t.rng p.counters;
              delta = 1;
            }
        else
          let k = Rng.int t.rng p.records in
          if Rng.chance t.rng 0.7 then
            Op.Read { table = table_name; key = key_of k }
          else
            let data =
              Array.init (p.counters + 1) (fun c ->
                  if c = 0 then Value.Int k
                  else Value.Int (Rng.int t.rng 1000))
            in
            Op.Write { table = table_name; key = key_of k; data })
  in
  Op.make ~label:p.name ~parse_cost_us:p.parse_cost_us ops
