(** Open-loop arrival curves (DESIGN.md §13).

    The paper's clients are closed-loop: each connection blocks on its
    outstanding transaction, so offered load can never exceed service
    capacity and overload is unobservable. An {!t} instead describes
    offered load as a function of simulated time; {!Client} turns it
    into a nonhomogeneous Poisson arrival process by Lewis thinning
    (draw at the peak rate, accept with probability
    [rate_at/peak_tps]), with a bounded connection pool and FIFO queue
    in front of the cluster. *)

type shape =
  | Constant  (** steady offered load at [peak_tps] *)
  | Diurnal of { period_ms : int; trough : float }
      (** day/night swing: raised-cosine between [trough *. peak_tps]
          (at time 0) and [peak_tps] (mid-period) *)
  | Flash of { at_ms : int; dur_ms : int; mult : float }
      (** flash crowd: baseline [peak_tps /. mult], spiking to
          [peak_tps] during the window *)

type t

val make : shape:shape -> peak_tps:float -> t
(** Raises [Invalid_argument] on a non-positive peak, period or
    duration, a trough outside [0,1], or a mult below 1. *)

val peak_tps : t -> float

val rate_at : t -> at_us:int -> float
(** Instantaneous offered rate (txns/s) at simulated time [at_us];
    always in [(0, peak_tps)]. *)

val implied_users : t -> think_ms:int -> int
(** The think-time-limited user population this offered load stands for
    (Little's law) — e.g. a 500 tps peak with 10 s think time models
    5000 users; 200k tps with 60 s think time models 12 million. *)

val to_string : t -> string
(** [constant\@TPS], [diurnal:PERIOD_MS:TROUGH\@TPS] or
    [flash:AT_MS:DUR_MS:MULT\@TPS] — the CLI's [--arrival] syntax. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)
