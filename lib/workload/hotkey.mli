(** Hot-key burst workload (DESIGN.md §13).

    A rotating window of [hot_keys] rows absorbs [hot_pct] of all
    operations as single-column counter increments; the window jumps
    every [rotate_every] transactions, so contention arrives in bursts
    that move around the table — the celebrity-post / flash-sale shape.
    Cold traffic is uniform reads and whole-row writes.

    Hot writes are {!Op.Add}s on one of [counters] columns: under
    row-level merge, concurrent bumps of {e different} columns of one
    row still conflict; under column-level merge they commute, which is
    exactly the abort-rate delta [fig_skew] measures. *)

type profile = {
  name : string;
  records : int;
  counters : int;
  hot_keys : int;
  hot_pct : float;
  rotate_every : int;
  ops_per_txn : int;
  parse_cost_us : int;
}

val table_name : string
val base : profile
val with_records : profile -> int -> profile
val with_hot : profile -> keys:int -> pct:float -> profile

val load : profile -> Gg_storage.Db.t -> unit
(** Create [hotspot] and load [records] rows of zeroed counters. *)

type t

val create : profile -> seed:int -> t
val profile : t -> profile

val next_txn : t -> Op.txn
(** Deterministic given the creation seed and call sequence. *)
