module Value = Gg_storage.Value
module Schema = Gg_storage.Schema
module Rng = Gg_util.Rng

(* SQL-shaped workloads. This library cannot see {!Geogauss.Txn}, so a
   generator yields the transaction as (sql, params) statement lists;
   the harness/checker wraps them into [Txn.Sql_txn] requests. *)

type stmt = string * Value.t array

(* --- long scans over an append-style events table --------------------- *)

module Scan = struct
  type profile = {
    name : string;
    records : int;
    regions : int;
    span : int;  (* rows per range scan *)
    scan_pct : float;  (* scans+aggregates vs point updates *)
    parse_cost_us : int;
  }

  let table_name = "events"

  let base =
    {
      name = "SCAN";
      records = 8_000;
      regions = 8;
      span = 200;
      scan_pct = 0.8;
      parse_cost_us = 400;
    }

  let with_records p records = { p with records }

  let schema =
    Schema.create ~name:table_name
      ~columns:
        [
          { Schema.name = "ev_id"; ty = Schema.TInt };
          { Schema.name = "region"; ty = Schema.TInt };
          { Schema.name = "ts"; ty = Schema.TInt };
          { Schema.name = "amount"; ty = Schema.TInt };
        ]
      ~key:[ "ev_id" ]

  let load p db =
    let table = Gg_storage.Db.add_table db schema in
    for i = 0 to p.records - 1 do
      Gg_storage.Table.load table
        [|
          Value.Int i;
          Value.Int (i mod p.regions);
          Value.Int i;
          Value.Int ((i * 37) mod 1000);
        |]
    done

  type t = { profile : profile; rng : Rng.t }

  let create profile ~seed = { profile; rng = Rng.create seed }
  let profile t = t.profile

  let next_stmts t : string * stmt list =
    let p = t.profile in
    if Rng.chance t.rng p.scan_pct then
      if Rng.chance t.rng 0.5 then begin
        let lo = Rng.int t.rng (max 1 (p.records - p.span)) in
        ( p.name ^ "-range",
          [
            ( "SELECT ev_id, amount FROM events WHERE ev_id BETWEEN ? AND ?",
              [| Value.Int lo; Value.Int (lo + p.span - 1) |] );
          ] )
      end
      else
        ( p.name ^ "-agg",
          [
            ( "SELECT COUNT(*), SUM(amount) FROM events WHERE region = ?",
              [| Value.Int (Rng.int t.rng p.regions) |] );
          ] )
    else
      let k = Rng.int t.rng p.records in
      ( p.name ^ "-upd",
        [
          ( "UPDATE events SET amount = ? WHERE ev_id = ?",
            [| Value.Int (Rng.int t.rng 1000); Value.Int k |] );
        ] )
end

(* --- secondary-index point queries over a profiles table -------------- *)

module Secidx = struct
  type profile = {
    name : string;
    records : int;
    regions : int;  (* indexed column cardinality *)
    read_pct : float;
    flip_pct : float;  (* updates that move a row between index keys *)
    parse_cost_us : int;
  }

  let table_name = "profiles"
  let index_name = "profiles_by_region"

  let base =
    {
      name = "SECIDX";
      records = 10_000;
      regions = 64;
      read_pct = 0.7;
      flip_pct = 0.3;
      parse_cost_us = 400;
    }

  let with_records p records = { p with records }

  let schema =
    Schema.create ~name:table_name
      ~columns:
        [
          { Schema.name = "p_id"; ty = Schema.TInt };
          { Schema.name = "region"; ty = Schema.TInt };
          { Schema.name = "status"; ty = Schema.TInt };
          { Schema.name = "score"; ty = Schema.TInt };
        ]
      ~key:[ "p_id" ]

  let load p db =
    let table = Gg_storage.Db.add_table db schema in
    for i = 0 to p.records - 1 do
      Gg_storage.Table.load table
        [|
          Value.Int i;
          Value.Int (i mod p.regions);
          Value.Int 0;
          Value.Int ((i * 13) mod 100);
        |]
    done;
    Gg_storage.Table.create_index table ~name:index_name ~cols:[ "region" ]

  type t = { profile : profile; rng : Rng.t }

  let create profile ~seed = { profile; rng = Rng.create seed }
  let profile t = t.profile

  let next_stmts t : string * stmt list =
    let p = t.profile in
    if Rng.chance t.rng p.read_pct then
      ( p.name ^ "-read",
        [
          ( "SELECT p_id, score FROM profiles WHERE region = ?",
            [| Value.Int (Rng.int t.rng p.regions) |] );
        ] )
    else begin
      let k = Rng.int t.rng p.records in
      if Rng.chance t.rng p.flip_pct then
        (* move the row to another index key: exercises index
           maintenance on both the write and the merge path *)
        ( p.name ^ "-flip",
          [
            ( "UPDATE profiles SET region = ? WHERE p_id = ?",
              [| Value.Int (Rng.int t.rng p.regions); Value.Int k |] );
          ] )
      else
        ( p.name ^ "-upd",
          [
            ( "UPDATE profiles SET status = ?, score = ? WHERE p_id = ?",
              [|
                Value.Int (Rng.int t.rng 5);
                Value.Int (Rng.int t.rng 100);
                Value.Int k;
              |] );
          ] )
    end
end
