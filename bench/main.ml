(* Benchmark harness.

   Usage:
     main.exe                 run every paper experiment + microbenchmarks
     main.exe fig5 table3 ... run specific experiments
     main.exe micro           run only the Bechamel kernel benchmarks
     main.exe wallclock       end-to-end wall-clock throughput suite
                              (writes BENCH_wallclock.json)
     main.exe --fast [...]    shrunk populations/windows (smoke mode)

   Experiments regenerate the rows/series of every table and figure in
   the paper's evaluation (§7); see DESIGN.md for the index and
   EXPERIMENTS.md for recorded paper-vs-measured comparisons. *)

(* --- Bechamel microbenchmarks of the core kernels --- *)

let bench name f = Bechamel.Test.make ~name (Bechamel.Staged.stage f)

let bench_merge_rule =
  bench "delta-crdt merge (Algorithm 2)" (fun () ->
      let header = Gg_storage.Row_header.create () in
      for i = 1 to 100 do
        let meta =
          Gg_crdt.Meta.make ~sen:(i mod 7) ~cen:1
            ~csn:(Gg_storage.Csn.make ~ts:i ~node:(i mod 3))
        in
        ignore (Gg_crdt.Merge.merge_header header ~meta)
      done)

let bench_writeset_codec =
  let ws =
    Gg_crdt.Writeset.make
      ~meta:(Gg_crdt.Meta.make ~sen:1 ~cen:2 ~csn:(Gg_storage.Csn.make ~ts:3 ~node:1))
      ~records:
        (List.init 10 (fun i ->
             Gg_crdt.Writeset.make_record ~table:"usertable"
               ~key:[| Gg_storage.Value.Int i |] ~op:Gg_crdt.Writeset.Update
               ~data:
                 (Array.init 11 (fun c ->
                      if c = 0 then Gg_storage.Value.Int i
                      else Gg_storage.Value.Str "abcdefghijklmnop"))
               ()))
      ()
  in
  let batch = Gg_crdt.Writeset.Batch.make ~node:0 ~cen:2 ~txns:[ ws ] ~eof:true () in
  bench "write-set batch encode+gzip+decode" (fun () ->
      let wire = Gg_crdt.Writeset.Batch.to_wire batch in
      ignore (Gg_crdt.Writeset.Batch.of_wire wire))

let bench_zipf =
  let z = Gg_util.Zipf.create ~theta:0.8 ~n:1_000_000 in
  let rng = Gg_util.Rng.create 7 in
  bench "zipfian sampling (theta=0.8, 1M keys)" (fun () ->
      for _ = 1 to 100 do
        ignore (Gg_util.Zipf.scrambled z rng)
      done)

let bench_event_queue =
  bench "event queue push/pop (1k events)" (fun () ->
      let q = Gg_sim.Event_queue.create () in
      let rng = Gg_util.Rng.create 3 in
      for _ = 1 to 1_000 do
        Gg_sim.Event_queue.push q ~time:(Gg_util.Rng.int rng 100_000) ()
      done;
      while not (Gg_sim.Event_queue.is_empty q) do
        ignore (Gg_sim.Event_queue.pop q)
      done)

let bench_sql_parse =
  bench "sql parse (point select)" (fun () ->
      ignore
        (Gg_sql.Parser.parse
           "SELECT c_name, c_balance FROM customer WHERE c_w_id = 3 AND \
            c_d_id = 5 AND c_id = 42"))

let bench_op_exec =
  let db = Gg_storage.Db.create () in
  let p = Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 10_000 in
  Gg_workload.Ycsb.load p db;
  let g = Gg_workload.Ycsb.create p ~seed:5 in
  bench "op-level txn execution (YCSB, 10 ops)" (fun () ->
      ignore (Geogauss.Op_exec.exec db (Gg_workload.Ycsb.next_txn g)))

let run_micro () =
  let open Bechamel in
  let benchmarks =
    [
      bench_merge_rule; bench_writeset_codec; bench_zipf; bench_event_queue;
      bench_sql_parse; bench_op_exec;
    ]
  in
  print_endline "Microbenchmarks (Bechamel; monotonic clock)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~kde:(Some 500) () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              instance raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "  %-45s %10.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    benchmarks

(* --- Wall-clock throughput suite ---

   Unlike the Bechamel kernels above, these drive a whole simulated
   cluster end-to-end and measure how fast the simulator itself chews
   through a fixed scenario: sim-events/s, merge throughput
   (records/s through DeltaCRDTMerge phase A) and actual
   encode+compress passes per second. The scenario is fully seeded, so
   before/after comparisons see identical work. *)

type wallclock_row = {
  wc_label : string;
  wc_sim_ms : int;
  wc_wall_s : float;
  wc_events : int;
  wc_merged : int;
  wc_encodes : int;
  wc_committed : int;
  wc_aborted : int;
}

let wallclock_scenario ?(tracing = false) ~label ~topology ~load ~gen
    ~connections ~sim_ms () =
  let cluster = Geogauss.Cluster.create ~topology ~load () in
  if tracing then Gg_obs.Obs.set_tracing (Geogauss.Cluster.obs cluster) true;
  let n = Gg_sim.Topology.n_nodes topology in
  let clients =
    List.init n (fun i ->
        let next = gen i in
        let cl =
          Geogauss.Client.create cluster ~home:i ~connections ~gen:(fun () ->
              Geogauss.Txn.Op_txn (next ()))
        in
        Geogauss.Client.start cl;
        cl)
  in
  let sim = Geogauss.Cluster.sim cluster in
  Gg_crdt.Writeset.Batch.reset_encode_count ();
  let ev0 = Gg_sim.Sim.events sim in
  let t0 = Unix.gettimeofday () in
  Geogauss.Cluster.run_for_ms cluster sim_ms;
  let wall_s = Unix.gettimeofday () -. t0 in
  List.iter Geogauss.Client.stop clients;
  let merged = ref 0 in
  for i = 0 to n - 1 do
    merged :=
      !merged + Geogauss.Metrics.merged_records (Geogauss.Cluster.metrics cluster i)
  done;
  {
    wc_label = label;
    wc_sim_ms = sim_ms;
    wc_wall_s = wall_s;
    wc_events = Gg_sim.Sim.events sim - ev0;
    wc_merged = !merged;
    wc_encodes = Gg_crdt.Writeset.Batch.encode_count ();
    wc_committed = Geogauss.Cluster.total_committed cluster;
    wc_aborted = Geogauss.Cluster.total_aborted cluster;
  }

let per_sec count wall_s = float_of_int count /. max 1e-9 wall_s

let run_wallclock ~fast () =
  let sim_ms = if fast then 500 else 2_000 in
  let records = if fast then 5_000 else 20_000 in
  let ycsb_scenario ?tracing ~label () =
    let profile =
      Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention records
    in
    wallclock_scenario ?tracing ~label
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(Gg_workload.Ycsb.load profile)
      ~gen:(Gg_harness.Driver.ycsb_gens profile ~seed:42)
      ~connections:64 ~sim_ms ()
  in
  let ycsb = ycsb_scenario ~label:"ycsb-medium/china3" () in
  let tpcc =
    let cfg = Gg_workload.Tpcc.small in
    wallclock_scenario ~label:"tpcc-small/china3"
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(Gg_workload.Tpcc.load cfg)
      ~gen:(Gg_harness.Driver.tpcc_gens cfg ~seed:42)
      ~connections:32 ~sim_ms ()
  in
  (* Tracing overhead: the same seeded YCSB scenario with the event
     tracer recording (ring buffer + span emission) vs the plain run
     above, which pays only the disabled-tracing boolean checks. *)
  let ycsb_traced = ycsb_scenario ~tracing:true ~label:"ycsb-medium/china3+trace" () in
  let overhead_frac =
    (ycsb_traced.wc_wall_s -. ycsb.wc_wall_s) /. max 1e-9 ycsb.wc_wall_s
  in
  let rows = [ ycsb; tpcc; ycsb_traced ] in
  print_endline "Wall-clock throughput (fixed seeded scenarios)";
  List.iter
    (fun r ->
      Printf.printf
        "  %-22s %6.2f s wall for %d sim-ms | %10.0f events/s | %9.0f \
         merged-rec/s | %8.0f batches-enc/s | %d committed, %d aborted\n%!"
        r.wc_label r.wc_wall_s r.wc_sim_ms
        (per_sec r.wc_events r.wc_wall_s)
        (per_sec r.wc_merged r.wc_wall_s)
        (per_sec r.wc_encodes r.wc_wall_s)
        r.wc_committed r.wc_aborted)
    rows;
  Printf.printf
    "  tracing overhead (ycsb-medium): %.2f s off vs %.2f s on (%+.1f%%)\n%!"
    ycsb.wc_wall_s ycsb_traced.wc_wall_s (100.0 *. overhead_frac);
  let oc = open_out "BENCH_wallclock.json" in
  let row_json r =
    Printf.sprintf
      "    {\"label\": \"%s\", \"sim_ms\": %d, \"wall_s\": %.4f, \"events\": \
       %d, \"events_per_s\": %.1f, \"merged_records\": %d, \
       \"merged_records_per_s\": %.1f, \"batches_encoded\": %d, \
       \"batches_encoded_per_s\": %.1f, \"committed\": %d, \"aborted\": %d}"
      r.wc_label r.wc_sim_ms r.wc_wall_s r.wc_events
      (per_sec r.wc_events r.wc_wall_s)
      r.wc_merged
      (per_sec r.wc_merged r.wc_wall_s)
      r.wc_encodes
      (per_sec r.wc_encodes r.wc_wall_s)
      r.wc_committed r.wc_aborted
  in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"wallclock\",\n\
    \  \"scenarios\": [\n\
     %s\n\
    \  ],\n\
    \  \"tracing_overhead\": {\"scenario\": \"ycsb-medium/china3\", \
     \"wall_s_tracing_off\": %.4f, \"wall_s_tracing_on\": %.4f, \
     \"overhead_frac\": %.4f}\n\
     }\n"
    (String.concat ",\n" (List.map row_json rows))
    ycsb.wc_wall_s ycsb_traced.wc_wall_s overhead_frac;
  close_out oc;
  print_endline "  wrote BENCH_wallclock.json"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let fast = List.mem "--fast" args in
  let args = List.filter (fun a -> a <> "--fast") args in
  let run_experiment name =
    if not (Gg_harness.Experiments.run ~fast name) then begin
      Printf.eprintf "unknown experiment %s; available: %s micro wallclock\n" name
        (String.concat " " (List.map fst Gg_harness.Experiments.all));
      exit 1
    end
  in
  match args with
  | [] ->
    List.iter
      (fun (name, _) ->
        Printf.printf "=== %s ===\n%!" name;
        run_experiment name)
      Gg_harness.Experiments.all;
    run_micro ();
    run_wallclock ~fast ()
  | [ "micro" ] -> run_micro ()
  | names ->
    List.iter
      (fun name ->
        match name with
        | "micro" -> run_micro ()
        | "wallclock" -> run_wallclock ~fast ()
        | _ -> run_experiment name)
      names
