(* Benchmark harness.

   Usage:
     main.exe                 run every paper experiment + microbenchmarks
     main.exe fig5 table3 ... run specific experiments
     main.exe micro           run only the Bechamel kernel benchmarks
     main.exe wallclock       end-to-end wall-clock throughput suite
                              (writes BENCH_wallclock.json)
     main.exe parallel        harness speedup curve over --jobs
                              (writes BENCH_parallel.json)
     main.exe merge           intra-node merge kernel, seq vs sharded
                              (writes BENCH_merge.json)
     main.exe --fast [...]    shrunk populations/windows (smoke mode)
     main.exe -j N [...]      fan independent simulations over N domains
                              (0 = auto; deterministic output at any N)
     main.exe --out FILE      wallclock JSON output path (default
                              BENCH_wallclock.json; `make ci` writes a
                              fast run to /tmp for `bench diff`)

   Experiments regenerate the rows/series of every table and figure in
   the paper's evaluation (§7); see DESIGN.md for the index and
   EXPERIMENTS.md for recorded paper-vs-measured comparisons. *)

(* --- Bechamel microbenchmarks of the core kernels --- *)

let bench name f = Bechamel.Test.make ~name (Bechamel.Staged.stage f)

let bench_merge_rule =
  bench "delta-crdt merge (Algorithm 2)" (fun () ->
      let header = Gg_storage.Row_header.create () in
      for i = 1 to 100 do
        let meta =
          Gg_crdt.Meta.make ~sen:(i mod 7) ~cen:1
            ~csn:(Gg_storage.Csn.make ~ts:i ~node:(i mod 3))
        in
        ignore (Gg_crdt.Merge.merge_header header ~meta)
      done)

let bench_writeset_codec =
  let ws =
    Gg_crdt.Writeset.make
      ~meta:(Gg_crdt.Meta.make ~sen:1 ~cen:2 ~csn:(Gg_storage.Csn.make ~ts:3 ~node:1))
      ~records:
        (List.init 10 (fun i ->
             Gg_crdt.Writeset.make_record ~table:"usertable"
               ~key:[| Gg_storage.Value.Int i |] ~op:Gg_crdt.Writeset.Update
               ~data:
                 (Array.init 11 (fun c ->
                      if c = 0 then Gg_storage.Value.Int i
                      else Gg_storage.Value.Str "abcdefghijklmnop"))
               ()))
      ()
  in
  let batch = Gg_crdt.Writeset.Batch.make ~node:0 ~cen:2 ~txns:[ ws ] ~eof:true () in
  bench "write-set batch encode+gzip+decode" (fun () ->
      let wire = Gg_crdt.Writeset.Batch.to_wire batch in
      ignore (Gg_crdt.Writeset.Batch.of_wire wire))

let bench_zipf =
  let z = Gg_util.Zipf.create ~theta:0.8 ~n:1_000_000 in
  let rng = Gg_util.Rng.create 7 in
  bench "zipfian sampling (theta=0.8, 1M keys)" (fun () ->
      for _ = 1 to 100 do
        ignore (Gg_util.Zipf.scrambled z rng)
      done)

let bench_event_queue =
  bench "event queue push/pop (1k events)" (fun () ->
      let q = Gg_sim.Event_queue.create () in
      let rng = Gg_util.Rng.create 3 in
      for _ = 1 to 1_000 do
        Gg_sim.Event_queue.push q ~time:(Gg_util.Rng.int rng 100_000) ()
      done;
      while not (Gg_sim.Event_queue.is_empty q) do
        ignore (Gg_sim.Event_queue.pop q)
      done)

let bench_sql_parse =
  bench "sql parse (point select)" (fun () ->
      ignore
        (Gg_sql.Parser.parse
           "SELECT c_name, c_balance FROM customer WHERE c_w_id = 3 AND \
            c_d_id = 5 AND c_id = 42"))

let bench_op_exec =
  let db = Gg_storage.Db.create () in
  let p = Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 10_000 in
  Gg_workload.Ycsb.load p db;
  let g = Gg_workload.Ycsb.create p ~seed:5 in
  bench "op-level txn execution (YCSB, 10 ops)" (fun () ->
      ignore (Geogauss.Op_exec.exec db (Gg_workload.Ycsb.next_txn g)))

(* The convergence oracle digests every node's Db every epoch; the
   per-table digest cache (keyed on a mutation counter) turns the
   every-epoch case — most tables untouched since the last digest —
   into a hash over a handful of 32-byte table digests. *)
let digest_db =
  lazy
    (let db = Gg_storage.Db.create () in
     let p = Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 5_000 in
     Gg_workload.Ycsb.load p db;
     db)

let bench_db_digest_cold =
  bench "db digest, cold (5k rows, caches invalidated)" (fun () ->
      let db = Lazy.force digest_db in
      List.iter
        (fun n -> Gg_storage.Table.touch (Gg_storage.Db.get_table_exn db n))
        (Gg_storage.Db.table_names db);
      ignore (Gg_storage.Db.digest db))

let bench_db_digest_cached =
  bench "db digest, cached (5k rows, no mutations)" (fun () ->
      ignore (Gg_storage.Db.digest (Lazy.force digest_db)))

let run_micro () =
  let open Bechamel in
  let benchmarks =
    [
      bench_merge_rule; bench_writeset_codec; bench_zipf; bench_event_queue;
      bench_sql_parse; bench_op_exec; bench_db_digest_cold;
      bench_db_digest_cached;
    ]
  in
  print_endline "Microbenchmarks (Bechamel; monotonic clock)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~kde:(Some 500) () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              instance raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "  %-45s %10.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    benchmarks

(* --- Wall-clock throughput suite ---

   Unlike the Bechamel kernels above, these drive a whole simulated
   cluster end-to-end and measure how fast the simulator itself chews
   through a fixed scenario: sim-events/s, merge throughput
   (records/s through DeltaCRDTMerge phase A) and actual
   encode+compress passes per second. The scenario bodies live in
   {!Gg_harness.Wallclock} (fully deterministic, Unix-free); this file
   owns the timers. Each scenario runs [reps] times and we report the
   median and the min — single-shot wall numbers on a shared host are
   noisy enough to make small overheads (e.g. tracing) look negative.

   With --jobs > 1 the repetitions share the machine, so wall-clock
   fields get noisier (the counts never change); use -j 1 when the
   timings themselves are the point. *)

module W = Gg_harness.Wallclock

let reps = 3

type wallclock_row = {
  wc_label : string;
  wc_sim_ms : int;
  wc_walls : float list;  (** one per rep *)
  wc_counts : W.counts;
}

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let minimum l = List.fold_left min infinity l

let run_scenarios pool specs =
  (* One pool task per (scenario, rep); results return in submission
     order, so the row list (and every count in it) is independent of
     the pool width. *)
  let thunks =
    List.concat_map
      (fun (s, tracing) ->
        List.init reps (fun _ () ->
            let t0 = Unix.gettimeofday () in
            let c = s.W.run ~tracing () in
            (c, Unix.gettimeofday () -. t0)))
      specs
  in
  let results = ref (Gg_par.Pool.run pool thunks) in
  List.map
    (fun (s, _) ->
      let mine = List.filteri (fun i _ -> i < reps) !results in
      results := List.filteri (fun i _ -> i >= reps) !results;
      let counts = List.map fst mine in
      let c0 = List.hd counts in
      if not (List.for_all (( = ) c0) counts) then
        Printf.eprintf
          "  WARNING: %s: counts differ across reps — determinism bug!\n%!"
          s.W.name;
      {
        wc_label = s.W.name;
        wc_sim_ms = s.W.sim_ms;
        wc_walls = List.map snd mine;
        wc_counts = c0;
      })
    specs

let per_sec count wall_s = float_of_int count /. max 1e-9 wall_s

let run_wallclock ~fast ~pool ~out () =
  let specs =
    List.map (fun s -> (s, false)) (W.scenarios ~fast)
    @ [ (W.traced_scenario ~fast, true) ]
  in
  let rows = run_scenarios pool specs in
  print_endline
    (Printf.sprintf
       "Wall-clock throughput (fixed seeded scenarios; %d reps, median/min)"
       reps);
  List.iter
    (fun r ->
      let med = median r.wc_walls and mn = minimum r.wc_walls in
      Printf.printf
        "  %-24s %6.2f s median (%.2f min) for %d sim-ms | %10.0f events/s | \
         %9.0f merged-rec/s | %8.0f batches-enc/s | %d committed, %d aborted\n\
         %!"
        r.wc_label med mn r.wc_sim_ms
        (per_sec r.wc_counts.W.events med)
        (per_sec r.wc_counts.W.merged med)
        (per_sec r.wc_counts.W.encodes med)
        r.wc_counts.W.committed r.wc_counts.W.aborted)
    rows;
  let off, on_ =
    match rows with
    | [ ycsb; _; traced ] -> (minimum ycsb.wc_walls, minimum traced.wc_walls)
    | _ -> assert false
  in
  (* min-vs-min: both runs' best case, so scheduler hiccups on either
     side can't push the overhead negative the way single shots did. *)
  let overhead_frac = (on_ -. off) /. max 1e-9 off in
  Printf.printf
    "  tracing overhead (ycsb-medium): %.2f s off vs %.2f s on (%+.1f%%, min \
     of %d)\n\
     %!"
    off on_ (100.0 *. overhead_frac) reps;
  if overhead_frac > 0.05 then
    Printf.eprintf
      "  WARNING: tracing overhead %.1f%% exceeds the 5%% budget (`geogauss \
       bench diff' gates on this)\n\
       %!"
      (100.0 *. overhead_frac);
  let oc = open_out out in
  let row_json r =
    let med = median r.wc_walls and mn = minimum r.wc_walls in
    Printf.sprintf
      "    {\"label\": \"%s\", \"sim_ms\": %d, \"reps\": %d, \"wall_s\": \
       %.4f, \"wall_s_median\": %.4f, \"wall_s_min\": %.4f, \"events\": %d, \
       \"events_per_s\": %.1f, \"merged_records\": %d, \
       \"merged_records_per_s\": %.1f, \"batches_encoded\": %d, \
       \"batches_encoded_per_s\": %.1f, \"committed\": %d, \"aborted\": %d}"
      r.wc_label r.wc_sim_ms reps med med mn r.wc_counts.W.events
      (per_sec r.wc_counts.W.events med)
      r.wc_counts.W.merged
      (per_sec r.wc_counts.W.merged med)
      r.wc_counts.W.encodes
      (per_sec r.wc_counts.W.encodes med)
      r.wc_counts.W.committed r.wc_counts.W.aborted
  in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"wallclock\",\n\
    \  \"reps\": %d,\n\
    \  \"scenarios\": [\n\
     %s\n\
    \  ],\n\
    \  \"tracing_overhead\": {\"scenario\": \"ycsb-medium/china3\", \
     \"wall_s_tracing_off\": %.4f, \"wall_s_tracing_on\": %.4f, \
     \"overhead_frac\": %.4f}\n\
     }\n"
    reps
    (String.concat ",\n" (List.map row_json rows))
    off on_ overhead_frac;
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* --- Parallel-harness speedup suite ---

   Times the two fan-out-heavy workloads — a chaos-check sweep and an
   experiment grid — at jobs = 1/2/4/8 and records the speedup curve.
   The outputs themselves are byte-identical across the sweep (that is
   the whole point of the ordered pool); only wall time may change.
   Speedup tops out near the machine's core count: on a single-core
   host the curve is flat. *)

let parallel_jobs = [ 1; 2; 4; 8 ]

(* --- Intra-node merge kernel (seq vs sharded) ---

   Drives {!Geogauss.Epoch_merge} directly on a synthetic epoch — no
   cluster, no sim — so the sharded phase A/B is measured in isolation.
   "cold" merges the epoch into a fresh copy of the loaded table;
   "warm" re-merges the same write sets into the already-merged state
   (the ACI idempotent-replay path: every row resolves to Already or a
   deterministic loser). The commit/abort counts and the resulting
   database digest are asserted identical at every width — the bench
   doubles as an equality check. Speedup only materialises with real
   cores; host_cores is recorded so a 1-core run reads honestly. *)

let merge_jobs_swept = [ 1; 2; 4; 8 ]
let merge_reps = 3

let build_merge_epoch ~n_rows ~n_txns ~recs_per_txn =
  let db = Gg_storage.Db.create () in
  let table =
    Gg_storage.Db.create_table db ~name:"kv"
      ~columns:
        [
          { Gg_storage.Schema.name = "k"; ty = Gg_storage.Schema.TInt };
          { name = "v"; ty = TInt };
        ]
      ~key:[ "k" ]
  in
  for i = 0 to n_rows - 1 do
    Gg_storage.Table.load table [| Gg_storage.Value.Int i; Gg_storage.Value.Int 0 |]
  done;
  let rng = Gg_util.Rng.create 0xEB0C in
  let txns =
    List.init n_txns (fun i ->
        let meta =
          Gg_crdt.Meta.make ~sen:1 ~cen:1
            ~csn:(Gg_storage.Csn.make ~ts:(1_000 + i) ~node:(i mod 3))
        in
        let records =
          List.init recs_per_txn (fun r ->
              (* key collisions across transactions are the point (they
                 exercise the conflict marks); within a transaction a
                 duplicate key just resolves like a same-csn re-write *)
              let roll = Gg_util.Rng.int rng 100 in
              if roll < 85 then
                let k = Gg_util.Rng.int rng n_rows in
                Gg_crdt.Writeset.make_record ~table:"kv"
                  ~key:[| Gg_storage.Value.Int k |] ~op:Gg_crdt.Writeset.Update
                  ~data:[| Gg_storage.Value.Int k; Gg_storage.Value.Int i |] ()
              else if roll < 95 then
                let k = n_rows + Gg_util.Rng.int rng n_rows in
                Gg_crdt.Writeset.make_record ~table:"kv"
                  ~key:[| Gg_storage.Value.Int k |] ~op:Gg_crdt.Writeset.Insert
                  ~data:[| Gg_storage.Value.Int k; Gg_storage.Value.Int (r + 1) |] ()
              else
                let k = Gg_util.Rng.int rng n_rows in
                Gg_crdt.Writeset.make_record ~table:"kv"
                  ~key:[| Gg_storage.Value.Int k |] ~op:Gg_crdt.Writeset.Delete
                  ~data:[||] ())
        in
        Gg_crdt.Writeset.make ~meta ~records ())
  in
  (db, txns)

let run_merge ~fast () =
  let n_rows = if fast then 10_000 else 40_000 in
  let n_txns = if fast then 1_500 else 6_000 in
  let recs_per_txn = 8 in
  let base, txns = build_merge_epoch ~n_rows ~n_txns ~recs_per_txn in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf
    "Intra-node merge kernel (%d txns x %d records, %d rows; %d reps, \
     host_cores=%d)\n\
     %!"
    n_txns recs_per_txn n_rows merge_reps (Gg_par.Pool.default_jobs ());
  let reference = ref None in
  let rows =
    List.map
      (fun jobs ->
        let outcomes =
          List.init merge_reps (fun _ ->
              let db = Gg_storage.Db.copy base in
              let m, cold =
                time (fun () ->
                    Geogauss.Epoch_merge.run ~threshold:0 ~db ~jobs ~ssi:false
                      txns)
              in
              let w, warm =
                time (fun () ->
                    Geogauss.Epoch_merge.run ~threshold:0 ~db ~jobs ~ssi:false
                      txns)
              in
              ( cold, warm,
                ( Geogauss.Epoch_merge.n_committed m,
                  Geogauss.Epoch_merge.n_dead m,
                  Geogauss.Epoch_merge.n_committed w,
                  Geogauss.Epoch_merge.n_dead w,
                  Gg_storage.Db.digest db ) ))
        in
        let colds = List.map (fun (c, _, _) -> c) outcomes in
        let warms = List.map (fun (_, w, _) -> w) outcomes in
        let result = (fun (_, _, r) -> r) (List.hd outcomes) in
        List.iter
          (fun (_, _, r) ->
            if r <> result then begin
              Printf.eprintf "  ERROR: jobs=%d results differ across reps\n%!" jobs;
              exit 1
            end)
          outcomes;
        (match !reference with
        | None -> reference := Some result
        | Some r ->
          if r <> result then begin
            Printf.eprintf
              "  ERROR: jobs=%d merge result differs from jobs=1 — \
               determinism bug!\n\
               %!"
              jobs;
            exit 1
          end);
        let committed, dead, _, _, _ = result in
        let n_records = n_txns * recs_per_txn in
        Printf.printf
          "  jobs=%d cold %6.3f s median (%.3f min, %9.0f rec/s) | warm \
           %6.3f s median | %d committed, %d dead\n\
           %!"
          jobs (median colds) (minimum colds)
          (per_sec n_records (median colds))
          (median warms) committed dead;
        (jobs, colds, warms))
      merge_jobs_swept
  in
  let committed, dead, _, _, digest = Option.get !reference in
  print_endline "  commit/abort counts and db digest identical at every width";
  let base_cold = match rows with (_, c, _) :: _ -> median c | [] -> 1.0 in
  let oc = open_out "BENCH_merge.json" in
  let row_json (jobs, colds, warms) =
    Printf.sprintf
      "    {\"jobs\": %d, \"cold_wall_s_median\": %.4f, \"cold_wall_s_min\": \
       %.4f, \"warm_wall_s_median\": %.4f, \"warm_wall_s_min\": %.4f, \
       \"cold_records_per_s\": %.1f, \"cold_speedup\": %.3f}"
      jobs (median colds) (minimum colds) (median warms) (minimum warms)
      (per_sec (n_txns * recs_per_txn) (median colds))
      (base_cold /. median colds)
  in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"merge\",\n\
    \  \"host_cores\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"n_txns\": %d,\n\
    \  \"records_per_txn\": %d,\n\
    \  \"n_rows\": %d,\n\
    \  \"committed\": %d,\n\
    \  \"dead\": %d,\n\
    \  \"db_digest\": \"%s\",\n\
    \  \"kernels\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Gg_par.Pool.default_jobs ())
    merge_reps n_txns recs_per_txn n_rows committed dead digest
    (String.concat ",\n" (List.map row_json rows));
  close_out oc;
  print_endline "  wrote BENCH_merge.json";
  if Gg_par.Pool.default_jobs () <= 1 then
    print_endline
      "  note: single-core host — sharded widths only add spawn overhead \
       here; speedup needs real cores"

let run_parallel () =
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let workloads =
    [
      ( "check-sweep-50",
        fun pool ->
          ignore (Gg_check.Checker.check ~fast:true ~pool ~seeds:50 ()) );
      ( "fig8-fast",
        fun pool ->
          ignore
            (Gg_harness.Experiments.tables ~pool
               ~setting:(Gg_harness.Experiments.setting ~fast:true)
               ~fast:true "fig8") );
    ]
  in
  Printf.printf "Parallel harness speedup (%d cores available)\n%!"
    (Gg_par.Pool.default_jobs ());
  let curves =
    List.map
      (fun (name, task) ->
        (* untimed warm-up so the jobs=1 point doesn't also pay
           first-run heap growth and make later points look
           supra-linear *)
        task Gg_par.Pool.seq;
        let walls =
          List.map
            (fun j ->
              let wall =
                time (fun () -> Gg_par.Pool.with_pool ~jobs:j (fun p -> task p))
              in
              Printf.printf "  %-16s jobs=%d %6.2f s\n%!" name j wall;
              (j, wall))
            parallel_jobs
        in
        let base = match walls with (_, w) :: _ -> w | [] -> 1.0 in
        (* On a single-core host the curve only measures domain overhead
           (0.66x…0.12x): printing it as "speedup" misleads. The JSON
           keeps the raw walls either way, tagged with host_cores. *)
        if Gg_par.Pool.default_jobs () > 1 then
          List.iter
            (fun (j, w) ->
              Printf.printf "  %-16s jobs=%d speedup %.2fx\n%!" name j (base /. w))
            walls
        else
          Printf.printf
            "  %-16s single-core host, speedup not meaningful (walls above \
             are domain overhead)\n\
             %!"
            name;
        (name, base, walls))
      workloads
  in
  let oc = open_out "BENCH_parallel.json" in
  let curve_json (name, base, walls) =
    Printf.sprintf
      "    {\"workload\": \"%s\", \"points\": [\n%s\n    ]}"
      name
      (String.concat ",\n"
         (List.map
            (fun (j, w) ->
              Printf.sprintf
                "      {\"jobs\": %d, \"wall_s\": %.4f, \"speedup\": %.3f}" j w
                (base /. w))
            walls))
  in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": \"parallel\",\n\
    \  \"host_cores\": %d,\n\
    \  \"workloads\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Gg_par.Pool.default_jobs ())
    (String.concat ",\n" (List.map curve_json curves));
  close_out oc;
  print_endline "  wrote BENCH_parallel.json"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let fast = List.mem "--fast" args in
  let args = List.filter (fun a -> a <> "--fast") args in
  let jobs = ref 1 in
  let out = ref "BENCH_wallclock.json" in
  let rec strip_opts = function
    | [] -> []
    | ("-j" | "--jobs") :: n :: rest ->
      jobs := int_of_string n;
      strip_opts rest
    | "--out" :: path :: rest ->
      (* wallclock output path; lets `make ci` write a throwaway fast run
         for `geogauss bench diff' without clobbering the committed
         baseline *)
      out := path;
      strip_opts rest
    | a :: rest -> a :: strip_opts rest
  in
  let args = strip_opts args in
  let out = !out in
  Gg_par.Pool.with_pool ~jobs:!jobs @@ fun pool ->
  let run_experiment name =
    if not (Gg_harness.Experiments.run ~fast ~pool name) then begin
      Printf.eprintf
        "unknown experiment %s; available: %s micro wallclock parallel\n" name
        (String.concat " " (List.map fst Gg_harness.Experiments.all));
      exit 1
    end
  in
  match args with
  | [] ->
    List.iter
      (fun (name, _) ->
        Printf.printf "=== %s ===\n%!" name;
        run_experiment name)
      Gg_harness.Experiments.all;
    run_micro ();
    run_wallclock ~fast ~pool ~out ()
  | [ "micro" ] -> run_micro ()
  | names ->
    List.iter
      (fun name ->
        match name with
        | "micro" -> run_micro ()
        | "wallclock" -> run_wallclock ~fast ~pool ~out ()
        | "parallel" -> run_parallel ()
        | "merge" -> run_merge ~fast ()
        | _ -> run_experiment name)
      names
