(* Benchmark harness.

   Usage:
     main.exe                 run every paper experiment + microbenchmarks
     main.exe fig5 table3 ... run specific experiments
     main.exe micro           run only the Bechamel kernel benchmarks
     main.exe --fast [...]    shrunk populations/windows (smoke mode)

   Experiments regenerate the rows/series of every table and figure in
   the paper's evaluation (§7); see DESIGN.md for the index and
   EXPERIMENTS.md for recorded paper-vs-measured comparisons. *)

let ms_of_span s = Bechamel.Time.span_to_uint64_ns s |> Int64.to_float |> fun ns -> ns /. 1e6

let () = ignore ms_of_span

(* --- Bechamel microbenchmarks of the core kernels --- *)

let bench_merge_rule =
  let open Bechamel in
  Test.make ~name:"delta-crdt merge (Algorithm 2)"
    (Staged.stage (fun () ->
         let header = Gg_storage.Row_header.create () in
         for i = 1 to 100 do
           let meta =
             Gg_crdt.Meta.make ~sen:(i mod 7) ~cen:1
               ~csn:(Gg_storage.Csn.make ~ts:i ~node:(i mod 3))
           in
           ignore (Gg_crdt.Merge.merge_header header ~meta)
         done))

let bench_writeset_codec =
  let open Bechamel in
  let ws =
    Gg_crdt.Writeset.make
      ~meta:(Gg_crdt.Meta.make ~sen:1 ~cen:2 ~csn:(Gg_storage.Csn.make ~ts:3 ~node:1))
      ~records:
        (List.init 10 (fun i ->
             {
               Gg_crdt.Writeset.table = "usertable";
               key = [| Gg_storage.Value.Int i |];
               op = Gg_crdt.Writeset.Update;
               data =
                 Array.init 11 (fun c ->
                     if c = 0 then Gg_storage.Value.Int i
                     else Gg_storage.Value.Str "abcdefghijklmnop");
             }))
      ()
  in
  let batch = Gg_crdt.Writeset.Batch.make ~node:0 ~cen:2 ~txns:[ ws ] ~eof:true () in
  Test.make ~name:"write-set batch encode+gzip+decode"
    (Staged.stage (fun () ->
         let wire = Gg_crdt.Writeset.Batch.to_wire batch in
         ignore (Gg_crdt.Writeset.Batch.of_wire wire)))

let bench_zipf =
  let open Bechamel in
  let z = Gg_util.Zipf.create ~theta:0.8 ~n:1_000_000 in
  let rng = Gg_util.Rng.create 7 in
  Test.make ~name:"zipfian sampling (theta=0.8, 1M keys)"
    (Staged.stage (fun () ->
         for _ = 1 to 100 do
           ignore (Gg_util.Zipf.scrambled z rng)
         done))

let bench_event_queue =
  let open Bechamel in
  Test.make ~name:"event queue push/pop (1k events)"
    (Staged.stage (fun () ->
         let q = Gg_sim.Event_queue.create () in
         let rng = Gg_util.Rng.create 3 in
         for _ = 1 to 1_000 do
           Gg_sim.Event_queue.push q ~time:(Gg_util.Rng.int rng 100_000) ()
         done;
         while not (Gg_sim.Event_queue.is_empty q) do
           ignore (Gg_sim.Event_queue.pop q)
         done))

let bench_sql_parse =
  let open Bechamel in
  Test.make ~name:"sql parse (point select)"
    (Staged.stage (fun () ->
         ignore
           (Gg_sql.Parser.parse
              "SELECT c_name, c_balance FROM customer WHERE c_w_id = 3 AND \
               c_d_id = 5 AND c_id = 42")))

let bench_op_exec =
  let open Bechamel in
  let db = Gg_storage.Db.create () in
  let p = Gg_workload.Ycsb.with_records Gg_workload.Ycsb.medium_contention 10_000 in
  Gg_workload.Ycsb.load p db;
  let g = Gg_workload.Ycsb.create p ~seed:5 in
  Test.make ~name:"op-level txn execution (YCSB, 10 ops)"
    (Staged.stage (fun () ->
         ignore (Geogauss.Op_exec.exec db (Gg_workload.Ycsb.next_txn g))))

let run_micro () =
  let open Bechamel in
  let benchmarks =
    [
      bench_merge_rule; bench_writeset_codec; bench_zipf; bench_event_queue;
      bench_sql_parse; bench_op_exec;
    ]
  in
  print_endline "Microbenchmarks (Bechamel; monotonic clock)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) ~kde:(Some 500) () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              instance raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "  %-45s %10.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    benchmarks

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let fast = List.mem "--fast" args in
  let args = List.filter (fun a -> a <> "--fast") args in
  let run_experiment name =
    if not (Gg_harness.Experiments.run ~fast name) then begin
      Printf.eprintf "unknown experiment %s; available: %s micro\n" name
        (String.concat " " (List.map fst Gg_harness.Experiments.all));
      exit 1
    end
  in
  match args with
  | [] ->
    List.iter
      (fun (name, _) ->
        Printf.printf "=== %s ===\n%!" name;
        run_experiment name)
      Gg_harness.Experiments.all;
    run_micro ()
  | [ "micro" ] -> run_micro ()
  | names ->
    List.iter
      (fun name -> if name = "micro" then run_micro () else run_experiment name)
      names
