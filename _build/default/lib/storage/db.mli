(** A catalog of tables — one full replica's database state. *)

type t

val create : unit -> t

val create_table :
  t -> name:string -> columns:Schema.column list -> key:string list -> Table.t
(** Raises [Invalid_argument] if the table exists. *)

val add_table : t -> Schema.t -> Table.t
(** Create a table from an existing schema. *)

val get_table : t -> string -> Table.t option
val get_table_exn : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_names : t -> string list
(** Sorted. *)

val temp_clear_all : t -> unit
(** Drop every table's temporary insert entries (end of epoch). *)

val purge_tombstones : t -> before_cen:int -> int
(** GC tombstones older than the given epoch across all tables. *)

val digest : t -> string
(** Canonical MD5 digest of all table contents and headers. Two replicas
    holding consistent snapshots produce equal digests. *)

val row_count : t -> int
(** Total live rows across tables. *)

val copy : t -> t
(** Deep copy of every table (state transfer to a recovering replica). *)

val replace_contents : t -> from:t -> unit
(** Replace this database's tables with deep copies of [from]'s (the
    receiving side of state transfer). *)

val estimated_bytes : t -> int
(** Rough serialized size, used to model state-transfer time. *)
