lib/storage/schema.ml: Array Hashtbl List Printf Value
