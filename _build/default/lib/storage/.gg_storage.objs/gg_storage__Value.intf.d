lib/storage/value.mli: Format Gg_util
