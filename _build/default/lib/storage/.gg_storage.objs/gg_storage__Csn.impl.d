lib/storage/csn.ml: Gg_util Printf Stdlib
