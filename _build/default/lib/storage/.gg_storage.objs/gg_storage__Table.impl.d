lib/storage/table.ml: Array Csn Gg_util Hashtbl List Map Option Printf Row_header Schema Seq Stdlib Value
