lib/storage/wal.mli:
