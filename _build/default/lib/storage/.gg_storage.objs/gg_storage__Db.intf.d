lib/storage/db.mli: Schema Table
