lib/storage/value.ml: Array Bytes Format Gg_util Printf Stdlib
