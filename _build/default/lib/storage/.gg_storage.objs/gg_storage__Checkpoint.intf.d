lib/storage/checkpoint.mli: Db
