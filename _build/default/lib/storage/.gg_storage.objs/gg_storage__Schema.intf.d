lib/storage/schema.mli: Value
