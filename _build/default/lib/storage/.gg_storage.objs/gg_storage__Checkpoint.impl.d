lib/storage/checkpoint.ml: Array Bytes Csn Db Gg_util List Option Printf Row_header Schema Table Value
