lib/storage/wal.ml:
