lib/storage/row_header.mli: Csn
