lib/storage/table.mli: Gg_util Row_header Schema Value
