lib/storage/row_header.ml: Csn Printf
