lib/storage/csn.mli: Gg_util
