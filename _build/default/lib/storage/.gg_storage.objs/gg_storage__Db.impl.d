lib/storage/db.ml: Digest Gg_util Hashtbl List Printf Schema Stdlib Table
