(** Durability-log cost model.

    The paper's Table 2 reports a per-transaction "Log" phase; this
    module models a group-committed write-ahead log: appends are counted
    and sized, and [append_latency] returns the simulated time the log
    phase contributes to a transaction. *)

type t

val create : ?fsync_us:int -> ?throughput_mbps:int -> unit -> t
(** Defaults: 3 ms fsync, 200 MB/s device. *)

val append : t -> bytes:int -> int
(** Record an append; returns its simulated latency in µs
    ([fsync + bytes/throughput]). *)

val records : t -> int
val bytes : t -> int
