(** Full-database checkpoints: canonical serialization and restore of an
    entire replica state (schemas, rows, headers, tombstones).

    This is the MOT-style durability substrate behind two features: the
    state-snapshot transfer that re-joins a recovered replica, and
    checkpoint+redo recovery (a checkpoint plus the write sets of later
    epochs reproduces the exact pre-crash state, because epoch merges are
    deterministic). *)

val encode : Db.t -> bytes
(** Deterministic: equal states produce equal bytes. *)

val decode : bytes -> Db.t
(** Raises [Invalid_argument] on corrupt input. *)

val size : Db.t -> int
(** Serialized size (state-transfer cost model). *)
