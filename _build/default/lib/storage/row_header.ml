type t = {
  mutable sen : int;
  mutable csn : Csn.t;
  mutable cen : int;
  mutable deleted : bool;
}

(* cen = -1: a fresh row belongs to the initial snapshot, which precedes
   epoch 0 — otherwise the pristine header would win first-write-wins
   against every epoch-0 transaction. *)
let create () = { sen = -1; csn = Csn.zero; cen = -1; deleted = false }

let stamp t ~sen ~csn ~cen =
  t.sen <- sen;
  t.csn <- csn;
  t.cen <- cen

let copy t = { sen = t.sen; csn = t.csn; cen = t.cen; deleted = t.deleted }

let to_string t =
  Printf.sprintf "{sen=%d csn=%s cen=%d%s}" t.sen (Csn.to_string t.csn) t.cen
    (if t.deleted then " deleted" else "")
