type col_ty = TInt | TFloat | TStr

type column = { name : string; ty : col_ty }

type t = { table_name : string; columns : column array; key_cols : int array }

let ty_name = function TInt -> "int" | TFloat -> "float" | TStr -> "string"

let create ~name ~columns ~key =
  if columns = [] then invalid_arg "Schema.create: no columns";
  let columns = Array.of_list columns in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg (Printf.sprintf "Schema.create: duplicate column %s" c.name);
      Hashtbl.add seen c.name ())
    columns;
  if key = [] then invalid_arg "Schema.create: empty key";
  let index_of cname =
    let rec go i =
      if i >= Array.length columns then
        invalid_arg (Printf.sprintf "Schema.create: unknown key column %s" cname)
      else if columns.(i).name = cname then i
      else go (i + 1)
    in
    go 0
  in
  let key_cols = Array.of_list (List.map index_of key) in
  { table_name = name; columns; key_cols }

let arity t = Array.length t.columns

let col_index t name =
  let rec go i =
    if i >= Array.length t.columns then None
    else if t.columns.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let col_ty t i = t.columns.(i).ty

let is_key_col t i = Array.exists (fun k -> k = i) t.key_cols

let primary_key t row = Array.map (fun i -> row.(i)) t.key_cols

let key_string t row = Value.encode_key (primary_key t row)

let validate_row t row =
  if Array.length row <> Array.length t.columns then
    Error
      (Printf.sprintf "table %s expects %d columns, got %d" t.table_name
         (Array.length t.columns) (Array.length row))
  else begin
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then
          match (v, t.columns.(i).ty) with
          | Value.Null, _ ->
            if is_key_col t i then
              err :=
                Some
                  (Printf.sprintf "NULL in key column %s" t.columns.(i).name)
          | Value.Int _, TInt | Value.Float _, TFloat | Value.Str _, TStr -> ()
          | v, ty ->
            err :=
              Some
                (Printf.sprintf "column %s expects %s, got %s"
                   t.columns.(i).name (ty_name ty) (Value.type_name v)))
      row;
    match !err with None -> Ok () | Some m -> Error m
  end
