(** Per-row metadata used by the multi-master OCC (paper §4.1).

    A row header records the start epoch number [sen], commit sequence
    number [csn] and commit epoch number [cen] of the last transaction to
    pre-write the row, plus a tombstone flag. Pre-writes during
    {!Gg_crdt} merge overwrite these fields; validation then compares a
    transaction's own csn against the header's to detect write-write
    conflict losses. *)

type t = {
  mutable sen : int;
  mutable csn : Csn.t;
  mutable cen : int;
  mutable deleted : bool;
}

val create : unit -> t
(** Fresh header: epoch -1 (the initial snapshot precedes epoch 0), zero
    csn, live. *)

val stamp : t -> sen:int -> csn:Csn.t -> cen:int -> unit
(** Overwrite the pre-write fields (a winning merge). *)

val copy : t -> t
val to_string : t -> string
