type t = Null | Int of int | Float of float | Str of string

let rank = function Null -> 0 | Int _ | Float _ -> 1 | Str _ -> 2

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> Stdlib.compare x y
  | (Null | Int _ | Float _ | Str _), _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let pp fmt = function
  | Null -> Format.pp_print_string fmt "NULL"
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "'%s'" s

let to_string v = Format.asprintf "%a" pp v

let type_name = function
  | Null -> "null"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"

let is_truthy = function
  | Null -> false
  | Int 0 -> false
  | Float 0.0 -> false
  | Int _ | Float _ -> true
  | Str "" -> false
  | Str _ -> true

let encode enc v =
  let module E = Gg_util.Codec.Enc in
  match v with
  | Null -> E.byte enc 0
  | Int i ->
    E.byte enc 1;
    E.zigzag enc i
  | Float f ->
    E.byte enc 2;
    E.float enc f
  | Str s ->
    E.byte enc 3;
    E.string enc s

let decode dec =
  let module D = Gg_util.Codec.Dec in
  match D.byte dec with
  | 0 -> Null
  | 1 -> Int (D.zigzag dec)
  | 2 -> Float (D.float dec)
  | 3 -> Str (D.string dec)
  | n -> invalid_arg (Printf.sprintf "Value.decode: bad tag %d" n)

let encode_row row =
  let enc = Gg_util.Codec.Enc.create () in
  Gg_util.Codec.Enc.varint enc (Array.length row);
  Array.iter (encode enc) row;
  Gg_util.Codec.Enc.to_bytes enc

let decode_row bytes =
  let dec = Gg_util.Codec.Dec.of_bytes bytes in
  let n = Gg_util.Codec.Dec.varint dec in
  Array.init n (fun _ -> decode dec)

let encode_key key =
  let enc = Gg_util.Codec.Enc.create () in
  Array.iter (encode enc) key;
  Bytes.to_string (Gg_util.Codec.Enc.to_bytes enc)
