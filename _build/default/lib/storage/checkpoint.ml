module Enc = Gg_util.Codec.Enc
module Dec = Gg_util.Codec.Dec

let encode_schema enc (s : Schema.t) =
  Enc.string enc s.Schema.table_name;
  Enc.varint enc (Array.length s.Schema.columns);
  Array.iter
    (fun (c : Schema.column) ->
      Enc.string enc c.Schema.name;
      Enc.byte enc
        (match c.Schema.ty with Schema.TInt -> 0 | Schema.TFloat -> 1 | Schema.TStr -> 2))
    s.Schema.columns;
  Enc.varint enc (Array.length s.Schema.key_cols);
  Array.iter (Enc.varint enc) s.Schema.key_cols

let decode_schema dec =
  let name = Dec.string dec in
  let n_cols = Dec.varint dec in
  let columns =
    List.init n_cols (fun _ ->
        let cname = Dec.string dec in
        let ty =
          match Dec.byte dec with
          | 0 -> Schema.TInt
          | 1 -> Schema.TFloat
          | 2 -> Schema.TStr
          | t -> invalid_arg (Printf.sprintf "Checkpoint: bad column type %d" t)
        in
        { Schema.name = cname; ty })
  in
  let n_key = Dec.varint dec in
  let key_idx = List.init n_key (fun _ -> Dec.varint dec) in
  let key =
    List.map
      (fun i ->
        match List.nth_opt columns i with
        | Some c -> c.Schema.name
        | None -> invalid_arg "Checkpoint: key column out of range")
      key_idx
  in
  Schema.create ~name ~columns ~key

let encode_table enc table =
  encode_schema enc (Table.schema table);
  (* secondary index definitions *)
  let idx_names = Table.index_names table in
  Enc.varint enc (List.length idx_names);
  List.iter
    (fun name ->
      Enc.string enc name;
      let cols = Option.get (Table.index_cols table ~name) in
      Enc.varint enc (Array.length cols);
      Array.iter (Enc.varint enc) cols)
    idx_names;
  (* Every entry — tombstones included, so the restored replica keeps
     rejecting writes to deleted rows — sorted by index key so equal
     states serialize identically. *)
  let entries = ref [] in
  Table.iter_all table ~f:(fun e -> entries := e :: !entries);
  let entries =
    List.sort
      (fun (a : Table.entry) b -> compare a.Table.key_str b.Table.key_str)
      !entries
  in
  Enc.varint enc (List.length entries);
  List.iter
    (fun (e : Table.entry) ->
      Enc.varint enc (Array.length e.Table.key);
      Array.iter (Value.encode enc) e.Table.key;
      Enc.bool enc e.Table.header.Row_header.deleted;
      Enc.zigzag enc e.Table.header.Row_header.sen;
      Enc.zigzag enc e.Table.header.Row_header.cen;
      Csn.encode enc e.Table.header.Row_header.csn;
      Enc.varint enc (Array.length e.Table.data);
      Array.iter (Value.encode enc) e.Table.data)
    entries

let decode_table dec db =
  let schema = decode_schema dec in
  let table = Db.add_table db schema in
  let n_idx = Dec.varint dec in
  let idx_defs =
    List.init n_idx (fun _ ->
        let name = Dec.string dec in
        let nc = Dec.varint dec in
        let col_idx = List.init nc (fun _ -> Dec.varint dec) in
        (name, col_idx))
  in
  let n = Dec.varint dec in
  for _ = 1 to n do
    let klen = Dec.varint dec in
    let key = Array.init klen (fun _ -> Value.decode dec) in
    let deleted = Dec.bool dec in
    let sen = Dec.zigzag dec in
    let cen = Dec.zigzag dec in
    let csn = Csn.decode dec in
    let dlen = Dec.varint dec in
    let data = Array.init dlen (fun _ -> Value.decode dec) in
    let header = Row_header.create () in
    Row_header.stamp header ~sen ~csn ~cen;
    Table.insert_committed table ~key ~data ~header;
    if deleted then
      match Table.find table (Value.encode_key key) with
      | Some e -> Table.delete table e
      | None -> ()
  done;
  List.iter
    (fun (name, col_idx) ->
      let cols =
        List.map
          (fun i -> (Table.schema table).Schema.columns.(i).Schema.name)
          col_idx
      in
      Table.create_index table ~name ~cols)
    idx_defs

let magic = "GGCKPT1"

let encode db =
  let enc = Enc.create () in
  Enc.string enc magic;
  let names = Db.table_names db in
  Enc.varint enc (List.length names);
  List.iter (fun name -> encode_table enc (Db.get_table_exn db name)) names;
  Enc.to_bytes enc

let decode bytes =
  let dec = Dec.of_bytes bytes in
  try
    if Dec.string dec <> magic then invalid_arg "Checkpoint: bad magic";
    let db = Db.create () in
    let n = Dec.varint dec in
    for _ = 1 to n do
      decode_table dec db
    done;
    db
  with Dec.Truncated -> invalid_arg "Checkpoint: truncated"

let size db = Bytes.length (encode db)
