type t = {
  fsync_us : int;
  throughput_mbps : int;
  mutable records : int;
  mutable bytes : int;
}

let create ?(fsync_us = 3_000) ?(throughput_mbps = 200) () =
  { fsync_us; throughput_mbps; records = 0; bytes = 0 }

let append t ~bytes =
  t.records <- t.records + 1;
  t.bytes <- t.bytes + bytes;
  t.fsync_us + (bytes / t.throughput_mbps)

let records t = t.records
let bytes t = t.bytes
