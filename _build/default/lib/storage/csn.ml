type t = { ts : int; node : int }

let make ~ts ~node = { ts; node }
let zero = { ts = 0; node = 0 }

let compare a b =
  let c = Stdlib.compare a.ts b.ts in
  if c <> 0 then c else Stdlib.compare a.node b.node

let equal a b = compare a b = 0
let to_string t = Printf.sprintf "%d@%d" t.ts t.node

let encode enc t =
  Gg_util.Codec.Enc.varint enc t.ts;
  Gg_util.Codec.Enc.varint enc t.node

let decode dec =
  let ts = Gg_util.Codec.Dec.varint dec in
  let node = Gg_util.Codec.Dec.varint dec in
  { ts; node }
