(** SQL values stored in rows and manipulated by the expression
    evaluator. *)

type t = Null | Int of int | Float of float | Str of string

val compare : t -> t -> int
(** Total order: Null < Int/Float (numeric, compared by value) < Str.
    Ints and floats compare numerically against each other so that SQL
    comparisons behave as expected. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val type_name : t -> string

val is_truthy : t -> bool
(** SQL-ish truthiness: NULL and 0 are false. *)

val encode : Gg_util.Codec.Enc.t -> t -> unit
val decode : Gg_util.Codec.Dec.t -> t

val encode_row : t array -> bytes
val decode_row : bytes -> t array

val encode_key : t array -> string
(** Compact unique encoding of a primary key (not order-preserving; used
    as a hash key). *)
