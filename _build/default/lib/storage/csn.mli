(** Commit sequence numbers.

    A csn is the pair (local commit timestamp, server id) assigned at a
    transaction's commit point. Because server ids are unique, csns are
    globally unique, which is what gives the paper's merge rule (Lemma 2)
    a strict total order within an epoch. *)

type t = { ts : int; node : int }

val make : ts:int -> node:int -> t
val zero : t

val compare : t -> t -> int
(** Order by timestamp, then by node id. *)

val equal : t -> t -> bool
val to_string : t -> string
val encode : Gg_util.Codec.Enc.t -> t -> unit
val decode : Gg_util.Codec.Dec.t -> t
