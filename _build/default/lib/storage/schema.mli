(** Table schemas: column names/types and the primary key. *)

type col_ty = TInt | TFloat | TStr

type column = { name : string; ty : col_ty }

type t = private {
  table_name : string;
  columns : column array;
  key_cols : int array;  (** indices into [columns] *)
}

val create : name:string -> columns:column list -> key:string list -> t
(** Raises [Invalid_argument] on duplicate column names, an empty or
    unknown key, or an empty column list. *)

val arity : t -> int
val col_index : t -> string -> int option
val col_ty : t -> int -> col_ty
val is_key_col : t -> int -> bool

val primary_key : t -> Value.t array -> Value.t array
(** Project the key columns out of a full row. *)

val key_string : t -> Value.t array -> string
(** [key_string t row] is the encoded primary key of a full row. *)

val validate_row : t -> Value.t array -> (unit, string) result
(** Arity and per-column type check (NULL allowed in non-key columns). *)

val ty_name : col_ty -> string
