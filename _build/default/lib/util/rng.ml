type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele et al.). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits: a 63-bit value would wrap negative in OCaml's int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 1) land max_int in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped into [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let exponential t mean =
  let u = Stdlib.max 1e-12 (1.0 -. float t 1.0) in
  -.mean *. log u
