type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ~theta ~n =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in [0, 1)";
  if theta = 0.0 then
    (* Uniform special case; the Gray formula divides by zero at theta=0. *)
    { n; theta; alpha = 0.0; zetan = 0.0; eta = 0.0; zeta2 = 0.0 }
  else begin
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; zeta2 }
  end

let n t = t.n
let theta t = t.theta

let next t rng =
  if t.theta = 0.0 then Rng.int rng t.n
  else begin
    let u = Rng.float rng 1.0 in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
    else
      let v =
        float_of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
      in
      let k = int_of_float v in
      if k >= t.n then t.n - 1 else if k < 0 then 0 else k
  end

(* Fibonacci-hash scramble; stays within [0, n). *)
let scrambled t rng =
  let k = next t rng in
  let h = (k * 0x9E3779B1) land max_int in
  h mod t.n
