type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.headers in
  let rows = List.rev_map (pad_to ncols) t.rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  measure t.headers;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = widths.(i) in
        Buffer.add_char buf ' ';
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (w - String.length cell + 1) ' ');
        Buffer.add_char buf '|')
      row;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  sep ();
  line t.headers;
  sep ();
  List.iter line rows;
  sep ();
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let fmt_f ?(dec = 2) f = Printf.sprintf "%.*f" dec f

let fmt_si f =
  let a = Float.abs f in
  if a >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.1fk" (f /. 1e3)
  else Printf.sprintf "%.1f" f
