(** Zipfian-distributed integer sampling, as used by the YCSB benchmark.

    Implements the rejection-inversion free, precomputed-constant sampler
    from Gray et al. ("Quickly generating billion-record synthetic
    databases"), the same scheme the YCSB core workload uses. The skew
    parameter [theta] matches the paper's notation: [theta = 0] is uniform,
    [theta = 0.99] is highly skewed. *)

type t

val create : theta:float -> n:int -> t
(** [create ~theta ~n] prepares a sampler over the domain [0, n). Raises
    [Invalid_argument] if [n <= 0], [theta < 0] or [theta >= 1]. (YCSB
    restricts theta to [0, 1); the paper sweeps 0–0.99.) *)

val n : t -> int
(** Domain size. *)

val theta : t -> float
(** Skew parameter. *)

val next : t -> Rng.t -> int
(** Draw a sample in [0, n). Item 0 is the most popular. *)

val scrambled : t -> Rng.t -> int
(** Like {!next} but applies a fixed hash scramble so hot items are spread
    over the key space (YCSB's "scrambled zipfian"). *)
