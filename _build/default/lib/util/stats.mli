(** Online statistics and latency histograms for experiment metrics. *)

(** {1 Scalar accumulators} *)

module Acc : sig
  type t
  (** Mean/variance/min/max accumulator (Welford). *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float
  (** [nan] when empty. *)

  val total : t -> float
  val merge : t -> t -> t
  (** Combine two accumulators into a fresh one. *)
end

(** {1 Latency histograms} *)

module Hist : sig
  type t
  (** Log-bucketed histogram of non-negative values (e.g. latencies in
      microseconds). Buckets grow geometrically, giving ~2% relative
      error, bounded memory, and O(1) insert. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0, 100]. 0 when empty. *)

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float
  val max : t -> float
  val merge : t -> t -> t
end

(** {1 Time series} *)

module Series : sig
  type t
  (** Append-only (x, y) series used for per-epoch and timeline figures. *)

  val create : unit -> t
  val add : t -> x:float -> y:float -> unit
  val length : t -> int
  val points : t -> (float * float) array
  (** In insertion order. *)
end
