(* LZ77 with 64 KiB window, 3-byte minimum match, greedy parsing over a
   hash table of 3-byte prefixes. Token stream:
     0x00 <byte>                      literal
     0x01 <varint len> <varint dist>  match (len >= 3, dist >= 1)
   The stream is prefixed with the uncompressed length. *)

let min_match = 3
let max_match = 258
let window = 1 lsl 16
let hash_bits = 15
let hash_size = 1 lsl hash_bits

let hash3 data i =
  let a = Char.code (Bytes.get data i)
  and b = Char.code (Bytes.get data (i + 1))
  and c = Char.code (Bytes.get data (i + 2)) in
  ((a lsl 10) lxor (b lsl 5) lxor c) land (hash_size - 1)

let compress input =
  let n = Bytes.length input in
  let enc = Codec.Enc.create () in
  Codec.Enc.varint enc n;
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let match_len i j =
    let limit = min max_match (n - i) in
    let rec go k =
      if k < limit && Bytes.get input (i + k) = Bytes.get input (j + k) then
        go (k + 1)
      else k
    in
    go 0
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash3 input i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_pos = ref (-1) in
    if !i + min_match <= n then begin
      let h = hash3 input !i in
      let candidate = ref head.(h) in
      let tries = ref 32 in
      while !candidate >= 0 && !tries > 0 do
        if !i - !candidate <= window then begin
          let len = match_len !i !candidate in
          if len > !best_len then begin
            best_len := len;
            best_pos := !candidate
          end;
          candidate := prev.(!candidate);
          decr tries
        end
        else begin
          candidate := -1 (* beyond window: chain only gets older *)
        end
      done
    end;
    if !best_len >= min_match then begin
      Codec.Enc.byte enc 0x01;
      Codec.Enc.varint enc !best_len;
      Codec.Enc.varint enc (!i - !best_pos);
      for k = !i to !i + !best_len - 1 do
        insert k
      done;
      i := !i + !best_len
    end
    else begin
      Codec.Enc.byte enc 0x00;
      Codec.Enc.byte enc (Char.code (Bytes.get input !i));
      insert !i;
      incr i
    end
  done;
  Codec.Enc.to_bytes enc

let decompress input =
  let dec = Codec.Dec.of_bytes input in
  try
    let n = Codec.Dec.varint dec in
    let out = Buffer.create n in
    while Buffer.length out < n do
      match Codec.Dec.byte dec with
      | 0x00 -> Buffer.add_char out (Char.chr (Codec.Dec.byte dec))
      | 0x01 ->
        let len = Codec.Dec.varint dec in
        let dist = Codec.Dec.varint dec in
        if dist <= 0 || dist > Buffer.length out || len < min_match then
          invalid_arg "Compress.decompress: corrupt stream";
        let start = Buffer.length out - dist in
        (* Overlapping copies are meaningful (run-length encoding). *)
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
      | _ -> invalid_arg "Compress.decompress: bad token"
    done;
    if Buffer.length out <> n then
      invalid_arg "Compress.decompress: length mismatch";
    Buffer.to_bytes out
  with Codec.Dec.Truncated ->
    invalid_arg "Compress.decompress: truncated stream"

let ratio b =
  let n = Bytes.length b in
  if n = 0 then 1.0
  else float_of_int (Bytes.length (compress b)) /. float_of_int n
