(** Byte-level compression standing in for the Gzip stage of the paper's
    transport (§5.1). A self-contained LZ77 with a greedy hash-chain
    matcher: exact roundtrip, deterministic output, and compression ratios
    in the same regime as gzip on the repetitive row encodings produced by
    OLTP write sets. *)

val compress : bytes -> bytes
(** Never fails; incompressible input grows by a small framing
    overhead. *)

val decompress : bytes -> bytes
(** Inverse of {!compress}. Raises [Invalid_argument] on data not
    produced by {!compress}. *)

val ratio : bytes -> float
(** [ratio b] = compressed size / original size (1.0 for empty input). *)
