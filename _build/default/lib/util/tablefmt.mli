(** ASCII table rendering for experiment reports. *)

type t

val create : title:string -> headers:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val render : t -> string
(** Aligned, boxed table with the title above. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val fmt_f : ?dec:int -> float -> string
(** Fixed-point float formatting, default 2 decimals. *)

val fmt_si : float -> string
(** Compact magnitude formatting: 12.3k, 4.56M, ... *)
