lib/util/stats.mli:
