lib/util/codec.mli:
