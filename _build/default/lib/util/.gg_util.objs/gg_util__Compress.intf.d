lib/util/compress.mli:
