lib/util/compress.ml: Array Buffer Bytes Char Codec
