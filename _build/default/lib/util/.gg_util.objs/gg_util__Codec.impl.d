lib/util/codec.ml: Buffer Bytes Char Int64 String Sys
