lib/util/tablefmt.mli:
