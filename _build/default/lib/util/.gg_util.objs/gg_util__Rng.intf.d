lib/util/rng.mli:
