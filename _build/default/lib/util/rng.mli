(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (SplitMix64). Every stochastic
    component of the simulator draws from an explicit [t] so that whole
    cluster runs are reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. Used to give each node / client its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range
    [lo, hi]. Raises [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [0,1]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on an empty
    array. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean. Used for jitter and think times. *)
