(** Anna (Wu et al., TKDE'19): coordination-free KV store built from
    lattice composition. Operations apply to the local replica and are
    answered immediately; deltas gossip to peers on a timer and merge via
    the LWW map lattice. Eventual consistency: no commit/abort
    notification semantics, no aborts ever (paper Fig 5's caveat). *)

include Engine.S

val state_digest : t -> node:int -> string
(** Digest of a node's lattice state (for convergence tests). *)

val flush_gossip : t -> unit
(** Force an immediate gossip round (used by tests to reach
    convergence). *)
