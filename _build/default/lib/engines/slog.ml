module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Topology = Gg_sim.Topology
module Cpu = Gg_sim.Cpu
module Op = Gg_workload.Op

type region_state = {
  master : int;
  cpu : Cpu.t;
  mutable log_free : int;  (* deterministic log replay is serial-ish *)
}

type t = {
  sim : Sim.t;
  net : Net.t;
  cfg : Engine.config;
  regions : region_state array;
  orderer : int;  (* global ordering node for multi-home txns *)
}

let name = "SLOG"

let create net cfg =
  let topo = Net.topology net in
  let sim = Net.sim net in
  let regions =
    Array.init (Topology.n_regions topo) (fun r ->
        let master =
          match Topology.nodes_in_region topo r with
          | first :: _ -> first
          | [] -> 0
        in
        { master; cpu = Cpu.create sim ~cores:cfg.Engine.cores; log_free = 0 })
  in
  { sim; net; cfg; regions; orderer = 0 }

let home t key_str = Hashtbl.hash key_str mod Array.length t.regions

let homes_of t (txn : Op.txn) =
  Array.fold_left
    (fun acc op ->
      let h = home t (Op.op_key_str op) in
      if List.mem h acc then acc else h :: acc)
    [] txn.Op.ops

let submit t ~node (txn : Op.txn) cb =
  let topo = Net.topology t.net in
  let submit_time = Sim.now t.sim in
  let homes = homes_of t txn in
  let primary_home = match homes with h :: _ -> h | [] -> 0 in
  let region = t.regions.(primary_home) in
  let route_us =
    if Topology.region_of topo node = primary_home then 0
    else 2 * Topology.latency topo node region.master
  in
  (* Multi-home transactions detour through the global orderer. *)
  let order_us =
    if List.length homes <= 1 then 0
    else
      (2 * Topology.latency topo region.master t.orderer)
      + (t.cfg.Engine.batch_us / 2)
  in
  (* Wait for the next input-log batch boundary, then deterministic
     replay; the regional log is also synchronously replicated within
     the region (cheap) and asynchronously across regions. *)
  let batch_wait = t.cfg.Engine.batch_us / 2 in
  let intra_quorum = 2_000 in
  let exec_cost = (Op.n_ops txn * t.cfg.Engine.exec_op_us) + txn.Op.exec_extra_us in
  (* Traffic accounting: the input joins the home-region log, which is
     replicated to every other region's follower. *)
  let input_bytes = 64 + Engine.input_wire_bytes [ txn ] in
  (if Topology.region_of topo node <> primary_home then
     Net.send t.net ~src:node ~dst:region.master ~bytes:input_bytes (fun () -> ()));
  Array.iteri
    (fun r (other : region_state) ->
      if r <> primary_home then
        Net.send t.net ~src:region.master ~dst:other.master ~bytes:input_bytes
          (fun () -> ()))
    t.regions;
  Sim.schedule t.sim ~after:(route_us + order_us + batch_wait) (fun () ->
      (* Deterministic replay serializes conflicting work; approximate
         with a per-region log pipeline. *)
      let now = Sim.now t.sim in
      let start = max now region.log_free in
      let replay = exec_cost / 4 in
      region.log_free <- start + replay;
      Cpu.run region.cpu ~cost:exec_cost (fun () ->
          let after = max 0 (start + replay - Sim.now t.sim) + intra_quorum in
          Sim.schedule t.sim ~after (fun () ->
              cb
                {
                  Engine.committed = true;
                  latency_us = Sim.now t.sim - submit_time;
                })))
