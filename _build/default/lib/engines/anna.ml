module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Cpu = Gg_sim.Cpu
module Op = Gg_workload.Op
module Lww = Gg_crdt.Lattice.Lww
module Lww_map = Gg_crdt.Lattice.Lww_map

type node_state = {
  id : int;
  cpu : Cpu.t;
  mutable state : Lww_map.t;
  mutable last_gossip_ts : int;
  mutable clock : int;  (* local lamport-ish timestamp *)
}

type t = {
  sim : Sim.t;
  net : Net.t;
  cfg : Engine.config;
  nodes : node_state array;
  gossip_us : int;
  mutable started : bool;
}

let name = "Anna"

let create net cfg =
  let sim = Net.sim net in
  {
    sim;
    net;
    cfg;
    nodes =
      Array.init (Net.n_nodes net) (fun id ->
          {
            id;
            cpu = Cpu.create sim ~cores:cfg.Engine.cores;
            state = Lww_map.empty;
            last_gossip_ts = min_int;
            clock = 0;
          });
    gossip_us = 50_000;
    started = false;
  }

let delta_bytes delta =
  (* key + stamp + small value per entry *)
  64 + (Lww_map.cardinal delta * 48)

let gossip t nd =
  let delta = Lww_map.delta nd.state ~since:nd.last_gossip_ts in
  nd.last_gossip_ts <- nd.clock;
  if Lww_map.cardinal delta > 0 then
    Net.broadcast t.net ~src:nd.id ~bytes:(delta_bytes delta) (fun dst () ->
        let peer = t.nodes.(dst) in
        peer.state <- Lww_map.merge peer.state delta)

let rec schedule_gossip t nd =
  Sim.schedule t.sim ~after:t.gossip_us (fun () ->
      gossip t nd;
      schedule_gossip t nd)

let ensure_started t =
  if not t.started then begin
    t.started <- true;
    Array.iter (fun nd -> schedule_gossip t nd) t.nodes
  end

let apply_op nd (op : Op.op) =
  match op with
  | Op.Read _ -> ()
  | Op.Write _ | Op.Add _ | Op.Insert _ | Op.Delete _ ->
    nd.clock <- nd.clock + 1;
    let key = Op.op_table op ^ "/" ^ Op.op_key_str op in
    nd.state <-
      Lww_map.set nd.state ~key
        (Lww.make ~ts:nd.clock ~node:nd.id ~value:(string_of_int nd.clock))

let submit t ~node (txn : Op.txn) cb =
  ensure_started t;
  let nd = t.nodes.(node) in
  let submit_time = Sim.now t.sim in
  let cost = (Op.n_ops txn * t.cfg.Engine.exec_op_us) + txn.Op.exec_extra_us in
  Cpu.run nd.cpu ~cost (fun () ->
      Array.iter (apply_op nd) txn.Op.ops;
      cb { Engine.committed = true; latency_us = Sim.now t.sim - submit_time })

let state_digest t ~node =
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, (v : Lww.t)) ->
      Buffer.add_string buf k;
      Buffer.add_string buf (Printf.sprintf "=%d@%d:%s;" v.Lww.ts v.Lww.node v.Lww.value))
    (Lww_map.bindings t.nodes.(node).state);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let flush_gossip t =
  Array.iter (fun nd -> gossip t nd) t.nodes
