lib/engines/engine.ml: Array Bytes Gg_sim Gg_storage Gg_util Gg_workload List
