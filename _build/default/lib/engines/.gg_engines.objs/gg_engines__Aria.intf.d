lib/engines/aria.mli: Engine Gg_sim
