lib/engines/crdb.ml: Array Engine Gg_sim Gg_workload Hashtbl List Option
