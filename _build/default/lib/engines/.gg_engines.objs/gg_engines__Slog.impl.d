lib/engines/slog.ml: Array Engine Gg_sim Gg_workload Hashtbl List
