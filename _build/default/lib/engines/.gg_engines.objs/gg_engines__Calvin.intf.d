lib/engines/calvin.mli: Engine Gg_sim
