lib/engines/slog.mli: Engine
