lib/engines/qstore.mli: Engine
