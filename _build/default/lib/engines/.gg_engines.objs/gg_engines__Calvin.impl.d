lib/engines/calvin.ml: Det_base
