lib/engines/engine.mli: Gg_sim Gg_workload
