lib/engines/qstore.ml: Det_base
