lib/engines/det_base.ml: Array Engine Fun Gg_sim Gg_workload Hashtbl List Option
