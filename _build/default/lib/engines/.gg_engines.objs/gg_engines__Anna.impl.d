lib/engines/anna.ml: Array Buffer Digest Engine Gg_crdt Gg_sim Gg_workload List Printf
