lib/engines/det_base.mli: Engine Gg_sim Gg_workload
