lib/engines/aria.ml: Det_base
