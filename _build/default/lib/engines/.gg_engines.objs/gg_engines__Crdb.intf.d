lib/engines/crdb.mli: Engine
