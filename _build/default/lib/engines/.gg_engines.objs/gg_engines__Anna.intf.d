lib/engines/anna.mli: Engine
