lib/engines/calvinfs.ml: Det_base
