lib/engines/calvinfs.mli: Engine
