(** Calvin (Thomson et al., SIGMOD'12): deterministic multi-master with
    input replication and ordered-lock execution. Conflicting
    transactions serialize on per-key lock chains; rounds are barriers,
    so long transactions stall the whole batch (paper §6, Fig 7). *)

include Engine.S

val create_ft : Gg_sim.Net.t -> Engine.config -> t
(** Calvin-Raft: input batches replicated through Raft (Fig 12). *)
