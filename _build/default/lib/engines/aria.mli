(** Aria (Lu et al., VLDB'20): deterministic batches without ordered
    locks — every transaction in a batch executes against the same
    snapshot, then a reservation pass aborts WAW/RAW conflicts with
    earlier transactions. A per-transaction dependency-analysis cost
    raises latency; batch barriers make long transactions expensive. *)

include Engine.S

val create_ft : Gg_sim.Net.t -> Engine.config -> t
(** Aria-Raft (Fig 12). *)
