(** CockroachDB-style baseline: sharded master-follower ranges with
    per-range Raft and transactional 2PC (parallel commits).

    Matches the paper's §7 configuration: in-memory store, follower
    ("stale") reads served locally, two extra replicas per region. Every
    {e write} pays: routing to the key's leaseholder region (if remote)
    plus a Raft quorum round from the leaseholder to the nearest other
    region — per-transaction coordination that dominates geo-distributed
    latency, which is exactly the drawback GeoGauss's epoch-level
    coordination removes. Serializable conflicts queue on per-key
    locks. *)

include Engine.S
