(** SLOG (Ren et al., VLDB'19): sharded master-follower deterministic
    engine. Every key has a home region; single-home transactions join
    their home region's input log (cross-region routing if the client is
    elsewhere), while multi-home transactions are shipped to a global
    ordering node first. Writes and linearizable reads must be served by
    the master region, so read-only workloads behave like mixed ones
    (paper Fig 5). *)

include Engine.S
