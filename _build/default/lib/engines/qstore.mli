(** Q-Store (Qadah et al., EDBT'20): Calvin-family deterministic engine
    with queue-oriented, control-free execution — much lower scheduling
    overhead than ordered locks, but the same coordination structure, so
    the geo-distributed gain is limited (paper Fig 5 discussion). *)

include Engine.S
