(** Common surface shared by every baseline engine the paper compares
    against (§7). Baselines are timing-and-conflict models: they process
    the same op-level transactions as GeoGauss, pay realistic network
    round trips and CPU costs on the simulator, and resolve conflicts
    per their published protocols — but do not materialize row data. *)

type outcome = { committed : bool; latency_us : int }

type config = {
  cores : int;  (** vCPUs per node *)
  batch_us : int;  (** batch/epoch interval of deterministic engines *)
  exec_op_us : int;  (** execution cost per operation *)
  seed : int;
}

val default_config : config

module type S = sig
  type t

  val name : string
  val create : Gg_sim.Net.t -> config -> t
  val submit : t -> node:int -> Gg_workload.Op.txn -> (outcome -> unit) -> unit
end

val input_wire_bytes : Gg_workload.Op.txn list -> int
(** Compressed size of a batch of transaction {e inputs} (parameters) —
    what input-replicating deterministic databases ship, as opposed to
    GeoGauss's output write sets (Table 3). *)
