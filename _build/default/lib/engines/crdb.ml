module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Topology = Gg_sim.Topology
module Cpu = Gg_sim.Cpu
module Op = Gg_workload.Op

type t = {
  sim : Sim.t;
  net : Net.t;
  cfg : Engine.config;
  cpus : Cpu.t array;
  key_free : (string * string, int) Hashtbl.t;  (* per-key lock release time *)
  region_first_node : int array;  (* leaseholder node per region *)
}

let name = "CRDB"

let create net cfg =
  let topo = Net.topology net in
  let n_regions = Topology.n_regions topo in
  let region_first_node =
    Array.init n_regions (fun r ->
        match Topology.nodes_in_region topo r with
        | first :: _ -> first
        | [] -> 0)
  in
  {
    sim = Net.sim net;
    net;
    cfg;
    cpus =
      Array.init (Net.n_nodes net) (fun _ ->
          Cpu.create (Net.sim net) ~cores:cfg.Engine.cores);
    key_free = Hashtbl.create 4096;
    region_first_node;
  }

let leaseholder t key_str =
  let h = Hashtbl.hash key_str in
  t.region_first_node.(h mod Array.length t.region_first_node)

(* Raft quorum cost at a leaseholder: one round trip to the nearest
   replica outside its region (each range keeps a replica per region). *)
let quorum_rtt t node =
  let topo = Net.topology t.net in
  let best = ref max_int in
  for p = 0 to Topology.n_nodes topo - 1 do
    if Topology.region_of topo p <> Topology.region_of topo node then
      best := min !best (Topology.latency topo node p)
  done;
  if !best = max_int then 1_000 else 2 * !best

let submit t ~node (txn : Op.txn) cb =
  let exec_cost = (Op.n_ops txn * t.cfg.Engine.exec_op_us) + txn.Op.exec_extra_us in
  let submit_time = Sim.now t.sim in
  Cpu.run t.cpus.(node) ~cost:exec_cost (fun () ->
      let topo = Net.topology t.net in
      let write_keys =
        Array.to_list txn.Op.ops
        |> List.filter_map (fun op ->
               match op with
               | Op.Read _ -> None
               | Op.Write _ | Op.Add _ | Op.Insert _ | Op.Delete _ ->
                 Some (Op.op_table op, Op.op_key_str op))
      in
      if write_keys = [] then
        (* Follower reads are served from the local replica. *)
        cb { Engine.committed = true; latency_us = Sim.now t.sim - submit_time }
      else begin
        let now = Sim.now t.sim in
        (* Serializable writes queue behind earlier writers of the same
           keys. *)
        let lock_wait =
          List.fold_left
            (fun acc k ->
              max acc (Option.value ~default:0 (Hashtbl.find_opt t.key_free k) - now))
            0 write_keys
        in
        (* Parallel commit: intents to all leaseholders go out together;
           the transaction finishes when the slowest write path (routing
           + quorum) completes. *)
        let coord =
          List.fold_left
            (fun acc (_, key_str) ->
              let lh = leaseholder t key_str in
              let route = if lh = node then 0 else 2 * Topology.latency topo node lh in
              max acc (route + quorum_rtt t lh))
            0 write_keys
        in
        let total = max 0 lock_wait + coord in
        let finish = now + total in
        (* Traffic accounting: each write ships its row image to the
           leaseholder (if remote) and through Raft to a remote-region
           replica. *)
        let per_write = 96 + (Op.write_data_size txn / max 1 (List.length write_keys)) in
        List.iter
          (fun (_, key_str) ->
            let lh = leaseholder t key_str in
            if lh <> node then Net.send t.net ~src:node ~dst:lh ~bytes:per_write (fun () -> ());
            let topo = Net.topology t.net in
            let quorum_peer = ref lh in
            for p = 0 to Topology.n_nodes topo - 1 do
              if
                Topology.region_of topo p <> Topology.region_of topo lh
                && (!quorum_peer = lh
                   || Topology.latency topo lh p < Topology.latency topo lh !quorum_peer)
              then quorum_peer := p
            done;
            if !quorum_peer <> lh then
              Net.send t.net ~src:lh ~dst:!quorum_peer ~bytes:per_write (fun () -> ()))
          write_keys;
        List.iter (fun k -> Hashtbl.replace t.key_free k finish) write_keys;
        Sim.schedule t.sim ~after:total (fun () ->
            cb { Engine.committed = true; latency_us = Sim.now t.sim - submit_time })
      end)
