(** CalvinFS (Thomson & Abadi, FAST'15): Calvin extended with
    quorum-replicated metadata — each round pays an extra quorum check,
    reducing throughput below Calvin (paper Fig 5). *)

include Engine.S
