module Op = Gg_workload.Op
module Value = Gg_storage.Value
module Enc = Gg_util.Codec.Enc

type outcome = { committed : bool; latency_us : int }

type config = { cores : int; batch_us : int; exec_op_us : int; seed : int }

let default_config = { cores = 32; batch_us = 10_000; exec_op_us = 150; seed = 42 }

module type S = sig
  type t

  val name : string
  val create : Gg_sim.Net.t -> config -> t
  val submit : t -> node:int -> Gg_workload.Op.txn -> (outcome -> unit) -> unit
end

let encode_op enc op =
  let put_key key =
    Enc.varint enc (Array.length key);
    Array.iter (Value.encode enc) key
  in
  Enc.string enc (Op.op_table op);
  match op with
  | Op.Read { key; _ } ->
    Enc.byte enc 0;
    put_key key
  | Op.Write { key; data; _ } ->
    Enc.byte enc 1;
    put_key key;
    Enc.varint enc (Array.length data);
    Array.iter (Value.encode enc) data
  | Op.Add { key; col; delta; _ } ->
    Enc.byte enc 2;
    put_key key;
    Enc.varint enc col;
    Enc.zigzag enc delta
  | Op.Insert { key; data; _ } ->
    Enc.byte enc 3;
    put_key key;
    Enc.varint enc (Array.length data);
    Array.iter (Value.encode enc) data
  | Op.Delete { key; _ } ->
    Enc.byte enc 4;
    put_key key

let input_wire_bytes txns =
  let enc = Enc.create () in
  Enc.varint enc (List.length txns);
  List.iter
    (fun (t : Op.txn) ->
      Enc.string enc t.Op.label;
      Enc.varint enc (Array.length t.Op.ops);
      Array.iter (encode_op enc) t.Op.ops)
    txns;
  Bytes.length (Gg_util.Compress.compress (Enc.to_bytes enc))
