module Batch = Gg_crdt.Writeset.Batch

type t = {
  batches : (int * int, Batch.t) Hashtbl.t;  (* (node, cen) *)
  last_sealed : int array;
}

let create ~n = { batches = Hashtbl.create 1024; last_sealed = Array.make n (-1) }

let put t (b : Batch.t) =
  if not b.eof then invalid_arg "Backup.put: only sealed (eof) batches";
  Hashtbl.replace t.batches (b.node, b.cen) b;
  if b.cen > t.last_sealed.(b.node) then t.last_sealed.(b.node) <- b.cen

let last_sealed t ~node = t.last_sealed.(node)
let get t ~node ~cen = Hashtbl.find_opt t.batches (node, cen)
let count t = Hashtbl.length t.batches
