lib/core/txn.ml: Gg_crdt Gg_sql Gg_storage Gg_workload
