lib/core/metrics.ml: Gg_util Hashtbl List Stdlib Txn
