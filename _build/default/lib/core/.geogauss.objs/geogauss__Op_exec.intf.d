lib/core/op_exec.mli: Gg_crdt Gg_sql Gg_storage Gg_workload Stdlib
