lib/core/txn.mli: Gg_crdt Gg_sql Gg_storage Gg_workload
