lib/core/metrics.mli: Gg_util Txn
