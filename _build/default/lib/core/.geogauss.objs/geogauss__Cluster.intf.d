lib/core/cluster.mli: Backup Gg_sim Gg_storage Metrics Node Params Txn
