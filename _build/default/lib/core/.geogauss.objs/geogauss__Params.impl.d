lib/core/params.ml:
