lib/core/backup.ml: Array Gg_crdt Hashtbl
