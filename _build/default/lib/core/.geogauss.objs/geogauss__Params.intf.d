lib/core/params.mli:
