lib/core/cluster.ml: Array Backup Bytes Gg_raft Gg_sim Gg_storage Gg_util Hashtbl List Metrics Node Params Printf String
