lib/core/op_exec.ml: Array Gg_crdt Gg_sql Gg_storage Gg_workload Hashtbl List Printf
