lib/core/client.ml: Array Cluster Gg_sim Gg_util List Params Txn
