lib/core/node.mli: Backup Gg_crdt Gg_sim Gg_storage Metrics Params Txn
