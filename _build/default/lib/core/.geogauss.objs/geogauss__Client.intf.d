lib/core/client.mli: Cluster Gg_util Txn
