lib/core/backup.mli: Gg_crdt
