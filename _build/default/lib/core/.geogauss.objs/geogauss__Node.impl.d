lib/core/node.ml: Array Backup Gg_crdt Gg_sim Gg_sql Gg_storage Gg_workload Hashtbl List Metrics Op_exec Option Params Queue Txn
