(** Closed-loop benchmark clients.

    Matches the paper's serving model: each connection has at most one
    outstanding transaction and submits the next one as soon as the
    previous commits or aborts. Clients are pinned to a home region;
    when the home node fails they time out and re-route to the nearest
    live node (Fig 13), returning home after recovery. *)

type t

val create :
  Cluster.t ->
  home:int ->
  connections:int ->
  gen:(unit -> Txn.request) ->
  t
(** [gen] is called once per submission (deterministic workload
    generators make whole runs reproducible). *)

val start : t -> unit
val stop : t -> unit
(** Stop issuing new transactions (in-flight ones may still finish). *)

val committed : t -> int
val aborted : t -> int
val timeouts : t -> int
val latency : t -> Gg_util.Stats.Hist.t
(** Committed-transaction latency. *)

val reset_stats : t -> unit
(** Clear counters/histograms (end of warm-up). *)

val timeline : t -> bucket_us:int -> (float * float * float) list
(** Per-time-bucket [(t_seconds, committed_per_s, mean_latency_ms)] —
    the Fig 13 view. Buckets with no commits report zero throughput and
    latency. *)
