(** YCSB transactional workload generator (paper §7, "Workloads").

    One table of [records] rows with [fields] payload columns. Each
    transaction wraps [ops_per_txn] operations; keys are drawn from a
    Zipfian distribution with skew [theta]. The three paper variants:

    - YCSB-RO: 100% reads, uniform ([theta = 0]).
    - YCSB-MC: 80% reads / 20% writes, [theta = 0.8] (~60% of accesses on
      10% of tuples).
    - YCSB-HC: 50% reads / 50% writes, [theta = 0.9] (~75% on 10%). *)

type profile = {
  name : string;
  records : int;
  fields : int;
  field_len : int;  (** bytes per payload field carried in write sets *)
  ops_per_txn : int;
  read_pct : float;
  theta : float;
  parse_cost_us : int;
  long_frac : float;  (** fraction of transactions made "long" *)
  long_delay_us : int;  (** extra execution delay of long transactions *)
}

val table_name : string

val read_only : profile
val medium_contention : profile
val high_contention : profile

val with_theta : profile -> float -> profile
val with_records : profile -> int -> profile
val with_long_txns : profile -> frac:float -> delay_us:int -> profile

val schema : Gg_storage.Schema.t

val load : profile -> Gg_storage.Db.t -> unit
(** Create and populate the YCSB table. Rows are stored with compact
    placeholder payloads; generated write sets carry full-size field
    data so traffic accounting stays realistic. *)

type t
(** Sampler state (deterministic from the seed). *)

val create : profile -> seed:int -> t
val profile : t -> profile

val next_txn : t -> Op.txn
(** Generate the next transaction. *)

val key_of : int -> Gg_storage.Value.t array
