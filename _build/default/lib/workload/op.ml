module Value = Gg_storage.Value

type op =
  | Read of { table : string; key : Value.t array }
  | Write of { table : string; key : Value.t array; data : Value.t array }
  | Add of { table : string; key : Value.t array; col : int; delta : int }
  | Insert of { table : string; key : Value.t array; data : Value.t array }
  | Delete of { table : string; key : Value.t array }

type txn = {
  label : string;
  ops : op array;
  parse_cost_us : int;
  exec_extra_us : int;
}

let make ?(label = "txn") ?(parse_cost_us = 0) ?(exec_extra_us = 0) ops =
  { label; ops = Array.of_list ops; parse_cost_us; exec_extra_us }

let is_write = function
  | Read _ -> false
  | Write _ | Add _ | Insert _ | Delete _ -> true

let is_read_only t = not (Array.exists is_write t.ops)
let n_ops t = Array.length t.ops
let n_writes t = Array.fold_left (fun n o -> if is_write o then n + 1 else n) 0 t.ops

let op_table = function
  | Read { table; _ }
  | Write { table; _ }
  | Add { table; _ }
  | Insert { table; _ }
  | Delete { table; _ } -> table

let op_key = function
  | Read { key; _ }
  | Write { key; _ }
  | Add { key; _ }
  | Insert { key; _ }
  | Delete { key; _ } -> key

let op_key_str o = Value.encode_key (op_key o)

let value_size = function
  | Value.Null -> 1
  | Value.Int _ -> 5
  | Value.Float _ -> 9
  | Value.Str s -> 2 + String.length s

let row_size row = Array.fold_left (fun n v -> n + value_size v) 0 row

let write_data_size t =
  Array.fold_left
    (fun n o ->
      match o with
      | Read _ -> n
      | Write { key; data; _ } | Insert { key; data; _ } ->
        n + row_size key + row_size data
      | Add { key; _ } -> n + row_size key + 16
      | Delete { key; _ } -> n + row_size key)
    0 t.ops
