(** TPC-C workload (paper §7): 50% New-Order + 50% Payment mix, the
    subset every compared engine can run (Calvin/Aria have no SQL engine,
    so the paper restricts TPC-C to these two transaction types; we do
    the same for the cross-system benches).

    The schema and scale knobs follow TPC-C but default to a scaled-down
    population (the paper's 800 warehouses × 100k items would need tens
    of GB per replica); EXPERIMENTS.md documents the scaling. *)

type config = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  new_order_pct : float;  (** remainder is Payment *)
  remote_warehouse_pct : float;  (** TPC-C's 1% remote stock accesses *)
  parse_cost_us : int;  (** per-transaction SQL front-end cost (Table 2) *)
}

val default : config
(** 64 warehouses, 10 districts, 100 customers/district, 1000 items,
    50/50 mix. *)

val small : config
(** Tiny population for tests. *)

val schemas : Gg_storage.Schema.t list

val load : config -> Gg_storage.Db.t -> unit
(** Create and populate all tables with realistic payload sizes. *)

type t

val create : ?full_mix:bool -> config -> seed:int -> node:int -> t
(** [node] namespaces generated order ids so concurrent generators never
    collide on inserts. [full_mix] switches {!next_txn} to the standard
    five-transaction TPC-C mix (45/43/4/4/4) instead of the paper's
    cross-system 50/50 New-Order/Payment subset. *)

val config : t -> config

val next_txn : t -> Op.txn
(** Draw a transaction per the configured mix. *)

val new_order : t -> Op.txn
val payment : t -> Op.txn

val order_status : t -> Op.txn
(** Read-only: customer + her latest known order + its lines. *)

val delivery : t -> Op.txn
(** Stamp a carrier on the oldest undelivered order per district and
    credit the customers. Falls back to {!payment} when this generator
    has no undelivered orders yet. *)

val stock_level : t -> Op.txn
(** Read-only: district plus a stock sample. *)
