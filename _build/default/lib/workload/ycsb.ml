module Value = Gg_storage.Value
module Schema = Gg_storage.Schema

type profile = {
  name : string;
  records : int;
  fields : int;
  field_len : int;
  ops_per_txn : int;
  read_pct : float;
  theta : float;
  parse_cost_us : int;
  long_frac : float;
  long_delay_us : int;
}

let table_name = "usertable"

let base =
  {
    name = "ycsb";
    records = 100_000;
    fields = 10;
    field_len = 16;
    ops_per_txn = 10;
    read_pct = 0.8;
    theta = 0.8;
    parse_cost_us = 300;
    long_frac = 0.0;
    long_delay_us = 0;
  }

let read_only = { base with name = "YCSB-RO"; read_pct = 1.0; theta = 0.0 }
let medium_contention = { base with name = "YCSB-MC"; read_pct = 0.8; theta = 0.8 }
let high_contention = { base with name = "YCSB-HC"; read_pct = 0.5; theta = 0.9 }

let with_theta p theta = { p with theta }
let with_records p records = { p with records }

let with_long_txns p ~frac ~delay_us =
  { p with long_frac = frac; long_delay_us = delay_us }

let schema =
  Schema.create ~name:table_name
    ~columns:
      ({ Schema.name = "ycsb_key"; ty = Schema.TInt }
      :: List.init 10 (fun i ->
             { Schema.name = Printf.sprintf "field%d" i; ty = Schema.TStr }))
    ~key:[ "ycsb_key" ]

let key_of i = [| Value.Int i |]

let load profile db =
  let table = Gg_storage.Db.add_table db schema in
  for i = 0 to profile.records - 1 do
    (* Compact placeholder payload; see .mli. *)
    let row =
      Array.init 11 (fun c -> if c = 0 then Value.Int i else Value.Str "-")
    in
    Gg_storage.Table.load table row
  done

type t = { profile : profile; rng : Gg_util.Rng.t; zipf : Gg_util.Zipf.t }

let create profile ~seed =
  {
    profile;
    rng = Gg_util.Rng.create seed;
    zipf = Gg_util.Zipf.create ~theta:profile.theta ~n:profile.records;
  }

let profile t = t.profile

let field_payload t =
  (* Pseudo-random printable payload of [field_len] bytes. *)
  let n = t.profile.field_len in
  String.init n (fun _ ->
      Char.chr (Char.code 'a' + Gg_util.Rng.int t.rng 26))

let next_txn t =
  let p = t.profile in
  let ops =
    List.init p.ops_per_txn (fun _ ->
        let k = Gg_util.Zipf.scrambled t.zipf t.rng in
        if Gg_util.Rng.chance t.rng p.read_pct then
          Op.Read { table = table_name; key = key_of k }
        else
          let data =
            Array.init (p.fields + 1) (fun c ->
                if c = 0 then Value.Int k else Value.Str (field_payload t))
          in
          Op.Write { table = table_name; key = key_of k; data })
  in
  let exec_extra_us =
    if p.long_frac > 0.0 && Gg_util.Rng.chance t.rng p.long_frac then
      p.long_delay_us
    else 0
  in
  Op.make ~label:p.name ~parse_cost_us:p.parse_cost_us ~exec_extra_us ops
