lib/workload/tpcc.mli: Gg_storage Op
