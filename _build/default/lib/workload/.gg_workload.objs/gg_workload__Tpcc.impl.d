lib/workload/tpcc.ml: Gg_storage Gg_util Hashtbl List Op Queue String
