lib/workload/ycsb.ml: Array Char Gg_storage Gg_util List Op Printf String
