lib/workload/ycsb.mli: Gg_storage Op
