lib/workload/op.ml: Array Gg_storage String
