lib/workload/op.mli: Gg_storage
