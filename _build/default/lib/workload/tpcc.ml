module Value = Gg_storage.Value
module Schema = Gg_storage.Schema

type config = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  new_order_pct : float;
  remote_warehouse_pct : float;
  parse_cost_us : int;
}

let default =
  {
    warehouses = 64;
    districts_per_warehouse = 10;
    customers_per_district = 100;
    items = 1_000;
    new_order_pct = 0.5;
    remote_warehouse_pct = 0.01;
    parse_cost_us = 4_600;
  }

let small =
  {
    default with
    warehouses = 2;
    districts_per_warehouse = 2;
    customers_per_district = 5;
    items = 20;
  }

let col name ty = { Schema.name; ty }

let warehouse_schema =
  Schema.create ~name:"warehouse"
    ~columns:
      [
        col "w_id" Schema.TInt;
        col "w_name" TStr;
        col "w_tax" TFloat;
        col "w_ytd" TInt;
      ]
    ~key:[ "w_id" ]

let district_schema =
  Schema.create ~name:"district"
    ~columns:
      [
        col "d_w_id" Schema.TInt;
        col "d_id" TInt;
        col "d_name" TStr;
        col "d_tax" TFloat;
        col "d_ytd" TInt;
        col "d_next_o_id" TInt;
      ]
    ~key:[ "d_w_id"; "d_id" ]

let customer_schema =
  Schema.create ~name:"customer"
    ~columns:
      [
        col "c_w_id" Schema.TInt;
        col "c_d_id" TInt;
        col "c_id" TInt;
        col "c_name" TStr;
        col "c_balance" TInt;
        col "c_ytd_payment" TInt;
        col "c_payment_cnt" TInt;
        col "c_data" TStr;
      ]
    ~key:[ "c_w_id"; "c_d_id"; "c_id" ]

let item_schema =
  Schema.create ~name:"item"
    ~columns:
      [
        col "i_id" Schema.TInt;
        col "i_name" TStr;
        col "i_price" TInt;
        col "i_data" TStr;
      ]
    ~key:[ "i_id" ]

let stock_schema =
  Schema.create ~name:"stock"
    ~columns:
      [
        col "s_w_id" Schema.TInt;
        col "s_i_id" TInt;
        col "s_quantity" TInt;
        col "s_ytd" TInt;
        col "s_order_cnt" TInt;
        col "s_data" TStr;
      ]
    ~key:[ "s_w_id"; "s_i_id" ]

let orders_schema =
  Schema.create ~name:"orders"
    ~columns:
      [
        col "o_w_id" Schema.TInt;
        col "o_d_id" TInt;
        col "o_id" TInt;
        col "o_c_id" TInt;
        col "o_entry_d" TInt;
        col "o_ol_cnt" TInt;
        col "o_carrier_id" TInt;
      ]
    ~key:[ "o_w_id"; "o_d_id"; "o_id" ]

let order_line_schema =
  Schema.create ~name:"order_line"
    ~columns:
      [
        col "ol_w_id" Schema.TInt;
        col "ol_d_id" TInt;
        col "ol_o_id" TInt;
        col "ol_number" TInt;
        col "ol_i_id" TInt;
        col "ol_quantity" TInt;
        col "ol_amount" TInt;
      ]
    ~key:[ "ol_w_id"; "ol_d_id"; "ol_o_id"; "ol_number" ]

let schemas =
  [
    warehouse_schema;
    district_schema;
    customer_schema;
    item_schema;
    stock_schema;
    orders_schema;
    order_line_schema;
  ]

let pad n = String.make n 'x'

let load cfg db =
  let wh = Gg_storage.Db.add_table db warehouse_schema in
  let di = Gg_storage.Db.add_table db district_schema in
  let cu = Gg_storage.Db.add_table db customer_schema in
  let it = Gg_storage.Db.add_table db item_schema in
  let st = Gg_storage.Db.add_table db stock_schema in
  let _or = Gg_storage.Db.add_table db orders_schema in
  let _ol = Gg_storage.Db.add_table db order_line_schema in
  for i = 1 to cfg.items do
    Gg_storage.Table.load it
      [| Value.Int i; Value.Str (pad 24); Value.Int (100 + (i mod 900)); Value.Str (pad 50) |]
  done;
  for w = 1 to cfg.warehouses do
    Gg_storage.Table.load wh
      [| Value.Int w; Value.Str (pad 10); Value.Float 0.1; Value.Int 300_000 |];
    for d = 1 to cfg.districts_per_warehouse do
      Gg_storage.Table.load di
        [|
          Value.Int w; Value.Int d; Value.Str (pad 10); Value.Float 0.1;
          Value.Int 30_000; Value.Int 3_001;
        |];
      for c = 1 to cfg.customers_per_district do
        Gg_storage.Table.load cu
          [|
            Value.Int w; Value.Int d; Value.Int c; Value.Str (pad 16);
            Value.Int (-10); Value.Int 10; Value.Int 1; Value.Str (pad 250);
          |]
      done
    done;
    for i = 1 to cfg.items do
      Gg_storage.Table.load st
        [|
          Value.Int w; Value.Int i; Value.Int (10 + (i mod 90)); Value.Int 0;
          Value.Int 0; Value.Str (pad 50);
        |]
    done
  done

type t = {
  cfg : config;
  rng : Gg_util.Rng.t;
  node : int;
  mutable next_order_seq : int;
  full_mix : bool;
  (* orders this generator created, per district, for Order-Status and
     Delivery: (o_id, c_id, ol_cnt), oldest first *)
  recent_orders : (int * int, (int * int * int) Queue.t) Hashtbl.t;
}

let create ?(full_mix = false) cfg ~seed ~node =
  {
    cfg;
    rng = Gg_util.Rng.create seed;
    node;
    next_order_seq = 0;
    full_mix;
    recent_orders = Hashtbl.create 64;
  }

let config t = t.cfg

let pick_warehouse t = 1 + Gg_util.Rng.int t.rng t.cfg.warehouses
let pick_district t = 1 + Gg_util.Rng.int t.rng t.cfg.districts_per_warehouse
let pick_customer t = 1 + Gg_util.Rng.int t.rng t.cfg.customers_per_district
let pick_item t = 1 + Gg_util.Rng.int t.rng t.cfg.items

(* Order ids are namespaced by node so concurrent multi-master inserts
   never collide (the SQL path would draw them from d_next_o_id; at the
   op level keys must be predetermined). *)
let fresh_order_id t =
  t.next_order_seq <- t.next_order_seq + 1;
  ((t.node + 1) * 10_000_000) + t.next_order_seq

let new_order t =
  let w = pick_warehouse t and d = pick_district t and c = pick_customer t in
  let o_id = fresh_order_id t in
  let n_items = 5 + Gg_util.Rng.int t.rng 11 in
  let item_ops =
    List.concat_map
      (fun _ ->
        let i = pick_item t in
        let sw =
          if Gg_util.Rng.chance t.rng t.cfg.remote_warehouse_pct then
            pick_warehouse t
          else w
        in
        [
          Op.Read { table = "item"; key = [| Value.Int i |] };
          Op.Add
            {
              table = "stock";
              key = [| Value.Int sw; Value.Int i |];
              col = 2; (* s_quantity *)
              delta = -(1 + Gg_util.Rng.int t.rng 10);
            };
        ])
      (List.init n_items (fun i -> i))
  in
  let line_ops =
    List.mapi
      (fun idx _ ->
        Op.Insert
          {
            table = "order_line";
            key = [| Value.Int w; Value.Int d; Value.Int o_id; Value.Int (idx + 1) |];
            data =
              [|
                Value.Int w; Value.Int d; Value.Int o_id; Value.Int (idx + 1);
                Value.Int (pick_item t); Value.Int 5; Value.Int 500;
              |];
          })
      (List.init n_items (fun i -> i))
  in
  let q =
    match Hashtbl.find_opt t.recent_orders (w, d) with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.recent_orders (w, d) q;
      q
  in
  Queue.add (o_id, c, n_items) q;
  if Queue.length q > 64 then ignore (Queue.pop q);
  let ops =
    (Op.Read { table = "warehouse"; key = [| Value.Int w |] }
    :: Op.Add
         {
           table = "district";
           key = [| Value.Int w; Value.Int d |];
           col = 5; (* d_next_o_id *)
           delta = 1;
         }
    :: Op.Read { table = "customer"; key = [| Value.Int w; Value.Int d; Value.Int c |] }
    :: item_ops)
    @ (Op.Insert
         {
           table = "orders";
           key = [| Value.Int w; Value.Int d; Value.Int o_id |];
           data =
             [|
               Value.Int w; Value.Int d; Value.Int o_id; Value.Int c;
               Value.Int 20230101; Value.Int n_items; Value.Int 0;
             |];
         }
      :: line_ops)
  in
  Op.make ~label:"new_order" ~parse_cost_us:t.cfg.parse_cost_us ops

let payment t =
  let w = pick_warehouse t and d = pick_district t and c = pick_customer t in
  let amount = 100 + Gg_util.Rng.int t.rng 4_900 in
  let ops =
    [
      Op.Add { table = "warehouse"; key = [| Value.Int w |]; col = 3; delta = amount };
      Op.Add
        { table = "district"; key = [| Value.Int w; Value.Int d |]; col = 4; delta = amount };
      Op.Read { table = "customer"; key = [| Value.Int w; Value.Int d; Value.Int c |] };
      Op.Add
        {
          table = "customer";
          key = [| Value.Int w; Value.Int d; Value.Int c |];
          col = 4; (* c_balance *)
          delta = -amount;
        };
    ]
  in
  Op.make ~label:"payment" ~parse_cost_us:t.cfg.parse_cost_us ops

(* Order-Status: read-only — customer, her latest known order, and its
   first order lines. *)
let order_status t =
  let w = pick_warehouse t and d = pick_district t in
  let base =
    [ Op.Read { table = "customer"; key = [| Value.Int w; Value.Int d; Value.Int (pick_customer t) |] } ]
  in
  let ops =
    match Hashtbl.find_opt t.recent_orders (w, d) with
    | Some q when not (Queue.is_empty q) ->
      let o_id, c, ol_cnt =
        Queue.fold (fun _ x -> x) (Queue.peek q) q (* newest *)
      in
      Op.Read { table = "customer"; key = [| Value.Int w; Value.Int d; Value.Int c |] }
      :: Op.Read { table = "orders"; key = [| Value.Int w; Value.Int d; Value.Int o_id |] }
      :: List.init (min 3 ol_cnt) (fun i ->
             Op.Read
               { table = "order_line";
                 key = [| Value.Int w; Value.Int d; Value.Int o_id; Value.Int (i + 1) |] })
    | _ -> base
  in
  Op.make ~label:"order_status" ~parse_cost_us:t.cfg.parse_cost_us ops

(* Delivery: deliver the oldest undelivered order in each district of a
   warehouse — stamp the carrier and credit the customer. *)
let delivery t =
  let w = pick_warehouse t in
  let carrier = 1 + Gg_util.Rng.int t.rng 10 in
  let ops =
    List.concat_map
      (fun d ->
        match Hashtbl.find_opt t.recent_orders (w, d) with
        | Some q when not (Queue.is_empty q) ->
          let o_id, c, _ = Queue.pop q in
          [
            Op.Add
              { table = "orders";
                key = [| Value.Int w; Value.Int d; Value.Int o_id |];
                col = 6; (* o_carrier_id *)
                delta = carrier };
            Op.Add
              { table = "customer";
                key = [| Value.Int w; Value.Int d; Value.Int c |];
                col = 4; (* c_balance *)
                delta = 100 };
          ]
        | _ -> [])
      (List.init t.cfg.districts_per_warehouse (fun d -> d + 1))
  in
  if ops = [] then payment t
  else Op.make ~label:"delivery" ~parse_cost_us:t.cfg.parse_cost_us ops

(* Stock-Level: read-only — district plus a sample of stock rows. *)
let stock_level t =
  let w = pick_warehouse t and d = pick_district t in
  let ops =
    Op.Read { table = "district"; key = [| Value.Int w; Value.Int d |] }
    :: List.init 10 (fun _ ->
           Op.Read { table = "stock"; key = [| Value.Int w; Value.Int (pick_item t) |] })
  in
  Op.make ~label:"stock_level" ~parse_cost_us:t.cfg.parse_cost_us ops

let next_txn t =
  if t.full_mix then begin
    (* the standard TPC-C mix: 45/43/4/4/4 *)
    let r = Gg_util.Rng.int t.rng 100 in
    if r < 45 then new_order t
    else if r < 88 then payment t
    else if r < 92 then order_status t
    else if r < 96 then delivery t
    else stock_level t
  end
  else if Gg_util.Rng.chance t.rng t.cfg.new_order_pct then new_order t
  else payment t
