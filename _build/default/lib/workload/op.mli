(** Engine-agnostic transaction representation.

    Benchmarks describe transactions as arrays of key-level operations so
    the same workload can drive GeoGauss and every baseline engine
    (Calvin, Aria, CRDB-like, Anna, …), none of which share a SQL
    surface. The paper's cross-system comparison does exactly this —
    Calvin/Aria only support stored-procedure style transactions. *)

type op =
  | Read of { table : string; key : Gg_storage.Value.t array }
  | Write of {
      table : string;
      key : Gg_storage.Value.t array;
      data : Gg_storage.Value.t array;
    }  (** blind full-row overwrite *)
  | Add of {
      table : string;
      key : Gg_storage.Value.t array;
      col : int;
      delta : int;
    }  (** read-modify-write increment of one integer column *)
  | Insert of {
      table : string;
      key : Gg_storage.Value.t array;
      data : Gg_storage.Value.t array;
    }
  | Delete of { table : string; key : Gg_storage.Value.t array }

type txn = {
  label : string;  (** e.g. "ycsb", "new_order", "payment" *)
  ops : op array;
  parse_cost_us : int;
      (** modeled SQL parse/plan cost for engines with a SQL front end *)
  exec_extra_us : int;
      (** injected artificial execution delay (long-transaction experiments) *)
}

val make :
  ?label:string -> ?parse_cost_us:int -> ?exec_extra_us:int -> op list -> txn

val is_read_only : txn -> bool
val n_ops : txn -> int
val n_writes : txn -> int

val op_table : op -> string
val op_key : op -> Gg_storage.Value.t array

val op_key_str : op -> string
(** Encoded key (index key). *)

val write_data_size : txn -> int
(** Approximate encoded byte size of the transaction's write payloads,
    used by cost/traffic models. *)
