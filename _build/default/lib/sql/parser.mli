(** Recursive-descent SQL parser. *)

exception Parse_error of string

val parse : string -> Ast.stmt
(** Parse one statement (an optional trailing [;] is allowed). Raises
    {!Parse_error} or {!Lexer.Lex_error}. Positional [?] parameters are
    numbered 0, 1, … left to right. *)

val parse_result : string -> (Ast.stmt, string) result
(** Exception-free wrapper. *)
