type access =
  | Point of Ast.expr array
  | Prefix of Ast.expr array
  | Sec_index of string * Ast.expr array
  | Full

let rec conjuncts e acc =
  match e with
  | Ast.Binop (Ast.And, a, b) -> conjuncts a (conjuncts b acc)
  | e -> e :: acc

let rec column_free = function
  | Ast.Const _ | Ast.Param _ -> true
  | Ast.Col _ -> false
  | Ast.Unop (_, e) -> column_free e
  | Ast.Binop (_, a, b) -> column_free a && column_free b
  | Ast.In_list (e, items) -> column_free e && List.for_all column_free items
  | Ast.Between (e, lo, hi) -> column_free e && column_free lo && column_free hi
  | Ast.Like (e, p) -> column_free e && column_free p

let access_path schema ~names where =
  match where with
  | None -> Full
  | Some where ->
    let key_cols = schema.Gg_storage.Schema.key_cols in
    let n_key = Array.length key_cols in
    (* For each key column, the first usable equality expression. *)
    let found : Ast.expr option array = Array.make n_key None in
    let key_pos col_idx =
      let rec go i =
        if i >= n_key then None
        else if key_cols.(i) = col_idx then Some i
        else go (i + 1)
      in
      go 0
    in
    let consider col_q col_name rhs =
      if column_free rhs && (col_q = None || List.mem (Option.get col_q) names)
      then
        match Gg_storage.Schema.col_index schema col_name with
        | None -> ()
        | Some ci -> (
          match key_pos ci with
          | Some kp when found.(kp) = None -> found.(kp) <- Some rhs
          | Some _ | None -> ())
    in
    List.iter
      (function
        | Ast.Binop (Ast.Eq, Ast.Col (q, c), rhs) -> consider q c rhs
        | Ast.Binop (Ast.Eq, lhs, Ast.Col (q, c)) -> consider q c lhs
        | _ -> ())
      (conjuncts where []);
    let prefix_len =
      let rec go i = if i < n_key && found.(i) <> None then go (i + 1) else i in
      go 0
    in
    if prefix_len = 0 then Full
    else
      let exprs = Array.init prefix_len (fun i -> Option.get found.(i)) in
      if prefix_len = n_key then Point exprs else Prefix exprs

let describe = function
  | Point _ -> "point"
  | Prefix e -> Printf.sprintf "prefix(%d)" (Array.length e)
  | Sec_index (n, _) -> Printf.sprintf "index(%s)" n
  | Full -> "full-scan"

(* Equality bindings (column index -> rhs) usable for index probes. *)
let equalities schema ~names where =
  let acc = ref [] in
  (match where with
  | None -> ()
  | Some where ->
    let consider q c rhs =
      if column_free rhs && (q = None || List.mem (Option.get q) names) then
        match Gg_storage.Schema.col_index schema c with
        | Some ci when not (List.mem_assoc ci !acc) -> acc := (ci, rhs) :: !acc
        | Some _ | None -> ()
    in
    List.iter
      (function
        | Ast.Binop (Ast.Eq, Ast.Col (q, c), rhs) -> consider q c rhs
        | Ast.Binop (Ast.Eq, lhs, Ast.Col (q, c)) -> consider q c lhs
        | _ -> ())
      (conjuncts where []));
  !acc

let access_path_table table ~names where =
  let schema = Gg_storage.Table.schema table in
  match access_path schema ~names where with
  | (Point _ | Prefix _ | Sec_index _) as a -> a
  | Full -> (
    (* try a secondary index fully covered by equality conjuncts *)
    let eqs = equalities schema ~names where in
    let candidate =
      List.fold_left
        (fun acc iname ->
          match acc with
          | Some _ -> acc
          | None -> (
            match Gg_storage.Table.index_cols table ~name:iname with
            | None -> None
            | Some cols ->
              if Array.for_all (fun c -> List.mem_assoc c eqs) cols then
                Some (iname, Array.map (fun c -> List.assoc c eqs) cols)
              else None))
        None
        (Gg_storage.Table.index_names table)
    in
    match candidate with
    | Some (iname, exprs) -> Sec_index (iname, exprs)
    | None -> Full)
